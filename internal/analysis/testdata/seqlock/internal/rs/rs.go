// Package rs stubs the cross-package leg of the seqread chain: the real
// reader calls into internal/rs, whose checker carries its own mark.
package rs

// CheckStub stands in for the RS syndrome check.
//
//chipkill:seqread
func CheckStub(data []byte) bool { return len(data) != 0 }
