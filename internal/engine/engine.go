// Package engine provides a sharded concurrent demand engine over one
// persistent-memory rank.
//
// core.Controller is deliberately single-owner: it models a per-channel
// memory controller and keeps its demand paths lock- and allocation-free.
// The engine scales that to many concurrent clients by partitioning the
// block space along the bank ownership already implicit in rank.Locate:
// every block maps to exactly one bank, all mutable per-bank chip state is
// disjoint (see the nvram.Chip contract), so banks are the natural unit of
// parallelism — exactly as in real DRAM/NVRAM systems, where banks operate
// independently behind their own row buffers.
//
// Each shard owns the banks b with b % Shards == s and wraps its own
// unmodified core.Controller view of the shared rank behind one striped
// mutex. Writers still take that mutex; clean reads — the 99.98% case —
// run lock-free under a per-shard seqlock and only park on the mutex when
// a writer is inside, a revalidation fails, or the block needs the
// correction machinery (see seqlock.go and DESIGN.md §12). Striped
// mutexes were chosen over per-shard request channels for the locked
// paths: an uncontended mutex handoff costs tens of nanoseconds and is
// allocation-free, while a channel round trip costs several hundred
// nanoseconds plus request/response envelopes. DESIGN.md §9 has the full
// argument and the ordering rules.
package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"chipkillpm/internal/core"
	"chipkillpm/internal/cpu"
	"chipkillpm/internal/rank"
	"chipkillpm/internal/rs"
)

// Config tunes the engine.
type Config struct {
	// Shards is the number of shard locks/controllers. Zero means one per
	// bank (the maximum useful value); larger values are clamped to the
	// bank count, since two shards can never split one bank.
	Shards int
	// Core configures every shard's controller identically.
	Core core.Config
	// OMV supplies old memory values to all shards' write paths. Because
	// shards run concurrently, a non-nil provider must itself be safe for
	// concurrent use. nil means every write fetches its OMV from memory.
	OMV core.OMVProvider
	// BatchFanOut bounds the goroutines a batch call may use across shard
	// groups: 0 means min(GOMAXPROCS, shards), 1 forces inline execution
	// (still batched per shard, just on the caller's goroutine), larger
	// values cap the fan-out.
	BatchFanOut int
	// DisableSeqlock forces every read through the shard mutex, exactly as
	// before the lock-free clean-read path existed. For A/B comparison and
	// for the serial-equivalence campaigns; the engine also disables the
	// path on its own under the race detector, with
	// WriteBackVLEWCorrections set (locked reads then mutate data cells),
	// or on geometries without the paper's 8-byte chip access.
	DisableSeqlock bool
}

type shard struct {
	//chipkill:lock engine.shard level=30 ranked
	mu sync.Mutex
	// ctrl is mutated under mu (demand paths) or with every shard lock
	// held (rank-wide maintenance inside a quiescent section).
	//chipkill:guardedby engine.shard engine.rank
	ctrl *core.Controller
	// seq is the shard's seqlock generation: odd while a writer is inside
	// its critical section, even otherwise. Writers bump it on both edges
	// under mu (see lockWrite/unlockWrite); lock-free readers bracket
	// their gathers with two loads of it.
	//chipkill:atomic
	seq atomic.Uint64
	// hasDisabled latches "some block on this shard has been retired".
	// Set inside DisableBlock's writer section before the retirement is
	// visible and never cleared, it lets the lock-free reader skip the
	// controller's disabled-map lookup: shards that never retired a block
	// (the steady state) stay on the fast path, shards that did fall back
	// to the locked read, which consults the map.
	//chipkill:atomic
	hasDisabled atomic.Bool
	_           cpu.CacheLinePad
	// Lock-free read outcome counters, on their own cache line so reader
	// cores bumping them don't invalidate the writers' mutex/seq line.
	//chipkill:atomic
	fastReads atomic.Int64
	//chipkill:atomic
	seqRetries atomic.Int64
	//chipkill:atomic
	seqFallbacks atomic.Int64
	_            cpu.CacheLinePad
}

// Engine dispatches demand reads and writes across bank-sharded
// controllers.
//
// Concurrency contract: ReadBlock/ReadBlockInto/WriteBlock/
// WriteBlockInitial/DisableBlock, the batch APIs, and Stats/ResetStats are
// all safe for concurrent use. BootScrub, EnterDegradedMode and Quiesce
// acquire every shard lock, so they serialise against all demand traffic
// but must not be called from inside another quiescent section.
type Engine struct {
	rank     *rank.Rank
	shards   []*shard
	banks    int64
	bpr      int64 // blocks per row
	fanout   int   // batch fan-out cap from Config; 0 = auto
	planPool sync.Pool

	// Lock-free clean-read support (seqlock.go). seqOK is decided once in
	// New; when false every read takes the shard mutex as before.
	seqOK       bool
	rsCode      *rs.Code // engine-owned checker for the lock-free path
	geo         fastGeom // precomputed block→cell-offset addressing
	cells       [][]byte // per data chip backing arrays, in symbol order
	parityCells []byte   // parity (check) chip backing array

	// degraded latches "the rank is (or may be) in the striped degraded
	// layout": set before any shard flips, never cleared. In that layout a
	// raw original-layout gather reads striped bytes that could — rarely —
	// still satisfy the RS check, which would be silent data corruption,
	// so lock-free readers stand down permanently.
	//chipkill:atomic
	degraded atomic.Bool
	// mig publishes the online-migration state to lock-free readers, set
	// before the first band moves. Blocks below the cursor are striped and
	// must take the locked path.
	//chipkill:atomic
	mig atomic.Pointer[core.MigrationState]
}

// New builds an engine over the rank. The rank must be quiescent (freshly
// built or scrubbed); the engine assumes sole ownership of its demand
// traffic from then on.
func New(r *rank.Rank, cfg Config) (*Engine, error) {
	banks := r.Config().Geometry.Banks
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("engine: shards %d must be >= 0", cfg.Shards)
	}
	n := cfg.Shards
	if n == 0 || n > banks {
		n = banks
	}
	if cfg.BatchFanOut < 0 {
		return nil, fmt.Errorf("engine: batch fan-out %d must be >= 0", cfg.BatchFanOut)
	}
	e := &Engine{
		rank:   r,
		banks:  int64(banks),
		bpr:    int64(r.Config().BlocksPerRow()),
		fanout: cfg.BatchFanOut,
	}
	for s := 0; s < n; s++ {
		ctrl, err := core.NewController(r, cfg.Core, cfg.OMV)
		if err != nil {
			return nil, fmt.Errorf("engine: shard %d: %w", s, err)
		}
		e.shards = append(e.shards, &shard{ctrl: ctrl})
	}
	cr := r.Config()
	e.seqOK = seqlockCapable && !cfg.DisableSeqlock &&
		!cfg.Core.WriteBackVLEWCorrections && cr.ChipAccessBytes == 8
	if e.seqOK {
		code, err := rs.New(cr.BlockBytes(), cr.ChipAccessBytes)
		if err != nil {
			return nil, fmt.Errorf("engine: sizing seqlock RS checker: %w", err)
		}
		e.rsCode = code
		e.geo = newFastGeom(cr, r.Blocks())
		for i := 0; i < cr.DataChips; i++ {
			e.cells = append(e.cells, r.Chip(i).CellArray())
		}
		e.parityCells = r.Chip(r.ParityChipIndex()).CellArray()
	}
	return e, nil
}

// Rank returns the underlying rank.
func (e *Engine) Rank() *rank.Rank { return e.rank }

// Shards returns the shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// Blocks returns the rank's capacity in blocks.
func (e *Engine) Blocks() int64 { return e.rank.Blocks() }

// BlockBytes returns the block size the demand APIs move.
func (e *Engine) BlockBytes() int { return e.rank.Config().BlockBytes() }

// shardOf maps a block to the shard owning its bank; mirrors rank.Locate.
func (e *Engine) shardOf(block int64) int {
	return int((block / e.bpr) % e.banks % int64(len(e.shards)))
}

// ReadBlockInto reads one block into a caller-owned buffer of
// BlockBytes(). Clean reads are served lock-free through the shard's
// seqlock; anything else — validation failures, retired blocks, degraded
// or migrating layouts, blocks needing correction, sequence conflicts —
// runs the controller's corrected read under the owning shard's lock,
// with semantics identical to the always-locked engine.
//
//chipkill:noalloc
func (e *Engine) ReadBlockInto(block int64, dst []byte) error {
	s := e.shards[e.shardOf(block)]
	if e.seqOK && e.readFast(s, block, dst) {
		s.fastReads.Add(1)
		return nil
	}
	s.mu.Lock()
	err := s.ctrl.ReadBlockInto(block, dst)
	s.mu.Unlock()
	return err
}

// ReadBlock is ReadBlockInto returning a fresh buffer.
func (e *Engine) ReadBlock(block int64) ([]byte, error) {
	dst := make([]byte, e.BlockBytes())
	if err := e.ReadBlockInto(block, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// WriteBlock writes one block through the OMV-XOR write path inside the
// owning shard's seqlock writer section.
func (e *Engine) WriteBlock(block int64, data []byte) error {
	s := e.shards[e.shardOf(block)]
	s.lockWrite()
	err := s.ctrl.WriteBlock(block, data)
	s.unlockWrite()
	return err
}

// WriteBlockInitial writes a block conventionally (raw data on the bus);
// used to populate memory.
func (e *Engine) WriteBlockInitial(block int64, data []byte) error {
	s := e.shards[e.shardOf(block)]
	s.lockWrite()
	err := s.ctrl.WriteBlockInitial(block, data)
	s.unlockWrite()
	return err
}

// DisableBlock retires a worn-out block on its owning shard. The shard's
// hasDisabled latch is set inside the writer section, before the
// retirement takes effect, so no lock-free reader can serve the block
// after this returns.
func (e *Engine) DisableBlock(block int64) {
	s := e.shards[e.shardOf(block)]
	s.lockWrite()
	s.hasDisabled.Store(true)
	s.ctrl.DisableBlock(block)
	s.unlockWrite()
}

// BlockDisabled reports whether a block has been retired.
func (e *Engine) BlockDisabled(block int64) bool {
	s := e.shards[e.shardOf(block)]
	s.mu.Lock()
	d := s.ctrl.BlockDisabled(block)
	s.mu.Unlock()
	return d
}

// Stats aggregates every shard's counters on demand. Each shard is
// snapshotted under its lock, so the result never tears an individual
// controller's counters and is safe to call concurrently with demand
// traffic; across shards it is a sequence of consistent snapshots, not a
// single instant.
func (e *Engine) Stats() core.Stats {
	var total core.Stats
	for _, s := range e.shards {
		s.mu.Lock()
		snap := s.ctrl.Stats()
		s.mu.Unlock()
		total.Add(snap)
		// Fold in the reads the seqlock path served without a controller.
		// Each was exactly one clean block fetch, so the serial
		// controller would have counted it in all three columns; the
		// ReadsClean == Reads + OMVMisses bus identity is preserved.
		fast := s.fastReads.Load()
		total.Reads += fast
		total.ReadsClean += fast
		total.BlockFetches += fast
	}
	return total
}

// ResetStats zeroes every shard's counters, including the seqlock
// outcome counters.
func (e *Engine) ResetStats() {
	for _, s := range e.shards {
		s.mu.Lock()
		s.ctrl.ResetStats()
		s.fastReads.Store(0)
		s.seqRetries.Store(0)
		s.seqFallbacks.Store(0)
		s.mu.Unlock()
	}
}

// Quiesce runs f with every shard writer section open (in shard order, so
// nested quiescence attempts would deadlock rather than interleave): no
// locked demand operation runs concurrently with f, and every lock-free
// reader either observes an odd sequence and parks, or gathered under a
// sequence that the bumps invalidate and discards its result. Rank-wide
// maintenance — fault injection, wear-out events, row-close sweeps —
// must go through it.
//
//chipkill:lock engine.rank level=20
func (e *Engine) Quiesce(f func()) {
	for _, s := range e.shards {
		s.lockWrite()
	}
	f()
	for i := len(e.shards) - 1; i >= 0; i-- {
		e.shards[i].unlockWrite()
	}
}

// BootScrub runs the boot-time scrub under full quiescence. The scrub
// itself fans workers across (chip, bank) pairs internally; its counters
// land on shard 0's controller and therefore appear in Stats.
func (e *Engine) BootScrub() core.ScrubReport {
	var rep core.ScrubReport
	e.Quiesce(func() {
		rep = e.shards[0].ctrl.BootScrub()
	})
	return rep
}

// EnterDegradedMode remaps the rank around a failed data chip under full
// quiescence: shard 0's controller performs the physical remap and every
// other shard adopts the new layout (the striped format lives on the
// chips, not in controller state).
func (e *Engine) EnterDegradedMode(failedChip int) error {
	var err error
	e.Quiesce(func() {
		// Latch before the remap starts: even a failed or partial entry
		// may have moved bytes, and the latch is deliberately one-way.
		e.degraded.Store(true)
		if err = e.shards[0].ctrl.EnterDegradedMode(failedChip); err != nil {
			return
		}
		for _, s := range e.shards[1:] {
			if aerr := s.ctrl.AdoptDegradedMode(failedChip); aerr != nil && err == nil {
				err = aerr
			}
		}
	})
	return err
}

// Degraded reports whether the engine is in degraded mode and for which
// chip.
func (e *Engine) Degraded() (bool, int) {
	s := e.shards[0]
	s.mu.Lock()
	d, chip := s.ctrl.Degraded()
	s.mu.Unlock()
	return d, chip
}
