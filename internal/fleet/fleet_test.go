package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"chipkillpm/internal/guard"
)

// testConfig is the small-but-real geometry most tests run: 3 ranks of
// 2 banks x 4 rows x 1KB rows = 1024 blocks/rank (32 bands), 8 of them
// replica pool, so the fleet serves 24*32*3 = 2304 blocks.
func testConfig() Config {
	return Config{
		Ranks:        3,
		Banks:        2,
		RowsPerBank:  4,
		RowBytes:     1024,
		Seed:         42,
		ReplicaBands: 8,
	}
}

// pattern fills dst with a deterministic per-block byte pattern.
func pattern(block int64, dst []byte) {
	x := uint64(block)*0x9e3779b97f4a7c15 + 0x1234567
	for i := range dst {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		dst[i] = byte(x)
	}
}

// fill writes the deterministic pattern to every fleet block.
func fill(t *testing.T, f *Fleet) {
	t.Helper()
	buf := make([]byte, f.BlockBytes())
	for b := int64(0); b < f.Blocks(); b++ {
		pattern(b, buf)
		if err := f.WriteBlockInitial(b, buf); err != nil {
			t.Fatalf("initial write %d: %v", b, err)
		}
	}
}

// checkBlock asserts one block reads back its pattern.
func checkBlock(t *testing.T, f *Fleet, b int64) {
	t.Helper()
	want := make([]byte, f.BlockBytes())
	pattern(b, want)
	got, err := f.ReadBlock(b)
	if err != nil {
		t.Fatalf("read %d: %v", b, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("block %d read wrong bytes", b)
	}
}

func TestSentinelsErrorsIs(t *testing.T) {
	wrapped := fmt.Errorf("fleet: read block 7: rank 1 down, no live replica: %w", ErrRankFailed)
	if !errors.Is(wrapped, ErrRankFailed) {
		t.Fatal("wrapped ErrRankFailed not matched by errors.Is")
	}
	if errors.Is(wrapped, ErrNoReplica) {
		t.Fatal("ErrRankFailed matched ErrNoReplica")
	}
	wrapped = fmt.Errorf("fleet: repair rank 0 chip 2: %w", ErrNoReplica)
	if !errors.Is(wrapped, ErrNoReplica) {
		t.Fatal("wrapped ErrNoReplica not matched by errors.Is")
	}
	if !Contained(wrapped) {
		t.Fatal("Contained() false for a sentinel error")
	}
	if Contained(errors.New("something else")) {
		t.Fatal("Contained() true for a foreign error")
	}
}

func TestPlacementInterleavesBandsAcrossRanks(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := int64(f.NumRanks())
	seen := make(map[int]int64)
	for b := int64(0); b < f.Blocks(); b++ {
		rk, local := f.locate(b)
		seen[rk]++
		// Round-trip through the inverse.
		band := b / f.BandBlocks()
		if got := f.fleetBand(rk, local/f.BandBlocks()); got != band {
			t.Fatalf("block %d: band inverse %d, want %d", b, got, band)
		}
		if want := int(band % n); rk != want {
			t.Fatalf("block %d on rank %d, want %d", b, rk, want)
		}
		if local >= f.poolBase {
			t.Fatalf("block %d placed into the replica pool (local %d)", b, local)
		}
	}
	per := f.Blocks() / n
	for rk, cnt := range seen {
		if cnt != per {
			t.Fatalf("rank %d serves %d blocks, want %d", rk, cnt, per)
		}
	}
}

func TestReplicaOnDistinctRank(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	fill(t, f)
	for band := int64(0); band < 6; band++ {
		if err := f.ReplicateBand(band); err != nil {
			t.Fatalf("replicate band %d: %v", band, err)
		}
		b := band * f.BandBlocks()
		rr, _, ok := f.ReplicaLocation(b)
		if !ok {
			t.Fatalf("band %d not active after ReplicateBand", band)
		}
		if rr == f.RankOf(b) {
			t.Fatalf("band %d replica landed on its own rank %d", band, rr)
		}
		if !f.BandReplicated(b) {
			t.Fatalf("band %d not reported replicated", band)
		}
	}
	if got := f.Stats().ActiveReplicas; got != 6 {
		t.Fatalf("ActiveReplicas = %d, want 6", got)
	}
}

func TestFillAndReadBack(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	fill(t, f)
	for b := int64(0); b < f.Blocks(); b++ {
		checkBlock(t, f, b)
	}
}

func TestWriteThroughKeepsReplicaCoherent(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	fill(t, f)
	if err := f.ReplicateBand(0); err != nil {
		t.Fatal(err)
	}
	b := int64(3) // inside band 0
	data := make([]byte, f.BlockBytes())
	pattern(9999, data)
	if err := f.WriteBlock(b, data); err != nil {
		t.Fatalf("write-through: %v", err)
	}
	rr, local, ok := f.ReplicaLocation(b)
	if !ok {
		t.Fatal("band 0 lost its replica")
	}
	got := make([]byte, f.BlockBytes())
	if err := f.Engine(rr).ReadBlockInto(local, got); err != nil {
		t.Fatalf("replica read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("replica diverged from acknowledged write")
	}
}

func TestRankKillContainment(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	fill(t, f)
	// Bands 0 and 3 live on rank 0 (3 ranks, round-robin).
	for _, band := range []int64{0, 3} {
		if err := f.ReplicateBand(band); err != nil {
			t.Fatal(err)
		}
	}
	f.KillRank(0)
	if !f.RankKilled(0) {
		t.Fatal("rank 0 not marked killed")
	}

	// Replicated band on the dead rank: reads fail over, byte-exact.
	checkBlock(t, f, 0*f.BandBlocks()+5)
	checkBlock(t, f, 3*f.BandBlocks()+17)
	// Unreplicated band on the dead rank: contained, typed error.
	_, err = f.ReadBlock(6 * f.BandBlocks())
	if !errors.Is(err, ErrRankFailed) {
		t.Fatalf("unreplicated dead read: %v, want ErrRankFailed", err)
	}
	// Other ranks unaffected.
	checkBlock(t, f, 1*f.BandBlocks()+2)

	// Writes: replicated band acknowledges on the replica alone...
	data := make([]byte, f.BlockBytes())
	pattern(777, data)
	wb := 0*f.BandBlocks() + 5
	if err := f.WriteBlock(wb, data); err != nil {
		t.Fatalf("failover write: %v", err)
	}
	got, err := f.ReadBlock(wb)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("failover write not readable: %v", err)
	}
	// ...an unreplicated band rejects, typed.
	if err := f.WriteBlock(6*f.BandBlocks(), data); !errors.Is(err, ErrRankFailed) {
		t.Fatalf("unreplicated dead write: %v, want ErrRankFailed", err)
	}

	s := f.Stats()
	if s.RanksAlive != 2 || s.RankKills != 1 {
		t.Fatalf("stats: alive %d kills %d", s.RanksAlive, s.RankKills)
	}
	if s.FailoverReads == 0 || s.FailoverWrites != 1 || s.ContainedDUEs == 0 || s.RejectedWrites != 1 {
		t.Fatalf("stats: %+v", s)
	}
	if f.Servable(6 * f.BandBlocks()) {
		t.Fatal("unreplicated dead band reported servable")
	}
	if !f.Servable(0*f.BandBlocks() + 1) {
		t.Fatal("replicated dead band reported unservable")
	}
}

func TestReadRepairHealsPrimaryDUE(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	fill(t, f)
	if err := f.ReplicateBand(0); err != nil {
		t.Fatal(err)
	}
	b := int64(7)
	rk, local := f.locate(b)
	// Smash the primary copy beyond RS help: raw garbage data with an
	// inconsistent check word.
	garbage := make([]byte, f.BlockBytes())
	check := make([]byte, f.Rank(rk).Config().ChipAccessBytes)
	pattern(31337, garbage)
	pattern(31338, check)
	f.Engine(rk).Quiesce(func() {
		f.Rank(rk).CloseAllRows()
		f.Rank(rk).WriteBlockRaw(local, garbage, check)
	})
	if err := f.Engine(rk).ReadBlockInto(local, garbage); err == nil {
		t.Skip("corruption pattern decoded cleanly; scenario lost its signal")
	}

	checkBlock(t, f, b) // fleet read must heal via the replica
	if got := f.Stats().ReadRepairs; got != 1 {
		t.Fatalf("ReadRepairs = %d, want 1", got)
	}
	// And the primary copy itself is healed, not just the served bytes.
	want := make([]byte, f.BlockBytes())
	pattern(b, want)
	got := make([]byte, f.BlockBytes())
	if err := f.Engine(rk).ReadBlockInto(local, got); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("primary not healed: %v", err)
	}
}

func TestAntiEntropyHealsDivergedReplica(t *testing.T) {
	cfg := testConfig()
	cfg.VerifyBandsPerTick = 64 // sweep everything each tick
	cfg.ReplicatePerTick = -1   // policy off; bands replicate explicitly
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, f)
	if err := f.ReplicateBand(1); err != nil {
		t.Fatal(err)
	}
	b := 1*f.BandBlocks() + 4
	rr, local, _ := f.ReplicaLocation(b)
	bogus := make([]byte, f.BlockBytes())
	pattern(555, bogus)
	if err := f.Engine(rr).WriteBlockInitial(local, bogus); err != nil {
		t.Fatal(err)
	}
	if err := f.Tick(); err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().DivergenceFixes; got != 1 {
		t.Fatalf("DivergenceFixes = %d, want 1", got)
	}
	got := make([]byte, f.BlockBytes())
	want := make([]byte, f.BlockBytes())
	pattern(b, want)
	if err := f.Engine(rr).ReadBlockInto(local, got); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("replica not healed: %v", err)
	}
}

func TestRepairChipFromReplica(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	fill(t, f)
	// Replicate some of rank 0's bands; the rest must take the erasure
	// path so the report carries both timings.
	for _, band := range []int64{0, 3, 6, 9} {
		if err := f.ReplicateBand(band); err != nil {
			t.Fatal(err)
		}
	}
	const chip = 2
	f.Engine(0).Quiesce(func() { f.Rank(0).FailChip(chip) })
	if err := f.RepairChip(0, chip); err != nil {
		t.Fatalf("RepairChip: %v", err)
	}
	reps := f.Repairs()
	if len(reps) != 1 {
		t.Fatalf("%d repair reports, want 1", len(reps))
	}
	r := reps[0]
	if r.ReplicaBands != 4 {
		t.Fatalf("ReplicaBands = %d, want 4", r.ReplicaBands)
	}
	if r.ErasureBands == 0 || r.ErasureBlocks == 0 {
		t.Fatalf("erasure path unused: %+v", r)
	}
	if r.Unrecoverable {
		t.Fatalf("repair left unrecoverable blocks: %+v", r)
	}
	if f.Rank(0).FailedChips() != 0 {
		t.Fatal("chip still failed after repair")
	}
	for b := int64(0); b < f.Blocks(); b++ {
		checkBlock(t, f, b)
	}
}

func TestRepairChipDeclinesWithoutReplica(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	fill(t, f)
	f.Engine(1).Quiesce(func() { f.Rank(1).FailChip(4) })
	if err := f.RepairChip(1, 4); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("repair with no replicas: %v, want ErrNoReplica", err)
	}
	// Parity chips always repair locally (re-encode) — no replica needed.
	p := f.Rank(2).ParityChipIndex()
	f.Engine(2).Quiesce(func() { f.Rank(2).FailChip(p) })
	if err := f.RepairChip(2, p); err != nil {
		t.Fatalf("parity repair: %v", err)
	}
	for b := int64(0); b < f.Blocks(); b++ {
		if f.RankOf(b) == 2 {
			checkBlock(t, f, b)
		}
	}
}

// TestGuardConvictionTriggersFleetRepair closes the full loop: a chip
// dies, demand traffic feeds the rank's guard telemetry, the supervisor
// suspects, probes, convicts — and the fleet repairs the chip in place
// from replicas, so the rank never migrates to degraded mode.
func TestGuardConvictionTriggersFleetRepair(t *testing.T) {
	cfg := testConfig()
	cfg.ReplicatePerTick = -1
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, f)
	for _, band := range []int64{0, 3, 6, 9, 12, 15} {
		if err := f.ReplicateBand(band); err != nil {
			t.Fatal(err)
		}
	}
	const chip = 2
	f.Engine(0).Quiesce(func() { f.Rank(0).FailChip(chip) })

	buf := make([]byte, f.BlockBytes())
	sup := f.Supervisor(0)
	for i := 0; i < 400 && sup.Report().ExternalRepairs == 0; i++ {
		// Demand reads on rank 0 keep the telemetry signal alive.
		for j := int64(0); j < 8; j++ {
			b := (j * 3) * f.BandBlocks() % f.Blocks()
			if f.RankOf(b) != 0 {
				continue
			}
			if err := f.ReadBlockInto(b+j, buf); err != nil {
				t.Fatalf("demand read: %v", err)
			}
		}
		if err := f.Tick(); err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
	}
	rep := sup.Report()
	if rep.ExternalRepairs != 1 || rep.Verdicts != 1 {
		t.Fatalf("supervisor never repaired externally: %+v", rep)
	}
	if rep.State != guard.StateHealthy {
		t.Fatalf("supervisor state %v after external repair, want healthy", rep.State)
	}
	if d, _ := f.Engine(0).Degraded(); d {
		t.Fatal("rank went degraded despite replica repair")
	}
	if f.Engine(0).Migrating() != nil {
		t.Fatal("migration started despite replica repair")
	}
	if got := f.Stats().ChipRepairs; got != 1 {
		t.Fatalf("ChipRepairs = %d, want 1", got)
	}
	for b := int64(0); b < f.Blocks(); b++ {
		checkBlock(t, f, b)
	}
}
