// Package inject is a deterministic, scripted fault-campaign engine for
// the decoupled boot/runtime chipkill-correct scheme.
//
// Hand-picked unit tests exercise the paths the author thought of; error
// profiling literature (HARP, SCREME) shows that real memory protection
// fails silently exactly in the coverage gaps. This package closes the gap
// with campaigns: a full core.Controller + rank.Rank stack is driven
// through a randomized read/write workload interleaved with scripted fault
// events — retention drift at a configurable RBER, targeted bit flips in
// the data, VLEW-code, and parity regions, whole-chip kill mid-run,
// crash-and-reboot (drop volatile state, rerun BootScrub, verify
// persistence), and write-path delta/OMV corruption — while a shadow-map
// oracle tracks the expected contents of every committed block.
//
// Every read is classified against the oracle:
//
//   - clean      — data matched, no correction machinery engaged
//   - corrected  — data matched after opportunistic RS or VLEW fallback
//   - DUE        — the controller detected but could not correct (honest)
//   - SDC        — the controller returned wrong data without error:
//     silent data corruption, the outcome the scheme exists to
//     prevent. Any SDC at runtime RBERs fails the campaign.
//
// Campaigns are grouped into named suites (smoke, standard, soak, escape)
// runnable via `go run ./cmd/faultcampaign -suite <name>` or the go test
// wrappers in this package (long soak campaigns sit behind -tags soak).
// Every run is reproducible from its seed; failures carry the exact
// reproduction command.
package inject

// Outcome classifies one oracle-checked read.
type Outcome int

const (
	// OutcomeClean: correct data, no corrections engaged.
	OutcomeClean Outcome = iota
	// OutcomeCorrected: correct data after RS or VLEW-fallback correction.
	OutcomeCorrected
	// OutcomeDUE: detected-but-uncorrectable, honestly reported.
	OutcomeDUE
	// OutcomeSDC: wrong data returned with no error — silent corruption.
	OutcomeSDC
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeClean:
		return "clean"
	case OutcomeCorrected:
		return "corrected"
	case OutcomeDUE:
		return "due"
	case OutcomeSDC:
		return "sdc"
	}
	return "unknown"
}
