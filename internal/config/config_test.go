package config

import (
	"math"
	"testing"
)

func TestTableIMatchesPaper(t *testing.T) {
	s := TableI()
	if s.CPU.Cores != 4 || s.CPU.FreqGHz != 3 || s.CPU.IssueWidth != 4 || s.CPU.ROBEntries != 168 {
		t.Errorf("CPU: %+v", s.CPU)
	}
	if s.L1.Ways != 2 || s.L1.SizeBytes != 64<<10 || s.L1.LatencyCycle != 1 {
		t.Errorf("L1: %+v", s.L1)
	}
	if s.LLC.Ways != 32 || s.LLC.SizeBytes != 4<<20 || s.LLC.LatencyCycle != 14 {
		t.Errorf("LLC: %+v", s.LLC)
	}
	if s.Controller.ReadQueue != 128 || s.Controller.WriteQueue != 128 {
		t.Errorf("controller queues: %+v", s.Controller)
	}
	if s.Controller.ClosePageNS != 50 || !s.Controller.FRFCFS {
		t.Errorf("page policy: %+v", s.Controller)
	}
	if s.BanksPerRank != 16 {
		t.Errorf("banks: %d", s.BanksPerRank)
	}
	if s.DRAM.BusMTps != 2400 {
		t.Errorf("bus: %+v", s.DRAM)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBurstDuration(t *testing.T) {
	s := TableI()
	// 64B over an 8B-wide 2400 MT/s bus: 8 beats at 2.4 GT/s = 3.33 ns.
	if math.Abs(s.DRAM.TBurstNS-3.333) > 0.01 {
		t.Errorf("TBurst=%.3f, want 3.333", s.DRAM.TBurstNS)
	}
}

func TestWithPMLatencies(t *testing.T) {
	s := TableI().WithPMLatencies(120, 300)
	if s.PM.TRCDNS != 120 || s.PM.TWRNS != 300 {
		t.Errorf("PM latencies not applied: %+v", s.PM)
	}
	if s.DRAM.TRCDNS == 120 {
		t.Error("DRAM timings must not change")
	}
}

func TestCyclesPerNS(t *testing.T) {
	if TableI().CyclesPerNS() != 3 {
		t.Error("3 GHz should be 3 cycles/ns")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]func(*System){
		"cores":      func(s *System) { s.CPU.Cores = 0 },
		"cacheWays":  func(s *System) { s.L1.Ways = 0 },
		"cacheSets":  func(s *System) { s.LLC.SizeBytes = 3 * s.LLC.Ways * s.LLC.LineBytes },
		"banks":      func(s *System) { s.BanksPerRank = 0 },
		"rowBytes":   func(s *System) { s.RowBytes = 8 },
		"issueWidth": func(s *System) { s.CPU.IssueWidth = 0 },
	}
	for name, mutate := range cases {
		s := TableI()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}
