package experiments

import (
	"strings"
	"testing"

	"chipkillpm/internal/nvram"
)

func TestAnalyticTablesWellFormed(t *testing.T) {
	cases := map[string]interface{ String() string }{
		"fig1":     Fig1RBER(),
		"fig2":     Fig2StorageCost(),
		"fig3":     Fig3FlashECC(),
		"fig4":     Fig4CodewordSweep(1e-3),
		"fig5":     Fig5Bandwidth(),
		"fig7":     Fig7ErrorDistribution(2e-4),
		"fig13":    Fig13HWCost(),
		"storage":  StorageSummary(),
		"appendix": AppendixSDC(),
		"scrub":    ScrubAnalysis(),
		"fallback": FallbackAnalysis(),
		"table1":   TableIConfig(),
		"ablThr":   AblationThreshold(),
	}
	for name, tab := range cases {
		out := tab.String()
		if len(out) < 40 || !strings.Contains(out, "\n") {
			t.Errorf("%s: degenerate table output", name)
		}
	}
}

func TestFig4ContainsPaperPoint(t *testing.T) {
	out := Fig4CodewordSweep(1e-3).String()
	if !strings.Contains(out, "27.0%") {
		t.Errorf("Fig 4 missing the 27%% design point:\n%s", out)
	}
	if !strings.Contains(out, "256B") || !strings.Contains(out, "22") {
		t.Error("Fig 4 missing the 256B/t=22 row")
	}
}

func TestAppendixContainsPaperRates(t *testing.T) {
	out := AppendixSDC().String()
	for _, want := range []string{"3.20e-11", "3.26e-22"} {
		if !strings.Contains(out, want) {
			t.Errorf("appendix table missing %s:\n%s", want, out)
		}
	}
}

func TestStorageSummaryMatches(t *testing.T) {
	out := StorageSummary().String()
	for _, want := range []string{"14-bit EC", "78-bit EC", "27.0%", "152%"} {
		if !strings.Contains(out, want) {
			t.Errorf("storage summary missing %q", want)
		}
	}
}

func TestMonteCarloRuntimeNoSDC(t *testing.T) {
	res, err := MonteCarloRuntime(2e-4, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.WrongData != 0 || res.Uncorrectable != 0 {
		t.Errorf("runtime campaign: %+v", res)
	}
	if res.BlocksRead == 0 {
		t.Error("no blocks read")
	}
}

func TestMonteCarloOutageWithChipFailure(t *testing.T) {
	res, err := MonteCarloOutage(1e-3, 1, true, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.WrongData != 0 || res.Uncorrectable != 0 {
		t.Errorf("outage campaign: %+v", res)
	}
	if res.ChipRepairs != 1 {
		t.Errorf("chip repairs = %d, want 1", res.ChipRepairs)
	}
	tab := MonteCarloTable([]MonteCarloResult{res})
	if !strings.Contains(tab.String(), "chip failure") {
		t.Error("table missing scenario label")
	}
}

func TestRunComparisonsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation campaign skipped in -short")
	}
	po := PerfOptions{Instructions: 150_000, Warmup: 40_000, Seed: 3}
	cmps, err := RunComparisons(nvram.ReRAM, po)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmps) != 18 {
		t.Fatalf("%d comparisons, want 18", len(cmps))
	}
	for _, tab := range []interface{ String() string }{
		PerfTable(cmps, nvram.ReRAM), Fig10Table(cmps), Fig14Table(cmps),
		Fig15Table(cmps), Fig18Table(cmps), AblationEUR(cmps),
	} {
		if len(tab.String()) < 100 {
			t.Error("degenerate simulation table")
		}
	}
}

func TestAblationOMVRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation skipped in -short")
	}
	po := PerfOptions{Instructions: 150_000, Warmup: 40_000, Seed: 3}
	tab, err := AblationOMV(nvram.PCM3, po, "hashmap")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Errorf("OMV ablation rows = %d", len(tab.Rows))
	}
	tab2, err := AblationPagePolicy(nvram.PCM3, po, "fft")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab2.Rows) != 2 {
		t.Errorf("page-policy ablation rows = %d", len(tab2.Rows))
	}
}
