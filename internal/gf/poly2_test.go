package gf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randPoly2(rng *rand.Rand, maxWords int) Poly2 {
	n := rng.Intn(maxWords + 1)
	p := make(Poly2, n)
	for i := range p {
		p[i] = rng.Uint64()
	}
	return p
}

func TestPoly2Degree(t *testing.T) {
	cases := []struct {
		p    Poly2
		want int
	}{
		{nil, -1},
		{Poly2{0}, -1},
		{Poly2{1}, 0},
		{Poly2{2}, 1},
		{Poly2{0x8000000000000000}, 63},
		{Poly2{0, 1}, 64},
		{NewPoly2(100, 3, 0), 100},
	}
	for _, c := range cases {
		if got := c.p.Degree(); got != c.want {
			t.Errorf("Degree(%v)=%d, want %d", c.p, got, c.want)
		}
	}
}

func TestPoly2SetCoeffAndCoeff(t *testing.T) {
	p := NewPoly2(0, 5, 130)
	for _, i := range []int{0, 5, 130} {
		if p.Coeff(i) != 1 {
			t.Errorf("Coeff(%d)=0, want 1", i)
		}
	}
	for _, i := range []int{1, 4, 6, 64, 129, 131, 500} {
		if p.Coeff(i) != 0 {
			t.Errorf("Coeff(%d)=1, want 0", i)
		}
	}
	q := p.SetCoeff(5, 0)
	if q.Coeff(5) != 0 || p.Coeff(5) != 1 {
		t.Error("SetCoeff must not mutate the receiver")
	}
}

func TestPoly2String(t *testing.T) {
	if s := NewPoly2(4, 1, 0).String(); s != "x^4+x+1" {
		t.Errorf("String()=%q, want x^4+x+1", s)
	}
	if s := (Poly2)(nil).String(); s != "0" {
		t.Errorf("zero String()=%q", s)
	}
}

func TestPoly2MulKnown(t *testing.T) {
	// (x+1)(x+1) = x^2+1 over GF(2).
	p := NewPoly2(1, 0)
	got := p.Mul(p)
	if !got.Equal(NewPoly2(2, 0)) {
		t.Errorf("(x+1)^2 = %v, want x^2+1", got)
	}
	// (x^2+x+1)(x+1) = x^3+1.
	got = NewPoly2(2, 1, 0).Mul(NewPoly2(1, 0))
	if !got.Equal(NewPoly2(3, 0)) {
		t.Errorf("got %v, want x^3+1", got)
	}
}

func TestPoly2DivModKnown(t *testing.T) {
	// x^3+1 = (x+1)(x^2+x+1) + 0
	quo, rem := NewPoly2(3, 0).DivMod(NewPoly2(1, 0))
	if !quo.Equal(NewPoly2(2, 1, 0)) || !rem.IsZero() {
		t.Errorf("DivMod: quo=%v rem=%v", quo, rem)
	}
	// x^4 mod (x^4+x+1) = x+1
	rem = NewPoly2(4).Mod(NewPoly2(4, 1, 0))
	if !rem.Equal(NewPoly2(1, 0)) {
		t.Errorf("x^4 mod prim = %v, want x+1", rem)
	}
}

func TestPoly2DivModRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		p := randPoly2(rng, 6)
		d := randPoly2(rng, 3)
		if d.IsZero() {
			continue
		}
		quo, rem := p.DivMod(d)
		if rem.Degree() >= d.Degree() {
			t.Fatalf("remainder degree %d >= divisor degree %d", rem.Degree(), d.Degree())
		}
		back := quo.Mul(d).Add(rem)
		if !back.Equal(p) {
			t.Fatalf("trial %d: quo*d+rem != p", trial)
		}
	}
}

func TestPoly2ShlMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		p := randPoly2(rng, 4)
		k := rng.Intn(200)
		if got, want := p.Shl(k), p.Mul(NewPoly2(k)); !got.Equal(want) {
			t.Fatalf("Shl(%d) mismatch", k)
		}
	}
}

func TestPoly2BytesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		data := make([]byte, rng.Intn(100))
		rng.Read(data)
		p := Poly2FromBytes(data)
		back := p.Bytes(len(data))
		if len(back) < len(data) {
			t.Fatalf("Bytes returned %d bytes, want >= %d", len(back), len(data))
		}
		for i, b := range data {
			if back[i] != b {
				t.Fatalf("byte %d: got %#x want %#x", i, back[i], b)
			}
		}
	}
}

func TestPoly2Weight(t *testing.T) {
	if w := NewPoly2(0, 1, 64, 100).Weight(); w != 4 {
		t.Errorf("Weight=%d, want 4", w)
	}
	if w := (Poly2)(nil).Weight(); w != 0 {
		t.Errorf("zero Weight=%d", w)
	}
}

// Properties over random polynomials, via testing/quick with a custom
// generator (raw []uint64 values work directly since Poly2 is a slice type).
func TestPoly2RingAxiomsQuick(t *testing.T) {
	mulComm := func(a, b Poly2) bool { return a.Mul(b).Equal(b.Mul(a)) }
	mulAssoc := func(a, b, c Poly2) bool {
		return a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c)))
	}
	dist := func(a, b, c Poly2) bool {
		return a.Mul(b.Add(c)).Equal(a.Mul(b).Add(a.Mul(c)))
	}
	addSelfZero := func(a Poly2) bool { return a.Add(a).IsZero() }
	cfg := &quick.Config{MaxCount: 60}
	for name, prop := range map[string]any{
		"mulComm": mulComm, "mulAssoc": mulAssoc, "dist": dist, "addSelfZero": addSelfZero,
	} {
		if err := quick.Check(prop, cfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestPoly2DegreeOfProduct(t *testing.T) {
	prop := func(a, b Poly2) bool {
		if a.IsZero() || b.IsZero() {
			return a.Mul(b).IsZero()
		}
		return a.Mul(b).Degree() == a.Degree()+b.Degree()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
