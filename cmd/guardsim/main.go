// Command guardsim demonstrates the self-healing runtime: the
// internal/guard health supervisor watching a live engine, discriminating
// transient faults from chip kills, migrating to the Sec V-E striped
// layout online, and recovering a crashed migration from its journal.
//
//	guardsim -scenario chipkill          # kill a chip, watch detect->migrate->degraded
//	guardsim -scenario storm             # dead VLEW on a healthy chip: probe and acquit
//	guardsim -scenario crash             # power loss mid-migration, journal recovery
//	guardsim -scenario chipkill -chip 5 -banks 4 -seed 9
package main

import (
	"flag"
	"fmt"
	"os"

	"chipkillpm/internal/core"
	"chipkillpm/internal/engine"
	"chipkillpm/internal/guard"
	"chipkillpm/internal/rank"
)

func main() {
	var (
		scenario = flag.String("scenario", "chipkill", "chipkill, storm, or crash")
		chip     = flag.Int("chip", 2, "chip to fault")
		banks    = flag.Int("banks", 4, "rank banks")
		rows     = flag.Int("rows", 8, "rows per bank")
		rowBytes = flag.Int("rowbytes", 1024, "row data bytes per chip")
		seed     = flag.Int64("seed", 1, "seed for rank init, workload, and probes")
		ticks    = flag.Int("ticks", 2000, "supervisor tick budget")
	)
	flag.Parse()

	r, err := rank.New(rank.PaperConfig(*banks, *rows, *rowBytes, *seed))
	check(err)
	eng, err := engine.New(r, engine.Config{Core: core.DefaultConfig()})
	check(err)
	fmt.Printf("rank: %d blocks, %d chips + parity; band = %d blocks\n",
		eng.Blocks(), r.Config().DataChips, eng.BandBlocks())

	buf := make([]byte, eng.BlockBytes())
	for b := int64(0); b < eng.Blocks(); b++ {
		fill(buf, b)
		check(eng.WriteBlockInitial(b, buf))
	}

	region := guard.NewRegion(guard.RegionSizeFor(eng))
	sup, err := guard.New(eng, region, guard.Config{Seed: *seed})
	check(err)

	switch *scenario {
	case "chipkill":
		fmt.Printf("killing chip %d under load\n", *chip)
		eng.Quiesce(func() { r.FailChip(*chip) })
		run(eng, sup, *ticks, guard.StateDegraded)
	case "storm":
		fmt.Printf("planting a dead VLEW on healthy chip %d (24 bit flips)\n", *chip)
		loc := r.Locate(eng.Blocks() / 2)
		eng.Quiesce(func() {
			c := r.Chip(*chip)
			for k := 0; k < r.Config().ChipAccessBytes; k++ {
				for _, bit := range []uint{0, 3, 6} {
					c.FlipDataBit(loc.Bank, loc.Row, loc.Col+k, bit)
				}
			}
		})
		for i := 0; i < 3; i++ { // the storm: reads of the broken word
			check(eng.ReadBlockInto(eng.Blocks()/2, buf))
		}
		run(eng, sup, *ticks, guard.StateHealthy)
	case "crash":
		fmt.Printf("killing chip %d, then power loss mid-migration\n", *chip)
		eng.Quiesce(func() { r.FailChip(*chip) })
		runUntil(eng, sup, *ticks, func() bool { return eng.Stats().BandsMigrated >= 8 })
		region.TearNextWrite(20)
		if err := sup.Tick(); err != nil {
			fmt.Printf("CRASH: %v\n", err)
		}
		fmt.Printf("reboot: %d bands on rank, journal recovering...\n", eng.Stats().BandsMigrated)
		//chipkill:allow bankaccess simulated power loss; old engine is discarded before reboot
		r.CloseAllRows()
		region.Reboot()
		eng, err = engine.New(r, engine.Config{Core: core.DefaultConfig()})
		check(err)
		sup, err = guard.New(eng, region, guard.Config{Seed: *seed + 1})
		check(err)
		fmt.Printf("recovered: %s (resumed=%v)\n", sup.State(), sup.Report().MigrationResumed)
		run(eng, sup, *ticks, guard.StateDegraded)
	default:
		check(fmt.Errorf("unknown scenario %q", *scenario))
	}

	// Final verification: every block byte-exact.
	bad := 0
	want := make([]byte, eng.BlockBytes())
	for b := int64(0); b < eng.Blocks(); b++ {
		check(eng.ReadBlockInto(b, buf))
		fill(want, b)
		if string(buf) != string(want) {
			bad++
		}
	}
	rep := sup.Report()
	st := eng.Stats()
	fmt.Printf("final: state=%s raised=%d cleared=%d verdicts=%d bands=%d due=%d corrupt=%d\n",
		rep.State, rep.SuspicionsRaised, rep.SuspicionsCleared, rep.Verdicts,
		st.BandsMigrated, st.Uncorrectable, bad)
	if bad > 0 || st.Uncorrectable > 0 {
		os.Exit(1)
	}
}

// run ticks the supervisor, narrating state transitions, until it reaches
// want (or exhausts the budget).
func run(eng *engine.Engine, sup *guard.Supervisor, ticks int, want guard.State) {
	runUntil(eng, sup, ticks, func() bool { return sup.State() == want && sup.Report().SuspicionsRaised > 0 })
}

func runUntil(eng *engine.Engine, sup *guard.Supervisor, ticks int, done func() bool) {
	buf := make([]byte, eng.BlockBytes())
	last := sup.State()
	for i := 0; i < ticks && !done(); i++ {
		// Demand traffic between ticks: the supervisor works online.
		for j := int64(0); j < 4; j++ {
			b := (int64(i)*37 + j*101) % eng.Blocks()
			if err := eng.ReadBlockInto(b, buf); err != nil {
				fmt.Printf("tick %d: read %d: %v\n", i, b, err)
			}
		}
		if err := sup.Tick(); err != nil {
			fmt.Printf("tick %d: %v\n", i, err)
			return
		}
		if st := sup.State(); st != last {
			fmt.Printf("tick %4d: %s -> %s\n", i, last, st)
			last = st
		}
	}
}

func fill(buf []byte, block int64) {
	for i := range buf {
		buf[i] = byte(block>>uint(8*(i&7))) ^ byte(i)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "guardsim:", err)
		os.Exit(1)
	}
}
