package bch

import (
	"bytes"
	"math/rand"
	"testing"
)

// fuzzCode is the paper's VLEW code: BCH over GF(2^12), 2048 data bits,
// t=22. Built once; fuzz iterations only pay encode/corrupt/decode.
var fuzzCode = Must(12, 2048, 22)

// FuzzDecode asserts the decoder's contract on decode(corrupt(encode(x))):
//
//   - up to t flipped bits: decode succeeds, reports exactly that many
//     corrections, and restores data and parity bit-for-bit;
//   - beyond t flipped bits: decode either fails leaving the buffers
//     untouched (rollback guarantee), or lands on a codeword with at most
//     t corrections — bounded-distance miscorrection, never a non-codeword
//     and never a silent partial fix.
func FuzzDecode(f *testing.F) {
	f.Add([]byte("hello vlew"), byte(0), int64(1))
	f.Add(bytes.Repeat([]byte{0xa5}, 256), byte(1), int64(2))
	f.Add([]byte{}, byte(22), int64(3))
	f.Add(bytes.Repeat([]byte{0xff}, 300), byte(23), int64(4))
	f.Add([]byte("x"), byte(44), int64(5))

	f.Fuzz(func(t *testing.T, data []byte, nflips byte, seed int64) {
		code := fuzzCode
		buf := make([]byte, code.DataBytes())
		copy(buf, data)
		parity := code.Encode(buf)

		// 0..2t distinct flip positions across the whole codeword:
		// degree p < r is parity bit p, otherwise data bit p-r.
		flips := int(nflips) % (2*code.T() + 1)
		rng := rand.New(rand.NewSource(seed))
		n := code.K() + code.ParityBits()
		d2 := append([]byte(nil), buf...)
		p2 := append([]byte(nil), parity...)
		for _, p := range rng.Perm(n)[:flips] {
			if p < code.ParityBits() {
				p2[p/8] ^= 1 << uint(p%8)
			} else {
				d := p - code.ParityBits()
				d2[d/8] ^= 1 << uint(d%8)
			}
		}
		dIn := append([]byte(nil), d2...)
		pIn := append([]byte(nil), p2...)

		fixed, err := code.Decode(d2, p2)
		if flips <= code.T() {
			if err != nil {
				t.Fatalf("%d flips (<= t=%d): decode failed: %v", flips, code.T(), err)
			}
			if fixed != flips {
				t.Fatalf("%d flips: decode reported %d corrections", flips, fixed)
			}
			if !bytes.Equal(d2, buf) || !bytes.Equal(p2, parity) {
				t.Fatalf("%d flips: decode returned without restoring the codeword", flips)
			}
			return
		}
		if err != nil {
			if !bytes.Equal(d2, dIn) || !bytes.Equal(p2, pIn) {
				t.Fatalf("%d flips: failed decode modified its buffers", flips)
			}
			return
		}
		if fixed > code.T() {
			t.Fatalf("%d flips: decode claims %d corrections > t=%d", flips, fixed, code.T())
		}
		if !code.CheckClean(d2, p2) {
			t.Fatalf("%d flips: decode returned success on a non-codeword", flips)
		}
	})
}
