//go:build race

package engine

// seqlockCapable is false under the race detector: the seqlock's
// validated-but-racy plain loads would be reported as races (see
// seqlock_norace.go), so -race builds serve every read under the shard
// mutex and the fast path compiles out.
const seqlockCapable = false
