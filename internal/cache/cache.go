// Package cache models the simulated processor's cache hierarchy: private
// L1s and a shared LLC extended with the paper's two tag bits per LLC line
// (Sec V-D):
//
//   - SAM ("SameAsMem"): the line currently holds the same value as
//     off-chip persistent memory (set on fill-from-memory and on clean).
//   - OMV: the line preserves the Old Memory Value of a dirty persistent-
//     memory block and is invisible to normal lookups.
//
// When a dirty write-back arrives at an LLC line whose SAM bit is set, the
// LLC preserves the old copy by flipping it to an OMV line and allocating
// a different way for the dirty data. When a dirty persistent-memory block
// is later written back or cleaned, the LLC finds the matching OMV (or
// SAM) line and supplies the old value, sparing the memory controller the
// read-modify-write fetch; this succeeds for ~98.6% of persistent-memory
// writes in the paper (Fig 18).
//
// The model is tag-only (no data payloads): the functional correctness of
// the XOR write path is exercised in internal/core; here we account time
// and traffic.
package cache

import (
	"fmt"

	"chipkillpm/internal/config"
)

// Memory is the cache hierarchy's view of the memory controller.
type Memory interface {
	// Read returns the absolute time (ns) at which the block's data is
	// available, given the request is issued at now.
	Read(addr uint64, nowNS float64) (doneNS float64)
	// Write posts a block write. needOMV is true when the write targets
	// persistent memory and the LLC could not supply the old memory
	// value, forcing the controller to fetch it from memory first.
	// The return value is the time at which the CPU may proceed (usually
	// now; later when write buffers are full).
	Write(addr uint64, nowNS float64, needOMV bool) (freeNS float64)
	// IsPM reports whether the address belongs to persistent memory.
	IsPM(addr uint64) bool
}

// OMVPolicy selects how the hierarchy supplies old memory values for
// persistent-memory writes.
type OMVPolicy int

// OMV policies.
const (
	// OMVOff models the bit-error-only baseline: no VLEW code bits exist,
	// so writes never need old values.
	OMVOff OMVPolicy = iota
	// OMVPreserve is the proposal: SAM/OMV tag bits keep old values of
	// dirty persistent-memory blocks in the LLC (Sec V-D).
	OMVPreserve
	// OMVAlwaysFetch models the proposal without the LLC optimisation:
	// every persistent-memory write fetches its old value from memory
	// (the read-modify-write overhead of Fig 5). Ablation only.
	OMVAlwaysFetch
)

type line struct {
	tag   uint64
	valid bool
	dirty bool
	pm    bool
	sam   bool
	omv   bool
	lru   uint64
}

type cacheArray struct {
	sets     [][]line
	setMask  uint64
	lineBits uint
	tick     uint64
}

func newArray(c config.Cache) *cacheArray {
	nsets := c.SizeBytes / (c.Ways * c.LineBytes)
	a := &cacheArray{
		sets:    make([][]line, nsets),
		setMask: uint64(nsets - 1),
	}
	for i := range a.sets {
		a.sets[i] = make([]line, c.Ways)
	}
	for b := c.LineBytes; b > 1; b >>= 1 {
		a.lineBits++
	}
	return a
}

func (a *cacheArray) set(block uint64) []line { return a.sets[block&a.setMask] }

// lookup finds a valid, non-OMV line holding block.
func (a *cacheArray) lookup(block uint64) *line {
	for i := range a.set(block) {
		l := &a.set(block)[i]
		if l.valid && !l.omv && l.tag == block {
			a.tick++
			l.lru = a.tick
			return l
		}
	}
	return nil
}

// lookupOMV finds an OMV line holding block.
func (a *cacheArray) lookupOMV(block uint64) *line {
	for i := range a.set(block) {
		l := &a.set(block)[i]
		if l.valid && l.omv && l.tag == block {
			return l
		}
	}
	return nil
}

// victim returns the LRU line of block's set (possibly valid and dirty).
func (a *cacheArray) victim(block uint64) *line {
	set := a.set(block)
	best := &set[0]
	for i := range set {
		l := &set[i]
		if !l.valid {
			return l
		}
		if l.lru < best.lru {
			best = l
		}
	}
	return best
}

func (a *cacheArray) touch(l *line) {
	a.tick++
	l.lru = a.tick
}

// Stats counts hierarchy activity.
type Stats struct {
	L1Hits, L1Misses   int64
	LLCHits, LLCMisses int64
	Writebacks         int64 // dirty evictions reaching memory
	Cleans             int64 // clwb-initiated writes reaching memory
	PMWrites           int64 // writes to persistent memory (Fig 18 denominator)
	OMVHits            int64 // old value served from LLC (SAM or OMV line)
	OMVMisses          int64 // old value fetched from off-chip memory
	OMVLinesCreated    int64
}

// OMVHitRate returns the fraction of persistent-memory writes whose OMV
// was served from the LLC (Fig 18).
func (s Stats) OMVHitRate() float64 {
	tot := s.OMVHits + s.OMVMisses
	if tot == 0 {
		return 0
	}
	return float64(s.OMVHits) / float64(tot)
}

// Hierarchy is the multi-core cache hierarchy.
type Hierarchy struct {
	cfg      config.System
	l1       []*cacheArray
	llc      *cacheArray
	mem      Memory
	policy   OMVPolicy
	l1LatNS  float64
	llcLatNS float64
	stats    Stats
}

// New builds the hierarchy with the given OMV policy (see OMVPolicy).
func New(cfg config.System, mem Memory, policy OMVPolicy) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Hierarchy{
		cfg:      cfg,
		llc:      newArray(cfg.LLC),
		mem:      mem,
		policy:   policy,
		l1LatNS:  float64(cfg.L1.LatencyCycle) / cfg.CyclesPerNS(),
		llcLatNS: float64(cfg.LLC.LatencyCycle) / cfg.CyclesPerNS(),
	}
	for i := 0; i < cfg.CPU.Cores; i++ {
		h.l1 = append(h.l1, newArray(cfg.L1))
	}
	return h, nil
}

// Stats returns a snapshot of the counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// ResetStats zeroes the counters.
func (h *Hierarchy) ResetStats() { h.stats = Stats{} }

func (h *Hierarchy) block(addr uint64) uint64 { return addr >> h.llc.lineBits }

// Load services a load from the given core, returning the absolute time
// its data is available.
func (h *Hierarchy) Load(core int, addr uint64, now float64) float64 {
	block := h.block(addr)
	l1 := h.l1[core]
	if l := l1.lookup(block); l != nil {
		h.stats.L1Hits++
		return now + h.l1LatNS
	}
	h.stats.L1Misses++
	now += h.l1LatNS
	if l := h.llc.lookup(block); l != nil {
		h.stats.LLCHits++
		done := now + h.llcLatNS
		h.fillL1(core, block, l.pm, false, done)
		return done
	}
	h.stats.LLCMisses++
	now += h.llcLatNS
	done := h.mem.Read(addr, now)
	pm := h.mem.IsPM(addr)
	h.fillLLC(block, pm, done, true /*fromMemory*/, false /*dirty*/)
	h.fillL1(core, block, pm, false, done)
	return done
}

// Store services a store (write-allocate): the line is brought into the
// core's L1 and marked dirty. Returns the time the store retires from the
// pipeline's view (stores are buffered, so this is near-immediate for
// hits; misses pay the fill).
func (h *Hierarchy) Store(core int, addr uint64, now float64) float64 {
	block := h.block(addr)
	l1 := h.l1[core]
	h.invalidateOtherL1s(core, block)
	if l := l1.lookup(block); l != nil {
		h.stats.L1Hits++
		l.dirty = true
		return now + h.l1LatNS
	}
	h.stats.L1Misses++
	now += h.l1LatNS
	pm := h.mem.IsPM(addr)
	if l := h.llc.lookup(block); l != nil {
		h.stats.LLCHits++
		done := now + h.llcLatNS
		h.fillL1(core, block, l.pm, true, done)
		return done
	}
	h.stats.LLCMisses++
	now += h.llcLatNS
	done := h.mem.Read(addr, now) // write-allocate fetch
	h.fillLLC(block, pm, done, true, false)
	h.fillL1(core, block, pm, true, done)
	return done
}

// Clwb cleans a (possibly dirty) cacheline to persistent memory without
// evicting it (the cacheline cleaning instruction of Sec V-D). Returns
// the time the clean is accepted by the memory system.
func (h *Hierarchy) Clwb(core int, addr uint64, now float64) float64 {
	block := h.block(addr)
	l1 := h.l1[core]
	now += h.l1LatNS
	if l := l1.lookup(block); l != nil && l.dirty {
		l.dirty = false
		return h.cleanThroughLLC(block, l.pm, now+h.llcLatNS)
	}
	// Not dirty in this L1; it may be dirty in the LLC.
	if l := h.llc.lookup(block); l != nil && l.dirty {
		return h.cleanLLCLine(l, now+h.llcLatNS)
	}
	return now
}

// invalidateOtherL1s models write-invalidate coherence for stores.
func (h *Hierarchy) invalidateOtherL1s(core int, block uint64) {
	for i, l1 := range h.l1 {
		if i == core {
			continue
		}
		for j := range l1.set(block) {
			l := &l1.set(block)[j]
			if l.valid && l.tag == block {
				if l.dirty {
					// Dirty data migrates into the LLC.
					h.writebackToLLC(block, l.pm, 0)
				}
				l.valid = false
			}
		}
	}
}

// fillL1 installs a block into a core's L1, writing back any dirty victim
// into the LLC.
func (h *Hierarchy) fillL1(core int, block uint64, pm, dirty bool, now float64) {
	l1 := h.l1[core]
	v := l1.victim(block)
	if v.valid && v.dirty {
		h.writebackToLLC(v.tag, v.pm, now)
	}
	*v = line{tag: block, valid: true, dirty: dirty, pm: pm}
	l1.touch(v)
}

// fillLLC installs a block into the LLC. fromMemory sets the SAM bit
// (the line equals off-chip memory). A dirty victim is written back to
// memory; an OMV victim is silently dropped (it was a clean copy).
func (h *Hierarchy) fillLLC(block uint64, pm bool, now float64, fromMemory, dirty bool) *line {
	v := h.llc.victim(block)
	if v.valid && v.dirty && !v.omv {
		h.writebackToMemory(v.tag, v.pm, now)
	}
	*v = line{tag: block, valid: true, dirty: dirty, pm: pm, sam: fromMemory && h.policy == OMVPreserve && pm}
	h.llc.touch(v)
	return v
}

// writebackToLLC handles a dirty block arriving at the LLC from an L1.
// If the matching LLC line has its SAM bit set, the old copy is preserved
// as an OMV line and the dirty data takes a different way (Sec V-D).
func (h *Hierarchy) writebackToLLC(block uint64, pm bool, now float64) {
	if l := h.llc.lookup(block); l != nil {
		if h.policy == OMVPreserve && pm && l.sam && !l.dirty {
			// Preserve the old memory value: this line becomes the OMV
			// copy; allocate a different way for the dirty data.
			l.omv = true
			l.sam = false
			h.stats.OMVLinesCreated++
			nl := h.fillLLC(block, pm, now, false, true)
			nl.dirty = true
			return
		}
		l.dirty = true
		l.sam = false
		return
	}
	// Non-inclusive hierarchy: the LLC may not hold the block; allocate.
	h.fillLLC(block, pm, now, false, true)
}

// cleanThroughLLC handles a clwb'd dirty block passing from an L1 through
// the LLC on its way to persistent memory. The LLC looks for a matching
// line with SAM or OMV set to supply the old memory value (Sec V-D).
func (h *Hierarchy) cleanThroughLLC(block uint64, pm bool, now float64) float64 {
	omvHit := false
	if l := h.llc.lookup(block); l != nil {
		if l.sam && !l.dirty {
			omvHit = true
		} else if l.dirty {
			// The LLC's own copy is dirty; its OMV line (if any) serves.
			if o := h.llc.lookupOMV(block); o != nil {
				omvHit = true
				o.valid = false
			}
		}
		// The cleaned data updates the LLC copy, which now equals memory.
		l.dirty = false
		l.sam = h.policy == OMVPreserve && pm
	} else if o := h.llc.lookupOMV(block); o != nil {
		omvHit = true
		o.valid = false
		// Install the cleaned block with SAM set.
		h.fillLLC(block, pm, now, true, false)
	}
	return h.issueWrite(block, pm, now, omvHit, true)
}

// cleanLLCLine cleans a dirty LLC-resident line (clwb that missed L1).
func (h *Hierarchy) cleanLLCLine(l *line, now float64) float64 {
	omvHit := false
	if o := h.llc.lookupOMV(l.tag); o != nil {
		omvHit = true
		o.valid = false
	}
	l.dirty = false
	l.sam = h.policy == OMVPreserve && l.pm
	return h.issueWrite(l.tag, l.pm, now, omvHit, true)
}

// writebackToMemory handles a dirty LLC line evicted to memory. The OMV
// line in the same set supplies the old value when present.
func (h *Hierarchy) writebackToMemory(block uint64, pm bool, now float64) {
	omvHit := false
	if o := h.llc.lookupOMV(block); o != nil {
		omvHit = true
		o.valid = false
	}
	h.issueWrite(block, pm, now, omvHit, false)
}

// issueWrite sends a block write to the memory controller, accounting OMV
// statistics for persistent-memory writes.
func (h *Hierarchy) issueWrite(block uint64, pm bool, now float64, omvHit, clean bool) float64 {
	if clean {
		h.stats.Cleans++
	} else {
		h.stats.Writebacks++
	}
	needOMV := false
	if pm {
		h.stats.PMWrites++
		switch h.policy {
		case OMVPreserve:
			if omvHit {
				h.stats.OMVHits++
			} else {
				h.stats.OMVMisses++
				needOMV = true
			}
		case OMVAlwaysFetch:
			h.stats.OMVMisses++
			needOMV = true
		}
	}
	return h.mem.Write(block<<h.llc.lineBits, now, needOMV)
}

// Occupancy reports cache-occupancy fractions for Fig 10: the fraction of
// all cachelines in the hierarchy (LLC + every L1) that hold dirty
// persistent-memory blocks, and the fraction of LLC lines that are OMV
// copies.
func (h *Hierarchy) Occupancy() (dirtyPMFrac, omvFrac float64) {
	var total, dirtyPM, omv, llcTotal int
	count := func(a *cacheArray, isLLC bool) {
		for _, set := range a.sets {
			for _, l := range set {
				total++
				if isLLC {
					llcTotal++
				}
				if !l.valid {
					continue
				}
				if l.dirty && l.pm && !l.omv {
					dirtyPM++
				}
				if isLLC && l.omv {
					omv++
				}
			}
		}
	}
	for _, l1 := range h.l1 {
		count(l1, false)
	}
	count(h.llc, true)
	return float64(dirtyPM) / float64(total), float64(omv) / float64(llcTotal)
}

// Describe returns a human-readable summary of the configuration.
func (h *Hierarchy) Describe() string {
	return fmt.Sprintf("%d x L1(%dKB/%d-way) + LLC(%dMB/%d-way), OMV=%v",
		len(h.l1), h.cfg.L1.SizeBytes>>10, h.cfg.L1.Ways,
		h.cfg.LLC.SizeBytes>>20, h.cfg.LLC.Ways, h.policy == OMVPreserve)
}
