// Package stats provides small statistics helpers shared by the simulator
// and the experiment harness: counters, running means, histograms and a
// geometric mean, plus fixed-width table rendering for experiment output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean is an online arithmetic mean.
type Mean struct {
	n   int64
	sum float64
}

// Add accumulates one observation.
func (m *Mean) Add(v float64) { m.n++; m.sum += v }

// AddN accumulates an observation with weight n.
func (m *Mean) AddN(v float64, n int64) { m.n += n; m.sum += v * float64(n) }

// Value returns the mean, or 0 when empty.
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// N returns the number of observations.
func (m *Mean) N() int64 { return m.n }

// GeoMean returns the geometric mean of vs, ignoring non-positive entries.
func GeoMean(vs []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vs {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Histogram is a fixed-bucket integer histogram (bucket i counts value i;
// the last bucket absorbs overflow).
type Histogram struct {
	buckets []int64
	total   int64
}

// NewHistogram creates a histogram with n buckets (values 0..n-2, plus an
// overflow bucket).
func NewHistogram(n int) *Histogram { return &Histogram{buckets: make([]int64, n)} }

// Add records one observation of value v.
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.buckets) {
		v = len(h.buckets) - 1
	}
	h.buckets[v]++
	h.total++
}

// Count returns bucket v's count.
func (h *Histogram) Count(v int) int64 {
	if v < 0 || v >= len(h.buckets) {
		return 0
	}
	return h.buckets[v]
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Frac returns bucket v's fraction of all observations.
func (h *Histogram) Frac(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Count(v)) / float64(h.total)
}

// FracAtLeast returns the fraction of observations >= v.
func (h *Histogram) FracAtLeast(v int) float64 {
	if h.total == 0 {
		return 0
	}
	var c int64
	for i := v; i < len(h.buckets); i++ {
		if i >= 0 {
			c += h.buckets[i]
		}
	}
	return float64(c) / float64(h.total)
}

// Table renders rows of labelled values as a fixed-width text table, used
// by cmd/experiments to print each figure's series.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// SortedKeys returns map keys in sorted order; handy for stable output.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
