package nvram

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestEURDeferredDrainMatchesImmediate is the differential pin for the
// raw-delta EUR: accumulating many XOR deltas and paying one EncodeDelta
// at row close must leave byte-identical cells and code bits to draining
// after every single write. BCH encoding is linear, so
// Encode(d1 ^ d2) == Encode(d1) ^ Encode(d2) — this test is what keeps
// that assumption honest if the encoder ever grows a nonlinear step.
func TestEURDeferredDrainMatchesImmediate(t *testing.T) {
	deferred := newTestChip(t)
	immediate := newTestChip(t)
	rng := rand.New(rand.NewSource(77))

	// Random-width deltas at random offsets, revisiting rows and VLEWs so
	// the accumulated registers see overlapping and disjoint ranges (the
	// lo/hi touched-range bookkeeping has to merge both).
	type w struct {
		bank, row, off int
		delta          []byte
	}
	var writes []w
	for i := 0; i < 200; i++ {
		n := 1 + rng.Intn(64)
		wr := w{
			bank:  rng.Intn(testGeom.Banks),
			row:   rng.Intn(4), // few rows: force revisits and implicit closes
			off:   rng.Intn(testGeom.RowDataBytes - 64),
			delta: make([]byte, n),
		}
		rng.Read(wr.delta)
		writes = append(writes, wr)
	}
	for _, wr := range writes {
		deferred.WriteXOR(wr.bank, wr.row, wr.off, wr.delta)

		immediate.WriteXOR(wr.bank, wr.row, wr.off, wr.delta)
		immediate.CloseRow(wr.bank) // drain after every write
	}
	deferred.CloseAllRows()
	immediate.CloseAllRows()

	if !bytes.Equal(deferred.CellArray(), immediate.CellArray()) {
		t.Fatal("deferred and immediate EUR drains left different data cells")
	}
	for bank := 0; bank < testGeom.Banks; bank++ {
		for row := 0; row < 4; row++ {
			for v := 0; v < testGeom.VLEWsPerRow(); v++ {
				dc := deferred.ReadCode(bank, row, v)
				ic := immediate.ReadCode(bank, row, v)
				if !bytes.Equal(dc, ic) {
					t.Fatalf("bank %d row %d vlew %d: deferred code differs from immediate", bank, row, v)
				}
			}
		}
	}
	// The whole point of deferring: strictly fewer code writes for the
	// same final state.
	if d, i := deferred.Stats().VLEWCodeWrites, immediate.Stats().VLEWCodeWrites; d >= i {
		t.Fatalf("deferred drain did not coalesce: %d code writes vs %d immediate", d, i)
	}
}

// TestWriteVLEWPreservesOpenRowEUR pins the EUR addressing contract that
// the fleet's chip-repair campaigns flushed out: an EUR slot is addressed
// by (bank, vlew) and belongs to the bank's OPEN row, so a wholesale
// VLEW overwrite of a CLOSED row (patrol scrub fixing a cold word while
// demand traffic holds another row open) must leave the open row's
// pending code update armed. Discarding it leaves the open row's VLEW
// with stale code bits — BCH-uncorrectable at best, silently
// miscorrected at worst.
func TestWriteVLEWPreservesOpenRowEUR(t *testing.T) {
	c := newTestChip(t)
	code := testEncoder(t)
	rng := rand.New(rand.NewSource(9))

	// Demand write: open row 1, arming an EUR delta for (bank 0, vlew 2).
	delta := make([]byte, 64)
	rng.Read(delta)
	c.WriteXOR(0, 1, 2*testGeom.VLEWDataBytes, delta)

	// Patrol-style write-back to the SAME (bank, vlew) of a DIFFERENT,
	// closed row: read the word, write it straight back.
	data, vcode := c.ReadVLEW(0, 5, 2)
	c.WriteVLEW(0, 5, 2, data, vcode)

	// Closing the open row must still drain the pending update, leaving
	// row 1's VLEW 2 internally consistent.
	c.CloseRow(0)
	data, vcode = c.ReadVLEW(0, 1, 2)
	if fixed, err := code.Decode(data, vcode[:code.ParityBytes()]); err != nil || fixed != 0 {
		t.Fatalf("open row's VLEW inconsistent after closed-row write-back: fixed=%d err=%v", fixed, err)
	}

	// And overwriting the OPEN row's word wholesale must still discard
	// the slot: arm another delta, overwrite, close — the stale delta
	// must not be drained on top of the fresh contents.
	rng.Read(delta)
	c.WriteXOR(0, 3, 2*testGeom.VLEWDataBytes, delta)
	fresh := make([]byte, testGeom.VLEWDataBytes)
	rng.Read(fresh)
	fcode := make([]byte, testGeom.VLEWCodeBytes)
	copy(fcode, code.Encode(fresh))
	c.WriteVLEW(0, 3, 2, fresh, fcode)
	c.CloseRow(0)
	data, vcode = c.ReadVLEW(0, 3, 2)
	if fixed, err := code.Decode(data, vcode[:code.ParityBytes()]); err != nil || fixed != 0 {
		t.Fatalf("stale EUR drained over wholesale overwrite: fixed=%d err=%v", fixed, err)
	}
}
