package trace

import (
	"testing"

	"chipkillpm/internal/cpu"
)

func TestWorkloadCatalog(t *testing.T) {
	ws := Workloads()
	if len(ws) != 18 {
		t.Fatalf("catalog has %d workloads, want 18", len(ws))
	}
	seen := map[string]bool{}
	for _, p := range ws {
		if seen[p.Name] {
			t.Errorf("duplicate workload %q", p.Name)
		}
		seen[p.Name] = true
		if p.PMFootprintBlocks <= 0 || p.ComputePerQuery <= 0 {
			t.Errorf("%s: degenerate profile %+v", p.Name, p)
		}
		if p.WriteRowLocality < 0 || p.WriteRowLocality > 1 {
			t.Errorf("%s: locality out of range", p.Name)
		}
	}
	if len(WhisperWorkloads()) != 10 || len(SplashWorkloads()) != 8 {
		t.Error("suite split wrong")
	}
}

func TestFindWorkload(t *testing.T) {
	if _, ok := FindWorkload("hashmap"); !ok {
		t.Error("hashmap not found")
	}
	if _, ok := FindWorkload("nope"); ok {
		t.Error("bogus workload found")
	}
}

func TestStreamDeterminism(t *testing.T) {
	p, _ := FindWorkload("echo")
	a := NewStream(p, 1<<40, 1<<20, 42)
	b := NewStream(p, 1<<40, 1<<20, 42)
	for i := 0; i < 10000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("streams diverged at op %d", i)
		}
	}
}

func TestStreamSeedsDiffer(t *testing.T) {
	p, _ := FindWorkload("echo")
	a := NewStream(p, 1<<40, 1<<20, 1)
	b := NewStream(p, 1<<40, 1<<20, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same == 1000 {
		t.Error("different seeds produced identical streams")
	}
}

// opMix runs n ops and returns counts per kind plus address stats.
func opMix(p Profile, n int) (counts map[cpu.Kind]int, pmLoads, addrInPM int) {
	s := NewStream(p, 1<<40, 1<<20, 3)
	counts = map[cpu.Kind]int{}
	for i := 0; i < n; i++ {
		op := s.Next()
		counts[op.Kind]++
		if op.Kind == cpu.Load && op.Addr >= 1<<40 {
			pmLoads++
		}
		if op.Addr >= 1<<40 {
			addrInPM++
		}
	}
	return counts, pmLoads, addrInPM
}

func TestMixMatchesProfile(t *testing.T) {
	p, _ := FindWorkload("hashmap")
	counts, _, _ := opMix(p, 200000)
	if counts[cpu.Store] == 0 || counts[cpu.Load] == 0 || counts[cpu.Compute] == 0 {
		t.Fatalf("missing op kinds: %v", counts)
	}
	// Steady-state cleaning: one clwb per PM write (write-behind window).
	pmWrites := float64(counts[cpu.Store]) * p.PMWrites / (p.PMWrites + p.DRAMWrites)
	cleans := float64(counts[cpu.Clwb])
	if cleans < 0.8*pmWrites || cleans > 1.2*pmWrites {
		t.Errorf("cleans=%v vs pm writes~%.0f", cleans, pmWrites)
	}
}

func TestAddressesWithinFootprints(t *testing.T) {
	p, _ := FindWorkload("btree")
	s := NewStream(p, 1<<40, 1<<20, 4)
	pmLimit := uint64(1)<<40 + uint64(p.PMFootprintBlocks)*64
	dramLimit := uint64(1)<<20 + uint64(p.DRAMFootprintBlocks)*64
	for i := 0; i < 100000; i++ {
		op := s.Next()
		if op.Kind == cpu.Compute {
			continue
		}
		if op.Addr >= 1<<40 {
			if op.Addr >= pmLimit {
				t.Fatalf("PM address %#x beyond footprint", op.Addr)
			}
		} else if op.Addr < 1<<20 || op.Addr >= dramLimit {
			t.Fatalf("DRAM address %#x outside region", op.Addr)
		}
	}
}

func TestPointerChaseSetsDep(t *testing.T) {
	p, _ := FindWorkload("rbtree")
	s := NewStream(p, 1<<40, 1<<20, 5)
	deps := 0
	for i := 0; i < 50000; i++ {
		op := s.Next()
		if op.Kind == cpu.Load && op.Dep {
			deps++
		}
	}
	if deps == 0 {
		t.Error("tree workload produced no dependent loads")
	}
	// Non-chasing workload must not set Dep.
	p2, _ := FindWorkload("echo")
	s2 := NewStream(p2, 1<<40, 1<<20, 5)
	for i := 0; i < 50000; i++ {
		if op := s2.Next(); op.Dep {
			t.Fatal("echo produced a dependent load")
		}
	}
}

func TestWriteLocalitySequentialRuns(t *testing.T) {
	// With locality L, roughly L of consecutive generated PM write
	// addresses continue sequentially. (The emitted op stream shuffles
	// within a query, so probe the generator directly.)
	p, _ := FindWorkload("fft") // locality 0.97
	s := NewStream(p, 1<<40, 1<<20, 6)
	var prev uint64
	seq, total := 0, 0
	for i := 0; i < 4000; i++ {
		addr := s.pmWriteAddr()
		if prev != 0 {
			total++
			if addr == prev+64 {
				seq++
			}
		}
		prev = addr
	}
	frac := float64(seq) / float64(total)
	if frac < 0.9 {
		t.Errorf("sequential fraction %.2f, want ~0.97", frac)
	}
}

func TestCleanBatchWindow(t *testing.T) {
	// The write-behind window: clwbs trail stores by CleanBatch blocks.
	p, _ := FindWorkload("hashmap") // window 16
	s := NewStream(p, 1<<40, 1<<20, 7)
	written := map[uint64]int{}
	order := 0
	for i := 0; i < 100000; i++ {
		op := s.Next()
		switch op.Kind {
		case cpu.Store:
			if op.Addr >= 1<<40 {
				order++
				written[op.Addr] = order
			}
		case cpu.Clwb:
			if wo, ok := written[op.Addr]; ok {
				if lag := order - wo; lag > 4*p.CleanBatch {
					t.Fatalf("clean lag %d far beyond window %d", lag, p.CleanBatch)
				}
			}
		}
	}
}

func TestComputeInterleaved(t *testing.T) {
	// Memory ops must not arrive as one giant burst: compute chunks are
	// spread between them.
	p, _ := FindWorkload("barnes")
	s := NewStream(p, 1<<40, 1<<20, 8)
	runMem := 0
	maxRun := 0
	for i := 0; i < 20000; i++ {
		op := s.Next()
		if op.Kind == cpu.Compute {
			runMem = 0
			continue
		}
		runMem++
		if runMem > maxRun {
			maxRun = runMem
		}
	}
	if maxRun > 8 {
		t.Errorf("memory-op burst of %d without compute; interleaving broken", maxRun)
	}
}
