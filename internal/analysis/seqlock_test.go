package analysis_test

import (
	"testing"

	"chipkillpm/internal/analysis"
	"chipkillpm/internal/analysis/analysistest"
)

func TestSeqlock(t *testing.T) {
	analysistest.Run(t, "testdata/seqlock", analysis.Seqlock)
}
