// Package chipkillpm_test holds the benchmark harness that regenerates
// every table and figure of the paper's evaluation (see DESIGN.md for the
// per-experiment index). Each benchmark produces the same series
// cmd/experiments prints and reports the headline value of its figure via
// b.ReportMetric, so `go test -bench=. -benchmem` doubles as a one-shot
// reproduction run.
//
// Simulation-backed figures (10, 14-18) use a reduced instruction budget
// per iteration; cmd/experiments runs the full-size campaign.
package chipkillpm_test

import (
	"math/rand"
	"testing"

	"chipkillpm/internal/core"
	"chipkillpm/internal/engine"
	"chipkillpm/internal/experiments"
	"chipkillpm/internal/nvram"
	"chipkillpm/internal/rank"
	"chipkillpm/internal/reliability"
	"chipkillpm/internal/sim"
	"chipkillpm/internal/stats"
	"chipkillpm/internal/trace"
)

// benchPerf is the per-iteration simulation budget for the heavy figures.
var benchPerf = experiments.PerfOptions{Instructions: 400_000, Warmup: 100_000, Seed: 7}

// --- Analytical figures ---

func BenchmarkFig01RBER(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.Fig1RBER(); len(tab.Rows) != 5 {
			b.Fatal("Fig 1 must cover 5 technologies")
		}
	}
	b.ReportMetric(nvram.PCM3.RBER(nvram.Week), "PCM3-RBER@1week")
}

func BenchmarkFig02StorageCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig2StorageCost()
	}
	min := 10.0
	for _, sc := range reliability.Fig2Schemes(1e-3) {
		if sc.Feasible && sc.Cost < min {
			min = sc.Cost
		}
	}
	b.ReportMetric(100*min, "min-chipkill-cost-%@1e-3")
	b.ReportMetric(100*reliability.ProposalStorageCost(), "proposal-cost-%")
}

func BenchmarkFig03FlashECC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig3FlashECC()
	}
	t, _ := reliability.FlashECCRequiredT(3e-3)
	b.ReportMetric(float64(t), "t@BER-3e-3")
}

func BenchmarkFig04CodewordSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig4CodewordSweep(1e-3)
	}
	sc := reliability.VLEWSchemeCost(256, 1e-3)
	b.ReportMetric(100*sc.Cost, "cost-%@256B")
}

func BenchmarkFig05NaiveVLEW(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig5Bandwidth()
	}
	b.ReportMetric(100*reliability.NaiveVLEWReadOverhead(reliability.PaperVLEW, 2e-4, 72*8), "read-overhead-%@2e-4")
}

func BenchmarkFig07ErrorDist(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig7ErrorDistribution(2e-4)
	}
	pByte := reliability.ByteErrorRate(2e-4, 8)
	b.ReportMetric(100*(1-reliability.BinomTail(64, 3, pByte)), "P[<=2-errors]-%")
}

func BenchmarkAppendixSDC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AppendixSDC()
	}
	m := reliability.RSMiscorrection{K: 64, R: 8, T: 2, RBER: 2e-4}
	b.ReportMetric(m.SDCRate()/1e-22, "SDC-rate-t2-x1e-22")
}

func BenchmarkStorageSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.StorageSummary()
	}
}

func BenchmarkScrubTimeModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ScrubAnalysis()
	}
	b.ReportMetric(reliability.ScrubTime(1e12, 48e9, 0.27), "scrub-s-per-TB")
}

func BenchmarkFallbackRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.FallbackAnalysis()
	}
	b.ReportMetric(100*reliability.ProposalFallbackRate(64, 8, 2, 2e-4), "fallback-%@2e-4")
}

// --- Functional experiments ---

func BenchmarkBootScrub(b *testing.B) {
	// Sec V-B on the functional model: scrub throughput for a rank that
	// sat a week without refresh.
	r, err := rank.New(rank.PaperConfig(2, 8, 1024, 1))
	if err != nil {
		b.Fatal(err)
	}
	ctrl, err := core.NewController(r, core.DefaultConfig(), nil)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 64)
	for blk := int64(0); blk < r.Blocks(); blk++ {
		ctrl.WriteBlockInitial(blk, buf)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		r.InjectRetentionErrors(1e-3)
		b.StartTimer()
		rep := ctrl.BootScrub()
		if rep.Unrecoverable {
			b.Fatal("scrub failed")
		}
	}
	b.ReportMetric(float64(r.Blocks()*64), "bytes-scrubbed/op")
}

func BenchmarkChipkillRebuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		r, _ := rank.New(rank.PaperConfig(2, 8, 1024, int64(i)))
		ctrl, _ := core.NewController(r, core.DefaultConfig(), nil)
		buf := make([]byte, 64)
		for blk := int64(0); blk < r.Blocks(); blk++ {
			ctrl.WriteBlockInitial(blk, buf)
		}
		r.FailChip(3)
		b.StartTimer()
		rep := ctrl.BootScrub()
		if rep.Unrecoverable || rep.BlocksRebuilt != r.Blocks() {
			b.Fatal("rebuild failed")
		}
	}
}

// --- Runtime demand-path throughput (cmd/benchruntime is the committed
// harness; these give `go test -bench Engine -benchmem` the same paths) ---

// newBenchEngine builds a populated 4-bank engine for the demand-path
// benchmarks.
func newBenchEngine(b *testing.B) *engine.Engine {
	b.Helper()
	r, err := rank.New(rank.PaperConfig(4, 8, 1024, 1))
	if err != nil {
		b.Fatal(err)
	}
	eng, err := engine.New(r, engine.Config{Core: core.DefaultConfig(), BatchFanOut: 1})
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, eng.BlockBytes())
	rng := rand.New(rand.NewSource(2))
	for blk := int64(0); blk < eng.Blocks(); blk++ {
		rng.Read(buf)
		if err := eng.WriteBlockInitial(blk, buf); err != nil {
			b.Fatal(err)
		}
	}
	return eng
}

func BenchmarkEngineCleanRead(b *testing.B) {
	eng := newBenchEngine(b)
	buf := make([]byte, eng.BlockBytes())
	rng := rand.New(rand.NewSource(3))
	blocks := eng.Blocks()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.ReadBlockInto(rng.Int63n(blocks), buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineCleanReadBatch(b *testing.B) {
	eng := newBenchEngine(b)
	const n = 64
	bb := eng.BlockBytes()
	slab := make([]byte, n*bb)
	ids := make([]int64, n)
	bufs := make([][]byte, n)
	errs := make([]error, n)
	for i := range bufs {
		bufs[i] = slab[i*bb : (i+1)*bb]
	}
	rng := rand.New(rand.NewSource(3))
	blocks := eng.Blocks()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range ids {
			ids[j] = rng.Int63n(blocks)
		}
		if fails := eng.ReadBlocks(ids, bufs, errs); fails != 0 {
			b.Fatalf("%d batch reads failed", fails)
		}
	}
	b.ReportMetric(float64(n), "reads/op")
}

func BenchmarkEngineWrite(b *testing.B) {
	eng := newBenchEngine(b)
	buf := make([]byte, eng.BlockBytes())
	rng := rand.New(rand.NewSource(3))
	blocks := eng.Blocks()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng.Read(buf)
		if err := eng.WriteBlock(rng.Int63n(blocks), buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMonteCarloRuntime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.MonteCarloRuntime(2e-4, 1, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if res.WrongData != 0 {
			b.Fatalf("SDC observed: %+v", res)
		}
	}
}

// --- Simulation figures (Figs 10, 14-18) ---

// runCampaign runs the three-pass comparison for a representative subset
// per iteration (the full campaign is cmd/experiments' job).
func runCampaign(b *testing.B, tech nvram.Tech) []sim.Comparison {
	b.Helper()
	names := []string{"echo", "btree", "hashmap", "barnes", "fft"}
	var out []sim.Comparison
	for _, n := range names {
		p, _ := trace.FindWorkload(n)
		opt := sim.DefaultOptions(tech, benchPerf.Seed)
		opt.Instructions = benchPerf.Instructions
		opt.Warmup = benchPerf.Warmup
		cmp, err := sim.Compare(p, opt)
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, cmp)
	}
	return out
}

func BenchmarkFig10DirtyPM(b *testing.B) {
	var last []sim.Comparison
	for i := 0; i < b.N; i++ {
		last = runCampaign(b, nvram.PCM3)
		experiments.Fig10Table(last)
	}
	var m stats.Mean
	for _, c := range last {
		m.Add(c.Proposal.DirtyPMFrac)
	}
	b.ReportMetric(100*m.Value(), "avg-dirtyPM-%")
}

func BenchmarkFig14Breakdown(b *testing.B) {
	var last []sim.Comparison
	for i := 0; i < b.N; i++ {
		last = runCampaign(b, nvram.PCM3)
		experiments.Fig14Table(last)
	}
	var m stats.Mean
	for _, c := range last {
		m.Add(c.Baseline.PMReadFrac + c.Baseline.PMWriteFrac)
	}
	b.ReportMetric(100*m.Value(), "avg-PM-share-%")
}

func BenchmarkFig15CFactor(b *testing.B) {
	var last []sim.Comparison
	for i := 0; i < b.N; i++ {
		last = runCampaign(b, nvram.PCM3)
		experiments.Fig15Table(last)
	}
	var m stats.Mean
	for _, c := range last {
		m.Add(c.CPass.CFactor)
	}
	b.ReportMetric(m.Value(), "avg-C-factor")
}

func BenchmarkFig16PerfReRAM(b *testing.B) {
	var last []sim.Comparison
	for i := 0; i < b.N; i++ {
		last = runCampaign(b, nvram.ReRAM)
		experiments.PerfTable(last, nvram.ReRAM)
	}
	b.ReportMetric(geomeanNorm(last), "geomean-normalized")
}

func BenchmarkFig17PerfPCM(b *testing.B) {
	var last []sim.Comparison
	for i := 0; i < b.N; i++ {
		last = runCampaign(b, nvram.PCM3)
		experiments.PerfTable(last, nvram.PCM3)
	}
	b.ReportMetric(geomeanNorm(last), "geomean-normalized")
}

func BenchmarkFig18OMVHitRate(b *testing.B) {
	var last []sim.Comparison
	for i := 0; i < b.N; i++ {
		last = runCampaign(b, nvram.PCM3)
		experiments.Fig18Table(last)
	}
	var m stats.Mean
	for _, c := range last {
		m.Add(c.Proposal.OMVHitRate)
	}
	b.ReportMetric(100*m.Value(), "avg-OMV-hit-%")
}

func geomeanNorm(cmps []sim.Comparison) float64 {
	var ns []float64
	for _, c := range cmps {
		ns = append(ns, c.Normalized)
	}
	return stats.GeoMean(ns)
}

// --- Ablations (DESIGN.md Sec 5) ---

func BenchmarkAblationThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationThreshold()
	}
}

func BenchmarkAblationOMV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationOMV(nvram.PCM3, benchPerf, "hashmap"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationEUR(b *testing.B) {
	var last []sim.Comparison
	for i := 0; i < b.N; i++ {
		last = runCampaign(b, nvram.PCM3)
		experiments.AblationEUR(last)
	}
	_ = last
}

func BenchmarkAblationPagePolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPagePolicy(nvram.PCM3, benchPerf, "fft"); err != nil {
			b.Fatal(err)
		}
	}
}
