package engine

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"chipkillpm/internal/core"
	"chipkillpm/internal/rank"
)

func testEngine(t testing.TB, shards, fanout int) *Engine {
	t.Helper()
	r, err := rank.New(rank.PaperConfig(4, 8, 1024, 7))
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(r, Config{Shards: shards, Core: core.DefaultConfig(), BatchFanOut: fanout})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func fillBlock(buf []byte, block int64, version int) {
	for i := range buf {
		buf[i] = byte(block>>uint(8*(i&7))) ^ byte(version*131) ^ byte(i)
	}
}

func populate(t testing.TB, e *Engine) {
	t.Helper()
	buf := make([]byte, e.BlockBytes())
	for b := int64(0); b < e.Blocks(); b++ {
		fillBlock(buf, b, 0)
		if err := e.WriteBlockInitial(b, buf); err != nil {
			t.Fatal(err)
		}
	}
}

func TestShardOfPartitionsBanks(t *testing.T) {
	e := testEngine(t, 0, 0)
	if e.Shards() != 4 {
		t.Fatalf("default shards = %d, want 4 (one per bank)", e.Shards())
	}
	counts := make([]int64, e.Shards())
	for b := int64(0); b < e.Blocks(); b++ {
		s := e.shardOf(b)
		bank := e.rank.Locate(b).Bank
		if s != bank%e.Shards() {
			t.Fatalf("block %d: shard %d but bank %d", b, s, bank)
		}
		counts[s]++
	}
	for s, n := range counts {
		if n == 0 {
			t.Fatalf("shard %d owns no blocks", s)
		}
	}
	// Clamping: more shards than banks collapses to one per bank.
	if e2 := testEngine(t, 64, 0); e2.Shards() != 4 {
		t.Fatalf("shards clamped to %d, want 4", e2.Shards())
	}
}

func TestSingleOpRoundTrip(t *testing.T) {
	e := testEngine(t, 0, 0)
	populate(t, e)
	want := make([]byte, e.BlockBytes())
	got := make([]byte, e.BlockBytes())
	for b := int64(0); b < e.Blocks(); b += 17 {
		fillBlock(want, b, 1)
		if err := e.WriteBlock(b, want); err != nil {
			t.Fatal(err)
		}
		if err := e.ReadBlockInto(b, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d round trip mismatch", b)
		}
	}
	st := e.Stats()
	// Every OMV miss performs one internal clean read on top of the demand
	// reads, so clean reads = demand reads + misses on an error-free rank.
	if st.Reads == 0 || st.Writes == 0 || st.ReadsClean != st.Reads+st.OMVMisses {
		t.Fatalf("unexpected stats after clean round trips: %+v", st)
	}
}

func TestBatchRoundTripAndOrdering(t *testing.T) {
	e := testEngine(t, 0, 2)
	populate(t, e)
	const n = 96
	blocks := make([]int64, n)
	bufs := make([][]byte, n)
	errs := make([]error, n)
	rng := rand.New(rand.NewSource(3))
	for i := range blocks {
		blocks[i] = rng.Int63n(e.Blocks())
		bufs[i] = make([]byte, e.BlockBytes())
		fillBlock(bufs[i], blocks[i], i)
	}
	// Duplicate blocks within the batch: a block always maps to one shard,
	// and per-shard ordering follows slice order, so the last slice entry
	// writing a block must win. (The rng can produce duplicates of its
	// own, so compute each block's winning version explicitly.)
	blocks[40] = blocks[10]
	fillBlock(bufs[40], blocks[40], 40)
	winner := make(map[int64]int, n)
	for i, b := range blocks {
		winner[b] = i
	}
	if fails := e.WriteBlocks(blocks, bufs, errs); fails != 0 {
		t.Fatalf("WriteBlocks failed %d ops, first errs: %v", fails, firstErr(errs))
	}
	got := make([][]byte, n)
	for i := range got {
		got[i] = make([]byte, e.BlockBytes())
	}
	if fails := e.ReadBlocks(blocks, got, errs); fails != 0 {
		t.Fatalf("ReadBlocks failed %d ops, first errs: %v", fails, firstErr(errs))
	}
	want := make([]byte, e.BlockBytes())
	for i := range got {
		fillBlock(want, blocks[i], winner[blocks[i]])
		if !bytes.Equal(got[i], want) {
			t.Fatalf("batch slot %d (block %d): mismatch", i, blocks[i])
		}
	}
}

func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func TestBatchErrorReporting(t *testing.T) {
	e := testEngine(t, 0, 1)
	populate(t, e)
	e.DisableBlock(5)
	if !e.BlockDisabled(5) {
		t.Fatal("block 5 should be disabled")
	}
	blocks := []int64{1, 5, 9}
	bufs := [][]byte{
		make([]byte, e.BlockBytes()),
		make([]byte, e.BlockBytes()),
		make([]byte, e.BlockBytes()),
	}
	errs := make([]error, 3)
	if fails := e.ReadBlocks(blocks, bufs, errs); fails != 1 {
		t.Fatalf("ReadBlocks fails = %d, want 1", fails)
	}
	if errs[0] != nil || errs[2] != nil || !errors.Is(errs[1], core.ErrBlockDisabled) {
		t.Fatalf("errs = %v, want only slot 1 disabled", errs)
	}
	// nil errs slice is accepted; the count still reports the failure.
	if fails := e.ReadBlocks(blocks, bufs, nil); fails != 1 {
		t.Fatalf("ReadBlocks with nil errs fails = %d, want 1", fails)
	}
}

// TestConcurrentShadow drives concurrent readers and writers across all
// shards with per-goroutine shadow copies (each goroutine owns a disjoint
// stripe of blocks, so its shadow is authoritative), plus a concurrent
// Stats poller — the -race workout for the revised concurrency contracts.
func TestConcurrentShadow(t *testing.T) {
	e := testEngine(t, 0, 0)
	populate(t, e)
	const (
		workers = 8
		ops     = 400
		batch   = 16
	)
	stop := make(chan struct{})
	var pollerWG sync.WaitGroup
	pollerWG.Add(1)
	go func() {
		defer pollerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				st := e.Stats()
				if st.Uncorrectable != 0 {
					panic(fmt.Sprintf("uncorrectable during clean run: %+v", st))
				}
			}
		}
	}()

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 911))
			// Blocks owned by this worker: b % workers == w.
			owned := make([]int64, 0, e.Blocks()/workers+1)
			for b := int64(w); b < e.Blocks(); b += workers {
				owned = append(owned, b)
			}
			shadow := make(map[int64]int, len(owned)) // block -> version
			buf := make([]byte, e.BlockBytes())
			want := make([]byte, e.BlockBytes())
			bblocks := make([]int64, batch)
			bbufs := make([][]byte, batch)
			for i := range bbufs {
				bbufs[i] = make([]byte, e.BlockBytes())
			}
			for op := 0; op < ops; op++ {
				switch rng.Intn(3) {
				case 0: // single read + verify
					b := owned[rng.Intn(len(owned))]
					if err := e.ReadBlockInto(b, buf); err != nil {
						errCh <- fmt.Errorf("worker %d read %d: %w", w, b, err)
						return
					}
					fillBlock(want, b, shadow[b])
					if !bytes.Equal(buf, want) {
						errCh <- fmt.Errorf("worker %d block %d: stale data", w, b)
						return
					}
				case 1: // single write
					b := owned[rng.Intn(len(owned))]
					shadow[b]++
					fillBlock(buf, b, shadow[b])
					if err := e.WriteBlock(b, buf); err != nil {
						errCh <- fmt.Errorf("worker %d write %d: %w", w, b, err)
						return
					}
				case 2: // batch read + verify
					for i := range bblocks {
						bblocks[i] = owned[rng.Intn(len(owned))]
					}
					if fails := e.ReadBlocks(bblocks, bbufs, nil); fails != 0 {
						errCh <- fmt.Errorf("worker %d batch read: %d fails", w, fails)
						return
					}
					for i, b := range bblocks {
						fillBlock(want, b, shadow[b])
						if !bytes.Equal(bbufs[i], want) {
							errCh <- fmt.Errorf("worker %d batch block %d: stale data", w, b)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	pollerWG.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	st := e.Stats()
	if st.ReadsClean != st.Reads+st.OMVMisses {
		t.Fatalf("clean run had non-clean reads: %+v", st)
	}
}

// TestReadAllocsZero pins the acceptance criterion: the steady-state
// clean-read path performs zero allocations per operation, for both the
// single-op and the batched entry points.
func TestReadAllocsZero(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc pins run without -race")
	}
	e := testEngine(t, 0, 1) // fan-out 1: batches stay on the caller
	populate(t, e)
	dst := make([]byte, e.BlockBytes())
	var b int64
	blocks := e.Blocks()
	if allocs := testing.AllocsPerRun(500, func() {
		if err := e.ReadBlockInto(b, dst); err != nil {
			t.Fatal(err)
		}
		b = (b + 7) % blocks
	}); allocs != 0 {
		t.Fatalf("ReadBlockInto allocates %.1f objects/op, want 0", allocs)
	}
	const n = 32
	bblocks := make([]int64, n)
	bufs := make([][]byte, n)
	errs := make([]error, n)
	for i := range bufs {
		bufs[i] = make([]byte, e.BlockBytes())
		bblocks[i] = int64(i * 3)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if fails := e.ReadBlocks(bblocks, bufs, errs); fails != 0 {
			t.Fatal("batch read failed")
		}
	}); allocs != 0 {
		t.Fatalf("ReadBlocks allocates %.1f objects/batch, want 0", allocs)
	}
}

// shadowOMV is an always-hit OMVProvider backed by a flat shadow of every
// block's current contents. The alloc pins keep the shadow in sync after
// each write, so the XOR deltas the controller derives from it match the
// stored data and parity stays valid.
type shadowOMV struct {
	buf []byte
	bb  int64
}

func (s *shadowOMV) OMV(block int64) ([]byte, bool) {
	return s.buf[block*s.bb : (block+1)*s.bb], true
}

// TestWriteAllocsZero pins the tentpole acceptance criterion: the
// steady-state OMV write path performs zero allocations per operation —
// single-op and batched, OMV hit and OMV miss — and the corrected-read
// path under injected drift is likewise allocation-free (single-symbol RS
// corrections draw from the controller's pooled scratch).
func TestWriteAllocsZero(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc pins run without -race")
	}
	// OMV-miss variant: the default NoOMV provider makes every write fetch
	// its old value from memory first.
	e := testEngine(t, 0, 1)
	populate(t, e)
	buf := make([]byte, e.BlockBytes())
	blocks := e.Blocks()
	var b int64
	version := 0
	if allocs := testing.AllocsPerRun(500, func() {
		version++
		fillBlock(buf, b, version)
		if err := e.WriteBlock(b, buf); err != nil {
			t.Fatal(err)
		}
		b = (b + 7) % blocks
	}); allocs != 0 {
		t.Fatalf("WriteBlock (OMV miss) allocates %.1f objects/op, want 0", allocs)
	}
	if st := e.Stats(); st.OMVMisses == 0 {
		t.Fatal("OMV-miss pin never exercised the miss path")
	}

	const n = 32
	bblocks := make([]int64, n)
	bufs := make([][]byte, n)
	errs := make([]error, n)
	for i := range bufs {
		bufs[i] = make([]byte, e.BlockBytes())
		bblocks[i] = int64(i * 3)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		version++
		for i := range bufs {
			fillBlock(bufs[i], bblocks[i], version)
		}
		if fails := e.WriteBlocks(bblocks, bufs, errs); fails != 0 {
			t.Fatal("batch write failed")
		}
	}); allocs != 0 {
		t.Fatalf("WriteBlocks allocates %.1f objects/batch, want 0", allocs)
	}

	// OMV-hit variant: an always-hit provider, kept coherent by the test.
	r2, err := rank.New(rank.PaperConfig(4, 8, 1024, 7))
	if err != nil {
		t.Fatal(err)
	}
	sh := &shadowOMV{}
	e2, err := New(r2, Config{Core: core.DefaultConfig(), OMV: sh, BatchFanOut: 1})
	if err != nil {
		t.Fatal(err)
	}
	populate(t, e2)
	sh.bb = int64(e2.BlockBytes())
	sh.buf = make([]byte, e2.Blocks()*sh.bb)
	for bb := int64(0); bb < e2.Blocks(); bb++ {
		fillBlock(sh.buf[bb*sh.bb:(bb+1)*sh.bb], bb, 0)
	}
	b, version = 0, 0
	if allocs := testing.AllocsPerRun(500, func() {
		version++
		fillBlock(buf, b, version)
		if err := e2.WriteBlock(b, buf); err != nil {
			t.Fatal(err)
		}
		copy(sh.buf[b*sh.bb:(b+1)*sh.bb], buf)
		b = (b + 7) % e2.Blocks()
	}); allocs != 0 {
		t.Fatalf("WriteBlock (OMV hit) allocates %.1f objects/op, want 0", allocs)
	}
	if st := e2.Stats(); st.OMVHits == 0 || st.OMVMisses != 0 {
		t.Fatalf("OMV-hit pin took the wrong path: %+v", st)
	}

	// Corrected-read variant: flip one stored data bit, then pin the
	// demand-read correction path. With write-back disabled (the default)
	// the flip persists, so every read pays a single-symbol RS correction.
	bc := int64(5)
	loc := e.Rank().Locate(bc)
	e.Quiesce(func() {
		e.Rank().Chip(0).FlipDataBit(loc.Bank, loc.Row, loc.Col, 3)
	})
	dst := make([]byte, e.BlockBytes())
	before := e.Stats().ReadsRSCorrected
	if allocs := testing.AllocsPerRun(500, func() {
		if err := e.ReadBlockInto(bc, dst); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("corrected read allocates %.1f objects/op, want 0", allocs)
	}
	if got := e.Stats().ReadsRSCorrected - before; got == 0 {
		t.Fatal("corrected-read pin never took the RS correction path")
	}
}

func TestStatsAggregateAcrossShards(t *testing.T) {
	e := testEngine(t, 0, 1)
	populate(t, e)
	e.ResetStats()
	buf := make([]byte, e.BlockBytes())
	const reads = 64
	for i := 0; i < reads; i++ {
		// Walk rows so every bank (hence every shard) is hit.
		b := int64(i) * e.bpr % e.Blocks()
		if err := e.ReadBlockInto(b, buf); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.Reads != reads || st.ReadsClean != reads {
		t.Fatalf("aggregated stats = %+v, want %d clean reads", st, reads)
	}
	e.ResetStats()
	if st := e.Stats(); st.Reads != 0 {
		t.Fatalf("stats after reset = %+v", st)
	}
}

func TestBootScrubAndQuiesce(t *testing.T) {
	e := testEngine(t, 0, 0)
	populate(t, e)
	e.Quiesce(func() {
		e.rank.InjectRetentionErrors(1e-5)
	})
	rep := e.BootScrub()
	if rep.VLEWsScrubbed == 0 {
		t.Fatalf("scrub report: %+v", rep)
	}
	if st := e.Stats(); st.ScrubbedVLEWs != rep.VLEWsScrubbed {
		t.Fatalf("scrub counters not visible in aggregated stats: %+v vs %+v", st, rep)
	}
	// Post-scrub reads are clean everywhere.
	buf := make([]byte, e.BlockBytes())
	want := make([]byte, e.BlockBytes())
	for b := int64(0); b < e.Blocks(); b += 13 {
		if err := e.ReadBlockInto(b, buf); err != nil {
			t.Fatal(err)
		}
		fillBlock(want, b, 0)
		if !bytes.Equal(buf, want) {
			t.Fatalf("block %d corrupted after scrub", b)
		}
	}
}

func TestEnterDegradedModeAllShards(t *testing.T) {
	e := testEngine(t, 0, 0)
	populate(t, e)
	const failed = 3
	e.Quiesce(func() {
		e.rank.FailChip(failed)
	})
	if err := e.EnterDegradedMode(failed); err != nil {
		t.Fatal(err)
	}
	if d, chip := e.Degraded(); !d || chip != failed {
		t.Fatalf("Degraded() = %v, %d", d, chip)
	}
	// Every block must read back correctly through every shard's
	// controller, proving all shards adopted the remapped layout.
	buf := make([]byte, e.BlockBytes())
	want := make([]byte, e.BlockBytes())
	for b := int64(0); b < e.Blocks(); b++ {
		if err := e.ReadBlockInto(b, buf); err != nil {
			t.Fatalf("degraded read %d: %v", b, err)
		}
		fillBlock(want, b, 0)
		if !bytes.Equal(buf, want) {
			t.Fatalf("block %d wrong after degraded remap", b)
		}
	}
	// Degraded writes flow through shards too.
	fillBlock(want, 42, 9)
	if err := e.WriteBlock(42, want); err != nil {
		t.Fatal(err)
	}
	if err := e.ReadBlockInto(42, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("degraded write round trip mismatch")
	}
}
