// Package engine is a stub of the real internal/engine, exercising the
// seqlock analyzer's writer-side rule: controller mutations must follow
// a (*shard).lockWrite in the same function, sit inside a Quiesce
// literal, or carry an allow.
package engine

import (
	"sync"
	"sync/atomic"

	"seqstub/internal/core"
)

type shard struct {
	mu   sync.Mutex
	seq  atomic.Uint64
	ctrl *core.Controller
}

func (s *shard) lockWrite()   { s.mu.Lock(); s.seq.Add(1) }
func (s *shard) unlockWrite() { s.seq.Add(1); s.mu.Unlock() }

type Engine struct{ shards []*shard }

// Quiesce runs f with every shard writer section open (stubbed).
func (e *Engine) Quiesce(f func()) { f() }

// write is the canonical writer section: mutator after lockWrite.
func (e *Engine) write(block int64, data []byte) error {
	s := e.shards[0]
	s.lockWrite()
	err := s.ctrl.WriteBlock(block, data)
	s.unlockWrite()
	return err
}

// bad takes the plain mutex and mutates anyway — exactly the regression
// the rule exists for.
func (e *Engine) bad(block int64, data []byte) error {
	s := e.shards[0]
	s.mu.Lock()
	err := s.ctrl.WriteBlock(block, data) // want `seqlock-covered mutation seqstub/internal/core.Controller.WriteBlock called outside a shard writer section`
	s.mu.Unlock()
	return err
}

// badOrder has a lockWrite, but below the mutation: lexical order is the
// discipline.
func (e *Engine) badOrder(block int64) {
	s := e.shards[0]
	s.ctrl.DisableBlock(block) // want `seqlock-covered mutation seqstub/internal/core.Controller.DisableBlock called outside a shard writer section`
	s.lockWrite()
	s.ctrl.DisableBlock(block)
	s.unlockWrite()
}

// scrub shows the Quiesce-literal exemption; the same call outside the
// literal is flagged.
func (e *Engine) scrub() {
	e.Quiesce(func() {
		e.shards[0].ctrl.BootScrub()
	})
	e.shards[0].ctrl.BootScrub() // want `seqlock-covered mutation seqstub/internal/core.Controller.BootScrub called outside a shard writer section`
}

// reads and migration-state setup are not policed.
func (e *Engine) read(block int64, dst []byte) error {
	s := e.shards[0]
	s.mu.Lock()
	err := s.ctrl.ReadBlockInto(block, dst)
	s.mu.Unlock()
	return err
}

func (e *Engine) begin(chip int) error {
	s := e.shards[0]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctrl.BeginMigration(chip, 0)
}

// adopt uses the line-level escape hatch.
func (e *Engine) adopt() {
	s := e.shards[0]
	s.mu.Lock()
	//chipkill:allow seqlock boot-time call, no lock-free readers running yet
	s.ctrl.DisableBlock(0)
	s.mu.Unlock()
}
