package core

// Hardware cost constants from Sec V-E / Fig 13, carried into the timing
// model. The paper derives these with CACTI 6.5, ITRS LSTP transistor
// latencies, and published decoder implementations ([93], [94]), adjusted
// for process technology and codeword length. We cannot re-run CACTI here,
// so the numbers are constants with their provenance documented; they are
// what the performance model charges.
const (
	// BCHEncoderAreaMM2 is the in-chip 22-bit-EC BCH encoder's area: one
	// XOR tree per code bit in a memory-array-like layout using two metal
	// layers (Fig 13), 0.1 mm^2.
	BCHEncoderAreaMM2 = 0.1
	// BCHEncoderLatencyNS is the encoder's latency (1.6 ns), added to
	// every persistent-memory write in the timing model.
	BCHEncoderLatencyNS = 1.6
	// InternalReadModifyWriteNS covers the chip's internal fetch of old
	// data plus encoder latency; the evaluation pessimistically adds 20 ns
	// to tWR (Sec VI).
	InternalReadModifyWriteNS = 20.0
	// RSDecoderAreaMM2 and RSDecoderLatencyNS describe the controller-side
	// multi-byte-error RS decoder (based on an 8-byte-EC decoder [93]).
	RSDecoderAreaMM2   = 0.002
	RSDecoderLatencyNS = 45.0
	// BCHDecoderAreaMM2 and BCHDecoderLatencyNS describe the controller-
	// side 22-bit-EC VLEW decoder (based on a 32-EC decoder [94]).
	BCHDecoderAreaMM2   = 0.05
	BCHDecoderLatencyNS = 200.0
)

// WriteLatencyInflation returns the factor by which tWR grows to buy back
// write lifetime lost to VLEW code-bit updates (Sec VI): the number of
// physical bits written per write request grows by (33B/8B) * C, where C
// is the measured ratio of VLEW code-bit writes to data writes, and the
// paper pessimistically assumes lifetime scales linearly with latency.
func WriteLatencyInflation(cFactor float64) float64 {
	return 1 + (33.0/8.0)*cFactor
}
