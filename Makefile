# Standard entry points; scripts/check.sh is the single source of truth
# for what "passing" means.

.PHONY: all build test race bench check check-quick

all: build

build:
	go build ./...

test:
	go test ./... -count=1

race:
	go test -race -count=1 ./internal/core/... ./internal/rank/...

# Kernel microbenchmarks (per-package, human-readable).
bench:
	go test -run xxx -bench Kernel -benchmem ./internal/gf/ ./internal/bch/ ./internal/rs/

# Refresh BENCH_kernels.json and fail on fast-path speedup regressions.
BENCH_kernels.json: FORCE
	go run ./cmd/benchkernels -check

check:
	sh scripts/check.sh

check-quick:
	sh scripts/check.sh -quick

FORCE:
