// Package cpu is a trace-driven out-of-order core timing model: 4-wide
// issue, a 168-entry reorder buffer (Table I), load MLP bounded by the ROB
// window, buffered stores, and retirement-blocking cacheline cleans (the
// clwb+fence idiom persistent-memory applications use).
//
// The model is deliberately simple — an interval-style approximation — but
// it captures the effects the paper's evaluation hinges on: load-latency
// sensitivity bounded by the ROB, write-latency sensitivity through write-
// queue backpressure and bank occupancy, and serialisation of dependent
// (pointer-chasing) loads.
package cpu

import "chipkillpm/internal/config"

// Kind classifies a trace operation.
type Kind uint8

// Trace operation kinds.
const (
	Compute Kind = iota // N non-memory instructions
	Load
	Store
	Clwb // cacheline clean to persistent memory
)

// Op is one trace operation. Memory ops count as one instruction;
// Compute ops count as N.
type Op struct {
	Kind Kind
	Addr uint64
	N    int  // instruction count for Compute (>=1)
	Dep  bool // this load depends on the previous load (pointer chasing)
}

// MemorySystem is the core's interface to the cache hierarchy.
type MemorySystem interface {
	Load(core int, addr uint64, nowNS float64) (doneNS float64)
	Store(core int, addr uint64, nowNS float64) (doneNS float64)
	Clwb(core int, addr uint64, nowNS float64) (doneNS float64)
}

// Core models one hardware context.
type Core struct {
	id  int
	cfg config.CPU
	mem MemorySystem

	nsPerCycle float64
	issueNS    float64 // ns per instruction at full width

	// robRetire is a circular buffer of the last ROBEntries instruction
	// retire times; an instruction cannot fetch before the instruction
	// ROBEntries ahead of it has retired.
	robRetire []float64
	robHead   int

	fetch        float64 // next fetch time
	lastRetire   float64
	lastLoadDone float64

	instructions int64
	loads        int64
	stores       int64
	cleans       int64
}

// NewCore builds a core.
func NewCore(id int, cfg config.CPU, mem MemorySystem) *Core {
	return &Core{
		id:         id,
		cfg:        cfg,
		mem:        mem,
		nsPerCycle: 1.0 / cfg.FreqGHz,
		issueNS:    1.0 / (cfg.FreqGHz * float64(cfg.IssueWidth)),
		robRetire:  make([]float64, cfg.ROBEntries),
	}
}

// Now returns the core's current time (its next fetch time), in ns.
func (c *Core) Now() float64 { return c.fetch }

// Instructions returns the number of instructions retired.
func (c *Core) Instructions() int64 { return c.instructions }

// Counts returns (loads, stores, cleans) executed.
func (c *Core) Counts() (loads, stores, cleans int64) {
	return c.loads, c.stores, c.cleans
}

// retireOne records one instruction's retirement and returns the ROB
// constraint for the next fetch.
func (c *Core) retireOne(t float64) {
	if t < c.lastRetire {
		t = c.lastRetire
	}
	c.lastRetire = t
	c.robRetire[c.robHead] = t
	c.robHead = (c.robHead + 1) % len(c.robRetire)
	c.instructions++
}

// robConstraint returns the earliest time the next instruction may occupy
// a ROB slot: when the instruction ROBEntries earlier retired.
func (c *Core) robConstraint() float64 { return c.robRetire[c.robHead] }

// Step executes one trace operation, advancing the core's clock.
func (c *Core) Step(op Op) {
	switch op.Kind {
	case Compute:
		n := op.N
		if n < 1 {
			n = 1
		}
		// Fetch/retire n instructions at full width; the ROB constrains
		// how far fetch may run ahead of the oldest retirement.
		for n > 0 {
			batch := min(n, c.cfg.IssueWidth)
			start := max(c.fetch, c.robConstraint())
			c.fetch = start + float64(batch)*c.issueNS
			retire := max(c.lastRetire+float64(batch)*c.issueNS, c.fetch)
			for i := 0; i < batch; i++ {
				c.retireOne(retire)
			}
			n -= batch
		}
	case Load:
		issue := max(c.fetch, c.robConstraint())
		if op.Dep {
			// Pointer chase: the address depends on the previous load.
			issue = max(issue, c.lastLoadDone)
		}
		done := c.mem.Load(c.id, op.Addr, issue)
		c.lastLoadDone = done
		c.fetch = issue + c.issueNS
		c.retireOne(done)
		c.loads++
	case Store:
		issue := max(c.fetch, c.robConstraint())
		// The store buffer hides miss latency from retirement; the cache
		// call still charges the memory system (write-allocate traffic).
		c.mem.Store(c.id, op.Addr, issue)
		c.fetch = issue + c.issueNS
		c.retireOne(issue + c.issueNS)
		c.stores++
	case Clwb:
		issue := max(c.fetch, c.robConstraint())
		accept := c.mem.Clwb(c.id, op.Addr, issue)
		c.fetch = max(issue+c.issueNS, accept)
		// clwb + fence semantics: retirement (and thus the following
		// instructions) wait for the clean to be accepted.
		c.retireOne(accept)
		c.cleans++
	}
}

// IPC returns retired instructions per cycle up to the core's clock.
func (c *Core) IPC() float64 {
	if c.fetch <= 0 {
		return 0
	}
	cycles := c.fetch / c.nsPerCycle
	return float64(c.instructions) / cycles
}
