package trace

// The workload catalog. Knob choices are derived from each benchmark's
// published character:
//
//   - WHISPER network services (echo, memcached, redis, vacation) process
//     a network request per query, so most of a query is compute; the
//     paper attributes their insensitivity to write latency to exactly
//     this (Sec VII).
//   - The tree stores (ctree, btree, rbtree) perform only write queries
//     but pointer-chase through the tree, reading from few banks at a
//     time, which shields them from in-progress writes (Sec VII).
//   - hashmap performs only write queries on small (64 B) random items:
//     no network stall, no pointer chain, poor row locality — the
//     worst case for the proposal (14% overhead in the paper).
//   - The SPLASH3 workloads run under ATLAS with all heap objects in
//     persistent memory; they are parallel, floating-point-heavy, and
//     clean less eagerly (dirty-PM occupancy in Fig 10 stays small
//     because writes are a small fraction of their accesses).
//
// Footprints are scaled to the simulated 4 MB LLC the way the paper's
// 2-20 GB footprints relate to its 4 MB LLC: far larger than the cache.

// Workloads returns the full catalog in the paper's presentation order.
func Workloads() []Profile {
	return append(WhisperWorkloads(), SplashWorkloads()...)
}

// WhisperWorkloads returns the persistent-memory benchmark profiles.
func WhisperWorkloads() []Profile {
	return []Profile{
		{
			Name: "echo", Class: Whisper,
			ComputePerQuery: 6000,
			PMReads:         2, PMWrites: 2, DRAMReads: 4, DRAMWrites: 1,
			WriteRowLocality: 0.95, CleanBatch: 128,
			PMFootprintBlocks: 256 << 10, DRAMFootprintBlocks: 128 << 10,
			HotFraction: 0.05, HotProbability: 0.6,
		},
		{
			Name: "memcached", Class: Whisper,
			ComputePerQuery: 8000,
			PMReads:         4, PMWrites: 1, DRAMReads: 6, DRAMWrites: 2,
			WriteRowLocality: 0.90, CleanBatch: 64,
			PMFootprintBlocks: 512 << 10, DRAMFootprintBlocks: 128 << 10,
			HotFraction: 0.03, HotProbability: 0.6,
		},
		{
			Name: "redis", Class: Whisper,
			ComputePerQuery: 7000,
			PMReads:         3, PMWrites: 1, DRAMReads: 5, DRAMWrites: 2,
			WriteRowLocality: 0.90, CleanBatch: 64,
			PMFootprintBlocks: 384 << 10, DRAMFootprintBlocks: 128 << 10,
			HotFraction: 0.05, HotProbability: 0.6,
		},
		{
			Name: "ctree", Class: Whisper,
			PointerChase:    true,
			ComputePerQuery: 2500,
			PMReads:         4, PMWrites: 1, DRAMReads: 2, DRAMWrites: 1,
			WriteRowLocality: 0.85, CleanBatch: 32,
			PMFootprintBlocks: 256 << 10, DRAMFootprintBlocks: 32 << 10,
			HotFraction: 0.05, HotProbability: 0.8,
		},
		{
			Name: "btree", Class: Whisper,
			PointerChase:    true,
			ComputePerQuery: 2500,
			PMReads:         5, PMWrites: 1, DRAMReads: 2, DRAMWrites: 1,
			WriteRowLocality: 0.85, CleanBatch: 32,
			PMFootprintBlocks: 256 << 10, DRAMFootprintBlocks: 32 << 10,
			HotFraction: 0.05, HotProbability: 0.8,
		},
		{
			Name: "rbtree", Class: Whisper,
			PointerChase:    true,
			ComputePerQuery: 2200,
			PMReads:         6, PMWrites: 1, DRAMReads: 2, DRAMWrites: 1,
			WriteRowLocality: 0.85, CleanBatch: 32,
			PMFootprintBlocks: 256 << 10, DRAMFootprintBlocks: 32 << 10,
			HotFraction: 0.05, HotProbability: 0.8,
		},
		{
			Name: "hashmap", Class: Whisper,
			ComputePerQuery: 3500,
			PMReads:         2, PMWrites: 2, DRAMReads: 1, DRAMWrites: 1,
			WriteRowLocality: 0.75, CleanBatch: 16,
			PMFootprintBlocks: 512 << 10, DRAMFootprintBlocks: 16 << 10,
			HotFraction: 0.0, HotProbability: 0.0,
		},
		{
			Name: "vacation", Class: Whisper,
			ComputePerQuery: 5000,
			PMReads:         5, PMWrites: 1, DRAMReads: 5, DRAMWrites: 2,
			WriteRowLocality: 0.90, CleanBatch: 128,
			PMFootprintBlocks: 384 << 10, DRAMFootprintBlocks: 128 << 10,
			HotFraction: 0.05, HotProbability: 0.5,
		},
		{
			Name: "tpcc", Class: Whisper,
			ComputePerQuery: 3500,
			PMReads:         4, PMWrites: 2, DRAMReads: 5, DRAMWrites: 2,
			WriteRowLocality: 0.92, CleanBatch: 128,
			PMFootprintBlocks: 512 << 10, DRAMFootprintBlocks: 128 << 10,
			HotFraction: 0.08, HotProbability: 0.7,
		},
		{
			Name: "ycsb", Class: Whisper,
			ComputePerQuery: 2500,
			PMReads:         6, PMWrites: 1, DRAMReads: 3, DRAMWrites: 1,
			WriteRowLocality: 0.85, CleanBatch: 64,
			PMFootprintBlocks: 512 << 10, DRAMFootprintBlocks: 64 << 10,
			HotFraction: 0.05, HotProbability: 0.8,
		},
	}
}

// SplashWorkloads returns the SPLASH3-under-ATLAS profiles.
func SplashWorkloads() []Profile {
	return []Profile{
		{
			Name: "barnes", Class: Splash,
			ComputePerQuery: 4000,
			PMReads:         10, PMWrites: 1, DRAMReads: 2, DRAMWrites: 1,
			WriteRowLocality: 0.85, CleanBatch: 64,
			PMFootprintBlocks: 1 << 20, DRAMFootprintBlocks: 16 << 10,
			HotFraction: 0.02, HotProbability: 0.3,
		},
		{
			Name: "fft", Class: Splash,
			ComputePerQuery: 3000,
			PMReads:         10, PMWrites: 2, DRAMReads: 1, DRAMWrites: 1,
			WriteRowLocality: 0.97, CleanBatch: 64,
			PMFootprintBlocks: 512 << 10, DRAMFootprintBlocks: 16 << 10,
			HotFraction: 0.0, HotProbability: 0.0,
		},
		{
			Name: "lu", Class: Splash,
			ComputePerQuery: 4000,
			PMReads:         8, PMWrites: 2, DRAMReads: 1, DRAMWrites: 1,
			WriteRowLocality: 0.97, CleanBatch: 64,
			PMFootprintBlocks: 384 << 10, DRAMFootprintBlocks: 16 << 10,
			HotFraction: 0.3, HotProbability: 0.6,
		},
		{
			Name: "ocean", Class: Splash,
			ComputePerQuery: 2500,
			PMReads:         12, PMWrites: 2, DRAMReads: 1, DRAMWrites: 1,
			WriteRowLocality: 0.95, CleanBatch: 64,
			PMFootprintBlocks: 1 << 20, DRAMFootprintBlocks: 16 << 10,
			HotFraction: 0.0, HotProbability: 0.0,
		},
		{
			Name: "radix", Class: Splash,
			ComputePerQuery: 2500,
			PMReads:         6, PMWrites: 2, DRAMReads: 1, DRAMWrites: 1,
			WriteRowLocality: 0.90, CleanBatch: 64,
			PMFootprintBlocks: 768 << 10, DRAMFootprintBlocks: 16 << 10,
			HotFraction: 0.0, HotProbability: 0.0,
		},
		{
			Name: "raytrace", Class: Splash,
			ComputePerQuery: 5000,
			PMReads:         10, PMWrites: 1, DRAMReads: 2, DRAMWrites: 1,
			WriteRowLocality: 0.85, CleanBatch: 32,
			PMFootprintBlocks: 512 << 10, DRAMFootprintBlocks: 32 << 10,
			HotFraction: 0.1, HotProbability: 0.7,
		},
		{
			Name: "volrend", Class: Splash,
			ComputePerQuery: 4000,
			PMReads:         8, PMWrites: 1, DRAMReads: 2, DRAMWrites: 1,
			WriteRowLocality: 0.85, CleanBatch: 32,
			PMFootprintBlocks: 384 << 10, DRAMFootprintBlocks: 32 << 10,
			HotFraction: 0.2, HotProbability: 0.7,
		},
		{
			Name: "water", Class: Splash,
			ComputePerQuery: 4500,
			PMReads:         6, PMWrites: 1, DRAMReads: 1, DRAMWrites: 1,
			WriteRowLocality: 0.92, CleanBatch: 64,
			PMFootprintBlocks: 256 << 10, DRAMFootprintBlocks: 16 << 10,
			HotFraction: 0.3, HotProbability: 0.6,
		},
	}
}

// FindWorkload returns the profile with the given name.
func FindWorkload(name string) (Profile, bool) {
	for _, p := range Workloads() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
