package core

import (
	"fmt"
)

// Wear leveling (Sec V-E). NVRAM cells endure a limited number of writes,
// so production systems remap hot blocks across the physical address
// space. The paper notes its VLEW protection is compatible with the
// Start-Gap scheme of Qureshi et al. [87]: after remapping a block, the
// memory controller updates the vacated location's VLEW code bits as if
// the physical bits now hold zeros — exactly what writing zeros through
// the normal XOR path does, so no new machinery is needed.
//
// StartGap implements that scheme on top of a Controller: N logical
// blocks map onto N+1 physical blocks, with one roving "gap" block that
// is always zero. Every MoveInterval writes the gap advances by one
// position, slowly rotating the logical-to-physical mapping so that a
// write-hammered logical block spreads its wear over many physical rows.
type StartGap struct {
	ctrl *Controller
	n    int64 // logical blocks (physical - 1)
	// start and gap define the mapping: PA = (LA+start) mod n, plus one
	// when PA >= gap. The gap slot is always zero.
	start int64
	gap   int64
	// MoveInterval is how many writes occur between gap movements
	// (Qureshi et al. use 100: <1% write overhead).
	moveInterval int64
	writeCount   int64
	gapMoves     int64
}

// NewStartGap wraps a controller with start-gap wear leveling. The
// controller's last physical block becomes the initial gap and must be
// zero (freshly initialised memory is). moveInterval must be positive.
func NewStartGap(ctrl *Controller, moveInterval int64) (*StartGap, error) {
	if moveInterval < 1 {
		return nil, fmt.Errorf("core: move interval must be >= 1")
	}
	total := ctrl.Rank().Blocks()
	if total < 2 {
		return nil, fmt.Errorf("core: start-gap needs at least 2 physical blocks")
	}
	return &StartGap{
		ctrl:         ctrl,
		n:            total - 1,
		gap:          total - 1,
		moveInterval: moveInterval,
	}, nil
}

// Blocks returns the logical capacity (one block less than physical).
func (s *StartGap) Blocks() int64 { return s.n }

// GapMoves returns how many gap movements have occurred.
func (s *StartGap) GapMoves() int64 { return s.gapMoves }

// Physical returns the current physical block for a logical address.
func (s *StartGap) Physical(logical int64) int64 {
	if logical < 0 || logical >= s.n {
		panic(fmt.Sprintf("core: logical block %d out of range [0,%d)", logical, s.n))
	}
	p := (logical + s.start) % s.n
	if p >= s.gap {
		p++
	}
	return p
}

// Read reads a logical block.
func (s *StartGap) Read(logical int64) ([]byte, error) {
	return s.ctrl.ReadBlock(s.Physical(logical))
}

// Write writes a logical block, advancing the gap every moveInterval
// writes.
func (s *StartGap) Write(logical int64, data []byte) error {
	if err := s.ctrl.WriteBlock(s.Physical(logical), data); err != nil {
		return err
	}
	s.writeCount++
	if s.writeCount%s.moveInterval == 0 {
		return s.moveGap()
	}
	return nil
}

// moveGap advances the gap one position: the block just before the gap
// moves into the gap slot and its old location becomes the (zeroed) gap.
// Both the data move and the zeroing go through the controller's normal
// XOR write path, so every VLEW's code bits stay consistent — the
// vacated location's VLEW sees exactly the "assume zeros" update the
// paper describes.
func (s *StartGap) moveGap() error {
	total := s.n + 1
	src := s.gap - 1
	if s.gap == 0 {
		src = total - 1
	}
	data, err := s.ctrl.readForInternalUse(src)
	if err != nil {
		return fmt.Errorf("core: gap move read: %w", err)
	}
	// The gap slot is zero by invariant, so the move is delta = data.
	s.ctrl.writeDelta(s.gap, data)
	// Zero the vacated slot: delta = current value.
	s.ctrl.writeDelta(src, data)
	if s.gap == 0 {
		s.gap = total - 1
		s.start = (s.start + 1) % s.n
	} else {
		s.gap--
	}
	s.gapMoves++
	return nil
}

// ErrBlockWorn reports that a verified write found bits that no longer
// accept new values; the caller should relocate the data and disable the
// block (Sec V-E's write-verify flow [86]).
var ErrBlockWorn = fmt.Errorf("core: block has worn-out cells")

// WriteBlockVerified writes a block and immediately re-reads the raw
// cells to detect worn-out (stuck) bits, the identification flow the
// paper describes: "prior works check whether errors remain in a block
// after error correction by re-reading the block right after writing it".
// On detecting wear it retires the block via DisableBlock and returns
// ErrBlockWorn; the caller still holds the data and can relocate it.
//
// The verify read compares raw stored bytes against the intended values,
// so transient errors injected *after* the write do not false-positive;
// only cells that refused the write trip it.
func (c *Controller) WriteBlockVerified(block int64, data []byte) error {
	if err := c.WriteBlock(block, data); err != nil {
		return err
	}
	stored, check := c.rank.ReadBlockRaw(block)
	wantCheck := c.rsCode.Encode(data)
	worn := !bytesEqual(stored, data) || !bytesEqual(check, wantCheck)
	if !worn {
		return nil
	}
	c.DisableBlock(block)
	return fmt.Errorf("block %d: %w", block, ErrBlockWorn)
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
