// Package fleet turns N single-rank chipkill stacks into one memory
// service: a deterministic interleaving/placement layer over many ranks
// (each its own core.Controller + engine.Engine + guard.Supervisor), a
// replication tier that mirrors hot bands across ranks, and a fleet
// supervisor that fans guard ticks out, drives telemetry-directed
// replication, and repairs a convicted chip by byte-copying its cells
// from the replica rank instead of the local RS erasure decode — the
// core argument of "Replication-Aware Memory-Error Protection in
// Disaggregated Memory", with HARP's decode-side telemetry choosing
// which bands get replicated first (PAPERS.md). DESIGN.md §14 has the
// full architecture.
//
// Failure containment contract: a whole-rank failure turns reads of
// replicated bands into replica failovers and reads of unreplicated
// bands into errors wrapping ErrRankFailed — a reported, contained DUE.
// The fleet never serves bytes it cannot vouch for; silent corruption is
// the one outcome no failure combination may produce.
package fleet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"chipkillpm/internal/core"
	"chipkillpm/internal/engine"
	"chipkillpm/internal/guard"
	"chipkillpm/internal/rank"
	"chipkillpm/internal/rs"
)

// Typed sentinels, policed by the chipkillvet sentinel analyzer like the
// PR 4 set: always matched with errors.Is (they are wrapped with block
// and rank context) and never dropped.
var (
	// ErrRankFailed marks an operation that needed a failed rank and had
	// no live replica to fail over to: a contained, reported DUE.
	ErrRankFailed = errors.New("fleet: rank failed")
	// ErrNoReplica marks a repair or failover that found no usable
	// replica; chip repair falls back to local degraded-mode migration.
	ErrNoReplica = errors.New("fleet: no replica available")
)

// Config sizes and tunes a fleet. Zero values take the documented
// defaults.
type Config struct {
	// Ranks is the rank count (>= 2; default 3).
	Ranks int
	// Per-rank paper-shaped geometry; defaults 2 banks x 8 rows x 1024 B.
	Banks, RowsPerBank, RowBytes int
	// Seed feeds per-rank chip randomness and the guard probe streams.
	Seed int64
	// Shards is the engine shard count per rank (0 = one per bank).
	Shards int
	// Threshold is the runtime RS acceptance threshold (<= 0 = paper's 2).
	Threshold int
	// ReplicaBands reserves that many trailing bands of every rank as the
	// replica pool; they are invisible to the fleet block space. Default
	// a quarter of the rank's bands, minimum 1.
	ReplicaBands int
	// ReplicatePerTick bounds how many bands one supervision tick may
	// start mirroring. Default 2; negative disables the policy (bands
	// then replicate only via explicit ReplicateBand calls).
	ReplicatePerTick int
	// MinReplicaHeat is the demand-op count a band must have seen before
	// the policy considers it hot. Default 1.
	MinReplicaHeat int64
	// VerifyBandsPerTick bounds the anti-entropy sweep: that many active
	// bands per tick are compared block-for-block against their primary
	// and repaired on divergence. Default 1; negative disables.
	VerifyBandsPerTick int
	// Guard configures every rank's supervisor identically (per-rank
	// seeds are mixed in); the Repair hook is owned by the fleet and must
	// be left nil.
	Guard guard.Config
	// RepairBandHook, when non-nil, is called after each band a chip
	// repair reconstructs (fault campaigns use it to kill the replica
	// rank mid-repair). It runs inside the repaired rank's quiesce.
	RepairBandHook func(rank, bandsDone int)
}

func (c Config) withDefaults() Config {
	if c.Ranks == 0 {
		c.Ranks = 3
	}
	if c.Banks == 0 {
		c.Banks = 2
	}
	if c.RowsPerBank == 0 {
		c.RowsPerBank = 8
	}
	if c.RowBytes == 0 {
		c.RowBytes = 1024
	}
	if c.Threshold <= 0 {
		c.Threshold = 2
	}
	if c.ReplicatePerTick == 0 {
		c.ReplicatePerTick = 2
	}
	if c.MinReplicaHeat == 0 {
		c.MinReplicaHeat = 1
	}
	if c.VerifyBandsPerTick == 0 {
		c.VerifyBandsPerTick = 1
	}
	return c
}

// Band replication states. Transitions happen only under the band's
// mutex; the atomic lets the lock-free primary read path skip the mutex
// entirely when a band has no replica.
const (
	bandNone    int32 = iota // unreplicated
	bandSyncing              // slot assigned, copy in flight, write-through live
	bandActive               // replica coherent: failover + read-repair eligible
)

// bandState tracks one fleet band's replication. Writers (and the rare
// replica-consulting read paths) serialise on mu; reads of an
// unreplicated band on a live rank never touch it.
type bandState struct {
	//chipkill:lock fleet.band level=10
	mu sync.Mutex
	//chipkill:atomic
	state atomic.Int32
	//chipkill:atomic
	replicaRank atomic.Int32
	//chipkill:atomic
	replicaSlot atomic.Int32
	// heat counts demand ops against the band — the replication policy's
	// hotness signal.
	//chipkill:atomic
	heat atomic.Int64
}

// node is one rank's full stack plus its fleet-side bookkeeping.
type node struct {
	idx    int
	rank   *rank.Rank
	eng    *engine.Engine
	sup    *guard.Supervisor
	region *guard.Region
	// killed latches whole-rank failure. Set before the chips fail (under
	// the engine's quiesce), checked first by every demand path.
	//chipkill:atomic
	killed atomic.Bool
	// pressure is the decayed per-rank error signal the replication
	// policy weighs heat by; prevTel is its telemetry baseline. Both are
	// supervision-tick-owned.
	pressure float64
	prevTel  core.Telemetry
	// pool[slot] is the fleet band hosted in that replica slot, -1 when
	// free.
	//chipkill:guardedby fleet.pool
	pool []int64
}

// Fleet is N ranks behind one block space. The demand APIs
// (ReadBlockInto/ReadBlock/WriteBlock/WriteBlockInitial) are safe for
// concurrent use; Tick, ReplicateBand, RepairChip and Stats are
// supervision-side and single-owner (one goroutine drives them), while
// KillRank may fire from anywhere — it is the failure model, not an API.
type Fleet struct {
	cfg        Config
	ranks      []*node
	bands      []bandState // one per fleet band: primaryBands * len(ranks)
	bandBlocks int64       // blocks per band (the engine migration band: one VLEW span)
	primary    int64       // primary bands per rank
	poolBase   int64       // first replica-pool block within a rank
	blocks     int64       // fleet capacity in blocks
	blockBytes int
	rsCode     *rs.Code // erasure decoder for the local repair fallback

	// poolMu guards every node's pool free-list.
	//chipkill:lock fleet.pool level=40
	poolMu sync.Mutex

	verifyCursor int64 // anti-entropy round-robin position (tick-owned)

	// repMu guards the repair history appended by RepairChip.
	//chipkill:lock fleet.repairs level=41
	repMu sync.Mutex
	//chipkill:guardedby fleet.repairs
	repairs []RepairReport

	// Fleet-wide outcome counters (see Stats).
	//chipkill:atomic
	replications atomic.Int64
	//chipkill:atomic
	failoverReads atomic.Int64
	//chipkill:atomic
	failoverWrites atomic.Int64
	//chipkill:atomic
	readRepairs atomic.Int64
	//chipkill:atomic
	divergenceFix atomic.Int64
	//chipkill:atomic
	containedDUEs atomic.Int64
	//chipkill:atomic
	rejectedWrites atomic.Int64
	//chipkill:atomic
	rankKills atomic.Int64
	//chipkill:atomic
	chipRepairs atomic.Int64
}

// New builds a fresh fleet: new zeroed ranks, engines, journal regions
// and supervisors.
func New(cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	ranks := make([]*rank.Rank, cfg.Ranks)
	for i := range ranks {
		r, err := rank.New(rank.PaperConfig(cfg.Banks, cfg.RowsPerBank, cfg.RowBytes,
			cfg.Seed+int64(i)*0x9e3779b9))
		if err != nil {
			return nil, fmt.Errorf("fleet: building rank %d: %w", i, err)
		}
		ranks[i] = r
	}
	return newFromParts(cfg, ranks, nil)
}

// Adopt rebuilds a fleet over surviving ranks and journal regions after
// a crash: fresh engines come up and every rank's supervisor runs its
// journal recovery (resuming or adopting an in-flight migration) before
// any demand traffic. The replication directory is volatile by design —
// it is an availability cache over the primaries, correctness comes from
// the primary copies plus the per-rank journals — so every band restarts
// unreplicated and the policy re-mirrors hot bands as traffic returns.
// A rank whose chips are all failed (killed before the crash) stays
// contained.
func Adopt(cfg Config, ranks []*rank.Rank, regions []*guard.Region) (*Fleet, error) {
	cfg = cfg.withDefaults()
	if len(ranks) != cfg.Ranks {
		return nil, fmt.Errorf("fleet: adopting %d ranks, config says %d", len(ranks), cfg.Ranks)
	}
	if len(regions) != len(ranks) {
		return nil, fmt.Errorf("fleet: %d journal regions for %d ranks", len(regions), len(ranks))
	}
	return newFromParts(cfg, ranks, regions)
}

func newFromParts(cfg Config, ranks []*rank.Rank, regions []*guard.Region) (*Fleet, error) {
	if cfg.Ranks < 2 {
		return nil, fmt.Errorf("fleet: need at least 2 ranks, got %d", cfg.Ranks)
	}
	if cfg.Guard.Repair != nil {
		return nil, fmt.Errorf("fleet: Config.Guard.Repair is fleet-owned, must be nil")
	}
	rcfg := ranks[0].Config()
	f := &Fleet{
		cfg:        cfg,
		bandBlocks: int64(rcfg.Geometry.VLEWDataBytes / rcfg.ChipAccessBytes),
		blockBytes: rcfg.BlockBytes(),
	}
	bandsPerRank := ranks[0].Blocks() / f.bandBlocks
	pool := int64(cfg.ReplicaBands)
	if pool == 0 {
		pool = bandsPerRank / 4
		if pool < 1 {
			pool = 1
		}
	}
	if pool < 1 || pool >= bandsPerRank {
		return nil, fmt.Errorf("fleet: replica pool %d bands must be in [1,%d)", pool, bandsPerRank)
	}
	f.primary = bandsPerRank - pool
	f.poolBase = f.primary * f.bandBlocks
	f.blocks = f.primary * f.bandBlocks * int64(cfg.Ranks)
	f.bands = make([]bandState, f.primary*int64(cfg.Ranks))

	code, err := rs.New(rcfg.BlockBytes(), rcfg.ChipAccessBytes)
	if err != nil {
		return nil, fmt.Errorf("fleet: sizing repair RS decoder: %w", err)
	}
	f.rsCode = code

	for i, r := range ranks {
		eng, err := engine.New(r, engine.Config{
			Shards: cfg.Shards,
			Core:   core.Config{Threshold: cfg.Threshold},
		})
		if err != nil {
			return nil, fmt.Errorf("fleet: rank %d engine: %w", i, err)
		}
		var region *guard.Region
		if regions != nil {
			region = regions[i]
		} else {
			region = guard.NewRegion(guard.RegionSizeFor(eng))
		}
		gcfg := cfg.Guard
		gcfg.Seed = cfg.Guard.Seed ^ (int64(i+1) * 0x2545f4914f6cdd1d)
		ri := i
		gcfg.Repair = func(chip int) error { return f.RepairChip(ri, chip) }
		sup, err := guard.New(eng, region, gcfg)
		if err != nil {
			return nil, fmt.Errorf("fleet: rank %d supervisor: %w", i, err)
		}
		poolSlice := make([]int64, pool)
		for s := range poolSlice {
			poolSlice[s] = -1
		}
		n := &node{
			idx: i, rank: r, eng: eng, sup: sup, region: region,
			prevTel: eng.Telemetry(),
			pool:    poolSlice,
		}
		if r.FailedChips() >= r.NumChips() {
			n.killed.Store(true) // a rank killed before the crash stays contained
		}
		f.ranks = append(f.ranks, n)
	}
	return f, nil
}

// Blocks returns the fleet's demand capacity (replica pools excluded).
func (f *Fleet) Blocks() int64 { return f.blocks }

// BlockBytes returns the block size the demand APIs move.
func (f *Fleet) BlockBytes() int { return f.blockBytes }

// BandBlocks returns the placement/replication band size in blocks.
func (f *Fleet) BandBlocks() int64 { return f.bandBlocks }

// Bands returns the fleet band count.
func (f *Fleet) Bands() int64 { return int64(len(f.bands)) }

// NumRanks returns the rank count.
func (f *Fleet) NumRanks() int { return len(f.ranks) }

// Rank exposes rank i's chip stack (fault injection, tests).
func (f *Fleet) Rank(i int) *rank.Rank { return f.ranks[i].rank }

// Engine exposes rank i's demand engine.
func (f *Fleet) Engine(i int) *engine.Engine { return f.ranks[i].eng }

// Supervisor exposes rank i's guard supervisor.
func (f *Fleet) Supervisor(i int) *guard.Supervisor { return f.ranks[i].sup }

// Region exposes rank i's journal region (crash/reboot harnesses).
func (f *Fleet) Region(i int) *guard.Region { return f.ranks[i].region }

// RankKilled reports whether rank i has been killed.
func (f *Fleet) RankKilled(i int) bool { return f.ranks[i].killed.Load() }

// SetRepairBandHook installs (or clears) the per-band chip-repair
// progress hook after construction — fault harnesses use it to land
// faults mid-repair. Set it before the repair starts; it is invoked on
// the supervision goroutine inside the repairing rank's quiesce.
func (f *Fleet) SetRepairBandHook(fn func(rank, bandsDone int)) { f.cfg.RepairBandHook = fn }

// RankOf returns the rank serving a fleet block's primary copy.
func (f *Fleet) RankOf(block int64) int {
	rk, _ := f.locate(block)
	return rk
}

// locate maps a fleet block to its primary (rank, local block). Bands
// round-robin across ranks, so consecutive bands land on different ranks
// (interleaving) while blocks within a band stay contiguous in one row
// (the row-buffer locality the EUR exploits).
func (f *Fleet) locate(block int64) (rk int, local int64) {
	if block < 0 || block >= f.blocks {
		panic(fmt.Sprintf("fleet: block %d out of range [0,%d)", block, f.blocks))
	}
	band := block / f.bandBlocks
	n := int64(len(f.ranks))
	return int(band % n), (band/n)*f.bandBlocks + block%f.bandBlocks
}

// fleetBand is locate's inverse at band granularity.
func (f *Fleet) fleetBand(rk int, localBand int64) int64 {
	return localBand*int64(len(f.ranks)) + int64(rk)
}

// replicaBlock returns the replica-rank local block backing a fleet
// block, given its band's assigned slot. Callers must know the band is
// syncing or active (slot fields are only meaningful then).
func (f *Fleet) replicaBlock(bs *bandState, block int64) int64 {
	return f.poolBase + int64(bs.replicaSlot.Load())*f.bandBlocks + block%f.bandBlocks
}

// BandReplicated reports whether the block's band has a coherent replica
// on a live rank.
func (f *Fleet) BandReplicated(block int64) bool {
	bs := &f.bands[block/f.bandBlocks]
	if bs.state.Load() != bandActive {
		return false
	}
	return !f.ranks[bs.replicaRank.Load()].killed.Load()
}

// ReplicaLocation returns the (rank, local block) holding a block's
// replica copy while its band is active — for harnesses that corrupt or
// inspect replicas directly. ok is false when the band has no replica.
func (f *Fleet) ReplicaLocation(block int64) (rk int, local int64, ok bool) {
	bs := &f.bands[block/f.bandBlocks]
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if bs.state.Load() != bandActive {
		return 0, 0, false
	}
	return int(bs.replicaRank.Load()), f.replicaBlock(bs, block), true
}

// Servable reports whether a read of the block can currently be served:
// the primary rank is alive, or the band fails over to a live replica.
func (f *Fleet) Servable(block int64) bool {
	rk, _ := f.locate(block)
	return !f.ranks[rk].killed.Load() || f.BandReplicated(block)
}

// ReadBlockInto reads one fleet block into a caller-owned buffer of
// BlockBytes(). Reads of an unreplicated band on a live rank go straight
// to the rank's lock-free engine path; a DUE on a replicated band
// triggers read-repair from the replica, and a killed primary fails over
// to it. With the primary down and no live replica the read returns an
// error wrapping ErrRankFailed — a contained DUE, never silent data.
func (f *Fleet) ReadBlockInto(block int64, dst []byte) error {
	rk, local := f.locate(block)
	bs := &f.bands[block/f.bandBlocks]
	bs.heat.Add(1)
	n := f.ranks[rk]
	if !n.killed.Load() {
		err := n.eng.ReadBlockInto(local, dst)
		if err == nil {
			return nil
		}
		if bs.state.Load() == bandActive {
			if rerr := f.readRepair(bs, n, local, block, dst); rerr == nil {
				return nil
			}
		}
		// A read racing KillRank can observe the kill as an engine DUE
		// (all chips failed) before it observes the latch; re-check so
		// the race classifies as the contained rank failure it is.
		if !n.killed.Load() {
			return err
		}
	}
	if bs.state.Load() == bandActive {
		if err := f.failoverRead(bs, block, dst); err == nil {
			f.failoverReads.Add(1)
			return nil
		}
	}
	f.containedDUEs.Add(1)
	return fmt.Errorf("fleet: read block %d: rank %d down, no live replica: %w", block, rk, ErrRankFailed)
}

// ReadBlock is ReadBlockInto returning a fresh buffer.
func (f *Fleet) ReadBlock(block int64) ([]byte, error) {
	dst := make([]byte, f.blockBytes)
	if err := f.ReadBlockInto(block, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// failoverRead serves a block from its replica under the band mutex —
// required so a concurrent demotion cannot retarget the slot mid-read.
func (f *Fleet) failoverRead(bs *bandState, block int64, dst []byte) error {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if bs.state.Load() != bandActive {
		return fmt.Errorf("fleet: block %d replica demoted: %w", block, ErrNoReplica)
	}
	rn := f.ranks[bs.replicaRank.Load()]
	if rn.killed.Load() {
		return fmt.Errorf("fleet: block %d replica rank %d down: %w", block, rn.idx, ErrRankFailed)
	}
	return rn.eng.ReadBlockInto(f.replicaBlock(bs, block), dst)
}

// readRepair recovers a DUE on a live primary from the band's replica
// and writes the recovered bytes back to the primary. The whole
// round-trip holds the band mutex: write-through writers serialise on
// it, so the replica bytes read here are never older than the last
// acknowledged write and the primary write-back cannot revert one.
func (f *Fleet) readRepair(bs *bandState, n *node, local, block int64, dst []byte) error {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if bs.state.Load() != bandActive {
		return fmt.Errorf("fleet: block %d replica demoted: %w", block, ErrNoReplica)
	}
	rn := f.ranks[bs.replicaRank.Load()]
	if rn.killed.Load() {
		return fmt.Errorf("fleet: block %d replica rank %d down: %w", block, rn.idx, ErrRankFailed)
	}
	if err := rn.eng.ReadBlockInto(f.replicaBlock(bs, block), dst); err != nil {
		return err
	}
	// Raw write-back: re-encodes the RS check bytes from the recovered
	// data, scrubbing whatever made the primary copy uncorrectable.
	if err := n.eng.WriteBlockInitial(local, dst); err != nil {
		return err
	}
	f.readRepairs.Add(1)
	return nil
}

// WriteBlock writes one fleet block through the OMV-XOR write path of
// its primary rank, writing through to the replica when the band has
// one. The write is acknowledged only once every live copy has it; with
// the primary rank down it lands on the replica alone, and with neither
// available it is rejected with ErrRankFailed (never half-acknowledged).
func (f *Fleet) WriteBlock(block int64, data []byte) error {
	return f.write(block, data, false)
}

// WriteBlockInitial writes a block conventionally (raw data on the bus);
// used to populate the fleet.
func (f *Fleet) WriteBlockInitial(block int64, data []byte) error {
	return f.write(block, data, true)
}

func (f *Fleet) write(block int64, data []byte, initial bool) error {
	rk, local := f.locate(block)
	band := block / f.bandBlocks
	bs := &f.bands[band]
	bs.heat.Add(1)
	n := f.ranks[rk]
	// Every write serialises on the band mutex — including writes to
	// unreplicated bands, so the replication copier observes either all
	// of a write or none of it while a band transitions to syncing. An
	// uncontended mutex is noise against the ~µs write path.
	bs.mu.Lock()
	defer bs.mu.Unlock()
	alive := !n.killed.Load()
	if alive {
		var err error
		if initial {
			err = n.eng.WriteBlockInitial(local, data)
		} else {
			err = n.eng.WriteBlock(local, data)
		}
		if err != nil {
			if !n.killed.Load() {
				return err // unacknowledged; the replica was not touched
			}
			// The write raced KillRank and the engine saw the dead chips
			// first; it did not land, so take the dead-rank path (replica
			// ack or typed rejection) like any post-kill write.
			alive = false
		}
	}
	repOK := false
	if bs.state.Load() != bandNone {
		rn := f.ranks[bs.replicaRank.Load()]
		if !rn.killed.Load() {
			// Replica copies always take the raw write: the mirror block's
			// previous contents are unrelated to the data's old value, so
			// the OMV-XOR path does not apply.
			if err := rn.eng.WriteBlockInitial(f.replicaBlock(bs, block), data); err != nil {
				// The replica no longer mirrors acknowledged data; demote it
				// rather than serve stale failovers later.
				f.demoteBandLocked(bs)
			} else {
				repOK = true
			}
		}
	}
	if alive {
		return nil
	}
	if repOK {
		f.failoverWrites.Add(1)
		return nil
	}
	f.rejectedWrites.Add(1)
	return fmt.Errorf("fleet: write block %d: rank %d down, no live replica: %w", block, rk, ErrRankFailed)
}

// KillRank fails every chip of a rank under its engine's quiesce — the
// whole-device failure model. The killed latch is set first, so demand
// paths route around the rank before its chips start returning garbage;
// a read racing the kill either served real pre-kill bytes or sees the
// all-chips-failed DUE — never fabricated data. Idempotent.
func (f *Fleet) KillRank(i int) {
	n := f.ranks[i]
	if n.killed.Swap(true) {
		return
	}
	n.eng.Quiesce(func() {
		for ci := 0; ci < n.rank.NumChips(); ci++ {
			n.rank.FailChip(ci)
		}
	})
	f.rankKills.Add(1)
}
