package fleet

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"chipkillpm/internal/guard"
	"chipkillpm/internal/rank"
)

// image reads every currently-servable fleet block into one flat byte
// slice (unservable blocks contribute a zeroed slot), for
// byte-determinism comparisons across runs.
func image(t *testing.T, f *Fleet) []byte {
	t.Helper()
	out := make([]byte, f.Blocks()*int64(f.BlockBytes()))
	buf := make([]byte, f.BlockBytes())
	for b := int64(0); b < f.Blocks(); b++ {
		if !f.Servable(b) {
			continue
		}
		if err := f.ReadBlockInto(b, buf); err != nil {
			t.Fatalf("image read %d: %v", b, err)
		}
		copy(out[b*int64(f.BlockBytes()):], buf)
	}
	return out
}

// runDoubleFault is one full double-fault scenario: a two-rank fleet
// replicating bands both ways, a chip killed on each rank, and both
// guards required to convict and repair externally — each repair
// reading its replicas through the *other* (also wounded) rank's
// corrected-read path. Returns the final data image.
func runDoubleFault(t *testing.T) []byte {
	t.Helper()
	cfg := Config{
		Ranks: 2, Banks: 2, RowsPerBank: 4, RowBytes: 1024,
		Seed: 99, ReplicaBands: 8, ReplicatePerTick: -1,
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, f)
	// Bands alternate ranks with 2 ranks: even bands on rank 0, odd on 1.
	for _, band := range []int64{0, 2, 4, 1, 3, 5} {
		if err := f.ReplicateBand(band); err != nil {
			t.Fatal(err)
		}
	}
	f.Engine(0).Quiesce(func() { f.Rank(0).FailChip(2) })
	f.Engine(1).Quiesce(func() { f.Rank(1).FailChip(5) })

	buf := make([]byte, f.BlockBytes())
	repaired := func() bool {
		return f.Supervisor(0).Report().ExternalRepairs == 1 &&
			f.Supervisor(1).Report().ExternalRepairs == 1
	}
	for i := 0; i < 800 && !repaired(); i++ {
		for b := int64(0); b < 16; b++ {
			if err := f.ReadBlockInto(b*f.BandBlocks(), buf); err != nil {
				t.Fatalf("demand read: %v", err)
			}
		}
		if err := f.Tick(); err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
	}
	if !repaired() {
		t.Fatalf("double fault not repaired: rank0 %+v rank1 %+v",
			f.Supervisor(0).Report(), f.Supervisor(1).Report())
	}
	for i := 0; i < 2; i++ {
		if d, _ := f.Engine(i).Degraded(); d {
			t.Fatalf("rank %d went degraded despite replica repair", i)
		}
		if f.Engine(i).Telemetry().DUEs != 0 {
			t.Fatalf("rank %d saw DUEs during double-fault repair", i)
		}
		if f.Rank(i).FailedChips() != 0 {
			t.Fatalf("rank %d still has failed chips", i)
		}
	}
	for b := int64(0); b < f.Blocks(); b++ {
		checkBlock(t, f, b)
	}
	return image(t, f)
}

func TestDoubleFaultContainment(t *testing.T) {
	first := runDoubleFault(t)
	second := runDoubleFault(t)
	if !bytes.Equal(first, second) {
		t.Fatal("double-fault scenario not byte-deterministic across runs")
	}
}

// runCrashDuringFallback drives the no-replica fallback into a crash: a
// chip dies on a fleet with replication disabled, the guard's Repair
// hook declines (ErrNoReplica), the journaled local migration starts, a
// journal write tears mid-migration (power loss), and Adopt rebuilds the
// fleet over the surviving ranks and regions — recovery must resume the
// migration from the journal and finish into degraded mode with every
// byte intact. Returns the final data image.
func runCrashDuringFallback(t *testing.T) []byte {
	t.Helper()
	cfg := Config{
		Ranks: 3, Banks: 2, RowsPerBank: 4, RowBytes: 1024,
		Seed: 7, ReplicaBands: 8, ReplicatePerTick: -1,
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, f)
	const chip = 3
	f.Engine(0).Quiesce(func() { f.Rank(0).FailChip(chip) })

	buf := make([]byte, f.BlockBytes())
	drive := func(fl *Fleet, stop func() bool) {
		for i := 0; i < 800 && !stop(); i++ {
			for b := int64(0); b < 8; b++ {
				if err := fl.ReadBlockInto(b*fl.BandBlocks()+int64(i%32), buf); err != nil {
					t.Fatalf("demand read: %v", err)
				}
			}
			if err := fl.Tick(); err != nil {
				t.Fatalf("tick: %v", err)
			}
		}
	}
	// Run until the journaled migration is well underway...
	drive(f, func() bool { return f.Engine(0).Stats().BandsMigrated >= 8 })
	if f.Supervisor(0).State() != guard.StateMigrating {
		t.Fatalf("rank 0 in %v, want migrating (no-replica fallback)", f.Supervisor(0).State())
	}
	// ...then lose power mid-journal-append.
	f.Region(0).TearNextWrite(20)
	if err := f.Tick(); err == nil {
		t.Fatal("tick across the torn journal write reported success")
	}
	if !f.Region(0).Crashed() {
		t.Fatal("tear never fired")
	}

	// Reboot: volatile state drains, then a new fleet adopts the
	// surviving ranks and journal regions.
	var regions []*guard.Region
	var ranks []*rank.Rank
	for i := 0; i < f.NumRanks(); i++ {
		f.Rank(i).CloseAllRows()
		f.Region(i).Reboot()
		regions = append(regions, f.Region(i))
		ranks = append(ranks, f.Rank(i))
	}
	f2, err := Adopt(cfg, ranks, regions)
	if err != nil {
		t.Fatalf("adopt: %v", err)
	}
	rep := f2.Supervisor(0).Report()
	if !rep.MigrationResumed || rep.State != guard.StateMigrating {
		t.Fatalf("recovery did not resume the migration: %+v", rep)
	}
	drive(f2, func() bool { return f2.Supervisor(0).State() == guard.StateDegraded })
	if f2.Supervisor(0).State() != guard.StateDegraded {
		t.Fatalf("resumed migration never finished: %v", f2.Supervisor(0).State())
	}
	if d, c := f2.Engine(0).Degraded(); !d || c != chip {
		t.Fatalf("post-recovery Degraded() = %v, %d", d, c)
	}
	for b := int64(0); b < f2.Blocks(); b++ {
		checkBlock(t, f2, b)
	}
	return image(t, f2)
}

func TestCrashDuringFallbackMigrationResumes(t *testing.T) {
	first := runCrashDuringFallback(t)
	second := runCrashDuringFallback(t)
	if !bytes.Equal(first, second) {
		t.Fatal("crash-recovery scenario not byte-deterministic across runs")
	}
}

// TestConcurrentDemandWithRankKill is the race-coverage test: demand
// workers hammer disjoint block stripes while the supervision loop
// replicates hot bands and a rank dies mid-traffic. Acknowledged writes
// to servable blocks must read back exactly; errors must be typed
// contained failures, never wrong bytes.
func TestConcurrentDemandWithRankKill(t *testing.T) {
	cfg := testConfig()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, f)

	const workers = 4
	type ws struct {
		shadow map[int64][]byte
		err    error
	}
	var postKill atomic.Int64
	killed := make(chan struct{})
	stop := make(chan struct{})
	results := make([]ws, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &results[w]
			res.shadow = make(map[int64][]byte)
			rng := rand.New(rand.NewSource(int64(w)*7919 + 5))
			buf := make([]byte, f.BlockBytes())
			for {
				select {
				case <-stop:
					return
				default:
				}
				b := int64(w) + int64(rng.Intn(int(f.Blocks())/workers))*workers
				if rng.Intn(3) == 0 {
					data := make([]byte, f.BlockBytes())
					rng.Read(data)
					if err := f.WriteBlock(b, data); err != nil {
						if !Contained(err) {
							res.err = err
							return
						}
					} else {
						res.shadow[b] = data
					}
				} else {
					err := f.ReadBlockInto(b, buf)
					if err != nil {
						if !Contained(err) {
							res.err = err
							return
						}
					} else if want, ok := res.shadow[b]; ok && !bytes.Equal(buf, want) {
						res.err = errors.New("read returned wrong bytes for acknowledged write")
						return
					}
				}
				select {
				case <-killed:
					postKill.Add(1)
				default:
				}
			}
		}(w)
	}

	for i := 0; i < 10; i++ {
		if err := f.Tick(); err != nil {
			t.Fatalf("tick: %v", err)
		}
	}
	f.KillRank(1)
	close(killed)
	for postKill.Load() < 400 {
		if err := f.Tick(); err != nil {
			t.Fatalf("post-kill tick: %v", err)
		}
	}
	close(stop)
	wg.Wait()

	buf := make([]byte, f.BlockBytes())
	for w := range results {
		if results[w].err != nil {
			t.Fatalf("worker %d: %v", w, results[w].err)
		}
		for b, want := range results[w].shadow {
			if !f.Servable(b) {
				if err := f.ReadBlockInto(b, buf); !errors.Is(err, ErrRankFailed) {
					t.Fatalf("unservable block %d: %v, want ErrRankFailed", b, err)
				}
				continue
			}
			if err := f.ReadBlockInto(b, buf); err != nil {
				t.Fatalf("servable block %d: %v", b, err)
			}
			if !bytes.Equal(buf, want) {
				t.Fatalf("block %d lost an acknowledged write", b)
			}
		}
	}
}
