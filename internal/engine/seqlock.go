// Seqlock clean-read path. The overwhelmingly common demand operation is
// a clean read — a raw gather plus one RS syndrome check over state no
// writer is touching — yet the shard mutex made every one of them pay a
// lock handoff. This file lets clean readers skip the mutex entirely:
//
//	writer:  s.lockWrite()   // mu.Lock; seq++ (odd)
//	         ...mutate...
//	         s.unlockWrite() // seq++ (even); mu.Unlock
//
//	reader:  s1 := seq.Load()            // must be even
//	         gather + RS check           // plain loads, may observe tears
//	         if seq.Load() != s1 → retry // tear detected, result discarded
//
// The sequence counter uses Go's sync/atomic, whose operations are
// sequentially consistent: the reader's initial Load acquires everything
// the last unlockWrite released, and the final Load re-ordering barrier
// guarantees the gathered bytes belong to generation s1. A reader that
// observes an odd sequence, loses the revalidation race seqReadRetries
// times, needs correction, or hits any standing-down gate (degraded
// layout, migration cursor, failed chip, retired block on the shard)
// parks on the mutex like before — the 0.02% case keeps its locked
// semantics, and readers never spin against a long writer (band
// migration) on a loaded core. DESIGN.md §12 has the full argument.
package engine

import (
	"encoding/binary"
	"math/bits"

	"chipkillpm/internal/rank"
)

// seqReadRetries bounds how many sequence conflicts a lock-free reader
// absorbs before parking on the shard mutex. Conflicts need a writer in
// flight on the same shard during the ~100 ns read window, so two losses
// in a row already signal a write burst — parking (which blocks properly)
// beats burning the core on a third attempt.
const seqReadRetries = 2

// lockWrite opens a shard writer critical section: mutex for writer/writer
// exclusion, then the sequence bump to odd that makes concurrent lock-free
// readers stand down (or discard and retry, if they already gathered).
// Every store to seqlock-covered state — chip data cells, controller
// layout state — must happen between lockWrite and unlockWrite; the
// seqlock analyzer in chipkillvet enforces this for the policed
// controller mutators.
//
//chipkill:locks engine.shard
func (s *shard) lockWrite() {
	s.mu.Lock()
	s.seq.Add(1)
}

// unlockWrite closes the critical section: sequence back to even
// (publishing the mutations to the next reader generation), then the
// mutex handoff.
//
//chipkill:unlocks engine.shard
func (s *shard) unlockWrite() {
	s.seq.Add(1)
	s.mu.Unlock()
}

// fastGeom is the precomputed block→cell-offset addressing the lock-free
// reader uses instead of rank.Locate (which burns integer divisions and a
// range panic on the hot path). It mirrors Locate exactly: consecutive
// blocks share a row, consecutive rows interleave across banks, and every
// chip stores its 8-byte slice of a block at the same in-chip offset.
type fastGeom struct {
	blocks      int64 // rank capacity, for bounds gating
	blockBytes  int
	bpr         int64 // blocks per row
	banks       int64
	rowsPerBank int64
	rowTotal    int64 // physical row stride in bytes (data + code regions)

	// pow2 addressing: when both blocks-per-row and the bank count are
	// powers of two (they are in the paper's geometry), the divisions
	// collapse to shifts and masks.
	pow2                bool
	bprShift, bankShift uint
	bprMask, bankMask   int64
}

func newFastGeom(cr rank.Config, blocks int64) fastGeom {
	g := cr.Geometry
	fg := fastGeom{
		blocks:      blocks,
		blockBytes:  cr.BlockBytes(),
		bpr:         int64(cr.BlocksPerRow()),
		banks:       int64(g.Banks),
		rowsPerBank: int64(g.RowsPerBank),
		rowTotal:    int64(g.RowTotalBytes()),
	}
	if isPow2(fg.bpr) && isPow2(fg.banks) {
		fg.pow2 = true
		fg.bprShift = uint(bits.TrailingZeros64(uint64(fg.bpr)))
		fg.bprMask = fg.bpr - 1
		fg.bankShift = uint(bits.TrailingZeros64(uint64(fg.banks)))
		fg.bankMask = fg.banks - 1
	}
	return fg
}

func isPow2(x int64) bool { return x > 0 && x&(x-1) == 0 }

// offsetOf returns the byte offset of a block's 8-byte slice within every
// chip's cell array. Valid only for 0 <= block < blocks (the reader gates
// on that before calling) and ChipAccessBytes == 8 (the seqOK gate).
//
//chipkill:seqread
func (g *fastGeom) offsetOf(block int64) int64 {
	var rowIdx, col, bank, row int64
	if g.pow2 {
		rowIdx = block >> g.bprShift
		col = (block & g.bprMask) << 3
		bank = rowIdx & g.bankMask
		row = rowIdx >> g.bankShift
	} else {
		rowIdx = block / g.bpr
		col = (block % g.bpr) * 8
		bank = rowIdx % g.banks
		row = rowIdx / g.banks
	}
	return (bank*g.rowsPerBank+row)*g.rowTotal + col
}

// readFast attempts one lock-free clean read of block into dst and
// reports whether it served the read. On false the caller must take the
// locked path, which reproduces the exact legacy semantics (including
// range panics, size errors, disabled-block errors and the correction
// machinery) and overwrites whatever torn bytes a failed attempt left in
// dst.
//
// The function runs between sequence checks with no exclusion at all, so
// it must stay pure: no stores outside dst and the shard's atomic
// outcome counters, no calls that could allocate, lock, or mutate.
// chipkillvet's seqlock analyzer enforces this transitively through the
// //chipkill:seqread marks.
//
//chipkill:noalloc
//chipkill:seqread
func (e *Engine) readFast(s *shard, block int64, dst []byte) bool {
	if block < 0 || block >= e.geo.blocks || len(dst) != e.geo.blockBytes {
		return false
	}
	for tries := 0; ; tries++ {
		s1 := s.seq.Load()
		if s1&1 != 0 || tries == seqReadRetries {
			// A writer is inside, or one keeps beating us: park on the
			// mutex, which blocks instead of spinning.
			s.seqFallbacks.Add(1)
			return false
		}
		// Standing-down gates, re-evaluated each attempt. degraded and
		// hasDisabled are sticky (set before the state they guard ever
		// changes, never cleared), the migration cursor only grows, and
		// a chip failure under load happens inside Quiesce — whose
		// sequence bumps force racing readers back here to observe it.
		// FailedChips is also checked per attempt because a failed
		// chip's stale cells can still look like a valid codeword.
		if e.degraded.Load() || s.hasDisabled.Load() || e.rank.FailedChips() != 0 {
			return false
		}
		if m := e.mig.Load(); m != nil && block < m.Cursor() {
			return false
		}
		off := e.geo.offsetOf(block)
		for i := 0; i < len(e.cells); i++ {
			binary.LittleEndian.PutUint64(dst[8*i:],
				binary.LittleEndian.Uint64(e.cells[i][off:]))
		}
		w := binary.LittleEndian.Uint64(e.parityCells[off:])
		ok := e.rsCode.CheckWord(dst, w)
		if s.seq.Load() != s1 {
			// Torn or stale: discard everything and retry.
			s.seqRetries.Add(1)
			continue
		}
		if !ok {
			// Validated anomaly: the block really needs correction, which
			// allocates and must run under the lock.
			return false
		}
		return true
	}
}

// SeqStats reports the lock-free read path's outcome counters, summed
// across shards. Monotonic between ResetStats calls; all zeros when the
// seqlock path is disabled (race builds, DisableSeqlock, incompatible
// geometry or write-back configs).
type SeqStats struct {
	FastReads     int64 // clean reads served without touching the shard mutex
	Retries       int64 // gathers discarded on a sequence conflict and retried
	LockFallbacks int64 // reads parked on the mutex: writer inside or retries exhausted
}

// SeqStats sums the per-shard seqlock outcome counters.
func (e *Engine) SeqStats() SeqStats {
	var t SeqStats
	for _, s := range e.shards {
		t.FastReads += s.fastReads.Load()
		t.Retries += s.seqRetries.Load()
		t.LockFallbacks += s.seqFallbacks.Load()
	}
	return t
}

// SeqlockEnabled reports whether the engine compiled and configured the
// lock-free clean-read path.
func (e *Engine) SeqlockEnabled() bool { return e.seqOK }
