package analysis_test

import (
	"strings"
	"testing"

	"chipkillpm/internal/analysis"
)

// TestDirectiveValidation checks that malformed //chipkill: comments are
// rejected under the reserved "directive" analyzer name. The
// expectations live here rather than as // want comments because a
// malformed directive's own line cannot carry one without changing how
// the directive parses.
func TestDirectiveValidation(t *testing.T) {
	suite := analysis.NewSuite(analysis.Sentinel)
	diags, err := suite.Run("testdata/directive", "./...")
	if err != nil {
		t.Fatalf("loading testdata/directive: %v", err)
	}

	expect := []string{
		`unknown directive //chipkill:frobnicate`,
		`//chipkill:noalloc must be part of a function declaration's doc comment`,
		`//chipkill:allow needs an analyzer name and a reason`,
		`//chipkill:allow names unknown analyzer "frobcheck"`,
		`//chipkill:allow noalloc needs a reason`,
		`lock "d.box" redeclared`,
		`//chipkill:lock needs a name and a level`,
		`bad level "ten"`,
		`//chipkill:lock must be attached to a struct field or a function declaration`,
		`//chipkill:holds references undeclared lock "d.absent"`,
		`//chipkill:locks references undeclared lock "d.unknown"`,
		`//chipkill:guardedby must be attached to a struct field`,
		`//chipkill:guardedby references undeclared lock "d.missing"`,
		`//chipkill:atomic takes no arguments`,
		`//chipkill:atomic must be attached to a struct field`,
	}
	var directiveDiags []analysis.Diagnostic
	for _, d := range diags {
		if d.Analyzer == "directive" {
			directiveDiags = append(directiveDiags, d)
		} else {
			t.Errorf("unexpected non-directive diagnostic: %s", d)
		}
	}
	for _, want := range expect {
		found := false
		for _, d := range directiveDiags {
			if strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no directive diagnostic containing %q (got %v)", want, directiveDiags)
		}
	}
	if len(directiveDiags) != len(expect) {
		t.Errorf("got %d directive diagnostics, want %d: %v", len(directiveDiags), len(expect), directiveDiags)
	}
}
