package core

import (
	"fmt"
)

// Degraded-mode operation (Sec V-E).
//
// After a data chip fails permanently, one recovery option is to retire
// the rank. The paper's alternative keeps the rank in service: the failed
// chip's contents are remapped into the ECC (parity) chip — sacrificing
// the per-block Reed-Solomon bits — and every VLEW is dynamically
// re-encoded over 256 B of data *striped across the surviving chips*
// instead of 256 B within one chip. A reconfigured VLEW therefore covers
// four consecutive 64 B blocks, so correcting a block's bit errors
// requires fetching only four blocks via regular requests, and the VLEW
// length and strength (and thus capacity overhead) are unchanged.
//
// Each rank row holds 128 blocks = 32 striped VLEWs, and the eight
// surviving chips provide 8 x 4 = 32 per-row code slots — an exact fit,
// so the reconfigured code bits live in the existing code regions with no
// added capacity. The in-chip EUR cannot maintain cross-chip code words,
// so code updates move to the controller — one of degraded mode's costs,
// alongside losing per-block error detection (every degraded read
// verifies through its striped VLEW).

// StripedBlocksPerVLEW is how many 64B blocks one reconfigured VLEW
// covers: 256B of data striped across the rank. Exported so layered
// callers (engine patrol routing, the guard's degraded patrol) can map
// striped-group indices to blocks.
const StripedBlocksPerVLEW = 4

// stripedBlocksPerVLEW is the package-internal alias.
const stripedBlocksPerVLEW = StripedBlocksPerVLEW

// Degraded reports whether the controller is in degraded (remapped) mode
// and, if so, which data chip was retired.
func (c *Controller) Degraded() (bool, int) { return c.degraded, c.failedChip }

// stripedLoc maps a block to its striped VLEW's code slot. The 32 striped
// VLEWs of a row spread over the 8 surviving chips' 4 per-row code slots
// (8 x 4 = 32: an exact fit, so reconfiguration adds no capacity).
func (c *Controller) stripedLoc(block int64) (bank, row, chip, slot int, first int64) {
	loc := c.rank.Locate(block)
	first = block - block%stripedBlocksPerVLEW
	bpr := int64(c.rank.Config().BlocksPerRow())
	s := int((block % bpr) / stripedBlocksPerVLEW)
	survivors := c.rank.NumChips() - 1
	h := s % survivors
	// Skip the failed chip when assigning holders.
	if h >= c.failedChip {
		h++
	}
	return loc.Bank, loc.Row, h, s / survivors, first
}

// stripedData gathers the 256B of data one striped VLEW covers, reading
// each block raw (failed-chip slices come from the parity chip's data
// region, where the remap placed them).
func (c *Controller) stripedData(first int64) []byte {
	out := make([]byte, 0, 256)
	for i := int64(0); i < stripedBlocksPerVLEW; i++ {
		out = append(out, c.readRawDegraded(first+i)...)
	}
	return out
}

// readRawDegraded gathers one block's bytes in the remapped layout.
func (c *Controller) readRawDegraded(block int64) []byte {
	rcfg := c.rank.Config()
	loc := c.rank.Locate(block)
	n := rcfg.ChipAccessBytes
	data := make([]byte, rcfg.BlockBytes())
	for ci := 0; ci < rcfg.DataChips; ci++ {
		src := ci
		if ci == c.failedChip {
			src = c.rank.ParityChipIndex()
		}
		copy(data[ci*n:], c.rank.Chip(src).ReadData(loc.Bank, loc.Row, loc.Col, n))
	}
	return data
}

// EnterDegradedMode remaps the failed data chip into the parity chip and
// re-encodes every VLEW across the surviving chips. The rank must already
// be scrubbed (BootScrub reconstructs the failed chip's data); the method
// performs the reconstruction itself when the chip is still marked
// failed. Only a single data-chip failure is supported — a second failure
// in a degraded rank is beyond the scheme, as in the paper.
//
//chipkill:rankwide
func (c *Controller) EnterDegradedMode(failedChip int) error {
	if c.degraded {
		return fmt.Errorf("core: already degraded (chip %d): %w", c.failedChip, ErrChipFailed)
	}
	if c.mig != nil {
		return fmt.Errorf("core: cannot enter degraded mode stop-the-world: %w", ErrMigrationInProgress)
	}
	if failedChip < 0 || failedChip >= c.rank.Config().DataChips {
		return fmt.Errorf("core: chip %d is not a data chip", failedChip)
	}
	r := c.rank
	rcfg := r.Config()
	n := rcfg.ChipAccessBytes
	code := rcfg.VLEWCode
	r.CloseAllRows()

	parity := r.Chip(r.ParityChipIndex())
	if !parity.Healthy() {
		return fmt.Errorf("core: parity chip unavailable for remapping: %w", ErrChipFailed)
	}

	// Step 1: place the failed chip's data into the parity chip. If the
	// chip is dead, reconstruct each slice via RS erasure first.
	erasures := make([]int, n)
	for i := range erasures {
		erasures[i] = failedChip*n + i
	}
	for b := int64(0); b < r.Blocks(); b++ {
		data, check := r.ReadBlockRaw(b)
		if !r.Chip(failedChip).Healthy() {
			for i := failedChip * n; i < (failedChip+1)*n; i++ {
				data[i] = 0
			}
			if _, err := c.rsCode.Decode(data, check, erasures); err != nil {
				return fmt.Errorf("core: reconstructing block %d for remap (%v): %w", b, err, ErrUncorrectable)
			}
		}
		loc := r.Locate(b)
		parity.WriteDataRaw(loc.Bank, loc.Row, loc.Col, data[failedChip*n:(failedChip+1)*n])
	}
	c.degraded = true
	c.failedChip = failedChip

	// Step 2: re-encode all VLEWs in the striped layout, overwriting the
	// per-chip code slots.
	for first := int64(0); first < r.Blocks(); first += stripedBlocksPerVLEW {
		bank, row, chip, slot, _ := c.stripedLoc(first)
		parityBytes := code.Encode(c.stripedData(first))
		fresh := make([]byte, rcfg.Geometry.VLEWCodeBytes)
		copy(fresh, parityBytes)
		holder := r.Chip(chip)
		old := holder.ReadCode(bank, row, slot)
		for i := range old {
			old[i] ^= fresh[i] // XOR to the fresh value regardless of old content
		}
		holder.XORCode(bank, row, slot, old)
	}
	return nil
}

// AdoptDegradedMode switches the controller's addressing to the degraded
// (remapped) layout without performing the physical remap itself. The
// sharded engine uses it: one shard's controller runs EnterDegradedMode
// (which rewrites the whole rank under quiescence) and every other shard
// adopts the resulting layout, since the striped format on the chips is a
// rank-wide property, not per-controller state.
func (c *Controller) AdoptDegradedMode(failedChip int) error {
	if c.degraded {
		return fmt.Errorf("core: already degraded (chip %d): %w", c.failedChip, ErrChipFailed)
	}
	if c.mig != nil {
		return fmt.Errorf("core: cannot adopt degraded mode: %w", ErrMigrationInProgress)
	}
	if failedChip < 0 || failedChip >= c.rank.Config().DataChips {
		return fmt.Errorf("core: chip %d is not a data chip", failedChip)
	}
	c.degraded = true
	c.failedChip = failedChip
	return nil
}

// readDegraded services a read in degraded mode: fetch the block's
// striped VLEW (four blocks + code), decode, and return the block.
// Without per-block RS bits this is also the only error detection, so
// every read pays the four-block fetch — the availability-over-
// performance trade Sec V-E describes.
func (c *Controller) readDegraded(block int64) ([]byte, error) {
	rcfg := c.rank.Config()
	code := rcfg.VLEWCode
	bank, row, chip, slot, first := c.stripedLoc(block)
	c.stats.BlockFetches += stripedBlocksPerVLEW +
		int64((rcfg.Geometry.VLEWCodeBytes+rcfg.BlockBytes()-1)/rcfg.BlockBytes())

	data := c.stripedData(first)
	vcode := c.rank.Chip(chip).ReadCode(bank, row, slot)
	fixed, err := code.Decode(data, vcode[:code.ParityBytes()])
	if err != nil {
		c.stats.Uncorrectable++
		c.tel.DUEs++
		return nil, fmt.Errorf("block %d (degraded): %w", block, ErrUncorrectable)
	}
	if fixed > 0 {
		c.stats.BitsCorrectedVLEW += int64(fixed)
		c.stats.ReadsVLEWFallback++
		// Write the corrected VLEW back: without RS bits, leaving errors
		// in place would let them accumulate past 22 per word.
		c.writeBackStriped(first, data, vcode, bank, row, chip, slot)
	} else {
		c.stats.ReadsClean++
	}
	off := int((block - first)) * rcfg.BlockBytes()
	return data[off : off+rcfg.BlockBytes()], nil
}

// writeBackStriped stores corrected striped data and code on the demand
// path, counting the writes against the unlocked demand stats.
func (c *Controller) writeBackStriped(first int64, data, vcode []byte, bank, row, chip, slot int) {
	c.writeBackStripedRaw(first, data, vcode, bank, row, chip, slot)
	c.stats.BlockWrites += stripedBlocksPerVLEW
}

// writeBackStripedRaw performs the physical striped write-back without
// touching stats, so patrol scrub (which publishes batched counters under
// the stats lock) can share it.
func (c *Controller) writeBackStripedRaw(first int64, data, vcode []byte, bank, row, chip, slot int) {
	rcfg := c.rank.Config()
	n := rcfg.ChipAccessBytes
	for i := int64(0); i < stripedBlocksPerVLEW; i++ {
		loc := c.rank.Locate(first + i)
		blockData := data[int(i)*rcfg.BlockBytes() : (int(i)+1)*rcfg.BlockBytes()]
		for ci := 0; ci < rcfg.DataChips; ci++ {
			dst := ci
			if ci == c.failedChip {
				dst = c.rank.ParityChipIndex()
			}
			c.rank.Chip(dst).WriteDataRaw(loc.Bank, loc.Row, loc.Col, blockData[ci*n:(ci+1)*n])
		}
	}
	holder := c.rank.Chip(chip)
	old := holder.ReadCode(bank, row, slot)
	for i := range old {
		old[i] ^= vcode[i]
	}
	holder.XORCode(bank, row, slot, old)
}

// writeDegraded services a write in degraded mode: the controller reads
// the old block (through the verifying degraded read), stores the new
// data raw, and updates the striped VLEW code with the linear delta.
func (c *Controller) writeDegraded(block int64, newData []byte) error {
	rcfg := c.rank.Config()
	code := rcfg.VLEWCode
	n := rcfg.ChipAccessBytes

	old, hit := c.omv.OMV(block)
	if hit {
		c.stats.OMVHits++
	} else {
		c.stats.OMVMisses++
		var err error
		old, err = c.readDegraded(block)
		if err != nil {
			return fmt.Errorf("core: degraded OMV fetch for block %d: %w", block, err)
		}
	}
	delta := make([]byte, len(newData))
	for i := range delta {
		delta[i] = old[i] ^ newData[i]
	}

	loc := c.rank.Locate(block)
	for ci := 0; ci < rcfg.DataChips; ci++ {
		dst := ci
		if ci == c.failedChip {
			dst = c.rank.ParityChipIndex()
		}
		chip := c.rank.Chip(dst)
		cur := chip.ReadData(loc.Bank, loc.Row, loc.Col, n)
		for i := 0; i < n; i++ {
			cur[i] ^= delta[ci*n+i]
		}
		chip.WriteDataRaw(loc.Bank, loc.Row, loc.Col, cur)
	}

	// Controller-side code update: EncodeDelta at the block's offset
	// within the striped word.
	bank, row, chip, slot, first := c.stripedLoc(block)
	update := code.EncodeDelta(delta, int(block-first)*rcfg.BlockBytes()*8)
	c.rank.Chip(chip).XORCode(bank, row, slot, update)
	c.stats.BlockWrites++
	return nil
}
