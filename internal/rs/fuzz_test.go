package rs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// fuzzCode is the paper's per-block code: RS(72,64) over GF(2^8), 64 data
// bytes plus 8 check bytes from the parity chip.
var fuzzCode = Must(64, 8)

// FuzzDecode asserts the decoder's contract on decode(corrupt(encode(x)))
// for mixed error/erasure patterns, plus the thresholded runtime decoder:
//
//   - 2*errors + erasures <= r: Decode restores the block exactly, with at
//     most errors+erasures corrections, and every non-erasure correction
//     sits on an actually-corrupted position;
//   - beyond the bound: Decode either fails leaving the buffers untouched
//     or returns a valid codeword (bounded-distance miscorrection);
//   - errors-only, DecodeLimited(threshold=2): at most 2 errors restore
//     exactly; 3 or 4 errors must be refused with ErrThreshold and rolled
//     back (distance 9 leaves them at least 5 from any other codeword, so
//     a <=2-correction miscorrection is impossible).
func FuzzDecode(f *testing.F) {
	f.Add([]byte("sixty-four bytes of block data"), byte(0), byte(0), int64(1))
	f.Add(bytes.Repeat([]byte{0x5a}, 64), byte(2), byte(0), int64(2))
	f.Add([]byte{}, byte(0), byte(8), int64(3))
	f.Add(bytes.Repeat([]byte{0xff}, 70), byte(1), byte(6), int64(4))
	f.Add([]byte("chipkill"), byte(4), byte(0), int64(5))
	f.Add([]byte("overload"), byte(5), byte(8), int64(6))

	f.Fuzz(func(t *testing.T, data []byte, nerr, nerase byte, seed int64) {
		code := fuzzCode
		buf := make([]byte, code.K())
		copy(buf, data)
		check := code.Encode(buf)

		e := int(nerr) % 6    // 0..5 forced symbol errors
		s := int(nerase) % 9  // 0..8 declared erasures
		rng := rand.New(rand.NewSource(seed))
		positions := rng.Perm(code.N())
		errPos := positions[:e]
		erasures := append([]int(nil), positions[e:e+s]...)

		d2 := append([]byte(nil), buf...)
		c2 := append([]byte(nil), check...)
		for _, p := range errPos {
			if p < code.K() {
				d2[p] ^= byte(1 + rng.Intn(255))
			} else {
				c2[p-code.K()] ^= byte(1 + rng.Intn(255))
			}
		}
		for _, p := range erasures {
			// Erased symbols hold arbitrary values — possibly the correct
			// one; the decoder must restore them regardless.
			if p < code.K() {
				d2[p] = byte(rng.Intn(256))
			} else {
				c2[p-code.K()] = byte(rng.Intn(256))
			}
		}
		dIn := append([]byte(nil), d2...)
		cIn := append([]byte(nil), c2...)

		corrs, err := code.Decode(d2, c2, erasures)
		if 2*e+s <= code.R() {
			if err != nil {
				t.Fatalf("e=%d s=%d within capability: decode failed: %v", e, s, err)
			}
			if !bytes.Equal(d2, buf) || !bytes.Equal(c2, check) {
				t.Fatalf("e=%d s=%d: decode returned without restoring the block", e, s)
			}
			if len(corrs) > e+s {
				t.Fatalf("e=%d s=%d: %d corrections exceed the corrupted positions", e, s, len(corrs))
			}
			inErr := make(map[int]bool, e)
			for _, p := range errPos {
				inErr[p] = true
			}
			for _, c := range corrs {
				if !c.Erasure && !inErr[c.Pos] {
					t.Fatalf("e=%d s=%d: correction at untouched position %d", e, s, c.Pos)
				}
			}
		} else {
			if err != nil {
				if !bytes.Equal(d2, dIn) || !bytes.Equal(c2, cIn) {
					t.Fatalf("e=%d s=%d: failed decode modified its buffers", e, s)
				}
			} else if !code.Check(d2, c2) {
				t.Fatalf("e=%d s=%d: decode returned success on a non-codeword", e, s)
			}
		}

		if s != 0 {
			return
		}
		// Errors-only: the runtime thresholded decoder.
		d3 := append([]byte(nil), dIn...)
		c3 := append([]byte(nil), cIn...)
		corrs, err = code.DecodeLimited(d3, c3, 2)
		switch {
		case e <= 2:
			if err != nil {
				t.Fatalf("e=%d <= threshold: DecodeLimited failed: %v", e, err)
			}
			if !bytes.Equal(d3, buf) || !bytes.Equal(c3, check) {
				t.Fatalf("e=%d: DecodeLimited returned without restoring the block", e)
			}
			if len(corrs) != e {
				t.Fatalf("e=%d: DecodeLimited applied %d corrections", e, len(corrs))
			}
		case e <= code.MaxErrors():
			if !errors.Is(err, ErrThreshold) {
				t.Fatalf("e=%d: DecodeLimited returned %v, want ErrThreshold", e, err)
			}
			if !bytes.Equal(d3, dIn) || !bytes.Equal(c3, cIn) {
				t.Fatalf("e=%d: refused DecodeLimited modified its buffers", e)
			}
		default:
			// Beyond MaxErrors the word may decode to a different codeword
			// within the threshold; success must at least be a codeword,
			// failure must leave the buffers untouched.
			if err == nil {
				if !code.Check(d3, c3) {
					t.Fatalf("e=%d: DecodeLimited success on a non-codeword", e)
				}
			} else if !bytes.Equal(d3, dIn) || !bytes.Equal(c3, cIn) {
				t.Fatalf("e=%d: failed DecodeLimited modified its buffers", e)
			}
		}
	})
}
