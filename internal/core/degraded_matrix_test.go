package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"chipkillpm/internal/rank"
)

// degradedRank builds a tiny but paper-shaped rank for the matrix cells:
// 1 bank x 4 rows x 512B rows = 256 blocks, 2 VLEWs per row per chip.
func degradedRank(t *testing.T, seed int64) *rank.Rank {
	t.Helper()
	r, err := rank.New(rank.PaperConfig(1, 4, 512, seed))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestDegradedModeMatrix exercises degraded (remapped) mode over the full
// cross product of failed data chip x RS acceptance threshold x RBER band:
// after a chip failure and remap, every committed block must read back
// byte-for-byte, and writes must round-trip, at every cell. The threshold
// axis pins that degraded-mode correctness is independent of the runtime
// RS acceptance knob (degraded reads verify through striped VLEWs, not the
// per-block RS).
func TestDegradedModeMatrix(t *testing.T) {
	bands := []struct {
		name string
		rber float64
	}{
		{"clean", 0},
		{"rber7e-5", 7e-5},
		{"rber2e-4", 2e-4},
	}
	thresholds := []int{0, 2, 4}

	for failedChip := 0; failedChip < 8; failedChip++ {
		for _, th := range thresholds {
			for _, band := range bands {
				failedChip, th, band := failedChip, th, band
				name := fmt.Sprintf("chip%d/threshold%d/%s", failedChip, th, band.name)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					seed := int64(1000 + failedChip*100 + th*10)
					r := degradedRank(t, seed)
					c, err := NewController(r, Config{Threshold: th}, nil)
					if err != nil {
						t.Fatal(err)
					}
					rng := rand.New(rand.NewSource(seed * 7))
					ref := make(map[int64][]byte)
					for b := int64(0); b < r.Blocks(); b++ {
						data := make([]byte, 64)
						rng.Read(data)
						if err := c.WriteBlockInitial(b, data); err != nil {
							t.Fatal(err)
						}
						ref[b] = data
					}

					r.FailChip(failedChip)
					if err := c.EnterDegradedMode(failedChip); err != nil {
						t.Fatalf("EnterDegradedMode(%d): %v", failedChip, err)
					}
					if deg, ci := c.Degraded(); !deg || ci != failedChip {
						t.Fatalf("Degraded() = %v, %d; want true, %d", deg, ci, failedChip)
					}
					if n := r.InjectRetentionErrors(band.rber); band.rber > 0 && n == 0 {
						t.Logf("no bits flipped at rber=%g (rank is small)", band.rber)
					}

					for b := int64(0); b < r.Blocks(); b++ {
						got, err := c.ReadBlock(b)
						if err != nil {
							t.Fatalf("block %d: %v", b, err)
						}
						if !bytes.Equal(got, ref[b]) {
							t.Fatalf("block %d: degraded read mismatch", b)
						}
					}

					// Writes must round-trip through the remapped layout,
					// including blocks whose slice lives on the remapped chip.
					for i := 0; i < 16; i++ {
						b := rng.Int63n(r.Blocks())
						data := make([]byte, 64)
						rng.Read(data)
						if err := c.WriteBlock(b, data); err != nil {
							t.Fatalf("degraded write block %d: %v", b, err)
						}
						ref[b] = data
						got, err := c.ReadBlock(b)
						if err != nil {
							t.Fatalf("degraded read-back block %d: %v", b, err)
						}
						if !bytes.Equal(got, data) {
							t.Fatalf("block %d: degraded write did not round-trip", b)
						}
					}
				})
			}
		}
	}
}

// TestDegradedModeParityCornerMatrix covers the parity-chip-failed corner
// across the same threshold x RBER grid: a failed parity chip cannot be
// remapped (degraded mode sacrifices the parity chip to host the failed
// data chip), so EnterDegradedMode must reject both the parity index and
// any remap attempted while parity is down; recovery instead goes through
// the boot scrub's parity rebuild, after which reads are clean.
func TestDegradedModeParityCornerMatrix(t *testing.T) {
	bands := []struct {
		name string
		rber float64
	}{
		{"clean", 0},
		{"rber7e-5", 7e-5},
		{"rber2e-4", 2e-4},
	}
	for _, th := range []int{0, 2, 4} {
		for _, band := range bands {
			th, band := th, band
			t.Run(fmt.Sprintf("threshold%d/%s", th, band.name), func(t *testing.T) {
				t.Parallel()
				seed := int64(9000 + th*10)
				r := degradedRank(t, seed)
				c, err := NewController(r, Config{Threshold: th}, nil)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(seed * 13))
				ref := make(map[int64][]byte)
				for b := int64(0); b < r.Blocks(); b++ {
					data := make([]byte, 64)
					rng.Read(data)
					if err := c.WriteBlockInitial(b, data); err != nil {
						t.Fatal(err)
					}
					ref[b] = data
				}

				if err := c.EnterDegradedMode(r.ParityChipIndex()); err == nil {
					t.Fatal("EnterDegradedMode accepted the parity chip index")
				}
				r.FailChip(r.ParityChipIndex())
				if err := c.EnterDegradedMode(0); err == nil {
					t.Fatal("EnterDegradedMode remapped with the parity chip down")
				}
				r.InjectRetentionErrors(band.rber)

				rep := c.BootScrub()
				if rep.Unrecoverable {
					t.Fatalf("scrub unrecoverable: %v", rep)
				}
				if len(rep.ChipsRebuilt) != 1 || rep.ChipsRebuilt[0] != r.ParityChipIndex() {
					t.Fatalf("expected parity rebuild, got %v", rep)
				}
				for b := int64(0); b < r.Blocks(); b++ {
					got, err := c.ReadBlock(b)
					if err != nil {
						t.Fatalf("block %d after parity rebuild: %v", b, err)
					}
					if !bytes.Equal(got, ref[b]) {
						t.Fatalf("block %d mismatch after parity rebuild", b)
					}
				}
			})
		}
	}
}
