package engine

import (
	"encoding/binary"
	"sync/atomic"

	"seqstub/internal/rs"
)

var fallbacks atomic.Int64

// readFast is a well-formed seqread reader: stores only to locals and
// parameters, calls only sync/atomic, encoding/binary, builtins,
// conversions, and other seqread functions (including cross-package).
//
//chipkill:seqread
func (e *Engine) readFast(s *shard, block int64, dst []byte) bool {
	s1 := s.seq.Load()
	if s1&1 != 0 {
		fallbacks.Add(1)
		return false
	}
	for i := 0; i+8 <= len(dst); i += 8 {
		binary.LittleEndian.PutUint64(dst[i:], uint64(block))
	}
	if !rs.CheckStub(dst) || !localCheck(dst) {
		return false
	}
	return s.seq.Load() == s1
}

// localCheck is reachable from seqread code, so it is marked too.
//
//chipkill:seqread
func localCheck(b []byte) bool { return len(b) > 0 }

var hits int64

// badReader violates each reader rule in turn.
//
//chipkill:seqread
func (e *Engine) badReader(s *shard, dst []byte) bool {
	hits++                          // want `seqread function badReader stores outside its locals and parameters`
	s.ctrl = nil                    // want `seqread function badReader stores through a field or dereference`
	helper()                        // want `seqread function badReader calls seqstub/internal/engine.helper, which is not marked //chipkill:seqread`
	defer atomic.AddInt64(&hits, 1) // want `seqread function badReader defers`
	go atomic.AddInt64(&hits, 1)    // want `seqread function badReader starts a goroutine`
	var f func()
	f = helper
	f() // want `seqread function badReader makes a dynamic call`
	return true
}

func helper() {}
