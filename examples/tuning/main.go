// Tuning: the design-space exploration behind the paper's two central
// parameter choices.
//
//  1. VLEW length (Fig 4): longer ECC words cost less storage but make
//     runtime fallback fetches bigger — 256B is where total storage
//     matches the bit-error-only baseline's 28%.
//  2. RS acceptance threshold (Sec V-C): accepting more corrections
//     avoids VLEW fallbacks but explodes the silent-data-corruption
//     rate; t=2 is the largest threshold meeting the 1e-17 target.
//
// Run with: go run ./examples/tuning
package main

import (
	"fmt"

	"chipkillpm/internal/bch"
	"chipkillpm/internal/nvram"
	"chipkillpm/internal/reliability"
)

func main() {
	fmt.Println("== VLEW length sweep (RBER 1e-3, UE target 1e-15) ==")
	fmt.Printf("%-10s %-6s %-11s %-12s %-14s %s\n",
		"word", "t", "code bytes", "total cost", "fallback cost", "note")
	for _, d := range []int{64, 128, 256, 512, 1024, 2048, 4096} {
		sc := reliability.VLEWSchemeCost(d, 1e-3)
		if !sc.Feasible {
			continue
		}
		codeBytes := (bch.ParityBitsEstimate(d*8, sc.T) + 7) / 8
		// Fallback fetch: the word's data blocks + code transfer blocks.
		fetchBlocks := d/8 + (codeBytes+7)/8
		note := ""
		if d == 256 {
			note = "<- paper's choice: matches bit-only 28% storage"
		}
		if d == 64 {
			note = "(= per-block; no over-fetch but 44% storage)"
		}
		fmt.Printf("%-10s %-6d %-11d %-12s %-14s %s\n",
			fmt.Sprintf("%dB", d), sc.T, codeBytes,
			fmt.Sprintf("%.1f%%", 100*sc.Cost),
			fmt.Sprintf("%d blocks", fetchBlocks), note)
	}

	fmt.Println()
	fmt.Println("== RS acceptance threshold sweep (RBER 2e-4) ==")
	fmt.Printf("%-10s %-12s %-10s %-14s %-16s %s\n",
		"threshold", "SDC rate", "meets", "fallback", "read overhead", "note")
	for t := 0; t <= 4; t++ {
		m := reliability.RSMiscorrection{K: 64, R: 8, T: t, RBER: 2e-4}
		sdc := m.SDCRate()
		fb := reliability.ProposalFallbackRate(64, 8, t, 2e-4)
		meets := "no"
		if sdc <= reliability.TargetSDC {
			meets = "yes"
		}
		note := ""
		switch t {
		case 2:
			note = "<- paper's choice: last threshold under 1e-17"
		case 4:
			note = "(full RS capability: 3.2e-11 SDC, 3,000,000x target)"
		}
		fmt.Printf("%-10d %-12s %-10s %-14s %-16s %s\n",
			t, fmt.Sprintf("%.1e", sdc), meets,
			fmt.Sprintf("%.2e", fb),
			fmt.Sprintf("%.3f%%", 100*fb*37), note)
	}

	fmt.Println()
	fmt.Println("== Refresh interval vs required VLEW strength (3-bit PCM) ==")
	fmt.Printf("%-14s %-12s %-6s %-12s\n", "unrefreshed", "RBER", "t", "VLEW cost")
	for _, secs := range []float64{3600, 86400, 604800, 2592000} {
		rber := nvram.PCM3.RBER(secs)
		sc := reliability.VLEWSchemeCost(256, rber)
		if !sc.Feasible {
			continue
		}
		fmt.Printf("%-14s %-12s %-6d %-12s\n",
			nvram.FormatInterval(secs), fmt.Sprintf("%.1e", rber), sc.T,
			fmt.Sprintf("%.1f%%", 100*sc.Cost))
	}
}
