package reliability

// Bandwidth-overhead models behind Figure 5 and Sections IV-A/B and V-C.

// VLEWGeometry describes the proposal's VLEW layout: per-chip ECC words of
// DataBytes data with CodeBytes of BCH code bits, over chips that
// contribute ChipAccessBytes per 64B block access.
type VLEWGeometry struct {
	DataBytes       int // 256 in the paper
	CodeBytes       int // 33 in the paper
	ChipAccessBytes int // 8 in the paper
}

// PaperVLEW is the proposal's geometry (Sec V-A).
var PaperVLEW = VLEWGeometry{DataBytes: 256, CodeBytes: 33, ChipAccessBytes: 8}

// BlocksSpanned returns how many 64B blocks one VLEW's data spans (32).
func (g VLEWGeometry) BlocksSpanned() int { return g.DataBytes / g.ChipAccessBytes }

// CodeBlocks returns how many block transfers the code bits require (~4).
func (g VLEWGeometry) CodeBlocks() int {
	return (g.CodeBytes + g.ChipAccessBytes - 1) / g.ChipAccessBytes
}

// ExtraBlocksPerCorrection returns the additional blocks fetched to correct
// one block via the VLEW: the other 31 data blocks plus the code blocks
// (35 in the paper; 36 including the requested block's re-read bookkeeping
// used in Sec V-C's 0.018% * 36 figure).
func (g VLEWGeometry) ExtraBlocksPerCorrection() int {
	return g.BlocksSpanned() + g.CodeBlocks() - 1
}

// NaiveVLEWReadOverhead returns the read-bandwidth overhead of using VLEWs
// alone at runtime (Fig 5 top): every access containing a bit error
// (probability over accessBits) must fetch ExtraBlocksPerCorrection()
// additional blocks. At 7e-5 this is ~140%; at 2e-4 ~360%.
func NaiveVLEWReadOverhead(g VLEWGeometry, rber float64, accessBits int) float64 {
	frac := FracAccessesWithErrors(accessBits, rber)
	return frac * float64(g.ExtraBlocksPerCorrection())
}

// NaiveVLEWWriteOverhead returns the write-bandwidth overhead of updating
// VLEW code bits from the processor (Fig 5 bottom): four overhead writes
// for the ~33B of code bits (400%), or 200% when the chip encodes
// internally but the processor must still read and send the old data.
func NaiveVLEWWriteOverhead(g VLEWGeometry, inChipEncoder bool) float64 {
	if inChipEncoder {
		// Read old block + send it back: two extra transfers per write.
		return 2.0
	}
	return float64(g.CodeBlocks())
}

// ProposalFallbackRate returns the fraction of reads that exceed the RS
// acceptance threshold and must fall back to VLEW correction: the
// probability of more than threshold bad bytes among the 72 read bytes.
// At RBER 2e-4 and threshold 2 this is ~1.8e-4 (Sec V-C's 0.018%).
func ProposalFallbackRate(kBytes, rBytes, threshold int, rber float64) float64 {
	pByte := ByteErrorRate(rber, 8)
	return BinomTail(kBytes+rBytes, threshold+1, pByte)
}

// ProposalReadOverhead returns the proposal's runtime read-bandwidth
// overhead: fallback rate times the 36-block VLEW fetch (Sec V-C: ~0.6%).
func ProposalReadOverhead(g VLEWGeometry, kBytes, rBytes, threshold int, rber float64) float64 {
	return ProposalFallbackRate(kBytes, rBytes, threshold, rber) *
		float64(g.ExtraBlocksPerCorrection()+1)
}

// MultiErrorRSRate returns the fraction of reads needing multi-byte RS
// correction (two or more bad bytes): ~1/200 at 2e-4 (Sec V-E).
func MultiErrorRSRate(kBytes, rBytes int, rber float64) float64 {
	pByte := ByteErrorRate(rber, 8)
	return BinomTail(kBytes+rBytes, 2, pByte)
}
