module shardstub

go 1.22
