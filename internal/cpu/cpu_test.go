package cpu

import (
	"math"
	"testing"

	"chipkillpm/internal/config"
)

// scriptedMem returns fixed latencies and records issue times.
type scriptedMem struct {
	loadLat  float64
	storeLat float64
	clwbLat  float64
	loads    []float64 // issue times
}

func (m *scriptedMem) Load(core int, addr uint64, now float64) float64 {
	m.loads = append(m.loads, now)
	return now + m.loadLat
}
func (m *scriptedMem) Store(core int, addr uint64, now float64) float64 {
	return now + m.storeLat
}
func (m *scriptedMem) Clwb(core int, addr uint64, now float64) float64 {
	return now + m.clwbLat
}

func newCore(mem MemorySystem) *Core {
	return NewCore(0, config.TableI().CPU, mem)
}

func TestComputeIPCFullWidth(t *testing.T) {
	c := newCore(&scriptedMem{})
	c.Step(Op{Kind: Compute, N: 4000})
	// 4-wide at 3 GHz: 4000 instructions in 1000 cycles.
	if ipc := c.IPC(); math.Abs(ipc-4) > 0.1 {
		t.Errorf("compute IPC=%.2f, want ~4", ipc)
	}
	if c.Instructions() != 4000 {
		t.Errorf("instructions=%d", c.Instructions())
	}
}

func TestIndependentLoadsOverlap(t *testing.T) {
	// Independent loads issue back-to-back: total time for N loads of
	// latency L must be far below N*L.
	mem := &scriptedMem{loadLat: 300}
	c := newCore(mem)
	for i := 0; i < 10; i++ {
		c.Step(Op{Kind: Load, Addr: uint64(i * 64)})
	}
	// All issue within a handful of ns of each other.
	spread := mem.loads[len(mem.loads)-1] - mem.loads[0]
	if spread > 50 {
		t.Errorf("independent loads spread over %.1f ns", spread)
	}
}

func TestDependentLoadsSerialise(t *testing.T) {
	mem := &scriptedMem{loadLat: 300}
	c := newCore(mem)
	for i := 0; i < 5; i++ {
		c.Step(Op{Kind: Load, Addr: uint64(i * 64), Dep: true})
	}
	// Each issue must wait for the previous load's completion.
	for i := 1; i < len(mem.loads); i++ {
		if gap := mem.loads[i] - mem.loads[i-1]; gap < 299 {
			t.Fatalf("dependent load %d issued %.1f ns after predecessor", i, gap)
		}
	}
}

func TestROBLimitsRunahead(t *testing.T) {
	// With one outstanding long load, fetch may run at most ROBEntries
	// instructions ahead before stalling on the load's retirement.
	mem := &scriptedMem{loadLat: 10000}
	c := newCore(mem)
	c.Step(Op{Kind: Load, Addr: 0})
	// 200 compute instructions exceed the 168-entry ROB.
	c.Step(Op{Kind: Compute, N: 200})
	if c.Now() < 10000 {
		t.Errorf("fetch time %.1f did not stall on the ROB-full load", c.Now())
	}
	// In contrast, 100 instructions fit alongside the load.
	mem2 := &scriptedMem{loadLat: 10000}
	c2 := newCore(mem2)
	c2.Step(Op{Kind: Load, Addr: 0})
	c2.Step(Op{Kind: Compute, N: 100})
	if c2.Now() > 1000 {
		t.Errorf("fetch stalled too early: %.1f", c2.Now())
	}
}

func TestStoresDoNotBlockRetirement(t *testing.T) {
	mem := &scriptedMem{storeLat: 5000}
	c := newCore(mem)
	for i := 0; i < 10; i++ {
		c.Step(Op{Kind: Store, Addr: uint64(i * 64)})
	}
	c.Step(Op{Kind: Compute, N: 40})
	// Stores are buffered; 10 stores + 40 compute take ~50/4 cycles.
	if c.Now() > 100 {
		t.Errorf("stores blocked the pipeline: %.1f ns", c.Now())
	}
}

func TestClwbBlocksOnAcceptance(t *testing.T) {
	mem := &scriptedMem{clwbLat: 2000}
	c := newCore(mem)
	c.Step(Op{Kind: Clwb, Addr: 0})
	if c.Now() < 2000 {
		t.Errorf("clwb did not wait for acceptance: %.1f", c.Now())
	}
	loads, stores, cleans := c.Counts()
	if loads != 0 || stores != 0 || cleans != 1 {
		t.Errorf("counts: %d %d %d", loads, stores, cleans)
	}
}

func TestComputeZeroN(t *testing.T) {
	c := newCore(&scriptedMem{})
	c.Step(Op{Kind: Compute, N: 0})
	if c.Instructions() != 1 {
		t.Errorf("N=0 compute retired %d instructions, want 1", c.Instructions())
	}
}

func TestIPCZeroBeforeWork(t *testing.T) {
	c := newCore(&scriptedMem{})
	if c.IPC() != 0 {
		t.Error("IPC nonzero before any work")
	}
}

func TestMemoryBoundIPC(t *testing.T) {
	// Pure dependent-load stream at 300 ns per load: IPC ~= 1 per 900
	// cycles.
	mem := &scriptedMem{loadLat: 300}
	c := newCore(mem)
	for i := 0; i < 100; i++ {
		c.Step(Op{Kind: Load, Dep: true})
	}
	ipc := c.IPC()
	want := 1.0 / (300 * 3)
	if math.Abs(ipc-want)/want > 0.2 {
		t.Errorf("memory-bound IPC=%.5f, want ~%.5f", ipc, want)
	}
}
