// Package fleet is a miniature of the real fleet's locking shape: band
// mutexes below the engine locks, a pool mutex above them, and a
// campaign hook registered through a one-hop setter.
package fleet

import (
	"sync"

	"lockstub/internal/engine"
)

type bandState struct {
	//chipkill:lock fleet.band level=10
	mu sync.Mutex
}

// Fleet owns the bands, the pool lock, and one engine.
type Fleet struct {
	//chipkill:lock fleet.pool level=40
	poolMu sync.Mutex
	bands  []bandState
	eng    *engine.Engine
	hook   func()
}

// plainBox lost its lock mark; the coverage rule must flag it.
type plainBox struct {
	mu sync.Mutex // want `no //chipkill:lock annotation`
}

// good acquires in declared order: band (10) then pool (40).
func (f *Fleet) good(i int) {
	bs := &f.bands[i]
	bs.mu.Lock()
	f.poolMu.Lock()
	f.poolMu.Unlock()
	bs.mu.Unlock()
}

// bad inverts the order: pool (40) then band (10).
func (f *Fleet) bad(i int) {
	f.poolMu.Lock()
	bs := &f.bands[i]
	bs.mu.Lock() // want `lock levels must strictly increase`
	bs.mu.Unlock()
	f.poolMu.Unlock()
}

// lockBand/unlockBand are plain helpers; the transitive check sees
// through them.
func (f *Fleet) lockBand(i int) { f.bands[i].mu.Lock() }

func (f *Fleet) unlockBand(i int) { f.bands[i].mu.Unlock() }

// badTransitive inverts the order through a helper.
func (f *Fleet) badTransitive(i int) {
	f.poolMu.Lock()
	f.lockBand(i) // want `may acquire "fleet.band"`
	f.unlockBand(i)
	f.poolMu.Unlock()
}

// lockAllBands multi-instance-holds a lock that is not declared ranked.
func (f *Fleet) lockAllBands() {
	for i := range f.bands {
		f.bands[i].mu.Lock() // want `not declared ranked`
	}
	for i := range f.bands {
		f.bands[i].mu.Unlock()
	}
}

// nestedDirect quiesces inside a quiesce.
func (f *Fleet) nestedDirect() {
	f.eng.Quiesce(func() {
		f.eng.Quiesce(func() {}) // want `nested "engine.rank"`
	})
}

// SetHook stores a campaign hook; literal arguments at its call sites
// become the hook field's targets.
func (f *Fleet) SetHook(fn func()) { f.hook = fn }

// installKiller registers a hook that quiesces — fine at registration
// time, fatal if ever invoked from inside a quiescent section.
func (f *Fleet) installKiller() {
	f.SetHook(func() { f.eng.Quiesce(func() {}) })
}

// insideQuiesce runs within the rank's quiescent section and fires the
// hook: a transitive nested quiesce.
//
//chipkill:holds engine.rank
func (f *Fleet) insideQuiesce() {
	f.hook() // want `nested "engine.rank"`
}

// callsUnlocked violates insideQuiesce's holds contract.
func (f *Fleet) callsUnlocked() {
	f.insideQuiesce() // want `requires lock "engine.rank" held`
}

// callsLocked satisfies it through the scoped extent.
func (f *Fleet) callsLocked() {
	f.eng.Quiesce(func() { f.insideQuiesce() })
}

// allowedInversion demonstrates the reasoned escape hatch.
func (f *Fleet) allowedInversion(i int) {
	f.poolMu.Lock()
	//chipkill:allow lockorder fixture demonstrates a reasoned exception
	f.bands[i].mu.Lock()
	f.bands[i].mu.Unlock()
	f.poolMu.Unlock()
}
