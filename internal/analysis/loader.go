package analysis

import (
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// The loader resolves packages with `go list -deps -test -export`: every
// dependency (standard library included) is imported from the compiler's
// export data in the build cache, and only the packages under analysis
// are parsed and type-checked from source. This keeps the checker
// dependency-free — no golang.org/x/tools, no network — while still
// giving analyzers full go/types information, including in-package test
// files via the "pkg [pkg.test]" test variants.

// listPackage mirrors the `go list -json` fields the loader consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	ForTest    string
	Incomplete bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
	Module     *struct{ Path string }
}

// canonical strips the test-variant suffix: "p [p.test]" -> "p".
func (p *listPackage) canonical() string {
	if i := strings.Index(p.ImportPath, " ["); i >= 0 {
		return p.ImportPath[:i]
	}
	return p.ImportPath
}

// load runs `go list` in dir and type-checks every non-standard package
// in dependency order. Target packages (those matched by the patterns)
// get IsTarget; in-module dependencies are loaded too so allocation
// facts exist for them. When both a package and its test variant are
// listed, only the variant is kept — it is a strict superset.
func load(fset *token.FileSet, dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-deps", "-test", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly,ForTest,Incomplete,ImportMap,Error,Module",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr strings.Builder
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	dec := json.NewDecoder(strings.NewReader(string(out)))
	byPath := map[string]*listPackage{}
	var order []*listPackage
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		byPath[p.ImportPath] = p
		order = append(order, p)
	}

	// Index which canonical paths have a test variant, so the plain
	// compilation can be skipped in favour of the superset.
	hasVariant := map[string]bool{}
	for _, p := range order {
		if p.ForTest != "" && p.ForTest == p.canonical() {
			hasVariant[p.ForTest] = true
		}
	}

	// One shared importer serves every package without an ImportMap
	// (its cache then amortises export-data decoding); packages with an
	// ImportMap (external test packages) get a private importer so the
	// remapped paths cannot poison the shared cache.
	sharedImp := importer.ForCompiler(fset, "gc", exportLookup(byPath, nil))

	var pkgs []*Package
	var loadErrs []string
	for _, p := range order {
		if p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		if p.Name == "main" && strings.HasSuffix(p.ImportPath, ".test") {
			continue // synthesised test binary main
		}
		if p.ForTest == "" && hasVariant[p.ImportPath] {
			continue // superseded by the test variant
		}
		if p.Error != nil {
			loadErrs = append(loadErrs, fmt.Sprintf("%s: %s", p.ImportPath, p.Error.Err))
			continue
		}
		var files []*ast.File
		parseFailed := false
		for _, name := range p.GoFiles {
			fn := name
			if !filepath.IsAbs(fn) {
				fn = filepath.Join(p.Dir, name)
			}
			af, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				loadErrs = append(loadErrs, err.Error())
				parseFailed = true
				continue
			}
			files = append(files, af)
		}
		if parseFailed {
			continue
		}
		imp := sharedImp
		if len(p.ImportMap) > 0 {
			imp = importer.ForCompiler(fset, "gc", exportLookup(byPath, p.ImportMap))
		}
		var typeErrs []string
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				typeErrs = append(typeErrs, err.Error())
			},
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		tpkg, _ := conf.Check(p.canonical(), fset, files, info)
		if len(typeErrs) > 0 {
			loadErrs = append(loadErrs, typeErrs...)
			continue
		}
		pkgs = append(pkgs, &Package{
			PkgPath:       p.canonical(),
			Name:          p.Name,
			Dir:           p.Dir,
			IsTarget:      !p.DepOnly,
			IsTestVariant: p.ForTest != "",
			Files:         files,
			Types:         tpkg,
			Info:          info,
		})
	}
	if len(loadErrs) > 0 {
		return nil, fmt.Errorf("analysis: load errors:\n  %s", strings.Join(loadErrs, "\n  "))
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("analysis: no packages matched %v in %s", patterns, dir)
	}
	return pkgs, nil
}

// exportLookup resolves import paths to export-data readers, applying a
// package's ImportMap first (test variants remap their package under
// test to the "[pkg.test]" compilation).
func exportLookup(byPath map[string]*listPackage, importMap map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		if m, ok := importMap[path]; ok {
			path = m
		}
		dep, ok := byPath[path]
		if !ok {
			return nil, fmt.Errorf("analysis: import %q not in go list output", path)
		}
		if dep.Export == "" {
			return nil, fmt.Errorf("analysis: no export data for %q (does it compile?)", path)
		}
		return os.Open(dep.Export)
	}
}
