package gf

import (
	"fmt"
	"strings"
)

// Poly is a polynomial with coefficients in a Field, stored little-endian:
// p[i] is the coefficient of x^i. The zero polynomial is an empty slice.
// Poly methods take the field explicitly so that Poly stays a plain slice.
type Poly []Elem

// PolyDeg returns the degree of p, or -1 for the zero polynomial.
func PolyDeg(p Poly) int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != 0 {
			return i
		}
	}
	return -1
}

// PolyTrim returns p with trailing zero coefficients removed.
func PolyTrim(p Poly) Poly { return p[:PolyDeg(p)+1] }

// PolyClone returns an independent copy of p.
func PolyClone(p Poly) Poly {
	q := make(Poly, len(p))
	copy(q, p)
	return q
}

// PolyAdd returns p + q over f.
func (f *Field) PolyAdd(p, q Poly) Poly {
	r := make(Poly, max(len(p), len(q)))
	copy(r, p)
	for i, c := range q {
		r[i] ^= c
	}
	return PolyTrim(r)
}

// PolyScale returns c * p over f.
func (f *Field) PolyScale(p Poly, c Elem) Poly {
	if c == 0 {
		return nil
	}
	r := make(Poly, len(p))
	for i, a := range p {
		r[i] = f.Mul(a, c)
	}
	return PolyTrim(r)
}

// PolyMul returns p * q over f.
func (f *Field) PolyMul(p, q Poly) Poly {
	dp, dq := PolyDeg(p), PolyDeg(q)
	if dp < 0 || dq < 0 {
		return nil
	}
	r := make(Poly, dp+dq+1)
	for i, a := range p[:dp+1] {
		if a == 0 {
			continue
		}
		la := f.log[a]
		for j, b := range q[:dq+1] {
			if b == 0 {
				continue
			}
			r[i+j] ^= f.exp[la+f.log[b]]
		}
	}
	return PolyTrim(r)
}

// PolyMulXk returns p * x^k.
func (f *Field) PolyMulXk(p Poly, k int) Poly {
	d := PolyDeg(p)
	if d < 0 {
		return nil
	}
	r := make(Poly, d+1+k)
	copy(r[k:], p[:d+1])
	return r
}

// PolyDivMod returns the quotient and remainder of p / d over f. It panics
// if d is the zero polynomial.
func (f *Field) PolyDivMod(p, d Poly) (quo, rem Poly) {
	dd := PolyDeg(d)
	if dd < 0 {
		panic("gf: Poly division by zero polynomial")
	}
	rem = PolyClone(p)
	lead := f.Inv(d[dd])
	for {
		rd := PolyDeg(rem)
		if rd < dd {
			return PolyTrim(quo), PolyTrim(rem)
		}
		c := f.Mul(rem[rd], lead)
		shift := rd - dd
		if quo == nil {
			quo = make(Poly, shift+1)
		}
		quo[shift] = c
		for i := 0; i <= dd; i++ {
			rem[i+shift] ^= f.Mul(d[i], c)
		}
	}
}

// PolyEval evaluates p at x using Horner's rule.
func (f *Field) PolyEval(p Poly, x Elem) Elem {
	var acc Elem
	for i := len(p) - 1; i >= 0; i-- {
		acc = f.Mul(acc, x) ^ p[i]
	}
	return acc
}

// PolyDeriv returns the formal derivative of p. In characteristic 2 the
// even-power terms vanish and odd powers keep their coefficients:
// d/dx sum(c_i x^i) = sum over odd i of c_i x^(i-1).
func (f *Field) PolyDeriv(p Poly) Poly {
	if len(p) <= 1 {
		return nil
	}
	r := make(Poly, len(p)-1)
	for i := 1; i < len(p); i += 2 {
		r[i-1] = p[i]
	}
	return PolyTrim(r)
}

// PolyString renders p with explicit coefficients, highest degree first.
func PolyString(p Poly) string {
	d := PolyDeg(p)
	if d < 0 {
		return "0"
	}
	var terms []string
	for i := d; i >= 0; i-- {
		if p[i] == 0 {
			continue
		}
		switch i {
		case 0:
			terms = append(terms, fmt.Sprintf("%d", p[i]))
		case 1:
			terms = append(terms, fmt.Sprintf("%d·x", p[i]))
		default:
			terms = append(terms, fmt.Sprintf("%d·x^%d", p[i], i))
		}
	}
	return strings.Join(terms, " + ")
}
