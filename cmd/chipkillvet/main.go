// Command chipkillvet runs the repository's contract analyzers
// (internal/analysis) over a set of packages:
//
//	noalloc    — //chipkill:noalloc functions must not allocate,
//	             transitively through statically resolvable callees
//	shardlock  — rank-wide maintenance only from //chipkill:rankwide
//	             functions or (*engine.Engine).Quiesce sections
//	sentinel   — errors.Is over ==/string matching; no dropped
//	             persistence-critical errors
//	bankaccess — quiescence-class nvram.Chip mutations only from
//	             quiescent contexts
//	seqlock    — seqlock-covered controller mutations only inside shard
//	             writer sections; //chipkill:seqread functions stay pure
//
// Usage:
//
//	go run ./cmd/chipkillvet [-C dir] [packages]
//
// Packages default to ./... . Exit status is 0 when clean, 1 when any
// analyzer reported a finding, 2 when loading or type-checking failed.
// Intentional exceptions are annotated in the source with
// //chipkill:allow <analyzer> <reason> (see internal/analysis).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"chipkillpm/internal/analysis"
)

func main() {
	dir := flag.String("C", ".", "directory to resolve packages in")
	list := flag.Bool("list", false, "print the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: chipkillvet [-C dir] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	suite := analysis.NewSuite(analyzers...)
	diags, err := suite.Run(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chipkillvet: %v\n", err)
		os.Exit(2)
	}

	base, err := filepath.Abs(*dir)
	if err != nil {
		base = ""
	}
	for _, d := range diags {
		name := d.Pos.Filename
		if base != "" {
			if rel, err := filepath.Rel(base, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", name, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "chipkillvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
