// Package guard stubs the persistence-critical surface of the real
// internal/guard for the sentinel analyzer's dropped-error checks.
package guard

type Journal struct{}

func (j *Journal) AppendStart(epoch uint64) error { return nil }
func (j *Journal) AppendBand(band int64) error    { return nil }
func (j *Journal) AppendDone(epoch uint64) error  { return nil }

type Supervisor struct{}

func (s *Supervisor) Tick() error { return nil }

// Health is not persistence-critical; dropping it is fine.
func (s *Supervisor) Health() int { return 0 }
