package nvram

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"chipkillpm/internal/bch"
)

var testGeom = Geometry{
	Banks: 2, RowsPerBank: 8, RowDataBytes: 1024,
	VLEWDataBytes: 256, VLEWCodeBytes: 33,
}

func testEncoder(t testing.TB) *bch.Code {
	t.Helper()
	return bch.Must(12, 2048, 22)
}

func newTestChip(t testing.TB) *Chip {
	t.Helper()
	c, err := NewChip(testGeom, testEncoder(t), 42)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGeometry(t *testing.T) {
	g := testGeom
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.VLEWsPerRow() != 4 {
		t.Errorf("VLEWsPerRow=%d, want 4", g.VLEWsPerRow())
	}
	if g.RowTotalBytes() != 1024+4*33 {
		t.Errorf("RowTotalBytes=%d", g.RowTotalBytes())
	}
	if g.DataBytes() != 2*8*1024 {
		t.Errorf("DataBytes=%d", g.DataBytes())
	}
	if g.EURRegisters() != 2*4 {
		t.Errorf("EURRegisters=%d", g.EURRegisters())
	}
}

func TestGeometryValidation(t *testing.T) {
	bad := []Geometry{
		{Banks: 0, RowsPerBank: 1, RowDataBytes: 256, VLEWDataBytes: 256},
		{Banks: 1, RowsPerBank: 1, RowDataBytes: 300, VLEWDataBytes: 256},
		{Banks: 1, RowsPerBank: 1, RowDataBytes: 256, VLEWDataBytes: 0},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: invalid geometry accepted", i)
		}
	}
}

func TestNewChipEncoderMismatch(t *testing.T) {
	enc := bch.Must(10, 512, 4) // 64B encoder vs 256B VLEW geometry
	if _, err := NewChip(testGeom, enc, 1); err == nil {
		t.Error("encoder/geometry mismatch accepted")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	c := newTestChip(t)
	data := make([]byte, 64)
	rand.New(rand.NewSource(1)).Read(data)
	c.WriteData(1, 3, 128, data)
	got := c.ReadData(1, 3, 128, 64)
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	// Other locations untouched.
	if !bytes.Equal(c.ReadData(1, 3, 0, 64), make([]byte, 64)) {
		t.Fatal("neighbouring bytes modified")
	}
}

func TestWriteXORRecoversNewData(t *testing.T) {
	// The chip receives old XOR new and must store new (Fig 11).
	c := newTestChip(t)
	old := make([]byte, 8)
	newV := make([]byte, 8)
	rng := rand.New(rand.NewSource(2))
	rng.Read(old)
	rng.Read(newV)
	c.WriteData(0, 0, 0, old)
	delta := make([]byte, 8)
	for i := range delta {
		delta[i] = old[i] ^ newV[i]
	}
	c.WriteXOR(0, 0, 0, delta)
	if !bytes.Equal(c.ReadData(0, 0, 0, 8), newV) {
		t.Fatal("XOR write did not recover new data")
	}
}

// vlewConsistent checks that a VLEW's stored code bits decode cleanly
// against its stored data.
func vlewConsistent(t *testing.T, c *Chip, enc *bch.Code, bank, row, v int) bool {
	t.Helper()
	data, code := c.ReadVLEW(bank, row, v)
	return enc.CheckClean(data, code[:enc.ParityBytes()])
}

func TestEURCoalescingMaintainsCodeConsistency(t *testing.T) {
	c := newTestChip(t)
	enc := testEncoder(t)
	rng := rand.New(rand.NewSource(3))

	// Many XOR writes spread across the whole row (all 4 VLEWs): the EUR
	// should coalesce them into one code write per VLEW at row close.
	for w := 0; w < 32; w++ {
		delta := make([]byte, 8)
		rng.Read(delta)
		c.WriteXOR(0, 2, 32*w, delta)
	}
	if c.Stats().VLEWCodeWrites != 0 {
		t.Fatalf("code writes before row close: %d", c.Stats().VLEWCodeWrites)
	}
	c.CloseRow(0)
	st := c.Stats()
	if st.VLEWCodeWrites != 4 {
		t.Errorf("VLEWCodeWrites=%d, want 4 (one per touched VLEW)", st.VLEWCodeWrites)
	}
	if got := st.CFactor(); math.Abs(got-4.0/32.0) > 1e-9 {
		t.Errorf("CFactor=%.3f, want 0.125", got)
	}
	for v := 0; v < 4; v++ {
		if !vlewConsistent(t, c, enc, 0, 2, v) {
			t.Errorf("VLEW %d code inconsistent after drain", v)
		}
	}
}

func TestImplicitRowCloseDrainsEUR(t *testing.T) {
	c := newTestChip(t)
	enc := testEncoder(t)
	rng := rand.New(rand.NewSource(4))
	delta := make([]byte, 8)
	rng.Read(delta)
	c.WriteXOR(0, 1, 0, delta)
	// Writing a different row in the same bank must close row 1 first.
	rng.Read(delta)
	c.WriteXOR(0, 5, 0, delta)
	if !vlewConsistent(t, c, enc, 0, 1, 0) {
		t.Error("row 1 VLEW inconsistent after implicit close")
	}
	if c.Stats().RowActivations != 2 || c.Stats().RowCloses != 1 {
		t.Errorf("activations=%d closes=%d", c.Stats().RowActivations, c.Stats().RowCloses)
	}
}

func TestReadVLEWFlushesPendingEUR(t *testing.T) {
	c := newTestChip(t)
	enc := testEncoder(t)
	delta := make([]byte, 8)
	delta[0] = 0xFF
	c.WriteXOR(1, 0, 0, delta)
	// Row still open with a pending EUR register; the read must still
	// return a consistent (data, code) pair.
	if !vlewConsistent(t, c, enc, 1, 0, 0) {
		t.Error("ReadVLEW returned stale code bits")
	}
}

func TestConventionalWriteUpdatesCodeImmediately(t *testing.T) {
	c := newTestChip(t)
	enc := testEncoder(t)
	data := make([]byte, 16)
	rand.New(rand.NewSource(5)).Read(data)
	c.WriteData(0, 0, 40, data)
	if !vlewConsistent(t, c, enc, 0, 0, 0) {
		t.Error("code bits stale after conventional write")
	}
}

func TestWriteSpanningVLEWs(t *testing.T) {
	c := newTestChip(t)
	enc := testEncoder(t)
	data := make([]byte, 64)
	rand.New(rand.NewSource(6)).Read(data)
	// Offset 224..288 spans VLEW 0 and VLEW 1.
	c.WriteData(0, 0, 224, data)
	if !vlewConsistent(t, c, enc, 0, 0, 0) || !vlewConsistent(t, c, enc, 0, 0, 1) {
		t.Error("spanning write left inconsistent code bits")
	}
	if !bytes.Equal(c.ReadData(0, 0, 224, 64), data) {
		t.Error("spanning write data mismatch")
	}
}

func TestInjectRetentionErrorsAndScrubability(t *testing.T) {
	c := newTestChip(t)
	enc := testEncoder(t)
	rng := rand.New(rand.NewSource(7))
	// Fill with data.
	for row := 0; row < testGeom.RowsPerBank; row++ {
		buf := make([]byte, testGeom.RowDataBytes)
		rng.Read(buf)
		c.WriteData(0, row, 0, buf)
	}
	flips := c.InjectRetentionErrors(1e-3)
	if flips == 0 {
		t.Fatal("no errors injected at 1e-3")
	}
	totalBits := float64(testGeom.RowTotalBytes()) * float64(testGeom.RowsPerBank*testGeom.Banks) * 8
	if f := float64(flips); f < 0.3*totalBits*1e-3 || f > 3*totalBits*1e-3 {
		t.Errorf("flips=%d far from expectation %.0f", flips, totalBits*1e-3)
	}
	// Every VLEW must decode back to clean with the 22-EC code
	// (expected errors per 2312-bit word at 1e-3 is ~2.3).
	for row := 0; row < testGeom.RowsPerBank; row++ {
		for v := 0; v < testGeom.VLEWsPerRow(); v++ {
			data, code := c.ReadVLEW(0, row, v)
			if _, err := enc.Decode(data, code[:enc.ParityBytes()]); err != nil {
				t.Fatalf("row %d vlew %d: scrub decode failed: %v", row, v, err)
			}
		}
	}
}

func TestFailedChipBehaviour(t *testing.T) {
	c := newTestChip(t)
	data := make([]byte, 8)
	for i := range data {
		data[i] = 0xAA
	}
	c.WriteData(0, 0, 0, data)
	c.Fail()
	if c.Healthy() {
		t.Error("failed chip reports healthy")
	}
	// Reads return garbage (cannot equal the stored pattern for 8 bytes
	// except with probability 2^-64; check twice to be safe).
	g1 := c.ReadData(0, 0, 0, 8)
	g2 := c.ReadData(0, 0, 0, 8)
	if bytes.Equal(g1, data) && bytes.Equal(g2, data) {
		t.Error("failed chip returned stored data")
	}
	// Writes are dropped.
	c.WriteData(0, 0, 0, data)
	c.Repair()
	if !c.Healthy() {
		t.Error("repair did not restore health")
	}
	if !bytes.Equal(c.ReadData(0, 0, 0, 8), make([]byte, 8)) {
		t.Error("repair did not zero contents")
	}
}

func TestRowWearAccounting(t *testing.T) {
	c := newTestChip(t)
	for i := 0; i < 5; i++ {
		c.WriteXOR(0, 3, 0, []byte{1})
	}
	if w := c.RowWear(0, 3); w != 5 {
		t.Errorf("RowWear=%d, want 5", w)
	}
	if w := c.RowWear(0, 4); w != 0 {
		t.Errorf("untouched RowWear=%d", w)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	c := newTestChip(t)
	for name, fn := range map[string]func(){
		"bank":    func() { c.ReadData(9, 0, 0, 1) },
		"row":     func() { c.ReadData(0, 99, 0, 1) },
		"overrun": func() { c.ReadData(0, 0, 1020, 8) },
		"vlew":    func() { c.ReadVLEW(0, 0, 9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTechRBERCurves(t *testing.T) {
	// Paper anchor points (Fig 1 and Sec II-B).
	cases := []struct {
		tech Tech
		secs float64
		want float64
	}{
		{ReRAM, 1, 7e-5},
		{ReRAM, Year, 1e-3},
		{PCM3, Hour, 2e-4},
		{PCM3, Week, 1e-3},
		{PCM3, 1, 7e-5},
	}
	for _, c := range cases {
		got := c.tech.RBER(c.secs)
		if math.Abs(got-c.want) > 0.05*c.want {
			t.Errorf("%s @ %s: RBER=%.3g, want %.3g", c.tech.Name, FormatInterval(c.secs), got, c.want)
		}
	}
}

func TestRBERMonotonicInTime(t *testing.T) {
	for _, tech := range []Tech{ReRAM, PCM3, PCM2, FlashMLC} {
		prev := 0.0
		for _, s := range []float64{1, 60, Hour, Day, Week, Month, Year} {
			r := tech.RBER(s)
			if r < prev {
				t.Errorf("%s: RBER decreased at %s", tech.Name, FormatInterval(s))
			}
			prev = r
		}
	}
}

func TestRBERClamps(t *testing.T) {
	if ReRAM.RBER(0.001) != ReRAM.RBER(1) {
		t.Error("below-first-anchor not clamped")
	}
	if ReRAM.RBER(100*Year) != ReRAM.RBER(Year) {
		t.Error("beyond-last-anchor not clamped")
	}
}

func TestRBERTableCoversFig1(t *testing.T) {
	table := RBERTable([]float64{1, Hour, Week, Year})
	if len(table) != 5 {
		t.Fatalf("table has %d technologies, want 5", len(table))
	}
	for name, row := range table {
		if len(row) != 4 {
			t.Errorf("%s: %d entries", name, len(row))
		}
	}
}

func TestFormatInterval(t *testing.T) {
	cases := map[float64]string{1: "1s", 120: "2m", Hour: "1h", Day: "1d", Week: "1.0w", Year: "1.0y"}
	for s, want := range cases {
		if got := FormatInterval(s); got != want {
			t.Errorf("FormatInterval(%g)=%q, want %q", s, got, want)
		}
	}
}

func TestSampleBinomialStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// Small-mean regime.
	n := int64(1_000_000)
	p := 1e-5
	sum := int64(0)
	trials := 200
	for i := 0; i < trials; i++ {
		sum += sampleBinomial(rng, n, p)
	}
	mean := float64(sum) / float64(trials)
	if mean < 5 || mean > 16 {
		t.Errorf("small-mean regime: mean=%.2f, want ~10", mean)
	}
	// Large-mean regime.
	sum = 0
	for i := 0; i < trials; i++ {
		sum += sampleBinomial(rng, n, 0.01)
	}
	mean = float64(sum) / float64(trials)
	if mean < 9500 || mean > 10500 {
		t.Errorf("large-mean regime: mean=%.0f, want ~10000", mean)
	}
}

func TestFlipDataBitBypassesECC(t *testing.T) {
	c := newTestChip(t)
	enc := testEncoder(t)
	data := make([]byte, 16)
	c.WriteData(0, 0, 0, data)
	c.FlipDataBit(0, 0, 3, 2)
	got := c.ReadData(0, 0, 3, 1)
	if got[0] != 1<<2 {
		t.Fatalf("bit not flipped: %#x", got[0])
	}
	// Code bits must now be inconsistent (the injection is below ECC).
	if vlewConsistent(t, c, enc, 0, 0, 0) {
		t.Error("FlipDataBit updated code bits; it must not")
	}
}

func TestWriteDataRawSkipsCodeMaintenance(t *testing.T) {
	c := newTestChip(t)
	enc := testEncoder(t)
	payload := []byte{1, 2, 3, 4}
	c.WriteDataRaw(0, 0, 0, payload)
	if !bytes.Equal(c.ReadData(0, 0, 0, 4), payload) {
		t.Fatal("raw write did not store data")
	}
	if vlewConsistent(t, c, enc, 0, 0, 0) {
		t.Error("raw write maintained code bits; it must not")
	}
}

func TestXORCodeAndReadCode(t *testing.T) {
	c := newTestChip(t)
	before := c.ReadCode(1, 2, 3)
	delta := make([]byte, len(before))
	delta[0] = 0xAB
	c.XORCode(1, 2, 3, delta)
	after := c.ReadCode(1, 2, 3)
	if after[0] != before[0]^0xAB {
		t.Error("XORCode did not apply")
	}
	for i := 1; i < len(after); i++ {
		if after[i] != before[i] {
			t.Fatalf("byte %d disturbed", i)
		}
	}
}

func TestWearOutBitSurvivesAllWritePaths(t *testing.T) {
	c := newTestChip(t)
	// Set the cell to 1 then wear it out stuck-at-1.
	c.WriteData(0, 0, 0, []byte{0xFF})
	c.WearOutBit(0, 0, 0, 0)
	// Conventional write of 0.
	c.WriteData(0, 0, 0, []byte{0x00})
	if c.ReadData(0, 0, 0, 1)[0]&1 != 1 {
		t.Error("WriteData overcame the stuck bit")
	}
	// XOR write attempting to clear it.
	c.WriteXOR(0, 0, 0, []byte{0x01})
	if c.ReadData(0, 0, 0, 1)[0]&1 != 1 {
		t.Error("WriteXOR overcame the stuck bit")
	}
	// Raw write too.
	c.WriteDataRaw(0, 0, 0, []byte{0x00})
	if c.ReadData(0, 0, 0, 1)[0]&1 != 1 {
		t.Error("WriteDataRaw overcame the stuck bit")
	}
}
