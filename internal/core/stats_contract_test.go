package core

import (
	"sync"
	"testing"
)

// TestStatsConcurrentWithScrub pins the documented stats contract: Stats
// and ResetStats may run concurrently with BootScrub and PatrolScrub (a
// boot-progress monitor), because the scrubs publish their counters in
// one locked batch. Run under -race (make race covers this package) to
// catch any regression to unlocked publication.
func TestStatsConcurrentWithScrub(t *testing.T) {
	c, err := NewController(smallRank(t, 31), Config{Threshold: 2, ScrubWorkers: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := fillRandom(t, c, 32)
	c.Rank().InjectRetentionErrors(2e-4)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				_ = c.Stats()
				if i%64 == 63 {
					c.ResetStats()
				}
			}
		}
	}()

	rep := c.BootScrub()
	if rep.Unrecoverable {
		t.Fatalf("scrub unrecoverable: %v", rep)
	}
	pos := int64(0)
	for i := 0; i < 8; i++ {
		pos, _ = c.PatrolScrub(pos, 64)
	}
	close(stop)
	wg.Wait()

	// The rank must still be intact after the concurrent monitoring.
	c.ResetStats()
	for b := int64(0); b < c.Rank().Blocks(); b += 97 {
		got, err := c.ReadBlock(b)
		if err != nil {
			t.Fatalf("block %d: %v", b, err)
		}
		if string(got) != string(ref[b]) {
			t.Fatalf("block %d corrupted after scrub", b)
		}
	}
}
