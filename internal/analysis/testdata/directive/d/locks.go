package d

import "sync"

// box declares one valid lock and several malformed lock-family marks;
// the validator must reject each malformed one (expectations live in
// directive_test.go).
type box struct {
	//chipkill:lock d.box level=10
	mu sync.Mutex
	//chipkill:lock d.box level=20
	mu2 sync.Mutex
	//chipkill:lock d.noLevel
	mu3 sync.Mutex
	//chipkill:lock d.badLevel level=ten
	mu4 sync.Mutex
	//chipkill:guardedby d.missing
	val int
	//chipkill:atomic with args
	n int64
}

//chipkill:lock floating level=5
var floatingLock sync.Mutex

//chipkill:holds d.absent
func needsAbsent() {}

//chipkill:locks d.unknown
func locksUnknown() {}

//chipkill:guardedby d.box
func guardedOnFunc() {}

//chipkill:atomic
func atomicOnFunc() {}

func useBox(b *box) {
	b.mu.Lock()
	_ = b.val
	b.mu.Unlock()
	_ = b.n
	_ = &floatingLock
	needsAbsent()
	locksUnknown()
	guardedOnFunc()
	atomicOnFunc()
}
