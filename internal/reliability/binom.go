// Package reliability implements the paper's analytical models: standard
// combinatorial error-probability analysis (Sec III), the miscorrection
// (silent-data-corruption) model of the appendix, and the storage-cost
// models behind Figures 2, 3 and 4.
//
// All probabilities are computed in log space so that tails as small as
// 1e-22 (the paper's t=2 SDC rate) remain exact in float64.
package reliability

import (
	"fmt"
	"math"
)

// LogChoose returns ln C(n, k) computed via the log-gamma function.
// It returns -Inf for k < 0 or k > n.
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}

// BinomPMF returns P[X = k] for X ~ Binomial(n, p).
func BinomPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lp := LogChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
	return math.Exp(lp)
}

// BinomTail returns P[X >= k] for X ~ Binomial(n, p). For the far tails
// used in this repository (k well above n*p), summing PMF terms upward is
// numerically exact because successive terms shrink geometrically.
func BinomTail(n, k int, p float64) float64 {
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	sum := 0.0
	for i := k; i <= n; i++ {
		term := BinomPMF(n, i, p)
		sum += term
		// Terms decay fast beyond the mean; stop once negligible.
		if term > 0 && term < sum*1e-18 && float64(i) > float64(n)*p {
			break
		}
	}
	return math.Min(sum, 1)
}

// ByteErrorRate converts a raw bit error rate into the probability that an
// s-bit symbol contains at least one bit error: 1 - (1-rber)^s.
func ByteErrorRate(rber float64, symbolBits int) float64 {
	return -math.Expm1(float64(symbolBits) * math.Log1p(-rber))
}

// FracAccessesWithErrors returns the fraction of memory accesses of the
// given size (in bits) that contain at least one raw bit error at the
// given RBER. The paper evaluates 72 B accesses (64 B data + 8 B RS check
// bytes): 4% at 7e-5 and ~10% at 2e-4 (Sec IV-A).
func FracAccessesWithErrors(bits int, rber float64) float64 {
	return ByteErrorRate(rber, bits)
}

// MinCorrectableT returns the smallest error-correction strength t such
// that the probability of more than t symbol errors among n symbols, each
// independently bad with probability p, is at most target. It returns an
// error when even t = maxT does not reach the target.
func MinCorrectableT(n int, p, target float64, maxT int) (int, error) {
	for t := 0; t <= maxT; t++ {
		if BinomTail(n, t+1, p) <= target {
			return t, nil
		}
	}
	return 0, fmt.Errorf("reliability: no t <= %d meets target %.3g for n=%d p=%.3g", maxT, target, n, p)
}
