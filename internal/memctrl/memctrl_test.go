package memctrl

import (
	"math"
	"math/rand"
	"testing"

	"chipkillpm/internal/config"
)

const (
	testPMBase = uint64(1) << 40
	testPMSize = uint64(1) << 32
)

func newPCM(t testing.TB, mode Mode) *Controller {
	t.Helper()
	sys := config.TableI().WithPMLatencies(250, 600)
	c, err := New(sys, mode, testPMBase, testPMSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func pmAddr(block int64) uint64   { return testPMBase + uint64(block)*64 }
func dramAddr(block int64) uint64 { return uint64(block) * 64 }

func TestNewValidation(t *testing.T) {
	sys := config.TableI()
	if _, err := New(sys, Mode{TWRInflation: 0}, 0, 1, 1); err == nil {
		t.Error("zero inflation accepted")
	}
	bad := sys
	bad.CPU.Cores = 0
	if _, err := New(bad, BaselineMode(), 0, 1, 1); err == nil {
		t.Error("invalid system accepted")
	}
}

func TestIsPM(t *testing.T) {
	c := newPCM(t, BaselineMode())
	if !c.IsPM(testPMBase) || !c.IsPM(testPMBase+testPMSize-1) {
		t.Error("PM range not recognised")
	}
	if c.IsPM(testPMBase-1) || c.IsPM(testPMBase+testPMSize) || c.IsPM(0) {
		t.Error("non-PM address classified as PM")
	}
}

func TestColdPMReadLatency(t *testing.T) {
	// A cold read pays tRCD (the 250 ns PCM read) + tCAS + burst.
	c := newPCM(t, BaselineMode())
	done := c.Read(pmAddr(0), 1000)
	lat := done - 1000
	want := 250 + 14.16 + 64.0/(2400e6*8)*1e9
	if math.Abs(lat-want) > 1 {
		t.Errorf("cold read latency %.1f, want ~%.1f", lat, want)
	}
	if c.Stats().PMReads != 1 || c.Stats().RowMisses != 1 {
		t.Errorf("stats: %+v", c.Stats())
	}
}

func TestRowHitWithinClosePageWindow(t *testing.T) {
	c := newPCM(t, BaselineMode())
	done := c.Read(pmAddr(0), 1000)
	// Second read to the same row within 50 ns: a row hit, tCAS only.
	d2 := c.Read(pmAddr(1), done+10)
	if lat := d2 - (done + 10); lat > 20 {
		t.Errorf("row hit latency %.1f, want ~17", lat)
	}
	if c.Stats().RowHits != 1 {
		t.Errorf("RowHits=%d, want 1", c.Stats().RowHits)
	}
}

func TestClosedPageAutoClose(t *testing.T) {
	c := newPCM(t, BaselineMode())
	done := c.Read(pmAddr(0), 1000)
	// Far beyond the 50 ns window: the row auto-closed; pay tRCD again
	// but not a conflict precharge.
	d2 := c.Read(pmAddr(1), done+10000)
	lat := d2 - (done + 10000)
	if lat < 250 || lat > 290 {
		t.Errorf("auto-closed re-open latency %.1f, want ~267", lat)
	}
}

func TestDRAMAndPMUseSeparateBanks(t *testing.T) {
	c := newPCM(t, BaselineMode())
	c.Read(pmAddr(0), 1000)
	// A DRAM read at the same instant should not queue behind the PM bank.
	done := c.Read(dramAddr(0), 1000)
	if lat := done - 1000; lat > 50 {
		t.Errorf("DRAM read delayed by PM bank: %.1f ns", lat)
	}
	st := c.Stats()
	if st.DRAMReads != 1 || st.PMReads != 1 {
		t.Errorf("stats: %+v", st)
	}
}

// forcedDrainController builds a controller whose write queue drains at a
// tiny watermark, so writes are serviced at enqueue time.
func forcedDrainController(t testing.TB, mode Mode) *Controller {
	t.Helper()
	sys := config.TableI().WithPMLatencies(250, 600)
	sys.Controller.WriteDrainHigh = 4
	sys.Controller.WriteDrainLow = 0
	c, err := New(sys, mode, testPMBase, testPMSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// recoveryLatency measures a conflicting read's latency at `delay` ns
// after a drained write burst.
func recoveryLatency(t testing.TB, mode Mode, delay float64) float64 {
	c := forcedDrainController(t, mode)
	base := 100000.0
	for i := int64(0); i < 6; i++ {
		c.Write(pmAddr(i), base+float64(i), false)
	}
	// Different row, same bank (banks interleave per row, so +16 rows).
	done := c.Read(pmAddr(16*128), base+delay)
	return done - (base + delay)
}

func TestWriteRecoveryDelaysConflictingRead(t *testing.T) {
	// Proposal mode with C=1: tWR_eff = 600*5.125+20 = 3095. A read to a
	// different row of the same bank right after the write drain must
	// wait out the recovery; the same read 20 us later must not.
	latSoon := recoveryLatency(t, ProposalMode(1), 100)
	latLate := recoveryLatency(t, ProposalMode(1), 20000)
	if latSoon < 1.5*latLate {
		t.Errorf("recovery not observed: soon=%.0f late=%.0f", latSoon, latLate)
	}
	if latLate > 600 {
		t.Errorf("late read should not pay recovery: %.0f", latLate)
	}
}

func TestTWRInflationIncreasesRecovery(t *testing.T) {
	base := recoveryLatency(t, ProposalMode(0), 100)
	high := recoveryLatency(t, ProposalMode(1), 100)
	if high <= base {
		t.Errorf("C=1 recovery (%.0f) not above C=0 (%.0f)", high, base)
	}
}

func TestCFactorSequentialVsRandom(t *testing.T) {
	run := func(sequential bool) float64 {
		c := newPCM(t, ProposalMode(0))
		rng := rand.New(rand.NewSource(3))
		now := 0.0
		addr := int64(0)
		for i := 0; i < 2000; i++ {
			var b int64
			if sequential {
				b = addr
				addr++
			} else {
				b = rng.Int63n(1 << 20)
			}
			c.Write(pmAddr(b), now, false)
			now += 200
			// Interleave reads so rows close and flush.
			c.Read(pmAddr(rng.Int63n(1<<20)), now)
			now += 200
		}
		c.Drain()
		return c.Stats().CFactor()
	}
	seq := run(true)
	rnd := run(false)
	if seq >= rnd {
		t.Errorf("sequential C (%.3f) should be below random C (%.3f)", seq, rnd)
	}
	if rnd < 0.5 {
		t.Errorf("random-write C=%.3f, want near 1", rnd)
	}
	if seq > 0.5 {
		t.Errorf("sequential C=%.3f, want well below 0.5", seq)
	}
	t.Logf("C sequential=%.3f random=%.3f", seq, rnd)
}

func TestCFactorZeroInBaseline(t *testing.T) {
	c := newPCM(t, BaselineMode())
	for i := int64(0); i < 100; i++ {
		c.Write(pmAddr(i), float64(i)*100, false)
	}
	c.Drain()
	if c.Stats().VLEWCodeWrites != 0 {
		t.Error("baseline should not track VLEW code writes")
	}
}

func TestVLEWFallbackChargesExtraBlocks(t *testing.T) {
	mode := ProposalMode(0)
	mode.VLEWFallbackProb = 1 // force fallback on every read
	c := newPCM(t, mode)
	done := c.Read(pmAddr(0), 1000)
	lat := done - 1000
	// Cold read ~267 + 37 blocks * 3.33 + 200 BCH decode ~ 590.
	if lat < 500 || lat > 700 {
		t.Errorf("fallback read latency %.1f, want ~590", lat)
	}
	if c.Stats().VLEWFallbacks != 1 {
		t.Errorf("VLEWFallbacks=%d", c.Stats().VLEWFallbacks)
	}
}

func TestOMVFetchTriggersRead(t *testing.T) {
	c := newPCM(t, ProposalMode(0))
	ready := c.Write(pmAddr(0), 1000, true)
	st := c.Stats()
	if st.OMVFetches != 1 || st.PMReads != 1 {
		t.Errorf("stats: %+v", st)
	}
	if ready <= 1000 {
		t.Error("write with OMV fetch should be delayed by the read")
	}
	// Baseline-mode writes never fetch OMVs even if asked.
	cb := newPCM(t, BaselineMode())
	cb.Write(pmAddr(0), 1000, true)
	if cb.Stats().OMVFetches != 0 {
		t.Error("baseline performed an OMV fetch")
	}
}

func TestWriteQueueWatermarkDrain(t *testing.T) {
	sys := config.TableI().WithPMLatencies(250, 600)
	sys.Controller.WriteDrainHigh = 8
	sys.Controller.WriteDrainLow = 2
	c, err := New(sys, BaselineMode(), testPMBase, testPMSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		c.Write(pmAddr(rng.Int63n(1<<20)), float64(i)*10, false)
	}
	st := c.Stats()
	if st.WriteStalls == 0 {
		t.Error("watermark drain never triggered")
	}
	if st.PMWrites == 0 {
		t.Error("no writes serviced")
	}
	c.Drain()
	if got := c.Stats().PMWrites; got != 50 {
		t.Errorf("after Drain: %d writes serviced, want 50", got)
	}
}

func TestDrainFlushesAllVLEWCounts(t *testing.T) {
	c := newPCM(t, ProposalMode(0))
	for i := int64(0); i < 64; i++ {
		c.Write(pmAddr(i), float64(i), false)
	}
	c.Drain()
	st := c.Stats()
	if st.PMWrites != 64 {
		t.Errorf("PMWrites=%d, want 64", st.PMWrites)
	}
	if st.VLEWCodeWrites == 0 {
		t.Error("VLEW code writes not flushed by Drain")
	}
	// 64 sequential blocks = 2 VLEWs; allowing for drain-split rows the
	// count must stay far below one per write.
	if st.VLEWCodeWrites > 8 {
		t.Errorf("VLEWCodeWrites=%d for 64 sequential writes", st.VLEWCodeWrites)
	}
}

func TestReadLatencyAccumulation(t *testing.T) {
	c := newPCM(t, BaselineMode())
	c.Read(pmAddr(0), 1000)
	c.Read(dramAddr(0), 2000)
	st := c.Stats()
	if st.TotalReadLatencyNS <= 0 || st.AvgReadLatencyNS() <= 0 {
		t.Error("latency accounting broken")
	}
	c.ResetStats()
	if c.Stats().PMReads != 0 {
		t.Error("ResetStats did not zero counters")
	}
}

func TestMultiErrorRSLatency(t *testing.T) {
	mode := ProposalMode(0)
	mode.VLEWFallbackProb = 0
	mode.MultiErrorProb = 1
	c := newPCM(t, mode)
	done := c.Read(pmAddr(0), 1000)
	lat := done - 1000
	// Cold ~267 + 45 RS decode.
	if lat < 300 || lat > 330 {
		t.Errorf("multi-error read latency %.1f, want ~312", lat)
	}
}

func TestStatsCFactorEdgeCases(t *testing.T) {
	var s Stats
	if s.CFactor() != 0 || s.AvgReadLatencyNS() != 0 {
		t.Error("zero-activity stats should return 0")
	}
}
