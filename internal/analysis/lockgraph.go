package analysis

// The lock graph is the shared machinery behind the lockorder and
// guardedby analyzers: it resolves every //chipkill:lock declaration,
// scans every function body (and escaping function literal) for lock
// acquisition/release events, builds the lexical held-lock intervals,
// computes a transitive may-acquire summary per function with the same
// union-until-stable fixpoint noalloc uses, and records where function
// values are installed into func-typed struct fields (the guard Repair /
// fleet RepairBandHook pattern) so lock effects flow through those
// dynamic edges too.
//
// The model is deliberately lexical and instance-blind: a lock name
// stands for every instance of its field, and a lock counts as held from
// its acquisition to the release immediately preceding the next
// acquisition of the same name (or the last release, or the end of the
// body when the release is deferred). Branch-dependent early unlocks
// therefore over-approximate the held set — safe for order checking,
// since code after an `if { unlock; return }` arm only runs while the
// lock is still held. Calls through plain func values (for example the
// callback quiesce hands to each shard) are not tracked; the scoped-lock
// extent covers literal arguments lexically instead.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// A lockDecl is one //chipkill:lock declaration.
type lockDecl struct {
	name   string
	level  int
	ranked bool
	// virtual marks a scoped lock declared on a function (the quiesce
	// pattern): each call holds it for the call's lexical extent.
	virtual bool
	pos     token.Pos
}

// A loopFrame is one for/range statement, for multi-instance checks.
type loopFrame struct {
	pos, end token.Pos
	// descending marks `for i := hi; ...; i--` loops.
	descending bool
}

// A lockInterval is one lexical extent over which a lock is held.
type lockInterval struct {
	lock       string
	start, end token.Pos
}

// An acquireSite is one acquisition event in a body.
type acquireSite struct {
	lock   string
	pos    token.Pos
	end    token.Pos // scoped acquisitions only: end of the call
	scoped bool
	loop   *loopFrame // innermost enclosing loop, if any
	// opened/intervalEnd are filled by buildIntervals when this site
	// opened a fresh interval.
	opened      bool
	intervalEnd token.Pos
}

type lockRelease struct {
	lock string
	pos  token.Pos
}

// A callSite is one statically-resolved call, for transitive checks.
type callSite struct {
	pos  token.Pos
	key  string // callee symbol key (or literal key)
	name string // display name
	// skip names the lock already modelled as a direct event at this
	// site (scoped and locks-annotated callees), so the transitive
	// check does not report it twice.
	skip string
}

// A hookSite is a dynamic call through a func-typed struct field.
type hookSite struct {
	pos      token.Pos
	fieldKey string
	name     string // display: Type.Field
}

// A guardedSite is one access to a //chipkill:guardedby field.
type guardedSite struct {
	pos   token.Pos
	locks []string
	name  string // display: Type.Field
}

// An atomicSite is one non-atomic use of a //chipkill:atomic field.
type atomicSite struct {
	pos token.Pos
	msg string
}

// A lockScan is the lock-relevant summary of one body: a function
// declaration or an escaping function literal.
type lockScan struct {
	pkg   *Package
	key   string // symbol key; literal key for escaping literals
	name  string
	entry []string // locks held at entry (//chipkill:holds + own scoped lock)

	acquires  []*acquireSite
	releases  []lockRelease
	calls     []callSite
	hooks     []hookSite
	guarded   []guardedSite
	atomics   []atomicSite
	intervals []lockInterval
}

// A registrar is a function that stores one of its parameters into a
// func-typed field (SetRepairBandHook): literal arguments at its call
// sites become targets of that field.
type registrar struct {
	fieldKey string
	param    int
}

type pendingArg struct {
	callee string
	idx    int
	target string
}

// lockGraph is the whole-suite lock model.
type lockGraph struct {
	suite *Suite

	decls         map[string]*lockDecl
	fieldLock     map[string]string   // field key -> lock name
	guardedFields map[string][]string // field key -> accepted lock names
	atomicFields  map[string]bool

	scopedFn  map[string]string   // symbol key -> scoped lock it declares
	locksFn   map[string]string   // symbol key -> lock it acquires unbalanced
	unlocksFn map[string]string   // symbol key -> lock it releases
	holdsFn   map[string][]string // symbol key -> locks required at entry

	acq   map[string]map[string]bool // symbol key -> may-acquire lock names
	edges map[string][]string        // symbol key -> static callee keys

	hookTargets map[string]map[string]bool // func-field key -> target keys
	registrars  map[string]registrar
	pending     []pendingArg

	scans map[*Package][]*lockScan
}

func collectLockGraph(s *Suite) *lockGraph {
	g := &lockGraph{
		suite:         s,
		decls:         map[string]*lockDecl{},
		fieldLock:     map[string]string{},
		guardedFields: map[string][]string{},
		atomicFields:  map[string]bool{},
		scopedFn:      map[string]string{},
		locksFn:       map[string]string{},
		unlocksFn:     map[string]string{},
		holdsFn:       map[string][]string{},
		acq:           map[string]map[string]bool{},
		edges:         map[string][]string{},
		hookTargets:   map[string]map[string]bool{},
		registrars:    map[string]registrar{},
		scans:         map[*Package][]*lockScan{},
	}
	// Declarations and function annotations first, across every package,
	// so body scans can classify cross-package callees.
	for _, pkg := range s.pkgs {
		g.collectDecls(pkg)
	}
	for _, pkg := range s.pkgs {
		g.scanPackage(pkg)
	}
	// Literal arguments to registrar calls resolve once every registrar
	// is known.
	for _, pa := range g.pending {
		if reg, ok := g.registrars[pa.callee]; ok && reg.param == pa.idx {
			g.addHookTarget(reg.fieldKey, pa.target)
		}
	}
	return g
}

func fieldKey(pkgPath, owner, field string) string {
	return pkgPath + "." + owner + "." + field
}

func (g *lockGraph) collectDecls(pkg *Package) {
	for _, dir := range pkg.dirs.all {
		key := ""
		if dir.inDoc != nil {
			key = declSymbolKey(pkg, dir.inDoc)
		}
		switch dir.verb {
		case "lock":
			name, level, ranked, perr := parseLockArgs(dir.args)
			if perr != "" {
				continue // validateDirectives reports
			}
			if g.decls[name] == nil {
				g.decls[name] = &lockDecl{
					name: name, level: level, ranked: ranked,
					virtual: dir.inDoc != nil, pos: dir.pos,
				}
			}
			switch {
			case dir.inField != nil:
				for _, id := range dir.inField.Names {
					g.fieldLock[fieldKey(pkg.PkgPath, dir.fieldOwner, id.Name)] = name
				}
			case dir.inDoc != nil && key != "":
				g.scopedFn[key] = name
			}
		case "locks":
			if key != "" {
				g.locksFn[key] = strings.TrimSpace(dir.args)
			}
		case "unlocks":
			if key != "" {
				g.unlocksFn[key] = strings.TrimSpace(dir.args)
			}
		case "holds":
			if key != "" {
				g.holdsFn[key] = append(g.holdsFn[key], strings.TrimSpace(dir.args))
			}
		case "guardedby":
			if dir.inField == nil {
				continue
			}
			names := strings.Fields(dir.args)
			if len(names) == 0 {
				continue
			}
			for _, id := range dir.inField.Names {
				g.guardedFields[fieldKey(pkg.PkgPath, dir.fieldOwner, id.Name)] = names
			}
		case "atomic":
			if dir.inField == nil {
				continue
			}
			for _, id := range dir.inField.Names {
				g.atomicFields[fieldKey(pkg.PkgPath, dir.fieldOwner, id.Name)] = true
			}
		}
	}
}

func declSymbolKey(pkg *Package, fd *ast.FuncDecl) string {
	fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return ""
	}
	return symbolKey(fn)
}

func (g *lockGraph) addHookTarget(fieldKey, target string) {
	set := g.hookTargets[fieldKey]
	if set == nil {
		set = map[string]bool{}
		g.hookTargets[fieldKey] = set
	}
	set[target] = true
}

func (g *lockGraph) scanPackage(pkg *Package) {
	for _, f := range pkg.Files {
		fname := g.suite.fset.Position(f.Pos()).Filename
		isTest := strings.HasSuffix(fname, "_test.go")
		parents := map[ast.Node]ast.Node{}
		buildParents(f, parents)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			key := declSymbolKey(pkg, fd)
			var entry []string
			entry = append(entry, g.holdsFn[key]...)
			if n := g.scopedFn[key]; n != "" {
				entry = append(entry, n)
			}
			g.scanBody(pkg, key, fd.Name.Name, fd.Body, entry, parents, isTest)
		}
	}
}

// scanBody walks one body, collecting lock events, calls, hook calls,
// and guarded/atomic field accesses. Escaping function literals are
// scanned recursively as bodies of their own (empty entry set); literals
// lexically inside a scoped-lock extent stay part of this scan.
func (g *lockGraph) scanBody(pkg *Package, key, name string, body *ast.BlockStmt, entry []string, parents map[ast.Node]ast.Node, isTest bool) {
	sc := &lockScan{pkg: pkg, key: key, name: name, entry: entry}
	var escaping []*ast.FuncLit
	var loops []*loopFrame
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if g.isInlineLit(pkg, n, parents) {
				return true
			}
			escaping = append(escaping, n)
			return false
		case *ast.ForStmt:
			desc := false
			if post, ok := n.Post.(*ast.IncDecStmt); ok && post.Tok == token.DEC {
				desc = true
			}
			loops = append(loops, &loopFrame{pos: n.Pos(), end: n.End(), descending: desc})
		case *ast.RangeStmt:
			loops = append(loops, &loopFrame{pos: n.Pos(), end: n.End()})
		case *ast.DeferStmt:
			deferred[n.Call] = true
		case *ast.CallExpr:
			g.scanCall(sc, pkg, n, deferred[n], loops, isTest)
		case *ast.AssignStmt:
			g.scanAssign(pkg, n, isTest)
		case *ast.SelectorExpr:
			g.scanSelector(sc, pkg, n, parents)
		}
		return true
	})
	sc.buildIntervals(body.End())
	g.scans[pkg] = append(g.scans[pkg], sc)
	if key != "" {
		set := g.acq[key]
		if set == nil {
			set = map[string]bool{}
			g.acq[key] = set
		}
		for _, a := range sc.acquires {
			set[a.lock] = true
		}
		for _, c := range sc.calls {
			g.edges[key] = append(g.edges[key], c.key)
		}
	}
	for _, lit := range escaping {
		g.scanBody(pkg, g.litKey(pkg, lit), "function literal", lit.Body, nil, parents, isTest)
	}
}

// isInlineLit reports whether a function literal's body belongs to the
// enclosing scan: immediately-invoked literals (not under go/defer) and
// literal arguments to scoped-lock calls, whose extent covers them.
func (g *lockGraph) isInlineLit(pkg *Package, lit *ast.FuncLit, parents map[ast.Node]ast.Node) bool {
	call, ok := parents[lit].(*ast.CallExpr)
	if !ok {
		return false
	}
	if call.Fun == lit {
		switch parents[call].(type) {
		case *ast.GoStmt, *ast.DeferStmt:
			return false
		}
		return true
	}
	if fn := calleeOf(pkg.Info, call); fn != nil && g.scopedFn[symbolKey(fn)] != "" {
		return true
	}
	return false
}

func (g *lockGraph) litKey(pkg *Package, lit *ast.FuncLit) string {
	p := g.suite.fset.Position(lit.Pos())
	return fmt.Sprintf("%s.funclit@%s:%d:%d", pkg.PkgPath, filepath.Base(p.Filename), p.Line, p.Column)
}

func (g *lockGraph) scanCall(sc *lockScan, pkg *Package, call *ast.CallExpr, isDeferred bool, loops []*loopFrame, isTest bool) {
	fn := calleeOf(pkg.Info, call)
	if fn == nil {
		// Dynamic call through a func-typed struct field: a hook edge.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if fkey, fname := fieldKeyOf(pkg, sel); fkey != "" {
				sc.hooks = append(sc.hooks, hookSite{pos: call.Pos(), fieldKey: fkey, name: fname})
			}
		}
		return
	}
	key := symbolKey(fn)
	if isMutexMethod(fn, "Lock", "RLock") {
		if lk := g.recvFieldLock(pkg, call); lk != "" {
			if !isDeferred {
				sc.addAcquire(lk, call.Pos(), token.NoPos, false, innermostLoop(loops, call.Pos()))
			}
			return
		}
	}
	if isMutexMethod(fn, "Unlock", "RUnlock") {
		if lk := g.recvFieldLock(pkg, call); lk != "" {
			if !isDeferred {
				sc.releases = append(sc.releases, lockRelease{lock: lk, pos: call.Pos()})
			}
			return
		}
	}
	switch {
	case g.scopedFn[key] != "":
		lk := g.scopedFn[key]
		if !isDeferred {
			sc.addAcquire(lk, call.Pos(), call.End(), true, innermostLoop(loops, call.Pos()))
		}
		sc.calls = append(sc.calls, callSite{pos: call.Pos(), key: key, name: fn.Name(), skip: lk})
	case g.locksFn[key] != "":
		if !isDeferred {
			sc.addAcquire(g.locksFn[key], call.Pos(), token.NoPos, false, innermostLoop(loops, call.Pos()))
		}
		sc.calls = append(sc.calls, callSite{pos: call.Pos(), key: key, name: fn.Name(), skip: g.locksFn[key]})
	case g.unlocksFn[key] != "":
		if !isDeferred {
			sc.releases = append(sc.releases, lockRelease{lock: g.unlocksFn[key], pos: call.Pos()})
		}
	default:
		sc.calls = append(sc.calls, callSite{pos: call.Pos(), key: key, name: fn.Name()})
	}
	if !isTest {
		// Function values passed as arguments are remembered in case the
		// callee is a registrar (stores the parameter into a hook field).
		for i, a := range call.Args {
			switch arg := ast.Unparen(a).(type) {
			case *ast.FuncLit:
				g.pending = append(g.pending, pendingArg{callee: key, idx: i, target: g.litKey(pkg, arg)})
			case *ast.Ident:
				if afn, ok := pkg.Info.Uses[arg].(*types.Func); ok {
					g.pending = append(g.pending, pendingArg{callee: key, idx: i, target: symbolKey(afn)})
				}
			case *ast.SelectorExpr:
				if afn, ok := pkg.Info.Uses[arg.Sel].(*types.Func); ok {
					g.pending = append(g.pending, pendingArg{callee: key, idx: i, target: symbolKey(afn)})
				}
			}
		}
	}
}

// scanAssign records function values stored into func-typed struct
// fields: the hook-registration edges. Test files register throwaway
// hooks; the production contract only covers non-test assignments.
func (g *lockGraph) scanAssign(pkg *Package, as *ast.AssignStmt, isTest bool) {
	if isTest || len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		fkey, _ := fieldKeyOf(pkg, sel)
		if fkey == "" {
			continue
		}
		tv, ok := pkg.Info.Types[sel]
		if !ok {
			continue
		}
		if _, ok := tv.Type.Underlying().(*types.Signature); !ok {
			continue
		}
		switch r := ast.Unparen(as.Rhs[i]).(type) {
		case *ast.FuncLit:
			g.addHookTarget(fkey, g.litKey(pkg, r))
		case *ast.Ident:
			if fn, ok := pkg.Info.Uses[r].(*types.Func); ok {
				g.addHookTarget(fkey, symbolKey(fn))
				continue
			}
			// One-hop parameter flow: a function that stores a func
			// parameter into a field is a registrar; arguments at its
			// call sites become the field's targets.
			if v, ok := pkg.Info.Uses[r].(*types.Var); ok {
				if fd := pkg.dirs.enclosingFunc(as.Pos()); fd != nil {
					if idx := paramIndex(pkg, fd, v); idx >= 0 {
						g.registrars[declSymbolKey(pkg, fd)] = registrar{fieldKey: fkey, param: idx}
					}
				}
			}
		case *ast.SelectorExpr:
			if fn, ok := pkg.Info.Uses[r.Sel].(*types.Func); ok {
				g.addHookTarget(fkey, symbolKey(fn))
			}
		}
	}
}

func (g *lockGraph) scanSelector(sc *lockScan, pkg *Package, sel *ast.SelectorExpr, parents map[ast.Node]ast.Node) {
	fkey, fname := fieldKeyOf(pkg, sel)
	if fkey == "" {
		return
	}
	if locks := g.guardedFields[fkey]; len(locks) > 0 {
		sc.guarded = append(sc.guarded, guardedSite{pos: sel.Pos(), locks: locks, name: fname})
	}
	if g.atomicFields[fkey] {
		if ok, msg := atomicUseOK(pkg, parents, sel, fname); !ok {
			sc.atomics = append(sc.atomics, atomicSite{pos: sel.Pos(), msg: msg})
		}
	}
}

func (sc *lockScan) addAcquire(lock string, pos, end token.Pos, scoped bool, loop *loopFrame) {
	sc.acquires = append(sc.acquires, &acquireSite{
		lock: lock, pos: pos, end: end, scoped: scoped, loop: loop,
	})
}

// buildIntervals turns the raw acquire/release events into held
// intervals. Per lock, an acquisition extends through consecutive
// releases and closes at the release immediately preceding the next
// acquisition of the same lock, at the last release, or — when every
// release is deferred or branch-local — at the end of the body.
func (sc *lockScan) buildIntervals(bodyEnd token.Pos) {
	type ev struct {
		pos     token.Pos
		acquire bool
		site    *acquireSite
	}
	byLock := map[string][]ev{}
	for _, a := range sc.acquires {
		if a.scoped {
			sc.intervals = append(sc.intervals, lockInterval{lock: a.lock, start: a.pos, end: a.end})
			a.opened, a.intervalEnd = true, a.end
			continue
		}
		byLock[a.lock] = append(byLock[a.lock], ev{pos: a.pos, acquire: true, site: a})
	}
	for _, r := range sc.releases {
		byLock[r.lock] = append(byLock[r.lock], ev{pos: r.pos})
	}
	for lock, evs := range byLock {
		sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
		for i := 0; i < len(evs); i++ {
			if !evs[i].acquire {
				continue
			}
			end := bodyEnd
			last := token.NoPos
			j := i + 1
			for ; j < len(evs); j++ {
				if evs[j].acquire {
					break
				}
				last = evs[j].pos
			}
			if last != token.NoPos {
				end = last
			}
			sc.intervals = append(sc.intervals, lockInterval{lock: lock, start: evs[i].pos, end: end})
			evs[i].site.opened, evs[i].site.intervalEnd = true, end
		}
	}
}

// heldAt returns the locks held at pos: the entry set plus every
// interval strictly containing pos (an acquisition excludes itself).
func (sc *lockScan) heldAt(pos token.Pos) []string {
	held := append([]string{}, sc.entry...)
	for _, iv := range sc.intervals {
		if iv.start < pos && pos < iv.end && !containsStr(held, iv.lock) {
			held = append(held, iv.lock)
		}
	}
	return held
}

// propagate closes the may-acquire sets over static call edges.
func (g *lockGraph) propagate() {
	for changed := true; changed; {
		changed = false
		for k, callees := range g.edges {
			set := g.acq[k]
			for _, ck := range callees {
				for lk := range g.acq[ck] {
					if set == nil {
						set = map[string]bool{}
						g.acq[k] = set
					}
					if !set[lk] {
						set[lk] = true
						changed = true
					}
				}
			}
		}
	}
}

// ---- helpers ----

// fieldKeyOf resolves a selector to its struct-field key and display
// name, or "" when the selector is not a direct field access.
func fieldKeyOf(pkg *Package, sel *ast.SelectorExpr) (string, string) {
	selection, ok := pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return "", ""
	}
	v, ok := selection.Obj().(*types.Var)
	if !ok || v.Pkg() == nil {
		return "", ""
	}
	owner := recvTypeName(selection.Recv())
	if owner == "" {
		return "", ""
	}
	return fieldKey(v.Pkg().Path(), owner, v.Name()), owner + "." + v.Name()
}

// recvFieldLock resolves a mutex method call's receiver to an annotated
// lock name ("" when the receiver is not an annotated field).
func (g *lockGraph) recvFieldLock(pkg *Package, call *ast.CallExpr) string {
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	recv, ok := ast.Unparen(fun.X).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	key, _ := fieldKeyOf(pkg, recv)
	if key == "" {
		return ""
	}
	return g.fieldLock[key]
}

func isMutexMethod(fn *types.Func, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	tn := recvTypeName(sig.Recv().Type())
	if tn != "Mutex" && tn != "RWMutex" {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// atomicUseOK classifies one use of a //chipkill:atomic field: atomic.*
// typed fields may only appear as the receiver of a method call; plain
// typed fields only inside an &field... argument to a sync/atomic call.
func atomicUseOK(pkg *Package, parents map[ast.Node]ast.Node, sel *ast.SelectorExpr, fname string) (bool, string) {
	tv, ok := pkg.Info.Types[sel]
	if !ok {
		return true, ""
	}
	if isAtomicValueType(tv.Type) {
		if p, ok := parents[sel].(*ast.SelectorExpr); ok && p.X == sel {
			if call, ok := parents[p].(*ast.CallExpr); ok && call.Fun == p {
				return true, ""
			}
		}
		return false, fmt.Sprintf("atomic field %s (//chipkill:atomic) may only be used through its sync/atomic methods", fname)
	}
	node := ast.Node(sel)
walk:
	for {
		switch p := parents[node].(type) {
		case *ast.SelectorExpr:
			if p.X != node {
				break walk
			}
			node = p
		case *ast.IndexExpr:
			if p.X != node {
				break walk
			}
			node = p
		case *ast.ParenExpr:
			node = p
		case *ast.UnaryExpr:
			if p.Op != token.AND {
				break walk
			}
			if call, ok := parents[p].(*ast.CallExpr); ok {
				if fn := calleeOf(pkg.Info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
					return true, ""
				}
			}
			break walk
		default:
			break walk
		}
	}
	return false, fmt.Sprintf("field %s (//chipkill:atomic) may only be accessed through sync/atomic", fname)
}

func isAtomicValueType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

func buildParents(root ast.Node, parents map[ast.Node]ast.Node) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
}

func paramIndex(pkg *Package, fd *ast.FuncDecl, v *types.Var) int {
	if fd.Type.Params == nil {
		return -1
	}
	idx := 0
	for _, fld := range fd.Type.Params.List {
		if len(fld.Names) == 0 {
			idx++
			continue
		}
		for _, nm := range fld.Names {
			if pkg.Info.Defs[nm] == v {
				return idx
			}
			idx++
		}
	}
	return -1
}

func innermostLoop(loops []*loopFrame, pos token.Pos) *loopFrame {
	var best *loopFrame
	for _, l := range loops {
		if l.pos <= pos && pos < l.end {
			if best == nil || l.pos > best.pos {
				best = l
			}
		}
	}
	return best
}

func containsStr(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// forEachStructField visits every named struct field in the package's
// files, for the coverage rules.
func forEachStructField(pkg *Package, visit func(owner string, fld *ast.Field)) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, fld := range st.Fields.List {
					visit(ts.Name.Name, fld)
				}
			}
		}
	}
}
