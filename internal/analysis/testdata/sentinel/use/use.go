// Package use exercises the sentinel analyzer: identity comparison and
// string matching against sentinels, and dropped persistence-critical
// errors.
package use

import (
	"errors"
	"strings"

	"sentinelstub/errs"
	"sentinelstub/internal/fleet"
	"sentinelstub/internal/guard"
)

func classify(err error) int {
	if err == errs.ErrUncorrectable { // want `sentinel compared with ==: use errors.Is\(err, ErrUncorrectable\)`
		return 1
	}
	if err != errs.ErrChipFailed { // want `sentinel compared with !=: use errors.Is\(err, ErrChipFailed\)`
		return 2
	}
	if err.Error() == "chip failed" { // want `error matched by string comparison`
		return 3
	}
	if strings.Contains(err.Error(), "uncorrectable") { // want `error matched by strings.Contains on Error\(\)`
		return 4
	}
	switch err {
	case errs.ErrChipFailed: // want `sentinel in switch case`
		return 5
	case nil:
		return 0
	}
	return 6
}

// blessed shows the forms the analyzer wants instead.
func blessed(err error) int {
	if errors.Is(err, errs.ErrUncorrectable) {
		return 1
	}
	if err == nil { // nil comparison is not a sentinel comparison
		return 0
	}
	if err == errs.NotASentinel { // no Err prefix: not policed
		return 2
	}
	return 3
}

func drops(j *guard.Journal, s *guard.Supervisor) error {
	j.AppendStart(1)    // want `error from persistence-critical sentinelstub/internal/guard.Journal.AppendStart discarded`
	_ = j.AppendDone(1) // want `error from persistence-critical sentinelstub/internal/guard.Journal.AppendDone assigned to _`
	go s.Tick()         // want `error from persistence-critical sentinelstub/internal/guard.Supervisor.Tick discarded by go statement`
	defer s.Tick()      // want `error from persistence-critical sentinelstub/internal/guard.Supervisor.Tick discarded by defer`
	_ = s.Health()      // not persistence-critical
	if err := j.AppendBand(7); err != nil {
		return err
	}
	return j.AppendDone(2)
}

func fleetDrops(f *fleet.Fleet) error {
	f.Tick()               // want `error from persistence-critical sentinelstub/internal/fleet.Fleet.Tick discarded`
	_ = f.RepairChip(0, 2) // want `error from persistence-critical sentinelstub/internal/fleet.Fleet.RepairChip assigned to _`
	go f.ReplicateBand(9)  // want `error from persistence-critical sentinelstub/internal/fleet.Fleet.ReplicateBand discarded by go statement`
	_ = f.Stats()          // not persistence-critical
	return f.Tick()
}
