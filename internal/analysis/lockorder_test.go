package analysis_test

import (
	"strings"
	"testing"

	"chipkillpm/internal/analysis"
	"chipkillpm/internal/analysis/analysistest"
)

func TestLockOrder(t *testing.T) {
	diags := analysistest.Run(t, "testdata/lockorder", analysis.LockOrder)

	// Annotation-removal regression: the fixture's plainBox mutex carries
	// no //chipkill:lock mark, and the coverage rule must refuse to let it
	// slide. If someone deletes the bare-mutex check, this fails loudly.
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "no //chipkill:lock annotation") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("lockorder no longer flags bare mutex fields: annotation removal would go unnoticed")
	}
}
