module bankstub

go 1.22
