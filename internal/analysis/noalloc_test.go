package analysis_test

import (
	"strings"
	"testing"

	"chipkillpm/internal/analysis"
	"chipkillpm/internal/analysis/analysistest"
)

func TestNoAlloc(t *testing.T) {
	analysistest.Run(t, "testdata/noalloc", analysis.NoAlloc)
}

// TestNoAllocCatchesAnnotationRemoval pins the transitive guarantee the
// testdata relies on: helper() allocates and carries no annotation
// (as if its //chipkill:noalloc had been removed while an allocation
// was added), and the still-annotated callers badTransitive and
// badTwoHops must be the ones that report it.
func TestNoAllocCatchesAnnotationRemoval(t *testing.T) {
	diags := analysistest.Run(t, "testdata/noalloc", analysis.NoAlloc)
	found := map[string]bool{}
	for _, d := range diags {
		if d.Analyzer != "noalloc" {
			continue
		}
		for _, caller := range []string{"badTransitive", "badTwoHops"} {
			if strings.Contains(d.Message, caller) && strings.Contains(d.Message, "allocates") {
				found[caller] = true
			}
		}
	}
	for _, caller := range []string{"badTransitive", "badTwoHops"} {
		if !found[caller] {
			t.Errorf("no transitive allocation diagnostic attributed to %s", caller)
		}
	}
}
