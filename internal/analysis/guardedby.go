package analysis

// The guardedby analyzer enforces field-level access contracts
// (DESIGN.md §15): a //chipkill:guardedby field may only be read or
// written while one of its named locks is held — lexically, inside a
// scoped-lock extent, or in a //chipkill:holds-annotated helper — and a
// //chipkill:atomic field only through sync/atomic. The engine seqlock's
// odd-window rules stay with the seqlock analyzer; guardedby covers the
// mutex- and atomic-published state around it. As the annotation-removal
// backstop, every atomic.*-typed struct field in the contract packages
// must carry a //chipkill:atomic (or guardedby) mark.

import (
	"go/ast"
	"strings"
)

// GuardedBy enforces //chipkill:guardedby and //chipkill:atomic field
// contracts using the lock graph's held-lock intervals.
var GuardedBy = &Analyzer{
	Name:          "guardedby",
	Doc:           "guarded fields only under their mutex; atomic fields only through sync/atomic",
	SkipTestFiles: true,
	Run:           runGuardedBy,
}

func runGuardedBy(pass *Pass) {
	g := pass.Suite.locks
	if g == nil {
		return
	}
	if inLockContractPkg(pass.Pkg.PkgPath) {
		reportBareAtomics(pass, g)
	}
	for _, sc := range g.scans[pass.Pkg] {
		for _, u := range sc.guarded {
			held := sc.heldAt(u.pos)
			ok := false
			for _, lk := range u.locks {
				if containsStr(held, lk) {
					ok = true
					break
				}
			}
			if !ok {
				pass.Reportf(u.pos, "field %s accessed without holding %s (//chipkill:guardedby)",
					u.name, quoteOr(u.locks))
			}
		}
		for _, a := range sc.atomics {
			pass.Reportf(a.pos, "%s", a.msg)
		}
	}
}

// reportBareAtomics flags atomic.*-typed struct fields carrying neither
// //chipkill:atomic nor //chipkill:guardedby, so deleting a mark fails
// vet instead of silently dropping the contract.
func reportBareAtomics(pass *Pass, g *lockGraph) {
	forEachStructField(pass.Pkg, func(owner string, fld *ast.Field) {
		tv, ok := pass.Pkg.Info.Types[fld.Type]
		if !ok || !isAtomicValueType(tv.Type) {
			return
		}
		for _, id := range fld.Names {
			key := fieldKey(pass.Pkg.PkgPath, owner, id.Name)
			if !g.atomicFields[key] && len(g.guardedFields[key]) == 0 {
				pass.Reportf(id.Pos(), "atomic field %s.%s has no //chipkill:atomic annotation", owner, id.Name)
			}
		}
	})
}

func quoteOr(names []string) string {
	quoted := make([]string, len(names))
	for i, n := range names {
		quoted[i] = "\"" + n + "\""
	}
	return strings.Join(quoted, " or ")
}
