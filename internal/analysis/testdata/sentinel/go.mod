module sentinelstub

go 1.22
