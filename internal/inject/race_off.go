//go:build !race

package inject

// raceEnabled reports whether the race detector is compiled in; heavy
// campaigns shrink under it to keep `make race` fast.
const raceEnabled = false
