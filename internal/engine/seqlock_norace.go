//go:build !race

package engine

// seqlockCapable gates compilation of the lock-free seqlock read path.
// The path's plain loads of chip cell arrays race, by design, with writer
// stores — the sequence re-check discards every torn result, which is
// sound under the Go memory model (the reader never *uses* a racy value)
// but is exactly the pattern the race detector exists to flag. Race
// builds therefore route every read through the shard mutex; the torture
// tests still run under -race and exercise the locked path's invariants.
const seqlockCapable = true
