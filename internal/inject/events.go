package inject

// EventKind names one scripted fault (or campaign action). Kinds are
// strings so reports read without a decoder ring.
type EventKind string

const (
	// EvDrift injects retention errors across the whole rank (data and
	// code regions of every healthy chip) at Event.RBER, modelling time
	// without refresh.
	EvDrift EventKind = "drift"
	// EvFlip flips Event.Bits targeted bits inside committed blocks in
	// Event.Region (data, code, or parity). Chip selects the data chip
	// for the data/code regions; -1 picks one at random per flip.
	EvFlip EventKind = "flip"
	// EvChipKill fails a whole chip mid-run. Chip is the data-chip index,
	// or ChipParity for the parity chip.
	EvChipKill EventKind = "chip-kill"
	// EvCrashReboot models a power-fail crash and reboot: drain the EURs
	// (the chips' power-fail window flushes pending code updates, as the
	// paper's EUR design assumes), discard all volatile controller state,
	// inject drift at Event.RBER for the outage duration, run BootScrub
	// on the new controller, and byte-verify every committed block.
	EvCrashReboot EventKind = "crash-reboot"
	// EvBootScrub runs a boot scrub without the crash semantics.
	EvBootScrub EventKind = "boot-scrub"
	// EvEnterDegraded remaps failed data chip Event.Chip into the parity
	// chip and re-encodes VLEWs striped across the survivors (Sec V-E).
	EvEnterDegraded EventKind = "enter-degraded"
	// EvDeltaCorrupt arms a one-shot write-path fault: the next write's
	// XOR delta is corrupted by one bit on the bus to one data chip, so
	// the chip folds the corrupted delta into its data and VLEW code
	// while the parity chip's RS check delta reflects the true delta.
	// The per-block RS must catch it on the next read.
	EvDeltaCorrupt EventKind = "delta-corrupt"
	// EvOMVCorrupt arms a one-shot old-memory-value fault: the next
	// write's OMV arrives with one bit flipped, as if the LLC's OMV store
	// were unprotected. The resulting stored block is a fully consistent
	// codeword for the *wrong* data — silent corruption only the oracle
	// can see. Campaigns using it set Expect.AllowSDC to document the
	// scheme's reliance on an ECC-protected LLC.
	EvOMVCorrupt EventKind = "omv-corrupt"
	// EvSweep reads and classifies every committed block.
	EvSweep EventKind = "read-sweep"
)

// There is deliberately no "restore" event that rewrites blocks from the
// oracle between drift rounds: an in-place rewrite computes its VLEW code
// delta against the *drifted* stored bits, converting every live drift
// error into a persistent data/code mismatch. The faithful model of a
// refresh is EvBootScrub, which corrects and writes back both regions.

// Region selects where EvFlip lands.
type Region string

const (
	// RegionData flips bits in a data chip's slice of a committed block.
	RegionData Region = "data"
	// RegionCode flips bits in the VLEW code slot covering a committed
	// block on one chip.
	RegionCode Region = "code"
	// RegionParity flips bits in the parity chip's check bytes of a
	// committed block.
	RegionParity Region = "parity"
)

// ChipParity is the Event.Chip sentinel selecting the parity chip.
const ChipParity = -2

// ChipRandom is the Event.Chip sentinel selecting a random data chip.
const ChipRandom = -1

// Event is one scripted campaign action, fired when the workload reaches
// operation index AtOp (events sharing an AtOp fire in list order).
type Event struct {
	AtOp   int       `json:"at_op"`
	Kind   EventKind `json:"kind"`
	RBER   float64   `json:"rber,omitempty"`
	Chip   int       `json:"chip,omitempty"`
	Region Region    `json:"region,omitempty"`
	Bits   int       `json:"bits,omitempty"`
}
