package experiments

import (
	"bytes"
	"math/rand"

	"chipkillpm/internal/core"
	"chipkillpm/internal/rank"
	"chipkillpm/internal/reliability"
	"chipkillpm/internal/rs"
	"chipkillpm/internal/stats"
)

// MonteCarloResult summarises a fault-injection campaign on the functional
// memory model.
type MonteCarloResult struct {
	Scenario      string
	Trials        int64
	BlocksRead    int64
	WrongData     int64 // silent data corruptions observed
	Uncorrectable int64 // detected-but-uncorrectable blocks
	RSFallbacks   int64
	ChipRepairs   int64
}

// newSmallSystem builds a small paper-shaped rank + controller.
func newSmallSystem(seed int64) (*core.Controller, error) {
	r, err := rank.New(rank.PaperConfig(2, 8, 1024, seed))
	if err != nil {
		return nil, err
	}
	return core.NewController(r, core.DefaultConfig(), nil)
}

// MonteCarloRuntime injects random retention errors at the given RBER and
// reads every block through the runtime path, verifying data integrity.
//chipkill:rankwide
func MonteCarloRuntime(rber float64, rounds int, seed int64) (MonteCarloResult, error) {
	res := MonteCarloResult{Scenario: "runtime bit errors"}
	ctrl, err := newSmallSystem(seed)
	if err != nil {
		return res, err
	}
	rng := rand.New(rand.NewSource(seed))
	ref := make(map[int64][]byte)
	for b := int64(0); b < ctrl.Rank().Blocks(); b++ {
		data := make([]byte, 64)
		rng.Read(data)
		if err := ctrl.WriteBlockInitial(b, data); err != nil {
			return res, err
		}
		ref[b] = data
	}
	for round := 0; round < rounds; round++ {
		res.Trials++
		ctrl.Rank().InjectRetentionErrors(rber)
		for b := int64(0); b < ctrl.Rank().Blocks(); b++ {
			res.BlocksRead++
			got, err := ctrl.ReadBlock(b)
			if err != nil {
				res.Uncorrectable++
				continue
			}
			if !bytes.Equal(got, ref[b]) {
				res.WrongData++
			}
		}
		// Scrub between rounds so errors do not accumulate unboundedly
		// (the runtime model assumes periodic refresh).
		ctrl.BootScrub()
	}
	res.RSFallbacks = ctrl.Stats().ReadsVLEWFallback
	return res, nil
}

// MonteCarloOutage simulates repeated power outages: each trial injects
// boot-time-level errors (optionally with a chip failure), scrubs, and
// verifies every block.
//chipkill:rankwide
func MonteCarloOutage(rber float64, rounds int, withChipFailure bool, seed int64) (MonteCarloResult, error) {
	res := MonteCarloResult{Scenario: "boot-time outage"}
	if withChipFailure {
		res.Scenario = "boot-time outage + chip failure"
	}
	rng := rand.New(rand.NewSource(seed))
	for round := 0; round < rounds; round++ {
		res.Trials++
		ctrl, err := newSmallSystem(seed + int64(round)*17)
		if err != nil {
			return res, err
		}
		ref := make(map[int64][]byte)
		for b := int64(0); b < ctrl.Rank().Blocks(); b++ {
			data := make([]byte, 64)
			rng.Read(data)
			if err := ctrl.WriteBlockInitial(b, data); err != nil {
				return res, err
			}
			ref[b] = data
		}
		if withChipFailure {
			ctrl.Rank().FailChip(rng.Intn(ctrl.Rank().NumChips()))
		}
		ctrl.Rank().InjectRetentionErrors(rber)
		rep := ctrl.BootScrub()
		if rep.Unrecoverable {
			res.Uncorrectable += ctrl.Rank().Blocks()
			continue
		}
		res.ChipRepairs += int64(len(rep.ChipsRebuilt))
		for b := int64(0); b < ctrl.Rank().Blocks(); b++ {
			res.BlocksRead++
			got, err := ctrl.ReadBlock(b)
			if err != nil {
				res.Uncorrectable++
				continue
			}
			if !bytes.Equal(got, ref[b]) {
				res.WrongData++
			}
		}
	}
	return res, nil
}

// MonteCarloTable renders campaign results.
func MonteCarloTable(results []MonteCarloResult) *stats.Table {
	tab := &stats.Table{Header: []string{"scenario", "trials", "blocks read", "SDC", "DUE", "VLEW fallbacks", "chips rebuilt"}}
	for _, r := range results {
		tab.AddRow(r.Scenario, f("%d", r.Trials), f("%d", r.BlocksRead),
			f("%d", r.WrongData), f("%d", r.Uncorrectable),
			f("%d", r.RSFallbacks), f("%d", r.ChipRepairs))
	}
	return tab
}

// AblationThreshold explores the RS acceptance threshold (Sec V-C's
// design choice): the analytical SDC rate against the VLEW fallback rate
// for t in 0..4 at RBER 2e-4.
func AblationThreshold() *stats.Table {
	tab := &stats.Table{Header: []string{"threshold", "SDC rate", "meets 1e-17", "fallback rate", "read bw overhead"}}
	for t := 0; t <= 4; t++ {
		m := relMiscorrection(t)
		sdc := m.SDCRate()
		fb := relFallback(t)
		meets := "no"
		if sdc <= 1e-17 {
			meets = "yes"
		}
		tab.AddRow(f("%d", t), f("%.1e", sdc), meets,
			f("%.2e", fb), f("%.3f%%", 100*fb*37))
	}
	return tab
}

// TermBValidation empirically validates the appendix's Term B — the
// probability that a noncodeword with nth = d - t errors decodes into a
// (wrong) codeword — against the real Reed-Solomon decoder: inject
// exactly nth random byte errors into RS(72,64) codewords, decode with
// correction capability t, and count miscorrections. For t = 4
// (nth = 5), Term B predicts 2.4e-4.
type TermBValidation struct {
	T             int
	NTh           int
	Trials        int64
	Miscorrected  int64
	Uncorrectable int64
	Predicted     float64
}

// Rate returns the measured miscorrection probability.
func (v TermBValidation) Rate() float64 {
	if v.Trials == 0 {
		return 0
	}
	return float64(v.Miscorrected) / float64(v.Trials)
}

// ValidateTermB runs the campaign for correction capability t.
func ValidateTermB(t int, trials int64, seed int64) (TermBValidation, error) {
	code, err := rs.New(64, 8)
	if err != nil {
		return TermBValidation{}, err
	}
	m := reliability.RSMiscorrection{K: 64, R: 8, T: t, RBER: 2e-4}
	v := TermBValidation{T: t, NTh: m.NTh(), Predicted: m.TermB()}
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, 64)
	for i := int64(0); i < trials; i++ {
		rng.Read(data)
		check := code.Encode(data)
		// Exactly nth distinct byte errors across the 72-byte word.
		for _, p := range rng.Perm(code.N())[:v.NTh] {
			delta := byte(1 + rng.Intn(255))
			if p < code.K() {
				data[p] ^= delta
			} else {
				check[p-code.K()] ^= delta
			}
		}
		corr, derr := code.DecodeLimited(data, check, t)
		switch {
		case derr == nil && len(corr) <= t:
			// The decoder "fixed" the word — onto the wrong codeword.
			v.Miscorrected++
		default:
			v.Uncorrectable++
		}
		v.Trials++
	}
	return v, nil
}

// TermBTable renders validations against the analytical prediction.
func TermBTable(vs []TermBValidation) *stats.Table {
	tab := &stats.Table{Header: []string{"t", "nth", "trials", "miscorrections", "measured Term B", "predicted Term B"}}
	for _, v := range vs {
		tab.AddRow(f("%d", v.T), f("%d", v.NTh), f("%d", v.Trials),
			f("%d", v.Miscorrected), f("%.2e", v.Rate()), f("%.2e", v.Predicted))
	}
	return tab
}
