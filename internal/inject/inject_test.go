package inject

import (
	"encoding/json"
	"testing"
)

// requireSuitePass runs a suite and fails the test with full per-campaign
// detail (including repro commands) on any campaign failure.
func requireSuitePass(t *testing.T, suite string, seed int64) *Report {
	t.Helper()
	rep, err := RunSuite(suite, seed)
	if err != nil {
		t.Fatalf("RunSuite(%q, %d): %v", suite, seed, err)
	}
	for _, cr := range rep.Campaigns {
		t.Logf("%s", cr.Summary())
		if !cr.Pass {
			t.Errorf("campaign %s failed: %s\nrepro: %s", cr.Name, cr.Reason, cr.Repro)
			for _, f := range cr.Failures {
				t.Errorf("  op=%d block=%d kind=%s: %s", f.Op, f.Block, f.Kind, f.Detail)
			}
		}
	}
	return rep
}

// TestSmokeSuite is the short campaign gate that runs under a plain
// `go test ./...`: one campaign per headline fault class, zero SDC/DUE.
func TestSmokeSuite(t *testing.T) {
	rep := requireSuitePass(t, "smoke", 1)
	if rep.TotalSDC != 0 {
		t.Fatalf("smoke suite saw %d SDCs", rep.TotalSDC)
	}
}

// TestStandardSuite is the full acceptance gate, including the paper's
// fallback-rate band. Heavy: skipped in -short mode and under -race (the
// race build runs TestConcurrentCampaign instead).
func TestStandardSuite(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("standard suite is heavy; run without -short/-race")
	}
	rep := requireSuitePass(t, "standard", 1)
	if rep.TotalSDC != 0 {
		t.Fatalf("standard suite saw %d SDCs", rep.TotalSDC)
	}
	if rep.TotalDUE != 0 {
		t.Fatalf("standard suite saw %d DUEs", rep.TotalDUE)
	}
}

// TestEscapeSuite checks the oracle's reason for existing: an OMV
// corrupted below the LLC's ECC yields a consistent codeword for wrong
// data, which only the shadow map can flag — the campaign must report
// SDC with zero DUEs.
func TestEscapeSuite(t *testing.T) {
	rep := requireSuitePass(t, "escape", 1)
	if rep.TotalSDC == 0 {
		t.Fatal("escape suite produced no SDC; the oracle caught nothing")
	}
	if rep.TotalDUE != 0 {
		t.Fatalf("escape suite saw %d DUEs; OMV corruption must be silent", rep.TotalDUE)
	}
}

// TestDeltaCorruptIsCorrected pins the write-path fault model: a one-bit
// corrupted XOR delta leaves the chip internally consistent but off by
// one RS symbol, which the per-block RS corrects on the next read.
func TestDeltaCorruptIsCorrected(t *testing.T) {
	cr := RunCampaign("unit", Campaign{
		Name: "delta-corrupt-unit", Seed: 7,
		Banks: 1, RowsPerBank: 2, RowBytes: 512,
		Ops: 200, WriteFrac: 1.0, OMVHitRate: 1.0,
		Events: []Event{
			{AtOp: 50, Kind: EvDeltaCorrupt},
			{AtOp: 100, Kind: EvDeltaCorrupt},
		},
	})
	if !cr.Pass {
		t.Fatalf("campaign failed: %s", cr.Reason)
	}
	if cr.DeltaCorrupts != 2 {
		t.Fatalf("armed 2 delta corrupts, fired %d", cr.DeltaCorrupts)
	}
	if cr.CorrectedRS == 0 {
		t.Fatal("delta corruption never engaged the RS corrector")
	}
	if cr.SDC != 0 || cr.DUE != 0 {
		t.Fatalf("delta corruption leaked: sdc=%d due=%d", cr.SDC, cr.DUE)
	}
}

// TestCampaignDeterminism re-runs one eventful campaign and requires the
// reports to match counter for counter — the property that makes every
// failure's repro command meaningful.
func TestCampaignDeterminism(t *testing.T) {
	c := Campaign{
		Name: "determinism", Seed: 42,
		Banks: 1, RowsPerBank: 4, RowBytes: 1024,
		Ops: 1500, WriteFrac: 0.4, OMVHitRate: 0.6,
		ScrubWorkers: 4,
		// Note: no delta-corrupt here. A delta-corrupted chip is
		// internally consistent, so it survives boot scrub unseen; a
		// later chip-kill rebuild then does an 8-erasure RS decode with
		// zero error margin and bakes the corruption into a valid-but-
		// wrong codeword — a genuine modeled escape (the paper assumes
		// the chip bus itself is protected), not a campaign to pass.
		Events: []Event{
			{AtOp: 200, Kind: EvDrift, RBER: 1e-4},
			{AtOp: 600, Kind: EvChipKill, Chip: 1},
			{AtOp: 900, Kind: EvCrashReboot, RBER: 5e-4},
		},
	}
	a := RunCampaign("unit", c)
	b := RunCampaign("unit", c)
	a.ElapsedMS, b.ElapsedMS = 0, 0
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("same campaign, same seed, different reports:\n%s\n%s", ja, jb)
	}
	if !a.Pass {
		t.Fatalf("determinism campaign failed: %s", a.Reason)
	}
}

// TestEngineCampaignMatchesSerial pins the engine backend's semantics:
// a campaign driven serially through the sharded engine — with its
// lock-free seqlock read path both enabled and disabled — must produce
// the exact report, counter for counter, that the bare controller
// produces. Same name and seed give identical rng streams; the only
// report fields allowed to differ are the timing and the engine_shards
// tag itself. Seqlock reads folding their stats differently from locked
// reads would show up here as a counter diff.
func TestEngineCampaignMatchesSerial(t *testing.T) {
	c := Campaign{
		Name: "engine-equivalence", Seed: 17,
		Banks: 4, RowsPerBank: 8, RowBytes: 1024,
		Ops: 1500, WriteFrac: 0.4, OMVHitRate: 0.6,
		ScrubWorkers: 2,
		Events: []Event{
			{AtOp: 200, Kind: EvDrift, RBER: 2e-4},
			{AtOp: 600, Kind: EvChipKill, Chip: 1},
			{AtOp: 900, Kind: EvCrashReboot, RBER: 5e-4},
		},
	}
	serial := RunCampaign("unit", c)
	c.EngineShards = 4
	engined := RunCampaign("unit", c)
	c.EngineNoSeqlock = true
	locked := RunCampaign("unit", c)
	c.EngineNoSeqlock = false
	c.EngineBatchWrites = 16
	batched := RunCampaign("unit", c)

	if !serial.Pass {
		t.Fatalf("serial campaign failed: %s", serial.Reason)
	}
	if !engined.Pass {
		t.Fatalf("engine campaign failed: %s", engined.Reason)
	}
	if !locked.Pass {
		t.Fatalf("engine (seqlock off) campaign failed: %s", locked.Reason)
	}
	if !batched.Pass {
		t.Fatalf("engine (batched writes) campaign failed: %s", batched.Reason)
	}
	if engined.SDC != 0 || engined.DUE != 0 {
		t.Fatalf("engine campaign leaked: sdc=%d due=%d", engined.SDC, engined.DUE)
	}
	if batched.SDC != 0 || batched.DUE != 0 {
		t.Fatalf("batched-write campaign leaked: sdc=%d due=%d", batched.SDC, batched.DUE)
	}
	if engined.EngineShards != 4 {
		t.Fatalf("engine report tagged with %d shards, want 4", engined.EngineShards)
	}
	if batched.EngineBatchWrites != 16 {
		t.Fatalf("batched report tagged with %d batch writes, want 16", batched.EngineBatchWrites)
	}
	serial.ElapsedMS, engined.ElapsedMS, locked.ElapsedMS, batched.ElapsedMS = 0, 0, 0, 0
	serial.EngineShards, engined.EngineShards, locked.EngineShards, batched.EngineShards = 0, 0, 0, 0
	batched.EngineBatchWrites = 0
	js, _ := json.Marshal(serial)
	je, _ := json.Marshal(engined)
	jl, _ := json.Marshal(locked)
	jb, _ := json.Marshal(batched)
	if string(js) != string(je) {
		t.Fatalf("engine and serial backends diverged:\nserial: %s\nengine: %s", js, je)
	}
	if string(js) != string(jl) {
		t.Fatalf("seqlock-off engine and serial backends diverged:\nserial: %s\nengine: %s", js, jl)
	}
	if string(js) != string(jb) {
		t.Fatalf("batched-write engine and serial backends diverged:\nserial: %s\nbatched: %s", js, jb)
	}
}

// TestSeedChangesOutcome guards against the engine silently ignoring the
// seed: different seeds must drive different workloads.
func TestSeedChangesOutcome(t *testing.T) {
	c := Campaign{
		Name:  "seed-sensitivity",
		Banks: 1, RowsPerBank: 2, RowBytes: 512,
		Ops: 500, WriteFrac: 0.5, OMVHitRate: 0.5,
		Events: []Event{{AtOp: 0, Kind: EvDrift, RBER: 2e-4}},
	}
	c.Seed = 1
	a := RunCampaign("unit", c)
	c.Seed = 2
	b := RunCampaign("unit", c)
	if a.Writes == b.Writes && a.BitsInjected == b.BitsInjected {
		t.Fatalf("seeds 1 and 2 produced identical workloads (writes=%d bits=%d)", a.Writes, a.BitsInjected)
	}
}

// TestConcurrentCampaign runs a small campaign whose boot scrubs use a
// worker pool while a monitor goroutine hammers Controller.Stats — the
// stats concurrency contract under real campaign load. This is the
// campaign that `make race` exercises with the detector on.
func TestConcurrentCampaign(t *testing.T) {
	cr := RunCampaign("unit", Campaign{
		Name: "concurrent-scrub", Seed: 3,
		Banks: 2, RowsPerBank: 4, RowBytes: 1024,
		Ops: 600, WriteFrac: 0.4, OMVHitRate: 0.7,
		ScrubWorkers: 4, ProbeStatsDuringScrub: true,
		Events: []Event{
			{AtOp: 200, Kind: EvCrashReboot, RBER: 1e-3},
			{AtOp: 400, Kind: EvCrashReboot, RBER: 1e-3},
		},
	})
	if !cr.Pass {
		t.Fatalf("concurrent campaign failed: %s", cr.Reason)
	}
	if cr.Crashes != 2 || cr.Scrubs != 2 {
		t.Fatalf("expected 2 crash/scrub cycles, got crashes=%d scrubs=%d", cr.Crashes, cr.Scrubs)
	}
}

// TestUnknownSuite pins the error path the CLI relies on.
func TestUnknownSuite(t *testing.T) {
	if _, err := Suite("no-such-suite", 1); err == nil {
		t.Fatal("expected an error for an unknown suite")
	}
}

// TestReportExpectations unit-tests finish()'s verdict logic.
func TestReportExpectations(t *testing.T) {
	cases := []struct {
		name string
		rep  CampaignReport
		pass bool
	}{
		{"clean", CampaignReport{Reads: 100}, true},
		{"sdc fails", CampaignReport{Reads: 100, SDC: 1}, false},
		{"due fails by default", CampaignReport{Reads: 100, DUE: 1}, false},
		{"due within budget", CampaignReport{Reads: 100, DUE: 1, Expect: Expect{MaxDUE: 2}}, true},
		{"allow-sdc needs sdc", CampaignReport{Reads: 100, Expect: Expect{AllowSDC: true}}, false},
		{"allow-sdc with sdc", CampaignReport{Reads: 100, SDC: 3, Expect: Expect{AllowSDC: true}}, true},
		{"fallback band low", CampaignReport{Reads: 1000, Fallback: 0,
			Expect: Expect{FallbackRate: &Band{Lo: 0.01, Hi: 0.1}}}, false},
		{"fallback band in", CampaignReport{Reads: 1000, Fallback: 50,
			Expect: Expect{FallbackRate: &Band{Lo: 0.01, Hi: 0.1}}}, true},
		{"min fallback", CampaignReport{Reads: 1000, Fallback: 2, Expect: Expect{MinFallback: 5}}, false},
		{"event failure fails", CampaignReport{Reads: 10,
			Failures: []Failure{{Kind: "event", Detail: "x"}}}, false},
	}
	for _, tc := range cases {
		tc.rep.finish()
		if tc.rep.Pass != tc.pass {
			t.Errorf("%s: pass=%v want %v (reason %q)", tc.name, tc.rep.Pass, tc.pass, tc.rep.Reason)
		}
	}
}

// TestGuardSuite runs the self-healing scenarios: chip-kill under
// concurrent load, crash mid-migration with journal recovery, and a
// transient storm the supervisor must acquit. The concurrent scenario is
// also a race detector target (it runs under `make race`).
func TestGuardSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("guard suite is heavy; run without -short")
	}
	rep := requireSuitePass(t, "guard", 1)
	if rep.TotalSDC != 0 || rep.TotalDUE != 0 {
		t.Fatalf("guard suite saw %d SDCs, %d DUEs", rep.TotalSDC, rep.TotalDUE)
	}
	for _, cr := range rep.Campaigns {
		if cr.Guard == nil {
			t.Fatalf("campaign %s reported no guard summary", cr.Name)
		}
		switch cr.Guard.Scenario {
		case ScenarioChipKillUnderLoad:
			if cr.Guard.OpsDuringMigration == 0 {
				t.Errorf("%s: no traffic overlapped the migration", cr.Name)
			}
		case ScenarioCrashDuringMigration:
			if !cr.Guard.MigrationResumed {
				t.Errorf("%s: journal recovery never resumed", cr.Name)
			}
		case ScenarioTransientStorm:
			if cr.Guard.Verdicts != 0 || cr.Guard.BandsMigrated != 0 {
				t.Errorf("%s: spurious verdict or migration", cr.Name)
			}
		}
	}
}
