// KVStore: a small persistent key-value store running end-to-end on the
// simulated chipkill-protected memory.
//
// The store keeps a fixed-size hash table of 64-byte slots directly in
// persistent-memory blocks, writes through the controller's XOR write
// path (with a small write-combining cache acting as the LLC's OMV
// provider), and survives a crash + power outage + chip failure without
// losing a single committed record.
//
// Run with: go run ./examples/kvstore
package main

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"log"
	"math/rand"

	"chipkillpm/internal/core"
	"chipkillpm/internal/nvram"
	"chipkillpm/internal/rank"
)

// slot layout within one 64B block:
//
//	[0:2]  key length   (0 = empty)
//	[2:4]  value length
//	[4:4+k]    key bytes
//	[4+k:...]  value bytes
const maxPayload = 60

// Store is the persistent hash table.
type Store struct {
	ctrl   *core.Controller
	slots  int64
	omv    *omvCache
	Puts   int64
	Probes int64
}

// omvCache is a tiny write-back view of recently accessed blocks that
// doubles as the controller's OMVProvider — the role the LLC's SAM/OMV
// bits play in hardware.
type omvCache struct {
	values map[int64][]byte
}

func (c *omvCache) OMV(block int64) ([]byte, bool) {
	v, ok := c.values[block]
	return v, ok
}

func (c *omvCache) note(block int64, data []byte) {
	if len(c.values) > 4096 {
		for k := range c.values {
			delete(c.values, k)
			break
		}
	}
	c.values[block] = append([]byte(nil), data...)
}

// NewStore builds the store on a fresh rank.
func NewStore(banks, rows int, seed int64) (*Store, error) {
	r, err := rank.New(rank.PaperConfig(banks, rows, 1024, seed))
	if err != nil {
		return nil, err
	}
	omv := &omvCache{values: map[int64][]byte{}}
	ctrl, err := core.NewController(r, core.DefaultConfig(), omv)
	if err != nil {
		return nil, err
	}
	return &Store{ctrl: ctrl, slots: r.Blocks(), omv: omv}, nil
}

func (s *Store) hash(key string) int64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return int64(h.Sum64() % uint64(s.slots))
}

// Put stores key=value, linear-probing over slots.
func (s *Store) Put(key, value string) error {
	if len(key)+len(value)+4 > 64 {
		return fmt.Errorf("kv: record too large")
	}
	s.Puts++
	for probe := int64(0); probe < s.slots; probe++ {
		b := (s.hash(key) + probe) % s.slots
		s.Probes++
		data, err := s.ctrl.ReadBlock(b)
		if err != nil {
			return err
		}
		k, _ := decode(data)
		if k != "" && k != key {
			continue // occupied by another key
		}
		fresh := make([]byte, 64)
		binary.LittleEndian.PutUint16(fresh[0:2], uint16(len(key)))
		binary.LittleEndian.PutUint16(fresh[2:4], uint16(len(value)))
		copy(fresh[4:], key)
		copy(fresh[4+len(key):], value)
		s.omv.note(b, data) // the "LLC" holds the old memory value
		if err := s.ctrl.WriteBlock(b, fresh); err != nil {
			return err
		}
		s.omv.note(b, fresh)
		return nil
	}
	return fmt.Errorf("kv: store full")
}

// Get fetches a key's value.
func (s *Store) Get(key string) (string, bool, error) {
	for probe := int64(0); probe < s.slots; probe++ {
		b := (s.hash(key) + probe) % s.slots
		data, err := s.ctrl.ReadBlock(b)
		if err != nil {
			return "", false, err
		}
		k, v := decode(data)
		if k == "" {
			return "", false, nil
		}
		if k == key {
			return v, true, nil
		}
	}
	return "", false, nil
}

func decode(data []byte) (key, value string) {
	kl := int(binary.LittleEndian.Uint16(data[0:2]))
	vl := int(binary.LittleEndian.Uint16(data[2:4]))
	if kl == 0 || kl+vl > maxPayload {
		return "", ""
	}
	return string(data[4 : 4+kl]), string(data[4+kl : 4+kl+vl])
}

// main drives the store from a single goroutine, so the simulated
// outage (retention drift, chip kill, boot scrub) sees a quiescent rank.
//
//chipkill:rankwide
func main() {
	log.SetFlags(0)
	store, err := NewStore(2, 32, 2024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kvstore: %d slots on a chipkill-protected PM rank\n\n", store.slots)

	// Load a few thousand records.
	rng := rand.New(rand.NewSource(5))
	ref := map[string]string{}
	for i := 0; i < 3000; i++ {
		key := fmt.Sprintf("user:%05d", rng.Intn(10000))
		val := fmt.Sprintf("balance=%d", rng.Intn(1_000_000))
		if err := store.Put(key, val); err != nil {
			log.Fatal(err)
		}
		ref[key] = val
	}
	fmt.Printf("loaded %d unique keys (%d puts, %.2f probes/put)\n",
		len(ref), store.Puts, float64(store.Probes)/float64(store.Puts))

	// Crash: power is lost for a month; a chip dies on the way down.
	rank := store.ctrl.Rank()
	rber := nvram.ReRAM.RBER(nvram.Month)
	flips := rank.InjectRetentionErrors(rber)
	rank.FailChip(2)
	fmt.Printf("\nCRASH: one month dark (ReRAM RBER %.1e, %d bits flipped), chip 2 dead\n", rber, flips)

	// Reboot: scrub, then verify every record.
	rep := store.ctrl.BootScrub()
	fmt.Printf("reboot: %s\n", rep)
	if rep.Unrecoverable {
		log.Fatal("unrecoverable")
	}

	for key, want := range ref {
		got, ok, err := store.Get(key)
		if err != nil {
			log.Fatalf("get %q: %v", key, err)
		}
		if !ok || got != want {
			log.Fatalf("get %q: got %q ok=%v, want %q", key, got, ok, want)
		}
	}
	fmt.Printf("verified: all %d records intact after crash + chip failure\n", len(ref))
	st := store.ctrl.Stats()
	fmt.Printf("controller: %d reads (%d RS-corrected, %d VLEW fallbacks), %d writes (%d OMV hits)\n",
		st.Reads, st.ReadsRSCorrected, st.ReadsVLEWFallback, st.Writes, st.OMVHits)
}
