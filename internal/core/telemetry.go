package core

// Per-chip error telemetry feeding the health supervisor (internal/guard).
//
// The runtime paths already know which chip each correction or failure
// touched: an accepted RS correction names the symbol position (and thus
// the chip), a VLEW fallback names the chip whose word failed to decode,
// and an erasure reconstruction names the chip that was erased. The
// controller attributes each such event to its chip so a supervisor can
// tell "one chip is dying" from "background drift everywhere" — the online
// profiling HARP argues for, without any offline fault model.

// ChipTelemetry counts error events attributed to one chip.
type ChipTelemetry struct {
	// RSCorrections counts symbols of this chip corrected by accepted
	// opportunistic RS decodes on the runtime read path.
	RSCorrections int64
	// VLEWFailures counts VLEW decode failures of this chip on the
	// fallback path and patrol scrub — the strongest chip-kill signal,
	// since a healthy chip's VLEW decodes through up to 22 bit errors.
	VLEWFailures int64
	// ErasureRepairs counts blocks whose slice on this chip was
	// reconstructed via RS erasure after its VLEW failed.
	ErasureRepairs int64
	// FailedAccesses mirrors nvram.Chip's count of reads served while the
	// chip was marked failed. It is filled at snapshot time from the chip
	// itself (an absolute counter, not a controller-side delta); Add
	// deliberately keeps the receiver's value instead of summing, so
	// aggregating per-shard snapshots over the same rank does not
	// double-count it.
	FailedAccesses int64
}

// Telemetry is a snapshot of per-chip error attribution plus rank-level
// detected-but-uncorrectable totals.
//
// Concurrency: demand paths mutate the controller's telemetry without
// locking (single-owner contract); scrubs publish batched deltas under the
// stats lock. Telemetry() snapshots under the same lock and so may run
// concurrently with scrubs but not with demand traffic — exactly the
// Stats contract.
type Telemetry struct {
	Chips []ChipTelemetry
	// DUEs counts detected-but-uncorrectable reads (rank-level: by the
	// time a read is declared dead, more than one chip is implicated).
	DUEs int64
}

// Add accumulates o into t chip by chip. FailedAccesses is snapshot-level
// (see ChipTelemetry) and is kept from the receiver, except when the
// receiver has no chips yet (a zero-value accumulator adopting its first
// snapshot).
func (t *Telemetry) Add(o Telemetry) {
	adopt := len(t.Chips) == 0
	if adopt {
		t.Chips = make([]ChipTelemetry, len(o.Chips))
	}
	for i := range o.Chips {
		t.Chips[i].RSCorrections += o.Chips[i].RSCorrections
		t.Chips[i].VLEWFailures += o.Chips[i].VLEWFailures
		t.Chips[i].ErasureRepairs += o.Chips[i].ErasureRepairs
		if adopt {
			t.Chips[i].FailedAccesses = o.Chips[i].FailedAccesses
		}
	}
	t.DUEs += o.DUEs
}

// Delta returns t minus prev, the event counts accrued between two
// snapshots — the supervisor's per-tick observation window.
func (t Telemetry) Delta(prev Telemetry) Telemetry {
	d := Telemetry{Chips: make([]ChipTelemetry, len(t.Chips)), DUEs: t.DUEs - prev.DUEs}
	for i := range t.Chips {
		d.Chips[i] = t.Chips[i]
		if i < len(prev.Chips) {
			d.Chips[i].RSCorrections -= prev.Chips[i].RSCorrections
			d.Chips[i].VLEWFailures -= prev.Chips[i].VLEWFailures
			d.Chips[i].ErasureRepairs -= prev.Chips[i].ErasureRepairs
			d.Chips[i].FailedAccesses -= prev.Chips[i].FailedAccesses
		}
	}
	return d
}

// Total returns the sum of the chip's controller-side event counts; a
// quick "anything wrong with this chip?" scalar.
func (ct ChipTelemetry) Total() int64 {
	return ct.RSCorrections + ct.VLEWFailures + ct.ErasureRepairs
}

// Telemetry returns a snapshot of the controller's per-chip error
// attribution, with FailedAccesses filled from the chips' own atomic
// counters. Same concurrency contract as Stats: safe against scrubs, not
// against demand traffic.
func (c *Controller) Telemetry() Telemetry {
	c.statsMu.Lock()
	t := Telemetry{Chips: append([]ChipTelemetry(nil), c.tel.Chips...), DUEs: c.tel.DUEs}
	c.statsMu.Unlock()
	for i := range t.Chips {
		t.Chips[i].FailedAccesses = c.rank.Chip(i).Stats().FailedAccesses
	}
	return t
}

// addTelemetry publishes a batched telemetry delta under the stats lock;
// patrol scrub uses it so supervisors can snapshot concurrently.
func (c *Controller) addTelemetry(d Telemetry) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	c.tel.Add(d)
}

// chipOfSymbol maps an RS symbol position within a block codeword to the
// chip that stores it: data symbols sit on data chips in 8-byte runs,
// check symbols on the parity chip.
func (c *Controller) chipOfSymbol(pos int) int {
	if pos < c.rank.Config().BlockBytes() {
		return pos / c.rank.Config().ChipAccessBytes
	}
	return c.rank.ParityChipIndex()
}
