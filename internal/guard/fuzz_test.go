package guard

import (
	"bytes"
	"testing"
)

// buildSeedJournal returns region bytes holding a start record, two band
// records, and optionally a done record — the happy-path shape the fuzzer
// mutates from.
func buildSeedJournal(t *testing.F, done bool) []byte {
	t.Helper()
	reg := NewRegion(2048)
	j, _, err := Open(reg)
	if err != nil {
		t.Fatal(err)
	}
	j.SavePatrol(12)
	j.SavePatrol(34)
	if err := j.AppendStart(4); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendBand(0, bytes.Repeat([]byte{0x11}, 64)); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendBand(1, bytes.Repeat([]byte{0x22}, 64)); err != nil {
		t.Fatal(err)
	}
	if done {
		if err := j.AppendDone(); err != nil {
			t.Fatal(err)
		}
	}
	return reg.Bytes()
}

// FuzzJournalDecode feeds arbitrary bytes to the journal recovery scan.
// Whatever the bytes, Open must not panic, must recover an internally
// consistent state, must be idempotent, and must leave the journal
// positioned so that appending still round-trips.
func FuzzJournalDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(buildSeedJournal(f, false))
	f.Add(buildSeedJournal(f, true))
	// A valid journal with a torn tail.
	torn := append([]byte{}, buildSeedJournal(f, false)...)
	torn = torn[:len(torn)-300]
	f.Add(torn)

	f.Fuzz(func(t *testing.T, data []byte) {
		buf := make([]byte, logStart+len(data))
		copy(buf, data) // short inputs land in the patrol slots, zero-padded log
		reg := &Region{buf: buf, tearAt: -1}

		j, rec, err := Open(reg)
		if err != nil {
			t.Fatalf("Open on padded region: %v", err)
		}

		// Consistency invariants of the recovered state.
		if rec.Active && rec.Done {
			t.Fatal("recovered both active and done")
		}
		if rec.LastBand >= 0 && !rec.Active && !rec.Done {
			t.Fatal("recovered a band outside any migration")
		}
		if rec.LastBand < 0 && len(rec.BandWAL) != 0 {
			t.Fatal("recovered a WAL without a band")
		}
		if (rec.Active || rec.Done) && (rec.Chip < 0 || rec.Chip > 255) {
			t.Fatalf("recovered chip %d out of range", rec.Chip)
		}

		// Idempotence: a second scan of the same bytes agrees.
		_, rec2, err := Open(reg)
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		if rec.Active != rec2.Active || rec.Done != rec2.Done ||
			rec.Chip != rec2.Chip || rec.LastBand != rec2.LastBand ||
			!bytes.Equal(rec.BandWAL, rec2.BandWAL) ||
			rec.PatrolPos != rec2.PatrolPos {
			t.Fatalf("Open not idempotent: %+v vs %+v", rec, rec2)
		}

		// The journal must still be appendable past whatever it salvaged:
		// an append either reports ErrJournalFull or is recovered verbatim
		// by the next scan.
		var appendErr error
		if rec.Active {
			appendErr = j.AppendDone()
		} else if !rec.Done {
			appendErr = j.AppendStart(9)
		}
		if appendErr == nil && !rec.Done {
			_, rec3, err := Open(reg)
			if err != nil {
				t.Fatalf("Open after append: %v", err)
			}
			switch {
			case rec.Active:
				if !rec3.Done || rec3.Chip != rec.Chip || rec3.LastBand != rec.LastBand {
					t.Fatalf("appended done not recovered: %+v -> %+v", rec, rec3)
				}
			default:
				if !rec3.Active || rec3.Chip != 9 {
					t.Fatalf("appended start not recovered: %+v -> %+v", rec, rec3)
				}
			}
		}

		// Patrol saves survive arbitrary pre-existing garbage: two saves
		// overwrite both slots, so one of them must win (4243 unless the
		// salvaged sequence number sits at the u64 wrap).
		j.SavePatrol(4242)
		j.SavePatrol(4243)
		if _, recP, _ := Open(reg); recP.PatrolPos != 4242 && recP.PatrolPos != 4243 {
			t.Fatalf("patrol pos %d after save, want 4242 or 4243", recP.PatrolPos)
		}
	})
}
