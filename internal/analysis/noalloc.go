package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc enforces the zero-alloc read-chain contract: a function whose
// doc comment carries //chipkill:noalloc must not contain allocating
// constructs, transitively through every statically resolvable callee.
// Before this analyzer the guarantee hung on two AllocsPerRun benchmark
// pins (internal/rank and internal/engine); those still gate the end
// result, but this catches the exact construct at the exact line, in
// every caller, on every build.
//
// Rules, per annotated function body (and, through allocation facts,
// every callee's body):
//
//   - make / new / append, slice, map and pointer composite literals
//   - non-constant string concatenation and string<->[]byte/[]rune
//     conversions
//   - interface boxing of non-pointer values (explicit conversions,
//     assignments, returns, and arguments to interface parameters)
//   - closures, bound-method values, and go statements
//   - fmt calls, dynamic (interface or func-value) calls, and calls to
//     any function whose allocation behaviour is unknown or allocating
//
// Allocations that only feed a panic call are ignored: a panicking
// process has no allocation budget to protect. Callees that are
// themselves annotated //chipkill:noalloc are trusted here and checked
// at their own declaration. Intentional cold-path allocations take a
// //chipkill:allow noalloc <reason> on the offending line.
var NoAlloc = &Analyzer{
	Name:          "noalloc",
	Doc:           "reject allocating constructs in //chipkill:noalloc functions, transitively",
	SkipTestFiles: true,
	Run:           runNoAlloc,
}

// funcFact is the cross-package allocation summary of one function.
type funcFact struct {
	known     bool
	allocates bool
	noalloc   bool // annotated //chipkill:noalloc
	reason    string
}

// safeAllocPkgs are stdlib packages whose exported API never allocates.
var safeAllocPkgs = map[string]bool{
	"sync/atomic": true,
	"math/bits":   true,
	"math":        true,
}

// safeAllocFuncs are individually vetted non-allocating stdlib
// functions, keyed by symbolKey.
var safeAllocFuncs = map[string]bool{
	"sync.Mutex.Lock":      true,
	"sync.Mutex.Unlock":    true,
	"sync.Mutex.TryLock":   true,
	"sync.RWMutex.Lock":    true,
	"sync.RWMutex.Unlock":  true,
	"sync.RWMutex.RLock":   true,
	"sync.RWMutex.RUnlock": true,
	"math/rand.Rand.Read":  true,
	"math/rand.Rand.Int63": true,
	"math/rand.Rand.Int63n": true,
	"math/rand.Rand.Intn":   true,
	"math/rand.Rand.Uint64": true,
	"math/rand.Rand.Float64": true,
	"math/rand.Rand.NormFloat64": true,
	"errors.Is":                  true,
	// encoding/binary's byte-order accessors are pure loads/stores; the
	// package's reflective Read/Write are deliberately NOT listed.
	"encoding/binary.littleEndian.Uint16":    true,
	"encoding/binary.littleEndian.Uint32":    true,
	"encoding/binary.littleEndian.Uint64":    true,
	"encoding/binary.littleEndian.PutUint16": true,
	"encoding/binary.littleEndian.PutUint32": true,
	"encoding/binary.littleEndian.PutUint64": true,
	"encoding/binary.bigEndian.Uint16":       true,
	"encoding/binary.bigEndian.Uint32":       true,
	"encoding/binary.bigEndian.Uint64":       true,
	"encoding/binary.bigEndian.PutUint16":    true,
	"encoding/binary.bigEndian.PutUint32":    true,
	"encoding/binary.bigEndian.PutUint64":    true,
}

// allocSite is one allocating construct found in a body.
type allocSite struct {
	pos token.Pos
	msg string
}

// callRef is one statically resolved call out of a body.
type callRef struct {
	pos token.Pos
	fn  *types.Func
}

// allocSummary is the walk result for one function body.
type allocSummary struct {
	sites []allocSite
	calls []callRef
}

// suite-wide storage of per-declaration summaries, filled during fact
// computation and consumed by runNoAlloc.
type declKey struct {
	pkg  *Package
	decl *ast.FuncDecl
}

func (s *Suite) summaries() map[declKey]*allocSummary {
	if s.allocSummaries == nil {
		s.allocSummaries = map[declKey]*allocSummary{}
	}
	return s.allocSummaries
}

// allocLocal pairs one summarised declaration with its fact key, queued
// for the suite-wide fixpoint.
type allocLocal struct {
	key     string
	summary *allocSummary
}

// collectAllocFacts summarises every function body in pkg and seeds its
// facts (annotation, direct allocation sites). Propagation through calls
// happens afterwards in propagateAllocFacts, once every package has been
// summarised — go list's output interleaves test variants with their
// importers, so no single-pass order has callee facts ready.
func collectAllocFacts(s *Suite, pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			sum := summarizeAllocs(pkg, fd, fn)
			key := symbolKey(fn)
			s.summaries()[declKey{pkg, fd}] = sum
			fact := funcFact{known: true, noalloc: pkg.dirs.markedDecl("noalloc", fd)}
			if len(sum.sites) > 0 {
				fact.allocates = true
				fact.reason = sum.sites[0].msg
			}
			s.facts[key] = fact
			s.allocLocals = append(s.allocLocals, allocLocal{key, sum})
		}
	}
}

// propagateAllocFacts spreads "allocates" through static calls until
// stable. The fact only ever flips one way, so this terminates.
func (s *Suite) propagateAllocFacts() {
	for changed := true; changed; {
		changed = false
		for _, l := range s.allocLocals {
			f := s.facts[l.key]
			if f.allocates {
				continue
			}
			for _, call := range l.summary.calls {
				if reason, bad := s.callAllocates(call.fn); bad {
					f.allocates = true
					f.reason = reason
					s.facts[l.key] = f
					changed = true
					break
				}
			}
		}
	}
}

// callAllocates reports whether calling fn may allocate, with a reason.
// Annotated //chipkill:noalloc callees are trusted (their violations are
// reported at their own declaration).
func (s *Suite) callAllocates(fn *types.Func) (string, bool) {
	key := symbolKey(fn)
	if fact, ok := s.facts[key]; ok && fact.known {
		if fact.noalloc {
			return "", false
		}
		if fact.allocates {
			return fmt.Sprintf("calls %s, which allocates (%s)", key, fact.reason), true
		}
		return "", false
	}
	if fn.Pkg() != nil && safeAllocPkgs[fn.Pkg().Path()] {
		return "", false
	}
	if safeAllocFuncs[key] {
		return "", false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return fmt.Sprintf("calls %s, which allocates", key), true
	}
	return fmt.Sprintf("calls %s, whose allocation behaviour is unknown", key), true
}

func runNoAlloc(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !pass.Pkg.dirs.markedDecl("noalloc", fd) {
				continue
			}
			sum := pass.Suite.summaries()[declKey{pass.Pkg, fd}]
			if sum == nil {
				continue
			}
			for _, site := range sum.sites {
				pass.Reportf(site.pos, "%s in //chipkill:noalloc function %s", site.msg, fd.Name.Name)
			}
			for _, call := range sum.calls {
				if reason, bad := pass.Suite.callAllocates(call.fn); bad {
					pass.Reportf(call.pos, "//chipkill:noalloc function %s %s", fd.Name.Name, reason)
				}
			}
		}
	}
}

// summarizeAllocs walks one function body collecting allocating
// constructs and outgoing calls. Nodes inside panic arguments are
// skipped entirely.
func summarizeAllocs(pkg *Package, fd *ast.FuncDecl, fn *types.Func) *allocSummary {
	info := pkg.Info
	sum := &allocSummary{}

	// Pre-pass: spans of panic arguments (skipped), and the set of
	// selector/ident nodes that are the function position of a call
	// (so method *values* can be told apart from method calls).
	var panicSpans [][2]token.Pos
	callFun := map[ast.Expr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := ast.Unparen(call.Fun)
		callFun[fun] = true
		if id, ok := fun.(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" && len(call.Args) == 1 {
				panicSpans = append(panicSpans, [2]token.Pos{call.Args[0].Pos(), call.Args[0].End()})
			}
		}
		return true
	})
	inPanic := func(pos token.Pos) bool {
		for _, sp := range panicSpans {
			if sp[0] <= pos && pos < sp[1] {
				return true
			}
		}
		return false
	}
	site := func(pos token.Pos, format string, args ...any) {
		if !inPanic(pos) {
			sum.sites = append(sum.sites, allocSite{pos, fmt.Sprintf(format, args...)})
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if inPanic(n.Pos()) {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			site(n.Pos(), "go statement allocates a goroutine")
		case *ast.FuncLit:
			site(n.Pos(), "closure may allocate (captured variables escape)")
			return false // inner body belongs to the closure, not this function
		case *ast.CompositeLit:
			t := info.Types[n].Type
			switch t.Underlying().(type) {
			case *types.Slice:
				site(n.Pos(), "slice literal allocates")
			case *types.Map:
				site(n.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					site(n.Pos(), "&composite literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := info.Types[n]; ok && tv.Value == nil {
					if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
						site(n.Pos(), "string concatenation allocates")
					}
				}
			}
		case *ast.SelectorExpr:
			if !callFun[n] {
				if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal {
					site(n.Pos(), "bound-method value allocates")
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if len(n.Lhs) == len(n.Rhs) {
					if lt, ok := info.Types[n.Lhs[i]]; ok {
						checkBoxing(info, sum, lt.Type, rhs, inPanic)
					}
				}
			}
		case *ast.ReturnStmt:
			sig, _ := fn.Type().(*types.Signature)
			if sig != nil && sig.Results().Len() == len(n.Results) {
				for i, res := range n.Results {
					checkBoxing(info, sum, sig.Results().At(i).Type(), res, inPanic)
				}
			}
		case *ast.CallExpr:
			summarizeCall(pkg, sum, n, site, inPanic)
		}
		return true
	})
	return sum
}

// summarizeCall classifies one call expression: builtin, conversion,
// static call (recorded for fact lookup), or dynamic call (flagged).
func summarizeCall(pkg *Package, sum *allocSummary, call *ast.CallExpr, site func(token.Pos, string, ...any), inPanic func(token.Pos) bool) {
	info := pkg.Info
	fun := ast.Unparen(call.Fun)

	// Conversions: T(x).
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		to := tv.Type
		if len(call.Args) == 1 {
			from := info.Types[call.Args[0]].Type
			switch {
			case isString(to) && (isByteSlice(from) || isRuneSlice(from)):
				site(call.Pos(), "string(%s) conversion allocates", from)
			case (isByteSlice(to) || isRuneSlice(to)) && isString(from):
				site(call.Pos(), "%s(string) conversion allocates", to)
			case types.IsInterface(to.Underlying()):
				if from != nil && !isPointerShaped(from) && !types.IsInterface(from.Underlying()) {
					site(call.Pos(), "conversion to interface boxes non-pointer %s", from)
				}
			}
		}
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				site(call.Pos(), "make allocates")
			case "new":
				site(call.Pos(), "new allocates")
			case "append":
				site(call.Pos(), "append may grow its backing array")
			case "print", "println":
				site(call.Pos(), "%s allocates", b.Name())
			}
			return
		}
	}

	// Static callee: record for transitive fact lookup, and check
	// arguments passed into interface parameters for boxing.
	if fn := calleeOf(info, call); fn != nil {
		if !inPanic(call.Pos()) {
			sum.calls = append(sum.calls, callRef{call.Pos(), fn})
		}
		if sig, ok := fn.Type().(*types.Signature); ok {
			checkArgBoxing(info, sum, sig, call, inPanic)
		}
		return
	}
	site(call.Pos(), "dynamic call (interface method or function value) has unknown allocation behaviour")
}

// checkArgBoxing flags non-pointer concrete arguments passed to
// interface parameters.
func checkArgBoxing(info *types.Info, sum *allocSummary, sig *types.Signature, call *ast.CallExpr, inPanic func(token.Pos) bool) {
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil {
			checkBoxing(info, sum, pt, arg, inPanic)
		}
	}
}

// checkBoxing flags storing a non-pointer concrete value into an
// interface-typed destination.
func checkBoxing(info *types.Info, sum *allocSummary, dst types.Type, src ast.Expr, inPanic func(token.Pos) bool) {
	if dst == nil || !types.IsInterface(dst.Underlying()) || inPanic(src.Pos()) {
		return
	}
	tv, ok := info.Types[src]
	if !ok || tv.Type == nil || tv.IsNil() {
		return
	}
	from := tv.Type
	if types.IsInterface(from.Underlying()) || isPointerShaped(from) {
		return
	}
	sum.sites = append(sum.sites, allocSite{src.Pos(),
		fmt.Sprintf("interface boxing of non-pointer %s", from)})
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Rune
}

// isPointerShaped reports whether values of t fit an interface's data
// word without heap allocation.
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}
