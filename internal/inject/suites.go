package inject

import "fmt"

// paperFallbackBand bounds the measured VLEW-fallback rate at the runtime
// RBER of 2e-4 to within 2x of the paper's ~0.018% (Sec V-C): with one
// byte per RS symbol, P[>2 bad symbols in a 72-symbol block] ~= 2.3e-4.
var paperFallbackBand = Band{Lo: 0.9e-4, Hi: 3.6e-4}

// SuiteNames lists the named suites in presentation order.
func SuiteNames() []string {
	return []string{"smoke", "standard", "guard", "fleet", "soak", "escape"}
}

// SuiteDescription returns the one-line summary -list prints for a suite.
func SuiteDescription(name string) string {
	switch name {
	case "smoke":
		return "seconds-scale gate: one campaign per headline mechanism"
	case "standard":
		return "acceptance gate: every claimed fault class at runtime RBERs"
	case "guard":
		return "self-healing runtime: supervisor detect/convict/migrate in the loop"
	case "fleet":
		return "multi-rank fleet: replication, rank kills, repair-from-replica"
	case "soak":
		return "deep campaigns kept out of the default run (full kill matrix)"
	case "escape":
		return "documented trust boundary: the one fault the scheme cannot see"
	default:
		return ""
	}
}

// Suite returns the campaign list for a named suite, parameterised by the
// base seed (each campaign further mixes in its own name).
func Suite(name string, seed int64) ([]Campaign, error) {
	switch name {
	case "smoke":
		return smokeSuite(seed), nil
	case "standard":
		return standardSuite(seed), nil
	case "guard":
		return guardSuite(seed), nil
	case "fleet":
		return fleetSuite(seed), nil
	case "soak":
		return soakSuite(seed), nil
	case "escape":
		return escapeSuite(seed), nil
	default:
		return nil, fmt.Errorf("inject: unknown suite %q (have %v)", name, SuiteNames())
	}
}

// smokeSuite is the seconds-scale gate run under `go test ./...`, `make
// check`, and CI: one campaign per headline mechanism.
func smokeSuite(seed int64) []Campaign {
	return []Campaign{
		{
			Name:        "smoke-drift",
			Description: "runtime drift at the top RBER: byte-exact reads, zero DUEs",
			Seed:        seed,
			Ops:         2000, WriteFrac: 0.3, OMVHitRate: 0.7,
			Events: []Event{
				{AtOp: 0, Kind: EvDrift, RBER: 2e-4},
			},
		},
		{
			Name:        "smoke-chipkill",
			Description: "whole-chip kill mid-run: RS erasure reads, no lost writes",
			Seed:        seed,
			Banks:       1, RowsPerBank: 4, RowBytes: 1024,
			Ops: 1000, WriteFrac: 0.3, OMVHitRate: 0.7,
			Events: []Event{
				{AtOp: 300, Kind: EvDrift, RBER: 7e-5},
				{AtOp: 300, Kind: EvChipKill, Chip: 2},
			},
		},
		{
			Name:         "smoke-drift-engine",
			Description:  "the drift campaign through the sharded engine backend",
			Seed:         seed,
			EngineShards: 2,
			Ops:          2000, WriteFrac: 0.3, OMVHitRate: 0.7,
			Events: []Event{
				{AtOp: 0, Kind: EvDrift, RBER: 2e-4},
			},
		},
		{
			Name:        "smoke-crash",
			Description: "crash/reboot: outage drift, BootScrub, byte-exact persistence",
			Seed:        seed,
			Ops:         600, WriteFrac: 0.4, OMVHitRate: 0.7,
			Events: []Event{
				{AtOp: 400, Kind: EvCrashReboot, RBER: 1e-3},
			},
		},
	}
}

// standardSuite is the acceptance gate: every fault class the scheme
// claims to handle, at runtime RBERs, with the fallback-rate check pinned
// to the paper's number.
func standardSuite(seed int64) []Campaign {
	// Each fallback round: fresh drift at the runtime RBER, a classified
	// sweep, then a refresh (boot scrub) so rounds are independent.
	fallbackRounds := 16
	var fallbackEvents []Event
	for i := 0; i < fallbackRounds; i++ {
		fallbackEvents = append(fallbackEvents,
			Event{Kind: EvDrift, RBER: 2e-4},
			Event{Kind: EvSweep},
			Event{Kind: EvBootScrub},
		)
	}
	return []Campaign{
		{
			Name:        "runtime-drift-low",
			Description: "low runtime RBER: reads almost entirely clean or RS-corrected",
			Seed:        seed,
			Ops:         4000, WriteFrac: 0.3, OMVHitRate: 0.7,
			Events: []Event{
				{AtOp: 0, Kind: EvDrift, RBER: 7e-5},
				{AtOp: 2000, Kind: EvDrift, RBER: 7e-5},
			},
		},
		{
			Name:        "fallback-rate",
			Description: "VLEW-fallback rate pinned within 2x of the paper's ~0.018%",
			Seed:        seed,
			Banks:       4, RowsPerBank: 16, RowBytes: 1024,
			Ops:    0,
			Events: fallbackEvents,
			Expect: Expect{FallbackRate: &paperFallbackBand, MinFallback: 10},
		},
		{
			Name:        "write-stress",
			Description: "XOR-delta bus faults plus targeted data/code/parity flips",
			Seed:        seed,
			Ops:         6000, WriteFrac: 0.5, OMVHitRate: 0.6,
			Events: []Event{
				{AtOp: 500, Kind: EvDeltaCorrupt},
				{AtOp: 1500, Kind: EvDeltaCorrupt},
				{AtOp: 2500, Kind: EvDeltaCorrupt},
				{AtOp: 3000, Kind: EvDrift, RBER: 7e-5},
				{AtOp: 3500, Kind: EvDeltaCorrupt},
				{AtOp: 4000, Kind: EvFlip, Region: RegionData, Chip: ChipRandom, Bits: 12},
				{AtOp: 4500, Kind: EvFlip, Region: RegionCode, Chip: ChipRandom, Bits: 12},
				{AtOp: 5000, Kind: EvFlip, Region: RegionParity, Bits: 8},
				{AtOp: 5500, Kind: EvDeltaCorrupt},
			},
		},
		{
			Name:        "crash-reboot",
			Description: "two crash cycles with a parallel scrub pool and stats monitor",
			Seed:        seed,
			Ops:         3000, WriteFrac: 0.4, OMVHitRate: 0.7,
			ScrubWorkers: 4, ProbeStatsDuringScrub: true,
			Events: []Event{
				{AtOp: 1000, Kind: EvCrashReboot, RBER: 1e-3},
				{AtOp: 2000, Kind: EvCrashReboot, RBER: 1e-3},
			},
		},
		{
			Name:        "chipkill-runtime",
			Description: "chip kill with drift present: every later read erasure-decodes",
			Seed:        seed,
			Banks:       1, RowsPerBank: 8, RowBytes: 1024,
			Ops: 2500, WriteFrac: 0.3, OMVHitRate: 0.7,
			Events: []Event{
				{AtOp: 500, Kind: EvDrift, RBER: 7e-5},
				{AtOp: 1000, Kind: EvChipKill, Chip: 2},
			},
		},
		{
			Name:        "chipkill-rebuild",
			Description: "chip kill then crash: reboot scrub rebuilds the dead chip",
			Seed:        seed,
			Ops:         2000, WriteFrac: 0.3, OMVHitRate: 0.7,
			Events: []Event{
				{AtOp: 800, Kind: EvChipKill, Chip: 5},
				{AtOp: 1400, Kind: EvCrashReboot, RBER: 3e-4},
			},
		},
		{
			Name:        "parity-kill",
			Description: "parity-chip kill: data survives, reboot re-encodes the parity",
			Seed:        seed,
			Ops:         1500, WriteFrac: 0.3, OMVHitRate: 0.7,
			Events: []Event{
				{AtOp: 500, Kind: EvChipKill, Chip: ChipParity},
				{AtOp: 1000, Kind: EvCrashReboot, RBER: 1e-4},
			},
		},
		{
			Name:        "degraded-mode",
			Description: "Sec V-E remapped mode serving reads and writes under drift",
			Seed:        seed,
			Banks:       1, RowsPerBank: 4, RowBytes: 512,
			Ops: 2000, WriteFrac: 0.3, OMVHitRate: 0.5,
			Events: []Event{
				{AtOp: 600, Kind: EvChipKill, Chip: 3},
				{AtOp: 600, Kind: EvEnterDegraded, Chip: 3},
				{AtOp: 1200, Kind: EvDrift, RBER: 7e-5},
			},
		},
	}
}

// guardSuite exercises the self-healing runtime: the internal/guard
// supervisor detecting and repairing faults in the loop, with the oracle
// holding it to zero SDC and zero lost writes.
func guardSuite(seed int64) []Campaign {
	return []Campaign{
		{
			Name:        "guard-chipkill-load",
			Description: "chip dies under live traffic; online conviction and migration",
			Seed:        seed,
			Banks:       4, RowsPerBank: 8, RowBytes: 1024,
			Ops: 200, WriteFrac: 0.3, OMVHitRate: 0.7,
			Guard: &GuardSpec{Scenario: ScenarioChipKillUnderLoad, Workers: 4, KillChip: 2},
		},
		{
			Name:        "guard-crash-migration",
			Description: "journal write tears mid-migration; reboot resumes and finishes",
			Seed:        seed,
			Ops:         0, WriteFrac: 0.3, OMVHitRate: 0.7,
			Guard: &GuardSpec{Scenario: ScenarioCrashDuringMigration, KillChip: 1, CrashAfterBands: 8},
		},
		{
			Name:        "guard-transient-storm",
			Description: "telemetry storm from a healthy chip; probes must acquit",
			Seed:        seed,
			Ops:         0, WriteFrac: 0.3, OMVHitRate: 0.7,
			Guard: &GuardSpec{Scenario: ScenarioTransientStorm, StormChip: 3},
		},
	}
}

// fleetSuite drives the multi-rank fleet: replication placement, whole-
// rank kills under load, telemetry-directed replication feeding
// repair-from-replica, anti-entropy, and the double-fault matrix. Every
// campaign holds the fleet to zero SDC and zero unreported DUEs —
// rank-scale losses must surface as the typed contained failure.
func fleetSuite(seed int64) []Campaign {
	return []Campaign{
		{
			Name:        "fleet-rank-kill",
			Description: "whole-rank kill: replicated bands fail over, the rest contain",
			Seed:        seed,
			RowsPerBank: 4,
			Ops:         800, WriteFrac: 0.3,
			Fleet: &FleetSpec{Scenario: ScenarioFleetRankKill},
		},
		{
			Name:        "fleet-rank-kill-load",
			Description: "rank kill under concurrent demand: no acked write lost",
			Seed:        seed,
			RowsPerBank: 4,
			Ops:         0, WriteFrac: 0.3,
			Fleet: &FleetSpec{Scenario: ScenarioFleetRankKillLoad},
		},
		{
			Name:        "fleet-chip-repair",
			Description: "telemetry-led replication, then chip conviction repaired from replicas",
			Seed:        seed,
			RowsPerBank: 4,
			Ops:         0, WriteFrac: 0.3,
			Fleet: &FleetSpec{Scenario: ScenarioFleetChipRepair},
		},
		{
			Name:        "fleet-replica-divergence",
			Description: "silently diverged replicas healed by anti-entropy, proven by failover",
			Seed:        seed,
			RowsPerBank: 4,
			Ops:         0, WriteFrac: 0.3,
			Fleet: &FleetSpec{Scenario: ScenarioFleetDivergence},
		},
		{
			Name:        "fleet-kill-during-repair",
			Description: "replica rank dies mid-chip-repair; erasure fallback finishes it",
			Seed:        seed,
			RowsPerBank: 4,
			Ops:         0, WriteFrac: 0.3,
			Fleet: &FleetSpec{Scenario: ScenarioFleetKillMidRepair},
		},
		{
			Name:        "fleet-double-fault",
			Description: "one chip down on each of two ranks; both repair via the other",
			Seed:        seed,
			RowsPerBank: 4,
			Ops:         0, WriteFrac: 0.3,
			Fleet: &FleetSpec{Scenario: ScenarioFleetDoubleFault, Ranks: 2},
		},
	}
}

// escapeSuite demonstrates the scheme's documented trust boundary: an OMV
// corrupted below the LLC's ECC produces a fully consistent codeword for
// the wrong data. Only the model-based oracle catches it; the campaign
// passes precisely because the oracle reports SDC.
func escapeSuite(seed int64) []Campaign {
	return []Campaign{
		{
			Name:        "omv-escape",
			Description: "OMV corrupted below the LLC ECC: only the oracle sees the SDC",
			Seed:        seed,
			Ops:         400, WriteFrac: 1.0, OMVHitRate: 1.0,
			Events: []Event{
				{AtOp: 200, Kind: EvOMVCorrupt},
			},
			Expect: Expect{AllowSDC: true},
		},
	}
}

// soakSuite is the deep campaign set kept out of the default test run
// (`-tags soak`, `faultcampaign -suite soak`): larger ranks, more rounds,
// and the full kill matrix over every chip including parity.
func soakSuite(seed int64) []Campaign {
	rounds := 8
	var driftEvents []Event
	for i := 0; i < rounds; i++ {
		driftEvents = append(driftEvents,
			Event{AtOp: i * 2500, Kind: EvDrift, RBER: 2e-4},
			Event{AtOp: i*2500 + 1250, Kind: EvSweep},
			Event{AtOp: i*2500 + 1250, Kind: EvBootScrub},
		)
	}
	cs := []Campaign{
		{
			Name:        "soak-drift",
			Description: "eight drift/sweep/scrub rounds over a larger rank",
			Seed:        seed,
			Banks:       4, RowsPerBank: 32, RowBytes: 2048,
			Ops: rounds * 2500, WriteFrac: 0.3, OMVHitRate: 0.7,
			Events: driftEvents,
			Expect: Expect{MinFallback: 10},
		},
		{
			Name:        "soak-crash-cycles",
			Description: "five crash cycles at boot-scale RBER with parallel scrubs",
			Seed:        seed,
			Banks:       4, RowsPerBank: 16, RowBytes: 1024,
			Ops: 10000, WriteFrac: 0.4, OMVHitRate: 0.7,
			ScrubWorkers: 8, ProbeStatsDuringScrub: true,
			Events: []Event{
				{AtOp: 2000, Kind: EvCrashReboot, RBER: 1e-3},
				{AtOp: 4000, Kind: EvCrashReboot, RBER: 1e-3},
				{AtOp: 6000, Kind: EvCrashReboot, RBER: 1e-3},
				{AtOp: 8000, Kind: EvCrashReboot, RBER: 1e-3},
				{AtOp: 10000, Kind: EvCrashReboot, RBER: 1e-3},
			},
		},
	}
	// Kill matrix: every data chip plus the parity chip, each killed
	// mid-run and rebuilt across a crash.
	for ci := 0; ci < 9; ci++ {
		chip := ci
		name := fmt.Sprintf("soak-kill-chip%d", ci)
		desc := fmt.Sprintf("kill data chip %d mid-run, rebuild across a crash", ci)
		if ci == 8 {
			chip = ChipParity
			name = "soak-kill-parity"
			desc = "kill the parity chip mid-run, rebuild across a crash"
		}
		cs = append(cs, Campaign{
			Name:        name,
			Description: desc,
			Seed:        seed,
			Ops:         2000, WriteFrac: 0.3, OMVHitRate: 0.7,
			Events: []Event{
				{AtOp: 700, Kind: EvChipKill, Chip: chip},
				{AtOp: 1400, Kind: EvCrashReboot, RBER: 2e-4},
			},
		})
	}
	return cs
}
