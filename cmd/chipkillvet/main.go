// Command chipkillvet runs the repository's contract analyzers
// (internal/analysis) over a set of packages:
//
//	noalloc    — //chipkill:noalloc functions must not allocate,
//	             transitively through statically resolvable callees
//	shardlock  — rank-wide maintenance only from //chipkill:rankwide
//	             functions or (*engine.Engine).Quiesce sections
//	sentinel   — errors.Is over ==/string matching; no dropped
//	             persistence-critical errors
//	bankaccess — quiescence-class nvram.Chip mutations only from
//	             quiescent contexts
//	seqlock    — seqlock-covered controller mutations only inside shard
//	             writer sections; //chipkill:seqread functions stay pure
//	lockorder  — //chipkill:lock levels must strictly increase along
//	             every acquisition path; no nested quiesce (directly,
//	             transitively, or through registered hooks); ranked
//	             locks taken in ascending index order
//	guardedby  — //chipkill:guardedby fields only touched with a named
//	             lock held; //chipkill:atomic fields only through
//	             sync/atomic
//
// Usage:
//
//	go run ./cmd/chipkillvet [-C dir] [-json] [-out file] [packages]
//
// Packages default to ./... . Exit status is 0 when clean, 1 when any
// analyzer reported a finding, 2 when loading or type-checking failed.
// -json prints findings as a JSON array instead of vet-style lines;
// -out additionally writes that JSON to a file (for CI artifacts) while
// keeping the human-readable lines on stdout. Intentional exceptions
// are annotated in the source with //chipkill:allow <analyzer> <reason>
// (see internal/analysis).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"chipkillpm/internal/analysis"
)

// jsonDiag is the stable shape of one finding in -json/-out output.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	dir := flag.String("C", ".", "directory to resolve packages in")
	list := flag.Bool("list", false, "print the analyzers and exit")
	asJSON := flag.Bool("json", false, "print findings as a JSON array on stdout")
	out := flag.String("out", "", "also write the JSON findings to this file")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: chipkillvet [-C dir] [-list] [-json] [-out file] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	suite := analysis.NewSuite(analyzers...)
	diags, err := suite.Run(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chipkillvet: %v\n", err)
		os.Exit(2)
	}

	base, err := filepath.Abs(*dir)
	if err != nil {
		base = ""
	}
	records := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		name := d.Pos.Filename
		if base != "" {
			if rel, err := filepath.Rel(base, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		records = append(records, jsonDiag{
			File: name, Line: d.Pos.Line, Column: d.Pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}

	if *out != "" {
		buf, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "chipkillvet: encoding findings: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "chipkillvet: %v\n", err)
			os.Exit(2)
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			fmt.Fprintf(os.Stderr, "chipkillvet: encoding findings: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, r := range records {
			fmt.Printf("%s:%d:%d: %s: %s\n", r.File, r.Line, r.Column, r.Analyzer, r.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "chipkillvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
