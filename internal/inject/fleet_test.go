package inject

import (
	"reflect"
	"testing"
)

// scrubTimings zeroes the wall-clock fields a report legitimately varies
// in across runs, leaving everything the determinism contract covers.
func scrubTimings(r *CampaignReport) *CampaignReport {
	r.ElapsedMS = 0
	if r.Fleet != nil {
		r.Fleet.RepairReplicaNSPerBlock = 0
		r.Fleet.RepairErasureNSPerBlock = 0
		r.Fleet.RepairSpeedup = 0
	}
	return r
}

// runFleetCampaign runs one named fleet campaign and fails the test if
// the campaign itself failed.
func runFleetCampaign(t *testing.T, name string, seed int64) *CampaignReport {
	t.Helper()
	campaigns, err := Suite("fleet", seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range campaigns {
		if c.Name != name {
			continue
		}
		rep := RunCampaign("fleet", c)
		if !rep.Pass {
			t.Fatalf("%s failed: %s\n%+v", name, rep.Reason, rep.Failures)
		}
		return rep
	}
	t.Fatalf("no campaign %q in the fleet suite", name)
	return nil
}

// The serial fleet campaigns must be bitwise deterministic: identical
// reports (timings aside) across two full runs, including every fleet
// counter — the rank-kill containment split and the double-fault repair
// totals cannot wobble.
func TestFleetCampaignsDeterministic(t *testing.T) {
	for _, name := range []string{"fleet-rank-kill", "fleet-double-fault"} {
		t.Run(name, func(t *testing.T) {
			first := scrubTimings(runFleetCampaign(t, name, 7))
			second := scrubTimings(runFleetCampaign(t, name, 7))
			if !reflect.DeepEqual(first, second) {
				t.Fatalf("reports differ across runs:\n%+v\n%+v", first, second)
			}
		})
	}
}

// TestFleetSuite is the fleet-smoke gate: the whole suite, one seed,
// zero SDC, zero unreported DUEs.
func TestFleetSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet suite takes a few seconds")
	}
	rep, err := RunSuite("fleet", 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, cr := range rep.Campaigns {
		if !cr.Pass {
			t.Errorf("%s: %s", cr.Name, cr.Reason)
		}
		if cr.SDC != 0 || cr.DUE != 0 {
			t.Errorf("%s: sdc=%d due=%d", cr.Name, cr.SDC, cr.DUE)
		}
	}
	if !rep.Pass {
		t.Fatal("fleet suite failed")
	}
}

// The chip-repair campaign carries the PR's measured claim; pin that the
// report actually contains both timings and that the replica path won.
func TestFleetChipRepairMeasuresSpeedup(t *testing.T) {
	rep := runFleetCampaign(t, "fleet-chip-repair", 11)
	f := rep.Fleet
	if f == nil {
		t.Fatal("no fleet report")
	}
	if f.RepairReplicaNSPerBlock <= 0 || f.RepairErasureNSPerBlock <= 0 {
		t.Fatalf("missing repair timings: %+v", f)
	}
	if f.RepairSpeedup <= 1 {
		t.Fatalf("replica repair not faster than erasure: %.2fx", f.RepairSpeedup)
	}
	if f.ExternalRepairs != 1 || f.Verdicts != 1 {
		t.Fatalf("conviction/repair counters off: %+v", f)
	}
}

// Fleet campaigns reject the single-rank knobs they cannot honour.
func TestFleetCampaignRejectsEngineKnobs(t *testing.T) {
	_, err := NewHarness("test", Campaign{
		Name: "bad", Fleet: &FleetSpec{Scenario: ScenarioFleetRankKill},
		EngineShards: 2,
	})
	if err == nil {
		t.Fatal("fleet campaign with EngineShards built successfully")
	}
}
