// Package inject exercises the bankaccess analyzer: quiescence-class
// chip mutations are only legal from Quiesce sections or
// //chipkill:rankwide functions.
package inject

import (
	"bankstub/internal/engine"
	"bankstub/internal/nvram"
	"bankstub/internal/rank"
)

// campaign mutates chips while the engine may be serving reads.
func campaign(c *nvram.Chip, r *rank.Rank) {
	c.Fail()             // want `quiescence-class chip mutation bankstub/internal/nvram.Chip.Fail called outside`
	c.WearOutBit(0, 1, 2) // want `quiescence-class chip mutation bankstub/internal/nvram.Chip.WearOutBit called outside`
	r.FailChip(0)        // want `quiescence-class chip mutation bankstub/internal/rank.Rank.FailChip called outside`
	c.CloseBankRows(2)   // bank-scoped: legal anywhere
}

// harness runs strictly serially before the engine exists.
//
//chipkill:rankwide
func harness(c *nvram.Chip, r *rank.Rank) {
	c.Fail()
	c.Repair()
	r.InjectRetentionErrors(8)
}

// quiesced holds every shard lock inside the literal.
func quiesced(e *engine.Engine, c *nvram.Chip) {
	e.Quiesce(func() {
		c.FlipDataBit(0, 0, 0)
	})
	c.FlipCodeBit(0, 0, 0) // want `quiescence-class chip mutation bankstub/internal/nvram.Chip.FlipCodeBit called outside`
}

// allowed uses the line-level escape hatch.
func allowed(c *nvram.Chip) {
	//chipkill:allow bankaccess serial unit harness, no concurrent readers
	c.InjectRetentionErrors(1)
}
