package guard

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestRegenerateFuzzCorpus rewrites the checked-in seed corpus for
// FuzzJournalDecode from the current journal encoder. Skipped unless
// GUARD_REGEN_CORPUS=1, so the corpus stays stable across runs but can be
// regenerated when the record format changes.
func TestRegenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("GUARD_REGEN_CORPUS") != "1" {
		t.Skip("set GUARD_REGEN_CORPUS=1 to rewrite the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzJournalDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	build := func(done bool, truncate int) []byte {
		reg := NewRegion(2048)
		j, _, err := Open(reg)
		if err != nil {
			t.Fatal(err)
		}
		j.SavePatrol(12)
		j.SavePatrol(34)
		if err := j.AppendStart(4); err != nil {
			t.Fatal(err)
		}
		if err := j.AppendBand(0, bytes.Repeat([]byte{0x11}, 64)); err != nil {
			t.Fatal(err)
		}
		if err := j.AppendBand(1, bytes.Repeat([]byte{0x22}, 64)); err != nil {
			t.Fatal(err)
		}
		if done {
			if err := j.AppendDone(); err != nil {
				t.Fatal(err)
			}
		}
		b := reg.Bytes()
		return b[:len(b)-truncate]
	}
	seeds := map[string][]byte{
		"seed-empty":       {},
		"seed-active":      build(false, 0),
		"seed-done":        build(true, 0),
		"seed-torn-tail":   build(false, 300),
		"seed-patrol-only": build(false, 2048-logStart),
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
