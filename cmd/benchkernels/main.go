// Command benchkernels is the kernel-performance regression harness. It
// measures the table-driven ECC kernels against the retained reference
// implementations (bit-serial BCH, polynomial-division RS) plus the full
// boot scrub, and writes the results as JSON — by convention committed as
// BENCH_kernels.json at the repo root.
//
// Two kinds of comparison appear in the output:
//
//   - speedup_vs_ref: fast path vs the reference oracle, both measured in
//     this run. Machine-independent to first order; this is what -check
//     enforces (BCH encode and syndromes >= 5x).
//   - speedup_vs_seed: fast path vs a frozen ns/op measured at the growth
//     seed (pre-optimization tree) on the original 2.10 GHz Xeon. Only
//     meaningful on comparable hardware; informational elsewhere.
//
// Usage:
//
//	go run ./cmd/benchkernels [-out BENCH_kernels.json] [-benchtime 1s] [-check]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"chipkillpm/internal/bch"
	"chipkillpm/internal/core"
	"chipkillpm/internal/rank"
	"chipkillpm/internal/rs"
)

// Seed baselines: ns/op of the same operations measured at the growth seed
// (commit "v0", byte-serial BCH / polynomial-division RS / serial scrub) on
// an Intel Xeon @ 2.10 GHz, GOMAXPROCS=1, go1.22.
var seedNs = map[string]float64{
	"bch/Encode":       53741,
	"bch/EncodeDelta":  27894,
	"bch/Syndromes":    187502,
	"bch/DecodeE2":     367266,
	"rs/Encode":        3037,
	"rs/Syndromes":     3470,
	"rs/DecodeErrors":  7640,
	"rs/DecodeErasure": 9647,
	"core/BootScrub":   13140620,
}

// floors are the -check regression gates on live fast-vs-reference ratios.
var floors = map[string]float64{
	"bch/Encode":    5,
	"bch/Syndromes": 5,
}

type result struct {
	Name          string  `json:"name"`
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	RefName       string  `json:"ref_name,omitempty"`
	RefNsPerOp    float64 `json:"ref_ns_per_op,omitempty"`
	SpeedupVsRef  float64 `json:"speedup_vs_ref,omitempty"`
	SeedNsPerOp   float64 `json:"seed_ns_per_op,omitempty"`
	SpeedupVsSeed float64 `json:"speedup_vs_seed,omitempty"`
}

type report struct {
	GoVersion  string   `json:"go_version"`
	GoArch     string   `json:"go_arch"`
	GoMaxProcs int      `json:"go_max_procs"`
	SeedNote   string   `json:"seed_note"`
	Results    []result `json:"results"`
}

func measure(name string, fn func(b *testing.B)) result {
	r := testing.Benchmark(fn)
	return result{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// pair measures a fast kernel and its reference oracle and links them.
func pair(name, refName string, fast, ref func(b *testing.B)) result {
	f := measure(name, fast)
	r := measure(refName, ref)
	f.RefName = refName
	f.RefNsPerOp = r.NsPerOp
	f.SpeedupVsRef = r.NsPerOp / f.NsPerOp
	return f
}

func bchResults() []result {
	c := bch.Must(12, 2048, 22)
	data := make([]byte, c.DataBytes())
	rand.New(rand.NewSource(1)).Read(data)
	delta := make([]byte, 8)
	rand.New(rand.NewSource(2)).Read(delta)

	decode := func(e int) func(b *testing.B) {
		return func(b *testing.B) {
			d := append([]byte(nil), data...)
			parity := c.Encode(d)
			positions := rand.New(rand.NewSource(int64(e))).Perm(c.N())[:e]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, p := range positions {
					if p < c.ParityBits() {
						parity[p/8] ^= 1 << uint(p%8)
					} else {
						d[(p-c.ParityBits())/8] ^= 1 << uint((p-c.ParityBits())%8)
					}
				}
				if fixed, err := c.Decode(d, parity); err != nil || fixed != e {
					b.Fatalf("decode: fixed=%d err=%v", fixed, err)
				}
			}
		}
	}

	out := []result{
		pair("bch/Encode", "bch/EncodeBitSerial",
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					c.Encode(data)
				}
			},
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					c.EncodeBitSerial(data)
				}
			}),
		pair("bch/EncodeDelta", "bch/EncodeDeltaBitSerial",
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					c.EncodeDelta(delta, 1024)
				}
			},
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					c.EncodeDeltaBitSerial(delta, 1024)
				}
			}),
	}

	dirty := append([]byte(nil), data...)
	parity := c.Encode(dirty)
	dirty[5] ^= 0x10
	out = append(out, pair("bch/Syndromes", "bch/SyndromesBitSerial",
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.Syndromes(dirty, parity)
			}
		},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.SyndromesBitSerial(dirty, parity)
			}
		}))

	clean := append([]byte(nil), data...)
	cleanParity := c.Encode(clean)
	out = append(out, measure("bch/CheckClean", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !c.CheckClean(clean, cleanParity) {
				b.Fatal("clean word reported dirty")
			}
		}
	}))
	for _, e := range []int{1, 2, 3, 22} {
		out = append(out, measure(fmt.Sprintf("bch/DecodeE%d", e), decode(e)))
	}
	return out
}

func rsResults() []result {
	c := rs.Must(64, 8)
	data := make([]byte, c.K())
	rand.New(rand.NewSource(1)).Read(data)
	check := c.Encode(data)

	out := []result{
		pair("rs/Encode", "rs/EncodePolyDiv",
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					c.Encode(data)
				}
			},
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					c.EncodePolyDiv(data)
				}
			}),
		measure("rs/Check", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !c.Check(data, check) {
					b.Fatal("clean block reported dirty")
				}
			}
		}),
	}

	dirty := append([]byte(nil), data...)
	dirty[3] ^= 0xA5
	out = append(out, measure("rs/Syndromes", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.SyndromesHorner(dirty, check)
		}
	}))

	out = append(out, measure("rs/DecodeErrors", func(b *testing.B) {
		d := append([]byte(nil), data...)
		for i := 0; i < b.N; i++ {
			d[5] ^= 0x3C
			d[40] ^= 0x81
			if corr, err := c.Decode(d, check, nil); err != nil || len(corr) != 2 {
				b.Fatalf("corr=%d err=%v", len(corr), err)
			}
		}
	}))
	out = append(out, measure("rs/DecodeErasure", func(b *testing.B) {
		d := append([]byte(nil), data...)
		erasures := []int{8, 9, 10, 11, 12, 13, 14, 15} // one failed chip
		for i := 0; i < b.N; i++ {
			for _, p := range erasures {
				d[p] = 0
			}
			if _, err := c.Decode(d, check, erasures); err != nil {
				b.Fatal(err)
			}
		}
	}))
	return out
}

// scrubResult mirrors the repo-root BenchmarkBootScrub: a 2-bank, 8-row rank
// that sat a week without refresh (RBER 1e-3), re-injected every iteration.
// The bench loop owns the rank exclusively.
//
//chipkill:rankwide
func scrubResult(name string, workers int) result {
	return measure(name, func(b *testing.B) {
		r, err := rank.New(rank.PaperConfig(2, 8, 1024, 1))
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.ScrubWorkers = workers
		ctrl, err := core.NewController(r, cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, 64)
		for blk := int64(0); blk < r.Blocks(); blk++ {
			ctrl.WriteBlockInitial(blk, buf)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			r.InjectRetentionErrors(1e-3)
			b.StartTimer()
			if rep := ctrl.BootScrub(); rep.Unrecoverable {
				b.Fatal("scrub failed")
			}
		}
	})
}

func main() {
	out := flag.String("out", "BENCH_kernels.json", "output file (- for stdout)")
	benchtime := flag.Duration("benchtime", 0, "per-benchmark time (0: testing default)")
	check := flag.Bool("check", false, "exit non-zero when a fast/reference ratio drops below its floor")
	flag.Parse()
	if *benchtime > 0 {
		flag.Set("test.benchtime", benchtime.String())
	}

	rep := report{
		GoVersion:  runtime.Version(),
		GoArch:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		SeedNote: "seed_ns_per_op frozen from the pre-optimization growth seed " +
			"on an Intel Xeon @ 2.10 GHz (GOMAXPROCS=1, go1.22); " +
			"speedup_vs_seed is only meaningful on comparable hardware",
	}
	rep.Results = append(rep.Results, bchResults()...)
	rep.Results = append(rep.Results, rsResults()...)
	rep.Results = append(rep.Results, scrubResult("core/BootScrub", 1))
	if runtime.GOMAXPROCS(0) > 1 {
		rep.Results = append(rep.Results,
			scrubResult(fmt.Sprintf("core/BootScrubW%d", runtime.GOMAXPROCS(0)), 0))
	}

	for i := range rep.Results {
		r := &rep.Results[i]
		if seed, ok := seedNs[r.Name]; ok {
			r.SeedNsPerOp = seed
			r.SpeedupVsSeed = seed / r.NsPerOp
		}
	}

	failed := false
	for _, r := range rep.Results {
		if floor, ok := floors[r.Name]; ok && r.SpeedupVsRef < floor {
			fmt.Fprintf(os.Stderr, "REGRESSION: %s is only %.2fx its reference %s (floor %.0fx)\n",
				r.Name, r.SpeedupVsRef, r.RefName, floor)
			failed = true
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	for _, r := range rep.Results {
		fmt.Printf("%-22s %12.1f ns/op  %3d allocs", r.Name, r.NsPerOp, r.AllocsPerOp)
		if r.SpeedupVsRef > 0 {
			fmt.Printf("  %7.1fx vs %s", r.SpeedupVsRef, r.RefName)
		}
		if r.SpeedupVsSeed > 0 {
			fmt.Printf("  %6.1fx vs seed", r.SpeedupVsSeed)
		}
		fmt.Println()
	}
	if *check && failed {
		os.Exit(1)
	}
}
