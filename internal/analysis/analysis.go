// Package analysis is chipkillvet's self-contained static-analysis
// framework: a small go/ast + go/types analogue of golang.org/x/tools'
// go/analysis, built on nothing but the standard library so the checker
// needs no module downloads. It exists to turn the codebase's prose-only
// contracts — the per-bank concurrency contract on nvram.Chip/rank.Rank,
// the all-shard-lock discipline for rank-wide maintenance, the zero-alloc
// read chain, and the typed error sentinels — into machine-checked rules
// (DESIGN.md §11).
//
// Annotation grammar (comment directives, attached to a function's doc
// comment unless noted):
//
//	//chipkill:noalloc
//	    The function participates in the zero-alloc read chain: the
//	    noalloc analyzer transitively rejects allocating constructs in
//	    its body.
//	//chipkill:rankwide
//	    The function executes in a rank-wide context (full quiescence, or
//	    the migration cursor's single-writer protocol): it may invoke the
//	    rank-wide maintenance operations that the shardlock and
//	    bankaccess analyzers police.
//	//chipkill:seqread
//	    The function runs on the engine's lock-free clean-read path,
//	    between seqlock validation checks: the seqlock analyzer rejects
//	    stores outside its locals/parameters and calls to anything but
//	    sync/atomic, encoding/binary, builtins/conversions, and other
//	    seqread functions.
//	//chipkill:lock <name> level=<n> [ranked]
//	    Declares a lock in the fleet-wide partial order. On a mutex
//	    struct field it names that mutex; on a function declaration it
//	    declares a scoped (virtual) lock held for the duration of every
//	    call (the quiesce pattern). Levels must strictly increase along
//	    any acquisition chain; "ranked" permits holding several
//	    instances of the lock at once provided they are taken in
//	    ascending index order. Enforced by the lockorder analyzer.
//	//chipkill:locks <name> / //chipkill:unlocks <name>
//	    The function performs an unbalanced acquire/release of the named
//	    lock (the seqlock lockWrite/unlockWrite pair): callers hold the
//	    lock from the locks-call until the unlocks-call.
//	//chipkill:holds <name>
//	    The function requires the named lock to be held on entry; the
//	    lockorder analyzer verifies every call site and assumes the lock
//	    held inside the body.
//	//chipkill:guardedby <name> [<name>...]
//	    On a struct field: the field may only be accessed while one of
//	    the named locks is held (lexically, through annotated helpers,
//	    or inside a scoped-lock extent). Enforced by guardedby.
//	//chipkill:atomic
//	    On a struct field: the field may only be accessed through
//	    sync/atomic (method calls on atomic.* types, or the field's
//	    address passed to a sync/atomic function). Enforced by guardedby.
//	//chipkill:allow <analyzer> <reason>
//	    False-positive escape hatch. On a function's doc comment it
//	    silences <analyzer> for the whole function; on or immediately
//	    above a statement it silences that line. The reason is mandatory.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// An Analyzer is one named rule over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	// SkipTestFiles drops diagnostics positioned in _test.go files.
	// The concurrency and allocation contracts are production-path
	// concerns; tests quiesce and allocate deliberately.
	SkipTestFiles bool
	Run           func(*Pass)
}

// A Diagnostic is one finding, with its position already resolved.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Package is one loaded, type-checked compilation unit.
type Package struct {
	PkgPath string // canonical import path (test-variant suffix stripped)
	Name    string
	Dir     string
	// IsTarget marks packages matched by the load patterns; dependencies
	// pulled in only for fact computation have IsTarget == false and
	// produce no diagnostics.
	IsTarget bool
	// IsTestVariant marks the "pkg [pkg.test]" compilation that folds
	// in-package _test.go files into the build.
	IsTestVariant bool
	Files         []*ast.File
	Types         *types.Package
	Info          *types.Info

	dirs *directives
}

// A Pass is one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Suite    *Suite
}

// Fset returns the suite-wide file set.
func (p *Pass) Fset() *token.FileSet { return p.Suite.fset }

// Reportf records a diagnostic at pos unless an allow directive or the
// analyzer's test-file policy suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Suite.report(p.Analyzer, p.Pkg, pos, fmt.Sprintf(format, args...))
}

// Suite loads packages and drives every analyzer over them.
type Suite struct {
	Analyzers []*Analyzer

	fset           *token.FileSet
	pkgs           []*Package
	facts          map[string]funcFact // alloc facts keyed by symbol key
	allocSummaries map[declKey]*allocSummary
	allocLocals    []allocLocal
	locks          *lockGraph // lock declarations + per-body scans
	diags          []Diagnostic
}

// TargetPaths returns the canonical import paths of the packages matched
// by the load patterns (one entry per path, sorted), so callers can
// assert coverage of a suite run.
func (s *Suite) TargetPaths() []string {
	seen := map[string]bool{}
	for _, pkg := range s.pkgs {
		if pkg.IsTarget {
			seen[pkg.PkgPath] = true
		}
	}
	paths := make([]string, 0, len(seen))
	for p := range seen {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// NewSuite builds a suite over the given analyzers.
func NewSuite(analyzers ...*Analyzer) *Suite {
	return &Suite{
		Analyzers: analyzers,
		fset:      token.NewFileSet(),
		facts:     map[string]funcFact{},
	}
}

// DefaultAnalyzers returns chipkillvet's seven contract analyzers.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{NoAlloc, ShardLock, Sentinel, BankAccess, Seqlock, LockOrder, GuardedBy}
}

// AnalyzerNames returns the known analyzer names (for directive
// validation), including every suite analyzer.
func (s *Suite) analyzerNames() map[string]bool {
	m := map[string]bool{}
	for _, a := range s.Analyzers {
		m[a.Name] = true
	}
	// The allow grammar accepts any default analyzer even when a suite
	// runs a subset (testdata modules exercise one analyzer at a time
	// but still carry allow directives for the others).
	for _, a := range DefaultAnalyzers() {
		m[a.Name] = true
	}
	return m
}

// Run loads patterns rooted at dir, computes allocation facts in
// dependency order, runs every analyzer on each target package, and
// returns the surviving diagnostics sorted by position.
func (s *Suite) Run(dir string, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := load(s.fset, dir, patterns)
	if err != nil {
		return nil, err
	}
	s.pkgs = pkgs
	for _, pkg := range pkgs {
		pkg.dirs = parseDirectives(s, pkg)
	}
	// Facts first — summarise every package, then propagate allocation
	// and lock-acquisition facts through the whole call graph, so
	// analyzers see final facts.
	for _, pkg := range pkgs {
		collectAllocFacts(s, pkg)
	}
	s.propagateAllocFacts()
	s.locks = collectLockGraph(s)
	s.locks.propagate()
	for _, pkg := range pkgs {
		if !pkg.IsTarget {
			continue
		}
		s.validateDirectives(pkg)
		for _, a := range s.Analyzers {
			a.Run(&Pass{Analyzer: a, Pkg: pkg, Suite: s})
		}
	}
	sort.Slice(s.diags, func(i, j int) bool {
		a, b := s.diags[i], s.diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return s.diags, nil
}

func (s *Suite) report(a *Analyzer, pkg *Package, pos token.Pos, msg string) {
	position := s.fset.Position(pos)
	if a.SkipTestFiles && strings.HasSuffix(position.Filename, "_test.go") {
		return
	}
	if pkg.dirs.allowed(a.Name, pos, position.Line, position.Filename) {
		return
	}
	s.diags = append(s.diags, Diagnostic{Pos: position, Analyzer: a.Name, Message: msg})
}

// reportAlways bypasses allow filtering; used by directive validation so
// a malformed directive cannot silence itself.
func (s *Suite) reportAlways(name string, pos token.Pos, msg string) {
	s.diags = append(s.diags, Diagnostic{Pos: s.fset.Position(pos), Analyzer: name, Message: msg})
}

// ---- directives ----

const directivePrefix = "//chipkill:"

// A directive is one parsed //chipkill: comment.
type directive struct {
	pos   token.Pos
	line  int    // line the comment sits on
	file  string // filename
	verb  string // "noalloc", "rankwide", "seqread", "lock", ... "allow"
	args  string // text after the verb
	inDoc *ast.FuncDecl
	// inField is set when the comment is a struct field's doc or line
	// comment; fieldOwner is the declaring struct type's name.
	inField    *ast.Field
	fieldOwner string
}

// directives indexes a package's //chipkill: comments.
type directives struct {
	all []directive
	// funcMarks maps a top-level FuncDecl to its doc-comment verbs.
	funcMarks map[*ast.FuncDecl]map[string]bool
	// funcAllows maps a FuncDecl to analyzers allowed for its whole body.
	funcAllows map[*ast.FuncDecl]map[string]bool
	// lineAllows maps filename -> line -> analyzers allowed on that line.
	lineAllows map[string]map[int]map[string]bool
	// funcs, sorted by Pos, for enclosing-function lookup.
	decls []*ast.FuncDecl
}

func parseDirectives(s *Suite, pkg *Package) *directives {
	d := &directives{
		funcMarks:  map[*ast.FuncDecl]map[string]bool{},
		funcAllows: map[*ast.FuncDecl]map[string]bool{},
		lineAllows: map[string]map[int]map[string]bool{},
	}
	type fieldSite struct {
		field *ast.Field
		owner string
	}
	for _, f := range pkg.Files {
		docOf := map[*ast.CommentGroup]*ast.FuncDecl{}
		fieldOf := map[*ast.CommentGroup]fieldSite{}
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				d.decls = append(d.decls, decl)
				if decl.Doc != nil {
					docOf[decl.Doc] = decl
				}
			case *ast.GenDecl:
				if decl.Tok != token.TYPE {
					continue
				}
				for _, spec := range decl.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, fld := range st.Fields.List {
						site := fieldSite{field: fld, owner: ts.Name.Name}
						if fld.Doc != nil {
							fieldOf[fld.Doc] = site
						}
						if fld.Comment != nil {
							fieldOf[fld.Comment] = site
						}
					}
				}
			}
		}
		for _, cg := range f.Comments {
			owner := docOf[cg]
			site := fieldOf[cg]
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				verb, args, _ := strings.Cut(rest, " ")
				pos := s.fset.Position(c.Pos())
				dir := directive{
					pos: c.Pos(), line: pos.Line, file: pos.Filename,
					verb: verb, args: strings.TrimSpace(args), inDoc: owner,
					inField: site.field, fieldOwner: site.owner,
				}
				d.all = append(d.all, dir)
				switch verb {
				case "noalloc", "rankwide", "seqread":
					if owner != nil {
						marks := d.funcMarks[owner]
						if marks == nil {
							marks = map[string]bool{}
							d.funcMarks[owner] = marks
						}
						marks[verb] = true
					}
				case "allow":
					analyzer, _, _ := strings.Cut(dir.args, " ")
					if analyzer == "" {
						continue // validated later
					}
					if owner != nil {
						allows := d.funcAllows[owner]
						if allows == nil {
							allows = map[string]bool{}
							d.funcAllows[owner] = allows
						}
						allows[analyzer] = true
					} else {
						lines := d.lineAllows[dir.file]
						if lines == nil {
							lines = map[int]map[string]bool{}
							d.lineAllows[dir.file] = lines
						}
						for _, ln := range []int{dir.line, dir.line + 1} {
							if lines[ln] == nil {
								lines[ln] = map[string]bool{}
							}
							lines[ln][analyzer] = true
						}
					}
				}
			}
		}
	}
	sort.Slice(d.decls, func(i, j int) bool { return d.decls[i].Pos() < d.decls[j].Pos() })
	return d
}

// enclosingFunc returns the top-level function declaration containing pos.
func (d *directives) enclosingFunc(pos token.Pos) *ast.FuncDecl {
	i := sort.Search(len(d.decls), func(i int) bool { return d.decls[i].End() >= pos })
	if i < len(d.decls) && d.decls[i].Pos() <= pos && pos <= d.decls[i].End() {
		return d.decls[i]
	}
	return nil
}

// marked reports whether pos's enclosing function carries the verb.
func (d *directives) marked(verb string, pos token.Pos) bool {
	if fd := d.enclosingFunc(pos); fd != nil {
		return d.funcMarks[fd][verb]
	}
	return false
}

// markedDecl reports whether the declaration itself carries the verb.
func (d *directives) markedDecl(verb string, fd *ast.FuncDecl) bool {
	return d.funcMarks[fd][verb]
}

func (d *directives) allowed(analyzer string, pos token.Pos, line int, file string) bool {
	if lines := d.lineAllows[file]; lines != nil && lines[line][analyzer] {
		return true
	}
	if fd := d.enclosingFunc(pos); fd != nil && d.funcAllows[fd][analyzer] {
		return true
	}
	return false
}

// validateDirectives reports malformed or misplaced //chipkill: comments
// under the reserved "directive" analyzer name. These diagnostics bypass
// allow filtering: a typo cannot silence itself.
func (s *Suite) validateDirectives(pkg *Package) {
	known := s.analyzerNames()
	for _, dir := range pkg.dirs.all {
		switch dir.verb {
		case "noalloc", "rankwide", "seqread":
			if dir.inDoc == nil {
				s.reportAlways("directive", dir.pos,
					fmt.Sprintf("//chipkill:%s must be part of a function declaration's doc comment", dir.verb))
			}
		case "lock":
			if dir.inDoc == nil && dir.inField == nil {
				s.reportAlways("directive", dir.pos,
					"//chipkill:lock must be attached to a struct field or a function declaration")
				continue
			}
			name, _, _, perr := parseLockArgs(dir.args)
			if perr != "" {
				s.reportAlways("directive", dir.pos, perr)
				continue
			}
			if decl := s.locks.decls[name]; decl != nil && decl.pos != dir.pos {
				s.reportAlways("directive", dir.pos,
					fmt.Sprintf("lock %q redeclared (first declared at %s)", name, s.fset.Position(decl.pos)))
			}
		case "locks", "unlocks", "holds":
			if dir.inDoc == nil {
				s.reportAlways("directive", dir.pos,
					fmt.Sprintf("//chipkill:%s must be part of a function declaration's doc comment", dir.verb))
				continue
			}
			name := strings.TrimSpace(dir.args)
			switch {
			case name == "" || len(strings.Fields(name)) != 1:
				s.reportAlways("directive", dir.pos,
					fmt.Sprintf("//chipkill:%s needs exactly one lock name", dir.verb))
			case s.locks.decls[name] == nil:
				s.reportAlways("directive", dir.pos,
					fmt.Sprintf("//chipkill:%s references undeclared lock %q", dir.verb, name))
			}
		case "guardedby":
			if dir.inField == nil {
				s.reportAlways("directive", dir.pos,
					"//chipkill:guardedby must be attached to a struct field")
				continue
			}
			names := strings.Fields(dir.args)
			if len(names) == 0 {
				s.reportAlways("directive", dir.pos,
					"//chipkill:guardedby needs one or more lock names")
				continue
			}
			for _, name := range names {
				if s.locks.decls[name] == nil {
					s.reportAlways("directive", dir.pos,
						fmt.Sprintf("//chipkill:guardedby references undeclared lock %q", name))
				}
			}
		case "atomic":
			if dir.inField == nil {
				s.reportAlways("directive", dir.pos,
					"//chipkill:atomic must be attached to a struct field")
			} else if dir.args != "" {
				s.reportAlways("directive", dir.pos,
					"//chipkill:atomic takes no arguments")
			}
		case "allow":
			analyzer, reason, _ := strings.Cut(dir.args, " ")
			switch {
			case analyzer == "":
				s.reportAlways("directive", dir.pos,
					"//chipkill:allow needs an analyzer name and a reason: //chipkill:allow <analyzer> <reason>")
			case !known[analyzer]:
				s.reportAlways("directive", dir.pos,
					fmt.Sprintf("//chipkill:allow names unknown analyzer %q", analyzer))
			case strings.TrimSpace(reason) == "":
				s.reportAlways("directive", dir.pos,
					fmt.Sprintf("//chipkill:allow %s needs a reason", analyzer))
			}
		default:
			s.reportAlways("directive", dir.pos,
				fmt.Sprintf("unknown directive //chipkill:%s (known: noalloc, rankwide, seqread, lock, locks, unlocks, holds, guardedby, atomic, allow)", dir.verb))
		}
	}
}

// parseLockArgs parses "<name> level=<n> [ranked]"; perr is the
// diagnostic message on malformed input.
func parseLockArgs(args string) (name string, level int, ranked bool, perr string) {
	const usage = "//chipkill:lock needs a name and a level: //chipkill:lock <name> level=<n> [ranked]"
	fields := strings.Fields(args)
	if len(fields) == 0 {
		return "", 0, false, usage
	}
	name = fields[0]
	if strings.Contains(name, "=") {
		return "", 0, false, usage
	}
	haveLevel := false
	for _, f := range fields[1:] {
		switch {
		case strings.HasPrefix(f, "level="):
			n, err := strconv.Atoi(strings.TrimPrefix(f, "level="))
			if err != nil {
				return "", 0, false, fmt.Sprintf("//chipkill:lock %s: bad level %q (want an integer)", name, strings.TrimPrefix(f, "level="))
			}
			level, haveLevel = n, true
		case f == "ranked":
			ranked = true
		default:
			return "", 0, false, fmt.Sprintf("//chipkill:lock %s: unknown option %q (want level=<n> or ranked)", name, f)
		}
	}
	if !haveLevel {
		return "", 0, false, usage
	}
	return name, level, ranked, ""
}

// ---- shared type helpers ----

// symbolKey canonicalises a function or method object to
// "pkgpath.Name" or "pkgpath.Recv.Name" (pointer receivers stripped),
// stable across separate type-check runs.
func symbolKey(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if name := recvTypeName(sig.Recv().Type()); name != "" {
			return pkg + "." + name + "." + fn.Name()
		}
	}
	return pkg + "." + fn.Name()
}

func recvTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// calleeOf resolves a call expression to its static *types.Func, or nil
// for dynamic calls (interface methods through values, func values),
// conversions, and builtins.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Fn.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// pathHasSuffix reports whether an import path equals suffix or ends in
// "/"+suffix — so the repo's real packages and testdata stub modules
// (e.g. "stubmod/internal/core") both match.
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// methodOn reports whether fn is a method named name on the named type
// typeName declared in a package whose path ends in pkgSuffix.
func methodOn(fn *types.Func, pkgSuffix, typeName, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	if !pathHasSuffix(fn.Pkg().Path(), pkgSuffix) {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	return sig != nil && sig.Recv() != nil && recvTypeName(sig.Recv().Type()) == typeName
}
