// Package engine is a stub providing the Quiesce context recognised by
// the bankaccess analyzer.
package engine

type Engine struct{}

func (e *Engine) Quiesce(f func()) { f() }
