package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Batch APIs. A batch is grouped by owning shard, then each shard's group
// executes as one critical section — one lock handoff amortised over the
// whole group instead of one per operation. Ordering guarantee: within a
// shard, reads execute in ascending batch-slice order; writes are stably
// row-sorted first (so same-row writes coalesce in the EUR registers)
// but same-block writes — which share a row by construction — still
// apply their later slice entry last. Across shards there is no
// ordering, matching real bank-level parallelism. Groups fan out across goroutines only when more than one
// shard is involved and the fan-out cap allows it; otherwise they run
// inline on the caller, which keeps the single-threaded batch path
// allocation-free.

type batchOp uint8

const (
	opRead batchOp = iota
	opWrite
)

// plan is the pooled scratch for grouping one batch by shard.
type plan struct {
	groups [][]int32 // per shard: indices into the batch slices
}

func (e *Engine) getPlan() *plan {
	if p, ok := e.planPool.Get().(*plan); ok {
		return p
	}
	return &plan{groups: make([][]int32, len(e.shards))}
}

func (e *Engine) putPlan(p *plan) {
	for i := range p.groups {
		p.groups[i] = p.groups[i][:0]
	}
	e.planPool.Put(p)
}

// groupByShard fills the plan's per-shard index groups for blocks.
func (e *Engine) groupByShard(p *plan, blocks []int64) (nonEmpty int) {
	for i, b := range blocks {
		s := e.shardOf(b)
		if len(p.groups[s]) == 0 {
			nonEmpty++
		}
		p.groups[s] = append(p.groups[s], int32(i))
	}
	return nonEmpty
}

// batchFanOut decides how many goroutines a batch spanning nonEmpty shard
// groups may use.
func (e *Engine) batchFanOut(nonEmpty int) int {
	limit := e.fanout
	if limit == 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	if limit > nonEmpty {
		limit = nonEmpty
	}
	if limit < 1 {
		limit = 1
	}
	return limit
}

// ReadBlocks reads blocks[i] into into[i] for every i, preserving
// per-shard ordering. into must be the same length as blocks, each buffer
// BlockBytes() long. errs, when non-nil, must also match in length and
// receives each operation's result. Returns the number of failed reads.
func (e *Engine) ReadBlocks(blocks []int64, into [][]byte, errs []error) int {
	if len(into) != len(blocks) || (errs != nil && len(errs) != len(blocks)) {
		panic(fmt.Sprintf("engine: ReadBlocks: %d blocks, %d buffers, %d errs",
			len(blocks), len(into), len(errs)))
	}
	return e.runBatch(opRead, blocks, into, errs)
}

// WriteBlocks writes data[i] to blocks[i] for every i through the OMV-XOR
// write path, preserving per-shard ordering. Returns the number of failed
// writes; errs, when non-nil, receives each operation's result.
func (e *Engine) WriteBlocks(blocks []int64, data [][]byte, errs []error) int {
	if len(data) != len(blocks) || (errs != nil && len(errs) != len(blocks)) {
		panic(fmt.Sprintf("engine: WriteBlocks: %d blocks, %d buffers, %d errs",
			len(blocks), len(data), len(errs)))
	}
	return e.runBatch(opWrite, blocks, data, errs)
}

// runGroup executes one shard's slice of the batch. Reads go through the
// seqlock fast path per operation (each op needs its own sequence
// validation window) with a per-op locked fallback; writes open one
// writer section for the whole group — one mutex handoff and one pair of
// sequence bumps amortised over every write in the group, pipelining the
// row-close EUR drains behind a single reader stand-down window. It is
// the fan-out=1 inline path, so the read side stays allocation-free.
//
//chipkill:noalloc
func (e *Engine) runGroup(op batchOp, s *shard, idx []int32, blocks []int64, bufs [][]byte, errs []error) int {
	fails := 0
	if op == opRead {
		fastN := int64(0)
		for _, i := range idx {
			var err error
			if e.seqOK && e.readFast(s, blocks[i], bufs[i]) {
				fastN++
			} else {
				s.mu.Lock()
				err = s.ctrl.ReadBlockInto(blocks[i], bufs[i])
				s.mu.Unlock()
			}
			if errs != nil {
				errs[i] = err
			}
			if err != nil {
				fails++
			}
		}
		if fastN != 0 {
			s.fastReads.Add(fastN)
		}
		return fails
	}
	e.sortGroupByRow(idx, blocks)
	s.lockWrite()
	for _, i := range idx {
		err := s.ctrl.WriteBlock(blocks[i], bufs[i])
		if errs != nil {
			errs[i] = err
		}
		if err != nil {
			fails++
		}
	}
	s.unlockWrite()
	return fails
}

// sortGroupByRow stably sorts one shard group's batch indices by row so
// same-row writes land back to back: the open row's EUR registers absorb
// every delta for the row and the close-drain pays one BCH EncodeDelta
// per touched VLEW for the whole run, instead of an open/drain cycle per
// interleaved write. Insertion sort keeps the path allocation-free and
// the stability preserves ascending batch-slice order within a row — in
// particular, duplicate blocks (same block, hence same row) still apply
// their later slice entry last.
//
//chipkill:noalloc
func (e *Engine) sortGroupByRow(idx []int32, blocks []int64) {
	for i := 1; i < len(idx); i++ {
		v := idx[i]
		row := blocks[v] / e.bpr
		j := i
		for j > 0 && blocks[idx[j-1]]/e.bpr > row {
			idx[j] = idx[j-1]
			j--
		}
		idx[j] = v
	}
}

// runBatch groups the batch by shard and executes each group as one
// critical section, fanning groups across goroutines when it helps.
func (e *Engine) runBatch(op batchOp, blocks []int64, bufs [][]byte, errs []error) int {
	if len(blocks) == 0 {
		return 0
	}
	p := e.getPlan()
	defer e.putPlan(p)
	nonEmpty := e.groupByShard(p, blocks)

	if e.batchFanOut(nonEmpty) == 1 {
		fails := 0
		for si, idx := range p.groups {
			if len(idx) == 0 {
				continue
			}
			fails += e.runGroup(op, e.shards[si], idx, blocks, bufs, errs)
		}
		return fails
	}

	var wg sync.WaitGroup
	var fails int64
	for si, idx := range p.groups {
		if len(idx) == 0 {
			continue
		}
		wg.Add(1)
		go func(si int, idx []int32) {
			defer wg.Done()
			if n := e.runGroup(op, e.shards[si], idx, blocks, bufs, errs); n != 0 {
				atomic.AddInt64(&fails, int64(n))
			}
		}(si, idx)
	}
	wg.Wait()
	return int(fails)
}
