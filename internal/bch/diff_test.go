package bch

import (
	"bytes"
	"math/rand"
	"testing"
)

// Differential tests: the table-driven Encode/EncodeDelta/Syndromes must
// match the retained bit-serial oracles bit-for-bit on randomized inputs,
// across code shapes with byte-aligned and unaligned parity widths.

var diffCodes = []struct {
	m    uint
	k, t int
}{
	{12, 2048, 22}, // the paper's VLEW code (r = 264, byte-aligned)
	{10, 512, 4},   // r = 40
	{10, 512, 14},  // the Flash-style baseline code
	{11, 800, 5},   // r = 55, not byte-aligned
	{13, 4096, 9},  // r = 117, not byte-aligned
	{8, 64, 2},     // small field
}

func TestEncodeMatchesBitSerial(t *testing.T) {
	for _, p := range diffCodes {
		code := Must(p.m, p.k, p.t)
		rng := rand.New(rand.NewSource(int64(p.k) + int64(p.t)))
		data := make([]byte, code.DataBytes())
		for trial := 0; trial < 50; trial++ {
			randomData(rng, data, code.k)
			fast := code.Encode(data)
			slow := code.EncodeBitSerial(data)
			if !bytes.Equal(fast, slow) {
				t.Fatalf("%v trial %d: Encode mismatch\nfast %x\nslow %x", code, trial, fast, slow)
			}
		}
	}
}

func TestEncodeDeltaMatchesBitSerial(t *testing.T) {
	for _, p := range diffCodes {
		code := Must(p.m, p.k, p.t)
		rng := rand.New(rand.NewSource(int64(p.k)*3 + int64(p.t)))
		for trial := 0; trial < 50; trial++ {
			// Random sparse delta at a random bit offset, mixing byte-
			// aligned (table path) and unaligned (fallback) offsets.
			maxLen := code.k / 8
			if maxLen > 16 {
				maxLen = 16
			}
			n := 1 + rng.Intn(maxLen)
			delta := make([]byte, n)
			rng.Read(delta)
			limit := code.k - 8*n
			off := 0
			if limit > 0 {
				off = rng.Intn(limit + 1)
			}
			if trial%2 == 0 {
				off &^= 7 // force byte alignment half the time
			}
			fast := code.EncodeDelta(delta, off)
			slow := code.EncodeDeltaBitSerial(delta, off)
			if !bytes.Equal(fast, slow) {
				t.Fatalf("%v trial %d off %d: EncodeDelta mismatch\nfast %x\nslow %x",
					code, trial, off, fast, slow)
			}
		}
	}
}

func TestEncodeDeltaIntoMatchesBitSerial(t *testing.T) {
	for _, p := range diffCodes {
		code := Must(p.m, p.k, p.t)
		rng := rand.New(rand.NewSource(int64(p.k)*5 + int64(p.t)))
		out := make([]byte, code.ParityBytes())
		for trial := 0; trial < 80; trial++ {
			maxLen := code.k / 8
			if maxLen > 16 && trial%4 != 3 {
				maxLen = 16 // short deltas: table path; every 4th trial stays long for the LFSR path
			}
			n := 1 + rng.Intn(maxLen)
			delta := make([]byte, n)
			rng.Read(delta)
			if trial%8 == 0 {
				for i := range delta {
					delta[i] = 0 // zero delta must produce zero parity
				}
			}
			limit := code.k - 8*n
			off := 0
			if limit > 0 {
				off = rng.Intn(limit + 1)
			}
			if trial%2 == 0 {
				off &^= 7 // byte-aligned (table path) half the time
			}
			code.EncodeDeltaInto(out, delta, off)
			slow := code.EncodeDeltaBitSerial(delta, off)
			if !bytes.Equal(out, slow) {
				t.Fatalf("%v trial %d off %d: EncodeDeltaInto mismatch\nfast %x\nslow %x",
					code, trial, off, out, slow)
			}
		}
	}
}

// TestEncodeDeltaIntoAllocFree pins the demand-write encoder at 0 allocs/op
// once its position tables are warm; chips call it on every EUR drain.
func TestEncodeDeltaIntoAllocFree(t *testing.T) {
	code := Must(12, 2048, 22)
	out := make([]byte, code.ParityBytes())
	delta := []byte{0xA5, 0x5A, 0x01, 0xFF, 0x80, 0x7E, 0x33, 0xCC}
	code.EncodeDeltaInto(out, delta, 0) // warm the tables
	if n := testing.AllocsPerRun(200, func() {
		code.EncodeDeltaInto(out, delta, 1984)
	}); n != 0 {
		t.Fatalf("EncodeDeltaInto allocates %.1f per op, want 0", n)
	}
	dense := make([]byte, code.DataBytes()) // EUR drain shape: the LFSR branch
	for i := range dense {
		dense[i] = byte(i*37 + 1)
	}
	if n := testing.AllocsPerRun(200, func() {
		code.EncodeDeltaInto(out, dense, 0)
	}); n != 0 {
		t.Fatalf("EncodeDeltaInto (dense) allocates %.1f per op, want 0", n)
	}
}

func TestSyndromesMatchBitSerial(t *testing.T) {
	for _, p := range diffCodes {
		code := Must(p.m, p.k, p.t)
		rng := rand.New(rand.NewSource(int64(p.k)*7 + int64(p.t)))
		data := make([]byte, code.DataBytes())
		for trial := 0; trial < 50; trial++ {
			randomData(rng, data, code.k)
			parity := code.Encode(data)
			// Half the trials corrupt random bits of data and parity so
			// both the clean and the errorful syndrome paths are compared.
			if trial%2 == 1 {
				for e := 1 + rng.Intn(2*code.t); e > 0; e-- {
					if rng.Intn(2) == 0 && code.r > 0 {
						b := rng.Intn(code.r)
						parity[b/8] ^= 1 << uint(b%8)
					} else {
						b := rng.Intn(code.k)
						data[b/8] ^= 1 << uint(b%8)
					}
				}
			}
			fastSyn, fastClean := code.Syndromes(data, parity)
			slowSyn, slowClean := code.SyndromesBitSerial(data, parity)
			if fastClean != slowClean {
				t.Fatalf("%v trial %d: clean mismatch fast=%v slow=%v", code, trial, fastClean, slowClean)
			}
			if len(fastSyn) != len(slowSyn) {
				t.Fatalf("%v trial %d: syndrome count mismatch", code, trial)
			}
			for i := range fastSyn {
				if fastSyn[i] != slowSyn[i] {
					t.Fatalf("%v trial %d: S_%d mismatch: fast %#x slow %#x",
						code, trial, i+1, fastSyn[i], slowSyn[i])
				}
			}
			if code.CheckClean(data, parity) != slowClean {
				t.Fatalf("%v trial %d: CheckClean disagrees with bit-serial syndromes", code, trial)
			}
		}
	}
}

// TestSyndromesIgnoreSlackParityBits checks that both paths ignore the
// unused high bits of the last parity byte when r is not a byte multiple,
// which is how VLEW code slots with slack bytes are stored.
func TestSyndromesIgnoreSlackParityBits(t *testing.T) {
	code := Must(11, 800, 5)
	if code.r%8 == 0 {
		t.Skip("code unexpectedly byte-aligned")
	}
	rng := rand.New(rand.NewSource(99))
	data := make([]byte, code.DataBytes())
	randomData(rng, data, code.k)
	parity := code.Encode(data)
	if !code.CheckClean(data, parity) {
		t.Fatal("clean word reports dirty")
	}
	dirty := append([]byte(nil), parity...)
	dirty[len(dirty)-1] |= ^byte(1<<uint(code.r%8) - 1) // set all slack bits
	if !code.CheckClean(data, dirty) {
		t.Fatal("slack parity bits must be ignored by CheckClean")
	}
	if _, clean := code.Syndromes(data, dirty); !clean {
		t.Fatal("slack parity bits must be ignored by Syndromes")
	}
}

// TestDecodeRandomizedRoundTrip hammers the fast decode path (remainder
// syndromes, allocation-free Berlekamp-Massey, closed-form and deflating
// root search) against ground truth: e <= t injected errors anywhere in
// the word must be corrected exactly; e > t must either be flagged
// uncorrectable or miscorrect onto a different codeword (bounded-distance
// behavior), never return success with a dirty word.
func TestDecodeRandomizedRoundTrip(t *testing.T) {
	for _, p := range diffCodes {
		code := Must(p.m, p.k, p.t)
		rng := rand.New(rand.NewSource(int64(p.k)*13 + int64(p.t)))
		data := make([]byte, code.DataBytes())
		for trial := 0; trial < 120; trial++ {
			randomData(rng, data, code.k)
			parity := code.Encode(data)
			wantData := append([]byte(nil), data...)
			wantParity := append([]byte(nil), parity...)

			e := trial % (code.t + 3) // exercise 0..t and a bit beyond
			flipped := map[int]bool{}
			for len(flipped) < e {
				flipped[rng.Intn(code.n)] = true
			}
			for pos := range flipped {
				if pos < code.r {
					parity[pos/8] ^= 1 << uint(pos%8)
				} else {
					d := pos - code.r
					data[d/8] ^= 1 << uint(d%8)
				}
			}

			fixed, err := code.Decode(data, parity)
			if e <= code.t {
				if err != nil {
					t.Fatalf("%v trial %d: e=%d should decode: %v", code, trial, e, err)
				}
				if fixed != e {
					t.Fatalf("%v trial %d: corrected %d bits, want %d", code, trial, fixed, e)
				}
				if !bytes.Equal(data, wantData) || !bytes.Equal(parity, wantParity) {
					t.Fatalf("%v trial %d: decode did not restore the codeword", code, trial)
				}
			} else if err == nil {
				// Miscorrection is allowed beyond t, but the result must
				// be a codeword.
				if !code.CheckClean(data, parity) {
					t.Fatalf("%v trial %d: decode claimed success on a non-codeword", code, trial)
				}
			}
		}
	}
}

// randomData fills buf with random bytes, zeroing the unused high bits of
// the last byte when k is not a byte multiple (Encode's contract).
func randomData(rng *rand.Rand, buf []byte, k int) {
	rng.Read(buf)
	if rem := k % 8; rem != 0 {
		buf[len(buf)-1] &= 1<<uint(rem) - 1
	}
}
