package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"chipkillpm/internal/bch"
)

// BitOnlyMemory is the paper's comparison baseline (Secs III-A and VII):
// every 64 B block carries its own 14-bit-error-correcting BCH code (28 %
// storage cost), which handles the 1e-3 boot-time RBER but offers no chip
// failure protection — a single failed chip produces uncorrectable (or
// worse, silently miscorrected) blocks.
//
// The type is a self-contained functional model used by the reliability
// experiments and examples; the performance baseline lives in the timing
// simulator, where "baseline" simply means no write-latency inflation, no
// OMV traffic and no VLEW fallback.
type BitOnlyMemory struct {
	blockBytes int
	code       *bch.Code
	data       []byte // blocks * blockBytes
	parity     []byte // blocks * code.ParityBytes()
	rng        *rand.Rand
	blocks     int64

	Reads, Corrected, Uncorrectable int64
}

// ErrBaselineUncorrectable mirrors ErrUncorrectable for the baseline.
var ErrBaselineUncorrectable = errors.New("core: baseline uncorrectable error")

// NewBitOnlyMemory builds a baseline memory of the given capacity. The
// 14-EC code over 512 data bits follows Sec III-A.
func NewBitOnlyMemory(blocks int64, seed int64) (*BitOnlyMemory, error) {
	if blocks < 1 {
		return nil, fmt.Errorf("core: baseline needs at least 1 block")
	}
	code, err := bch.New(10, 512, 14)
	if err != nil {
		return nil, err
	}
	return &BitOnlyMemory{
		blockBytes: 64,
		code:       code,
		data:       make([]byte, blocks*64),
		parity:     make([]byte, blocks*int64(code.ParityBytes())),
		rng:        rand.New(rand.NewSource(seed)),
		blocks:     blocks,
	}, nil
}

// Blocks returns the capacity in blocks.
func (m *BitOnlyMemory) Blocks() int64 { return m.blocks }

// StorageOverhead returns the baseline's redundancy ratio (~28 %).
func (m *BitOnlyMemory) StorageOverhead() float64 {
	return float64(bch.ParityBitsEstimate(512, 14)) / 512.0
}

func (m *BitOnlyMemory) blockSlices(b int64) (data, parity []byte) {
	if b < 0 || b >= m.blocks {
		panic(fmt.Sprintf("core: baseline block %d out of range", b))
	}
	pb := int64(m.code.ParityBytes())
	return m.data[b*64 : (b+1)*64], m.parity[b*pb : (b+1)*pb]
}

// Write stores a block and its BCH parity.
func (m *BitOnlyMemory) Write(b int64, data []byte) {
	if len(data) != m.blockBytes {
		panic("core: baseline write size mismatch")
	}
	d, p := m.blockSlices(b)
	copy(d, data)
	copy(p, m.code.Encode(data))
}

// Read corrects and returns a block. Miscorrections (possible beyond 14
// errors) are returned as if successful — that is the baseline's SDC risk.
func (m *BitOnlyMemory) Read(b int64) ([]byte, error) {
	m.Reads++
	d, p := m.blockSlices(b)
	data := append([]byte(nil), d...)
	parity := append([]byte(nil), p...)
	n, err := m.code.Decode(data, parity)
	if err != nil {
		m.Uncorrectable++
		return nil, fmt.Errorf("block %d: %w", b, ErrBaselineUncorrectable)
	}
	if n > 0 {
		m.Corrected += int64(n)
	}
	return data, nil
}

// InjectRetentionErrors flips stored bits (data and parity) with the given
// probability, as Chip.InjectRetentionErrors does.
func (m *BitOnlyMemory) InjectRetentionErrors(rber float64) int {
	flips := 0
	for _, region := range [][]byte{m.data, m.parity} {
		bits := int64(len(region)) * 8
		n := sampleBinomialBaseline(m.rng, bits, rber)
		for i := int64(0); i < n; i++ {
			p := m.rng.Int63n(bits)
			region[p/8] ^= 1 << uint(p%8)
		}
		flips += int(n)
	}
	return flips
}

// FailChipSlice emulates a chip failure's effect on the baseline: in a
// 9-chip-less layout there is no chip to lose, so the paper's comparison
// is the 8-chip data layout where chip i held bytes [i*8, i*8+8) of every
// block. Those bytes become garbage.
func (m *BitOnlyMemory) FailChipSlice(chip int) {
	if chip < 0 || chip >= 8 {
		panic("core: baseline chip index out of range")
	}
	for b := int64(0); b < m.blocks; b++ {
		d, _ := m.blockSlices(b)
		m.rng.Read(d[chip*8 : (chip+1)*8])
	}
}

func sampleBinomialBaseline(rng *rand.Rand, n int64, p float64) int64 {
	if p <= 0 || n <= 0 {
		return 0
	}
	count := int64(0)
	pos := int64(0)
	for {
		u := rng.Float64()
		skip := int64(math.Log(u) / math.Log1p(-p))
		pos += skip + 1
		if pos > n {
			return count
		}
		count++
	}
}
