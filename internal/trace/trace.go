// Package trace generates synthetic workload traces that stand in for the
// paper's WHISPER persistent-memory benchmarks and SPLASH3-under-ATLAS
// scientific workloads (Sec VI).
//
// Substitution note (see DESIGN.md): we cannot run the original binaries
// under gem5, so each workload is a parameterised query loop whose knobs
// are set from the benchmark's published character — compute per query
// (network-bound services spend most of a query off the memory system),
// read/write mix (Fig 14), pointer chasing (trees read from few banks at a
// time), persistent-write row locality (which determines the C factor of
// Fig 15), cleaning discipline (how promptly dirty persistent blocks are
// clwb'd, which determines the dirty-PM cache occupancy of Fig 10), and
// footprints. The performance mechanisms the paper measures act on exactly
// these characteristics.
package trace

import (
	"math/rand"

	"chipkillpm/internal/cpu"
)

// Class distinguishes the two benchmark suites.
type Class int

// Workload classes.
const (
	Whisper Class = iota // single thread per process, IPC metric
	Splash               // four threads, one process, FLOPS metric
)

func (c Class) String() string {
	if c == Whisper {
		return "WHISPER"
	}
	return "SPLASH3"
}

// Profile parameterises one workload.
type Profile struct {
	Name  string
	Class Class

	// ComputePerQuery is the mean number of non-memory instructions per
	// query (network processing, computation). Network-bound services
	// (echo, memcached, redis, vacation) have large values, making them
	// insensitive to memory write latency (Sec VII).
	ComputePerQuery int

	// Mean memory operations per query.
	PMReads, PMWrites, DRAMReads, DRAMWrites float64

	// PointerChase serialises PM reads (tree traversals), reading from
	// few banks at a time (Sec VII's explanation for ctree/btree/rbtree).
	PointerChase bool

	// WriteRowLocality is the probability that the next PM write falls in
	// the row of the previous one; high locality lets the EUR coalesce
	// VLEW code updates (low C factor, Fig 15).
	WriteRowLocality float64

	// CleanBatch is the application's write-behind window: how many dirty
	// persistent blocks it keeps outstanding before cleaning the oldest
	// with clwb. 1 models eager clwb-after-store; larger values leave
	// dirty PM blocks resident in the hierarchy (Fig 10).
	CleanBatch int

	// Footprints in 64-byte blocks.
	PMFootprintBlocks   int64
	DRAMFootprintBlocks int64

	// HotFraction of the footprint receives HotProbability of accesses.
	HotFraction    float64
	HotProbability float64
}

// Stream produces the operation sequence of one hardware context.
type Stream struct {
	prof     Profile
	rng      *rand.Rand
	pmBase   uint64
	dramBase uint64

	pending   []uint64 // PM blocks written but not yet cleaned
	lastWrite uint64   // last PM write address (for row locality)
	queue     []cpu.Op
}

// blockBytes and rowBytes mirror the system configuration (64B blocks,
// 128-block rows).
const (
	blockBytes   = 64
	blocksPerRow = 128
)

// NewStream builds a context's stream. pmBase/dramBase are the base
// addresses of the context's private slices of persistent memory and
// DRAM; seed fixes the sequence.
func NewStream(p Profile, pmBase, dramBase uint64, seed int64) *Stream {
	if p.CleanBatch < 1 {
		p.CleanBatch = 1
	}
	return &Stream{
		prof:     p,
		rng:      rand.New(rand.NewSource(seed)),
		pmBase:   pmBase,
		dramBase: dramBase,
	}
}

// Profile returns the stream's profile.
func (s *Stream) Profile() Profile { return s.prof }

// sampleCount draws a count with the given mean (geometric-ish mix of
// floor/ceil so non-integer means average out).
func (s *Stream) sampleCount(mean float64) int {
	n := int(mean)
	if s.rng.Float64() < mean-float64(n) {
		n++
	}
	return n
}

// pmAddr picks a PM block address using the hot-set distribution.
func (s *Stream) pmAddr() uint64 {
	return s.pmBase + s.pickBlock(s.prof.PMFootprintBlocks)*blockBytes
}

func (s *Stream) dramAddr() uint64 {
	return s.dramBase + s.pickBlock(s.prof.DRAMFootprintBlocks)*blockBytes
}

func (s *Stream) pickBlock(footprint int64) uint64 {
	if footprint <= 0 {
		return 0
	}
	hf := s.prof.HotFraction
	if hf > 0 && s.rng.Float64() < s.prof.HotProbability {
		hot := int64(float64(footprint) * hf)
		if hot < 1 {
			hot = 1
		}
		return uint64(s.rng.Int63n(hot))
	}
	return uint64(s.rng.Int63n(footprint))
}

// pmWriteAddr picks the next PM write target honouring write locality:
// with probability WriteRowLocality the write appends sequentially after
// the previous one (log/array-sweep behaviour, which keeps consecutive
// writes in the same VLEW and row), otherwise it jumps randomly.
func (s *Stream) pmWriteAddr() uint64 {
	if s.lastWrite != 0 && s.rng.Float64() < s.prof.WriteRowLocality {
		next := s.lastWrite + blockBytes
		limit := s.pmBase + uint64(s.prof.PMFootprintBlocks)*blockBytes
		if next >= limit {
			next = s.pmBase
		}
		s.lastWrite = next
		return next
	}
	addr := s.pmAddr()
	s.lastWrite = addr
	return addr
}

// Next returns the next operation.
func (s *Stream) Next() cpu.Op {
	if len(s.queue) == 0 {
		s.generateQuery()
	}
	op := s.queue[0]
	s.queue = s.queue[1:]
	return op
}

// generateQuery emits one query's operations into the queue, interleaving
// compute between memory operations the way real code does (address
// computation, comparisons, allocation, logging around each access).
func (s *Stream) generateQuery() {
	p := s.prof

	var mem []cpu.Op
	for i, n := 0, s.sampleCount(p.DRAMReads); i < n; i++ {
		mem = append(mem, cpu.Op{Kind: cpu.Load, Addr: s.dramAddr()})
	}
	for i, n := 0, s.sampleCount(p.PMReads); i < n; i++ {
		mem = append(mem, cpu.Op{Kind: cpu.Load, Addr: s.pmAddr(), Dep: p.PointerChase})
	}
	for i, n := 0, s.sampleCount(p.DRAMWrites); i < n; i++ {
		mem = append(mem, cpu.Op{Kind: cpu.Store, Addr: s.dramAddr()})
	}
	for i, n := 0, s.sampleCount(p.PMWrites); i < n; i++ {
		addr := s.pmWriteAddr()
		mem = append(mem, cpu.Op{Kind: cpu.Store, Addr: addr})
		// Write-behind cleaning: the application keeps at most CleanBatch
		// dirty persistent blocks outstanding, cleaning the oldest once
		// the window fills. CleanBatch=1 models eager clwb-after-store.
		s.pending = append(s.pending, addr)
		for len(s.pending) >= p.CleanBatch {
			mem = append(mem, cpu.Op{Kind: cpu.Clwb, Addr: s.pending[0]})
			s.pending = s.pending[1:]
		}
	}
	// Shuffle memory ops (dependent loads keep relative order among
	// themselves because Dep chains on the previous load regardless).
	s.rng.Shuffle(len(mem), func(i, j int) { mem[i], mem[j] = mem[j], mem[i] })

	// Jitter compute +/-25% and spread it between the memory ops.
	total := p.ComputePerQuery*3/4 + s.rng.Intn(p.ComputePerQuery/2+1)
	chunks := len(mem) + 1
	per := total / chunks
	for _, m := range mem {
		if per > 0 {
			s.queue = append(s.queue, cpu.Op{Kind: cpu.Compute, N: per})
		}
		s.queue = append(s.queue, m)
	}
	if rem := total - per*len(mem); rem > 0 {
		s.queue = append(s.queue, cpu.Op{Kind: cpu.Compute, N: rem})
	}
}
