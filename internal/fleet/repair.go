// Repair-from-replica: when a rank's guard convicts a chip, the fleet
// rebuilds the dead chip's cells in place — bands with a live replica by
// a straight byte copy from the replica rank (one corrected read + one
// 8-byte chip write per block), everything else by local RS erasure
// decode over the surviving chips. Both paths are timed per band so the
// campaign reports can prove the replica copy beats the erasure decode,
// which is the fleet's core argument. With no replica at all the repair
// declines (ErrNoReplica) and the guard falls back to its journaled
// degraded-mode migration exactly as a single-rank deployment would.
package fleet

import (
	"fmt"
	"time"
)

// RepairReport records one chip repair: how many bands each
// reconstruction path handled and how long each path spent, in
// wall-clock nanoseconds, so per-block costs can be compared.
type RepairReport struct {
	Rank, Chip    int
	Parity        bool  // parity chips are re-encoded, not copied
	ReplicaBands  int   // bands rebuilt by byte copy from their replica
	ErasureBands  int   // bands rebuilt by local RS erasure decode
	ReplicaBlocks int64 // blocks restored via the replica path
	ErasureBlocks int64 // blocks restored via the erasure path
	ReplicaNS     int64 // wall time in the replica path
	ErasureNS     int64 // wall time in the erasure path
	Unrecoverable bool  // some block survived neither path
}

// ReplicaNSPerBlock returns the replica path's mean cost per block.
func (r RepairReport) ReplicaNSPerBlock() float64 {
	if r.ReplicaBlocks == 0 {
		return 0
	}
	return float64(r.ReplicaNS) / float64(r.ReplicaBlocks)
}

// ErasureNSPerBlock returns the erasure path's mean cost per block.
func (r RepairReport) ErasureNSPerBlock() float64 {
	if r.ErasureBlocks == 0 {
		return 0
	}
	return float64(r.ErasureNS) / float64(r.ErasureBlocks)
}

// Repairs returns the chip-repair history (oldest first).
func (f *Fleet) Repairs() []RepairReport {
	f.repMu.Lock()
	defer f.repMu.Unlock()
	out := make([]RepairReport, len(f.repairs))
	copy(out, f.repairs)
	return out
}

// RepairChip rebuilds a convicted chip of one rank in place, under that
// rank's engine quiesce. It is the guard Repair hook's target: returning
// nil tells the supervisor the chip is healthy again (no migration
// needed); ErrNoReplica sends it down the local containment path. A data
// chip is only repaired here when at least one of the rank's bands has a
// live replica — that is the situation the fleet can beat (or at least
// match) plain erasure decode in, and it keeps the no-replica fallback
// honest in campaigns. Runs on the supervision goroutine.
func (f *Fleet) RepairChip(rk, chip int) error {
	n := f.ranks[rk]
	if n.killed.Load() {
		return fmt.Errorf("fleet: repair chip %d: rank %d down: %w", chip, rk, ErrRankFailed)
	}
	if chip < 0 || chip >= n.rank.NumChips() {
		return fmt.Errorf("fleet: repair rank %d: no chip %d", rk, chip)
	}
	parity := chip == n.rank.ParityChipIndex()
	if !parity && !f.rankHasLiveReplica(rk) {
		return fmt.Errorf("fleet: repair rank %d chip %d: %w", rk, chip, ErrNoReplica)
	}
	rep := RepairReport{Rank: rk, Chip: chip, Parity: parity}
	n.eng.Quiesce(func() {
		if parity {
			f.repairParityChip(n, &rep)
		} else {
			f.repairDataChip(n, chip, &rep)
		}
	})
	f.repMu.Lock()
	f.repairs = append(f.repairs, rep)
	f.repMu.Unlock()
	f.chipRepairs.Add(1)
	if rep.Unrecoverable {
		return fmt.Errorf("fleet: repair rank %d chip %d left unrecoverable blocks: %w", rk, chip, ErrNoReplica)
	}
	return nil
}

// rankHasLiveReplica reports whether any of the rank's primary bands has
// an active replica on a live rank. Band state atomics are read without
// the band mutex: every transition for this rank's bands funnels through
// a read or write on this rank's engine (which RepairChip quiesces) or
// runs on the supervision goroutine RepairChip itself occupies.
func (f *Fleet) rankHasLiveReplica(rk int) bool {
	for b := rk; b < len(f.bands); b += len(f.ranks) {
		bs := &f.bands[b]
		if bs.state.Load() == bandActive && !f.ranks[bs.replicaRank.Load()].killed.Load() {
			return true
		}
	}
	return false
}

// scrubVLEWs drift-corrects every healthy chip's VLEWs in place — the
// serial equivalent of BootScrub's scan. The erasure decode that follows
// a repair needs it: RS(72,64) with a whole chip erased has consumed all
// eight check symbols, so any residual drift error in the surviving
// chips would corrupt the rebuild silently.
//
//chipkill:rankwide
//chipkill:holds engine.rank
func (f *Fleet) scrubVLEWs(n *node) {
	r := n.rank
	rcfg := r.Config()
	g := rcfg.Geometry
	code := rcfg.VLEWCode
	data := make([]byte, g.VLEWDataBytes)
	vcode := make([]byte, g.VLEWCodeBytes)
	for ci := 0; ci < r.NumChips(); ci++ {
		chip := r.Chip(ci)
		if !chip.Healthy() {
			continue
		}
		for bank := 0; bank < g.Banks; bank++ {
			for row := 0; row < g.RowsPerBank; row++ {
				for v := 0; v < g.VLEWsPerRow(); v++ {
					chip.ReadVLEWInto(data, vcode, bank, row, v)
					fixed, err := code.Decode(data, vcode[:code.ParityBytes()])
					if err != nil {
						continue // leave it for the RS decode to flag
					}
					if fixed > 0 {
						chip.WriteVLEW(bank, row, v, data, vcode)
					}
				}
			}
		}
	}
}

// repairParityChip re-encodes every block's RS check bytes from the data
// chips — parity carries no user data, so there is nothing to copy from
// a replica.
//
//chipkill:rankwide
//chipkill:holds engine.rank
func (f *Fleet) repairParityChip(n *node, rep *RepairReport) {
	r := n.rank
	r.CloseAllRows() // drain EURs so raw reads see settled cells
	f.scrubVLEWs(n)  // re-encoding drifted data would freeze the drift in
	r.RepairChip(n.rank.ParityChipIndex())
	chip := r.Chip(r.ParityChipIndex())
	start := time.Now()
	for b := int64(0); b < r.Blocks(); b++ {
		data, _ := r.ReadBlockRaw(b)
		loc := r.Locate(b)
		chip.WriteData(loc.Bank, loc.Row, loc.Col, f.rsCode.Encode(data))
		rep.ErasureBlocks++
	}
	rep.ErasureNS = time.Since(start).Nanoseconds()
	rep.ErasureBands = int(r.Blocks() / f.bandBlocks)
}

// repairDataChip rebuilds a failed data chip band by band: replica copy
// where the band has a live replica, RS erasure decode everywhere else
// (unreplicated primary bands and the rank's replica pool). Reads of
// other ranks' engines from here are ordinary corrected demand reads.
//
//chipkill:rankwide
//chipkill:holds engine.rank
func (f *Fleet) repairDataChip(n *node, chip int, rep *RepairReport) {
	r := n.rank
	r.CloseAllRows()
	f.scrubVLEWs(n) // the erasure path has no margin for residual drift
	// RepairChip zeroes the chip's cells and clears its failed latch;
	// from here on WriteData lands (it is a no-op on a failed chip).
	r.RepairChip(chip)

	buf := make([]byte, f.blockBytes)
	bandsDone := 0
	for localBand := int64(0); localBand < f.primary; localBand++ {
		fb := f.fleetBand(n.idx, localBand)
		bs := &f.bands[fb]
		copied := false
		if bs.state.Load() == bandActive {
			rn := f.ranks[bs.replicaRank.Load()]
			if !rn.killed.Load() {
				copied = f.repairBandFromReplica(n, rn, bs, chip, localBand, fb, buf, rep)
			}
		}
		if !copied {
			f.repairBandByErasure(n, chip, localBand*f.bandBlocks, f.bandBlocks, rep)
		}
		bandsDone++
		if f.cfg.RepairBandHook != nil {
			// The campaign hooks registered here kill *other* ranks
			// mid-repair, quiescing a different engine instance than the
			// one this repair holds; the instance-blind lock model cannot
			// see the distinction. The single supervision goroutine never
			// re-enters this rank's own quiesce.
			//chipkill:allow lockorder hook quiesces a different rank's engine, never this one's
			f.cfg.RepairBandHook(n.idx, bandsDone)
		}
	}
	// The replica pool holds other bands' mirror copies; rebuild it by
	// erasure (its contents are re-verifiable against the primaries by
	// the anti-entropy sweep anyway).
	f.repairBandByErasure(n, chip, f.poolBase, r.Blocks()-f.poolBase, rep)
}

// repairBandFromReplica byte-copies one band's slice of the repaired
// chip from the band's replica rank: corrected read of each block on the
// replica engine, then an 8-byte WriteData of just the dead chip's
// contribution. Reports false (leaving the band to the erasure path) if
// any replica read fails.
//
//chipkill:rankwide
//chipkill:holds engine.rank
func (f *Fleet) repairBandFromReplica(n, rn *node, bs *bandState, chip int, localBand, fb int64, buf []byte, rep *RepairReport) bool {
	r := n.rank
	nb := r.Config().ChipAccessBytes
	localBase := localBand * f.bandBlocks
	fleetBase := fb * f.bandBlocks
	cdev := r.Chip(chip)
	start := time.Now()
	for i := int64(0); i < f.bandBlocks; i++ {
		if err := rn.eng.ReadBlockInto(f.replicaBlock(bs, fleetBase+i), buf); err != nil {
			return false // replica unreadable: erasure-decode the band instead
		}
		loc := r.Locate(localBase + i)
		cdev.WriteData(loc.Bank, loc.Row, loc.Col, buf[chip*nb:(chip+1)*nb])
	}
	rep.ReplicaNS += time.Since(start).Nanoseconds()
	rep.ReplicaBlocks += f.bandBlocks
	rep.ReplicaBands++
	return true
}

// repairBandByErasure reconstructs `count` blocks starting at a local
// block via RS erasure decode over the surviving chips — the same
// rebuild BootScrub runs, timed.
//
//chipkill:rankwide
//chipkill:holds engine.rank
func (f *Fleet) repairBandByErasure(n *node, chip int, base, count int64, rep *RepairReport) {
	r := n.rank
	nb := r.Config().ChipAccessBytes
	cdev := r.Chip(chip)
	erasures := make([]int, nb)
	for i := range erasures {
		erasures[i] = chip*nb + i
	}
	start := time.Now()
	for i := int64(0); i < count; i++ {
		b := base + i
		data, check := r.ReadBlockRaw(b)
		for j := chip * nb; j < (chip+1)*nb; j++ {
			data[j] = 0
		}
		if _, err := f.rsCode.Decode(data, check, erasures); err != nil {
			rep.Unrecoverable = true
			continue
		}
		loc := r.Locate(b)
		cdev.WriteData(loc.Bank, loc.Row, loc.Col, data[chip*nb:(chip+1)*nb])
	}
	rep.ErasureNS += time.Since(start).Nanoseconds()
	rep.ErasureBlocks += count
	rep.ErasureBands += int(count / f.bandBlocks)
}
