package inject

import "fmt"

// paperFallbackBand bounds the measured VLEW-fallback rate at the runtime
// RBER of 2e-4 to within 2x of the paper's ~0.018% (Sec V-C): with one
// byte per RS symbol, P[>2 bad symbols in a 72-symbol block] ~= 2.3e-4.
var paperFallbackBand = Band{Lo: 0.9e-4, Hi: 3.6e-4}

// SuiteNames lists the named suites in presentation order.
func SuiteNames() []string { return []string{"smoke", "standard", "guard", "soak", "escape"} }

// Suite returns the campaign list for a named suite, parameterised by the
// base seed (each campaign further mixes in its own name).
func Suite(name string, seed int64) ([]Campaign, error) {
	switch name {
	case "smoke":
		return smokeSuite(seed), nil
	case "standard":
		return standardSuite(seed), nil
	case "guard":
		return guardSuite(seed), nil
	case "soak":
		return soakSuite(seed), nil
	case "escape":
		return escapeSuite(seed), nil
	default:
		return nil, fmt.Errorf("inject: unknown suite %q (have %v)", name, SuiteNames())
	}
}

// smokeSuite is the seconds-scale gate run under `go test ./...`, `make
// check`, and CI: one campaign per headline mechanism.
func smokeSuite(seed int64) []Campaign {
	return []Campaign{
		{
			// Runtime drift at the top of the paper's runtime RBER band:
			// every read must come back byte-exact with zero DUEs.
			Name: "smoke-drift", Seed: seed,
			Ops: 2000, WriteFrac: 0.3, OMVHitRate: 0.7,
			Events: []Event{
				{AtOp: 0, Kind: EvDrift, RBER: 2e-4},
			},
		},
		{
			// Whole-chip kill mid-run: reads switch to RS erasure
			// reconstruction, writes keep landing, nothing is lost.
			Name: "smoke-chipkill", Seed: seed,
			Banks: 1, RowsPerBank: 4, RowBytes: 1024,
			Ops: 1000, WriteFrac: 0.3, OMVHitRate: 0.7,
			Events: []Event{
				{AtOp: 300, Kind: EvDrift, RBER: 7e-5},
				{AtOp: 300, Kind: EvChipKill, Chip: 2},
			},
		},
		{
			// Same drift campaign driven through the sharded engine: the
			// engine backend must survive a fault campaign with zero
			// SDC/DUE just like the bare controller.
			Name: "smoke-drift-engine", Seed: seed,
			EngineShards: 2,
			Ops:          2000, WriteFrac: 0.3, OMVHitRate: 0.7,
			Events: []Event{
				{AtOp: 0, Kind: EvDrift, RBER: 2e-4},
			},
		},
		{
			// Crash-and-reboot: volatile state dropped, outage drift at
			// boot-scale RBER, BootScrub, then byte-for-byte persistence.
			Name: "smoke-crash", Seed: seed,
			Ops: 600, WriteFrac: 0.4, OMVHitRate: 0.7,
			Events: []Event{
				{AtOp: 400, Kind: EvCrashReboot, RBER: 1e-3},
			},
		},
	}
}

// standardSuite is the acceptance gate: every fault class the scheme
// claims to handle, at runtime RBERs, with the fallback-rate check pinned
// to the paper's number.
func standardSuite(seed int64) []Campaign {
	// Each fallback round: fresh drift at the runtime RBER, a classified
	// sweep, then a refresh (boot scrub) so rounds are independent.
	fallbackRounds := 16
	var fallbackEvents []Event
	for i := 0; i < fallbackRounds; i++ {
		fallbackEvents = append(fallbackEvents,
			Event{Kind: EvDrift, RBER: 2e-4},
			Event{Kind: EvSweep},
			Event{Kind: EvBootScrub},
		)
	}
	return []Campaign{
		{
			// Low end of the runtime RBER band: reads should be almost
			// entirely clean or RS-corrected.
			Name: "runtime-drift-low", Seed: seed,
			Ops: 4000, WriteFrac: 0.3, OMVHitRate: 0.7,
			Events: []Event{
				{AtOp: 0, Kind: EvDrift, RBER: 7e-5},
				{AtOp: 2000, Kind: EvDrift, RBER: 7e-5},
			},
		},
		{
			// Fallback-rate measurement (Sec V-C): repeated fresh-drift
			// sweeps at RBER 2e-4 over a larger rank; the VLEW-fallback
			// rate must land within 2x of the paper's ~0.018% and the
			// fallback path must actually engage.
			Name: "fallback-rate", Seed: seed,
			Banks: 4, RowsPerBank: 16, RowBytes: 1024,
			Ops:    0,
			Events: fallbackEvents,
			Expect: Expect{FallbackRate: &paperFallbackBand, MinFallback: 10},
		},
		{
			// Write-path stress: XOR-delta corruption on the chip bus plus
			// targeted flips in the data, VLEW-code, and parity regions.
			Name: "write-stress", Seed: seed,
			Ops: 6000, WriteFrac: 0.5, OMVHitRate: 0.6,
			Events: []Event{
				{AtOp: 500, Kind: EvDeltaCorrupt},
				{AtOp: 1500, Kind: EvDeltaCorrupt},
				{AtOp: 2500, Kind: EvDeltaCorrupt},
				{AtOp: 3000, Kind: EvDrift, RBER: 7e-5},
				{AtOp: 3500, Kind: EvDeltaCorrupt},
				{AtOp: 4000, Kind: EvFlip, Region: RegionData, Chip: ChipRandom, Bits: 12},
				{AtOp: 4500, Kind: EvFlip, Region: RegionCode, Chip: ChipRandom, Bits: 12},
				{AtOp: 5000, Kind: EvFlip, Region: RegionParity, Bits: 8},
				{AtOp: 5500, Kind: EvDeltaCorrupt},
			},
		},
		{
			// Two full crash/reboot cycles at boot-scale RBER with a
			// parallel scrub pool and a concurrent stats monitor.
			Name: "crash-reboot", Seed: seed,
			Ops: 3000, WriteFrac: 0.4, OMVHitRate: 0.7,
			ScrubWorkers: 4, ProbeStatsDuringScrub: true,
			Events: []Event{
				{AtOp: 1000, Kind: EvCrashReboot, RBER: 1e-3},
				{AtOp: 2000, Kind: EvCrashReboot, RBER: 1e-3},
			},
		},
		{
			// Chip kill at runtime with drift already in the array: every
			// later read reconstructs the dead chip via RS erasure.
			Name: "chipkill-runtime", Seed: seed,
			Banks: 1, RowsPerBank: 8, RowBytes: 1024,
			Ops: 2500, WriteFrac: 0.3, OMVHitRate: 0.7,
			Events: []Event{
				{AtOp: 500, Kind: EvDrift, RBER: 7e-5},
				{AtOp: 1000, Kind: EvChipKill, Chip: 2},
			},
		},
		{
			// Chip kill, then crash: the reboot scrub must rebuild the
			// dead chip from RS erasure and re-encode its VLEW code bits.
			Name: "chipkill-rebuild", Seed: seed,
			Ops: 2000, WriteFrac: 0.3, OMVHitRate: 0.7,
			Events: []Event{
				{AtOp: 800, Kind: EvChipKill, Chip: 5},
				{AtOp: 1400, Kind: EvCrashReboot, RBER: 3e-4},
			},
		},
		{
			// Parity-chip kill: runtime reads lose the RS check but keep
			// the data; the reboot scrub re-encodes the parity chip.
			Name: "parity-kill", Seed: seed,
			Ops: 1500, WriteFrac: 0.3, OMVHitRate: 0.7,
			Events: []Event{
				{AtOp: 500, Kind: EvChipKill, Chip: ChipParity},
				{AtOp: 1000, Kind: EvCrashReboot, RBER: 1e-4},
			},
		},
		{
			// Degraded (remapped) mode, Sec V-E: fail a data chip, remap it
			// into the parity chip with striped VLEWs, then keep serving
			// reads and writes under drift.
			Name: "degraded-mode", Seed: seed,
			Banks: 1, RowsPerBank: 4, RowBytes: 512,
			Ops: 2000, WriteFrac: 0.3, OMVHitRate: 0.5,
			Events: []Event{
				{AtOp: 600, Kind: EvChipKill, Chip: 3},
				{AtOp: 600, Kind: EvEnterDegraded, Chip: 3},
				{AtOp: 1200, Kind: EvDrift, RBER: 7e-5},
			},
		},
	}
}

// guardSuite exercises the self-healing runtime: the internal/guard
// supervisor detecting and repairing faults in the loop, with the oracle
// holding it to zero SDC and zero lost writes.
func guardSuite(seed int64) []Campaign {
	return []Campaign{
		{
			// A data chip dies under concurrent demand traffic; the
			// supervisor detects it from telemetry, convicts it with
			// probes, and migrates the rank online — workers never pause,
			// and some of their ops must land mid-migration.
			Name: "guard-chipkill-load", Seed: seed,
			Banks: 4, RowsPerBank: 8, RowBytes: 1024,
			Ops: 200, WriteFrac: 0.3, OMVHitRate: 0.7,
			Guard: &GuardSpec{Scenario: ScenarioChipKillUnderLoad, Workers: 4, KillChip: 2},
		},
		{
			// Power loss tears a journal write mid-migration; the reboot
			// supervisor must resume from the journal, redo the in-doubt
			// band, and finish with every block intact.
			Name: "guard-crash-migration", Seed: seed,
			Ops: 0, WriteFrac: 0.3, OMVHitRate: 0.7,
			Guard: &GuardSpec{Scenario: ScenarioCrashDuringMigration, KillChip: 1, CrashAfterBands: 8},
		},
		{
			// A dead VLEW on a healthy chip floods the failure telemetry;
			// the probe rounds must acquit — zero verdicts, zero spurious
			// migrations.
			Name: "guard-transient-storm", Seed: seed,
			Ops: 0, WriteFrac: 0.3, OMVHitRate: 0.7,
			Guard: &GuardSpec{Scenario: ScenarioTransientStorm, StormChip: 3},
		},
	}
}

// escapeSuite demonstrates the scheme's documented trust boundary: an OMV
// corrupted below the LLC's ECC produces a fully consistent codeword for
// the wrong data. Only the model-based oracle catches it; the campaign
// passes precisely because the oracle reports SDC.
func escapeSuite(seed int64) []Campaign {
	return []Campaign{
		{
			Name: "omv-escape", Seed: seed,
			Ops: 400, WriteFrac: 1.0, OMVHitRate: 1.0,
			Events: []Event{
				{AtOp: 200, Kind: EvOMVCorrupt},
			},
			Expect: Expect{AllowSDC: true},
		},
	}
}

// soakSuite is the deep campaign set kept out of the default test run
// (`-tags soak`, `faultcampaign -suite soak`): larger ranks, more rounds,
// and the full kill matrix over every chip including parity.
func soakSuite(seed int64) []Campaign {
	rounds := 8
	var driftEvents []Event
	for i := 0; i < rounds; i++ {
		driftEvents = append(driftEvents,
			Event{AtOp: i * 2500, Kind: EvDrift, RBER: 2e-4},
			Event{AtOp: i*2500 + 1250, Kind: EvSweep},
			Event{AtOp: i*2500 + 1250, Kind: EvBootScrub},
		)
	}
	cs := []Campaign{
		{
			Name: "soak-drift", Seed: seed,
			Banks: 4, RowsPerBank: 32, RowBytes: 2048,
			Ops: rounds * 2500, WriteFrac: 0.3, OMVHitRate: 0.7,
			Events: driftEvents,
			Expect: Expect{MinFallback: 10},
		},
		{
			Name: "soak-crash-cycles", Seed: seed,
			Banks: 4, RowsPerBank: 16, RowBytes: 1024,
			Ops: 10000, WriteFrac: 0.4, OMVHitRate: 0.7,
			ScrubWorkers: 8, ProbeStatsDuringScrub: true,
			Events: []Event{
				{AtOp: 2000, Kind: EvCrashReboot, RBER: 1e-3},
				{AtOp: 4000, Kind: EvCrashReboot, RBER: 1e-3},
				{AtOp: 6000, Kind: EvCrashReboot, RBER: 1e-3},
				{AtOp: 8000, Kind: EvCrashReboot, RBER: 1e-3},
				{AtOp: 10000, Kind: EvCrashReboot, RBER: 1e-3},
			},
		},
	}
	// Kill matrix: every data chip plus the parity chip, each killed
	// mid-run and rebuilt across a crash.
	for ci := 0; ci < 9; ci++ {
		chip := ci
		name := fmt.Sprintf("soak-kill-chip%d", ci)
		if ci == 8 {
			chip = ChipParity
			name = "soak-kill-parity"
		}
		cs = append(cs, Campaign{
			Name: name, Seed: seed,
			Ops: 2000, WriteFrac: 0.3, OMVHitRate: 0.7,
			Events: []Event{
				{AtOp: 700, Kind: EvChipKill, Chip: chip},
				{AtOp: 1400, Kind: EvCrashReboot, RBER: 2e-4},
			},
		})
	}
	return cs
}
