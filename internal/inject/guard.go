package inject

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"chipkillpm/internal/engine"
	"chipkillpm/internal/guard"
)

// Guard scenario names.
const (
	ScenarioChipKillUnderLoad   = "chip-kill-under-load"
	ScenarioCrashDuringMigration = "crash-during-migration"
	ScenarioTransientStorm      = "transient-storm"
)

// GuardSpec declares a health-supervisor scenario. Unlike scripted
// campaigns, a guard campaign runs the internal/guard supervisor in the
// loop: the harness injects the fault and then only drives traffic and
// ticks — detection, discrimination, migration, and recovery are the
// supervisor's job, and the campaign verifies its conclusions plus the
// usual zero-SDC/zero-lost-write oracle sweep.
//
// The chip-kill-under-load scenario runs concurrent workers, so its
// operation counts are scheduling-dependent; its pass criteria are
// invariant properties (states reached, bands migrated, zero SDC/DUE),
// never exact counts.
type GuardSpec struct {
	Scenario string `json:"scenario"`
	// Workers is the concurrent demand-worker count for
	// chip-kill-under-load (default 4).
	Workers int `json:"workers,omitempty"`
	// KillChip is the data chip the scenario kills (default 2).
	KillChip int `json:"kill_chip,omitempty"`
	// CrashAfterBands is how many bands crash-during-migration lets the
	// supervisor journal before tearing a journal write (default 8).
	CrashAfterBands int64 `json:"crash_after_bands,omitempty"`
	// CrashKeepBytes is the torn-record prefix that survives the power
	// loss (default 20 — a header plus a sliver of payload).
	CrashKeepBytes int `json:"crash_keep_bytes,omitempty"`
	// StormChip hosts transient-storm's dead VLEW (default 3).
	StormChip int `json:"storm_chip,omitempty"`
}

func (s *GuardSpec) withDefaults() GuardSpec {
	g := *s
	if g.Workers <= 0 {
		g.Workers = 4
	}
	if g.KillChip <= 0 {
		g.KillChip = 2
	}
	if g.CrashAfterBands <= 0 {
		g.CrashAfterBands = 8
	}
	if g.CrashKeepBytes <= 0 {
		g.CrashKeepBytes = 20
	}
	if g.StormChip <= 0 {
		g.StormChip = 3
	}
	return g
}

// runGuard executes the campaign's guard scenario. The working set is
// already committed; the final oracle sweep runs afterwards in Run.
func (h *Harness) runGuard() {
	spec := h.c.Guard.withDefaults()
	g := &GuardReport{Scenario: spec.Scenario}
	h.rep.Guard = g

	region := guard.NewRegion(guard.RegionSizeFor(h.eng))
	cfg := guard.Config{Seed: campaignSeed(h.c.Name, h.c.Seed) + 3}
	sup, err := guard.New(h.eng, region, cfg)
	if err != nil {
		h.fail("guard", -1, fmt.Sprintf("building supervisor: %v", err))
		return
	}

	switch spec.Scenario {
	case ScenarioChipKillUnderLoad:
		h.guardChipKillUnderLoad(sup, spec)
	case ScenarioCrashDuringMigration:
		sup = h.guardCrashDuringMigration(sup, region, spec, cfg)
	case ScenarioTransientStorm:
		h.guardTransientStorm(sup, spec)
	default:
		h.fail("guard", -1, fmt.Sprintf("unknown guard scenario %q", spec.Scenario))
		return
	}
	if sup != nil {
		r := sup.Report()
		g.State = r.State.String()
		g.SuspicionsRaised = r.SuspicionsRaised
		g.SuspicionsCleared = r.SuspicionsCleared
		g.Verdicts = r.Verdicts
		g.MigrationResumed = g.MigrationResumed || r.MigrationResumed
	}
	g.BandsMigrated = h.stats().BandsMigrated
}

// guardChipKillUnderLoad kills a data chip while concurrent workers keep
// hammering disjoint block stripes, each against its own shadow copy; the
// supervisor must detect, convict, and migrate online — the workers never
// stop, and at least some of their traffic must overlap the migration
// (which is what "no global quiesce" means observably).
func (h *Harness) guardChipKillUnderLoad(sup *guard.Supervisor, spec GuardSpec) {
	e := h.eng
	seed := campaignSeed(h.c.Name, h.c.Seed)

	// Serial warmup through the oracle.
	for i := 0; i < h.c.Ops; i++ {
		h.randomOp()
	}

	e.Quiesce(func() { h.rank.FailChip(spec.KillChip) })
	h.rep.ChipKills++

	// Workers bypass the oracle until their shadows merge, so the
	// oracle-backed OMV cache must sit out the concurrent phase (see
	// omvSource).
	h.omv.disabled.Store(true)
	defer h.omv.disabled.Store(false)

	type workerState struct {
		shadow map[int64][]byte
		reads  int64
		writes int64
		overlapped int64
		err    error
	}
	var migrating atomic.Bool
	stop := make(chan struct{})
	results := make([]workerState, spec.Workers)
	var wg sync.WaitGroup
	for w := 0; w < spec.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &results[w]
			res.shadow = make(map[int64][]byte)
			rng := rand.New(rand.NewSource(seed + int64(w)*977 + 11))
			var owned []int64
			for i := w; i < len(h.blocks); i += spec.Workers {
				owned = append(owned, h.blocks[i])
			}
			buf := make([]byte, h.blockBytes)
			for {
				select {
				case <-stop:
					return
				default:
				}
				b := owned[rng.Intn(len(owned))]
				over := migrating.Load()
				if rng.Intn(3) == 0 {
					data := make([]byte, h.blockBytes)
					rng.Read(data)
					if err := e.WriteBlock(b, data); err != nil {
						res.err = fmt.Errorf("write %d: %w", b, err)
						return
					}
					res.shadow[b] = data
					res.writes++
				} else {
					if err := e.ReadBlockInto(b, buf); err != nil {
						res.err = fmt.Errorf("read %d: %w", b, err)
						return
					}
					want, ok := res.shadow[b]
					if !ok {
						want, _ = h.oracle.Expected(b)
					}
					if !bytes.Equal(buf, want) {
						res.err = fmt.Errorf("block %d: wrong data under self-heal", b)
						return
					}
					res.reads++
				}
				if over {
					res.overlapped++
				}
			}
		}(w)
	}

	for i := 0; i < 4000 && sup.State() != guard.StateDegraded && sup.State() != guard.StateWounded; i++ {
		migrating.Store(sup.State() == guard.StateMigrating)
		if err := sup.Tick(); err != nil {
			h.fail("guard", -1, fmt.Sprintf("tick in state %v: %v", sup.State(), err))
			break
		}
	}
	close(stop)
	wg.Wait()

	g := h.rep.Guard
	for w := range results {
		res := &results[w]
		if res.err != nil {
			h.fail("guard", -1, fmt.Sprintf("worker %d: %v", w, res.err))
		}
		for b, data := range res.shadow {
			h.oracle.Commit(b, data)
		}
		h.rep.Reads += res.reads
		h.rep.Writes += res.writes
		g.WorkerOps += res.reads + res.writes
		g.OpsDuringMigration += res.overlapped
	}

	if st := sup.State(); st != guard.StateDegraded {
		h.fail("guard", -1, fmt.Sprintf("supervisor finished in %v, want degraded", st))
	}
	if r := sup.Report(); r.Verdicts != 1 {
		h.fail("guard", -1, fmt.Sprintf("%d verdicts, want exactly 1", r.Verdicts))
	}
	if g.OpsDuringMigration == 0 {
		h.fail("guard", -1, "no worker traffic overlapped the migration (global quiesce?)")
	}
	if want := h.rank.Blocks() / h.eng.BandBlocks(); h.stats().BandsMigrated != want {
		h.fail("guard", -1, fmt.Sprintf("%d bands migrated, want %d", h.stats().BandsMigrated, want))
	}
	if d, chip := h.eng.Degraded(); !d || chip != spec.KillChip {
		h.fail("guard", -1, fmt.Sprintf("engine Degraded() = %v, %d after migration", d, chip))
	}
}

// guardCrashDuringMigration lets the supervisor migrate partway, tears a
// journal write mid-store (power loss), reboots onto a fresh engine and
// supervisor over the surviving bytes, and requires recovery to resume
// and complete the migration. Serial traffic through the oracle runs
// before the crash and after recovery; the reboot sequence (CloseAllRows
// onward) runs with the worker pool already drained.
//
//chipkill:rankwide
func (h *Harness) guardCrashDuringMigration(sup *guard.Supervisor, region *guard.Region, spec GuardSpec, cfg guard.Config) *guard.Supervisor {
	g := h.rep.Guard
	h.eng.Quiesce(func() { h.rank.FailChip(spec.KillChip) })
	h.rep.ChipKills++

	for i := 0; i < 4000 && h.stats().BandsMigrated < spec.CrashAfterBands; i++ {
		for j := 0; j < 4; j++ {
			h.randomOp()
		}
		if sup.State() == guard.StateMigrating {
			g.OpsDuringMigration += 4
		}
		if err := sup.Tick(); err != nil {
			h.fail("guard", -1, fmt.Sprintf("pre-crash tick: %v", err))
			return sup
		}
	}
	if sup.State() != guard.StateMigrating {
		h.fail("guard", -1, fmt.Sprintf("supervisor in %v before crash, want migrating", sup.State()))
		return sup
	}

	preCrash := h.stats().BandsMigrated
	region.TearNextWrite(spec.CrashKeepBytes)
	if err := sup.Tick(); err == nil {
		h.fail("guard", -1, "tick across the torn journal write reported success")
		return sup
	}
	if !region.Crashed() {
		h.fail("guard", -1, "tear never fired")
		return sup
	}
	if got := h.stats().BandsMigrated; got != preCrash {
		h.fail("guard", -1, fmt.Sprintf("rank ran ahead of the journal: %d bands vs %d", got, preCrash))
	}

	// Reboot: volatile chip state drains, a fresh engine comes up, and
	// the supervisor's recovery runs before any traffic or boot scrub.
	h.rank.CloseAllRows()
	region.Reboot()
	eng, err := engine.New(h.rank, h.engCfg())
	if err != nil {
		h.fail("guard", -1, fmt.Sprintf("reboot: %v", err))
		return nil
	}
	h.eng = eng
	h.rep.Crashes++
	sup2, err := guard.New(h.eng, region, cfg)
	if err != nil {
		h.fail("guard", -1, fmt.Sprintf("recovery: %v", err))
		return nil
	}
	rep := sup2.Report()
	if !rep.MigrationResumed || rep.State != guard.StateMigrating {
		h.fail("guard", -1, fmt.Sprintf("recovery did not resume the migration: %+v", rep))
		return sup2
	}
	g.MigrationResumed = true

	for i := 0; i < 4000 && sup2.State() != guard.StateDegraded; i++ {
		for j := 0; j < 2; j++ {
			h.randomOp()
		}
		g.OpsDuringMigration += 2
		if err := sup2.Tick(); err != nil {
			h.fail("guard", -1, fmt.Sprintf("post-recovery tick: %v", err))
			return sup2
		}
	}
	if sup2.State() != guard.StateDegraded {
		h.fail("guard", -1, fmt.Sprintf("resumed migration never finished: %v", sup2.State()))
	}
	if d, chip := h.eng.Degraded(); !d || chip != spec.KillChip {
		h.fail("guard", -1, fmt.Sprintf("post-recovery Degraded() = %v, %d", d, chip))
	}
	return sup2
}

// guardTransientStorm plants a dead VLEW — 24 bit flips in one block's
// chip slice, past both the RS threshold and the BCH budget, so every
// read of that block takes the erasure-repair path and logs a VLEW
// failure — on an otherwise healthy chip. The supervisor must raise
// suspicion, probe, and acquit: zero verdicts, zero migrations, zero
// spurious degraded transitions, zero DUEs.
func (h *Harness) guardTransientStorm(sup *guard.Supervisor, spec GuardSpec) {
	b := h.blocks[len(h.blocks)/2]
	loc := h.rank.Locate(b)
	n := h.rank.Config().ChipAccessBytes
	h.eng.Quiesce(func() {
		chip := h.rank.Chip(spec.StormChip)
		for k := 0; k < n; k++ {
			for _, bit := range []uint{0, 3, 6} {
				chip.FlipDataBit(loc.Bank, loc.Row, loc.Col+k, bit)
			}
		}
	})
	h.rep.FlipsInjected += int64(3 * n)

	// The storm: a burst of reads of the broken word (each classified).
	for i := 0; i < 3; i++ {
		h.readAndCheck(b)
	}

	for i := 0; i < 80 && sup.Report().SuspicionsCleared == 0; i++ {
		if st := sup.State(); st == guard.StateMigrating || st == guard.StateDegraded {
			h.fail("guard", -1, fmt.Sprintf("spurious %v on a transient storm", st))
			return
		}
		if err := sup.Tick(); err != nil {
			h.fail("guard", -1, fmt.Sprintf("tick: %v", err))
			return
		}
	}
	rep := sup.Report()
	if rep.SuspicionsRaised == 0 {
		h.fail("guard", -1, "storm never raised suspicion — scenario lost its signal")
	}
	if rep.SuspicionsCleared == 0 || rep.State != guard.StateHealthy {
		h.fail("guard", -1, fmt.Sprintf("storm not cleared: %+v", rep))
	}
	if rep.Verdicts != 0 {
		h.fail("guard", -1, fmt.Sprintf("%d spurious chip-kill verdicts on a transient storm", rep.Verdicts))
	}
	if h.eng.Migrating() != nil {
		h.fail("guard", -1, "spurious migration started")
	}
	if d, _ := h.eng.Degraded(); d {
		h.fail("guard", -1, "spurious degraded mode")
	}
	if tel := h.eng.Telemetry(); tel.DUEs != 0 {
		h.fail("guard", -1, fmt.Sprintf("%d DUEs during transient storm", tel.DUEs))
	}
}
