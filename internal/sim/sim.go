// Package sim wires the trace-driven cores, the cache hierarchy with
// SAM/OMV support, and the DDR timing model into the full-system
// performance simulator behind Figures 10 and 14-18.
//
// A run follows the paper's methodology (Sec VI): warm up, reset the
// counters, then measure a fixed instruction budget. The proposal is
// evaluated in two passes, exactly as the paper does: the first pass
// measures each workload's C factor (VLEW code-bit writes per persistent-
// memory write, Fig 15); the second pass inflates the persistent-memory
// write latency by 1 + 33/8*C (plus 20 ns of encoder and internal
// read-modify-write latency) and adds the VLEW-fallback read traffic.
package sim

import (
	"fmt"
	"sync"

	"chipkillpm/internal/cache"
	"chipkillpm/internal/config"
	"chipkillpm/internal/cpu"
	"chipkillpm/internal/memctrl"
	"chipkillpm/internal/nvram"
	"chipkillpm/internal/trace"
)

// Options configures a simulation run.
type Options struct {
	System config.System
	Tech   nvram.Tech // supplies the PM rank's read/write latencies
	// Instructions is the measured instruction budget summed over cores.
	Instructions int64
	// Warmup instructions executed (and discarded) before measuring.
	Warmup int64
	Seed   int64
	// Mode is the memory-controller behaviour (baseline or proposal).
	Mode memctrl.Mode
	// OMV selects the LLC's old-memory-value policy (cache.OMVPreserve
	// for the proposal, cache.OMVOff for the baseline).
	OMV cache.OMVPolicy
}

// DefaultOptions returns Table I with the given technology and a budget
// suitable for tests and experiments.
func DefaultOptions(tech nvram.Tech, seed int64) Options {
	sys := config.TableI().WithPMLatencies(tech.ReadLatency, tech.WriteLatency)
	return Options{
		System:       sys,
		Tech:         tech,
		Instructions: 2_000_000,
		Warmup:       500_000,
		Seed:         seed,
		Mode:         memctrl.BaselineMode(),
	}
}

// Result summarises one run.
type Result struct {
	Workload     string
	Class        trace.Class
	Instructions int64
	ElapsedNS    float64
	IPC          float64 // aggregate retired instructions per cycle

	CFactor     float64 // VLEW code writes / PM writes (Fig 15)
	OMVHitRate  float64 // Fig 18
	DirtyPMFrac float64 // mean dirty-PM share of all cachelines (Fig 10)
	OMVFrac     float64 // mean OMV share of LLC lines

	// Off-chip access breakdown (Fig 14).
	PMReadFrac, PMWriteFrac, DRAMReadFrac, DRAMWriteFrac float64

	Mem   memctrl.Stats
	Cache cache.Stats
}

// pmBase puts persistent memory high in the address space; each WHISPER
// process gets a private slice, SPLASH threads share one.
const (
	pmBase   = uint64(1) << 40
	dramBase = uint64(1) << 20
	sliceGap = uint64(1) << 32
)

// Run executes one workload under one configuration.
func Run(p trace.Profile, opt Options) (Result, error) {
	if opt.Instructions <= 0 {
		return Result{}, fmt.Errorf("sim: instruction budget must be positive")
	}
	sys := opt.System
	cores := sys.CPU.Cores

	pmSize := uint64(p.PMFootprintBlocks) * 64
	totalPMSize := pmSize
	if p.Class == trace.Whisper {
		totalPMSize = sliceGap * uint64(cores) // private slices
	}
	ctrl, err := memctrl.New(sys, opt.Mode, pmBase, totalPMSize, opt.Seed^0x5eed)
	if err != nil {
		return Result{}, err
	}
	hier, err := cache.New(sys, ctrl, opt.OMV)
	if err != nil {
		return Result{}, err
	}

	streams := make([]*trace.Stream, cores)
	cpus := make([]*cpu.Core, cores)
	for i := 0; i < cores; i++ {
		pb, db := pmBase, dramBase
		if p.Class == trace.Whisper {
			// Separate processes: disjoint memory slices.
			pb += uint64(i) * sliceGap
			db += uint64(i) * sliceGap / 4
		}
		streams[i] = trace.NewStream(p, pb, db, opt.Seed+int64(i)*101)
		cpus[i] = cpu.NewCore(i, sys.CPU, hier)
	}

	retired := func() int64 {
		var n int64
		for _, c := range cpus {
			n += c.Instructions()
		}
		return n
	}
	// step advances the core with the smallest local clock, keeping the
	// shared memory system's view of time approximately monotonic.
	step := func() {
		best := 0
		for i := 1; i < cores; i++ {
			if cpus[i].Now() < cpus[best].Now() {
				best = i
			}
		}
		cpus[best].Step(streams[best].Next())
	}

	for retired() < opt.Warmup {
		step()
	}
	ctrl.ResetStats()
	hier.ResetStats()
	startInstr := retired()
	startNS := 0.0
	for _, c := range cpus {
		if c.Now() > startNS {
			startNS = c.Now()
		}
	}

	var dirtySum, omvSum float64
	samples := 0
	sampleEvery := int64(opt.Instructions / 64)
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	nextSample := startInstr + sampleEvery

	for retired()-startInstr < opt.Instructions {
		step()
		if retired() >= nextSample {
			d, o := hier.Occupancy()
			dirtySum += d
			omvSum += o
			samples++
			nextSample += sampleEvery
		}
	}
	ctrl.Drain()

	endNS := 0.0
	for _, c := range cpus {
		if c.Now() > endNS {
			endNS = c.Now()
		}
	}
	elapsed := endNS - startNS
	if elapsed <= 0 {
		elapsed = 1
	}
	instr := retired() - startInstr
	cycles := elapsed * sys.CyclesPerNS()

	ms := ctrl.Stats()
	cs := hier.Stats()
	res := Result{
		Workload:     p.Name,
		Class:        p.Class,
		Instructions: instr,
		ElapsedNS:    elapsed,
		IPC:          float64(instr) / cycles,
		CFactor:      ms.CFactor(),
		OMVHitRate:   cs.OMVHitRate(),
		Mem:          ms,
		Cache:        cs,
	}
	if samples > 0 {
		res.DirtyPMFrac = dirtySum / float64(samples)
		res.OMVFrac = omvSum / float64(samples)
	}
	total := float64(ms.PMReads + ms.PMWrites + ms.DRAMReads + ms.DRAMWrites)
	if total > 0 {
		res.PMReadFrac = float64(ms.PMReads) / total
		res.PMWriteFrac = float64(ms.PMWrites) / total
		res.DRAMReadFrac = float64(ms.DRAMReads) / total
		res.DRAMWriteFrac = float64(ms.DRAMWrites) / total
	}
	return res, nil
}

// Comparison holds a baseline/proposal pair for one workload.
type Comparison struct {
	Workload   string
	Class      trace.Class
	Baseline   Result
	CPass      Result  // proposal pass 1 (C measurement)
	Proposal   Result  // proposal pass 2 (with inflated tWR)
	Normalized float64 // proposal performance / baseline performance
}

// Compare runs the paper's three-step evaluation for one workload: the
// bit-error-only baseline, a C-measurement pass, and the proposal with
// the measured C folded into the write latency. The baseline and the
// C-measurement pass share no state and have no data dependency, so they
// run concurrently; the proposal pass needs the measured C and runs after.
func Compare(p trace.Profile, opt Options) (Comparison, error) {
	var cmp Comparison
	cmp.Workload = p.Name
	cmp.Class = p.Class

	baseOpt := opt
	baseOpt.Mode = memctrl.BaselineMode()
	baseOpt.OMV = cache.OMVOff

	cOpt := opt
	cOpt.Mode = memctrl.ProposalMode(0) // measure C without inflation
	cOpt.OMV = cache.OMVPreserve

	var (
		base, cPass       Result
		baseErr, cPassErr error
		wg                sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		base, baseErr = Run(p, baseOpt)
	}()
	cPass, cPassErr = Run(p, cOpt)
	wg.Wait()
	if baseErr != nil {
		return cmp, baseErr
	}
	if cPassErr != nil {
		return cmp, cPassErr
	}
	cmp.Baseline = base
	cmp.CPass = cPass

	propOpt := opt
	propOpt.Mode = memctrl.ProposalMode(cPass.CFactor)
	propOpt.OMV = cache.OMVPreserve
	prop, err := Run(p, propOpt)
	if err != nil {
		return cmp, err
	}
	cmp.Proposal = prop
	if base.IPC > 0 {
		cmp.Normalized = prop.IPC / base.IPC
	}
	return cmp, nil
}
