package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"chipkillpm/internal/rank"
)

// smallRank builds a small but paper-shaped rank: 2 banks x 8 rows x 1KB
// rows = 2048 blocks.
func smallRank(t testing.TB, seed int64) *rank.Rank {
	t.Helper()
	r, err := rank.New(rank.PaperConfig(2, 8, 1024, seed))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func newTestController(t testing.TB, seed int64, omv OMVProvider) *Controller {
	t.Helper()
	c, err := NewController(smallRank(t, seed), DefaultConfig(), omv)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// fillRandom populates every block with deterministic random data and
// returns the reference copy.
func fillRandom(t testing.TB, c *Controller, seed int64) map[int64][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ref := make(map[int64][]byte)
	for b := int64(0); b < c.Rank().Blocks(); b++ {
		data := make([]byte, 64)
		rng.Read(data)
		if err := c.WriteBlockInitial(b, data); err != nil {
			t.Fatal(err)
		}
		ref[b] = data
	}
	return ref
}

func TestNewControllerValidation(t *testing.T) {
	r := smallRank(t, 1)
	if _, err := NewController(r, Config{Threshold: -1}, nil); err == nil {
		t.Error("negative threshold accepted")
	}
	if _, err := NewController(r, Config{Threshold: 5}, nil); err == nil {
		t.Error("threshold beyond RS capability accepted")
	}
}

func TestCleanReadWrite(t *testing.T) {
	c := newTestController(t, 1, nil)
	ref := fillRandom(t, c, 2)
	for b, want := range ref {
		got, err := c.ReadBlock(b)
		if err != nil {
			t.Fatalf("block %d: %v", b, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d: data mismatch", b)
		}
	}
	st := c.Stats()
	if st.ReadsClean != st.Reads || st.ReadsVLEWFallback != 0 {
		t.Errorf("unexpected read outcomes: %+v", st)
	}
}

func TestWritePathUpdatesDataAndChecks(t *testing.T) {
	// Writes go through the XOR path; subsequent reads must verify clean
	// against both the RS check bytes and the chips' VLEW code bits.
	c := newTestController(t, 3, nil)
	fillRandom(t, c, 4)
	rng := rand.New(rand.NewSource(5))
	written := map[int64][]byte{}
	for i := 0; i < 300; i++ {
		b := rng.Int63n(c.Rank().Blocks())
		data := make([]byte, 64)
		rng.Read(data)
		if err := c.WriteBlock(b, data); err != nil {
			t.Fatal(err)
		}
		written[b] = data
	}
	for b, want := range written {
		got, err := c.ReadBlock(b)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("block %d: got err=%v", b, err)
		}
	}
	// VLEW code bits must be consistent after closing rows.
	c.Rank().CloseAllRows()
	rep := c.BootScrub()
	if rep.BitsCorrected != 0 || len(rep.ChipsFailed) != 0 {
		t.Errorf("scrub found inconsistencies after writes: %v", rep)
	}
}

func TestRuntimeOpportunisticCorrection(t *testing.T) {
	// Inject a low RBER; most erroneous reads should be corrected by RS
	// within the threshold, without VLEW fallback.
	c := newTestController(t, 6, nil)
	ref := fillRandom(t, c, 7)
	c.ResetStats()
	c.Rank().InjectRetentionErrors(2e-4)
	bad := 0
	for b, want := range ref {
		got, err := c.ReadBlock(b)
		if err != nil {
			t.Fatalf("block %d: %v", b, err)
		}
		if !bytes.Equal(got, want) {
			bad++
		}
	}
	if bad != 0 {
		t.Errorf("%d blocks returned wrong data", bad)
	}
	st := c.Stats()
	if st.ReadsRSCorrected == 0 {
		t.Error("expected some opportunistic RS corrections at 2e-4")
	}
	t.Logf("reads=%d clean=%d rs=%d fallback=%d", st.Reads, st.ReadsClean, st.ReadsRSCorrected, st.ReadsVLEWFallback)
}

func TestVLEWFallbackOnDenseErrors(t *testing.T) {
	// At a high RBER some blocks carry >2 bad bytes; the threshold
	// rejects the opportunistic RS correction for them and the VLEW path
	// must recover the data bit-exactly.
	c := newTestController(t, 10, nil)
	ref := fillRandom(t, c, 11)
	c.ResetStats()
	c.Rank().InjectRetentionErrors(2e-3)
	for b, want := range ref {
		got, err := c.ReadBlock(b)
		if err != nil {
			t.Fatalf("block %d: %v", b, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d: VLEW fallback returned wrong data", b)
		}
	}
	if c.Stats().ReadsVLEWFallback == 0 {
		t.Error("expected VLEW fallbacks at RBER 2e-3")
	}
	t.Logf("fallbacks: %d / %d reads", c.Stats().ReadsVLEWFallback, c.Stats().Reads)
}

func TestBootScrubCorrectsOutageErrors(t *testing.T) {
	// Simulate a long outage at RBER 1e-3 and verify scrub restores every
	// block bit-exactly.
	c := newTestController(t, 12, nil)
	ref := fillRandom(t, c, 13)
	flips := c.Rank().InjectRetentionErrors(1e-3)
	if flips == 0 {
		t.Fatal("no errors injected")
	}
	rep := c.BootScrub()
	if rep.Unrecoverable || len(rep.ChipsFailed) != 0 {
		t.Fatalf("scrub failed: %v", rep)
	}
	if rep.BitsCorrected == 0 {
		t.Fatal("scrub corrected nothing")
	}
	for b, want := range ref {
		got, err := c.ReadBlock(b)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("block %d wrong after scrub: err=%v", b, err)
		}
	}
	st := c.Stats()
	if st.ReadsClean != st.Reads {
		t.Errorf("post-scrub reads not all clean: %+v", st)
	}
	t.Logf("%s", rep)
}

func TestBootScrubRecoversFailedDataChip(t *testing.T) {
	// Chipkill: fail one data chip during an outage; scrub must detect it
	// via uncorrectable VLEWs and rebuild it through RS erasure.
	c := newTestController(t, 14, nil)
	ref := fillRandom(t, c, 15)
	c.Rank().FailChip(3)
	c.Rank().InjectRetentionErrors(1e-3)
	rep := c.BootScrub()
	if rep.Unrecoverable {
		t.Fatalf("scrub unrecoverable: %v", rep)
	}
	if len(rep.ChipsFailed) != 1 || rep.ChipsFailed[0] != 3 {
		t.Fatalf("failed chips = %v, want [3]", rep.ChipsFailed)
	}
	if rep.BlocksRebuilt != c.Rank().Blocks() {
		t.Fatalf("rebuilt %d blocks, want %d", rep.BlocksRebuilt, c.Rank().Blocks())
	}
	for b, want := range ref {
		got, err := c.ReadBlock(b)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("block %d wrong after chip rebuild: err=%v", b, err)
		}
	}
}

func TestBootScrubRecoversFailedParityChip(t *testing.T) {
	c := newTestController(t, 16, nil)
	ref := fillRandom(t, c, 17)
	c.Rank().FailChip(c.Rank().ParityChipIndex())
	c.Rank().InjectRetentionErrors(5e-4)
	rep := c.BootScrub()
	if rep.Unrecoverable || len(rep.ChipsRebuilt) != 1 {
		t.Fatalf("scrub: %v", rep)
	}
	for b, want := range ref {
		got, err := c.ReadBlock(b)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("block %d wrong after parity rebuild: err=%v", b, err)
		}
	}
	// Check bytes must have been recomputed: a later runtime single-byte
	// corruption must be RS-correctable again.
	st := c.Stats()
	if st.ReadsClean != st.Reads {
		t.Error("reads not clean after parity rebuild")
	}
}

func TestTwoChipFailuresAreUnrecoverable(t *testing.T) {
	c := newTestController(t, 18, nil)
	fillRandom(t, c, 19)
	c.Rank().FailChip(1)
	c.Rank().FailChip(5)
	rep := c.BootScrub()
	if !rep.Unrecoverable {
		t.Fatal("two chip failures must be unrecoverable")
	}
}

func TestRuntimeChipFailureCorrectedViaFallback(t *testing.T) {
	// A chip fails at runtime: every read of its blocks sees 8 bad bytes,
	// exceeding the RS threshold; the VLEW fallback detects the failed
	// chip (uncorrectable VLEW) and erasure-corrects the block.
	c := newTestController(t, 20, nil)
	ref := fillRandom(t, c, 21)
	c.ResetStats()
	c.Rank().FailChip(6)
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 100; i++ {
		b := rng.Int63n(c.Rank().Blocks())
		got, err := c.ReadBlock(b)
		if err != nil {
			t.Fatalf("block %d: %v", b, err)
		}
		if !bytes.Equal(got, ref[b]) {
			t.Fatalf("block %d: wrong data under runtime chip failure", b)
		}
	}
	st := c.Stats()
	if st.ChipFailuresCorrected == 0 || st.ReadsVLEWFallback == 0 {
		t.Errorf("expected chip-failure corrections: %+v", st)
	}
}

func TestRuntimeParityChipFailureStillReadable(t *testing.T) {
	c := newTestController(t, 23, nil)
	ref := fillRandom(t, c, 24)
	c.ResetStats()
	c.Rank().FailChip(c.Rank().ParityChipIndex())
	for b := int64(0); b < 50; b++ {
		got, err := c.ReadBlock(b)
		if err != nil {
			t.Fatalf("block %d: %v", b, err)
		}
		if !bytes.Equal(got, ref[b]) {
			t.Fatalf("block %d: wrong data", b)
		}
	}
}

// trackingOMV is a test OMVProvider backed by a map.
type trackingOMV struct {
	values map[int64][]byte
	asked  int
}

func (p *trackingOMV) OMV(b int64) ([]byte, bool) {
	p.asked++
	v, ok := p.values[b]
	return v, ok
}

func TestOMVProviderAvoidsMemoryFetch(t *testing.T) {
	prov := &trackingOMV{values: map[int64][]byte{}}
	c := newTestController(t, 25, prov)
	ref := fillRandom(t, c, 26)
	c.ResetStats()
	// Provider knows block 7's old value; write should hit.
	prov.values[7] = ref[7]
	newData := make([]byte, 64)
	rand.New(rand.NewSource(27)).Read(newData)
	if err := c.WriteBlock(7, newData); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.OMVHits != 1 || st.OMVMisses != 0 || st.BlockFetches != 0 {
		t.Errorf("hit path stats: %+v", st)
	}
	// Unknown block: must fetch from memory (one extra block fetch).
	if err := c.WriteBlock(8, newData); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.OMVMisses != 1 || st.BlockFetches != 1 {
		t.Errorf("miss path stats: %+v", st)
	}
	// Both writes must have landed correctly.
	for _, b := range []int64{7, 8} {
		got, err := c.ReadBlock(b)
		if err != nil || !bytes.Equal(got, newData) {
			t.Fatalf("block %d incorrect after OMV write: err=%v", b, err)
		}
	}
}

func TestStaleOMVKeepsCodesConsistentButCorruptsData(t *testing.T) {
	// If the OMV provider lies (stale value), the chip still stores
	// delta XOR stored-old, so data is wrong but VLEW/RS codes remain
	// consistent relative to the stored bits — no uncorrectable error,
	// but wrong data. This documents why OMV integrity matters.
	prov := &trackingOMV{values: map[int64][]byte{}}
	c := newTestController(t, 28, prov)
	ref := fillRandom(t, c, 29)
	stale := append([]byte(nil), ref[3]...)
	stale[0] ^= 0xFF
	prov.values[3] = stale
	newData := make([]byte, 64)
	if err := c.WriteBlock(3, newData); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadBlock(3)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, newData) {
		t.Fatal("stale OMV unexpectedly produced correct data")
	}
	if got[0] != newData[0]^0xFF {
		t.Error("corruption pattern should mirror the stale byte")
	}
}

func TestDisabledBlock(t *testing.T) {
	c := newTestController(t, 30, nil)
	fillRandom(t, c, 31)
	c.DisableBlock(40)
	if !c.BlockDisabled(40) {
		t.Fatal("block not disabled")
	}
	if _, err := c.ReadBlock(40); !errors.Is(err, ErrBlockDisabled) {
		t.Errorf("read of disabled block: %v", err)
	}
	if err := c.WriteBlock(40, make([]byte, 64)); !errors.Is(err, ErrBlockDisabled) {
		t.Errorf("write of disabled block: %v", err)
	}
	// Neighbouring blocks in the same VLEW must remain fully readable
	// and scrubbable (the VLEW treats the disabled block as zeros).
	c.Rank().CloseAllRows()
	rep := c.BootScrub()
	if rep.BitsCorrected != 0 || len(rep.ChipsFailed) != 0 {
		t.Errorf("scrub after disable: %v", rep)
	}
}

func TestWriteBlockSizeValidation(t *testing.T) {
	c := newTestController(t, 32, nil)
	if err := c.WriteBlock(0, make([]byte, 10)); err == nil {
		t.Error("short write accepted")
	}
	if err := c.WriteBlockInitial(0, make([]byte, 10)); err == nil {
		t.Error("short initial write accepted")
	}
}

func TestWriteBackVLEWCorrectionsScrubs(t *testing.T) {
	r := smallRank(t, 33)
	c, err := NewController(r, Config{Threshold: 2, WriteBackVLEWCorrections: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := fillRandom(t, c, 34)
	c.Rank().InjectRetentionErrors(3e-3)
	// Read everything once: fallback corrections are written back.
	for b := int64(0); b < c.Rank().Blocks(); b++ {
		if _, err := c.ReadBlock(b); err != nil {
			t.Fatalf("block %d: %v", b, err)
		}
	}
	first := c.Stats().ReadsVLEWFallback
	if first == 0 {
		t.Skip("no fallbacks triggered; raise RBER")
	}
	// Second pass: previously written-back blocks should not fall back
	// again (their dense errors were scrubbed).
	c.ResetStats()
	for b := int64(0); b < c.Rank().Blocks(); b++ {
		got, err := c.ReadBlock(b)
		if err != nil || !bytes.Equal(got, ref[b]) {
			t.Fatalf("block %d: err=%v", b, err)
		}
	}
	if again := c.Stats().ReadsVLEWFallback; again != 0 {
		t.Errorf("%d fallbacks after write-back scrubbing, want 0", again)
	}
}

func TestControllerStorageOverheadMatchesPaper(t *testing.T) {
	c := newTestController(t, 35, nil)
	got := c.Rank().StorageOverhead()
	if got < 0.269 || got > 0.271 {
		t.Errorf("storage overhead %.4f, want 27%%", got)
	}
}

func TestWriteLatencyInflation(t *testing.T) {
	if f := WriteLatencyInflation(0); f != 1 {
		t.Errorf("C=0: factor=%f", f)
	}
	// C=0.2 -> 1 + 4.125*0.2 = 1.825.
	if f := WriteLatencyInflation(0.2); f < 1.82 || f > 1.83 {
		t.Errorf("C=0.2: factor=%f", f)
	}
}

func TestPatrolScrubCorrectsIncrementally(t *testing.T) {
	c := newTestController(t, 90, nil)
	ref := fillRandom(t, c, 91)
	c.Rank().InjectRetentionErrors(5e-4)
	// Patrol through the whole memory in small steps.
	total := c.TotalPatrolUnits()
	pos := int64(0)
	var corrected int64
	for scanned := int64(0); scanned < total; scanned += 16 {
		var n int64
		pos, n = c.PatrolScrub(pos, 16)
		corrected += n
	}
	if corrected == 0 {
		t.Fatal("patrol scrub corrected nothing")
	}
	if pos != 0 {
		t.Errorf("patrol did not wrap to 0: %d", pos)
	}
	// Everything must now read clean without RS corrections.
	c.ResetStats()
	for b, want := range ref {
		got, err := c.ReadBlock(b)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("block %d: err=%v", b, err)
		}
	}
	if st := c.Stats(); st.ReadsClean != st.Reads {
		t.Errorf("reads not clean after patrol: %+v", st)
	}
}

func TestPatrolScrubSkipsFailedChip(t *testing.T) {
	c := newTestController(t, 92, nil)
	fillRandom(t, c, 93)
	c.Rank().FailChip(4)
	total := c.TotalPatrolUnits()
	c.PatrolScrub(0, int(total))
	// No panic, and the failed chip contributed no scrubbed VLEWs beyond
	// the healthy ones.
	healthyUnits := total * int64(c.Rank().NumChips()-1) / int64(c.Rank().NumChips())
	if got := c.Stats().ScrubbedVLEWs; got != healthyUnits {
		t.Errorf("scrubbed %d units, want %d", got, healthyUnits)
	}
}
