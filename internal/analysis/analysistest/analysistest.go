// Package analysistest runs chipkillvet analyzers over self-contained
// testdata modules and checks the produced diagnostics against
// expectations written in the source as "// want" comments — the same
// convention as golang.org/x/tools' analysistest, reimplemented here on
// the standard library only.
//
// An expectation is a comment of the form
//
//	// want `regexp` `regexp` ...
//
// attached to the line the diagnostic is reported on. Each regexp must
// match one diagnostic (formatted "analyzer: message") on that line;
// every diagnostic must be claimed by exactly one expectation. Both
// backquoted and double-quoted Go string literals are accepted.
package analysistest

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"chipkillpm/internal/analysis"
)

// wantRe matches the expectation marker; string literals follow it.
var wantRe = regexp.MustCompile("// want ((?:(?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")\\s*)+)$")

// tokenRe matches one Go string literal (backquoted or double-quoted).
var tokenRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// expectation is one parsed want regexp, with match bookkeeping.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads dir (a standalone module) with the given analyzers,
// runs the suite over every package in it, and reports mismatches
// between diagnostics and // want expectations as test errors.
// It returns the raw diagnostics for any extra assertions.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	if _, err := os.Stat(filepath.Join(abs, "go.mod")); err != nil {
		t.Fatalf("analysistest: %s is not a module root: %v", abs, err)
	}

	suite := analysis.NewSuite(analyzers...)
	diags, err := suite.Run(abs, "./...")
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", abs, err)
	}

	wants, err := parseWants(abs)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	// Index expectations by position for set-wise per-line matching.
	byLine := map[string][]*expectation{}
	for i := range wants {
		w := &wants[i]
		key := fmt.Sprintf("%s:%d", w.file, w.line)
		byLine[key] = append(byLine[key], w)
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		text := d.Analyzer + ": " + d.Message
		claimed := false
		for _, w := range byLine[key] {
			if !w.matched && w.re.MatchString(text) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic at %s: %s", key, text)
		}
	}
	for i := range wants {
		if !wants[i].matched {
			t.Errorf("%s:%d: no diagnostic matching %s", wants[i].file, wants[i].line, wants[i].raw)
		}
	}
	return diags
}

// parseWants scans every .go file under root for want expectations.
func parseWants(root string) ([]expectation, error) {
	var wants []expectation
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(strings.TrimRight(line, " \t"))
			if m == nil {
				continue
			}
			for _, tok := range tokenRe.FindAllString(m[1], -1) {
				pat, err := strconv.Unquote(tok)
				if err != nil {
					return fmt.Errorf("%s:%d: bad want literal %s: %v", path, i+1, tok, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return fmt.Errorf("%s:%d: bad want regexp %s: %v", path, i+1, tok, err)
				}
				wants = append(wants, expectation{file: path, line: i + 1, re: re, raw: tok})
			}
		}
		return nil
	})
	return wants, err
}
