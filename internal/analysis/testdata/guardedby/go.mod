module guardstub

go 1.22
