package analysis_test

import (
	"strings"
	"testing"

	"chipkillpm/internal/analysis"
)

// TestRepoClean runs the full chipkillvet suite over the repository
// itself — the same invocation as `go run ./cmd/chipkillvet ./...` — and
// requires a clean bill. Every intentional exception in the tree must
// carry a //chipkill:allow with a reason; anything else is a contract
// violation that has to be fixed, not suppressed here.
func TestRepoClean(t *testing.T) {
	suite := analysis.NewSuite(analysis.DefaultAnalyzers()...)
	diags, err := suite.Run("../..", "./...")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("chipkillvet found %d finding(s) in the repository", len(diags))
	}

	// The clean run is only meaningful if it actually swept the whole
	// tree: the binaries and examples must be in the target set, not just
	// the internal packages.
	targets := suite.TargetPaths()
	for _, prefix := range []string{"chipkillpm/cmd/", "chipkillpm/examples/"} {
		covered := false
		for _, p := range targets {
			if strings.HasPrefix(p, prefix) {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("smoke run covered no packages under %s (got %d targets)", prefix, len(targets))
		}
	}
}
