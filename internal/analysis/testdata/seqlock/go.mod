module seqstub

go 1.22
