// Command fleetsim demonstrates the multi-rank fleet: band-interleaved
// placement over N chipkill ranks, telemetry-directed replication of hot
// bands, whole-rank failure containment, and repair-from-replica when a
// rank's guard convicts a chip (see internal/fleet and DESIGN.md §14).
//
//	fleetsim -scenario rankkill          # kill a rank: failover vs contained DUEs
//	fleetsim -scenario chiprepair        # convict a chip, replica copy vs RS decode
//	fleetsim -scenario divergence        # corrupt a replica, anti-entropy heals it
//	fleetsim -scenario rankkill -ranks 4 -seed 9
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"chipkillpm/internal/fleet"
	"chipkillpm/internal/guard"
)

func main() {
	var (
		scenario = flag.String("scenario", "rankkill", "rankkill, chiprepair, or divergence")
		ranks    = flag.Int("ranks", 3, "rank count")
		banks    = flag.Int("banks", 2, "banks per rank")
		rows     = flag.Int("rows", 8, "rows per bank")
		rowBytes = flag.Int("rowbytes", 1024, "row data bytes per chip")
		seed     = flag.Int64("seed", 1, "seed for chips, probes, and workload")
		chip     = flag.Int("chip", 2, "chip to fault in the chiprepair scenario")
	)
	flag.Parse()

	f, err := fleet.New(fleet.Config{
		Ranks: *ranks, Banks: *banks, RowsPerBank: *rows, RowBytes: *rowBytes,
		Seed: *seed, Guard: guard.Config{Seed: *seed + 1},
		// Sweep aggressively so the divergence demo heals within a few
		// ticks; production-shaped configs sweep a band or two per tick.
		VerifyBandsPerTick: 64,
	})
	check(err)
	fmt.Printf("fleet: %d ranks, %d demand blocks, band = %d blocks\n",
		f.NumRanks(), f.Blocks(), f.BandBlocks())

	rng := rand.New(rand.NewSource(*seed + 2))
	want := make(map[int64][]byte)
	buf := make([]byte, f.BlockBytes())
	for b := int64(0); b < f.Blocks(); b++ {
		data := make([]byte, f.BlockBytes())
		rng.Read(data)
		check(f.WriteBlockInitial(b, data))
		want[b] = data
	}

	// Heat the first few bands of rank 0 so the replication policy picks
	// them up, then tick until they are mirrored.
	bb := f.BandBlocks()
	hot := []int64{0, int64(*ranks), int64(2 * *ranks)}
	for pass := 0; pass < 4; pass++ {
		for _, band := range hot {
			for i := int64(0); i < bb; i++ {
				check(f.ReadBlockInto(band*bb+i, buf))
			}
		}
	}
	for i := 0; i < 4; i++ {
		check(f.Tick())
	}
	st := f.Stats()
	fmt.Printf("replication policy mirrored %d bands (active replicas: %d)\n",
		st.BandsReplicated, st.ActiveReplicas)

	switch *scenario {
	case "rankkill":
		fmt.Println("killing rank 0 outright")
		f.KillRank(0)
		served, contained, wrong := 0, 0, 0
		for b := int64(0); b < f.Blocks(); b++ {
			switch err := f.ReadBlockInto(b, buf); {
			case err == nil:
				served++
				if string(buf) != string(want[b]) {
					wrong++
				}
			case errors.Is(err, fleet.ErrRankFailed):
				contained++
			default:
				check(err)
			}
		}
		st = f.Stats()
		fmt.Printf("reads: %d served (%d via replica failover), %d contained DUEs, %d wrong\n",
			served, st.FailoverReads, contained, wrong)
		if wrong > 0 {
			fmt.Println("FAIL: silent corruption")
			os.Exit(1)
		}
		fmt.Printf("ranks alive: %d/%d — every lost byte was reported, none was faked\n",
			st.RanksAlive, st.Ranks)

	case "chiprepair":
		fmt.Printf("killing chip %d of rank 0; the guard must convict and the fleet repair\n", *chip)
		f.Engine(0).Quiesce(func() { f.Rank(0).FailChip(*chip) })
		for i := 0; i < 600 && f.Supervisor(0).Report().ExternalRepairs == 0; i++ {
			for j := 0; j < 8; j++ {
				b := rng.Int63n(f.Blocks())
				check(f.ReadBlockInto(b, buf))
			}
			check(f.Tick())
		}
		reps := f.Repairs()
		if len(reps) == 0 {
			fmt.Println("FAIL: no repair ran")
			os.Exit(1)
		}
		r := reps[0]
		fmt.Printf("repaired rank %d chip %d: %d bands from replicas, %d by RS erasure decode\n",
			r.Rank, r.Chip, r.ReplicaBands, r.ErasureBands)
		fmt.Printf("cost: replica copy %.0f ns/block vs erasure decode %.0f ns/block\n",
			r.ReplicaNSPerBlock(), r.ErasureNSPerBlock())
		verify(f, want, buf)

	case "divergence":
		band := hot[0]
		rk, local, ok := f.ReplicaLocation(band * bb)
		if !ok {
			fmt.Println("FAIL: hot band was not replicated")
			os.Exit(1)
		}
		fmt.Printf("corrupting band %d's replica on rank %d in place\n", band, rk)
		bogus := make([]byte, f.BlockBytes())
		check(f.Engine(rk).WriteBlockInitial(local, bogus))
		for i := 0; i < 8 && f.Stats().DivergenceFixes == 0; i++ {
			check(f.Tick())
		}
		st = f.Stats()
		fmt.Printf("anti-entropy sweep healed %d diverged blocks\n", st.DivergenceFixes)
		fmt.Println("killing the primary rank to prove the healed replica serves reads")
		f.KillRank(f.RankOf(band * bb))
		for i := int64(0); i < bb; i++ {
			b := band*bb + i
			check(f.ReadBlockInto(b, buf))
			if string(buf) != string(want[b]) {
				fmt.Printf("FAIL: block %d wrong after failover\n", b)
				os.Exit(1)
			}
		}
		fmt.Println("all failover reads byte-exact")

	default:
		check(fmt.Errorf("unknown scenario %q", *scenario))
	}
	fmt.Println("OK")
}

// verify reads every servable block back against the oracle.
func verify(f *fleet.Fleet, want map[int64][]byte, buf []byte) {
	wrong := 0
	for b := int64(0); b < f.Blocks(); b++ {
		if !f.Servable(b) {
			continue
		}
		if err := f.ReadBlockInto(b, buf); err != nil {
			fmt.Printf("FAIL: block %d: %v\n", b, err)
			os.Exit(1)
		}
		if string(buf) != string(want[b]) {
			wrong++
		}
	}
	if wrong > 0 {
		fmt.Printf("FAIL: %d blocks wrong\n", wrong)
		os.Exit(1)
	}
	fmt.Println("full sweep byte-exact")
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
}
