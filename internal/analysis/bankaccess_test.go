package analysis_test

import (
	"testing"

	"chipkillpm/internal/analysis"
	"chipkillpm/internal/analysis/analysistest"
)

func TestBankAccess(t *testing.T) {
	analysistest.Run(t, "testdata/bankaccess", analysis.BankAccess)
}
