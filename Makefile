# Standard entry points; scripts/check.sh is the single source of truth
# for what "passing" means.

.PHONY: all build test race bench benchruntime profile check check-quick campaign fleet-campaign soak fuzz vet

all: build

build:
	go build ./...

# Contract analyzers (internal/analysis) on top of stock go vet: the
# noalloc/shardlock/sentinel/bankaccess/seqlock/lockorder/guardedby
# rules over the whole repo.
vet:
	go vet ./...
	go run ./cmd/chipkillvet ./...

test:
	go test ./... -count=1

race:
	go test -race -count=1 ./internal/core/... ./internal/rank/... \
		./internal/memctrl/... ./internal/sim/... ./internal/inject/... \
		./internal/engine/... ./internal/guard/... ./internal/fleet/...

# Kernel microbenchmarks (per-package, human-readable).
bench:
	go test -run xxx -bench Kernel -benchmem ./internal/gf/ ./internal/bch/ ./internal/rs/

# Refresh BENCH_kernels.json and fail on fast-path speedup regressions.
BENCH_kernels.json: FORCE
	go run ./cmd/benchkernels -check

# Refresh BENCH_runtime.json (end-to-end engine throughput) and fail if
# aggregate clean-read throughput drops below 3x the frozen seed baseline
# or the clean read path allocates.
benchruntime:
	go run ./cmd/benchruntime -check

BENCH_runtime.json: FORCE
	go run ./cmd/benchruntime -check

# CPU + allocation profiles of the write scenarios (the zero-alloc write
# pipeline); inspect with `go tool pprof profiles/write_{cpu,mem}.pprof`.
PROFILE_SCENARIO ?= Write
profile:
	mkdir -p profiles
	go run ./cmd/benchruntime -scenario $(PROFILE_SCENARIO) \
		-cpuprofile profiles/write_cpu.pprof -memprofile profiles/write_mem.pprof \
		-out profiles/write_profile.json

# Fault-injection campaigns (internal/inject). `campaign` is the
# acceptance suite; `soak` adds the deep campaigns and runs the soak-tagged
# tests.
campaign:
	go run ./cmd/faultcampaign -suite standard

# Multi-rank fleet campaigns: rank kills (serial and under concurrent
# load), repair-from-replica with measured per-block costs, replica
# divergence healing, replica death mid-repair, and the two-rank
# double-fault.
fleet-campaign:
	go run ./cmd/faultcampaign -suite fleet

soak:
	go test -tags soak -count=1 -run TestSoakSuite -v ./internal/inject/
	go run ./cmd/faultcampaign -suite soak

# Short coverage-guided fuzz pass over both decoders; the checked-in seed
# corpora under internal/{bch,rs}/testdata/fuzz also run in plain `go test`.
FUZZTIME ?= 10s
fuzz:
	go test ./internal/bch/ -fuzz=FuzzDecode -fuzztime=$(FUZZTIME)
	go test ./internal/rs/ -fuzz=FuzzDecode -fuzztime=$(FUZZTIME)
	go test ./internal/guard/ -fuzz=FuzzJournalDecode -fuzztime=$(FUZZTIME)

check:
	sh scripts/check.sh

check-quick:
	sh scripts/check.sh -quick

FORCE:
