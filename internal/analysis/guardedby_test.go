package analysis_test

import (
	"strings"
	"testing"

	"chipkillpm/internal/analysis"
	"chipkillpm/internal/analysis/analysistest"
)

func TestGuardedBy(t *testing.T) {
	diags := analysistest.Run(t, "testdata/guardedby", analysis.GuardedBy)

	// Annotation-removal regression: the fixture's Telemetry counter has
	// no //chipkill:atomic mark, and the coverage rule must flag it. If
	// someone deletes the bare-atomic check, this fails loudly.
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "no //chipkill:atomic annotation") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("guardedby no longer flags bare atomic fields: annotation removal would go unnoticed")
	}
}
