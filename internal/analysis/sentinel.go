package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Sentinel enforces the typed-error contract around the sentinels
// introduced in PR 4 (core.ErrUncorrectable, ErrChipFailed,
// ErrMigrationInProgress, ErrBlockDisabled, and friends):
//
//   - err == ErrX / err != ErrX and switch err { case ErrX: } are
//     banned in favour of errors.Is — every sentinel in this codebase is
//     wrapped with %w at least once (block numbers, band indices), so
//     identity comparison silently stops matching.
//   - matching on err.Error() strings (==, != or strings.Contains and
//     friends) is banned outright.
//   - dropping the error result of a persistence-critical call (journal
//     appends, band migration, degraded-mode transitions) — via a bare
//     expression statement, assignment to _, or go/defer — is flagged:
//     these errors are the crash-consistency story.
//
// Unlike the concurrency analyzers, sentinel applies to _test.go files
// too: sentinel misuse rots fastest in tests, where a wrapped error
// makes an == comparison silently pass the failure path.
var Sentinel = &Analyzer{
	Name: "sentinel",
	Doc:  "errors.Is over ==/string matching; no dropped persistence-critical errors",
	Run:  runSentinel,
}

// persistenceCritical lists calls whose error results must not be
// discarded, matched by package-path suffix.
var persistenceCritical = []struct {
	pkgSuffix, typeName string
	methods             map[string]bool
}{
	{"internal/guard", "Journal", map[string]bool{
		"AppendStart": true, "AppendBand": true, "AppendDone": true,
	}},
	{"internal/guard", "Supervisor", map[string]bool{
		"Tick": true, "Run": true,
	}},
	{"internal/core", "Controller", map[string]bool{
		"MigrateBand": true, "RedoBand": true, "FinishMigration": true,
		"EnterDegradedMode": true, "AdoptDegradedMode": true,
	}},
	{"internal/engine", "Engine", map[string]bool{
		"MigrateBand": true, "RedoBand": true, "FinishMigration": true,
		"EnterDegradedMode": true, "AdoptDegradedMode": true, "BeginMigration": true,
	}},
	// Fleet calls: a dropped Tick error loses a rank's journal-append
	// failure, a dropped RepairChip error loses the no-replica fallback
	// signal, and a dropped ReplicateBand error silently leaves a band
	// unmirrored that the caller believes is protected.
	{"internal/fleet", "Fleet", map[string]bool{
		"Tick": true, "RepairChip": true, "ReplicateBand": true,
	}},
}

func isPersistenceCritical(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	for _, set := range persistenceCritical {
		if set.methods[fn.Name()] && methodOn(fn, set.pkgSuffix, set.typeName, fn.Name()) {
			return true
		}
	}
	return false
}

// isSentinelIdent reports whether e names a package-level error
// variable following the ErrX convention.
func isSentinelIdent(info *types.Info, e ast.Expr) bool {
	var obj types.Object
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || !strings.HasPrefix(v.Name(), "Err") {
		return false
	}
	if v.Parent() == nil || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return false
	}
	return isErrorType(v.Type())
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorInterface)
}

var errorInterface = func() *types.Interface {
	// error's method set, built by hand so no import of anything is
	// needed: interface { Error() string }.
	sig := types.NewSignatureType(nil, nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, nil, "", types.Typ[types.String])), false)
	iface := types.NewInterfaceType([]*types.Func{
		types.NewFunc(token.NoPos, nil, "Error", sig),
	}, nil)
	iface.Complete()
	return iface
}()

// isErrorCall reports whether e is a call of the Error() string method
// on an error value.
func isErrorCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return false
	}
	recv := info.Types[sel.X].Type
	return recv != nil && isErrorType(recv)
}

func runSentinel(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, pair := range [2][2]ast.Expr{{n.X, n.Y}, {n.Y, n.X}} {
					a, b := pair[0], pair[1]
					if isSentinelIdent(info, b) && !isNilExpr(info, a) {
						pass.Reportf(n.Pos(),
							"sentinel compared with %s: use errors.Is(err, %s) so wrapped errors still match",
							n.Op, exprName(b))
						break
					}
					if isErrorCall(info, a) && isStringExpr(info, b) {
						pass.Reportf(n.Pos(),
							"error matched by string comparison: use errors.Is or errors.As")
						break
					}
				}
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				tagType := info.Types[n.Tag].Type
				if tagType == nil || !isErrorType(tagType) {
					return true
				}
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if isSentinelIdent(info, e) {
							pass.Reportf(e.Pos(),
								"sentinel in switch case: use errors.Is(err, %s) so wrapped errors still match",
								exprName(e))
						}
					}
				}
			case *ast.CallExpr:
				// strings.Contains/HasPrefix/HasSuffix/EqualFold over
				// err.Error().
				fn := calleeOf(info, n)
				if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "strings" {
					switch fn.Name() {
					case "Contains", "HasPrefix", "HasSuffix", "EqualFold", "Index":
						for _, arg := range n.Args {
							if isErrorCall(info, arg) {
								pass.Reportf(n.Pos(),
									"error matched by strings.%s on Error(): use errors.Is or errors.As", fn.Name())
								break
							}
						}
					}
				}
			case *ast.ExprStmt:
				reportDroppedError(pass, n.X, "discarded")
			case *ast.GoStmt:
				reportDroppedError(pass, n.Call, "discarded by go statement")
			case *ast.DeferStmt:
				reportDroppedError(pass, n.Call, "discarded by defer")
			case *ast.AssignStmt:
				// _ = criticalCall()  /  m, _ := criticalCall()  /
				// _, _ = ..., criticalCall()
				if len(n.Rhs) == 1 {
					if allBlank(n.Lhs) {
						reportDroppedError(pass, n.Rhs[0], "assigned to _")
					} else if len(n.Lhs) > 1 {
						// Multi-result call: flag a blanked error slot.
						if tuple, ok := info.Types[n.Rhs[0]].Type.(*types.Tuple); ok && tuple.Len() == len(n.Lhs) {
							for i := range n.Lhs {
								if isBlank(n.Lhs[i]) && isErrorType(tuple.At(i).Type()) {
									reportDroppedError(pass, n.Rhs[0], "assigned to _")
									break
								}
							}
						}
					}
				} else {
					for i, rhs := range n.Rhs {
						if i < len(n.Lhs) && isBlank(n.Lhs[i]) {
							reportDroppedError(pass, rhs, "assigned to _")
						}
					}
				}
			}
			return true
		})
	}
}

// reportDroppedError flags e when it is a persistence-critical call
// whose error result is being thrown away.
func reportDroppedError(pass *Pass, e ast.Expr, how string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := calleeOf(pass.Pkg.Info, call)
	if !isPersistenceCritical(fn) {
		return
	}
	pass.Reportf(call.Pos(),
		"error from persistence-critical %s %s: crash consistency depends on checking it",
		symbolKey(fn), how)
}

func isNilExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		if !isBlank(e) {
			return false
		}
	}
	return true
}

func exprName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return "ErrX"
}
