package bch

import (
	"bytes"

	"chipkillpm/internal/gf"
	"math/rand"
	"testing"
	"testing/quick"
)

// flipBits flips the given bit positions across the concatenation
// data||parity using the same layout Decode expects (parity at low
// degrees). Positions here index data bits 0..k-1 and parity bits
// k..k+r-1 for test convenience.
func flipDataBits(data []byte, positions ...int) {
	for _, p := range positions {
		data[p/8] ^= 1 << uint(p%8)
	}
}

func TestKnownCodeShapes(t *testing.T) {
	cases := []struct {
		m       uint
		k, t    int
		maxPar  int // paper estimate t*m
		comment string
	}{
		{10, 512, 14, 140, "per-block 14-EC BCH over 64B (Sec III-A)"},
		{12, 2048, 22, 264, "VLEW 22-EC BCH over 256B (Sec V-A)"},
		{13, 4096, 41, 533, "Flash-style 41-EC over 512B (Fig 3)"},
	}
	for _, c := range cases {
		code, err := New(c.m, c.k, c.t)
		if err != nil {
			t.Fatalf("%s: %v", c.comment, err)
		}
		if code.ParityBits() > c.maxPar {
			t.Errorf("%s: parity=%d bits exceeds estimate %d", c.comment, code.ParityBits(), c.maxPar)
		}
		if got := ParityBitsEstimate(c.k, c.t); got != c.maxPar {
			t.Errorf("%s: ParityBitsEstimate=%d, want %d", c.comment, got, c.maxPar)
		}
	}
}

func TestNewRejectsBadParams(t *testing.T) {
	if _, err := New(10, 0, 3); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := New(10, 512, 0); err == nil {
		t.Error("t=0 accepted")
	}
	if _, err := New(6, 512, 3); err == nil {
		t.Error("k+r > 2^m-1 accepted")
	}
	if _, err := New(40, 512, 3); err == nil {
		t.Error("unsupported m accepted")
	}
}

func TestEncodeDecodeNoErrors(t *testing.T) {
	code := Must(10, 512, 4)
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, code.DataBytes())
	rng.Read(data)
	parity := code.Encode(data)
	if len(parity) != code.ParityBytes() {
		t.Fatalf("parity length %d, want %d", len(parity), code.ParityBytes())
	}
	if !code.CheckClean(data, parity) {
		t.Fatal("fresh codeword reports errors")
	}
	n, err := code.Decode(data, parity)
	if err != nil || n != 0 {
		t.Fatalf("Decode clean: n=%d err=%v", n, err)
	}
}

func TestCorrectsUpToT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, params := range []struct {
		m    uint
		k, t int
	}{
		{10, 512, 4}, {10, 512, 14}, {12, 2048, 22},
	} {
		code := Must(params.m, params.k, params.t)
		orig := make([]byte, code.DataBytes())
		rng.Read(orig)
		parity := code.Encode(orig)
		for e := 1; e <= code.T(); e++ {
			data := bytes.Clone(orig)
			par := bytes.Clone(parity)
			// e distinct random positions across data+parity bits.
			flipped := map[int]bool{}
			for len(flipped) < e {
				flipped[rng.Intn(code.N())] = true
			}
			for p := range flipped {
				if p < code.K() {
					flipDataBits(data, p)
				} else {
					flipDataBits(par, p-code.K())
				}
			}
			n, err := code.Decode(data, par)
			if err != nil {
				t.Fatalf("t=%d: %d errors not corrected: %v", code.T(), e, err)
			}
			if n != e {
				t.Fatalf("t=%d: corrected %d, injected %d", code.T(), n, e)
			}
			if !bytes.Equal(data, orig) || !bytes.Equal(par, parity) {
				t.Fatalf("t=%d e=%d: corrected word differs from original", code.T(), e)
			}
		}
	}
}

func TestDetectsBeyondT(t *testing.T) {
	// With e in (t, 2t] errors a bounded-distance decoder either flags
	// uncorrectable or miscorrects; it must never silently return the
	// wrong data claiming <= t corrections of a valid codeword NOT equal
	// to a real codeword. We check: when Decode succeeds, the result is a
	// codeword; when it fails, inputs are untouched.
	code := Must(10, 512, 4)
	rng := rand.New(rand.NewSource(3))
	orig := make([]byte, code.DataBytes())
	rng.Read(orig)
	parity := code.Encode(orig)
	uncorrectable, miscorrected := 0, 0
	for trial := 0; trial < 50; trial++ {
		data := bytes.Clone(orig)
		par := bytes.Clone(parity)
		e := code.T() + 1 + rng.Intn(code.T())
		flipped := map[int]bool{}
		for len(flipped) < e {
			flipped[rng.Intn(code.N())] = true
		}
		for p := range flipped {
			if p < code.K() {
				flipDataBits(data, p)
			} else {
				flipDataBits(par, p-code.K())
			}
		}
		dataBefore := bytes.Clone(data)
		parBefore := bytes.Clone(par)
		n, err := code.Decode(data, par)
		if err != nil {
			uncorrectable++
			if !bytes.Equal(data, dataBefore) || !bytes.Equal(par, parBefore) {
				t.Fatal("failed Decode mutated its inputs")
			}
			continue
		}
		if n > code.T() {
			t.Fatalf("Decode claimed %d corrections > t=%d", n, code.T())
		}
		if !code.CheckClean(data, par) {
			t.Fatal("successful Decode left a non-codeword")
		}
		if !bytes.Equal(data, orig) {
			miscorrected++
		}
	}
	if uncorrectable == 0 {
		t.Error("expected at least some uncorrectable patterns beyond t")
	}
	t.Logf("beyond-t trials: %d uncorrectable, %d miscorrected", uncorrectable, miscorrected)
}

func TestEncodeDeltaMatchesFullReencode(t *testing.T) {
	// Linearity: parity(new) = parity(old) XOR EncodeDelta(old XOR new).
	// This is the property the in-chip encoder + EUR rely on (Fig 11/12).
	code := Must(12, 2048, 22)
	rng := rand.New(rand.NewSource(4))
	oldData := make([]byte, code.DataBytes())
	rng.Read(oldData)
	oldParity := code.Encode(oldData)
	// Overwrite one 8-byte "chip access" at each possible block offset.
	for off := 0; off < code.DataBytes(); off += 8 {
		newData := bytes.Clone(oldData)
		delta := make([]byte, 8)
		rng.Read(delta)
		for i := range delta {
			newData[off+i] ^= delta[i]
		}
		update := code.EncodeDelta(delta, off*8)
		got := bytes.Clone(oldParity)
		code.XORParity(got, update)
		want := code.Encode(newData)
		if !bytes.Equal(got, want) {
			t.Fatalf("offset %d: incremental parity != full re-encode", off)
		}
	}
}

func TestEncodeDeltaCoalescing(t *testing.T) {
	// Multiple writes to the same VLEW coalesce: XOR of the individual
	// updates equals the update for the XOR-accumulated delta (EUR, Sec V-D).
	code := Must(12, 2048, 22)
	rng := rand.New(rand.NewSource(5))
	data := make([]byte, code.DataBytes())
	rng.Read(data)
	parity := code.Encode(data)
	accum := make([]byte, code.ParityBytes())
	cur := bytes.Clone(data)
	for w := 0; w < 10; w++ {
		off := 8 * rng.Intn(code.DataBytes()/8)
		delta := make([]byte, 8)
		rng.Read(delta)
		for i := range delta {
			cur[off+i] ^= delta[i]
		}
		code.XORParity(accum, code.EncodeDelta(delta, off*8))
	}
	code.XORParity(parity, accum)
	if !bytes.Equal(parity, code.Encode(cur)) {
		t.Fatal("coalesced EUR update does not match re-encoded parity")
	}
}

func TestEncodePanicsOnWrongLength(t *testing.T) {
	code := Must(10, 512, 4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	code.Encode(make([]byte, 3))
}

func TestDecodeLengthError(t *testing.T) {
	code := Must(10, 512, 4)
	if _, err := code.Decode(make([]byte, 3), make([]byte, code.ParityBytes())); err == nil {
		t.Error("expected length error")
	}
}

// Property: encode/corrupt-up-to-t/decode round-trips for random data and
// random error patterns.
func TestRoundTripQuick(t *testing.T) {
	code := Must(10, 512, 6)
	prop := func(seed int64, eRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := int(eRaw) % (code.T() + 1)
		data := make([]byte, code.DataBytes())
		rng.Read(data)
		parity := code.Encode(data)
		want := bytes.Clone(data)
		flipped := map[int]bool{}
		for len(flipped) < e {
			flipped[rng.Intn(code.K())] = true
		}
		for p := range flipped {
			flipDataBits(data, p)
		}
		n, err := code.Decode(data, parity)
		return err == nil && n == e && bytes.Equal(data, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGeneratorDividesCodewords(t *testing.T) {
	// Every encoded word, viewed as a polynomial, must be divisible by g.
	code := Must(10, 512, 4)
	rng := rand.New(rand.NewSource(6))
	data := make([]byte, code.DataBytes())
	rng.Read(data)
	parity := code.Encode(data)
	// Build codeword poly: parity at low degrees, data shifted by r.
	cw := gf.Poly2FromBytes(parity)
	// Mask any padding bits above r in the parity bytes.
	for i := code.ParityBits(); i < 8*len(parity); i++ {
		cw = cw.SetCoeff(i, 0)
	}
	cw = cw.Add(gf.Poly2FromBytes(data).Shl(code.ParityBits()))
	if !cw.Mod(code.Generator()).IsZero() {
		t.Error("codeword not divisible by generator")
	}
}

func BenchmarkEncodeVLEW(b *testing.B) {
	code := Must(12, 2048, 22)
	data := make([]byte, code.DataBytes())
	rand.New(rand.NewSource(1)).Read(data)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		code.Encode(data)
	}
}

func BenchmarkDecodeVLEW22Errors(b *testing.B) {
	code := Must(12, 2048, 22)
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, code.DataBytes())
	rng.Read(data)
	parity := code.Encode(data)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := bytes.Clone(data)
		p := bytes.Clone(parity)
		for e := 0; e < 22; e++ {
			flipDataBits(d, rng.Intn(code.K()))
		}
		b.StartTimer()
		if _, err := code.Decode(d, p); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFlashStyleCode exercises the Fig 3 regime: a 512B-data Flash-style
// VLEW at 41-bit correction, the strongest commercial code the paper
// cites.
func TestFlashStyleCode(t *testing.T) {
	if testing.Short() {
		t.Skip("large-code round trip skipped in -short")
	}
	code := Must(13, 4096, 41)
	rng := rand.New(rand.NewSource(41))
	data := make([]byte, code.DataBytes())
	rng.Read(data)
	parity := code.Encode(data)
	want := bytes.Clone(data)
	flipped := map[int]bool{}
	for len(flipped) < 41 {
		flipped[rng.Intn(code.K())] = true
	}
	for p := range flipped {
		flipDataBits(data, p)
	}
	n, err := code.Decode(data, parity)
	if err != nil || n != 41 || !bytes.Equal(data, want) {
		t.Fatalf("41-EC round trip: n=%d err=%v", n, err)
	}
}

// TestGeneratorDegreeWithinEstimate: the real deg(g) never exceeds the
// paper's t*(floor(log2 k)+1) storage formula across a parameter sweep.
func TestGeneratorDegreeWithinEstimate(t *testing.T) {
	for _, p := range []struct {
		m    uint
		k, t int
	}{
		{8, 128, 3}, {9, 256, 5}, {10, 512, 8}, {11, 1024, 11}, {12, 2048, 16},
	} {
		code := Must(p.m, p.k, p.t)
		if est := ParityBitsEstimate(p.k, p.t); code.ParityBits() > est {
			t.Errorf("m=%d k=%d t=%d: deg(g)=%d exceeds estimate %d",
				p.m, p.k, p.t, code.ParityBits(), est)
		}
	}
}
