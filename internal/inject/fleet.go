package inject

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"chipkillpm/internal/fleet"
	"chipkillpm/internal/guard"
)

// Fleet scenario names.
const (
	ScenarioFleetRankKill       = "fleet-rank-kill"
	ScenarioFleetRankKillLoad   = "fleet-rank-kill-load"
	ScenarioFleetChipRepair     = "fleet-chip-repair"
	ScenarioFleetDivergence     = "fleet-replica-divergence"
	ScenarioFleetKillMidRepair  = "fleet-kill-during-repair"
	ScenarioFleetDoubleFault    = "fleet-double-fault"
)

// FleetSpec switches a campaign onto a multi-rank fleet: the demand
// backend becomes a fleet.Fleet (N ranks, each with its own engine and
// guard supervisor) and the scenario drives rank-scale faults —
// whole-rank kills, replica divergence, chip convictions repaired from
// replicas. Fleet campaigns ignore OMVHitRate (fleet engines fetch OMVs
// from memory) and are incompatible with EngineShards, EngineBatchWrites,
// Guard, and scripted Events.
type FleetSpec struct {
	Scenario string `json:"scenario"`
	// Ranks is the fleet width (default 3; double-fault uses 2).
	Ranks int `json:"ranks,omitempty"`
	// ReplicaBands sizes each rank's replica pool (default 8).
	ReplicaBands int `json:"replica_bands,omitempty"`
	// Workers is the demand-worker count for rank-kill-load (default 4).
	Workers int `json:"workers,omitempty"`
	// KillRank is the rank the kill scenarios fail (default 1).
	KillRank int `json:"kill_rank,omitempty"`
	// KillChip is the data chip conviction scenarios fail (default 2).
	KillChip int `json:"kill_chip,omitempty"`
	// KillChipB is double-fault's second chip, on the other rank
	// (default 5).
	KillChipB int `json:"kill_chip_b,omitempty"`
	// ReplicateBands is how many bands the scenario mirrors explicitly
	// before the fault lands (default 6).
	ReplicateBands int `json:"replicate_bands,omitempty"`
	// KillAfterBands is when kill-during-repair fails the replica rank:
	// after that many bands of the in-flight chip repair (default 3).
	KillAfterBands int `json:"kill_after_bands,omitempty"`
}

func (s *FleetSpec) withDefaults() FleetSpec {
	f := *s
	if f.Ranks <= 0 {
		f.Ranks = 3
	}
	if f.ReplicaBands <= 0 {
		f.ReplicaBands = 8
	}
	if f.Workers <= 0 {
		f.Workers = 4
	}
	if f.KillRank <= 0 {
		f.KillRank = 1
	}
	if f.KillChip <= 0 {
		f.KillChip = 2
	}
	if f.KillChipB <= 0 {
		f.KillChipB = 5
	}
	if f.ReplicateBands <= 0 {
		f.ReplicateBands = 6
	}
	if f.KillAfterBands <= 0 {
		f.KillAfterBands = 3
	}
	return f
}

// fleetCfg derives the fleet configuration for a campaign: replication
// runs policy-driven only in the scenario that tests the policy; every
// other scenario replicates explicitly so its fault targets are exact.
func (h *Harness) fleetCfg(spec FleetSpec) fleet.Config {
	seed := campaignSeed(h.c.Name, h.c.Seed)
	cfg := fleet.Config{
		Ranks:            spec.Ranks,
		Banks:            h.c.Banks,
		RowsPerBank:      h.c.RowsPerBank,
		RowBytes:         h.c.RowBytes,
		Seed:             seed + 1,
		Threshold:        h.c.Threshold,
		ReplicaBands:     spec.ReplicaBands,
		ReplicatePerTick: -1,
		Guard:            guard.Config{Seed: seed + 3},
	}
	switch spec.Scenario {
	case ScenarioFleetChipRepair:
		// The one scenario exercising the telemetry-driven policy: only
		// bands hot past three full passes qualify, two mirrors per tick.
		cfg.ReplicatePerTick = 2
		cfg.MinReplicaHeat = 3 * 32 // 3x the band's block count
	case ScenarioFleetDivergence:
		cfg.VerifyBandsPerTick = 64 // sweep everything each tick
	}
	return cfg
}

// runFleet executes the campaign's fleet scenario (the Run entry point
// for campaigns with a FleetSpec). The final sweep and stats capture run
// afterwards in Run.
func (h *Harness) runFleet() {
	spec := h.c.Fleet.withDefaults()
	h.rep.Fleet = &FleetReport{Scenario: spec.Scenario, Ranks: spec.Ranks}
	switch spec.Scenario {
	case ScenarioFleetRankKill:
		h.fleetRankKill(spec)
	case ScenarioFleetRankKillLoad:
		h.fleetRankKillLoad(spec)
	case ScenarioFleetChipRepair:
		h.fleetChipRepair(spec)
	case ScenarioFleetDivergence:
		h.fleetDivergence(spec)
	case ScenarioFleetKillMidRepair:
		h.fleetKillDuringRepair(spec)
	case ScenarioFleetDoubleFault:
		h.fleetDoubleFault(spec)
	default:
		h.fail("fleet", -1, fmt.Sprintf("unknown fleet scenario %q", spec.Scenario))
	}
}

// victimBands returns the first n fleet bands whose primary is rank rk.
func (h *Harness) victimBands(rk, n int) []int64 {
	f := h.fleet
	var bands []int64
	for i := 0; i < n; i++ {
		bands = append(bands, int64(rk)+int64(i)*int64(f.NumRanks()))
	}
	return bands
}

// replicateOrFail mirrors the given bands, failing the campaign on any
// error.
func (h *Harness) replicateOrFail(bands []int64) {
	for _, band := range bands {
		if err := h.fleet.ReplicateBand(band); err != nil {
			h.fail("fleet", band*h.fleet.BandBlocks(), fmt.Sprintf("replicate band %d: %v", band, err))
		}
	}
}

// fleetSweep is the fleet campaign's final verification: every committed
// block either reads back byte-exact (through primary, failover, or
// read-repair) or — only when its rank died unreplicated — returns the
// typed contained failure. Anything else is an SDC or an unexpected DUE.
func (h *Harness) fleetSweep() {
	f := h.fleet
	for _, b := range h.oracle.Blocks() {
		if f.Servable(b) {
			h.readAndCheck(b)
			continue
		}
		h.rep.Reads++
		_, err := f.ReadBlock(b)
		switch {
		case err == nil:
			h.rep.SDC++
			h.fail("sdc", b, "unservable block returned data")
		case !errors.Is(err, fleet.ErrRankFailed):
			h.fail("fleet", b, fmt.Sprintf("unservable block failed untyped: %v", err))
		default:
			h.rep.Fleet.SweptContained++
		}
	}
}

// captureFleetStats folds the fleet's counters, guard reports, and chip
// repair timings into the campaign report.
func (h *Harness) captureFleetStats() {
	f := h.fleet
	s := f.Stats()
	fr := h.rep.Fleet
	fr.RanksAlive = s.RanksAlive
	fr.ActiveReplicas = s.ActiveReplicas
	fr.BandsReplicated = s.BandsReplicated
	fr.FailoverReads = s.FailoverReads
	fr.FailoverWrites = s.FailoverWrites
	fr.ReadRepairs = s.ReadRepairs
	fr.DivergenceFixes = s.DivergenceFixes
	fr.ContainedDUEs = s.ContainedDUEs
	fr.RejectedWrites = s.RejectedWrites
	fr.RankKills = s.RankKills
	fr.ChipRepairs = s.ChipRepairs
	for _, pr := range s.PerRank {
		fr.Verdicts += pr.Guard.Verdicts
		fr.ExternalRepairs += pr.Guard.ExternalRepairs
	}
	var repBlocks, eraBlocks, repNS, eraNS int64
	for _, r := range f.Repairs() {
		repBlocks += r.ReplicaBlocks
		eraBlocks += r.ErasureBlocks
		repNS += r.ReplicaNS
		eraNS += r.ErasureNS
	}
	if repBlocks > 0 {
		fr.RepairReplicaNSPerBlock = float64(repNS) / float64(repBlocks)
	}
	if eraBlocks > 0 {
		fr.RepairErasureNSPerBlock = float64(eraNS) / float64(eraBlocks)
	}
	if fr.RepairReplicaNSPerBlock > 0 && fr.RepairErasureNSPerBlock > 0 {
		fr.RepairSpeedup = fr.RepairErasureNSPerBlock / fr.RepairReplicaNSPerBlock
	}
}

// fleetRankKill is the serial containment scenario: replicate a few of
// the victim rank's bands, kill the whole rank, and show the split —
// replicated bands keep serving reads and acknowledging writes through
// their replicas, unreplicated bands turn into typed contained failures,
// and the other ranks never notice.
func (h *Harness) fleetRankKill(spec FleetSpec) {
	f := h.fleet
	bands := h.victimBands(spec.KillRank, spec.ReplicateBands)
	h.replicateOrFail(bands)

	for i := 0; i < h.c.Ops; i++ {
		h.randomOp()
	}
	f.KillRank(spec.KillRank)

	// Post-kill demand, by hand: writes to replicated bands must still
	// acknowledge (and then read back), writes to the victim's
	// unreplicated bands must reject typed.
	bb := f.BandBlocks()
	for i, band := range bands {
		b := band*bb + int64(i)
		data := make([]byte, h.blockBytes)
		h.rng.Read(data)
		if err := f.WriteBlock(b, data); err != nil {
			h.fail("write", b, fmt.Sprintf("post-kill write to replicated band: %v", err))
			continue
		}
		h.rep.Writes++
		h.oracle.Commit(b, data)
		h.rep.Fleet.AckedAfterKill++
	}
	deadBand := int64(spec.KillRank) + int64(spec.ReplicateBands)*int64(f.NumRanks())
	data := make([]byte, h.blockBytes)
	h.rng.Read(data)
	if err := f.WriteBlock(deadBand*bb, data); !errors.Is(err, fleet.ErrRankFailed) {
		h.fail("fleet", deadBand*bb, fmt.Sprintf("post-kill write to unreplicated band: %v, want ErrRankFailed", err))
	}

	if s := f.Stats(); s.RanksAlive != spec.Ranks-1 {
		h.fail("fleet", -1, fmt.Sprintf("%d ranks alive after kill, want %d", s.RanksAlive, spec.Ranks-1))
	}
}

// fleetRankKillLoad kills a rank while concurrent demand workers hammer
// disjoint block stripes. The victim's primary bands are all replicated
// first, so the invariant under fire is total: no acknowledged write may
// be lost and no read may return wrong bytes — the only legal failure is
// the typed contained error, and only after the kill.
func (h *Harness) fleetRankKillLoad(spec FleetSpec) {
	f := h.fleet
	// Mirror as many of the victim's bands as the other ranks' pools can
	// hold; the remainder exercises the contained path under load too.
	bandsPerRank := int(f.Bands()) / f.NumRanks()
	if cap := spec.ReplicaBands * (spec.Ranks - 1); bandsPerRank > cap {
		bandsPerRank = cap
	}
	h.replicateOrFail(h.victimBands(spec.KillRank, bandsPerRank))

	seed := campaignSeed(h.c.Name, h.c.Seed)
	type workerState struct {
		shadow map[int64][]byte
		ops    int64
		err    error
	}
	var killedFlag atomic.Bool
	var postKill atomic.Int64
	stop := make(chan struct{})
	results := make([]workerState, spec.Workers)
	var wg sync.WaitGroup
	for w := 0; w < spec.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &results[w]
			res.shadow = make(map[int64][]byte)
			rng := rand.New(rand.NewSource(seed + int64(w)*977 + 11))
			var owned []int64
			for i := w; i < len(h.blocks); i += spec.Workers {
				owned = append(owned, h.blocks[i])
			}
			buf := make([]byte, h.blockBytes)
			for {
				select {
				case <-stop:
					return
				default:
				}
				b := owned[rng.Intn(len(owned))]
				killed := killedFlag.Load()
				if rng.Intn(3) == 0 {
					data := make([]byte, h.blockBytes)
					rng.Read(data)
					if err := f.WriteBlock(b, data); err != nil {
						if !fleet.Contained(err) || !killed {
							res.err = fmt.Errorf("write %d: %w", b, err)
							return
						}
					} else {
						res.shadow[b] = data
					}
				} else {
					if err := f.ReadBlockInto(b, buf); err != nil {
						if !fleet.Contained(err) || !killed {
							res.err = fmt.Errorf("read %d: %w", b, err)
							return
						}
					} else {
						want, ok := res.shadow[b]
						if !ok {
							want, _ = h.oracle.Expected(b)
						}
						if !bytes.Equal(buf, want) {
							res.err = fmt.Errorf("block %d: wrong data under rank kill", b)
							return
						}
					}
				}
				res.ops++
				if killed {
					postKill.Add(1)
				}
			}
		}(w)
	}

	for i := 0; i < 10; i++ {
		if err := f.Tick(); err != nil {
			h.fail("fleet", -1, fmt.Sprintf("pre-kill tick: %v", err))
		}
	}
	killedFlag.Store(true)
	f.KillRank(spec.KillRank)
	for postKill.Load() < int64(200*spec.Workers) {
		if err := f.Tick(); err != nil {
			h.fail("fleet", -1, fmt.Sprintf("post-kill tick: %v", err))
			break
		}
	}
	close(stop)
	wg.Wait()

	fr := h.rep.Fleet
	for w := range results {
		res := &results[w]
		if res.err != nil {
			h.fail("fleet", -1, fmt.Sprintf("worker %d: %v", w, res.err))
		}
		for b, data := range res.shadow {
			h.oracle.Commit(b, data)
		}
		fr.WorkerOps += res.ops
	}
	fr.OpsAfterKill = postKill.Load()
	if fr.OpsAfterKill == 0 {
		h.fail("fleet", -1, "no worker traffic after the rank kill")
	}
}

// fleetChipRepair proves the headline path end to end: decode-side
// telemetry steers the replication policy at the rank under error
// pressure, a chip on that rank then dies, the rank's own guard
// supervisor convicts it — and the fleet repairs the chip in place from
// the replicas, measurably faster per block than the local RS erasure
// decode used for the unreplicated bands, with no migration and no
// degraded mode.
func (h *Harness) fleetChipRepair(spec FleetSpec) {
	f := h.fleet
	const hot = 6
	bb := f.BandBlocks()
	hotA := h.victimBands(0, hot)
	hotB := h.victimBands(1, hot)

	// Error pressure on rank 0 only: retention drift, then equal demand
	// heat over rank-0 and rank-1 bands. The policy must side with the
	// telemetry.
	f.Engine(0).Quiesce(func() {
		h.rep.BitsInjected += int64(f.Rank(0).InjectRetentionErrors(1e-4))
	})
	buf := make([]byte, h.blockBytes)
	for pass := 0; pass < 4; pass++ {
		for _, band := range append(append([]int64(nil), hotA...), hotB...) {
			for i := int64(0); i < bb; i++ {
				if err := f.ReadBlockInto(band*bb+i, buf); err != nil {
					h.fail("due", band*bb+i, err.Error())
				}
				h.rep.Reads++
			}
		}
	}
	for i := 0; i < 3; i++ { // 2 mirrors per tick -> all 6 hot rank-0 bands
		if err := f.Tick(); err != nil {
			h.fail("fleet", -1, fmt.Sprintf("policy tick: %v", err))
		}
	}
	for _, band := range hotA {
		if !f.BandReplicated(band * bb) {
			h.fail("fleet", band*bb, fmt.Sprintf("pressured hot band %d not replicated", band))
		}
	}
	for _, band := range hotB {
		if f.BandReplicated(band * bb) {
			h.fail("fleet", band*bb, fmt.Sprintf("quiet-rank band %d replicated ahead of pressured ones", band))
		}
	}

	f.Engine(0).Quiesce(func() { f.Rank(0).FailChip(spec.KillChip) })
	h.rep.ChipKills++
	sup := f.Supervisor(0)
	for i := 0; i < 600 && sup.Report().ExternalRepairs == 0; i++ {
		for j := 0; j < 8; j++ {
			h.randomOp()
		}
		if err := f.Tick(); err != nil {
			h.fail("fleet", -1, fmt.Sprintf("tick: %v", err))
			return
		}
	}
	rep := sup.Report()
	if rep.ExternalRepairs != 1 || rep.Verdicts != 1 {
		h.fail("fleet", -1, fmt.Sprintf("conviction did not repair externally: %+v", rep))
		return
	}
	if d, _ := f.Engine(0).Degraded(); d {
		h.fail("fleet", -1, "rank went degraded despite replica repair")
	}
	if f.Engine(0).Migrating() != nil {
		h.fail("fleet", -1, "migration started despite replica repair")
	}

	// The measured claim: byte copy from the replica beats RS erasure
	// decode per block.
	reps := f.Repairs()
	if len(reps) != 1 {
		h.fail("fleet", -1, fmt.Sprintf("%d repair reports, want 1", len(reps)))
		return
	}
	r := reps[0]
	if r.ReplicaBlocks == 0 || r.ErasureBlocks == 0 {
		h.fail("fleet", -1, fmt.Sprintf("repair did not exercise both paths: %+v", r))
		return
	}
	if r.Unrecoverable {
		h.fail("fleet", -1, "repair left unrecoverable blocks")
	}
	if rp, ep := r.ReplicaNSPerBlock(), r.ErasureNSPerBlock(); rp >= ep {
		h.fail("fleet", -1, fmt.Sprintf(
			"repair-from-replica not faster: %.0f ns/block vs %.0f ns/block erasure", rp, ep))
	}
}

// fleetDivergence corrupts replica copies behind the fleet's back (a
// consistent codeword of the wrong bytes — invisible to the replica
// rank's own RS) and requires the anti-entropy sweep to heal every one
// from the primary; the primary rank is then killed and the sweep-served
// failover bytes prove the heal was real.
func (h *Harness) fleetDivergence(spec FleetSpec) {
	f := h.fleet
	bb := f.BandBlocks()
	bands := h.victimBands(spec.KillRank, spec.ReplicateBands)
	h.replicateOrFail(bands)

	bogus := make([]byte, h.blockBytes)
	for i, band := range bands {
		b := band*bb + int64(i)
		rr, local, ok := f.ReplicaLocation(b)
		if !ok {
			h.fail("fleet", b, "replica vanished before corruption")
			continue
		}
		h.rng.Read(bogus)
		if err := f.Engine(rr).WriteBlockInitial(local, bogus); err != nil {
			h.fail("fleet", b, fmt.Sprintf("corrupting replica: %v", err))
		}
		h.rep.Fleet.ReplicasCorrupted++
	}

	for i := 0; i < 4 && f.Stats().DivergenceFixes < int64(len(bands)); i++ {
		if err := f.Tick(); err != nil {
			h.fail("fleet", -1, fmt.Sprintf("verify tick: %v", err))
		}
	}
	if got := f.Stats().DivergenceFixes; got != int64(len(bands)) {
		h.fail("fleet", -1, fmt.Sprintf("%d divergence repairs, want %d", got, len(bands)))
	}
	// Kill the primary: from here the sweep serves those bands from the
	// healed replicas, so any un-healed byte would surface as SDC.
	f.KillRank(spec.KillRank)
}

// fleetKillDuringRepair starts a chip repair whose replica source rank
// dies mid-quiesce (via the RepairBandHook): the bands already copied
// stay copied, the rest silently fall back to local erasure decode, and
// the repair still completes with every block intact. The dead rank's
// own unreplicated bands become contained failures in the sweep.
func (h *Harness) fleetKillDuringRepair(spec FleetSpec) {
	f := h.fleet
	// All replicas land on the rank after the primary in allocSlot
	// order; that is the rank the hook kills.
	victim := (0 + 1) % spec.Ranks
	h.replicateOrFail(h.victimBands(0, spec.ReplicateBands))
	f.SetRepairBandHook(func(rk, bandsDone int) {
		if rk == 0 && bandsDone == spec.KillAfterBands {
			f.KillRank(victim)
		}
	})

	f.Engine(0).Quiesce(func() { f.Rank(0).FailChip(spec.KillChip) })
	h.rep.ChipKills++
	if err := f.RepairChip(0, spec.KillChip); err != nil {
		h.fail("fleet", -1, fmt.Sprintf("repair across replica-rank death: %v", err))
		return
	}
	reps := f.Repairs()
	if len(reps) != 1 {
		h.fail("fleet", -1, fmt.Sprintf("%d repair reports, want 1", len(reps)))
		return
	}
	r := reps[0]
	if r.ReplicaBands != spec.KillAfterBands {
		h.fail("fleet", -1, fmt.Sprintf("%d bands copied before the kill, want %d", r.ReplicaBands, spec.KillAfterBands))
	}
	if r.ErasureBands == 0 {
		h.fail("fleet", -1, "no bands fell back to erasure after the replica rank died")
	}
	if r.Unrecoverable {
		h.fail("fleet", -1, "repair left unrecoverable blocks")
	}
	if f.Rank(0).FailedChips() != 0 {
		h.fail("fleet", -1, "chip still failed after repair")
	}
}

// fleetDoubleFault kills one chip on each rank of a two-rank fleet whose
// bands are replicated both ways: each guard convicts its own chip, and
// each repair byte-copies through the *other*, equally wounded, rank's
// corrected-read path. Both ranks must come back healthy with zero DUEs.
func (h *Harness) fleetDoubleFault(spec FleetSpec) {
	f := h.fleet
	bb := f.BandBlocks()
	both := append(h.victimBands(0, spec.ReplicateBands/2),
		h.victimBands(1, spec.ReplicateBands/2)...)
	h.replicateOrFail(both)

	f.Engine(0).Quiesce(func() { f.Rank(0).FailChip(spec.KillChip) })
	f.Engine(1).Quiesce(func() { f.Rank(1).FailChip(spec.KillChipB) })
	h.rep.ChipKills += 2

	buf := make([]byte, h.blockBytes)
	repaired := func() bool {
		return f.Supervisor(0).Report().ExternalRepairs == 1 &&
			f.Supervisor(1).Report().ExternalRepairs == 1
	}
	for i := 0; i < 800 && !repaired(); i++ {
		for _, band := range both {
			if err := f.ReadBlockInto(band*bb+int64(i%32), buf); err != nil {
				h.fail("due", band*bb, err.Error())
			}
			h.rep.Reads++
		}
		if err := f.Tick(); err != nil {
			h.fail("fleet", -1, fmt.Sprintf("tick: %v", err))
			return
		}
	}
	if !repaired() {
		h.fail("fleet", -1, fmt.Sprintf("double fault unrepaired: rank0 %+v rank1 %+v",
			f.Supervisor(0).Report(), f.Supervisor(1).Report()))
		return
	}
	for i := 0; i < 2; i++ {
		if d, _ := f.Engine(i).Degraded(); d {
			h.fail("fleet", -1, fmt.Sprintf("rank %d went degraded despite replica repair", i))
		}
		if f.Rank(i).FailedChips() != 0 {
			h.fail("fleet", -1, fmt.Sprintf("rank %d still has failed chips", i))
		}
		if f.Engine(i).Telemetry().DUEs != 0 {
			h.fail("fleet", -1, fmt.Sprintf("rank %d saw DUEs during double-fault repair", i))
		}
	}
}
