package rs

import (
	"encoding/binary"

	"chipkillpm/internal/gf"
)

// This file implements the table-driven fast paths for the RS codec. The
// reference implementations stay in rs.go (EncodePolyDiv, SyndromesHorner)
// as differential-test oracles and as fallbacks for wide codes whose check
// symbols do not fit the packed uint64 LFSR state.
//
// The paper's code is RS(72, 64) with r = 8 check bytes, so the whole LFSR
// state packs into one uint64 (check symbol i in byte i). Encoding streams
// one data byte per step through a 256-entry feedback table; syndromes are
// evaluated over the 8-byte remainder of the received word instead of all
// 72 codeword bytes, because every root of g(x) gives the same value on a
// polynomial and on its remainder mod g.

// encTables drive the byte-at-a-time LFSR for Encode/EncodeDelta and the
// decoder's remainder computation. Only built when r <= 8.
type encTables struct {
	topSh  uint        // shift extracting the top check symbol
	mask   uint64      // low 8r bits
	fb     [256]uint64 // fb[v] packs v*g_0 .. v*g_{r-1} into bytes 0..r-1
	sliced bool        // slice tables valid (r == 8 only)
	// slice[k][v] = L^8(v << 8k), where L is one zero-input step. Because a
	// step is GF(2)-linear in the packed state, eight steps over state s
	// with inputs d0..d7 equal L^8(s ^ u) with dj placed at byte 7-j of u;
	// decomposing L^8 per input byte gives the slicing-by-8 evaluation.
	slice [8][256]uint64
}

func (c *Code) buildEncTables() *encTables {
	if c.r > 8 {
		return nil
	}
	e := &encTables{topSh: uint(8 * (c.r - 1))}
	if c.r == 8 {
		e.mask = ^uint64(0)
	} else {
		e.mask = 1<<(8*uint(c.r)) - 1
	}
	for v := 1; v < 256; v++ {
		var row uint64
		for i := 0; i < c.r; i++ {
			row |= uint64(c.f.Mul(gf.Elem(v), c.gen[i])) << (8 * uint(i))
		}
		e.fb[v] = row
	}
	if c.r == 8 {
		e.sliced = true
		for k := 0; k < 8; k++ {
			for v := 0; v < 256; v++ {
				s := uint64(v) << (8 * uint(k))
				for step := 0; step < 8; step++ {
					s = e.step(s, 0)
				}
				e.slice[k][v] = s
			}
		}
	}
	return e
}

// step advances the division register by one symbol, highest degree first:
// state = (state*x + d*x^r) mod g.
//
//chipkill:seqread
func (e *encTables) step(state uint64, d byte) uint64 {
	fb := byte(state>>e.topSh) ^ d
	return state<<8&e.mask ^ e.fb[fb]
}

// remainder returns data(x)*x^r mod g packed into a uint64, where data byte
// j is the coefficient of x^j. Leading zero bytes are skipped: they cannot
// move a zero register.
//
//chipkill:seqread
func (e *encTables) remainder(data []byte) uint64 {
	if e.sliced && len(data) >= 8 && len(data)%8 == 0 {
		return e.remainderSliced(data)
	}
	i := len(data) - 1
	for i >= 0 && data[i] == 0 {
		i--
	}
	var state uint64
	for ; i >= 0; i-- {
		state = e.step(state, data[i])
	}
	return state
}

// remainderSliced consumes eight symbols per iteration (highest degree
// first, so chunks walk backward through data). Folding the state into the
// chunk first means each iteration is one 8-byte load, one XOR, and eight
// independent table lookups — no serial per-byte feedback chain. The
// all-zero chunk test keeps sparse deltas (EncodeDelta's common case) as
// cheap as the leading-zero skip in the byte loop.
//
//chipkill:seqread
func (e *encTables) remainderSliced(data []byte) uint64 {
	var state uint64
	for o := len(data) - 8; o >= 0; o -= 8 {
		t := state ^ binary.LittleEndian.Uint64(data[o:])
		if t == 0 {
			state = 0
			continue
		}
		state = e.slice[7][byte(t>>56)] ^ e.slice[6][byte(t>>48)] ^
			e.slice[5][byte(t>>40)] ^ e.slice[4][byte(t>>32)] ^
			e.slice[3][byte(t>>24)] ^ e.slice[2][byte(t>>16)] ^
			e.slice[1][byte(t>>8)] ^ e.slice[0][byte(t)]
	}
	return state
}

// decTables hold per-root multiplication tables: root[j] multiplies by
// alpha^(j+1) (syndrome Horner steps), step[j] by alpha^-(j+1) (Chien term
// advance). They apply to any r and are built eagerly in New.
type decTables struct {
	root []gf.MulTable
	step []gf.MulTable
}

func (c *Code) buildDecTables() *decTables {
	d := &decTables{
		root: make([]gf.MulTable, c.r),
		step: make([]gf.MulTable, c.r),
	}
	for j := 0; j < c.r; j++ {
		d.root[j] = c.f.MulTable(c.f.Exp(j + 1))
		d.step[j] = c.f.MulTable(c.f.Exp(-(j + 1)))
	}
	return d
}

// decodeScratch is the per-call working set, pooled on the Code so that
// concurrent decoders (the parallel boot scrub) share no state while
// steady-state decoding allocates only the returned corrections.
type decodeScratch struct {
	syn     []gf.Elem // r syndromes
	gamma   []gf.Elem // erasure locator, cap r+1
	tpoly   []gf.Elem // Forney syndromes, r
	bmSigma []gf.Elem // Berlekamp-Massey buffers, 2r+2 each
	bmPrev  []gf.Elem
	bmNext  []gf.Elem
	lambda  []gf.Elem // errata locator sigma*gamma, 2r+2
	omega   []gf.Elem // errata evaluator, r
	deriv   []gf.Elem // lambda', 2r+2
	terms   []gf.Elem // Chien term registers, 2r+2
	seen    []bool    // erasure membership by position, n
}

func (c *Code) getScratch() *decodeScratch {
	if sc, ok := c.scratch.Get().(*decodeScratch); ok {
		return sc
	}
	return &decodeScratch{
		syn:     make([]gf.Elem, c.r),
		gamma:   make([]gf.Elem, 0, c.r+1),
		tpoly:   make([]gf.Elem, c.r),
		bmSigma: make([]gf.Elem, 2*c.r+2),
		bmPrev:  make([]gf.Elem, 2*c.r+2),
		bmNext:  make([]gf.Elem, 2*c.r+2),
		lambda:  make([]gf.Elem, 2*c.r+2),
		omega:   make([]gf.Elem, c.r),
		deriv:   make([]gf.Elem, 2*c.r+2),
		terms:   make([]gf.Elem, 2*c.r+2),
		seen:    make([]bool, c.n),
	}
}

func (c *Code) putScratch(sc *decodeScratch) { c.scratch.Put(sc) }

// syndromesInto computes S_1..S_r into syn and reports whether the received
// word is a codeword. Fast path: one LFSR pass over the data plus a Horner
// evaluation of the r-symbol remainder at each root; falls back to the
// full-codeword Horner oracle when the packed LFSR is unavailable.
func (c *Code) syndromesInto(syn []gf.Elem, data, check []byte) bool {
	if c.enc == nil {
		ref, clean := c.SyndromesHorner(data, check)
		copy(syn, ref)
		return clean
	}
	rem := c.enc.remainder(data)
	for i := 0; i < c.r; i++ {
		rem ^= uint64(check[i]) << (8 * uint(i))
	}
	if rem == 0 {
		for i := range syn {
			syn[i] = 0
		}
		return true
	}
	for j := 0; j < c.r; j++ {
		tab := c.dec.root[j]
		var s gf.Elem
		for i := c.r - 1; i >= 0; i-- {
			s = tab[s] ^ gf.Elem(byte(rem>>(8*uint(i))))
		}
		syn[j] = s
	}
	return false
}

// berlekampMasseyFast is the allocation-free Berlekamp-Massey over seq,
// writing into the scratch buffers and returning the error locator (which
// aliases scratch memory, valid until the scratch is reused).
func (c *Code) berlekampMasseyFast(seq []gf.Elem, sc *decodeScratch) gf.Poly {
	f := c.f
	sigma, prev, next := sc.bmSigma, sc.bmPrev, sc.bmNext
	for i := range sigma {
		sigma[i], prev[i], next[i] = 0, 0, 0
	}
	sigma[0], prev[0] = 1, 1
	l := 0
	shift := 1
	b := gf.Elem(1)
	for i := 0; i < len(seq); i++ {
		d := seq[i]
		for j := 1; j <= l; j++ {
			if sigma[j] != 0 && seq[i-j] != 0 {
				d ^= f.Mul(sigma[j], seq[i-j])
			}
		}
		if d == 0 {
			shift++
			continue
		}
		scale := f.Div(d, b)
		if 2*l <= i {
			copy(next, sigma)
			for j, p := range prev {
				if p != 0 {
					next[j+shift] ^= f.Mul(scale, p)
				}
			}
			sigma, prev, next = next, sigma, prev
			b = d
			l = i + 1 - l
			shift = 1
		} else {
			for j, p := range prev {
				if p != 0 {
					sigma[j+shift] ^= f.Mul(scale, p)
				}
			}
			shift++
		}
	}
	deg := -1
	for i := len(sigma) - 1; i >= 0; i-- {
		if sigma[i] != 0 {
			deg = i
			break
		}
	}
	return gf.Poly(sigma[:deg+1])
}
