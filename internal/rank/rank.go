// Package rank models a persistent-memory rank: eight data chips accessed
// in lockstep plus one parity chip, laid out as in the paper's Fig 6.
//
// Each 64 B memory block takes 8 B from every data chip; the parity chip
// supplies the block's eight Reed-Solomon check bytes. Within every chip,
// each 256 B of row data forms one VLEW whose 33 B of BCH code bits sit in
// the same row. The rank is purely functional — it moves real bytes and
// injects real faults; the ECC *policy* (when to decode what) lives in
// internal/core, and timing lives in internal/memctrl.
package rank

import (
	"fmt"
	"sync/atomic"

	"chipkillpm/internal/bch"
	"chipkillpm/internal/nvram"
)

// Config describes a rank.
type Config struct {
	DataChips       int            // data chips per rank (8 in the paper)
	ChipAccessBytes int            // bytes each chip contributes per block (8)
	Geometry        nvram.Geometry // per-chip array organisation
	VLEWCode        *bch.Code      // VLEW encoder/decoder shared by all chips
	Seed            int64          // base seed for per-chip randomness
}

// BlockBytes returns the memory block size (64 B in the paper).
func (c Config) BlockBytes() int { return c.DataChips * c.ChipAccessBytes }

// BlocksPerRow returns how many blocks one row holds.
func (c Config) BlocksPerRow() int { return c.Geometry.RowDataBytes / c.ChipAccessBytes }

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.DataChips < 2 {
		return fmt.Errorf("rank: need at least 2 data chips, got %d", c.DataChips)
	}
	if c.ChipAccessBytes < 1 {
		return fmt.Errorf("rank: chip access bytes must be positive")
	}
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if c.Geometry.RowDataBytes%c.ChipAccessBytes != 0 {
		return fmt.Errorf("rank: row data %dB not a multiple of chip access %dB",
			c.Geometry.RowDataBytes, c.ChipAccessBytes)
	}
	if c.Geometry.VLEWDataBytes%c.ChipAccessBytes != 0 {
		return fmt.Errorf("rank: VLEW data %dB not a multiple of chip access %dB",
			c.Geometry.VLEWDataBytes, c.ChipAccessBytes)
	}
	return nil
}

// PaperConfig returns a rank configured exactly as the paper's layout:
// 8 data chips, 8 B per chip per block, 256 B VLEWs with 33 B code bits
// (22-bit-EC BCH over GF(2^12)). rowsPerBank and banks size the capacity.
func PaperConfig(banks, rowsPerBank, rowDataBytes int, seed int64) Config {
	return Config{
		DataChips:       8,
		ChipAccessBytes: 8,
		Geometry: nvram.Geometry{
			Banks: banks, RowsPerBank: rowsPerBank, RowDataBytes: rowDataBytes,
			VLEWDataBytes: 256, VLEWCodeBytes: 33,
		},
		VLEWCode: bch.Must(12, 2048, 22),
		Seed:     seed,
	}
}

// BlockLoc is a decoded block address within the rank.
type BlockLoc struct {
	Bank int
	Row  int
	Col  int // byte offset of the block's slice within the row data
}

// VLEWIndex returns which of the row's VLEWs covers this block, given the
// VLEW data size.
func (l BlockLoc) VLEWIndex(vlewDataBytes int) int { return l.Col / vlewDataBytes }

// Rank is a set of lockstep NVRAM chips plus a parity chip.
//
// Concurrency contract: the accessors Config, NumChips, ParityChipIndex,
// Chip, Blocks, Locate and BlocksInVLEW are read-only after New and safe
// for concurrent use. nvram.Chip.ReadVLEW and WriteVLEW may run
// concurrently from anywhere (the parallel boot scrub relies on this).
// Block-level reads and writes may run concurrently so long as no two
// goroutines touch the same *bank* at the same time — Locate maps each
// block to exactly one bank across all chips, and every chip's per-bank
// state is disjoint (see the nvram.Chip contract). The sharded engine
// partitions banks across shard locks to exploit this; a plain controller
// that serialises all rank access trivially satisfies it. Fault-injection
// and maintenance methods still require full quiescence.
type Rank struct {
	cfg    Config
	chips  []*nvram.Chip // data chips; index 0..DataChips-1
	parity *nvram.Chip   // index DataChips in chip-indexed APIs

	// failedChips counts chips currently marked failed. It is maintained
	// by FailChip/RepairChip (the only production paths that change chip
	// health) and read atomically by the engine's lock-free clean-read
	// gate: a failed chip's stored cells may still look like a valid
	// codeword, so raw-array readers must stand down the moment any chip
	// is unhealthy and let the locked correction path model the garbage
	// the failed device actually returns.
	//chipkill:atomic
	failedChips atomic.Int32
}

// New builds the rank, creating fresh zeroed chips.
func New(cfg Config) (*Rank, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Rank{cfg: cfg}
	for i := 0; i < cfg.DataChips; i++ {
		c, err := nvram.NewChip(cfg.Geometry, cfg.VLEWCode, cfg.Seed+int64(i)*7919)
		if err != nil {
			return nil, err
		}
		r.chips = append(r.chips, c)
	}
	p, err := nvram.NewChip(cfg.Geometry, cfg.VLEWCode, cfg.Seed+int64(cfg.DataChips)*7919)
	if err != nil {
		return nil, err
	}
	r.parity = p
	return r, nil
}

// Config returns the rank's configuration.
func (r *Rank) Config() Config { return r.cfg }

// NumChips returns the total chip count including the parity chip.
func (r *Rank) NumChips() int { return r.cfg.DataChips + 1 }

// ParityChipIndex returns the chip index of the parity chip.
func (r *Rank) ParityChipIndex() int { return r.cfg.DataChips }

// Chip returns a chip by index; the parity chip is ParityChipIndex().
func (r *Rank) Chip(i int) *nvram.Chip {
	if i == r.cfg.DataChips {
		return r.parity
	}
	if i < 0 || i > r.cfg.DataChips {
		panic(fmt.Sprintf("rank: chip index %d out of range", i))
	}
	return r.chips[i]
}

// Blocks returns the rank's capacity in blocks.
func (r *Rank) Blocks() int64 {
	g := r.cfg.Geometry
	return int64(g.Banks) * int64(g.RowsPerBank) * int64(r.cfg.BlocksPerRow())
}

// Locate decodes a block index into its bank/row/column location.
// Consecutive blocks share a row (giving the row-buffer locality the EUR
// exploits), and consecutive rows interleave across banks.
func (r *Rank) Locate(block int64) BlockLoc {
	if block < 0 || block >= r.Blocks() {
		panic(fmt.Sprintf("rank: block %d out of range [0,%d)", block, r.Blocks()))
	}
	bpr := int64(r.cfg.BlocksPerRow())
	rowIdx := block / bpr
	g := r.cfg.Geometry
	return BlockLoc{
		Bank: int(rowIdx % int64(g.Banks)),
		Row:  int(rowIdx / int64(g.Banks)),
		Col:  int(block%bpr) * r.cfg.ChipAccessBytes,
	}
}

// ReadBlockRaw gathers a block's 64 data bytes and 8 check bytes from the
// chips with no error correction. Failed chips contribute garbage.
func (r *Rank) ReadBlockRaw(block int64) (data, check []byte) {
	data = make([]byte, r.cfg.BlockBytes())
	check = make([]byte, r.cfg.ChipAccessBytes)
	r.ReadBlockRawInto(block, data, check)
	return data, check
}

// ReadBlockRawInto is ReadBlockRaw into caller-owned buffers — the
// allocation-free demand read primitive. data must hold BlockBytes() and
// check ChipAccessBytes.
//
//chipkill:noalloc
func (r *Rank) ReadBlockRawInto(block int64, data, check []byte) {
	n := r.cfg.ChipAccessBytes
	if len(data) != r.cfg.BlockBytes() || len(check) != n {
		panic("rank: ReadBlockRawInto size mismatch")
	}
	loc := r.Locate(block)
	for i, c := range r.chips {
		c.ReadDataInto(data[i*n:(i+1)*n], loc.Bank, loc.Row, loc.Col)
	}
	r.parity.ReadDataInto(check, loc.Bank, loc.Row, loc.Col)
}

// WriteBlockRaw writes a block and its check bytes conventionally (raw
// values on the bus); used by scrub write-back and baselines.
func (r *Rank) WriteBlockRaw(block int64, data, check []byte) {
	loc := r.Locate(block)
	n := r.cfg.ChipAccessBytes
	if len(data) != r.cfg.BlockBytes() || len(check) != n {
		panic("rank: WriteBlockRaw size mismatch")
	}
	for i, c := range r.chips {
		c.WriteData(loc.Bank, loc.Row, loc.Col, data[i*n:(i+1)*n])
	}
	r.parity.WriteData(loc.Bank, loc.Row, loc.Col, check)
}

// WriteBlockXOR sends the paper's modified write request: the bitwise sum
// of old and new data (and of old and new check bytes) travels to the
// chips, which recover the new values internally and coalesce VLEW code
// updates in their EURs.
//
// The fan-out itself holds no buffers: each chip owns per-bank scratch for
// its EUR accumulate and drain-time encode, so the whole 9-chip write chain
// is allocation-free without threading caller scratch through the rank.
//
//chipkill:noalloc
func (r *Rank) WriteBlockXOR(block int64, deltaData, deltaCheck []byte) {
	loc := r.Locate(block)
	n := r.cfg.ChipAccessBytes
	if len(deltaData) != r.cfg.BlockBytes() || len(deltaCheck) != n {
		panic("rank: WriteBlockXOR size mismatch")
	}
	for i, c := range r.chips {
		c.WriteXOR(loc.Bank, loc.Row, loc.Col, deltaData[i*n:(i+1)*n])
	}
	r.parity.WriteXOR(loc.Bank, loc.Row, loc.Col, deltaCheck)
}

// BlocksInVLEW returns the block indices whose data shares the VLEW
// covering the given block (32 blocks in the paper's geometry).
func (r *Rank) BlocksInVLEW(block int64) []int64 {
	span := int64(r.cfg.Geometry.VLEWDataBytes / r.cfg.ChipAccessBytes)
	first := block - block%span
	out := make([]int64, span)
	for i := range out {
		out[i] = first + int64(i)
	}
	return out
}

// CloseAllRows closes every open row on every chip, draining EURs.
func (r *Rank) CloseAllRows() {
	for _, c := range r.chips {
		c.CloseAllRows()
	}
	r.parity.CloseAllRows()
}

// CloseBankRows closes the given bank's open row on every chip, draining
// that bank's EURs. Bank-addressed, so it may run concurrently with
// traffic to other banks (see the Rank concurrency contract); online
// migration uses it to retire a band's code slots without quiescing the
// rank.
func (r *Rank) CloseBankRows(bank int) {
	for _, c := range r.chips {
		c.CloseRow(bank)
	}
	r.parity.CloseRow(bank)
}

// InjectRetentionErrors flips stored bits on every healthy chip with the
// given per-bit probability; models time without refresh (e.g. an outage).
// Returns total bits flipped.
func (r *Rank) InjectRetentionErrors(rber float64) int {
	total := 0
	for _, c := range r.chips {
		total += c.InjectRetentionErrors(rber)
	}
	total += r.parity.InjectRetentionErrors(rber)
	return total
}

// FailChip marks a chip (data or parity) as failed. Always fail chips
// through the rank (not nvram.Chip.Fail directly) so the failed-chip
// count the lock-free read gate consults stays accurate.
func (r *Rank) FailChip(i int) {
	c := r.Chip(i)
	if c.Healthy() {
		r.failedChips.Add(1)
	}
	c.Fail()
}

// RepairChip clears a chip failure through the rank, keeping the
// failed-chip count accurate; the boot scrub's chip rebuild uses it.
func (r *Rank) RepairChip(i int) {
	c := r.Chip(i)
	if !c.Healthy() {
		r.failedChips.Add(-1)
	}
	c.Repair()
}

// FailedChips returns the number of chips currently marked failed. It is
// a single atomic load, safe from the engine's lock-free read path.
//
//chipkill:seqread
func (r *Rank) FailedChips() int { return int(r.failedChips.Load()) }

// HealthyChips returns the indices of healthy chips (including parity).
func (r *Rank) HealthyChips() []int {
	var out []int
	for i := 0; i < r.NumChips(); i++ {
		if r.Chip(i).Healthy() {
			out = append(out, i)
		}
	}
	return out
}

// Stats sums all chips' counters.
func (r *Rank) Stats() nvram.Stats {
	var s nvram.Stats
	for i := 0; i < r.NumChips(); i++ {
		cs := r.Chip(i).Stats()
		s.DataWrites += cs.DataWrites
		s.RawWrites += cs.RawWrites
		s.VLEWCodeWrites += cs.VLEWCodeWrites
		s.RowActivations += cs.RowActivations
		s.RowCloses += cs.RowCloses
		s.BitErrorsInjected += cs.BitErrorsInjected
		s.BitsWritten += cs.BitsWritten
	}
	return s
}

// StorageOverhead returns the rank's redundancy ratio: (VLEW code bytes on
// all chips + the parity chip) relative to data capacity — the paper's
// 33/256 + 1/8*(1+33/256) = 27%.
func (r *Rank) StorageOverhead() float64 {
	g := r.cfg.Geometry
	vlewOverhead := float64(g.VLEWCodeBytes) / float64(g.VLEWDataBytes)
	return vlewOverhead + (1.0/float64(r.cfg.DataChips))*(1+vlewOverhead)
}
