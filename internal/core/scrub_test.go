package core

import (
	"bytes"
	"testing"

	"chipkillpm/internal/rank"
)

// newScrubController builds a controller with an explicit scrub worker
// count over an identically seeded rank, so runs with different worker
// counts are byte-for-byte comparable.
func newScrubController(t testing.TB, seed int64, workers int) *Controller {
	t.Helper()
	cfg := DefaultConfig()
	cfg.ScrubWorkers = workers
	c, err := NewController(smallRank(t, seed), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestBootScrubWritesBackCorrectedParityBits pins the write-back contract
// for errors confined to a VLEW's code-bit region: decode corrects the
// parity slice in place and the scrub must persist it, leaving the stored
// code bytes equal to a fresh encode of the (untouched) data.
func TestBootScrubWritesBackCorrectedParityBits(t *testing.T) {
	c := newScrubController(t, 21, 1)
	fillRandom(t, c, 22)
	r := c.Rank()
	code := r.Config().VLEWCode
	r.CloseAllRows()

	// Flip bits only inside the code-bit region of a few VLEWs, via the
	// chip's code-maintenance primitive so data stays untouched.
	type site struct{ chip, bank, row, v int }
	sites := []site{{0, 0, 2, 0}, {3, 1, 5, 1}, {r.ParityChipIndex(), 0, 7, 3}}
	for _, s := range sites {
		delta := make([]byte, code.ParityBytes())
		delta[0] = 0x01
		delta[5] = 0x40
		delta[20] = 0x08
		r.Chip(s.chip).XORCode(s.bank, s.row, s.v, delta)
	}

	rep := c.BootScrub()
	if rep.Unrecoverable || len(rep.ChipsFailed) != 0 {
		t.Fatalf("scrub failed: %v", rep)
	}
	if want := int64(len(sites) * 3); rep.BitsCorrected != want {
		t.Fatalf("corrected %d bits, want %d", rep.BitsCorrected, want)
	}
	for _, s := range sites {
		data, vcode := r.Chip(s.chip).ReadVLEW(s.bank, s.row, s.v)
		if !code.CheckClean(data, vcode[:code.ParityBytes()]) {
			t.Fatalf("site %+v: stored VLEW still dirty after scrub", s)
		}
		if want := code.Encode(data); !bytes.Equal(vcode[:code.ParityBytes()], want) {
			t.Fatalf("site %+v: stored parity not re-encoded form\ngot  %x\nwant %x",
				s, vcode[:code.ParityBytes()], want)
		}
	}
}

// TestBootScrubParallelMatchesSerial runs identically seeded ranks through
// scrubs with 1, 3 and 8 workers and demands identical reports and chip
// stats: the (chip, bank) sharding makes the scan order-insensitive.
func TestBootScrubParallelMatchesSerial(t *testing.T) {
	run := func(workers int) (ScrubReport, Stats, []byte) {
		c := newScrubController(t, 31, workers)
		fillRandom(t, c, 32)
		c.Rank().InjectRetentionErrors(1e-3)
		rep := c.BootScrub()
		var contents []byte
		for b := int64(0); b < c.Rank().Blocks(); b++ {
			data, check := c.Rank().ReadBlockRaw(b)
			contents = append(contents, data...)
			contents = append(contents, check...)
		}
		return rep, c.Stats(), contents
	}
	refRep, refStats, refContents := run(1)
	if refRep.BitsCorrected == 0 {
		t.Fatal("reference scrub corrected nothing")
	}
	for _, workers := range []int{3, 8} {
		rep, stats, contents := run(workers)
		if rep.VLEWsScrubbed != refRep.VLEWsScrubbed ||
			rep.BitsCorrected != refRep.BitsCorrected ||
			rep.BusBlockFetches != refRep.BusBlockFetches ||
			rep.BlocksRebuilt != refRep.BlocksRebuilt ||
			rep.Unrecoverable != refRep.Unrecoverable ||
			len(rep.ChipsFailed) != len(refRep.ChipsFailed) {
			t.Fatalf("workers=%d: report diverged\ngot  %v\nwant %v", workers, rep, refRep)
		}
		if stats != refStats {
			t.Fatalf("workers=%d: stats diverged\ngot  %+v\nwant %+v", workers, stats, refStats)
		}
		if !bytes.Equal(contents, refContents) {
			t.Fatalf("workers=%d: scrubbed memory contents diverged", workers)
		}
	}
}

// TestBootScrubParallelRecoversFailedChip exercises the rebuild phase with
// a multi-worker scan: the serial rebuild must still see every healthy
// chip's corrected state.
func TestBootScrubParallelRecoversFailedChip(t *testing.T) {
	c := newScrubController(t, 41, 4)
	ref := fillRandom(t, c, 42)
	c.Rank().FailChip(2)
	c.Rank().InjectRetentionErrors(1e-3)
	rep := c.BootScrub()
	if rep.Unrecoverable || len(rep.ChipsRebuilt) != 1 || rep.ChipsRebuilt[0] != 2 {
		t.Fatalf("scrub: %v", rep)
	}
	for b, want := range ref {
		got, err := c.ReadBlock(b)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("block %d wrong after parallel scrub + rebuild: err=%v", b, err)
		}
	}
}

// TestScrubWorkersValidation pins the config contract.
func TestScrubWorkersValidation(t *testing.T) {
	r, err := rank.New(rank.PaperConfig(1, 2, 512, 51))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ScrubWorkers = -1
	if _, err := NewController(r, cfg, nil); err == nil {
		t.Error("negative ScrubWorkers accepted")
	}
}
