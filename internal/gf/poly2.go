package gf

import (
	"fmt"
	"math/bits"
	"strings"
)

// Poly2 is a polynomial over GF(2), stored as a little-endian bitset:
// word i, bit j holds the coefficient of x^(64*i+j). The zero polynomial is
// an empty (or all-zero) slice. Poly2 values returned by this package never
// alias their inputs unless documented otherwise.
type Poly2 []uint64

// NewPoly2 builds a polynomial from the exponents whose coefficients are 1.
func NewPoly2(exponents ...int) Poly2 {
	var p Poly2
	for _, e := range exponents {
		p = p.SetCoeff(e, 1)
	}
	return p
}

// Poly2FromBytes interprets data as a polynomial with data[0] bit 0 being
// the coefficient of x^0 (little-endian bit and byte order).
func Poly2FromBytes(data []byte) Poly2 {
	p := make(Poly2, (len(data)+7)/8)
	for i, b := range data {
		p[i/8] |= uint64(b) << (8 * uint(i%8))
	}
	return p
}

// Bytes returns the little-endian byte representation of p, with at least
// minLen bytes (zero-padded).
func (p Poly2) Bytes(minLen int) []byte {
	n := (p.Degree() + 8) / 8
	if n < minLen {
		n = minLen
	}
	out := make([]byte, n)
	for i := range out {
		w := i / 8
		if w < len(p) {
			out[i] = byte(p[w] >> (8 * uint(i%8)))
		}
	}
	return out
}

// Degree returns the degree of p, or -1 for the zero polynomial.
func (p Poly2) Degree() int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != 0 {
			return 64*i + 63 - bits.LeadingZeros64(p[i])
		}
	}
	return -1
}

// IsZero reports whether p is the zero polynomial.
func (p Poly2) IsZero() bool { return p.Degree() < 0 }

// Coeff returns the coefficient (0 or 1) of x^i.
func (p Poly2) Coeff(i int) uint {
	w, b := i/64, uint(i%64)
	if w >= len(p) {
		return 0
	}
	return uint(p[w]>>b) & 1
}

// SetCoeff returns a copy of p with the coefficient of x^i set to c (0 or 1).
func (p Poly2) SetCoeff(i int, c uint) Poly2 {
	w, b := i/64, uint(i%64)
	q := make(Poly2, max(len(p), w+1))
	copy(q, p)
	if c&1 == 1 {
		q[w] |= 1 << b
	} else {
		q[w] &^= 1 << b
	}
	return q
}

// Clone returns an independent copy of p.
func (p Poly2) Clone() Poly2 {
	q := make(Poly2, len(p))
	copy(q, p)
	return q
}

// Add returns p + q (XOR of coefficient sets).
func (p Poly2) Add(q Poly2) Poly2 {
	r := make(Poly2, max(len(p), len(q)))
	copy(r, p)
	for i, w := range q {
		r[i] ^= w
	}
	return r
}

// Shl returns p * x^k.
func (p Poly2) Shl(k int) Poly2 {
	if p.IsZero() || k == 0 {
		return p.Clone()
	}
	words, rem := k/64, uint(k%64)
	r := make(Poly2, len(p)+words+1)
	for i, w := range p {
		r[i+words] |= w << rem
		if rem != 0 {
			r[i+words+1] |= w >> (64 - rem)
		}
	}
	return r
}

// Mul returns p * q via shift-and-add.
func (p Poly2) Mul(q Poly2) Poly2 {
	if p.IsZero() || q.IsZero() {
		return nil
	}
	r := make(Poly2, len(p)+len(q))
	for i, w := range q {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << uint(b)
			shift := 64*i + b
			words, rem := shift/64, uint(shift%64)
			for j, pw := range p {
				r[j+words] ^= pw << rem
				if rem != 0 && j+words+1 < len(r) {
					r[j+words+1] ^= pw >> (64 - rem)
				}
			}
		}
	}
	return r
}

// DivMod returns the quotient and remainder of p / d. It panics if d is the
// zero polynomial.
func (p Poly2) DivMod(d Poly2) (quo, rem Poly2) {
	dd := d.Degree()
	if dd < 0 {
		panic("gf: Poly2 division by zero polynomial")
	}
	rem = p.Clone()
	pd := rem.Degree()
	if pd < dd {
		return nil, rem
	}
	quo = make(Poly2, pd/64+1)
	for pd >= dd {
		shift := pd - dd
		quo[shift/64] |= 1 << uint(shift%64)
		// rem -= d << shift, done in place.
		words, r := shift/64, uint(shift%64)
		for j, dw := range d {
			if j+words < len(rem) {
				rem[j+words] ^= dw << r
			}
			if r != 0 && j+words+1 < len(rem) {
				rem[j+words+1] ^= dw >> (64 - r)
			}
		}
		pd = rem.Degree()
	}
	return quo, rem
}

// Mod returns p mod d.
func (p Poly2) Mod(d Poly2) Poly2 {
	_, rem := p.DivMod(d)
	return rem
}

// Equal reports whether p and q represent the same polynomial.
func (p Poly2) Equal(q Poly2) bool {
	n := max(len(p), len(q))
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(p) {
			a = p[i]
		}
		if i < len(q) {
			b = q[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

// Weight returns the number of nonzero coefficients.
func (p Poly2) Weight() int {
	w := 0
	for _, word := range p {
		w += bits.OnesCount64(word)
	}
	return w
}

// String renders p as a sum of powers of x, highest degree first.
func (p Poly2) String() string {
	d := p.Degree()
	if d < 0 {
		return "0"
	}
	var terms []string
	for i := d; i >= 0; i-- {
		if p.Coeff(i) == 1 {
			switch i {
			case 0:
				terms = append(terms, "1")
			case 1:
				terms = append(terms, "x")
			default:
				terms = append(terms, fmt.Sprintf("x^%d", i))
			}
		}
	}
	return strings.Join(terms, "+")
}
