package inject

import "sort"

// Oracle is the model-based shadow map: the expected contents of every
// block the campaign has committed. It is the ground truth that turns
// "the decoder returned without error" into "the decoder returned the
// right bytes" — the difference between detecting DUEs and detecting SDC.
type Oracle struct {
	blocks map[int64][]byte
}

// NewOracle returns an empty shadow map.
func NewOracle() *Oracle {
	return &Oracle{blocks: make(map[int64][]byte)}
}

// Commit records data as the expected contents of a block. The engine
// calls it after every acknowledged write, with the data the writer
// intended — not what the stack stored — so write-path corruption
// surfaces as a mismatch on the next read.
func (o *Oracle) Commit(block int64, data []byte) {
	buf, ok := o.blocks[block]
	if !ok || len(buf) != len(data) {
		buf = make([]byte, len(data))
		o.blocks[block] = buf
	}
	copy(buf, data)
}

// Expected returns the committed contents of a block.
func (o *Oracle) Expected(block int64) ([]byte, bool) {
	d, ok := o.blocks[block]
	return d, ok
}

// Len returns the number of committed blocks.
func (o *Oracle) Len() int { return len(o.blocks) }

// Blocks returns the committed block indices in ascending order, so that
// verification sweeps are deterministic regardless of map iteration.
func (o *Oracle) Blocks() []int64 {
	out := make([]int64, 0, len(o.blocks))
	for b := range o.blocks {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
