package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"chipkillpm/internal/rank"
)

func newStartGap(t *testing.T, seed, interval int64) (*StartGap, *Controller) {
	t.Helper()
	c := newTestController(t, seed, nil)
	sg, err := NewStartGap(c, interval)
	if err != nil {
		t.Fatal(err)
	}
	return sg, c
}

func TestStartGapValidation(t *testing.T) {
	c := newTestController(t, 70, nil)
	if _, err := NewStartGap(c, 0); err == nil {
		t.Error("zero interval accepted")
	}
	sg, err := NewStartGap(c, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sg.Blocks() != c.Rank().Blocks()-1 {
		t.Errorf("logical capacity %d, want physical-1", sg.Blocks())
	}
}

func TestStartGapMappingBijective(t *testing.T) {
	sg, _ := newStartGap(t, 71, 1)
	check := func() {
		seen := map[int64]bool{}
		for l := int64(0); l < sg.Blocks(); l++ {
			p := sg.Physical(l)
			if p < 0 || p > sg.Blocks() {
				t.Fatalf("physical %d out of range", p)
			}
			if p == sg.gap {
				t.Fatalf("logical %d mapped onto the gap", l)
			}
			if seen[p] {
				t.Fatalf("collision at physical %d", p)
			}
			seen[p] = true
		}
	}
	check()
	// Rotate the gap through several full revolutions.
	data := make([]byte, 64)
	for i := 0; i < int(sg.Blocks()+1)*2+7; i++ {
		if err := sg.Write(int64(i)%sg.Blocks(), data); err != nil {
			t.Fatal(err)
		}
		check()
	}
}

func TestStartGapPreservesDataAcrossMoves(t *testing.T) {
	sg, _ := newStartGap(t, 72, 5)
	rng := rand.New(rand.NewSource(73))
	ref := map[int64][]byte{}
	// Write every logical block, then keep writing (forcing many gap
	// moves) and verify all contents continuously.
	for l := int64(0); l < sg.Blocks(); l++ {
		data := make([]byte, 64)
		rng.Read(data)
		if err := sg.Write(l, data); err != nil {
			t.Fatal(err)
		}
		ref[l] = data
	}
	for i := 0; i < 500; i++ {
		l := rng.Int63n(sg.Blocks())
		data := make([]byte, 64)
		rng.Read(data)
		if err := sg.Write(l, data); err != nil {
			t.Fatal(err)
		}
		ref[l] = data
	}
	if sg.GapMoves() == 0 {
		t.Fatal("no gap movement happened")
	}
	for l, want := range ref {
		got, err := sg.Read(l)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("logical %d: err=%v", l, err)
		}
	}
}

func TestStartGapSpreadsWear(t *testing.T) {
	// Hammering one logical block must spread writes over multiple
	// physical blocks as the mapping rotates. Start-gap rotates one
	// position per full gap revolution, so use a small rank (128 blocks)
	// and an aggressive move interval to see several revolutions.
	r, err := rank.New(rank.PaperConfig(1, 1, 1024, 74))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewController(r, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := NewStartGap(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 64)
	touched := map[int64]bool{}
	for i := 0; i < 700; i++ { // ~5.5 gap revolutions over 128 blocks
		touched[sg.Physical(0)] = true
		if err := sg.Write(0, data); err != nil {
			t.Fatal(err)
		}
	}
	if len(touched) < 5 {
		t.Errorf("hot block touched only %d physical locations", len(touched))
	}
}

func TestStartGapVLEWConsistencyAfterMoves(t *testing.T) {
	// The whole point of Sec V-E: remapping must keep every VLEW's code
	// bits consistent. After many moves, a scrub must find nothing wrong.
	sg, c := newStartGap(t, 75, 3)
	rng := rand.New(rand.NewSource(76))
	for i := 0; i < 300; i++ {
		data := make([]byte, 64)
		rng.Read(data)
		if err := sg.Write(rng.Int63n(sg.Blocks()), data); err != nil {
			t.Fatal(err)
		}
	}
	c.Rank().CloseAllRows()
	rep := c.BootScrub()
	if rep.BitsCorrected != 0 || len(rep.ChipsFailed) != 0 {
		t.Errorf("scrub found inconsistencies after wear leveling: %v", rep)
	}
}

func TestStartGapSurvivesOutage(t *testing.T) {
	// Wear leveling composes with the boot-time story: inject outage
	// errors, scrub, and read back through the (unchanged) mapping.
	sg, c := newStartGap(t, 77, 4)
	rng := rand.New(rand.NewSource(78))
	ref := map[int64][]byte{}
	for i := 0; i < 200; i++ {
		l := rng.Int63n(sg.Blocks())
		data := make([]byte, 64)
		rng.Read(data)
		if err := sg.Write(l, data); err != nil {
			t.Fatal(err)
		}
		ref[l] = data
	}
	c.Rank().InjectRetentionErrors(1e-3)
	if rep := c.BootScrub(); rep.Unrecoverable {
		t.Fatalf("scrub failed: %v", rep)
	}
	for l, want := range ref {
		got, err := sg.Read(l)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("logical %d after outage: err=%v", l, err)
		}
	}
}

func TestWriteBlockVerifiedDetectsWornCells(t *testing.T) {
	c := newTestController(t, 80, nil)
	fillRandom(t, c, 81)
	const blk = int64(77)
	loc := c.Rank().Locate(blk)
	// Wear out a bit in chip 2's slice of the block.
	c.Rank().Chip(2).WearOutBit(loc.Bank, loc.Row, loc.Col+3, 5)

	// Writing data that disagrees with the stuck value must trip the
	// verify (one of the two polarities will disagree).
	tripped := false
	for _, fill := range []byte{0x00, 0xFF} {
		data := bytes.Repeat([]byte{fill}, 64)
		err := c.WriteBlockVerified(blk, data)
		if err != nil {
			if !errors.Is(err, ErrBlockWorn) {
				t.Fatalf("unexpected error: %v", err)
			}
			tripped = true
			break
		}
	}
	if !tripped {
		t.Fatal("worn cell never detected")
	}
	if !c.BlockDisabled(blk) {
		t.Error("worn block not retired")
	}
	// Healthy blocks still verify fine.
	if err := c.WriteBlockVerified(78, make([]byte, 64)); err != nil {
		t.Fatalf("healthy block tripped verify: %v", err)
	}
}

func TestWearOutBitSticks(t *testing.T) {
	c := newTestController(t, 82, nil)
	fillRandom(t, c, 83)
	loc := c.Rank().Locate(5)
	chip := c.Rank().Chip(0)
	before := chip.ReadData(loc.Bank, loc.Row, loc.Col, 1)[0]
	chip.WearOutBit(loc.Bank, loc.Row, loc.Col, 0)
	// Try to flip bit 0 via a raw write; it must stay at its old value.
	chip.WriteDataRaw(loc.Bank, loc.Row, loc.Col, []byte{before ^ 0x01})
	after := chip.ReadData(loc.Bank, loc.Row, loc.Col, 1)[0]
	if after&0x01 != before&0x01 {
		t.Error("stuck bit changed value")
	}
	if after&0xFE != (before^0x01)&0xFE {
		t.Error("healthy bits of the cell did not update")
	}
}
