package nvram

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"chipkillpm/internal/bch"
	"chipkillpm/internal/gf"
)

// Geometry describes one NVRAM chip's array organisation. Each row holds
// RowDataBytes of data followed by one VLEW code region per VLEWDataBytes
// of data, mirroring Fig 6: code bits live in the same row as the data
// they protect.
type Geometry struct {
	Banks         int // banks per chip
	RowsPerBank   int
	RowDataBytes  int // data bytes per row; must be a multiple of VLEWDataBytes
	VLEWDataBytes int // data bytes per VLEW (256 in the paper)
	VLEWCodeBytes int // code bytes per VLEW (33 in the paper)
}

// Validate checks the geometry for internal consistency.
func (g Geometry) Validate() error {
	if g.Banks < 1 || g.RowsPerBank < 1 || g.RowDataBytes < 1 {
		return fmt.Errorf("nvram: geometry has non-positive dimensions: %+v", g)
	}
	if g.VLEWDataBytes < 1 || g.RowDataBytes%g.VLEWDataBytes != 0 {
		return fmt.Errorf("nvram: row data bytes %d not a multiple of VLEW data bytes %d",
			g.RowDataBytes, g.VLEWDataBytes)
	}
	if g.VLEWCodeBytes < 0 {
		return fmt.Errorf("nvram: negative VLEW code bytes")
	}
	return nil
}

// VLEWsPerRow returns the number of VLEWs each row holds.
func (g Geometry) VLEWsPerRow() int { return g.RowDataBytes / g.VLEWDataBytes }

// RowTotalBytes returns the physical row size: data plus code regions.
func (g Geometry) RowTotalBytes() int {
	return g.RowDataBytes + g.VLEWsPerRow()*g.VLEWCodeBytes
}

// DataBytes returns the chip's usable data capacity.
func (g Geometry) DataBytes() int64 {
	return int64(g.Banks) * int64(g.RowsPerBank) * int64(g.RowDataBytes)
}

// EURRegisters returns the number of ECC Update Registerfile entries the
// chip needs: one per VLEW of each bank's single open row (B * R/256 in
// the paper's notation).
func (g Geometry) EURRegisters() int { return g.Banks * g.VLEWsPerRow() }

// Stats aggregates a chip's activity counters.
type Stats struct {
	DataWrites        int64 // XOR-write operations received
	RawWrites         int64 // conventional (overwrite) writes
	VLEWCodeWrites    int64 // EUR registers drained to the array (code-bit write events)
	RowActivations    int64
	RowCloses         int64
	BitErrorsInjected int64
	BitsWritten       int64 // physical data bits written (for wear accounting)
}

// CFactor returns the ratio between VLEW code-bit writes and data writes —
// the paper's C factor (Fig 15). Lower is better; row-buffer locality
// lets the EUR coalesce many data writes into one code write.
func (s Stats) CFactor() float64 {
	if s.DataWrites == 0 {
		return 0
	}
	return float64(s.VLEWCodeWrites) / float64(s.DataWrites)
}

// Chip is one NVRAM die. It stores real bytes, injects real bit errors,
// embeds a linear BCH encoder for VLEW code bits and an EUR that coalesces
// code-bit updates per open-row VLEW until the row closes (Fig 11).
//
// Concurrency contract: ReadVLEW and WriteVLEW take the chip's internal
// mutex and may be called concurrently — the parallel boot scrub fans
// workers out across (chip, bank) pairs, so two workers can hit the same
// chip at once. Every other method requires external serialisation, which
// matches real hardware: the memory controller serialises demand accesses
// to a rank. Decoding (the expensive part of a scrub) happens outside the
// chip and needs no lock.
type Chip struct {
	mu      sync.Mutex // guards cells/eur/stats/rng for the *VLEW methods
	geom    Geometry
	enc     *bch.Code // VLEW encoder; nil disables in-chip encoding
	cells   []byte    // banks x rows x RowTotalBytes
	rng     *rand.Rand
	failed  bool
	openRow []int             // per bank; -1 when closed
	eur     map[eurKey][]byte // accumulated code updates for open rows
	rowWear []int64           // writes per row, for wear accounting
	stuck   map[int]stuckCell // worn-out cells: writes cannot change them
	stats   Stats
}

// stuckCell describes permanently faulty bits of one cell byte: the bits
// in mask always read back as the corresponding bits of value.
type stuckCell struct {
	mask, value byte
}

type eurKey struct {
	bank, vlew int
}

// NewChip builds a chip with the given geometry. enc may be nil for chips
// modelled without an embedded encoder (e.g. DRAM baselines). seed makes
// the chip's stochastic behaviour reproducible.
func NewChip(geom Geometry, enc *bch.Code, seed int64) (*Chip, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if enc != nil {
		if enc.DataBytes() != geom.VLEWDataBytes {
			return nil, fmt.Errorf("nvram: encoder protects %dB, geometry VLEW holds %dB",
				enc.DataBytes(), geom.VLEWDataBytes)
		}
		if enc.ParityBytes() > geom.VLEWCodeBytes {
			return nil, fmt.Errorf("nvram: encoder needs %dB code, geometry provides %dB",
				enc.ParityBytes(), geom.VLEWCodeBytes)
		}
	}
	c := &Chip{
		geom:    geom,
		enc:     enc,
		cells:   make([]byte, int64(geom.Banks)*int64(geom.RowsPerBank)*int64(geom.RowTotalBytes())),
		rng:     rand.New(rand.NewSource(seed)),
		openRow: make([]int, geom.Banks),
		eur:     make(map[eurKey][]byte),
		rowWear: make([]int64, geom.Banks*geom.RowsPerBank),
		stuck:   make(map[int]stuckCell),
	}
	for i := range c.openRow {
		c.openRow[i] = -1
	}
	return c, nil
}

// Geometry returns the chip's geometry.
func (c *Chip) Geometry() Geometry { return c.geom }

// Stats returns a snapshot of the chip's counters.
func (c *Chip) Stats() Stats { return c.stats }

// Healthy reports whether the chip has not suffered a chip-level failure.
func (c *Chip) Healthy() bool { return !c.failed }

// Fail marks the chip as failed: reads return garbage, writes are dropped.
func (c *Chip) Fail() { c.failed = true }

// Repair clears a chip failure (models replacing/remapping the device);
// contents are zeroed, as a fresh device would be.
func (c *Chip) Repair() {
	c.failed = false
	for i := range c.cells {
		c.cells[i] = 0
	}
	c.eur = make(map[eurKey][]byte)
}

func (c *Chip) rowBase(bank, row int) int {
	c.checkAddr(bank, row)
	return (bank*c.geom.RowsPerBank + row) * c.geom.RowTotalBytes()
}

func (c *Chip) checkAddr(bank, row int) {
	if bank < 0 || bank >= c.geom.Banks || row < 0 || row >= c.geom.RowsPerBank {
		panic(fmt.Sprintf("nvram: address out of range: bank=%d row=%d (geometry %dx%d)",
			bank, row, c.geom.Banks, c.geom.RowsPerBank))
	}
}

// ReadData returns n data bytes starting at byte offset off within the
// row. A failed chip returns garbage.
func (c *Chip) ReadData(bank, row, off, n int) []byte {
	base := c.rowBase(bank, row)
	if off < 0 || off+n > c.geom.RowDataBytes {
		panic(fmt.Sprintf("nvram: data read [%d,%d) outside row data %d", off, off+n, c.geom.RowDataBytes))
	}
	out := make([]byte, n)
	if c.failed {
		c.rng.Read(out)
		return out
	}
	copy(out, c.cells[base+off:base+off+n])
	return out
}

// WriteData overwrites data bytes conventionally (raw values on the bus).
// Used by scrub write-back and by baseline schemes. VLEW code bits for the
// affected region are updated through the in-chip encoder when present,
// bypassing the EUR (scrub-style writes are not row-locality optimised).
func (c *Chip) WriteData(bank, row, off int, data []byte) {
	base := c.rowBase(bank, row)
	if off < 0 || off+len(data) > c.geom.RowDataBytes {
		panic(fmt.Sprintf("nvram: data write [%d,%d) outside row data %d", off, off+len(data), c.geom.RowDataBytes))
	}
	c.stats.RawWrites++
	if c.failed {
		return
	}
	old := c.cells[base+off : base+off+len(data)]
	if c.enc != nil {
		// Update code bits from the delta before overwriting.
		delta := make([]byte, len(data))
		for i := range data {
			delta[i] = old[i] ^ data[i]
		}
		c.applyCodeDelta(bank, row, off, delta, false)
	}
	copy(old, data)
	c.applyStuck(base+off, len(data))
	c.stats.BitsWritten += int64(8 * len(data))
	c.rowWear[bank*c.geom.RowsPerBank+row]++
}

// WriteXOR receives the bitwise sum of old and new data (the paper's
// modified write request) and applies it: new data is recovered by XORing
// the stored old data, and the VLEW code-bit update is accumulated in the
// EUR until row close. The target row is opened implicitly, closing any
// other open row in the bank (draining its EUR registers).
func (c *Chip) WriteXOR(bank, row, off int, delta []byte) {
	base := c.rowBase(bank, row)
	if off < 0 || off+len(delta) > c.geom.RowDataBytes {
		panic(fmt.Sprintf("nvram: XOR write [%d,%d) outside row data %d", off, off+len(delta), c.geom.RowDataBytes))
	}
	c.OpenRow(bank, row)
	c.stats.DataWrites++
	if c.failed {
		return
	}
	gf.XORBytes(c.cells[base+off:base+off+len(delta)], delta)
	c.applyStuck(base+off, len(delta))
	c.stats.BitsWritten += int64(8 * len(delta))
	c.rowWear[bank*c.geom.RowsPerBank+row]++
	if c.enc != nil {
		c.applyCodeDelta(bank, row, off, delta, true)
	}
}

// applyCodeDelta folds a data delta into VLEW code bits, either via the
// EUR (coalesce=true) or immediately.
func (c *Chip) applyCodeDelta(bank, row, off int, delta []byte, coalesce bool) {
	// The delta may span multiple VLEWs; split on VLEW boundaries.
	for len(delta) > 0 {
		v := off / c.geom.VLEWDataBytes
		inOff := off % c.geom.VLEWDataBytes
		n := c.geom.VLEWDataBytes - inOff
		if n > len(delta) {
			n = len(delta)
		}
		update := c.enc.EncodeDelta(delta[:n], inOff*8)
		if coalesce {
			k := eurKey{bank, v}
			reg, ok := c.eur[k]
			if !ok {
				reg = make([]byte, c.enc.ParityBytes())
				c.eur[k] = reg
			}
			c.enc.XORParity(reg, update)
		} else {
			gf.XORBytes(c.vlewCode(bank, row, v), update)
			c.stats.VLEWCodeWrites++
		}
		delta = delta[n:]
		off += n
	}
}

// vlewCode returns the stored code-bit slice for a VLEW (aliases cells).
func (c *Chip) vlewCode(bank, row, v int) []byte {
	base := c.rowBase(bank, row)
	start := base + c.geom.RowDataBytes + v*c.geom.VLEWCodeBytes
	return c.cells[start : start+c.geom.VLEWCodeBytes]
}

// OpenRow activates a row in a bank, closing (and EUR-draining) any other
// open row first. Opening an already-open row is a no-op (a row hit).
func (c *Chip) OpenRow(bank, row int) {
	c.checkAddr(bank, row)
	if c.openRow[bank] == row {
		return
	}
	if c.openRow[bank] >= 0 {
		c.CloseRow(bank)
	}
	c.openRow[bank] = row
	c.stats.RowActivations++
}

// CloseRow closes the bank's open row, draining every nonempty EUR
// register belonging to it into the row's code region (Fig 11: "when
// receiving a row close request, an NVRAM chip must first drain the
// coalesced ECC updates").
func (c *Chip) CloseRow(bank int) {
	if bank < 0 || bank >= c.geom.Banks {
		panic(fmt.Sprintf("nvram: bank %d out of range", bank))
	}
	row := c.openRow[bank]
	if row < 0 {
		return
	}
	for v := 0; v < c.geom.VLEWsPerRow(); v++ {
		k := eurKey{bank, v}
		reg, ok := c.eur[k]
		if !ok {
			continue
		}
		if !c.failed {
			gf.XORBytes(c.vlewCode(bank, row, v), reg)
		}
		c.stats.VLEWCodeWrites++
		delete(c.eur, k)
	}
	c.openRow[bank] = -1
	c.stats.RowCloses++
}

// CloseAllRows closes every bank's open row; used before scrubbing so that
// stored code bits are consistent with stored data.
func (c *Chip) CloseAllRows() {
	for b := 0; b < c.geom.Banks; b++ {
		c.CloseRow(b)
	}
}

// ReadVLEW returns copies of a VLEW's data and code bytes. Pending EUR
// updates for that VLEW are drained first so the returned pair is
// internally consistent. A failed chip returns garbage. Safe for
// concurrent use (see the Chip concurrency contract).
func (c *Chip) ReadVLEW(bank, row, v int) (data, code []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	base := c.rowBase(bank, row)
	if v < 0 || v >= c.geom.VLEWsPerRow() {
		panic(fmt.Sprintf("nvram: VLEW index %d out of range", v))
	}
	data = make([]byte, c.geom.VLEWDataBytes)
	code = make([]byte, c.geom.VLEWCodeBytes)
	if c.failed {
		c.rng.Read(data)
		c.rng.Read(code)
		return data, code
	}
	if c.openRow[bank] == row {
		k := eurKey{bank, v}
		if reg, ok := c.eur[k]; ok {
			gf.XORBytes(c.vlewCode(bank, row, v), reg)
			c.stats.VLEWCodeWrites++
			delete(c.eur, k)
		}
	}
	copy(data, c.cells[base+v*c.geom.VLEWDataBytes:])
	copy(code, c.vlewCode(bank, row, v))
	return data, code
}

// WriteVLEW overwrites a VLEW's data and code regions directly; used by
// boot-time scrub write-back and ECC leveling. Safe for concurrent use
// (see the Chip concurrency contract).
func (c *Chip) WriteVLEW(bank, row, v int, data, code []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	base := c.rowBase(bank, row)
	if len(data) != c.geom.VLEWDataBytes || len(code) != c.geom.VLEWCodeBytes {
		panic("nvram: WriteVLEW size mismatch")
	}
	c.stats.RawWrites++
	if c.failed {
		return
	}
	delete(c.eur, eurKey{bank, v})
	copy(c.cells[base+v*c.geom.VLEWDataBytes:], data)
	c.applyStuck(base+v*c.geom.VLEWDataBytes, len(data))
	copy(c.vlewCode(bank, row, v), code)
	c.stats.BitsWritten += int64(8 * (len(data) + len(code)))
	c.rowWear[bank*c.geom.RowsPerBank+row]++
}

// InjectRetentionErrors flips stored bits across the whole array (data and
// code regions) with the given per-bit probability, modelling errors
// accumulated since the last refresh. The number of flips is sampled
// binomially and positions are uniform; it returns the number of bits
// flipped. Pending EUR state is unaffected (registers are SRAM).
func (c *Chip) InjectRetentionErrors(rber float64) int {
	if c.failed || rber <= 0 {
		return 0
	}
	totalBits := int64(len(c.cells)) * 8
	flips := sampleBinomial(c.rng, totalBits, rber)
	for i := int64(0); i < flips; i++ {
		p := c.rng.Int63n(totalBits)
		c.cells[p/8] ^= 1 << uint(p%8)
	}
	c.stats.BitErrorsInjected += flips
	return int(flips)
}

// WearOutBit makes one data bit permanently stuck at its current value
// (the dominant NVRAM wear failure mode [86]): subsequent writes cannot
// change it, so a write-then-verify read exposes the block as worn.
func (c *Chip) WearOutBit(bank, row, byteOff int, bit uint) {
	base := c.rowBase(bank, row)
	if byteOff < 0 || byteOff >= c.geom.RowDataBytes {
		panic(fmt.Sprintf("nvram: WearOutBit offset %d outside row data", byteOff))
	}
	idx := base + byteOff
	mask := byte(1 << (bit % 8))
	sc := c.stuck[idx]
	sc.mask |= mask
	sc.value = (sc.value &^ mask) | (c.cells[idx] & mask)
	c.stuck[idx] = sc
}

// applyStuck re-imposes stuck cells over a just-written range.
func (c *Chip) applyStuck(start, n int) {
	if len(c.stuck) == 0 {
		return
	}
	for i := start; i < start+n; i++ {
		if sc, ok := c.stuck[i]; ok {
			c.cells[i] = (c.cells[i] &^ sc.mask) | sc.value
		}
	}
}

// WriteDataRaw overwrites data bytes without touching VLEW code bits.
// It exists for controllers that manage code bits themselves — notably
// degraded-mode operation (Sec V-E), where the per-chip VLEW slots are
// repurposed for rank-striped VLEWs that an individual chip cannot
// maintain.
func (c *Chip) WriteDataRaw(bank, row, off int, data []byte) {
	base := c.rowBase(bank, row)
	if off < 0 || off+len(data) > c.geom.RowDataBytes {
		panic(fmt.Sprintf("nvram: raw write [%d,%d) outside row data %d", off, off+len(data), c.geom.RowDataBytes))
	}
	c.stats.RawWrites++
	if c.failed {
		return
	}
	copy(c.cells[base+off:], data)
	c.applyStuck(base+off, len(data))
	c.stats.BitsWritten += int64(8 * len(data))
	c.rowWear[bank*c.geom.RowsPerBank+row]++
}

// XORCode XORs delta into a VLEW code slot; the degraded-mode
// controller's code-maintenance primitive.
func (c *Chip) XORCode(bank, row, v int, delta []byte) {
	if v < 0 || v >= c.geom.VLEWsPerRow() {
		panic(fmt.Sprintf("nvram: VLEW index %d out of range", v))
	}
	if len(delta) > c.geom.VLEWCodeBytes {
		panic("nvram: code delta too long")
	}
	if c.failed {
		return
	}
	gf.XORBytes(c.vlewCode(bank, row, v), delta)
	c.stats.BitsWritten += int64(8 * len(delta))
}

// ReadCode returns a copy of a VLEW code slot.
func (c *Chip) ReadCode(bank, row, v int) []byte {
	if v < 0 || v >= c.geom.VLEWsPerRow() {
		panic(fmt.Sprintf("nvram: VLEW index %d out of range", v))
	}
	out := make([]byte, c.geom.VLEWCodeBytes)
	if c.failed {
		c.rng.Read(out)
		return out
	}
	copy(out, c.vlewCode(bank, row, v))
	return out
}

// FlipDataBit flips one stored data bit directly in the array, without
// updating VLEW code bits — a targeted fault-injection hook complementing
// the statistical InjectRetentionErrors. byteOff addresses the row's data
// region; bit selects the bit within that byte.
func (c *Chip) FlipDataBit(bank, row, byteOff int, bit uint) {
	base := c.rowBase(bank, row)
	if byteOff < 0 || byteOff >= c.geom.RowDataBytes {
		panic(fmt.Sprintf("nvram: FlipDataBit offset %d outside row data", byteOff))
	}
	if c.failed {
		return
	}
	c.cells[base+byteOff] ^= 1 << (bit % 8)
	c.stats.BitErrorsInjected++
}

// FlipCodeBit flips one stored bit of a VLEW code slot directly in the
// array, without touching data bits — the code-region counterpart of
// FlipDataBit, letting fault campaigns target each region (data, code,
// parity-chip data) independently. byteOff addresses the VLEW's code
// slot; bit selects the bit within that byte.
func (c *Chip) FlipCodeBit(bank, row, v, byteOff int, bit uint) {
	if v < 0 || v >= c.geom.VLEWsPerRow() {
		panic(fmt.Sprintf("nvram: FlipCodeBit VLEW index %d out of range", v))
	}
	if byteOff < 0 || byteOff >= c.geom.VLEWCodeBytes {
		panic(fmt.Sprintf("nvram: FlipCodeBit offset %d outside code slot (%dB)", byteOff, c.geom.VLEWCodeBytes))
	}
	if c.failed {
		return
	}
	c.vlewCode(bank, row, v)[byteOff] ^= 1 << (bit % 8)
	c.stats.BitErrorsInjected++
}

// RowWear returns the write count of one row.
func (c *Chip) RowWear(bank, row int) int64 {
	c.checkAddr(bank, row)
	return c.rowWear[bank*c.geom.RowsPerBank+row]
}

// sampleBinomial draws Binomial(n, p) using a normal approximation for
// large means and direct Bernoulli summation for small ones.
func sampleBinomial(rng *rand.Rand, n int64, p float64) int64 {
	mean := float64(n) * p
	if mean < 50 {
		// Poisson-style inversion: for tiny p the count is small.
		count := int64(0)
		// Sample gaps between successes geometrically.
		if p <= 0 {
			return 0
		}
		pos := int64(0)
		for {
			// Geometric skip: number of failures before next success.
			u := rng.Float64()
			skip := int64(math.Log(u) / math.Log1p(-p))
			pos += skip + 1
			if pos > n {
				return count
			}
			count++
		}
	}
	sd := math.Sqrt(mean * (1 - p))
	v := rng.NormFloat64()*sd + mean
	if v < 0 {
		return 0
	}
	if v > float64(n) {
		return n
	}
	return int64(v + 0.5)
}
