// Package nvram is a stub of the real internal/nvram for the
// bankaccess analyzer's path-suffix matching.
package nvram

type Chip struct{}

// Quiescence-class mutations (policed outside nvram/rank).
func (c *Chip) Fail()                              {}
func (c *Chip) Repair()                            {}
func (c *Chip) CloseAllRows()                      {}
func (c *Chip) InjectRetentionErrors(n int)        {}
func (c *Chip) WearOutBit(bank, row, bit int)      {}
func (c *Chip) FlipDataBit(bank, row, bit int)     {}
func (c *Chip) FlipCodeBit(bank, row, bit int)     {}

// CloseBankRows is bank-scoped: shardable, not policed.
func (c *Chip) CloseBankRows(bank int) {}
