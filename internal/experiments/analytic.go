// Package experiments regenerates every table and figure of the paper's
// evaluation: the analytical figures (1-5, 7, the appendix, and the
// storage-cost discussion) directly from internal/reliability and
// internal/nvram, the functional experiments (boot scrub, chipkill
// recovery, Monte-Carlo fault injection) from internal/core, and the
// performance figures (10, 14-18) from internal/sim.
//
// Each experiment returns a stats.Table whose rows mirror the series the
// paper plots, so cmd/experiments can print them and EXPERIMENTS.md can
// record paper-vs-measured values.
package experiments

import (
	"fmt"

	"chipkillpm/internal/bch"
	"chipkillpm/internal/core"
	"chipkillpm/internal/nvram"
	"chipkillpm/internal/reliability"
	"chipkillpm/internal/stats"
)

func f(format string, v ...any) string { return fmt.Sprintf(format, v...) }

// Fig1RBER regenerates Figure 1: RBER of the modelled memory technologies
// at increasing times since refresh.
func Fig1RBER() *stats.Table {
	times := []float64{1, 60, nvram.Hour, nvram.Day, nvram.Week, nvram.Month, nvram.Year}
	tab := &stats.Table{Header: []string{"technology"}}
	for _, s := range times {
		tab.Header = append(tab.Header, nvram.FormatInterval(s))
	}
	for _, tech := range nvram.Fig1Technologies() {
		row := []string{tech.Name}
		for _, s := range times {
			row = append(row, f("%.1e", tech.RBER(s)))
		}
		tab.AddRow(row...)
	}
	return tab
}

// Fig2StorageCost regenerates Figure 2: the total storage cost of
// extending DRAM chipkill-correct schemes to NVRAM RBERs.
func Fig2StorageCost() *stats.Table {
	rbers := []float64{1e-5, 1e-4, 1e-3}
	tab := &stats.Table{Header: []string{"scheme", "RBER 1e-5", "RBER 1e-4", "RBER 1e-3"}}
	type builder func(float64) reliability.SchemeCost
	schemes := []builder{
		func(r float64) reliability.SchemeCost { return reliability.XEDStyleCost(8, r) },
		func(r float64) reliability.SchemeCost { return reliability.XEDStyleCost(16, r) },
		func(r float64) reliability.SchemeCost { return reliability.DUOStyleCost(64, r) },
		func(r float64) reliability.SchemeCost { return reliability.ChipkillViaStrongerBCHCost(64, 64, r) },
	}
	for _, build := range schemes {
		var row []string
		for i, r := range rbers {
			sc := build(r)
			if i == 0 {
				row = append(row, sc.Scheme)
			}
			if sc.Feasible {
				row = append(row, f("%.0f%% (t=%d)", 100*sc.Cost, sc.T))
			} else {
				row = append(row, "infeasible")
			}
		}
		tab.AddRow(row...)
	}
	proposal := reliability.ProposalStorageCost()
	tab.AddRow("proposal (VLEW 256B + parity chip)", "-", "-", f("%.0f%%", 100*proposal))
	return tab
}

// Fig3FlashECC regenerates Figure 3's point: the BCH strength 512B-data
// Flash-style VLEWs need across BERs, landing in the commercial 12..41-EC
// band.
func Fig3FlashECC() *stats.Table {
	tab := &stats.Table{Header: []string{"BER", "required t (512B words)", "code bits", "storage cost"}}
	for _, ber := range []float64{1e-5, 1e-4, 5e-4, 1e-3, 2e-3, 3e-3} {
		t, err := reliability.FlashECCRequiredT(ber)
		if err != nil {
			tab.AddRow(f("%.0e", ber), "infeasible", "-", "-")
			continue
		}
		bits := bch.ParityBitsEstimate(512*8, t)
		tab.AddRow(f("%.0e", ber), f("%d", t), f("%d", bits),
			f("%.1f%%", 100*float64(bits)/float64(512*8)))
	}
	return tab
}

// Fig4CodewordSweep regenerates Figure 4: total storage cost (bit-error
// code plus parity chip) against ECC word length at RBER 1e-3.
func Fig4CodewordSweep(rber float64) *stats.Table {
	tab := &stats.Table{Header: []string{"word data", "required t", "code bytes", "bit-EC cost", "total cost"}}
	for _, sc := range reliability.Fig4Sweep(rber, []int{64, 128, 256, 512, 1024, 2048, 4096}) {
		if !sc.Feasible {
			tab.AddRow(f("%dB", sc.WordBytes), "infeasible", "-", "-", "-")
			continue
		}
		codeBytes := (bch.ParityBitsEstimate(sc.WordBytes*8, sc.T) + 7) / 8
		bitCost := float64(codeBytes) / float64(sc.WordBytes)
		tab.AddRow(f("%dB", sc.WordBytes), f("%d", sc.T), f("%d", codeBytes),
			f("%.1f%%", 100*bitCost), f("%.1f%%", 100*sc.Cost))
	}
	return tab
}

// Fig5Bandwidth regenerates Figure 5: the read and write bandwidth
// overheads of protecting persistent memory with VLEWs alone.
func Fig5Bandwidth() *stats.Table {
	g := reliability.PaperVLEW
	tab := &stats.Table{Header: []string{"scenario", "overhead"}}
	tab.AddRow("read, naive VLEW @ RBER 7e-5",
		f("%.0f%%", 100*reliability.NaiveVLEWReadOverhead(g, 7e-5, 72*8)))
	tab.AddRow("read, naive VLEW @ RBER 2e-4",
		f("%.0f%%", 100*reliability.NaiveVLEWReadOverhead(g, 2e-4, 72*8)))
	tab.AddRow("write, processor-side code update",
		f("%.0f%%", 100*reliability.NaiveVLEWWriteOverhead(g, false)))
	tab.AddRow("write, in-chip encoder (old-data fetch + send-back)",
		f("%.0f%%", 100*reliability.NaiveVLEWWriteOverhead(g, true)))
	tab.AddRow("read, proposal (threshold-2 RS, VLEW fallback) @ 2e-4",
		f("%.2f%%", 100*reliability.ProposalReadOverhead(g, 64, 8, 2, 2e-4)))
	tab.AddRow("write, proposal (OMV in LLC + bitwise-sum write)", "~0%")
	return tab
}

// Fig7ErrorDistribution regenerates Figure 7: the distribution of the
// number of byte errors in a 64B request at RBER 2e-4.
func Fig7ErrorDistribution(rber float64) *stats.Table {
	pByte := reliability.ByteErrorRate(rber, 8)
	tab := &stats.Table{Header: []string{"errors", "P[X = k]", "P[X >= k]"}}
	for k := 0; k <= 6; k++ {
		tab.AddRow(f("%d", k),
			f("%.3e", reliability.BinomPMF(64, k, pByte)),
			f("%.3e", reliability.BinomTail(64, k, pByte)))
	}
	return tab
}

// StorageSummary regenerates the storage-cost numbers of Secs III-A and
// V-A: 14-EC BCH at 28%, the 78-EC strengthening at 152%, and the
// proposal's 27%.
func StorageSummary() *stats.Table {
	tab := &stats.Table{Header: []string{"scheme", "strength", "storage cost"}}
	bo := reliability.BitOnlyBCHCost(64, 1e-3)
	tab.AddRow(bo.Scheme, f("%d-bit EC", bo.T), f("%.1f%%", 100*bo.Cost))
	ck := reliability.ChipkillViaStrongerBCHCost(64, 64, 1e-3)
	tab.AddRow(ck.Scheme, f("%d-bit EC", ck.T), f("%.0f%%", 100*ck.Cost))
	vl := reliability.VLEWSchemeCost(256, 1e-3)
	tab.AddRow(vl.Scheme, f("%d-bit EC + RS(72,64)", vl.T), f("%.1f%%", 100*vl.Cost))
	tab.AddRow("paper headline (33/256 + 1/8*(1+33/256))", "-",
		f("%.1f%%", 100*reliability.ProposalStorageCost()))
	return tab
}

// AppendixSDC regenerates the appendix's miscorrection calculation.
func AppendixSDC() *stats.Table {
	tab := &stats.Table{Header: []string{"t", "nth", "Term A", "Term B", "SDC rate", "vs 1e-17 target"}}
	for _, t := range []int{4, 3, 2, 1} {
		m := reliability.RSMiscorrection{K: 64, R: 8, T: t, RBER: 2e-4}
		sdc := m.SDCRate()
		tab.AddRow(f("%d", t), f("%d", m.NTh()),
			f("%.2e", m.TermA()), f("%.2e", m.TermB()), f("%.2e", sdc),
			f("%.1e x", sdc/reliability.TargetSDC))
	}
	return tab
}

// FallbackAnalysis regenerates Sec V-C/V-E rates: the fraction of reads
// needing multi-error RS correction, the VLEW fallback rate, and the
// resulting read bandwidth overhead.
func FallbackAnalysis() *stats.Table {
	g := reliability.PaperVLEW
	tab := &stats.Table{Header: []string{"RBER", "multi-error RS", "VLEW fallback", "read bw overhead"}}
	for _, rber := range []float64{7e-5, 2e-4} {
		tab.AddRow(f("%.0e", rber),
			f("1/%.0f", 1/reliability.MultiErrorRSRate(64, 8, rber)),
			f("%.4f%%", 100*reliability.ProposalFallbackRate(64, 8, 2, rber)),
			f("%.2f%%", 100*reliability.ProposalReadOverhead(g, 64, 8, 2, rber)))
	}
	return tab
}

// Fig13HWCost regenerates the Sec V-E hardware cost summary.
func Fig13HWCost() *stats.Table {
	tab := &stats.Table{Header: []string{"unit", "area (mm^2)", "latency (ns)"}}
	tab.AddRow("in-chip 22-EC BCH encoder (Fig 13)", f("%.2f", core.BCHEncoderAreaMM2), f("%.1f", core.BCHEncoderLatencyNS))
	tab.AddRow("controller RS decoder (multi-byte)", f("%.3f", core.RSDecoderAreaMM2), f("%.0f", core.RSDecoderLatencyNS))
	tab.AddRow("controller 22-EC BCH decoder", f("%.2f", core.BCHDecoderAreaMM2), f("%.0f", core.BCHDecoderLatencyNS))
	tab.AddRow("added tWR (encoder + internal RMW)", "-", f("%.0f", core.InternalReadModifyWriteNS))
	return tab
}

// ScrubAnalysis regenerates Sec V-B's boot-scrub time estimate.
func ScrubAnalysis() *stats.Table {
	tab := &stats.Table{Header: []string{"memory per channel", "bus", "scrub time"}}
	// 3 GHz DDR bus, 8 B wide: 48 GB/s peak.
	bus := 3e9 * 2 * 8.0
	for _, tb := range []float64{0.25e12, 0.5e12, 1e12} {
		secs := reliability.ScrubTime(tb, bus, 0.27)
		tab.AddRow(f("%.2f TB", tb/1e12), "3 GHz x 8B DDR", f("%.1f s", secs))
	}
	return tab
}

// RefreshSweep regenerates the Sec IV refresh-policy discussion: the
// runtime RBER a refresh interval implies for each technology, and the
// resulting opportunistic-correction and VLEW-fallback rates.
func RefreshSweep(tech nvram.Tech) *stats.Table {
	tab := &stats.Table{Header: []string{"refresh interval", "runtime RBER",
		"accesses w/ errors", "multi-error RS", "VLEW fallback", "read bw overhead"}}
	for _, secs := range []float64{1, 60, nvram.Hour, nvram.Day, nvram.Week} {
		rber := tech.RBER(secs)
		tab.AddRow(nvram.FormatInterval(secs), f("%.1e", rber),
			f("%.2f%%", 100*reliability.FracAccessesWithErrors(72*8, rber)),
			f("%.2e", reliability.MultiErrorRSRate(64, 8, rber)),
			f("%.2e", reliability.ProposalFallbackRate(64, 8, 2, rber)),
			f("%.3f%%", 100*reliability.ProposalReadOverhead(reliability.PaperVLEW, 64, 8, 2, rber)))
	}
	return tab
}
