// Replication tier: a trailing band pool on every rank, a copier that
// mirrors a hot band onto a distinct rank, a telemetry-weighted policy
// choosing which bands deserve a slot, and an anti-entropy sweep that
// keeps replicas honest. The lock order is the declared //chipkill:lock
// levels (fleet.band, then the engine locks inside the read/write calls,
// then fleet.pool), enforced by the lockorder analyzer.
package fleet

import (
	"errors"
	"fmt"
	"sort"
)

// allocSlot finds a free replica slot on a live rank other than the
// primary, preferring the rank right after it so replication load
// round-robins. Returns ErrNoReplica (wrapped) when every eligible rank
// is full or dead.
func (f *Fleet) allocSlot(primaryRank int) (rk int, slot int, err error) {
	f.poolMu.Lock()
	defer f.poolMu.Unlock()
	n := len(f.ranks)
	for off := 1; off < n; off++ {
		cand := f.ranks[(primaryRank+off)%n]
		if cand.killed.Load() {
			continue
		}
		for s, band := range cand.pool {
			if band == -1 {
				cand.pool[s] = -2 // reserved; ReplicateBand fills or frees it
				return cand.idx, s, nil
			}
		}
	}
	return 0, 0, fmt.Errorf("fleet: no free replica slot off rank %d: %w", primaryRank, ErrNoReplica)
}

func (f *Fleet) setSlot(rk, slot int, band int64) {
	f.poolMu.Lock()
	f.ranks[rk].pool[slot] = band
	f.poolMu.Unlock()
}

func (f *Fleet) freeSlot(rk, slot int) {
	f.poolMu.Lock()
	f.ranks[rk].pool[slot] = -1
	f.poolMu.Unlock()
}

// demoteBandLocked drops a band's replica (failed write-through, dead
// replica rank, divergence that cannot be healed). The slot returns to
// the pool and the band is plain unreplicated storage again —
// correctness never depended on the replica.
//
//chipkill:holds fleet.band
func (f *Fleet) demoteBandLocked(bs *bandState) {
	if bs.state.Load() == bandNone {
		return
	}
	rr, slot := int(bs.replicaRank.Load()), int(bs.replicaSlot.Load())
	bs.state.Store(bandNone)
	f.freeSlot(rr, slot)
}

// ReplicateBand mirrors one fleet band onto a replica slot of another
// rank. The band becomes write-through (syncing) before the copy starts,
// so every demand write during the copy lands on both copies; each block
// is then copied under the band mutex, which makes copier and writers
// serialise per block and leaves the replica coherent when the band goes
// active. No-op when the band is already replicated; ErrNoReplica when
// no other live rank has a free slot; ErrRankFailed when the primary is
// down (there is nothing authoritative to copy).
func (f *Fleet) ReplicateBand(band int64) error {
	if band < 0 || band >= int64(len(f.bands)) {
		return fmt.Errorf("fleet: band %d out of range [0,%d)", band, len(f.bands))
	}
	bs := &f.bands[band]
	if bs.state.Load() != bandNone {
		return nil
	}
	rk := int(band % int64(len(f.ranks)))
	n := f.ranks[rk]
	if n.killed.Load() {
		return fmt.Errorf("fleet: replicate band %d: primary rank %d down: %w", band, rk, ErrRankFailed)
	}
	rr, slot, err := f.allocSlot(rk)
	if err != nil {
		return err
	}
	f.setSlot(rr, slot, band)

	bs.mu.Lock()
	if bs.state.Load() != bandNone || n.killed.Load() {
		bs.mu.Unlock()
		f.freeSlot(rr, slot)
		return nil
	}
	bs.replicaRank.Store(int32(rr))
	bs.replicaSlot.Store(int32(slot))
	bs.state.Store(bandSyncing)
	bs.mu.Unlock()

	localBase := (band / int64(len(f.ranks))) * f.bandBlocks
	fleetBase := band * f.bandBlocks
	buf := make([]byte, f.blockBytes)
	rn := f.ranks[rr]
	for i := int64(0); i < f.bandBlocks; i++ {
		bs.mu.Lock()
		err := n.eng.ReadBlockInto(localBase+i, buf)
		if err == nil {
			err = rn.eng.WriteBlockInitial(f.replicaBlock(bs, fleetBase+i), buf)
		}
		if err != nil {
			// A block we cannot read correctly (or a replica rank that died
			// mid-copy) aborts the whole band: a partial replica must never
			// go active.
			f.demoteBandLocked(bs)
			bs.mu.Unlock()
			return fmt.Errorf("fleet: replicating band %d block %d: %w", band, i, err)
		}
		bs.mu.Unlock()
	}
	bs.mu.Lock()
	if bs.state.Load() == bandSyncing {
		bs.state.Store(bandActive)
		f.replications.Add(1)
	}
	bs.mu.Unlock()
	return nil
}

// replicateTick runs the HARP-style replication policy: per-rank decode
// telemetry (RS corrections, VLEW fallbacks, erasure repairs, DUEs since
// the last tick, exponentially decayed) weights demand heat, so the hot
// bands on the rank showing error pressure win replica slots first.
func (f *Fleet) replicateTick() {
	if f.cfg.ReplicatePerTick < 0 {
		return
	}
	for _, n := range f.ranks {
		if n.killed.Load() {
			continue
		}
		tel := n.eng.Telemetry()
		d := tel.Delta(n.prevTel)
		n.prevTel = tel
		var errs int64
		for _, ct := range d.Chips {
			errs += ct.RSCorrections + ct.VLEWFailures + ct.ErasureRepairs
		}
		errs += d.DUEs
		n.pressure = n.pressure*0.5 + float64(errs)
	}
	type cand struct {
		band  int64
		score float64
	}
	var cands []cand
	for b := range f.bands {
		bs := &f.bands[b]
		if bs.state.Load() != bandNone {
			continue
		}
		heat := bs.heat.Load()
		if heat < f.cfg.MinReplicaHeat {
			continue
		}
		rk := b % len(f.ranks)
		if f.ranks[rk].killed.Load() {
			continue
		}
		cands = append(cands, cand{int64(b), float64(heat) * (1 + f.ranks[rk].pressure)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].band < cands[j].band
	})
	started := 0
	for _, c := range cands {
		if started >= f.cfg.ReplicatePerTick {
			break
		}
		err := f.ReplicateBand(c.band)
		if errors.Is(err, ErrNoReplica) {
			break // pool exhausted; later candidates cannot do better
		}
		if err == nil {
			started++
		}
	}
}

// verifyTick is the anti-entropy sweep: a few active bands per tick are
// compared block-for-block against their primary and healed from it on
// divergence (a replica that rots — media drift on the replica rank, or
// a campaign corrupting it on purpose — gets repaired before a failover
// could ever serve it). Bands whose replica rank died are demoted here.
func (f *Fleet) verifyTick() {
	if f.cfg.VerifyBandsPerTick < 0 || len(f.bands) == 0 {
		return
	}
	buf := make([]byte, f.blockBytes)
	rbuf := make([]byte, f.blockBytes)
	checked := 0
	for scanned := 0; scanned < len(f.bands) && checked < f.cfg.VerifyBandsPerTick; scanned++ {
		band := f.verifyCursor % int64(len(f.bands))
		f.verifyCursor++
		bs := &f.bands[band]
		if bs.state.Load() != bandActive {
			continue
		}
		checked++
		rk := int(band % int64(len(f.ranks)))
		if f.ranks[bs.replicaRank.Load()].killed.Load() {
			bs.mu.Lock()
			f.demoteBandLocked(bs)
			bs.mu.Unlock()
			continue
		}
		if f.ranks[rk].killed.Load() {
			continue // replica is the only copy; nothing to verify against
		}
		localBase := (band / int64(len(f.ranks))) * f.bandBlocks
		fleetBase := band * f.bandBlocks
		for i := int64(0); i < f.bandBlocks; i++ {
			bs.mu.Lock()
			if bs.state.Load() != bandActive {
				bs.mu.Unlock()
				break
			}
			rn := f.ranks[bs.replicaRank.Load()]
			if rn.killed.Load() {
				f.demoteBandLocked(bs)
				bs.mu.Unlock()
				break
			}
			err := f.ranks[rk].eng.ReadBlockInto(localBase+i, buf)
			if err != nil {
				bs.mu.Unlock()
				continue // primary DUE: demand-path read-repair handles it
			}
			rblock := f.replicaBlock(bs, fleetBase+i)
			if rn.eng.ReadBlockInto(rblock, rbuf) != nil || !bytesEqual(buf, rbuf) {
				if rn.eng.WriteBlockInitial(rblock, buf) == nil {
					f.divergenceFix.Add(1)
				} else {
					f.demoteBandLocked(bs)
					bs.mu.Unlock()
					break
				}
			}
			bs.mu.Unlock()
		}
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
