// Command faultcampaign runs the deterministic fault-injection campaign
// suites against the full controller + rank stack, checking every read
// against the model-based oracle (see internal/inject).
//
//	faultcampaign -suite smoke                # seconds-scale CI gate
//	faultcampaign -suite standard             # the acceptance suite
//	faultcampaign -suite soak                 # deep campaigns
//	faultcampaign -suite escape               # documented SDC escapes
//	faultcampaign -suite standard -campaign fallback-rate -seed 7
//	faultcampaign -list                       # available suites/campaigns
//	faultcampaign -suite standard -json out.json
//
// Every campaign is reproducible from (suite, campaign, seed); each
// failure in the output carries the exact repro command. The process
// exits non-zero if any campaign fails its expectations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"chipkillpm/internal/inject"
)

func main() {
	var (
		suite    = flag.String("suite", "standard", "suite to run: "+strings.Join(inject.SuiteNames(), ", "))
		campaign = flag.String("campaign", "", "run only campaigns whose name contains this substring")
		seed     = flag.Int64("seed", 1, "base seed; campaigns mix in their names")
		jsonOut  = flag.String("json", "", "also write the full report as JSON to this file")
		list     = flag.Bool("list", false, "list suites and campaigns, then exit")
	)
	flag.Parse()

	if *list {
		for _, s := range inject.SuiteNames() {
			cs, err := inject.Suite(s, *seed)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s — %s\n", s, inject.SuiteDescription(s))
			for _, c := range cs {
				fmt.Printf("  %-22s %s\n", c.Name, c.Description)
				fmt.Printf("  %-22s %s, %d ops, %d events\n", "", geometry(c), c.Ops, len(c.Events))
			}
			fmt.Println()
		}
		return
	}

	campaigns, err := inject.Suite(*suite, *seed)
	if err != nil {
		fatal(err)
	}
	if *campaign != "" {
		var kept []inject.Campaign
		for _, c := range campaigns {
			if strings.Contains(c.Name, *campaign) {
				kept = append(kept, c)
			}
		}
		if len(kept) == 0 {
			fatal(fmt.Errorf("no campaign in suite %q matches %q", *suite, *campaign))
		}
		campaigns = kept
	}

	fmt.Printf("suite %s, seed %d, %d campaigns\n", *suite, *seed, len(campaigns))
	rep := inject.RunCampaigns(*suite, *seed, campaigns)
	for _, cr := range rep.Campaigns {
		fmt.Println(cr.Summary())
		if !cr.Pass {
			fmt.Printf("  FAIL: %s\n", cr.Reason)
			fmt.Printf("  repro: %s\n", cr.Repro)
		}
		for _, f := range cr.Failures {
			fmt.Printf("  op=%d block=%d kind=%s: %s\n", f.Op, f.Block, f.Kind, f.Detail)
			fmt.Printf("    repro: %s\n", f.Repro)
		}
		if cr.FailuresTotal > len(cr.Failures) {
			fmt.Printf("  ... %d further failures not shown\n", cr.FailuresTotal-len(cr.Failures))
		}
	}

	if *jsonOut != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("report written to %s\n", *jsonOut)
	}

	if rep.Pass {
		fmt.Printf("PASS: %d campaigns, sdc=%d due=%d\n", len(rep.Campaigns), rep.TotalSDC, rep.TotalDUE)
		return
	}
	fmt.Printf("FAIL: sdc=%d due=%d\n", rep.TotalSDC, rep.TotalDUE)
	os.Exit(1)
}

// geometry renders a campaign's rank shape with its defaults applied.
func geometry(c inject.Campaign) string {
	banks, rows, rb := c.Banks, c.RowsPerBank, c.RowBytes
	if banks == 0 {
		banks = 2
	}
	if rows == 0 {
		rows = 8
	}
	if rb == 0 {
		rb = 1024
	}
	return fmt.Sprintf("%dx%dx%dB", banks, rows, rb)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "faultcampaign:", err)
	os.Exit(1)
}
