package reliability

import (
	"fmt"
	"math"
)

// Reliability targets used throughout the paper (Sec III): fewer than one
// block with an uncorrectable error per 1e15 blocks and fewer than one
// block with silent data corruption per 1e17 blocks, at any instant.
const (
	TargetUE  = 1e-15
	TargetSDC = 1e-17
)

// bchM returns the paper's per-correction cost in bits for a BCH code
// protecting k data bits: floor(log2 k) + 1.
func bchM(k int) int {
	m := 0
	for v := k; v > 0; v >>= 1 {
		m++
	}
	return m
}

// BCHStorageCost returns the storage overhead (code bits / data bits) of a
// t-bit-correcting BCH code over k data bits using the paper's
// t*(floor(log2 k)+1) formula.
func BCHStorageCost(k, t int) float64 {
	return float64(t*bchM(k)) / float64(k)
}

// MinBCHT returns the smallest BCH correction strength t such that a
// codeword with k data bits (plus the t*m parity bits, which also suffer
// errors) exceeds t bit errors with probability at most targetUE.
func MinBCHT(k int, rber, targetUE float64, maxT int) (int, error) {
	m := bchM(k)
	for t := 0; t <= maxT; t++ {
		n := k + t*m
		if BinomTail(n, t+1, rber) <= targetUE {
			return t, nil
		}
	}
	return 0, fmt.Errorf("reliability: BCH with k=%d cannot reach %.2g below t=%d at RBER %.2g",
		k, targetUE, maxT, rber)
}

// SchemeCost describes the outcome of sizing one protection scheme.
type SchemeCost struct {
	Scheme    string  // human-readable scheme name
	T         int     // correction strength chosen (bits or bytes per word)
	WordBytes int     // ECC word data size the strength applies to
	Cost      float64 // total storage overhead (redundant bits / data bits)
	Feasible  bool    // false when no strength met the target
	Detail    string  // how the cost decomposes
}

// BitOnlyBCHCost sizes the Sec III-A baseline: a per-block multi-bit BCH
// (no chip failure protection). blockBytes is 64 in the paper; at RBER
// 1e-3 this yields 14-bit correction and 28% storage cost.
func BitOnlyBCHCost(blockBytes int, rber float64) SchemeCost {
	k := blockBytes * 8
	t, err := MinBCHT(k, rber, TargetUE, 200)
	if err != nil {
		return SchemeCost{Scheme: "per-block BCH (bit errors only)", WordBytes: blockBytes}
	}
	cost := BCHStorageCost(k, t)
	return SchemeCost{
		Scheme:    "per-block BCH (bit errors only)",
		T:         t,
		WordBytes: blockBytes,
		Cost:      cost,
		Feasible:  true,
		Detail:    fmt.Sprintf("%d-bit-EC BCH per %dB block: %.1f%%", t, blockBytes, 100*cost),
	}
}

// ChipkillViaStrongerBCHCost sizes the naive Sec III-A chipkill extension:
// strengthen the per-block BCH until it can absorb a full chip failure (64
// bits per block from one of eight data chips) on top of random errors.
// At RBER 1e-3 this needs 64+14 = 78-bit correction: a prohibitive 152%.
func ChipkillViaStrongerBCHCost(blockBytes, bitsPerChip int, rber float64) SchemeCost {
	k := blockBytes * 8
	tRandom, err := MinBCHT(k, rber, TargetUE, 200)
	if err != nil {
		return SchemeCost{Scheme: "per-block BCH strengthened for chipkill", WordBytes: blockBytes}
	}
	t := tRandom + bitsPerChip
	cost := BCHStorageCost(k, t)
	return SchemeCost{
		Scheme:    "per-block BCH strengthened for chipkill",
		T:         t,
		WordBytes: blockBytes,
		Cost:      cost,
		Feasible:  true,
		Detail:    fmt.Sprintf("(%d+%d)-bit-EC BCH per %dB block: %.0f%%", bitsPerChip, tRandom, blockBytes, 100*cost),
	}
}

// XEDStyleCost sizes an XED-like scheme extended to NVRAM (Fig 2): each
// group of wordBytes of data *within a chip* carries its own BCH strong
// enough for the target, and a ninth chip holds parity for chip failures.
// XED uses 8B per-chip words; the Samsung study uses 16B.
func XEDStyleCost(wordBytes int, rber float64) SchemeCost {
	name := fmt.Sprintf("per-chip %dB BCH + parity chip", wordBytes)
	k := wordBytes * 8
	// The per-block UE budget is shared by the per-chip words making up a
	// 64B block (8 chips x 8B): scale the per-word target accordingly.
	wordsPerBlock := 64 / wordBytes
	if wordsPerBlock < 1 {
		wordsPerBlock = 1
	}
	t, err := MinBCHT(k, rber, TargetUE/float64(wordsPerBlock), 200)
	if err != nil {
		return SchemeCost{Scheme: name, WordBytes: wordBytes}
	}
	bchCost := BCHStorageCost(k, t)
	cost := bchCost + (1.0/8.0)*(1+bchCost)
	return SchemeCost{
		Scheme:    name,
		T:         t,
		WordBytes: wordBytes,
		Cost:      cost,
		Feasible:  true,
		Detail: fmt.Sprintf("%d-bit-EC BCH per %dB (%.1f%%) + parity chip: %.1f%%",
			t, wordBytes, 100*bchCost, 100*cost),
	}
}

// DUOStyleCost sizes a DUO-like scheme extended to NVRAM (Fig 2): one
// rank-level RS word per 64B block, using one check byte per chip-failure
// erasure (8 for an 8-chip rank) plus two check bytes per random byte
// error to be corrected.
func DUOStyleCost(blockBytes int, rber float64) SchemeCost {
	const name = "DUO-style rank-level RS"
	pByte := ByteErrorRate(rber, 8)
	erasureBytes := 8 // one failed chip contributes blockBytes/8 bytes
	for t := 0; t <= 64; t++ {
		n := blockBytes + erasureBytes + 2*t
		if BinomTail(n, t+1, pByte) <= TargetUE {
			cost := float64(erasureBytes+2*t) / float64(blockBytes)
			return SchemeCost{
				Scheme:    name,
				T:         t,
				WordBytes: blockBytes,
				Cost:      cost,
				Feasible:  true,
				Detail: fmt.Sprintf("RS: 8 erasure + 2x%d error check bytes per %dB: %.1f%%",
					t, blockBytes, 100*cost),
			}
		}
	}
	return SchemeCost{Scheme: name, WordBytes: blockBytes}
}

// VLEWSchemeCost sizes the storage-inspired scheme of Figs 3/4 and the
// proposal (Sec V-A): per-chip VLEWs of dataBytes of data with a BCH
// strong enough for the target, plus a parity chip whose contents are also
// VLEW-protected. Total cost = c + 1/8 * (1 + c) with c the BCH overhead.
// At 256B and RBER 1e-3 this is t=22, 33B of code bits, 27% total.
func VLEWSchemeCost(dataBytes int, rber float64) SchemeCost {
	name := fmt.Sprintf("VLEW(%dB) + parity chip", dataBytes)
	k := dataBytes * 8
	t, err := MinBCHT(k, rber, TargetUE, 400)
	if err != nil {
		return SchemeCost{Scheme: name, WordBytes: dataBytes}
	}
	codeBits := t * bchM(k)
	// Round code bits up to whole bytes, as the row layout stores them.
	codeBytes := (codeBits + 7) / 8
	c := float64(codeBytes) / float64(dataBytes)
	cost := c + (1.0/8.0)*(1+c)
	return SchemeCost{
		Scheme:    name,
		T:         t,
		WordBytes: dataBytes,
		Cost:      cost,
		Feasible:  true,
		Detail: fmt.Sprintf("%d-bit-EC BCH, %dB code per %dB data (%.1f%%) + parity chip: %.1f%%",
			t, codeBytes, dataBytes, 100*c, 100*cost),
	}
}

// ProposalStorageCost returns the paper's headline total storage cost:
// 33/256 + 1/8*(1+33/256) = 27.04% (Sec V-A).
func ProposalStorageCost() float64 {
	c := 33.0 / 256.0
	return c + (1.0/8.0)*(1+c)
}

// Fig2Schemes sizes every extended-DRAM-chipkill scheme of Figure 2 at the
// given RBER, in the paper's presentation order.
func Fig2Schemes(rber float64) []SchemeCost {
	return []SchemeCost{
		XEDStyleCost(8, rber),
		XEDStyleCost(16, rber),
		DUOStyleCost(64, rber),
		ChipkillViaStrongerBCHCost(64, 64, rber),
	}
}

// Fig4Sweep sizes the VLEW scheme across codeword data lengths at the
// given RBER (Figure 4: storage cost vs codeword length).
func Fig4Sweep(rber float64, dataBytes []int) []SchemeCost {
	out := make([]SchemeCost, 0, len(dataBytes))
	for _, d := range dataBytes {
		out = append(out, VLEWSchemeCost(d, rber))
	}
	return out
}

// FlashECCRequiredT returns the correction strength Flash-style 512B-data
// VLEWs need at the given RBER (Figure 3's commercial ECC table is the
// same calculation at datasheet BERs).
func FlashECCRequiredT(rber float64) (int, error) {
	return MinBCHT(512*8, rber, TargetUE, 400)
}

// ScrubTime returns the boot-time scrub duration for a memory of
// totalBytes per channel given a bus of busBytesPerSec, accounting for the
// VLEW overhead factor (Sec V-B: < 1.5 minutes per TB at 3 GHz).
func ScrubTime(totalBytes float64, busBytesPerSec float64, overhead float64) float64 {
	if busBytesPerSec <= 0 {
		return math.Inf(1)
	}
	return totalBytes * (1 + overhead) / busBytesPerSec
}
