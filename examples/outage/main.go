// Outage: data survival across a long power outage, with and without a
// chip failure — the boot-time half of the decoupled scheme (Sec V-B).
//
// The example fills a persistent-memory rank with data, simulates a one-
// week outage on 3-bit PCM (RBER grows to 1e-3 with no refresh), then
// boots: the controller scrubs every VLEW, correcting the accumulated bit
// errors, and — in the second act — detects a chip that died during the
// outage and rebuilds it through Reed-Solomon erasure correction.
//
// Run with: go run ./examples/outage
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"chipkillpm/internal/core"
	"chipkillpm/internal/nvram"
	"chipkillpm/internal/rank"
)

func main() {
	log.SetFlags(0)

	fmt.Println("=== Act 1: a week without power ===")
	surviveOutage(false)
	fmt.Println()
	fmt.Println("=== Act 2: the outage kills chip 5 ===")
	surviveOutage(true)
}

// surviveOutage is a serial demo act: fault injection and the boot
// scrub run with no concurrent readers.
//
//chipkill:rankwide
func surviveOutage(chipDies bool) {
	r, err := rank.New(rank.PaperConfig(2, 16, 1024, 7))
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := core.NewController(r, core.DefaultConfig(), nil)
	if err != nil {
		log.Fatal(err)
	}

	// Fill the memory with data we will want back.
	rng := rand.New(rand.NewSource(99))
	ref := make([][]byte, r.Blocks())
	for b := int64(0); b < r.Blocks(); b++ {
		ref[b] = make([]byte, 64)
		rng.Read(ref[b])
		if err := ctrl.WriteBlockInitial(b, ref[b]); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("filled %d blocks (%d KB) of persistent memory\n",
		r.Blocks(), r.Blocks()*64/1024)

	// The outage: one week unrefreshed 3-bit PCM.
	week := nvram.Week
	rber := nvram.PCM3.RBER(week)
	flips := r.InjectRetentionErrors(rber)
	fmt.Printf("outage: %s without refresh on %s -> RBER %.1e, %d bits flipped\n",
		nvram.FormatInterval(week), nvram.PCM3.Name, rber, flips)
	if chipDies {
		r.FailChip(5)
		fmt.Println("outage: chip 5 suffered a chip-level failure")
	}

	// Boot: scrub everything.
	rep := ctrl.BootScrub()
	fmt.Printf("boot scrub: %d VLEWs decoded, %d bit errors corrected\n",
		rep.VLEWsScrubbed, rep.BitsCorrected)
	if len(rep.ChipsFailed) > 0 {
		fmt.Printf("boot scrub: chips %v uncorrectable -> rebuilt %v (%d blocks) via RS erasure\n",
			rep.ChipsFailed, rep.ChipsRebuilt, rep.BlocksRebuilt)
	}
	if rep.Unrecoverable {
		log.Fatal("boot scrub: UNRECOVERABLE — this should not happen with <= 1 failed chip")
	}

	// Verify every block bit-exactly.
	bad := 0
	for b := int64(0); b < r.Blocks(); b++ {
		got, err := ctrl.ReadBlock(b)
		if err != nil || !bytes.Equal(got, ref[b]) {
			bad++
		}
	}
	if bad > 0 {
		log.Fatalf("%d blocks lost", bad)
	}
	fmt.Printf("verified: all %d blocks recovered bit-exactly\n", r.Blocks())

	// For contrast: the bit-error-only baseline and the same outage.
	baseline, err := core.NewBitOnlyMemory(r.Blocks(), 7)
	if err != nil {
		log.Fatal(err)
	}
	for b := int64(0); b < baseline.Blocks(); b++ {
		baseline.Write(b, ref[b])
	}
	baseline.InjectRetentionErrors(rber)
	if chipDies {
		baseline.FailChipSlice(5)
	}
	baseBad := 0
	for b := int64(0); b < baseline.Blocks(); b++ {
		got, err := baseline.Read(b)
		if err != nil || !bytes.Equal(got, ref[b]) {
			baseBad++
		}
	}
	if chipDies {
		fmt.Printf("baseline (14-EC BCH, no chipkill): %d of %d blocks LOST — permanent data corruption\n",
			baseBad, baseline.Blocks())
	} else {
		fmt.Printf("baseline (14-EC BCH, no chipkill): %d blocks lost (bit errors alone are survivable)\n",
			baseBad)
	}
}
