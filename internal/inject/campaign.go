package inject

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"chipkillpm/internal/core"
	"chipkillpm/internal/engine"
	"chipkillpm/internal/fleet"
	"chipkillpm/internal/rank"
)

// Campaign is a declarative, fully seeded fault-injection scenario: a
// rank geometry, a randomized read/write workload, and a script of fault
// events fired at workload operation indices. Two runs of the same
// campaign with the same seed produce identical reports.
type Campaign struct {
	Name string `json:"name"`
	Seed int64  `json:"seed"`

	// Description is the one-line human summary faultcampaign -list
	// prints under the suite heading.
	Description string `json:"description,omitempty"`

	// Rank geometry (paper-shaped chips). Zero values default to
	// 2 banks x 8 rows x 1024 B rows = 2048 blocks.
	Banks       int `json:"banks,omitempty"`
	RowsPerBank int `json:"rows_per_bank,omitempty"`
	RowBytes    int `json:"row_bytes,omitempty"`

	// WorkingSet is the number of blocks committed and exercised,
	// strided evenly across the rank; 0 means every block.
	WorkingSet int `json:"working_set,omitempty"`

	// Ops random operations run after initialisation; each is a read
	// (oracle-checked) or a write with probability WriteFrac.
	Ops       int     `json:"ops"`
	WriteFrac float64 `json:"write_frac,omitempty"`

	// OMVHitRate is the probability the LLC supplies a write's old
	// memory value (otherwise the controller pays the memory fetch).
	OMVHitRate float64 `json:"omv_hit_rate,omitempty"`

	// Threshold is the runtime RS acceptance threshold; <=0 means the
	// paper's default of 2.
	Threshold int `json:"threshold,omitempty"`

	// ScrubWorkers sizes the boot-scrub pool (0 = GOMAXPROCS).
	ScrubWorkers int `json:"scrub_workers,omitempty"`

	// EngineShards > 0 drives every demand operation through a sharded
	// engine.Engine with that many shards instead of a bare controller.
	// The workload itself stays serial (determinism), so a campaign run
	// in engine mode must report identical totals to the serial run —
	// which is exactly what the engine-mode tests assert.
	EngineShards int `json:"engine_shards,omitempty"`

	// EngineNoSeqlock forces the engine's lock-free clean-read path off
	// (engine.Config.DisableSeqlock), so equivalence campaigns can pin
	// that the seqlock path and the always-locked path report the exact
	// same counters. Meaningless without EngineShards.
	EngineNoSeqlock bool `json:"engine_no_seqlock,omitempty"`

	// EngineBatchWrites > 0 buffers up to that many demand writes and
	// issues each batch through Engine.WriteBlocks (the row-coalescing
	// batched write path) instead of per-op WriteBlock calls. The harness
	// flushes the buffer whenever per-op ordering becomes observable —
	// before any read or scripted event, before a one-shot armed write
	// fault, and before a duplicate of a buffered block — and pre-draws
	// each buffered write's OMV decision in buffered order so the OMV rng
	// stream matches the serial run exactly. Batched campaigns must
	// therefore produce reports identical to serial and per-op engine
	// runs, which is what the three-way equivalence test asserts. Implies
	// EngineShards (defaulting it to Banks) and forces BatchFanOut=1: the
	// campaign OMV source is not safe for concurrent shard goroutines.
	// Buffered mode assumes demand writes never target disabled blocks
	// (the OMV decision is drawn before the engine sees the write).
	EngineBatchWrites int `json:"engine_batch_writes,omitempty"`

	// ProbeStatsDuringScrub spawns a goroutine hammering Controller.
	// Stats while each BootScrub runs, exercising the documented stats
	// concurrency contract (meaningful under -race).
	ProbeStatsDuringScrub bool `json:"probe_stats,omitempty"`

	// Guard switches the campaign to a supervisor scenario (see
	// GuardSpec): instead of the scripted event loop, the harness runs the
	// internal/guard health supervisor against live traffic. Guard
	// campaigns always drive the sharded engine.
	Guard *GuardSpec `json:"guard,omitempty"`

	// Fleet switches the campaign to a multi-rank fleet scenario (see
	// FleetSpec): the demand backend becomes a fleet.Fleet and the
	// scenario drives rank-scale faults. Mutually exclusive with Guard,
	// Events, EngineShards, and EngineBatchWrites.
	Fleet *FleetSpec `json:"fleet,omitempty"`

	Events []Event `json:"events,omitempty"`
	Expect Expect  `json:"expect"`
}

// Harness couples one demand backend (a bare controller, or a sharded
// engine when the campaign sets EngineShards) + rank stack with the
// shadow-map oracle and drives a campaign through it.
type Harness struct {
	c      Campaign
	suite  string
	rng    *rand.Rand
	rank   *rank.Rank       // nil in fleet mode
	ctrl   *core.Controller // nil when eng or fleet is set
	eng    *engine.Engine   // nil when ctrl or fleet is set
	fleet  *fleet.Fleet     // set only for fleet campaigns
	oracle *Oracle
	omv    *omvSource
	rep    *CampaignReport

	blocks     []int64 // working set, ascending
	blockBytes int
	degraded   bool
	armDelta   bool
	armOMV     bool
	opIndex    int64

	// Write buffer for EngineBatchWrites mode (see flushWrites).
	wblocks []int64
	wdatas  [][]byte
	werrs   []error
}

// campaignSeed mixes the campaign name into the base seed so sibling
// campaigns of a suite draw independent streams.
func campaignSeed(name string, seed int64) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return seed ^ int64(h.Sum64()&0x7fffffffffffffff)
}

// NewHarness builds the stack for one campaign.
func NewHarness(suite string, c Campaign) (*Harness, error) {
	if c.Banks == 0 {
		c.Banks = 2
	}
	if c.RowsPerBank == 0 {
		c.RowsPerBank = 8
	}
	if c.RowBytes == 0 {
		c.RowBytes = 1024
	}
	if c.Threshold <= 0 {
		c.Threshold = 2
	}
	if c.Guard != nil && c.EngineShards <= 0 {
		c.EngineShards = c.Banks // guard scenarios need the sharded engine
	}
	if c.EngineBatchWrites > 0 && c.EngineShards <= 0 {
		c.EngineShards = c.Banks // batched writes go through the engine
	}
	seed := campaignSeed(c.Name, c.Seed)
	h := &Harness{
		c:      c,
		suite:  suite,
		rng:    rand.New(rand.NewSource(seed)),
		oracle: NewOracle(),
		rep: &CampaignReport{
			Name:     c.Name,
			Suite:    suite,
			Seed:     c.Seed,
			Geometry: fmt.Sprintf("%dx%dx%dB", c.Banks, c.RowsPerBank, c.RowBytes),
			Ops:      int64(c.Ops),
			Expect:   c.Expect,
			Repro:    fmt.Sprintf("go run ./cmd/faultcampaign -suite %s -campaign %s -seed %d", suite, c.Name, c.Seed),
		},
	}
	if c.Fleet != nil {
		if c.Guard != nil || len(c.Events) > 0 || c.EngineShards > 0 || c.EngineBatchWrites > 0 {
			return nil, fmt.Errorf("inject: fleet campaign %q cannot combine guard, events, or engine knobs", c.Name)
		}
		spec := c.Fleet.withDefaults()
		fl, err := fleet.New(h.fleetCfg(spec))
		if err != nil {
			return nil, fmt.Errorf("inject: building fleet: %w", err)
		}
		h.fleet = fl
		h.blockBytes = fl.BlockBytes()
		h.rep.Geometry = fmt.Sprintf("%dr x %dx%dx%dB", spec.Ranks, c.Banks, c.RowsPerBank, c.RowBytes)
		h.rep.Blocks = fl.Blocks()
		return h, nil
	}
	r, err := rank.New(rank.PaperConfig(c.Banks, c.RowsPerBank, c.RowBytes, seed+1))
	if err != nil {
		return nil, fmt.Errorf("inject: building rank: %w", err)
	}
	h.rank = r
	h.rep.Blocks = r.Blocks()
	h.blockBytes = r.Config().BlockBytes()
	h.omv = &omvSource{oracle: h.oracle, rng: rand.New(rand.NewSource(seed + 2)), hitRate: c.OMVHitRate}
	if c.EngineShards > 0 {
		h.rep.EngineShards = c.EngineShards
		h.rep.EngineBatchWrites = c.EngineBatchWrites
		h.eng, err = engine.New(r, h.engCfg())
		if err != nil {
			return nil, fmt.Errorf("inject: building engine: %w", err)
		}
	} else {
		h.ctrl, err = core.NewController(r, h.ctrlCfg(), h.omv)
		if err != nil {
			return nil, fmt.Errorf("inject: building controller: %w", err)
		}
	}
	return h, nil
}

func (h *Harness) ctrlCfg() core.Config {
	return core.Config{Threshold: h.c.Threshold, ScrubWorkers: h.c.ScrubWorkers}
}

func (h *Harness) engCfg() engine.Config {
	cfg := engine.Config{Shards: h.c.EngineShards, Core: h.ctrlCfg(), OMV: h.omv, DisableSeqlock: h.c.EngineNoSeqlock}
	if h.c.EngineBatchWrites > 0 {
		// The campaign omvSource is single-threaded; keep batch flushes on
		// the campaign goroutine.
		cfg.BatchFanOut = 1
	}
	return cfg
}

// Controller exposes the live controller (it changes across crash events);
// nil when the campaign runs in engine mode.
func (h *Harness) Controller() *core.Controller { return h.ctrl }

// Engine exposes the live engine; nil outside engine mode.
func (h *Harness) Engine() *engine.Engine { return h.eng }

// Fleet exposes the live fleet; nil outside fleet mode.
func (h *Harness) Fleet() *fleet.Fleet { return h.fleet }

// Demand-backend indirection: every workload touch of memory goes through
// these, so serial-controller and sharded-engine campaigns share one code
// path and must produce identical reports.

func (h *Harness) readBlock(b int64) ([]byte, error) {
	if h.fleet != nil {
		return h.fleet.ReadBlock(b)
	}
	if h.eng != nil {
		return h.eng.ReadBlock(b)
	}
	return h.ctrl.ReadBlock(b)
}

func (h *Harness) writeBlock(b int64, data []byte) error {
	if h.fleet != nil {
		return h.fleet.WriteBlock(b, data)
	}
	if h.eng != nil {
		return h.eng.WriteBlock(b, data)
	}
	return h.ctrl.WriteBlock(b, data)
}

func (h *Harness) writeInitial(b int64, data []byte) error {
	if h.fleet != nil {
		return h.fleet.WriteBlockInitial(b, data)
	}
	if h.eng != nil {
		return h.eng.WriteBlockInitial(b, data)
	}
	return h.ctrl.WriteBlockInitial(b, data)
}

func (h *Harness) stats() core.Stats {
	if h.fleet != nil {
		return h.fleet.Stats().Demand
	}
	if h.eng != nil {
		return h.eng.Stats()
	}
	return h.ctrl.Stats()
}

// runBootScrub reboots through the scrub; the harness drives the rank
// serially, so the rank-wide scan cannot race demand traffic.
//
//chipkill:rankwide
func (h *Harness) runBootScrub() core.ScrubReport {
	if h.eng != nil {
		return h.eng.BootScrub()
	}
	return h.ctrl.BootScrub()
}

// enterDegraded performs the stop-the-world transition from the serial
// campaign loop.
//
//chipkill:rankwide
func (h *Harness) enterDegraded(chip int) error {
	if h.eng != nil {
		return h.eng.EnterDegradedMode(chip)
	}
	return h.ctrl.EnterDegradedMode(chip)
}

// Rank exposes the rank under test.
func (h *Harness) Rank() *rank.Rank { return h.rank }

// Run executes the campaign: initialise the working set, interleave the
// randomized workload with scripted events, then verify every committed
// block byte-for-byte against the oracle.
func (h *Harness) Run() *CampaignReport {
	start := time.Now()
	h.initWorkingSet()
	switch {
	case h.c.Fleet != nil:
		h.runFleet()
		h.fleetSweep() // every committed block: byte-exact or typed-contained
		h.captureFleetStats()
	case h.c.Guard != nil:
		h.runGuard()
		h.sweep()
	default:
		h.runScripted()
		h.sweep() // final byte-for-byte verification of every committed block
	}
	h.rep.ElapsedMS = time.Since(start).Milliseconds()
	h.rep.finish()
	return h.rep
}

// runScripted interleaves the randomized workload with scripted events.
func (h *Harness) runScripted() {
	events := append([]Event(nil), h.c.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].AtOp < events[j].AtOp })
	next := 0
	for op := 0; op <= h.c.Ops; op++ {
		h.opIndex = int64(op)
		for next < len(events) && events[next].AtOp <= op {
			h.apply(events[next])
			next++
		}
		if op == h.c.Ops {
			break
		}
		h.randomOp()
	}
	for ; next < len(events); next++ { // events scripted past the op budget
		h.apply(events[next])
	}
}

// RunCampaign builds and runs one campaign under a suite label.
func RunCampaign(suite string, c Campaign) *CampaignReport {
	h, err := NewHarness(suite, c)
	if err != nil {
		return &CampaignReport{Name: c.Name, Suite: suite, Seed: c.Seed, Pass: false, Reason: err.Error()}
	}
	return h.Run()
}

// totalBlocks is the demand backend's block capacity.
func (h *Harness) totalBlocks() int64 {
	if h.fleet != nil {
		return h.fleet.Blocks()
	}
	return h.rank.Blocks()
}

// initWorkingSet commits WorkingSet blocks, strided across the backend.
func (h *Harness) initWorkingSet() {
	total := h.totalBlocks()
	ws := int64(h.c.WorkingSet)
	if ws <= 0 || ws > total {
		ws = total
	}
	stride := total / ws
	if stride < 1 {
		stride = 1
	}
	for i := int64(0); i < ws; i++ {
		b := i * stride
		data := make([]byte, h.blockBytes)
		h.rng.Read(data)
		if err := h.writeInitial(b, data); err != nil {
			h.fail("write", b, fmt.Sprintf("init: %v", err))
			continue
		}
		h.oracle.Commit(b, data)
		h.blocks = append(h.blocks, b)
	}
}

// randomOp performs one workload operation on a random committed block.
func (h *Harness) randomOp() {
	b := h.blocks[h.rng.Intn(len(h.blocks))]
	if h.rng.Float64() < h.c.WriteFrac {
		h.writeOp(b)
		return
	}
	h.readAndCheck(b)
}

// writeOp writes fresh random data, applying any armed one-shot
// write-path fault, and commits the *intended* data to the oracle.
// In EngineBatchWrites mode unarmed writes are buffered for a batched
// flush; armed writes flush the buffer and go through the per-op path so
// the one-shot fault lands on exactly the intended write.
func (h *Harness) writeOp(b int64) {
	data := make([]byte, h.blockBytes)
	h.rng.Read(data)
	if h.c.EngineBatchWrites > 0 && !h.armOMV && !h.armDelta {
		h.bufferWrite(b, data)
		return
	}
	h.flushWrites()
	if h.armOMV {
		h.armOMV = false
		h.omv.corruptNext = true
		h.rep.OMVCorrupts++
	}
	armDelta := h.armDelta
	h.armDelta = false
	if err := h.writeBlock(b, data); err != nil {
		h.fail("write", b, err.Error())
		return
	}
	h.rep.Writes++
	if armDelta {
		h.corruptStoredDelta(b)
		h.rep.DeltaCorrupts++
	}
	h.oracle.Commit(b, data)
}

// bufferWrite queues one write for the next batched flush. A duplicate of
// an already-buffered block flushes first: the later write's OMV decision
// must be drawn against the earlier write's committed data, exactly as in
// the serial run. The OMV decision is drawn here, at buffer time, so the
// omvSource rng stream advances in op order even though the engine
// executes the flushed batch in shard-group order.
func (h *Harness) bufferWrite(b int64, data []byte) {
	for _, q := range h.wblocks {
		if q == b {
			h.flushWrites()
			break
		}
	}
	h.omv.plan(b)
	h.wblocks = append(h.wblocks, b)
	h.wdatas = append(h.wdatas, data)
	if len(h.wblocks) >= h.c.EngineBatchWrites {
		h.flushWrites()
	}
}

// flushWrites issues the buffered writes as one Engine.WriteBlocks batch,
// then commits each successful write's intended data to the oracle in
// buffered order. Counters and oracle state after a flush are identical
// to running the same writes through the per-op path: blocks in the
// buffer are unique, total OMV hit/miss counts are fixed by the
// pre-drawn decisions, and writes to distinct blocks commute physically
// (XOR deltas touch disjoint cells; EUR coalescing is linear).
func (h *Harness) flushWrites() {
	if len(h.wblocks) == 0 {
		return
	}
	h.werrs = h.werrs[:0]
	for range h.wblocks {
		h.werrs = append(h.werrs, nil)
	}
	h.eng.WriteBlocks(h.wblocks, h.wdatas, h.werrs)
	for i, b := range h.wblocks {
		h.omv.unplan(b) // drop any decision an errored write never consumed
		if err := h.werrs[i]; err != nil {
			h.fail("write", b, err.Error())
			continue
		}
		h.rep.Writes++
		h.oracle.Commit(b, h.wdatas[i])
	}
	h.wblocks = h.wblocks[:0]
	h.wdatas = h.wdatas[:0]
}

// corruptStoredDelta models a one-bit bus fault on the XOR delta to one
// data chip: the chip folds the corrupted delta into its stored data and
// its VLEW code bits (so the chip is internally consistent), while the
// parity chip's RS check reflects the true delta. The per-block RS must
// flag the mismatch on the next read.
func (h *Harness) corruptStoredDelta(b int64) {
	loc := h.rank.Locate(b)
	n := h.rank.Config().ChipAccessBytes
	ci := h.rng.Intn(h.rank.Config().DataChips)
	off := h.rng.Intn(n)
	bit := uint(h.rng.Intn(8))
	h.rank.Chip(ci).WriteXOR(loc.Bank, loc.Row, loc.Col+off, []byte{1 << bit})
}

// readAndCheck reads one block and classifies the outcome against the
// oracle, distinguishing silent corruption from honest DUEs.
func (h *Harness) readAndCheck(b int64) Outcome {
	h.flushWrites() // buffered writes must land before the stats snapshot
	want, ok := h.oracle.Expected(b)
	if !ok {
		return OutcomeClean
	}
	before := h.stats()
	got, err := h.readBlock(b)
	after := h.stats()
	h.rep.Reads++
	if after.ReadsVLEWFallback > before.ReadsVLEWFallback {
		h.rep.Fallback++
	}
	if err != nil {
		h.rep.DUE++
		h.fail("due", b, err.Error())
		return OutcomeDUE
	}
	if !bytes.Equal(got, want) {
		h.rep.SDC++
		h.fail("sdc", b, "read returned wrong data without error")
		return OutcomeSDC
	}
	if after.ReadsClean > before.ReadsClean {
		h.rep.Clean++
		return OutcomeClean
	}
	if after.ReadsRSCorrected > before.ReadsRSCorrected {
		h.rep.CorrectedRS++
	}
	return OutcomeCorrected
}

// sweep reads and classifies every committed block in ascending order.
func (h *Harness) sweep() {
	h.flushWrites()
	for _, b := range h.oracle.Blocks() {
		h.readAndCheck(b)
	}
}

// apply fires one scripted event. Events run between workload steps on
// the single campaign goroutine, so chip-level injections see a
// quiescent rank.
//
//chipkill:rankwide
func (h *Harness) apply(ev Event) {
	h.flushWrites() // events must see exactly the serial run's memory state
	switch ev.Kind {
	case EvDrift:
		h.rep.BitsInjected += int64(h.rank.InjectRetentionErrors(ev.RBER))
	case EvFlip:
		h.applyFlips(ev)
	case EvChipKill:
		h.rank.FailChip(h.resolveChip(ev.Chip))
		h.rep.ChipKills++
	case EvCrashReboot:
		h.crashReboot(ev)
	case EvBootScrub:
		h.bootScrub()
	case EvEnterDegraded:
		if err := h.enterDegraded(ev.Chip); err != nil {
			h.fail("event", -1, fmt.Sprintf("enter-degraded(%d): %v", ev.Chip, err))
			return
		}
		h.degraded = true
	case EvDeltaCorrupt:
		h.armDelta = true
	case EvOMVCorrupt:
		h.armOMV = true
	case EvSweep:
		h.sweep()
	default:
		h.fail("event", -1, fmt.Sprintf("unknown event kind %q", ev.Kind))
	}
}

// resolveChip maps the Event.Chip sentinels to a chip index.
func (h *Harness) resolveChip(chip int) int {
	switch chip {
	case ChipParity:
		return h.rank.ParityChipIndex()
	case ChipRandom:
		return h.rng.Intn(h.rank.Config().DataChips)
	default:
		return chip
	}
}

// applyFlips lands Event.Bits targeted single-bit faults inside committed
// blocks, in the requested region. Serial, like apply.
//
//chipkill:rankwide
func (h *Harness) applyFlips(ev Event) {
	rcfg := h.rank.Config()
	n := rcfg.ChipAccessBytes
	for i := 0; i < ev.Bits; i++ {
		b := h.blocks[h.rng.Intn(len(h.blocks))]
		loc := h.rank.Locate(b)
		bit := uint(h.rng.Intn(8))
		switch ev.Region {
		case RegionParity:
			h.rank.Chip(h.rank.ParityChipIndex()).
				FlipDataBit(loc.Bank, loc.Row, loc.Col+h.rng.Intn(n), bit)
		case RegionCode:
			ci := ev.Chip
			if ci < 0 {
				ci = h.rng.Intn(rcfg.DataChips)
			}
			v := loc.VLEWIndex(rcfg.Geometry.VLEWDataBytes)
			h.rank.Chip(ci).FlipCodeBit(loc.Bank, loc.Row, v,
				h.rng.Intn(rcfg.Geometry.VLEWCodeBytes), bit)
		default: // RegionData
			ci := ev.Chip
			if ci < 0 {
				ci = h.rng.Intn(rcfg.DataChips)
			}
			h.rank.Chip(ci).FlipDataBit(loc.Bank, loc.Row, loc.Col+h.rng.Intn(n), bit)
		}
		h.rep.FlipsInjected++
	}
}

// crashReboot drops all volatile state (EURs drain in the chips'
// power-fail window, per the paper's EUR design; the controller and its
// counters are rebuilt cold), lets the outage accumulate drift, reboots
// through BootScrub, and byte-verifies every committed block. The old
// engine (if any) is discarded before the chips are touched.
//
//chipkill:rankwide
func (h *Harness) crashReboot(ev Event) {
	h.rank.CloseAllRows()
	if h.eng != nil {
		eng, err := engine.New(h.rank, h.engCfg())
		if err != nil {
			h.fail("event", -1, fmt.Sprintf("reboot: %v", err))
			return
		}
		h.eng = eng
	} else {
		ctrl, err := core.NewController(h.rank, h.ctrlCfg(), h.omv)
		if err != nil {
			h.fail("event", -1, fmt.Sprintf("reboot: %v", err))
			return
		}
		h.ctrl = ctrl
	}
	h.rep.Crashes++
	if ev.RBER > 0 {
		h.rep.BitsInjected += int64(h.rank.InjectRetentionErrors(ev.RBER))
	}
	h.bootScrub()
	h.sweep()
}

// bootScrub runs BootScrub, optionally hammering the stats contract from
// a concurrent monitor goroutine.
func (h *Harness) bootScrub() {
	var stop chan struct{}
	var wg sync.WaitGroup
	if h.c.ProbeStatsDuringScrub {
		stop = make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = h.stats()
				}
			}
		}()
	}
	rep := h.runBootScrub()
	if stop != nil {
		close(stop)
		wg.Wait()
	}
	h.rep.Scrubs++
	h.rep.ScrubBitsFixed += rep.BitsCorrected
	if rep.Unrecoverable {
		h.fail("scrub", -1, rep.String())
	}
}

// fail records one failure (capped; the total stays exact).
func (h *Harness) fail(kind string, block int64, detail string) {
	h.rep.FailuresTotal++
	if len(h.rep.Failures) >= maxRecordedFailures {
		return
	}
	h.rep.Failures = append(h.rep.Failures, Failure{
		Op:     h.opIndex,
		Block:  block,
		Kind:   kind,
		Detail: detail,
		Repro:  h.rep.Repro,
	})
}

// omvSource supplies old memory values from the oracle with a configured
// hit rate, modelling the LLC's OMV-preserving cache; corruptNext arms a
// one-shot single-bit OMV fault (a hit, so the fault actually lands).
//
// The source is only coherent while the oracle is committed after every
// write — true for the serial workload. Concurrent guard workers bypass
// the oracle mid-flight (their shadows merge at the end), so they set
// disabled, forcing every write to fetch its OMV from memory; this also
// keeps the non-thread-safe rng off the engine's concurrent write path.
type omvSource struct {
	oracle      *Oracle
	rng         *rand.Rand
	hitRate     float64
	corruptNext bool
	disabled    atomic.Bool

	// planned holds OMV decisions pre-drawn for buffered writes (see
	// Harness.bufferWrite), keyed by block — unique within a batch because
	// duplicates force a flush. OMV serves and consumes a planned decision
	// before consulting the live oracle, so flush-time execution order
	// cannot perturb the rng stream.
	planned map[int64]plannedOMV
}

type plannedOMV struct {
	data []byte
	hit  bool
}

// plan draws the OMV decision for a buffered write of block, mirroring
// OMV's unarmed logic draw for draw.
func (o *omvSource) plan(block int64) {
	if o.planned == nil {
		o.planned = make(map[int64]plannedOMV)
	}
	if o.disabled.Load() {
		o.planned[block] = plannedOMV{}
		return
	}
	want, ok := o.oracle.Expected(block)
	if !ok || o.rng.Float64() >= o.hitRate {
		o.planned[block] = plannedOMV{}
		return
	}
	o.planned[block] = plannedOMV{data: append([]byte(nil), want...), hit: true}
}

// unplan discards a planned decision that was never consumed (an errored
// write that failed before its OMV consult).
func (o *omvSource) unplan(block int64) {
	delete(o.planned, block)
}

// OMV implements core.OMVProvider.
func (o *omvSource) OMV(block int64) ([]byte, bool) {
	if p, ok := o.planned[block]; ok {
		delete(o.planned, block)
		return p.data, p.hit
	}
	if o.disabled.Load() {
		return nil, false
	}
	want, ok := o.oracle.Expected(block)
	if !ok {
		return nil, false
	}
	if o.corruptNext {
		o.corruptNext = false
		bad := append([]byte(nil), want...)
		bit := o.rng.Intn(len(bad) * 8)
		bad[bit/8] ^= 1 << uint(bit%8)
		return bad, true
	}
	if o.rng.Float64() >= o.hitRate {
		return nil, false
	}
	return append([]byte(nil), want...), true
}
