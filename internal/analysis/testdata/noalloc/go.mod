module noallocstub

go 1.22
