// Package bch implements binary BCH codes: systematic encoding, and
// decoding via Berlekamp-Massey plus Chien search.
//
// BCH codes are the workhorse of this repository's very long ECC words
// (VLEWs): the paper protects each 256 B of per-chip data with a
// 22-bit-error-correcting BCH code over GF(2^12) (33 B of code bits), and
// the Flash-style and per-block baselines use the same machinery at other
// (m, k, t) points. Codes are shortened: any data length k with
// k + parity <= 2^m - 1 is accepted.
//
// Because BCH is linear, code-bit updates can be computed from the XOR of
// old and new data alone: f(x) XOR f(x') = f(x XOR x'). EncodeDelta exposes
// exactly that operation; it is what the paper's in-NVRAM-chip encoder and
// ECC Update Registerfile (EUR) evaluate on each write.
package bch

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"chipkillpm/internal/gf"
)

// ErrUncorrectable reports that the received word contains more errors than
// the code can correct (or an error pattern outside the shortened code).
var ErrUncorrectable = errors.New("bch: uncorrectable error pattern")

// Code is a binary (n, k) BCH code with designed error-correction
// capability t, built over GF(2^m). Its parameters are immutable and all
// methods are safe for concurrent use: the lookup tables behind the fast
// encode/decode paths are built once (eagerly for encoding, lazily for
// decoding) and per-call working memory comes from an internal pool.
type Code struct {
	field *gf.Field
	m     uint
	t     int
	k     int // data bits
	r     int // parity bits = deg(generator)
	n     int // codeword bits = k + r (shortened from 2^m-1)
	gen   gf.Poly2

	enc       *encTables // byte-wise LFSR tables; nil when r < 8
	decOnce   sync.Once
	dec       *decTables // syndrome/Chien/quadratic tables, built on demand
	deltaTabs atomic.Pointer[deltaTables]
	scratch   sync.Pool // *decodeScratch
}

// New constructs a binary BCH code over GF(2^m) that protects k data bits
// and corrects up to t bit errors. It returns an error when the shortened
// length k + deg(g) exceeds 2^m - 1 or the parameters are degenerate.
func New(m uint, k, t int) (*Code, error) {
	if t < 1 {
		return nil, fmt.Errorf("bch: t=%d must be >= 1", t)
	}
	if k < 1 {
		return nil, fmt.Errorf("bch: k=%d must be >= 1", k)
	}
	field, err := gf.NewField(m)
	if err != nil {
		return nil, err
	}
	gen, err := generator(field, t)
	if err != nil {
		return nil, err
	}
	r := gen.Degree()
	if k+r > field.N() {
		return nil, fmt.Errorf("bch: k+r = %d+%d exceeds 2^%d-1 = %d; use a larger m",
			k, r, m, field.N())
	}
	c := &Code{field: field, m: m, t: t, k: k, r: r, n: k + r, gen: gen}
	c.enc = c.buildEncTables()
	return c, nil
}

// Must is New but panics on error; for initialising known-good codes.
func Must(m uint, k, t int) *Code {
	c, err := New(m, k, t)
	if err != nil {
		panic(err)
	}
	return c
}

// generator computes g(x) = lcm of the minimal polynomials of
// alpha^1 .. alpha^2t over GF(2).
func generator(f *gf.Field, t int) (gf.Poly2, error) {
	n := f.N()
	covered := make([]bool, n+1)
	g := gf.NewPoly2(0) // 1
	for i := 1; i <= 2*t; i++ {
		if covered[i] {
			continue
		}
		// Conjugacy class of alpha^i: exponents i, 2i, 4i, ... mod n.
		minPoly := gf.Poly{1} // over GF(2^m); will have GF(2) coefficients
		e := i
		for {
			covered[e] = true
			minPoly = f.PolyMul(minPoly, gf.Poly{f.Exp(e), 1}) // (x + alpha^e)
			e = (e * 2) % n
			if e == i {
				break
			}
		}
		// A minimal polynomial over GF(2) must have 0/1 coefficients.
		mp := gf.Poly2(nil)
		for deg, c := range minPoly {
			switch c {
			case 0:
			case 1:
				mp = mp.SetCoeff(deg, 1)
			default:
				return nil, fmt.Errorf("bch: internal: minimal polynomial of alpha^%d has coefficient %d outside GF(2)", i, c)
			}
		}
		g = g.Mul(mp)
	}
	return g, nil
}

// K returns the number of data bits.
func (c *Code) K() int { return c.k }

// N returns the codeword length in bits (data + parity).
func (c *Code) N() int { return c.n }

// T returns the designed error-correction capability in bits.
func (c *Code) T() int { return c.t }

// ParityBits returns the number of code (parity) bits, deg(g).
func (c *Code) ParityBits() int { return c.r }

// ParityBytes returns the parity size rounded up to whole bytes, which is
// how the memory layouts in this repository store code bits.
func (c *Code) ParityBytes() int { return (c.r + 7) / 8 }

// DataBytes returns k/8 rounded up.
func (c *Code) DataBytes() int { return (c.k + 7) / 8 }

// Generator returns a copy of the generator polynomial.
func (c *Code) Generator() gf.Poly2 { return c.gen.Clone() }

// Encode computes the parity bytes for data. len(data) must be exactly
// DataBytes(); when k is not a byte multiple the unused high bits of the
// last byte must be zero. The returned slice has ParityBytes() bytes.
//
// The computation streams data through a 256-entry byte-at-a-time LFSR
// remainder table; EncodeBitSerial is the retained reference
// implementation.
func (c *Code) Encode(data []byte) []byte {
	if len(data) != c.DataBytes() {
		panic(fmt.Sprintf("bch: Encode: got %d data bytes, want %d", len(data), c.DataBytes()))
	}
	if c.enc == nil {
		return c.EncodeBitSerial(data)
	}
	sc := c.getScratch()
	c.enc.remainder(sc.state, data)
	out := make([]byte, c.ParityBytes())
	stateBytes(sc.state, out)
	c.putScratch(sc)
	return out
}

// EncodeBitSerial is the original bit-serial systematic encoder:
// parity(x) = (data(x) * x^r) mod g(x) via generic polynomial division.
// It is retained as the differential-testing oracle and as the fallback
// for degenerate codes with fewer than 8 parity bits; production callers
// use Encode.
func (c *Code) EncodeBitSerial(data []byte) []byte {
	if len(data) != c.DataBytes() {
		panic(fmt.Sprintf("bch: Encode: got %d data bytes, want %d", len(data), c.DataBytes()))
	}
	p := gf.Poly2FromBytes(data).Shl(c.r).Mod(c.gen)
	return p.Bytes(c.ParityBytes())
}

// EncodeDelta computes the parity update f(delta) for a sparse data change:
// delta is XOR(old, new) for the bitOffset-aligned region it covers, where
// bitOffset is the position of delta's first bit within the k data bits.
// XORing the result into the stored parity yields the parity of the new
// data. This is the operation the paper embeds in NVRAM chips (Fig. 11):
// the chip receives the bitwise sum of old and new data and updates the
// VLEW code bits without knowing either value in full.
//
// Byte-aligned offsets (every caller in this repository; chips address
// whole bytes) take the table-driven path: the delta streams through the
// LFSR followed by bitOffset/8 zero-feed steps for the x^bitOffset shift.
// Unaligned offsets fall back to EncodeDeltaBitSerial.
func (c *Code) EncodeDelta(delta []byte, bitOffset int) []byte {
	if bitOffset < 0 || bitOffset+8*len(delta) > c.k {
		panic(fmt.Sprintf("bch: EncodeDelta: %d bytes at bit offset %d overflow k=%d", len(delta), bitOffset, c.k))
	}
	if c.enc == nil || bitOffset%8 != 0 {
		return c.EncodeDeltaBitSerial(delta, bitOffset)
	}
	sc := c.getScratch()
	c.enc.remainder(sc.state, delta)
	// Multiply by x^bitOffset: feed zero bytes. A zero state stays zero.
	zero := true
	for _, w := range sc.state {
		if w != 0 {
			zero = false
			break
		}
	}
	if !zero {
		for s := bitOffset / 8; s > 0; s-- {
			c.enc.step(sc.state, 0)
		}
	}
	out := make([]byte, c.ParityBytes())
	stateBytes(sc.state, out)
	c.putScratch(sc)
	return out
}

// maxDeltaWords bounds the stack-resident accumulator used by
// EncodeDeltaInto: codes with up to 512 parity bits (every code in this
// repository; the paper's is 264) take the allocation-free path.
const maxDeltaWords = 8

// EncodeDeltaInto is the allocation-free EncodeDelta used on the demand
// write path: it writes the ParityBytes() parity update for delta at
// bitOffset into out.
//
// Unlike EncodeDelta, which streams the delta through the LFSR and then
// pays bitOffset/8 zero-feed steps for the x^bitOffset shift (up to
// DataBytes-1 steps for a write near the end of a VLEW), this path sums
// precomputed per-byte-position remainder rows
//
//	row[p][v] = v(x) * x^(8p+r) mod g(x)
//
// so an s-byte delta costs s table-row XORs regardless of its offset. The
// rows (DataBytes x 256 x w words, ~2.6 MB for the paper's code) are built
// once per Code on first use and shared by all chips holding the Code.
//
// The table only pays for itself on sparse deltas: each (position, value)
// row is its own cache line, so a dense delta — an EUR drain covering a
// whole VLEW — would take a cold miss per byte walking the 2.6 MB table,
// where the LFSR streams the same bytes through a 10 KB table that stays
// hot. Deltas of lfsrDeltaBytes or more therefore take the LFSR path with
// a stack-resident state; short demand-write deltas (8 bytes per chip
// access) take the table path and skip the up-to-DataBytes zero-feed.
//
//chipkill:noalloc
func (c *Code) EncodeDeltaInto(out, delta []byte, bitOffset int) {
	if len(out) != c.ParityBytes() {
		panic(fmt.Sprintf("bch: EncodeDeltaInto: got %d out bytes, want %d", len(out), c.ParityBytes()))
	}
	if bitOffset < 0 || bitOffset+8*len(delta) > c.k {
		panic(fmt.Sprintf("bch: EncodeDeltaInto: %d bytes at bit offset %d overflow k=%d", len(delta), bitOffset, c.k))
	}
	if c.enc == nil || bitOffset%8 != 0 || c.enc.w > maxDeltaWords {
		copy(out, c.EncodeDelta(delta, bitOffset)) //chipkill:allow noalloc degenerate-code fallback, never hit by the paper's geometry
		return
	}
	var acc [maxDeltaWords]uint64
	w := c.enc.w
	if len(delta) >= lfsrDeltaBytes {
		c.enc.remainder(acc[:w], delta)
		zero := true
		for _, x := range acc[:w] {
			if x != 0 {
				zero = false
				break
			}
		}
		if !zero {
			for s := bitOffset / 8; s > 0; s-- {
				c.enc.step(acc[:w], 0)
			}
		}
		stateBytes(acc[:w], out)
		return
	}
	d := c.deltaTables() //chipkill:allow noalloc one-time table build; steady state is an atomic pointer load
	p0 := bitOffset / 8
	for i, v := range delta {
		if v == 0 {
			continue
		}
		base := ((p0+i)*256 + int(v)) * w
		row := d.tab[base : base+w : base+w]
		for j, x := range row {
			acc[j] ^= x
		}
	}
	stateBytes(acc[:w], out)
}

// lfsrDeltaBytes is the crossover between EncodeDeltaInto's two
// strategies: deltas at least this long stream through the LFSR, shorter
// ones sum delta-table rows. Demand writes hand each chip 8 bytes and EUR
// drains hand it a whole VLEW (256 bytes for the paper's code); any value
// between those is equivalent.
const lfsrDeltaBytes = 64

// EncodeDeltaBitSerial is the original bit-serial delta encoder, retained
// as the differential-testing oracle and the fallback for bit-unaligned
// offsets; production callers use EncodeDelta.
func (c *Code) EncodeDeltaBitSerial(delta []byte, bitOffset int) []byte {
	if bitOffset < 0 || bitOffset+8*len(delta) > c.k {
		panic(fmt.Sprintf("bch: EncodeDelta: %d bytes at bit offset %d overflow k=%d", len(delta), bitOffset, c.k))
	}
	p := gf.Poly2FromBytes(delta).Shl(c.r + bitOffset).Mod(c.gen)
	return p.Bytes(c.ParityBytes())
}

// XORParity XORs src into dst in place; a convenience mirroring the EUR's
// accumulate operation. Both must be ParityBytes() long.
func (c *Code) XORParity(dst, src []byte) {
	if len(dst) != c.ParityBytes() || len(src) != c.ParityBytes() {
		panic("bch: XORParity: parity length mismatch")
	}
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// Syndromes evaluates the received word at alpha^1..alpha^2t and reports
// whether all syndromes are zero (i.e. the word is a codeword). The
// received word is data || parity with parity occupying degrees 0..r-1 and
// data bit i at degree r+i.
//
// The fast path reduces the word modulo g(x) with the byte-wise LFSR and
// evaluates only the r-bit remainder — valid because alpha^1..alpha^2t are
// roots of g — tabulating odd syndromes per remainder byte and deriving
// even ones by squaring (S_2e = S_e^2 in characteristic 2).
func (c *Code) Syndromes(data, parity []byte) ([]gf.Elem, bool) {
	if len(data) != c.DataBytes() || len(parity) != c.ParityBytes() {
		panic(fmt.Sprintf("bch: Syndromes: got %d data bytes and %d parity bytes, want %d and %d",
			len(data), len(parity), c.DataBytes(), c.ParityBytes()))
	}
	syn := make([]gf.Elem, 2*c.t)
	sc := c.getScratch()
	clean := c.syndromesInto(syn, data, parity, sc)
	c.putScratch(sc)
	return syn, clean
}

// SyndromesBitSerial is the original per-set-bit syndrome evaluation,
// retained as the differential-testing oracle and the fallback for codes
// without byte-wise tables; production callers use Syndromes.
func (c *Code) SyndromesBitSerial(data, parity []byte) ([]gf.Elem, bool) {
	syn := make([]gf.Elem, 2*c.t)
	clean := true
	addBit := func(deg int) {
		for j := range syn {
			syn[j] ^= c.field.Exp(deg * (j + 1))
		}
	}
	for i, b := range parity {
		for bit := 0; bit < 8; bit++ {
			if b&(1<<uint(bit)) != 0 {
				deg := 8*i + bit
				if deg < c.r {
					addBit(deg)
				}
			}
		}
	}
	for i, b := range data {
		for bit := 0; bit < 8; bit++ {
			if b&(1<<uint(bit)) != 0 {
				addBit(c.r + 8*i + bit)
			}
		}
	}
	for _, s := range syn {
		if s != 0 {
			clean = false
			break
		}
	}
	return syn, clean
}

// chien finds all error positions (bit degrees in the received polynomial)
// by locating roots of sigma. It returns nil and false when the number of
// roots inside the shortened code does not match deg(sigma).
func (c *Code) chien(sigma gf.Poly) ([]int, bool) {
	f := c.field
	deg := gf.PolyDeg(sigma)
	if deg <= 0 {
		return nil, deg == 0
	}
	positions := make([]int, 0, deg)
	for p := 0; p < c.n; p++ {
		if f.PolyEval(sigma, f.Exp(-p)) == 0 {
			positions = append(positions, p)
			if len(positions) == deg {
				break
			}
		}
	}
	return positions, len(positions) == deg
}

// Decode corrects bit errors in data and parity in place. It returns the
// number of bits corrected, or ErrUncorrectable when the error pattern
// exceeds the code's capability. On error, data and parity are unchanged.
//
// Decode can miscorrect when more than t errors are present: like any
// bounded-distance decoder it may map the received word onto a different
// codeword. Callers that need a lower silent-data-corruption probability
// apply an acceptance threshold on the number of corrections (see
// internal/core).
func (c *Code) Decode(data, parity []byte) (int, error) {
	if len(data) != c.DataBytes() || len(parity) != c.ParityBytes() {
		return 0, fmt.Errorf("bch: Decode: got %d data bytes and %d parity bytes, want %d and %d",
			len(data), len(parity), c.DataBytes(), c.ParityBytes())
	}
	sc := c.getScratch()
	defer c.putScratch(sc)
	syn := sc.syn
	if c.syndromesInto(syn, data, parity, sc) {
		return 0, nil
	}
	sigma := c.berlekampMasseyFast(syn, sc)
	if gf.PolyDeg(sigma) > c.t {
		return 0, ErrUncorrectable
	}
	positions, ok := c.findRoots(sigma, sc)
	if !ok {
		return 0, ErrUncorrectable
	}
	for _, p := range positions {
		if p < c.r {
			parity[p/8] ^= 1 << uint(p%8)
		} else {
			d := p - c.r
			data[d/8] ^= 1 << uint(d%8)
		}
	}
	// Guard against residual errors: with e <= t genuine errors the
	// corrected word is a codeword. Rather than re-evaluating the whole
	// word, fold each flipped bit's contribution alpha^(p*e) into the
	// syndromes — flipping bit p changes S_e by exactly that term — and
	// check that all 2t syndromes cancel.
	f := c.field
	for _, p := range positions {
		a := f.Exp(p)
		acc := gf.Elem(1)
		for j := range syn {
			acc = f.Mul(acc, a)
			syn[j] ^= acc
		}
	}
	for _, s := range syn {
		if s != 0 {
			for _, p := range positions { // roll back
				if p < c.r {
					parity[p/8] ^= 1 << uint(p%8)
				} else {
					d := p - c.r
					data[d/8] ^= 1 << uint(d%8)
				}
			}
			return 0, ErrUncorrectable
		}
	}
	return len(positions), nil
}

// CheckClean reports whether data||parity is a codeword (no errors
// detected), without attempting correction. It costs one byte-wise
// remainder computation — no syndrome evaluation.
func (c *Code) CheckClean(data, parity []byte) bool {
	if len(data) != c.DataBytes() || len(parity) != c.ParityBytes() {
		panic(fmt.Sprintf("bch: CheckClean: got %d data bytes and %d parity bytes, want %d and %d",
			len(data), len(parity), c.DataBytes(), c.ParityBytes()))
	}
	return c.isCodeword(data, parity)
}

// String implements fmt.Stringer.
func (c *Code) String() string {
	return fmt.Sprintf("BCH(n=%d,k=%d,t=%d) over GF(2^%d)", c.n, c.k, c.t, c.m)
}

// ParityBitsEstimate returns the paper's storage-cost formula for BCH:
// t * (floor(log2 k) + 1) code bits to correct t errors in k data bits.
// The actual deg(g) can be slightly smaller; the paper (and our storage
// accounting) uses this bound.
func ParityBitsEstimate(k, t int) int {
	if k <= 0 || t <= 0 {
		return 0
	}
	m := 0
	for v := k; v > 0; v >>= 1 {
		m++
	}
	return t * m
}
