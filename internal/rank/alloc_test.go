package rank

import (
	"bytes"
	"testing"
)

// TestReadBlockRawIntoMatchesReadBlockRaw pins the Into variant against the
// allocating form across the whole rank, including after writes.
func TestReadBlockRawIntoMatchesReadBlockRaw(t *testing.T) {
	r := testRank(t)
	data := make([]byte, r.Config().BlockBytes())
	check := make([]byte, r.Config().ChipAccessBytes)
	for b := int64(0); b < r.Blocks(); b++ {
		wd := make([]byte, r.Config().BlockBytes())
		wc := make([]byte, r.Config().ChipAccessBytes)
		for i := range wd {
			wd[i] = byte(b) ^ byte(i*7)
		}
		for i := range wc {
			wc[i] = byte(b) + byte(i)
		}
		r.WriteBlockRaw(b, wd, wc)
	}
	for b := int64(0); b < r.Blocks(); b++ {
		wantData, wantCheck := r.ReadBlockRaw(b)
		r.ReadBlockRawInto(b, data, check)
		if !bytes.Equal(data, wantData) || !bytes.Equal(check, wantCheck) {
			t.Fatalf("block %d: Into mismatch", b)
		}
	}
}

// TestReadBlockRawIntoAllocFree pins the demand read primitive at zero
// allocations per call — the foundation of the engine's zero-alloc read
// path.
func TestReadBlockRawIntoAllocFree(t *testing.T) {
	r := testRank(t)
	data := make([]byte, r.Config().BlockBytes())
	check := make([]byte, r.Config().ChipAccessBytes)
	blocks := r.Blocks()
	var b int64
	allocs := testing.AllocsPerRun(200, func() {
		r.ReadBlockRawInto(b, data, check)
		b = (b + 1) % blocks
	})
	if allocs != 0 {
		t.Fatalf("ReadBlockRawInto allocates %.1f objects per call, want 0", allocs)
	}
}

func TestReadBlockRawIntoSizeMismatchPanics(t *testing.T) {
	r := testRank(t)
	defer func() {
		if recover() == nil {
			t.Fatal("short data buffer should panic")
		}
	}()
	r.ReadBlockRawInto(0, make([]byte, 1), make([]byte, r.Config().ChipAccessBytes))
}
