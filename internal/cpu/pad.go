package cpu

// CacheLineBytes is the coherence granule the concurrency-sensitive
// structures in this repository pad to. 64 B covers every platform the
// model runs on (x86-64, arm64 with 64 B lines; Apple silicon's 128 B
// lines tolerate 64 B padding with at worst one neighbour pair).
const CacheLineBytes = 64

// CacheLinePad is a full cache line of padding. Embed one between fields
// that are written by different cores — e.g. a shard's mutex/seqlock word
// and its lock-free read counters — so a store to one never invalidates
// the other's line. Using the shared constant keeps every padded struct
// in agreement instead of hand-tuning `_ [40]byte` per site.
type CacheLinePad struct{ _ [CacheLineBytes]byte }
