package rank

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func testRank(t testing.TB) *Rank {
	t.Helper()
	r, err := New(PaperConfig(2, 8, 1024, 11))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConfigShape(t *testing.T) {
	cfg := PaperConfig(2, 8, 1024, 1)
	if cfg.BlockBytes() != 64 {
		t.Errorf("BlockBytes=%d, want 64", cfg.BlockBytes())
	}
	if cfg.BlocksPerRow() != 128 {
		t.Errorf("BlocksPerRow=%d, want 128", cfg.BlocksPerRow())
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := PaperConfig(2, 8, 1024, 1)
	cfg.DataChips = 1
	if err := cfg.Validate(); err == nil {
		t.Error("1 data chip accepted")
	}
	cfg = PaperConfig(2, 8, 1024, 1)
	cfg.ChipAccessBytes = 3
	if err := cfg.Validate(); err == nil {
		t.Error("misaligned chip access accepted")
	}
}

func TestCapacityAndLocate(t *testing.T) {
	r := testRank(t)
	if r.Blocks() != 2*8*128 {
		t.Fatalf("Blocks=%d", r.Blocks())
	}
	// Block 0: bank 0, row 0, col 0.
	if loc := r.Locate(0); loc != (BlockLoc{0, 0, 0}) {
		t.Errorf("Locate(0)=%+v", loc)
	}
	// Block 127 is the last of row 0; block 128 starts global row 1,
	// which lands in bank 1 (row interleaving).
	if loc := r.Locate(127); loc != (BlockLoc{0, 0, 127 * 8}) {
		t.Errorf("Locate(127)=%+v", loc)
	}
	if loc := r.Locate(128); loc != (BlockLoc{1, 0, 0}) {
		t.Errorf("Locate(128)=%+v", loc)
	}
	if loc := r.Locate(256); loc != (BlockLoc{0, 1, 0}) {
		t.Errorf("Locate(256)=%+v", loc)
	}
	// All blocks map uniquely.
	seen := map[BlockLoc]bool{}
	for b := int64(0); b < r.Blocks(); b++ {
		loc := r.Locate(b)
		if seen[loc] {
			t.Fatalf("duplicate location %+v", loc)
		}
		seen[loc] = true
	}
}

func TestLocateOutOfRangePanics(t *testing.T) {
	r := testRank(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	r.Locate(r.Blocks())
}

func TestBlockRoundTrip(t *testing.T) {
	r := testRank(t)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		b := rng.Int63n(r.Blocks())
		data := make([]byte, 64)
		check := make([]byte, 8)
		rng.Read(data)
		rng.Read(check)
		r.WriteBlockRaw(b, data, check)
		gd, gc := r.ReadBlockRaw(b)
		if !bytes.Equal(gd, data) || !bytes.Equal(gc, check) {
			t.Fatalf("block %d round trip failed", b)
		}
	}
}

func TestBlockStriping(t *testing.T) {
	// Byte i of a block must live on chip i/8: verify by failing chip 3
	// and checking exactly bytes 24..31 go bad.
	r := testRank(t)
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i)
	}
	r.WriteBlockRaw(5, data, make([]byte, 8))
	r.FailChip(3)
	got, _ := r.ReadBlockRaw(5)
	for i := 0; i < 64; i++ {
		inFailed := i >= 24 && i < 32
		if !inFailed && got[i] != data[i] {
			t.Errorf("byte %d corrupted outside failed chip", i)
		}
	}
	// The failed chip's 8 bytes are garbage with overwhelming probability.
	if bytes.Equal(got[24:32], data[24:32]) {
		if g2, _ := r.ReadBlockRaw(5); bytes.Equal(g2[24:32], data[24:32]) {
			t.Error("failed chip returned stored data twice")
		}
	}
}

func TestWriteBlockXORRecoversNewData(t *testing.T) {
	r := testRank(t)
	rng := rand.New(rand.NewSource(2))
	oldD := make([]byte, 64)
	oldC := make([]byte, 8)
	rng.Read(oldD)
	rng.Read(oldC)
	r.WriteBlockRaw(9, oldD, oldC)
	newD := make([]byte, 64)
	newC := make([]byte, 8)
	rng.Read(newD)
	rng.Read(newC)
	dd := make([]byte, 64)
	dc := make([]byte, 8)
	for i := range dd {
		dd[i] = oldD[i] ^ newD[i]
	}
	for i := range dc {
		dc[i] = oldC[i] ^ newC[i]
	}
	r.WriteBlockXOR(9, dd, dc)
	gd, gc := r.ReadBlockRaw(9)
	if !bytes.Equal(gd, newD) || !bytes.Equal(gc, newC) {
		t.Fatal("XOR write did not produce new values")
	}
}

func TestBlocksInVLEW(t *testing.T) {
	r := testRank(t)
	got := r.BlocksInVLEW(37)
	if len(got) != 32 {
		t.Fatalf("VLEW spans %d blocks, want 32", len(got))
	}
	if got[0] != 32 || got[31] != 63 {
		t.Errorf("span [%d,%d], want [32,63]", got[0], got[31])
	}
	// All blocks in a VLEW must share bank, row, and VLEW index.
	base := r.Locate(got[0])
	for _, b := range got {
		loc := r.Locate(b)
		if loc.Bank != base.Bank || loc.Row != base.Row {
			t.Errorf("block %d in different row", b)
		}
		if loc.VLEWIndex(256) != base.VLEWIndex(256) {
			t.Errorf("block %d in different VLEW", b)
		}
	}
}

func TestVLEWConsistencyAfterXORWritesAndClose(t *testing.T) {
	// End-to-end: XOR writes through the rank leave every chip's VLEW
	// code bits consistent after rows close.
	r := testRank(t)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		b := rng.Int63n(r.Blocks())
		dd := make([]byte, 64)
		dc := make([]byte, 8)
		rng.Read(dd)
		rng.Read(dc)
		r.WriteBlockXOR(b, dd, dc)
	}
	r.CloseAllRows()
	code := r.Config().VLEWCode
	g := r.Config().Geometry
	for ci := 0; ci < r.NumChips(); ci++ {
		chip := r.Chip(ci)
		for bank := 0; bank < g.Banks; bank++ {
			for row := 0; row < g.RowsPerBank; row++ {
				for v := 0; v < g.VLEWsPerRow(); v++ {
					data, cd := chip.ReadVLEW(bank, row, v)
					if !code.CheckClean(data, cd[:code.ParityBytes()]) {
						t.Fatalf("chip %d bank %d row %d vlew %d inconsistent", ci, bank, row, v)
					}
				}
			}
		}
	}
}

func TestHealthyChips(t *testing.T) {
	r := testRank(t)
	if n := len(r.HealthyChips()); n != 9 {
		t.Fatalf("healthy=%d, want 9", n)
	}
	r.FailChip(r.ParityChipIndex())
	h := r.HealthyChips()
	if len(h) != 8 {
		t.Fatalf("healthy=%d, want 8", len(h))
	}
	for _, i := range h {
		if i == r.ParityChipIndex() {
			t.Error("failed parity chip listed healthy")
		}
	}
}

func TestStorageOverheadIs27Percent(t *testing.T) {
	r := testRank(t)
	if got := r.StorageOverhead(); math.Abs(got-0.2699) > 0.001 {
		t.Errorf("StorageOverhead=%.4f, want 0.270", got)
	}
}

func TestStatsAggregation(t *testing.T) {
	r := testRank(t)
	r.WriteBlockXOR(0, make([]byte, 64), make([]byte, 8))
	s := r.Stats()
	if s.DataWrites != 9 { // 8 data chips + parity chip each got one XOR write
		t.Errorf("DataWrites=%d, want 9", s.DataWrites)
	}
	if s.RowActivations != 9 {
		t.Errorf("RowActivations=%d, want 9", s.RowActivations)
	}
}

func TestInjectRetentionErrorsSpansAllChips(t *testing.T) {
	r := testRank(t)
	flips := r.InjectRetentionErrors(1e-3)
	bitsPerChip := float64(r.Config().Geometry.RowTotalBytes()) *
		float64(r.Config().Geometry.Banks*r.Config().Geometry.RowsPerBank) * 8
	expect := bitsPerChip * 9 * 1e-3
	if f := float64(flips); f < 0.5*expect || f > 1.7*expect {
		t.Errorf("flips=%d, expected ~%.0f", flips, expect)
	}
}
