// Package fleet is a miniature of the fleet's publication discipline: a
// mutex-guarded slice, an atomic counter, and a plain word published via
// sync/atomic functions.
package fleet

import (
	"sync"
	"sync/atomic"
)

// Fleet holds one instance of each field contract.
type Fleet struct {
	//chipkill:lock fleet.mu level=10
	mu sync.Mutex
	//chipkill:guardedby fleet.mu
	pool []int64
	//chipkill:atomic
	count atomic.Int64
	//chipkill:atomic
	raw int64
}

// Telemetry's counter lost its mark; the coverage rule must flag it.
type Telemetry struct {
	hits atomic.Int64 // want `no //chipkill:atomic annotation`
}

func (f *Fleet) goodRead() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pool[0]
}

func (f *Fleet) badRead() int64 {
	return f.pool[0] // want `accessed without holding "fleet.mu"`
}

// lockedHelper's contract makes lexically lock-free helpers checkable.
//
//chipkill:holds fleet.mu
func (f *Fleet) lockedHelper() { f.pool[0] = 1 }

func (f *Fleet) viaHelper() {
	f.mu.Lock()
	f.lockedHelper()
	f.mu.Unlock()
}

func (f *Fleet) goodAtomic() {
	f.count.Add(1)
	atomic.AddInt64(&f.raw, 1)
}

func (f *Fleet) badAtomicAddr() *atomic.Int64 {
	return &f.count // want `sync/atomic methods`
}

func (f *Fleet) badRaw() int64 {
	return f.raw // want `accessed through sync/atomic`
}

// construction demonstrates the reasoned escape hatch for
// pre-publication initialisation.
func (f *Fleet) construction() {
	//chipkill:allow guardedby initialisation before the fleet is published
	f.pool = make([]int64, 4)
}
