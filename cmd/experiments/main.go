// Command experiments regenerates every table and figure of the paper's
// evaluation. With no flags it runs everything; -fig selects one.
//
//	experiments -fig 16            # performance under ReRAM latencies
//	experiments -fig appendix      # the SDC (miscorrection) calculation
//	experiments -list              # what is available
//	experiments -instructions 8000000 -fig 17
package main

import (
	"flag"
	"fmt"
	"os"

	"chipkillpm/internal/experiments"
	"chipkillpm/internal/nvram"
	"chipkillpm/internal/sim"
	"chipkillpm/internal/stats"
)

var figures = []struct {
	id   string
	desc string
}{
	{"1", "RBER of NVRAM technologies vs time since refresh"},
	{"2", "storage cost of extended DRAM chipkill at NVRAM RBERs"},
	{"3", "Flash-style BCH strength vs BER (512B words)"},
	{"4", "storage cost vs ECC word length"},
	{"5", "bandwidth overheads of naive VLEW protection"},
	{"7", "distribution of byte errors per 64B request"},
	{"10", "dirty-PM cacheline occupancy (simulation)"},
	{"13", "hardware area/latency costs"},
	{"14", "off-chip access breakdown (simulation)"},
	{"15", "C factor per workload (simulation)"},
	{"16", "performance normalized to baseline, ReRAM (simulation)"},
	{"17", "performance normalized to baseline, PCM (simulation)"},
	{"18", "OMV LLC hit rate (simulation)"},
	{"table1", "simulated system configuration"},
	{"storage", "Sec III-A / V-A storage-cost summary"},
	{"scrub", "Sec V-B boot-scrub time"},
	{"fallback", "Sec V-C/V-E runtime correction rates"},
	{"appendix", "SDC rate calculation (Terms A and B)"},
	{"refresh", "refresh interval vs runtime RBER and correction rates"},
	{"montecarlo", "fault-injection validation on the functional model"},
	{"termb", "empirical validation of the appendix's Term B"},
	{"ablation", "design-space ablations (threshold, OMV, EUR, page policy)"},
}

func main() {
	fig := flag.String("fig", "", "figure/table to regenerate (see -list); empty = all")
	list := flag.Bool("list", false, "list available figures")
	instructions := flag.Int64("instructions", 2_000_000, "measured instructions for simulation figures")
	warmup := flag.Int64("warmup", 600_000, "warmup instructions for simulation figures")
	seed := flag.Int64("seed", 7, "simulation seed")
	trials := flag.Int("trials", 3, "Monte-Carlo rounds")
	flag.Parse()

	if *list {
		for _, f := range figures {
			fmt.Printf("  %-10s %s\n", f.id, f.desc)
		}
		return
	}

	po := experiments.PerfOptions{Instructions: *instructions, Warmup: *warmup, Seed: *seed}
	if err := run(*fig, po, *trials); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func show(title string, tab *stats.Table) {
	fmt.Printf("== %s ==\n%s\n", title, tab)
}

// simCache avoids re-running the heavy three-pass simulation for every
// figure that shares it.
type simCache struct {
	po    experiments.PerfOptions
	reram []sim.Comparison
	pcm   []sim.Comparison
}

func (c *simCache) get(tech nvram.Tech) ([]sim.Comparison, error) {
	var slot *[]sim.Comparison
	if tech.Name == nvram.ReRAM.Name {
		slot = &c.reram
	} else {
		slot = &c.pcm
	}
	if *slot == nil {
		cmps, err := experiments.RunComparisons(tech, c.po)
		if err != nil {
			return nil, err
		}
		*slot = cmps
	}
	return *slot, nil
}

func run(fig string, po experiments.PerfOptions, trials int) error {
	cache := &simCache{po: po}
	all := fig == ""
	want := func(id string) bool { return all || fig == id }

	if want("table1") {
		show("Table I: simulated system", experiments.TableIConfig())
	}
	if want("1") {
		show("Fig 1: RBER vs time since refresh", experiments.Fig1RBER())
	}
	if want("2") {
		show("Fig 2: extended DRAM chipkill storage cost", experiments.Fig2StorageCost())
	}
	if want("3") {
		show("Fig 3: Flash-style BCH strength", experiments.Fig3FlashECC())
	}
	if want("4") {
		show("Fig 4: storage cost vs codeword length (RBER 1e-3)", experiments.Fig4CodewordSweep(1e-3))
	}
	if want("5") {
		show("Fig 5: naive-VLEW bandwidth overheads", experiments.Fig5Bandwidth())
	}
	if want("7") {
		show("Fig 7: byte errors per 64B request @ 2e-4", experiments.Fig7ErrorDistribution(2e-4))
	}
	if want("13") {
		show("Fig 13 / Sec V-E: hardware costs", experiments.Fig13HWCost())
	}
	if want("storage") {
		show("Secs III-A & V-A: storage summary", experiments.StorageSummary())
	}
	if want("scrub") {
		show("Sec V-B: boot scrub time", experiments.ScrubAnalysis())
	}
	if want("fallback") {
		show("Secs V-C/V-E: runtime correction rates", experiments.FallbackAnalysis())
	}
	if want("refresh") {
		show("Sec IV: refresh interval sweep (3-bit PCM)", experiments.RefreshSweep(nvram.PCM3))
		show("Sec IV: refresh interval sweep (ReRAM)", experiments.RefreshSweep(nvram.ReRAM))
	}
	if want("appendix") {
		show("Appendix: SDC rate (RS(72,64) @ 2e-4)", experiments.AppendixSDC())
	}
	if want("montecarlo") {
		runtime, err := experiments.MonteCarloRuntime(2e-4, trials, 99)
		if err != nil {
			return err
		}
		outage, err := experiments.MonteCarloOutage(1e-3, trials, false, 101)
		if err != nil {
			return err
		}
		chip, err := experiments.MonteCarloOutage(1e-3, trials, true, 103)
		if err != nil {
			return err
		}
		show("Monte-Carlo fault injection (functional model)",
			experiments.MonteCarloTable([]experiments.MonteCarloResult{runtime, outage, chip}))
	}
	if want("termb") {
		v4, err := experiments.ValidateTermB(4, 200_000, 11)
		if err != nil {
			return err
		}
		v3, err := experiments.ValidateTermB(3, 200_000, 13)
		if err != nil {
			return err
		}
		show("Appendix Term B: Monte-Carlo vs analytical",
			experiments.TermBTable([]experiments.TermBValidation{v4, v3}))
	}

	needPCM := want("10") || want("14") || want("15") || want("17") || want("18") || want("ablation")
	if needPCM {
		cmps, err := cache.get(nvram.PCM3)
		if err != nil {
			return err
		}
		if want("10") {
			show("Fig 10: dirty-PM cacheline occupancy", experiments.Fig10Table(cmps))
		}
		if want("14") {
			show("Fig 14: off-chip access breakdown", experiments.Fig14Table(cmps))
		}
		if want("15") {
			show("Fig 15: C factor per workload", experiments.Fig15Table(cmps))
		}
		if want("17") {
			show("Fig 17: normalized performance, PCM latencies", experiments.PerfTable(cmps, nvram.PCM3))
		}
		if want("18") {
			show("Fig 18: OMV LLC hit rate", experiments.Fig18Table(cmps))
		}
		if want("ablation") {
			show("Ablation: RS acceptance threshold", experiments.AblationThreshold())
			show("Ablation: EUR coalescing", experiments.AblationEUR(cmps))
			omv, err := experiments.AblationOMV(nvram.PCM3, po, "hashmap")
			if err != nil {
				return err
			}
			show("Ablation: OMV-in-LLC (hashmap)", omv)
			page, err := experiments.AblationPagePolicy(nvram.PCM3, po, "fft")
			if err != nil {
				return err
			}
			show("Ablation: row-buffer policy (fft)", page)
		}
	}
	if want("16") {
		cmps, err := cache.get(nvram.ReRAM)
		if err != nil {
			return err
		}
		show("Fig 16: normalized performance, ReRAM latencies", experiments.PerfTable(cmps, nvram.ReRAM))
	}
	return nil
}
