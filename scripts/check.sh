#!/bin/sh
# check.sh — the gate a change must pass before it lands:
#   vet (stock go vet plus the chipkillvet contract analyzers, plus
#   pinned staticcheck/govulncheck when the network allows fetching
#   them) + build + full tests (including the smoke fault campaigns and the
#   checked-in fuzz seed corpora), race detector on the concurrent
#   packages, a short coverage-guided fuzz pass over both decoders, the
#   standard fault-injection campaign suite, and the kernel regression
#   harness (refreshes BENCH_kernels.json and fails on a fast-path/
#   reference speedup regression).
#
# Usage: scripts/check.sh [-quick]
#   -quick skips the race pass, the fuzz smoke, the standard campaign
#   suite, and the benchmark harness.
set -eu
cd "$(dirname "$0")/.."

quick=false
[ "${1:-}" = "-quick" ] && quick=true

echo "== go vet"
go vet ./...

echo "== chipkillvet (contract analyzers: noalloc shardlock sentinel bankaccess seqlock lockorder guardedby)"
go run ./cmd/chipkillvet ./...

# Third-party static analysis, pinned and fetched on demand. Offline
# sandboxes (empty module cache, no proxy) skip them; CI always has the
# network and runs both.
STATICCHECK_VERSION=${STATICCHECK_VERSION:-2024.1.1}
GOVULNCHECK_VERSION=${GOVULNCHECK_VERSION:-v1.1.3}
if [ "${SKIP_THIRDPARTY_ANALYZERS:-}" = "1" ]; then
	echo "== staticcheck/govulncheck skipped (SKIP_THIRDPARTY_ANALYZERS=1)"
elif GOFLAGS= go run "honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION" -version >/dev/null 2>&1; then
	echo "== staticcheck ($STATICCHECK_VERSION)"
	GOFLAGS= go run "honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION" ./...
	echo "== govulncheck ($GOVULNCHECK_VERSION)"
	GOFLAGS= go run "golang.org/x/vuln/cmd/govulncheck@$GOVULNCHECK_VERSION" ./...
else
	echo "== staticcheck/govulncheck unavailable (offline module cache); skipping"
fi

echo "== go build"
go build ./...

echo "== go test"
go test ./... -count=1

if ! $quick; then
	echo "== go test -race (core, rank, memctrl, sim, inject, engine, guard, fleet)"
	go test -race -count=1 ./internal/core/... ./internal/rank/... \
		./internal/memctrl/... ./internal/sim/... ./internal/inject/... \
		./internal/engine/... ./internal/guard/... ./internal/fleet/...

	echo "== fuzz smoke (10s per decoder)"
	go test ./internal/bch/ -fuzz=FuzzDecode -fuzztime=10s
	go test ./internal/rs/ -fuzz=FuzzDecode -fuzztime=10s
	go test ./internal/guard/ -fuzz=FuzzJournalDecode -fuzztime=10s

	echo "== fault campaigns (standard suite)"
	go run ./cmd/faultcampaign -suite standard

	echo "== fault campaigns (fleet suite)"
	go run ./cmd/faultcampaign -suite fleet

	echo "== kernel benchmarks -> BENCH_kernels.json"
	go run ./cmd/benchkernels -check

	# Short-benchtime smoke of the end-to-end throughput harness: checks
	# the harness runs and emits a well-formed report without gating on
	# timing (refresh the committed numbers with `make benchruntime`).
	echo "== runtime throughput harness (short)"
	rt_tmp=$(mktemp)
	go run ./cmd/benchruntime -benchtime 25ms -out "$rt_tmp"
	go run ./cmd/benchruntime -validate "$rt_tmp"
	rm -f "$rt_tmp"
fi

echo "OK"
