package use

import (
	"errors"
	"testing"

	"sentinelstub/errs"
)

// Unlike the concurrency analyzers, sentinel applies inside _test.go
// files too: a wrapped sentinel makes == silently pass failure paths.
func TestWrappedSentinelStillMatches(t *testing.T) {
	err := wrap(errs.ErrUncorrectable)
	if err == errs.ErrUncorrectable { // want `sentinel compared with ==`
		t.Fatal("identity comparison matched a wrapped error")
	}
	if !errors.Is(err, errs.ErrUncorrectable) {
		t.Fatal("errors.Is must match the wrapped sentinel")
	}
}

func wrap(err error) error {
	return errors.Join(err)
}
