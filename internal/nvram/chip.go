package nvram

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"chipkillpm/internal/bch"
	"chipkillpm/internal/gf"
)

// Geometry describes one NVRAM chip's array organisation. Each row holds
// RowDataBytes of data followed by one VLEW code region per VLEWDataBytes
// of data, mirroring Fig 6: code bits live in the same row as the data
// they protect.
type Geometry struct {
	Banks         int // banks per chip
	RowsPerBank   int
	RowDataBytes  int // data bytes per row; must be a multiple of VLEWDataBytes
	VLEWDataBytes int // data bytes per VLEW (256 in the paper)
	VLEWCodeBytes int // code bytes per VLEW (33 in the paper)
}

// Validate checks the geometry for internal consistency.
func (g Geometry) Validate() error {
	if g.Banks < 1 || g.RowsPerBank < 1 || g.RowDataBytes < 1 {
		return fmt.Errorf("nvram: geometry has non-positive dimensions: %+v", g)
	}
	if g.VLEWDataBytes < 1 || g.RowDataBytes%g.VLEWDataBytes != 0 {
		return fmt.Errorf("nvram: row data bytes %d not a multiple of VLEW data bytes %d",
			g.RowDataBytes, g.VLEWDataBytes)
	}
	if g.VLEWCodeBytes < 0 {
		return fmt.Errorf("nvram: negative VLEW code bytes")
	}
	return nil
}

// VLEWsPerRow returns the number of VLEWs each row holds.
func (g Geometry) VLEWsPerRow() int { return g.RowDataBytes / g.VLEWDataBytes }

// RowTotalBytes returns the physical row size: data plus code regions.
func (g Geometry) RowTotalBytes() int {
	return g.RowDataBytes + g.VLEWsPerRow()*g.VLEWCodeBytes
}

// DataBytes returns the chip's usable data capacity.
func (g Geometry) DataBytes() int64 {
	return int64(g.Banks) * int64(g.RowsPerBank) * int64(g.RowDataBytes)
}

// EURRegisters returns the number of ECC Update Registerfile entries the
// chip needs: one per VLEW of each bank's single open row (B * R/256 in
// the paper's notation).
func (g Geometry) EURRegisters() int { return g.Banks * g.VLEWsPerRow() }

// Stats aggregates a chip's activity counters.
type Stats struct {
	DataWrites        int64 // XOR-write operations received
	RawWrites         int64 // conventional (overwrite) writes
	VLEWCodeWrites    int64 // EUR registers drained to the array (code-bit write events)
	RowActivations    int64
	RowCloses         int64
	BitErrorsInjected int64
	BitsWritten       int64 // physical data bits written (for wear accounting)
	FailedAccesses    int64 // reads served while the chip was failed (garbage returned)
}

// CFactor returns the ratio between VLEW code-bit writes and data writes —
// the paper's C factor (Fig 15). Lower is better; row-buffer locality
// lets the EUR coalesce many data writes into one code write.
func (s Stats) CFactor() float64 {
	if s.DataWrites == 0 {
		return 0
	}
	return float64(s.VLEWCodeWrites) / float64(s.DataWrites)
}

// Chip is one NVRAM die. It stores real bytes, injects real bit errors,
// embeds a linear BCH encoder for VLEW code bits and an EUR that coalesces
// code-bit updates per open-row VLEW until the row closes (Fig 11).
//
// Concurrency contract (mirrors real hardware, where each bank operates
// independently behind its own row buffer):
//
//   - ReadVLEW and WriteVLEW take the chip's internal mutex and may be
//     called concurrently from anywhere — the parallel boot scrub fans
//     workers out across (chip, bank) pairs.
//   - The bank-addressed demand methods (ReadData, ReadDataInto, WriteData,
//     WriteXOR, WriteDataRaw, OpenRow, CloseRow, XORCode, ReadCode) may run
//     concurrently so long as no two goroutines touch the same bank at the
//     same time: all mutable per-bank state (cells rows, the open-row
//     register, EUR slots, row wear) is disjoint across banks, and shared
//     counters are updated atomically. The sharded engine relies on this by
//     assigning each bank to exactly one shard lock.
//   - Fault-injection and maintenance methods (Fail, Repair, CloseAllRows,
//     InjectRetentionErrors, WearOutBit, FlipDataBit, FlipCodeBit) require
//     full quiescence: no concurrent access of any kind.
//
// Decoding (the expensive part of a scrub) happens outside the chip and
// needs no lock.
type Chip struct {
	// mu guards the *VLEW methods and the failed-read rng.
	//chipkill:lock nvram.chip level=60
	mu      sync.Mutex
	geom    Geometry
	enc     *bch.Code // VLEW encoder; nil disables in-chip encoding
	cells   []byte    // banks x rows x RowTotalBytes
	rng     *rand.Rand
	failed  bool
	openRow []int // per bank; -1 when closed
	// EUR slots indexed bank*VLEWsPerRow+v. A slot accumulates the *raw
	// data delta* of its open-row VLEW — not an encoded code update — and
	// the chip runs the BCH encoder once when the slot drains at row close.
	// BCH is linear, so encoding the accumulated delta equals XORing the
	// per-write encodes, and the deferred scheme pays one EncodeDelta per
	// drain instead of one per write. eurLo/eurHi bound the touched byte
	// range so the drain encodes only what changed. A slot's register is
	// allocated lazily and kept zeroed whenever its eurSet flag is false,
	// so draining is flag-test + encode with no map churn and no
	// cross-bank sharing. Registers are carved out of one eagerly
	// allocated slab so the write path never allocates.
	eurDelta [][]byte
	eurSet   []bool
	eurLo    []int32
	eurHi    []int32
	// bank[b] is per-bank scratch for the write chain (delta staging and
	// EncodeDeltaInto output). Banks operate independently — the demand
	// concurrency contract guarantees no two goroutines touch the same
	// bank — so per-bank ownership makes every write-path encode
	// allocation-free without any caller-threaded buffers.
	bank    []bankScratch
	rowWear []int64           // writes per row, for wear accounting
	stuck   map[int]stuckCell // worn-out cells: writes cannot change them
	// stats fields are only touched through sync/atomic: banks race on
	// them, and Stats() snapshots them without stopping traffic.
	//chipkill:atomic
	stats Stats
}

// bankScratch is the reusable working memory of one bank's write chain.
// Only populated when the chip embeds an encoder.
type bankScratch struct {
	parity []byte // EncodeDeltaInto output, enc.ParityBytes()
	delta  []byte // WriteData delta staging, RowDataBytes
}

// stuckCell describes permanently faulty bits of one cell byte: the bits
// in mask always read back as the corresponding bits of value.
type stuckCell struct {
	mask, value byte
}

// NewChip builds a chip with the given geometry. enc may be nil for chips
// modelled without an embedded encoder (e.g. DRAM baselines). seed makes
// the chip's stochastic behaviour reproducible.
func NewChip(geom Geometry, enc *bch.Code, seed int64) (*Chip, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if enc != nil {
		if enc.DataBytes() != geom.VLEWDataBytes {
			return nil, fmt.Errorf("nvram: encoder protects %dB, geometry VLEW holds %dB",
				enc.DataBytes(), geom.VLEWDataBytes)
		}
		if enc.ParityBytes() > geom.VLEWCodeBytes {
			return nil, fmt.Errorf("nvram: encoder needs %dB code, geometry provides %dB",
				enc.ParityBytes(), geom.VLEWCodeBytes)
		}
	}
	c := &Chip{
		geom:     geom,
		enc:      enc,
		cells:    make([]byte, int64(geom.Banks)*int64(geom.RowsPerBank)*int64(geom.RowTotalBytes())),
		rng:      rand.New(rand.NewSource(seed)),
		openRow:  make([]int, geom.Banks),
		eurDelta: make([][]byte, geom.EURRegisters()),
		eurSet:   make([]bool, geom.EURRegisters()),
		eurLo:    make([]int32, geom.EURRegisters()),
		eurHi:    make([]int32, geom.EURRegisters()),
		rowWear:  make([]int64, geom.Banks*geom.RowsPerBank),
		stuck:    make(map[int]stuckCell),
	}
	for i := range c.openRow {
		c.openRow[i] = -1
	}
	// Carve the EUR registers out of one slab up front (Banks*RowDataBytes,
	// negligible next to cells) so coalescing never allocates mid-write.
	slab := make([]byte, geom.EURRegisters()*geom.VLEWDataBytes)
	for i := range c.eurDelta {
		c.eurDelta[i] = slab[i*geom.VLEWDataBytes : (i+1)*geom.VLEWDataBytes]
	}
	if enc != nil {
		c.bank = make([]bankScratch, geom.Banks)
		for b := range c.bank {
			c.bank[b] = bankScratch{
				parity: make([]byte, enc.ParityBytes()),
				delta:  make([]byte, geom.RowDataBytes),
			}
		}
	}
	return c, nil
}

// Geometry returns the chip's geometry.
func (c *Chip) Geometry() Geometry { return c.geom }

// Stats returns a snapshot of the chip's counters. Counters are maintained
// atomically, so a snapshot taken during concurrent demand traffic is a
// consistent set of per-field loads (not a point-in-time total across
// fields, which only quiescence can give).
func (c *Chip) Stats() Stats {
	return Stats{
		DataWrites:        atomic.LoadInt64(&c.stats.DataWrites),
		RawWrites:         atomic.LoadInt64(&c.stats.RawWrites),
		VLEWCodeWrites:    atomic.LoadInt64(&c.stats.VLEWCodeWrites),
		RowActivations:    atomic.LoadInt64(&c.stats.RowActivations),
		RowCloses:         atomic.LoadInt64(&c.stats.RowCloses),
		BitErrorsInjected: atomic.LoadInt64(&c.stats.BitErrorsInjected),
		BitsWritten:       atomic.LoadInt64(&c.stats.BitsWritten),
		FailedAccesses:    atomic.LoadInt64(&c.stats.FailedAccesses),
	}
}

// Healthy reports whether the chip has not suffered a chip-level failure.
func (c *Chip) Healthy() bool { return !c.failed }

// Fail marks the chip as failed: reads return garbage, writes are dropped.
// Production code should go through Rank.FailChip, which additionally
// maintains the rank's failed-chip count for the engine's lock-free read
// gate; calling Fail directly leaves that count stale.
func (c *Chip) Fail() { c.failed = true }

// CellArray exposes the chip's backing cell array for lock-free readers.
// The engine's seqlock-validated clean-read path gathers data bytes
// straight from this slice between sequence checks; a torn read is
// detected by the sequence re-check and retried, never consumed. Callers
// must not write through the returned slice.
func (c *Chip) CellArray() []byte { return c.cells }

// Repair clears a chip failure (models replacing/remapping the device);
// contents are zeroed, as a fresh device would be.
func (c *Chip) Repair() {
	c.failed = false
	for i := range c.cells {
		c.cells[i] = 0
	}
	for i, reg := range c.eurDelta {
		zeroBytes(reg)
		c.eurSet[i] = false
	}
}

// eurIndex addresses a bank's EUR slot for one open-row VLEW.
func (c *Chip) eurIndex(bank, v int) int { return bank*c.geom.VLEWsPerRow() + v }

func zeroBytes(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

func (c *Chip) rowBase(bank, row int) int {
	c.checkAddr(bank, row)
	return (bank*c.geom.RowsPerBank + row) * c.geom.RowTotalBytes()
}

func (c *Chip) checkAddr(bank, row int) {
	if bank < 0 || bank >= c.geom.Banks || row < 0 || row >= c.geom.RowsPerBank {
		panic(fmt.Sprintf("nvram: address out of range: bank=%d row=%d (geometry %dx%d)",
			bank, row, c.geom.Banks, c.geom.RowsPerBank))
	}
}

// ReadData returns n data bytes starting at byte offset off within the
// row. A failed chip returns garbage.
func (c *Chip) ReadData(bank, row, off, n int) []byte {
	out := make([]byte, n)
	c.ReadDataInto(out, bank, row, off)
	return out
}

// ReadDataInto fills dst with len(dst) data bytes starting at byte offset
// off within the row — ReadData without the allocation, for the demand
// read path. A failed chip fills dst with garbage (the rng draw is taken
// under the chip mutex so concurrent shards keep the stream well-defined).
//
//chipkill:noalloc
func (c *Chip) ReadDataInto(dst []byte, bank, row, off int) {
	base := c.rowBase(bank, row)
	if off < 0 || off+len(dst) > c.geom.RowDataBytes {
		panic(fmt.Sprintf("nvram: data read [%d,%d) outside row data %d", off, off+len(dst), c.geom.RowDataBytes))
	}
	if c.failed {
		atomic.AddInt64(&c.stats.FailedAccesses, 1)
		c.mu.Lock()
		c.rng.Read(dst)
		c.mu.Unlock()
		return
	}
	copy(dst, c.cells[base+off:base+off+len(dst)])
}

// WriteData overwrites data bytes conventionally (raw values on the bus).
// Used by scrub write-back and by baseline schemes. VLEW code bits for the
// affected region are updated through the in-chip encoder when present,
// bypassing the EUR (scrub-style writes are not row-locality optimised).
func (c *Chip) WriteData(bank, row, off int, data []byte) {
	base := c.rowBase(bank, row)
	if off < 0 || off+len(data) > c.geom.RowDataBytes {
		panic(fmt.Sprintf("nvram: data write [%d,%d) outside row data %d", off, off+len(data), c.geom.RowDataBytes))
	}
	atomic.AddInt64(&c.stats.RawWrites, 1)
	if c.failed {
		return
	}
	old := c.cells[base+off : base+off+len(data)]
	if c.enc != nil {
		// Update code bits from the delta before overwriting; the delta is
		// staged in the bank's scratch (callers own the bank, per the
		// concurrency contract) so scrub write-backs do not allocate.
		delta := c.bank[bank].delta[:len(data)]
		for i := range data {
			delta[i] = old[i] ^ data[i]
		}
		c.applyCodeDelta(bank, row, off, delta, false)
	}
	copy(old, data)
	c.applyStuck(base+off, len(data))
	atomic.AddInt64(&c.stats.BitsWritten, int64(8*len(data)))
	c.rowWear[bank*c.geom.RowsPerBank+row]++
}

// WriteXOR receives the bitwise sum of old and new data (the paper's
// modified write request) and applies it: new data is recovered by XORing
// the stored old data, and the VLEW code-bit update is accumulated in the
// EUR until row close. The target row is opened implicitly, closing any
// other open row in the bank (draining its EUR registers).
//
//chipkill:noalloc
func (c *Chip) WriteXOR(bank, row, off int, delta []byte) {
	base := c.rowBase(bank, row)
	if off < 0 || off+len(delta) > c.geom.RowDataBytes {
		panic(fmt.Sprintf("nvram: XOR write [%d,%d) outside row data %d", off, off+len(delta), c.geom.RowDataBytes))
	}
	c.OpenRow(bank, row)
	atomic.AddInt64(&c.stats.DataWrites, 1)
	if c.failed {
		return
	}
	gf.XORBytes(c.cells[base+off:base+off+len(delta)], delta)
	c.applyStuck(base+off, len(delta))
	atomic.AddInt64(&c.stats.BitsWritten, int64(8*len(delta)))
	c.rowWear[bank*c.geom.RowsPerBank+row]++
	if c.enc != nil {
		c.applyCodeDelta(bank, row, off, delta, true)
	}
}

// applyCodeDelta folds a data delta into VLEW code bits, either via the
// EUR (coalesce=true) or immediately.
//
//chipkill:noalloc
func (c *Chip) applyCodeDelta(bank, row, off int, delta []byte, coalesce bool) {
	// The delta may span multiple VLEWs; split on VLEW boundaries.
	for len(delta) > 0 {
		v := off / c.geom.VLEWDataBytes
		inOff := off % c.geom.VLEWDataBytes
		n := c.geom.VLEWDataBytes - inOff
		if n > len(delta) {
			n = len(delta)
		}
		if coalesce {
			// Defer the encode: accumulate the raw data delta and widen
			// the touched range. One EncodeDelta over the accumulated
			// delta at drain time equals the XOR of the per-write
			// encodes (BCH linearity), at a fraction of the cost.
			idx := c.eurIndex(bank, v)
			reg := c.eurDelta[idx]
			gf.XORBytes(reg[inOff:inOff+n], delta[:n])
			if !c.eurSet[idx] {
				c.eurSet[idx] = true
				c.eurLo[idx], c.eurHi[idx] = int32(inOff), int32(inOff+n)
			} else {
				if int32(inOff) < c.eurLo[idx] {
					c.eurLo[idx] = int32(inOff)
				}
				if int32(inOff+n) > c.eurHi[idx] {
					c.eurHi[idx] = int32(inOff + n)
				}
			}
		} else {
			update := c.bank[bank].parity
			c.enc.EncodeDeltaInto(update, delta[:n], inOff*8)
			gf.XORBytes(c.vlewCode(bank, row, v), update)
			atomic.AddInt64(&c.stats.VLEWCodeWrites, 1)
		}
		delta = delta[n:]
		off += n
	}
}

// drainSlot folds one armed EUR slot into its VLEW's stored code bits:
// a single EncodeDelta over the slot's accumulated raw delta, XORed into
// the array. Counts one VLEWCodeWrites event per drain regardless of chip
// health (a failed chip still "performs" the array write; it just has no
// effect), exactly as the per-slot drain always has. The caller must hold
// whatever exclusion the access path requires and must have checked
// eurSet[idx].
//
//chipkill:noalloc
func (c *Chip) drainSlot(idx, bank, row, v int) {
	reg := c.eurDelta[idx]
	lo, hi := int(c.eurLo[idx]), int(c.eurHi[idx])
	if !c.failed {
		update := c.bank[bank].parity
		c.enc.EncodeDeltaInto(update, reg[lo:hi], lo*8)
		gf.XORBytes(c.vlewCode(bank, row, v), update)
	}
	atomic.AddInt64(&c.stats.VLEWCodeWrites, 1)
	zeroBytes(reg[lo:hi])
	c.eurSet[idx] = false
}

// clearSlot discards one EUR slot's pending delta without draining it
// (the slot's VLEW is about to be overwritten wholesale).
func (c *Chip) clearSlot(idx int) {
	if !c.eurSet[idx] {
		return
	}
	zeroBytes(c.eurDelta[idx][c.eurLo[idx]:c.eurHi[idx]])
	c.eurSet[idx] = false
}

// vlewCode returns the stored code-bit slice for a VLEW (aliases cells).
func (c *Chip) vlewCode(bank, row, v int) []byte {
	base := c.rowBase(bank, row)
	start := base + c.geom.RowDataBytes + v*c.geom.VLEWCodeBytes
	return c.cells[start : start+c.geom.VLEWCodeBytes]
}

// OpenRow activates a row in a bank, closing (and EUR-draining) any other
// open row first. Opening an already-open row is a no-op (a row hit).
//
//chipkill:noalloc
func (c *Chip) OpenRow(bank, row int) {
	c.checkAddr(bank, row)
	if c.openRow[bank] == row {
		return
	}
	if c.openRow[bank] >= 0 {
		c.CloseRow(bank)
	}
	c.openRow[bank] = row
	atomic.AddInt64(&c.stats.RowActivations, 1)
}

// CloseRow closes the bank's open row, draining every nonempty EUR
// register belonging to it into the row's code region (Fig 11: "when
// receiving a row close request, an NVRAM chip must first drain the
// coalesced ECC updates").
//
//chipkill:noalloc
func (c *Chip) CloseRow(bank int) {
	if bank < 0 || bank >= c.geom.Banks {
		panic(fmt.Sprintf("nvram: bank %d out of range", bank))
	}
	row := c.openRow[bank]
	if row < 0 {
		return
	}
	for v := 0; v < c.geom.VLEWsPerRow(); v++ {
		idx := c.eurIndex(bank, v)
		if !c.eurSet[idx] {
			continue
		}
		c.drainSlot(idx, bank, row, v)
	}
	c.openRow[bank] = -1
	atomic.AddInt64(&c.stats.RowCloses, 1)
}

// CloseAllRows closes every bank's open row; used before scrubbing so that
// stored code bits are consistent with stored data.
func (c *Chip) CloseAllRows() {
	for b := 0; b < c.geom.Banks; b++ {
		c.CloseRow(b)
	}
}

// ReadVLEW returns copies of a VLEW's data and code bytes. Pending EUR
// updates for that VLEW are drained first so the returned pair is
// internally consistent. A failed chip returns garbage. Safe for
// concurrent use (see the Chip concurrency contract).
func (c *Chip) ReadVLEW(bank, row, v int) (data, code []byte) {
	data = make([]byte, c.geom.VLEWDataBytes)
	code = make([]byte, c.geom.VLEWCodeBytes)
	c.ReadVLEWInto(data, code, bank, row, v)
	return data, code
}

// ReadVLEWInto is ReadVLEW without the two per-call allocations: it fills
// caller-owned data (VLEWDataBytes) and code (VLEWCodeBytes) buffers. The
// scrub loops and the controller's VLEW-fallback correction path reuse one
// pair of buffers across an entire pass.
//
//chipkill:noalloc
func (c *Chip) ReadVLEWInto(data, code []byte, bank, row, v int) {
	if len(data) != c.geom.VLEWDataBytes || len(code) != c.geom.VLEWCodeBytes {
		panic("nvram: ReadVLEWInto size mismatch")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	base := c.rowBase(bank, row)
	if v < 0 || v >= c.geom.VLEWsPerRow() {
		panic(fmt.Sprintf("nvram: VLEW index %d out of range", v))
	}
	if c.failed {
		atomic.AddInt64(&c.stats.FailedAccesses, 1)
		c.rng.Read(data)
		c.rng.Read(code)
		return
	}
	if c.openRow[bank] == row {
		idx := c.eurIndex(bank, v)
		if c.eurSet[idx] {
			c.drainSlot(idx, bank, row, v)
		}
	}
	copy(data, c.cells[base+v*c.geom.VLEWDataBytes:])
	copy(code, c.vlewCode(bank, row, v))
}

// WriteVLEW overwrites a VLEW's data and code regions directly; used by
// boot-time scrub write-back and ECC leveling. Safe for concurrent use
// (see the Chip concurrency contract).
func (c *Chip) WriteVLEW(bank, row, v int, data, code []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	base := c.rowBase(bank, row)
	if len(data) != c.geom.VLEWDataBytes || len(code) != c.geom.VLEWCodeBytes {
		panic("nvram: WriteVLEW size mismatch")
	}
	atomic.AddInt64(&c.stats.RawWrites, 1)
	if c.failed {
		return
	}
	// An EUR slot is addressed by (bank, vlew) and belongs to the bank's
	// OPEN row. Discard it only when overwriting that row's word; writing
	// a closed row (patrol fixing a cold VLEW while demand traffic holds a
	// different row open) must leave the open row's pending code update
	// armed, or its VLEW is left with stale code bits.
	if c.openRow[bank] == row {
		c.clearSlot(c.eurIndex(bank, v))
	}
	copy(c.cells[base+v*c.geom.VLEWDataBytes:], data)
	c.applyStuck(base+v*c.geom.VLEWDataBytes, len(data))
	copy(c.vlewCode(bank, row, v), code)
	atomic.AddInt64(&c.stats.BitsWritten, int64(8*(len(data)+len(code))))
	c.rowWear[bank*c.geom.RowsPerBank+row]++
}

// WriteVLEWRow overwrites several VLEWs of one row in a single locked
// operation — the scrubs' row-batched write-back. vs lists the VLEW
// indices to write; datas[i] and codes[i] hold the contents for vs[i].
// Counters advance exactly as len(vs) individual WriteVLEW calls would,
// so batching is invisible to stats-based oracles; only the per-VLEW
// lock/unlock cost is amortised.
func (c *Chip) WriteVLEWRow(bank, row int, vs []int, datas, codes [][]byte) {
	if len(vs) != len(datas) || len(vs) != len(codes) {
		panic("nvram: WriteVLEWRow length mismatch")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	base := c.rowBase(bank, row)
	for i, v := range vs {
		data, code := datas[i], codes[i]
		if v < 0 || v >= c.geom.VLEWsPerRow() {
			panic(fmt.Sprintf("nvram: VLEW index %d out of range", v))
		}
		if len(data) != c.geom.VLEWDataBytes || len(code) != c.geom.VLEWCodeBytes {
			panic("nvram: WriteVLEWRow size mismatch")
		}
		atomic.AddInt64(&c.stats.RawWrites, 1)
		if c.failed {
			continue
		}
		if c.openRow[bank] == row { // see WriteVLEW: the slot is the open row's
			c.clearSlot(c.eurIndex(bank, v))
		}
		copy(c.cells[base+v*c.geom.VLEWDataBytes:], data)
		c.applyStuck(base+v*c.geom.VLEWDataBytes, len(data))
		copy(c.vlewCode(bank, row, v), code)
		atomic.AddInt64(&c.stats.BitsWritten, int64(8*(len(data)+len(code))))
		c.rowWear[bank*c.geom.RowsPerBank+row]++
	}
}

// InjectRetentionErrors flips stored bits across the whole array (data and
// code regions) with the given per-bit probability, modelling errors
// accumulated since the last refresh. The number of flips is sampled
// binomially and positions are uniform; it returns the number of bits
// flipped. Pending EUR state is unaffected (registers are SRAM).
func (c *Chip) InjectRetentionErrors(rber float64) int {
	if c.failed || rber <= 0 {
		return 0
	}
	totalBits := int64(len(c.cells)) * 8
	flips := sampleBinomial(c.rng, totalBits, rber)
	for i := int64(0); i < flips; i++ {
		p := c.rng.Int63n(totalBits)
		c.cells[p/8] ^= 1 << uint(p%8)
	}
	atomic.AddInt64(&c.stats.BitErrorsInjected, flips)
	return int(flips)
}

// WearOutBit makes one data bit permanently stuck at its current value
// (the dominant NVRAM wear failure mode [86]): subsequent writes cannot
// change it, so a write-then-verify read exposes the block as worn.
func (c *Chip) WearOutBit(bank, row, byteOff int, bit uint) {
	base := c.rowBase(bank, row)
	if byteOff < 0 || byteOff >= c.geom.RowDataBytes {
		panic(fmt.Sprintf("nvram: WearOutBit offset %d outside row data", byteOff))
	}
	idx := base + byteOff
	mask := byte(1 << (bit % 8))
	sc := c.stuck[idx]
	sc.mask |= mask
	sc.value = (sc.value &^ mask) | (c.cells[idx] & mask)
	c.stuck[idx] = sc
}

// applyStuck re-imposes stuck cells over a just-written range.
func (c *Chip) applyStuck(start, n int) {
	if len(c.stuck) == 0 {
		return
	}
	for i := start; i < start+n; i++ {
		if sc, ok := c.stuck[i]; ok {
			c.cells[i] = (c.cells[i] &^ sc.mask) | sc.value
		}
	}
}

// WriteDataRaw overwrites data bytes without touching VLEW code bits.
// It exists for controllers that manage code bits themselves — notably
// degraded-mode operation (Sec V-E), where the per-chip VLEW slots are
// repurposed for rank-striped VLEWs that an individual chip cannot
// maintain.
func (c *Chip) WriteDataRaw(bank, row, off int, data []byte) {
	base := c.rowBase(bank, row)
	if off < 0 || off+len(data) > c.geom.RowDataBytes {
		panic(fmt.Sprintf("nvram: raw write [%d,%d) outside row data %d", off, off+len(data), c.geom.RowDataBytes))
	}
	atomic.AddInt64(&c.stats.RawWrites, 1)
	if c.failed {
		return
	}
	copy(c.cells[base+off:], data)
	c.applyStuck(base+off, len(data))
	atomic.AddInt64(&c.stats.BitsWritten, int64(8*len(data)))
	c.rowWear[bank*c.geom.RowsPerBank+row]++
}

// XORCode XORs delta into a VLEW code slot; the degraded-mode
// controller's code-maintenance primitive.
func (c *Chip) XORCode(bank, row, v int, delta []byte) {
	if v < 0 || v >= c.geom.VLEWsPerRow() {
		panic(fmt.Sprintf("nvram: VLEW index %d out of range", v))
	}
	if len(delta) > c.geom.VLEWCodeBytes {
		panic("nvram: code delta too long")
	}
	if c.failed {
		return
	}
	gf.XORBytes(c.vlewCode(bank, row, v), delta)
	atomic.AddInt64(&c.stats.BitsWritten, int64(8*len(delta)))
}

// ReadCode returns a copy of a VLEW code slot.
func (c *Chip) ReadCode(bank, row, v int) []byte {
	if v < 0 || v >= c.geom.VLEWsPerRow() {
		panic(fmt.Sprintf("nvram: VLEW index %d out of range", v))
	}
	out := make([]byte, c.geom.VLEWCodeBytes)
	if c.failed {
		atomic.AddInt64(&c.stats.FailedAccesses, 1)
		c.mu.Lock()
		c.rng.Read(out)
		c.mu.Unlock()
		return out
	}
	copy(out, c.vlewCode(bank, row, v))
	return out
}

// FlipDataBit flips one stored data bit directly in the array, without
// updating VLEW code bits — a targeted fault-injection hook complementing
// the statistical InjectRetentionErrors. byteOff addresses the row's data
// region; bit selects the bit within that byte.
func (c *Chip) FlipDataBit(bank, row, byteOff int, bit uint) {
	base := c.rowBase(bank, row)
	if byteOff < 0 || byteOff >= c.geom.RowDataBytes {
		panic(fmt.Sprintf("nvram: FlipDataBit offset %d outside row data", byteOff))
	}
	if c.failed {
		return
	}
	c.cells[base+byteOff] ^= 1 << (bit % 8)
	atomic.AddInt64(&c.stats.BitErrorsInjected, 1)
}

// FlipCodeBit flips one stored bit of a VLEW code slot directly in the
// array, without touching data bits — the code-region counterpart of
// FlipDataBit, letting fault campaigns target each region (data, code,
// parity-chip data) independently. byteOff addresses the VLEW's code
// slot; bit selects the bit within that byte.
func (c *Chip) FlipCodeBit(bank, row, v, byteOff int, bit uint) {
	if v < 0 || v >= c.geom.VLEWsPerRow() {
		panic(fmt.Sprintf("nvram: FlipCodeBit VLEW index %d out of range", v))
	}
	if byteOff < 0 || byteOff >= c.geom.VLEWCodeBytes {
		panic(fmt.Sprintf("nvram: FlipCodeBit offset %d outside code slot (%dB)", byteOff, c.geom.VLEWCodeBytes))
	}
	if c.failed {
		return
	}
	c.vlewCode(bank, row, v)[byteOff] ^= 1 << (bit % 8)
	atomic.AddInt64(&c.stats.BitErrorsInjected, 1)
}

// RowWear returns the write count of one row.
func (c *Chip) RowWear(bank, row int) int64 {
	c.checkAddr(bank, row)
	return c.rowWear[bank*c.geom.RowsPerBank+row]
}

// sampleBinomial draws Binomial(n, p) using a normal approximation for
// large means and direct Bernoulli summation for small ones.
func sampleBinomial(rng *rand.Rand, n int64, p float64) int64 {
	mean := float64(n) * p
	if mean < 50 {
		// Poisson-style inversion: for tiny p the count is small.
		count := int64(0)
		// Sample gaps between successes geometrically.
		if p <= 0 {
			return 0
		}
		pos := int64(0)
		for {
			// Geometric skip: number of failures before next success.
			u := rng.Float64()
			skip := int64(math.Log(u) / math.Log1p(-p))
			pos += skip + 1
			if pos > n {
				return count
			}
			count++
		}
	}
	sd := math.Sqrt(mean * (1 - p))
	v := rng.NormFloat64()*sd + mean
	if v < 0 {
		return 0
	}
	if v > float64(n) {
		return n
	}
	return int64(v + 0.5)
}
