package guard

import (
	"bytes"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	reg := NewRegion(4096)
	j, rec, err := Open(reg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Active || rec.Done || rec.LastBand != -1 || rec.PatrolPos != 0 {
		t.Fatalf("fresh region recovered %+v", rec)
	}
	if err := j.AppendStart(3); err != nil {
		t.Fatal(err)
	}
	wal0 := bytes.Repeat([]byte{0xAB}, 256)
	wal1 := bytes.Repeat([]byte{0xCD}, 256)
	if err := j.AppendBand(0, wal0); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendBand(1, wal1); err != nil {
		t.Fatal(err)
	}
	j.SavePatrol(77)

	_, rec, err = Open(reg)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Active || rec.Done || rec.Chip != 3 {
		t.Fatalf("recovered %+v, want active chip 3", rec)
	}
	if rec.LastBand != 1 || !bytes.Equal(rec.BandWAL, wal1) {
		t.Fatalf("recovered band %d (wal ok=%v), want band 1", rec.LastBand, bytes.Equal(rec.BandWAL, wal1))
	}
	if rec.PatrolPos != 77 {
		t.Fatalf("patrol pos %d, want 77", rec.PatrolPos)
	}

	// Reopen returns a journal positioned to continue: complete the
	// migration and recover Done.
	j2, _, err := Open(reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.AppendDone(); err != nil {
		t.Fatal(err)
	}
	_, rec, err = Open(reg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Active || !rec.Done || rec.Chip != 3 || rec.LastBand != 1 {
		t.Fatalf("after done: recovered %+v", rec)
	}
}

func TestJournalTornBandRecord(t *testing.T) {
	for keep := 0; keep < 40; keep += 7 {
		reg := NewRegion(4096)
		j, _, err := Open(reg)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.AppendStart(2); err != nil {
			t.Fatal(err)
		}
		if err := j.AppendBand(0, bytes.Repeat([]byte{1}, 256)); err != nil {
			t.Fatal(err)
		}
		reg.TearNextWrite(keep) // band 1's record tears after `keep` bytes
		if err := j.AppendBand(1, bytes.Repeat([]byte{2}, 256)); err == nil {
			t.Fatal("torn append reported success")
		}
		if !reg.Crashed() {
			t.Fatal("tear did not fire")
		}
		reg.Reboot()
		_, rec, err := Open(reg)
		if err != nil {
			t.Fatal(err)
		}
		if !rec.Active || rec.Chip != 2 {
			t.Fatalf("keep=%d: recovered %+v", keep, rec)
		}
		if rec.LastBand != 0 {
			t.Fatalf("keep=%d: torn band accepted, LastBand=%d", keep, rec.LastBand)
		}
	}
}

func TestJournalBitFlippedTail(t *testing.T) {
	reg := NewRegion(4096)
	j, _, err := Open(reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendStart(1); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendBand(0, bytes.Repeat([]byte{9}, 256)); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendBand(1, bytes.Repeat([]byte{8}, 256)); err != nil {
		t.Fatal(err)
	}
	// Flip a bit inside the last record's payload: its CRC fails, so
	// recovery falls back to band 0.
	reg.Bytes()[logStart+2*(recHeaderSize+recTrailerSize)+1+4+260+100] ^= 0x10
	_, rec, err := Open(reg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.LastBand != 0 {
		t.Fatalf("bit-flipped band accepted, LastBand=%d", rec.LastBand)
	}
}

func TestPatrolSlotAlternation(t *testing.T) {
	reg := NewRegion(4096)
	j, _, err := Open(reg)
	if err != nil {
		t.Fatal(err)
	}
	j.SavePatrol(10)
	j.SavePatrol(20)
	j.SavePatrol(30)
	// Torn save: the previous position must survive in the other slot.
	reg.TearNextWrite(9)
	j.SavePatrol(40)
	reg.Reboot()
	_, rec, err := Open(reg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.PatrolPos != 30 {
		t.Fatalf("patrol pos after torn save = %d, want 30", rec.PatrolPos)
	}
	// And saving keeps working after reopen.
	j2, _, err := Open(reg)
	if err != nil {
		t.Fatal(err)
	}
	j2.SavePatrol(50)
	if _, rec, _ := Open(reg); rec.PatrolPos != 50 {
		t.Fatalf("patrol pos = %d, want 50", rec.PatrolPos)
	}
}

func TestJournalFull(t *testing.T) {
	reg := NewRegion(logStart + 40)
	j, _, err := Open(reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendStart(0); err != nil {
		t.Fatal(err)
	}
	err = j.AppendBand(0, bytes.Repeat([]byte{1}, 256))
	if err == nil {
		t.Fatal("append into full region succeeded")
	}
}
