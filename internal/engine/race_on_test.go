//go:build race

package engine

// raceEnabled reports whether the race detector is compiled in; the
// allocation pins skip under it because race instrumentation allocates.
const raceEnabled = true
