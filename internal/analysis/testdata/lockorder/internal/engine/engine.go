// Package engine is a miniature of the real engine's locking shape: a
// ranked per-shard mutex behind lockWrite/unlockWrite helpers and a
// scoped quiesce entry point.
package engine

import "sync"

type shard struct {
	//chipkill:lock engine.shard level=30 ranked
	mu sync.Mutex
}

// Engine fans demand traffic across shards.
type Engine struct {
	shards []*shard
}

// lockWrite opens a shard writer section.
//
//chipkill:locks engine.shard
func (s *shard) lockWrite() { s.mu.Lock() }

// unlockWrite closes it.
//
//chipkill:unlocks engine.shard
func (s *shard) unlockWrite() { s.mu.Unlock() }

// Quiesce runs f with every shard lock held, in ascending shard order.
//
//chipkill:lock engine.rank level=20
func (e *Engine) Quiesce(f func()) {
	for _, s := range e.shards {
		s.lockWrite()
	}
	f()
	for i := len(e.shards) - 1; i >= 0; i-- {
		e.shards[i].unlockWrite()
	}
}

// BadQuiesce takes the ranked shard locks in descending order — a
// deadlock against the ascending convention.
func (e *Engine) BadQuiesce() {
	for i := len(e.shards) - 1; i >= 0; i-- {
		e.shards[i].lockWrite() // want `descending loop`
	}
	for _, s := range e.shards {
		s.unlockWrite()
	}
}
