// Fleet supervision: one Tick fans out to every rank's guard supervisor
// (telemetry, probes, convictions — which call back into RepairChip),
// then runs the replication policy and the anti-entropy sweep. One
// goroutine owns the tick loop; demand traffic never calls in here.
package fleet

import (
	"errors"
	"fmt"

	"chipkillpm/internal/core"
	"chipkillpm/internal/guard"
)

// RankStats is one rank's slice of the fleet picture.
type RankStats struct {
	Rank   int
	Killed bool
	Guard  guard.Report
	Demand core.Stats
}

// Stats aggregates the fleet: demand totals across ranks, the
// replication tier's outcome counters, and every rank's guard report.
type Stats struct {
	Ranks      int
	RanksAlive int
	Blocks     int64 // fleet demand capacity

	ActiveReplicas  int   // bands currently replicated and live
	BandsReplicated int64 // bands ever brought to active
	FailoverReads   int64 // reads served by a replica after primary death
	FailoverWrites  int64 // writes acknowledged on the replica alone
	ReadRepairs     int64 // primary DUEs healed from a replica
	DivergenceFixes int64 // replicas healed by the anti-entropy sweep
	ContainedDUEs   int64 // reads/writes refused with ErrRankFailed
	RejectedWrites  int64 // writes refused with ErrRankFailed
	RankKills       int64
	ChipRepairs     int64 // RepairChip completions (both paths)

	Demand  core.Stats // summed over ranks
	PerRank []RankStats
}

// Tick advances every live rank's guard supervisor one step, then the
// replication policy and the anti-entropy verifier. Call it from one
// supervision goroutine between demand batches, like guard.Supervisor's
// own Tick. A rank's tick error is returned (wrapped with the rank)
// after the remaining ranks still got their tick; journal append
// failures there are persistence-critical and must reach the operator.
func (f *Fleet) Tick() error {
	var firstErr error
	for _, n := range f.ranks {
		if n.killed.Load() {
			continue
		}
		if err := n.sup.Tick(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("fleet: rank %d tick: %w", n.idx, err)
		}
	}
	f.replicateTick()
	f.verifyTick()
	return firstErr
}

// Stats snapshots the fleet. Counters are individually atomic; a
// snapshot taken against live traffic is approximate in the usual
// monitoring sense.
func (f *Fleet) Stats() Stats {
	s := Stats{
		Ranks:           len(f.ranks),
		Blocks:          f.blocks,
		BandsReplicated: f.replications.Load(),
		FailoverReads:   f.failoverReads.Load(),
		FailoverWrites:  f.failoverWrites.Load(),
		ReadRepairs:     f.readRepairs.Load(),
		DivergenceFixes: f.divergenceFix.Load(),
		ContainedDUEs:   f.containedDUEs.Load(),
		RejectedWrites:  f.rejectedWrites.Load(),
		RankKills:       f.rankKills.Load(),
		ChipRepairs:     f.chipRepairs.Load(),
	}
	for b := range f.bands {
		bs := &f.bands[b]
		if bs.state.Load() == bandActive && !f.ranks[bs.replicaRank.Load()].killed.Load() {
			s.ActiveReplicas++
		}
	}
	for _, n := range f.ranks {
		rs := RankStats{
			Rank:   n.idx,
			Killed: n.killed.Load(),
			Guard:  n.sup.Report(),
			Demand: n.eng.Stats(),
		}
		s.Demand.Add(rs.Demand)
		s.PerRank = append(s.PerRank, rs)
	}
	s.RanksAlive = s.Ranks
	for _, pr := range s.PerRank {
		if pr.Killed {
			s.RanksAlive--
		}
	}
	return s
}

// Contained reports whether an error is a contained fleet failure (a
// reported DUE by construction) rather than an unexpected fault.
func Contained(err error) bool {
	return errors.Is(err, ErrRankFailed) || errors.Is(err, ErrNoReplica)
}
