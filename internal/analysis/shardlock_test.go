package analysis_test

import (
	"testing"

	"chipkillpm/internal/analysis"
	"chipkillpm/internal/analysis/analysistest"
)

func TestShardLock(t *testing.T) {
	analysistest.Run(t, "testdata/shardlock", analysis.ShardLock)
}
