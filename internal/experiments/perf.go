package experiments

import (
	"chipkillpm/internal/cache"
	"chipkillpm/internal/config"
	"chipkillpm/internal/memctrl"
	"chipkillpm/internal/nvram"
	"chipkillpm/internal/reliability"
	"chipkillpm/internal/sim"
	"chipkillpm/internal/stats"
	"chipkillpm/internal/trace"
)

func relMiscorrection(t int) reliability.RSMiscorrection {
	return reliability.RSMiscorrection{K: 64, R: 8, T: t, RBER: 2e-4}
}

func relFallback(t int) float64 {
	return reliability.ProposalFallbackRate(64, 8, t, 2e-4)
}

func proposalMode0() memctrl.Mode { return memctrl.ProposalMode(0) }

// PerfOptions sizes the simulation campaign.
type PerfOptions struct {
	Instructions int64
	Warmup       int64
	Seed         int64
}

// DefaultPerf returns the budget used by cmd/experiments; tests use a
// smaller one.
func DefaultPerf() PerfOptions {
	return PerfOptions{Instructions: 2_000_000, Warmup: 600_000, Seed: 7}
}

// RunComparisons executes the paper's three-pass evaluation for every
// workload under one NVRAM technology (Figs 16/17, with Figs 10, 14, 15
// and 18 as by-products).
func RunComparisons(tech nvram.Tech, po PerfOptions) ([]sim.Comparison, error) {
	var out []sim.Comparison
	for _, p := range trace.Workloads() {
		opt := sim.DefaultOptions(tech, po.Seed)
		opt.Instructions = po.Instructions
		opt.Warmup = po.Warmup
		cmp, err := sim.Compare(p, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, cmp)
	}
	return out, nil
}

// PerfTable renders Fig 16 (ReRAM) or Fig 17 (PCM): performance of the
// proposal normalized to the bit-error-correction baseline.
func PerfTable(cmps []sim.Comparison, tech nvram.Tech) *stats.Table {
	tab := &stats.Table{Header: []string{"workload", "suite", "baseline IPC", "proposal IPC", "normalized"}}
	var norms []float64
	for _, c := range cmps {
		tab.AddRow(c.Workload, c.Class.String(),
			f("%.3f", c.Baseline.IPC), f("%.3f", c.Proposal.IPC), f("%.3f", c.Normalized))
		norms = append(norms, c.Normalized)
	}
	tab.AddRow("GEOMEAN ("+tech.Name+")", "", "", "", f("%.3f", stats.GeoMean(norms)))
	return tab
}

// Fig10Table renders the dirty-PM cacheline occupancy per workload.
func Fig10Table(cmps []sim.Comparison) *stats.Table {
	tab := &stats.Table{Header: []string{"workload", "dirty-PM cacheline fraction", "OMV fraction of LLC"}}
	var m stats.Mean
	for _, c := range cmps {
		tab.AddRow(c.Workload, f("%.2f%%", 100*c.Proposal.DirtyPMFrac), f("%.2f%%", 100*c.Proposal.OMVFrac))
		m.Add(c.Proposal.DirtyPMFrac)
	}
	tab.AddRow("AVERAGE", f("%.2f%%", 100*m.Value()), "")
	return tab
}

// Fig14Table renders the off-chip access breakdown per workload.
func Fig14Table(cmps []sim.Comparison) *stats.Table {
	tab := &stats.Table{Header: []string{"workload", "PM reads", "PM writes", "DRAM reads", "DRAM writes"}}
	for _, c := range cmps {
		b := c.Baseline
		tab.AddRow(c.Workload,
			f("%.0f%%", 100*b.PMReadFrac), f("%.0f%%", 100*b.PMWriteFrac),
			f("%.0f%%", 100*b.DRAMReadFrac), f("%.0f%%", 100*b.DRAMWriteFrac))
	}
	return tab
}

// Fig15Table renders the measured C factor per workload.
func Fig15Table(cmps []sim.Comparison) *stats.Table {
	tab := &stats.Table{Header: []string{"workload", "C (VLEW code writes / PM writes)", "tWR inflation"}}
	for _, c := range cmps {
		cf := c.CPass.CFactor
		tab.AddRow(c.Workload, f("%.3f", cf), f("%.2fx + 20ns", 1+(33.0/8.0)*cf))
	}
	return tab
}

// Fig18Table renders the OMV LLC hit rate per workload.
func Fig18Table(cmps []sim.Comparison) *stats.Table {
	tab := &stats.Table{Header: []string{"workload", "OMV served from LLC", "OMV fetches from memory"}}
	var m stats.Mean
	for _, c := range cmps {
		tab.AddRow(c.Workload, f("%.1f%%", 100*c.Proposal.OMVHitRate),
			f("%d", c.Proposal.Mem.OMVFetches))
		m.Add(c.Proposal.OMVHitRate)
	}
	tab.AddRow("AVERAGE", f("%.1f%%", 100*m.Value()), "")
	return tab
}

// TableIConfig renders the simulated system parameters (Table I).
func TableIConfig() *stats.Table {
	s := config.TableI()
	tab := &stats.Table{Header: []string{"parameter", "value"}}
	tab.AddRow("cores", f("%d x %.0f GHz, %d-issue OOO, %d-entry ROB",
		s.CPU.Cores, s.CPU.FreqGHz, s.CPU.IssueWidth, s.CPU.ROBEntries))
	tab.AddRow("L1", f("%d-way, %d KB, %d cycle", s.L1.Ways, s.L1.SizeBytes>>10, s.L1.LatencyCycle))
	tab.AddRow("LLC", f("%d-way, %d MB, %d cycles", s.LLC.Ways, s.LLC.SizeBytes>>20, s.LLC.LatencyCycle))
	tab.AddRow("controller", f("%d read / %d write buffer, closed page (%.0f ns), FR-FCFS",
		s.Controller.ReadQueue, s.Controller.WriteQueue, s.Controller.ClosePageNS))
	tab.AddRow("memory", f("one %.0f MT/s channel, 1 DRAM + 1 PM rank, %d banks/rank",
		s.DRAM.BusMTps, s.BanksPerRank))
	return tab
}

// AblationOMV compares the proposal's write path with and without the
// OMV-preserving LLC: without it, every persistent-memory write fetches
// its old value from memory (the 200% write overhead of Fig 5).
func AblationOMV(tech nvram.Tech, po PerfOptions, workload string) (*stats.Table, error) {
	p, ok := trace.FindWorkload(workload)
	if !ok {
		p = trace.Workloads()[0]
	}
	tab := &stats.Table{Header: []string{"configuration", "IPC", "OMV fetches", "PM reads"}}

	run := func(label string, omv bool) error {
		opt := sim.DefaultOptions(tech, po.Seed)
		opt.Instructions = po.Instructions
		opt.Warmup = po.Warmup
		opt.Mode = proposalMode0()
		if omv {
			opt.OMV = cache.OMVPreserve
		} else {
			opt.OMV = cache.OMVAlwaysFetch
		}
		res, err := sim.Run(p, opt)
		if err != nil {
			return err
		}
		tab.AddRow(label, f("%.3f", res.IPC), f("%d", res.Mem.OMVFetches), f("%d", res.Mem.PMReads))
		return nil
	}
	if err := run("OMV preserved in LLC (proposal)", true); err != nil {
		return nil, err
	}
	if err := run("no OMV cache (fetch old value from memory)", false); err != nil {
		return nil, err
	}
	return tab, nil
}

// AblationPagePolicy compares the closed-page policy against an
// effectively open-page one for a row-local workload.
func AblationPagePolicy(tech nvram.Tech, po PerfOptions, workload string) (*stats.Table, error) {
	p, ok := trace.FindWorkload(workload)
	if !ok {
		p = trace.Workloads()[0]
	}
	tab := &stats.Table{Header: []string{"row policy", "baseline IPC", "row hits", "row misses"}}
	for _, pol := range []struct {
		label   string
		closeNS float64
	}{
		{"closed page (50 ns)", 50},
		{"open page (100 us)", 100_000},
	} {
		opt := sim.DefaultOptions(tech, po.Seed)
		opt.Instructions = po.Instructions
		opt.Warmup = po.Warmup
		opt.System.Controller.ClosePageNS = pol.closeNS
		res, err := sim.Run(p, opt)
		if err != nil {
			return nil, err
		}
		tab.AddRow(pol.label, f("%.3f", res.IPC), f("%d", res.Mem.RowHits), f("%d", res.Mem.RowMisses))
	}
	return tab, nil
}

// AblationEUR quantifies the EUR's coalescing: without it, every PM write
// updates VLEW code bits immediately (C = 1 by construction), so the tWR
// inflation is maximal. The table contrasts measured-C inflation against
// the EUR-less worst case per workload.
func AblationEUR(cmps []sim.Comparison) *stats.Table {
	tab := &stats.Table{Header: []string{"workload", "C with EUR", "tWR with EUR", "tWR without EUR (C=1)"}}
	for _, c := range cmps {
		cf := c.CPass.CFactor
		tab.AddRow(c.Workload, f("%.3f", cf),
			f("%.2fx", 1+(33.0/8.0)*cf), f("%.2fx", 1+33.0/8.0))
	}
	return tab
}
