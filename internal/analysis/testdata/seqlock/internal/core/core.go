// Package core is a stub of the real internal/core: the seqlock
// analyzer matches the policed mutators by package-path suffix, so this
// module exercises it without importing the repo.
package core

type Controller struct{}

func (c *Controller) WriteBlock(block int64, data []byte) error { return nil }
func (c *Controller) DisableBlock(block int64)                  {}
func (c *Controller) BootScrub() int                            { return 0 }
func (c *Controller) PatrolScrub(pos int64, n int) (int64, int64) {
	return pos, 0
}

// BeginMigration only sets controller routing state, which lock-free
// readers never consult: deliberately not policed.
func (c *Controller) BeginMigration(chip int, cursor int64) error { return nil }

// ReadBlockInto is demand-path: not policed.
func (c *Controller) ReadBlockInto(block int64, dst []byte) error { return nil }
