// Package guard is the runtime health supervisor: it closes the paper's
// detect → contain → repair loop under live engine traffic.
//
// The supervisor watches the controller's per-chip error telemetry,
// discriminates transient faults from permanent chip failure with a
// bounded retry-with-backoff probe sequence, and on a chip-kill verdict
// performs the Sec V-E remap as an *online* migration: a cursor walks the
// rank band by band under the engine's ordinary shard locks while demand
// traffic keeps flowing. Progress is journaled in a small crash-safe
// recovery journal (simulated persistent region, torn-write detection via
// checksummed records), so a crash mid-migration resumes at boot instead
// of leaving a half-striped rank. The supervisor also owns patrol-scrub
// scheduling, driving increments through the engine between demand
// batches. DESIGN.md §10 documents the state machine and record format.
package guard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Journal region layout:
//
//	[ 0, 32): patrol slot A ┐ two alternating fixed slots for the patrol
//	[32, 64): patrol slot B ┘ position (torn write leaves the other valid)
//	[64,  …): append-only migration log
//
// Patrol slot: magic(1) seq(8) pos(8) crc32(4), zero-padded to 32.
//
// Log record: magic(1) type(1) len(2,LE) seq(8,LE) payload(len) crc32(4).
// The CRC covers everything before it. seq increases by exactly 1 from
// record to record; recBand payloads carry a strictly increasing band
// index. Decoding stops at the first byte that violates any of this, so
// a torn tail (or bit-flipped garbage) can only *shorten* the recovered
// history, never extend or redirect it.
const (
	patrolSlotSize = 32
	logStart       = 2 * patrolSlotSize

	recMagic    = 0xA7
	patrolMagic = 0x5B

	recHeaderSize  = 1 + 1 + 2 + 8 // magic, type, len, seq
	recTrailerSize = 4             // crc32
)

// Record types.
const (
	recStart = 0x01 // payload: chip(1) — migration of this chip began
	recBand  = 0x02 // payload: band(4,LE) + the band's failed-chip slices
	recDone  = 0x03 // payload: empty — migration complete, layout striped
)

// maxPayload bounds a record payload; larger lengths are torn garbage by
// definition (a band WAL is bandBlocks * chipAccessBytes = 256 bytes in
// the paper's geometry).
const maxPayload = 4096

// ErrJournalFull reports an append beyond the region's capacity.
var ErrJournalFull = errors.New("guard: journal region full")

// Region simulates a small persistent memory region with crash-under-
// write semantics: TearNextWrite makes the next write persist only a
// prefix, after which the region acts crashed — later writes are lost —
// until Reboot.
type Region struct {
	buf     []byte
	tearAt  int // -1: no pending tear
	crashed bool
}

// NewRegion allocates a zeroed persistent region of the given size.
func NewRegion(size int) *Region {
	return &Region{buf: make([]byte, size), tearAt: -1}
}

// Size returns the region's capacity.
func (r *Region) Size() int { return len(r.buf) }

// Bytes exposes the raw persisted bytes — for recovery scans, fuzzing,
// and fault injection. Mutating it models external corruption.
func (r *Region) Bytes() []byte { return r.buf }

// TearNextWrite arms the crash hook: the next Write persists only its
// first keep bytes, and every write after that is lost entirely, until
// Reboot clears the crashed state. This models power loss mid-store plus
// the process dying with it.
func (r *Region) TearNextWrite(keep int) {
	r.tearAt = keep
}

// Reboot clears the crashed state; the persisted bytes are whatever
// survived.
func (r *Region) Reboot() {
	r.crashed = false
	r.tearAt = -1
}

// Crashed reports whether the crash hook has fired.
func (r *Region) Crashed() bool { return r.crashed }

// Write persists data at off, honouring a pending tear.
func (r *Region) Write(off int, data []byte) {
	if off < 0 || off+len(data) > len(r.buf) {
		panic(fmt.Sprintf("guard: region write [%d,%d) outside [0,%d)", off, off+len(data), len(r.buf)))
	}
	if r.crashed {
		return
	}
	if r.tearAt >= 0 {
		keep := r.tearAt
		if keep > len(data) {
			keep = len(data)
		}
		copy(r.buf[off:], data[:keep])
		r.crashed = true
		r.tearAt = -1
		return
	}
	copy(r.buf[off:], data)
}

// Journal is the supervisor's crash-safe progress log over a Region.
type Journal struct {
	region    *Region
	off       int    // next log append offset
	seq       uint64 // next record sequence number
	patrolSeq uint64 // next patrol-slot sequence number
}

// Recovered is what a journal scan finds at boot.
type Recovered struct {
	// Active reports a migration that started but has no recDone record.
	Active bool
	// Done reports a completed migration: the rank is striped.
	Done bool
	// Chip is the migrating/migrated chip (valid when Active or Done).
	Chip int
	// LastBand is the highest journaled band index, -1 if none. The
	// band's rewrite may have torn — BandWAL holds its write-ahead image
	// for redo.
	LastBand int64
	// BandWAL is the last band's journaled failed-chip slices.
	BandWAL []byte
	// PatrolPos is the last durably saved patrol position (0 if none).
	PatrolPos int64
}

// Open scans a region and returns a journal positioned after the last
// valid record, plus what it recovered. Torn or corrupted tails are
// discarded; they can only shorten history (see the format note above).
func Open(region *Region) (*Journal, Recovered, error) {
	j := &Journal{region: region}
	var rec Recovered
	rec.LastBand = -1
	if len(region.buf) < logStart {
		return nil, rec, fmt.Errorf("guard: journal region of %d bytes is smaller than the %d-byte header", len(region.buf), logStart)
	}

	// Patrol slots: take the valid slot with the higher sequence.
	var bestSeq uint64
	for slot := 0; slot < 2; slot++ {
		if seq, pos, ok := decodePatrolSlot(region.buf[slot*patrolSlotSize : (slot+1)*patrolSlotSize]); ok && seq >= bestSeq {
			bestSeq, rec.PatrolPos = seq, pos
			j.patrolSeq = seq + 1
		}
	}

	off := logStart
	wantSeq := uint64(0)
	lastBand := int64(-1)
	for {
		r, n, ok := decodeRecord(region.buf[off:], wantSeq)
		if !ok {
			break
		}
		switch r.typ {
		case recStart:
			if rec.Active || rec.Done {
				// One migration per journal: a second start is garbage.
				ok = false
			} else {
				rec.Active = true
				rec.Chip = int(r.payload[0])
			}
		case recBand:
			band := int64(binary.LittleEndian.Uint32(r.payload))
			if band <= lastBand || !rec.Active || rec.Done {
				// Non-monotonic band or band outside an active migration:
				// treat as torn garbage.
				ok = false
			} else {
				lastBand = band
				rec.LastBand = band
				rec.BandWAL = append(rec.BandWAL[:0], r.payload[4:]...)
			}
		case recDone:
			if !rec.Active {
				ok = false
			} else {
				rec.Active, rec.Done = false, true
			}
		}
		if !ok {
			break
		}
		off += n
		wantSeq++
	}
	j.off = off
	j.seq = wantSeq
	// Erase everything past the recovery point. A record appended after
	// recovery restarts the sequence from here; stale records from an
	// earlier journal life could otherwise sit beyond it with exactly the
	// sequence numbers the next scan expects and get resurrected into the
	// new history.
	if off < len(region.buf) {
		region.Write(off, make([]byte, len(region.buf)-off))
	}
	return j, rec, nil
}

type record struct {
	typ     byte
	seq     uint64
	payload []byte
}

// decodeRecord parses one record at the head of buf, validating magic,
// length bounds, CRC, sequence continuity, and type-specific payload
// shape. It returns ok=false on anything suspect.
func decodeRecord(buf []byte, wantSeq uint64) (r record, n int, ok bool) {
	if len(buf) < recHeaderSize+recTrailerSize {
		return r, 0, false
	}
	if buf[0] != recMagic {
		return r, 0, false
	}
	r.typ = buf[1]
	plen := int(binary.LittleEndian.Uint16(buf[2:4]))
	if plen > maxPayload {
		return r, 0, false
	}
	n = recHeaderSize + plen + recTrailerSize
	if len(buf) < n {
		return r, 0, false
	}
	r.seq = binary.LittleEndian.Uint64(buf[4:12])
	if r.seq != wantSeq {
		return r, 0, false
	}
	want := binary.LittleEndian.Uint32(buf[n-4 : n])
	if crc32.ChecksumIEEE(buf[:n-4]) != want {
		return r, 0, false
	}
	r.payload = buf[recHeaderSize : recHeaderSize+plen]
	switch r.typ {
	case recStart:
		if plen != 1 {
			return r, 0, false
		}
	case recBand:
		if plen < 4 {
			return r, 0, false
		}
	case recDone:
		if plen != 0 {
			return r, 0, false
		}
	default:
		return r, 0, false
	}
	return r, n, true
}

// append encodes and persists one record.
func (j *Journal) append(typ byte, payload []byte) error {
	n := recHeaderSize + len(payload) + recTrailerSize
	if j.off+n > len(j.region.buf) {
		return fmt.Errorf("%w: need %d bytes at %d of %d", ErrJournalFull, n, j.off, len(j.region.buf))
	}
	buf := make([]byte, n)
	buf[0] = recMagic
	buf[1] = typ
	binary.LittleEndian.PutUint16(buf[2:4], uint16(len(payload)))
	binary.LittleEndian.PutUint64(buf[4:12], j.seq)
	copy(buf[recHeaderSize:], payload)
	binary.LittleEndian.PutUint32(buf[n-4:], crc32.ChecksumIEEE(buf[:n-4]))
	j.region.Write(j.off, buf)
	if j.region.Crashed() {
		// Power died during (or before) this store: the caller must not
		// proceed as if the record were durable — in particular a band's
		// write-ahead image that tore must abort the band rewrite, keeping
		// the rank behind the journal, never ahead of it.
		return fmt.Errorf("guard: journal write of record %d torn: region crashed", j.seq)
	}
	j.off += n
	j.seq++
	return nil
}

// AppendStart journals the beginning of an online migration of chip.
func (j *Journal) AppendStart(chip int) error {
	return j.append(recStart, []byte{byte(chip)})
}

// AppendBand journals a band's write-ahead image: the failed-chip slices
// about to be remapped. Persisted *before* the band rewrite touches the
// rank, so a crash at any point of the rewrite is redoable.
func (j *Journal) AppendBand(band int64, failedSlices []byte) error {
	payload := make([]byte, 4+len(failedSlices))
	binary.LittleEndian.PutUint32(payload, uint32(band))
	copy(payload[4:], failedSlices)
	return j.append(recBand, payload)
}

// AppendDone journals migration completion.
func (j *Journal) AppendDone() error {
	return j.append(recDone, nil)
}

// SavePatrol durably stores the patrol position, alternating between the
// two fixed slots so a torn store leaves the previous position intact.
func (j *Journal) SavePatrol(pos int64) {
	buf := make([]byte, patrolSlotSize)
	buf[0] = patrolMagic
	binary.LittleEndian.PutUint64(buf[1:9], j.patrolSeq)
	binary.LittleEndian.PutUint64(buf[9:17], uint64(pos))
	binary.LittleEndian.PutUint32(buf[17:21], crc32.ChecksumIEEE(buf[:17]))
	j.region.Write(int(j.patrolSeq%2)*patrolSlotSize, buf)
	j.patrolSeq++
}

func decodePatrolSlot(buf []byte) (seq uint64, pos int64, ok bool) {
	if buf[0] != patrolMagic {
		return 0, 0, false
	}
	if crc32.ChecksumIEEE(buf[:17]) != binary.LittleEndian.Uint32(buf[17:21]) {
		return 0, 0, false
	}
	return binary.LittleEndian.Uint64(buf[1:9]), int64(binary.LittleEndian.Uint64(buf[9:17])), true
}
