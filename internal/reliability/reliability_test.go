package reliability

import (
	"math"
	"testing"
	"testing/quick"
)

// within reports whether got is within rel (fractional) of want.
func within(got, want, rel float64) bool {
	if want == 0 {
		return math.Abs(got) < rel
	}
	return math.Abs(got-want) <= rel*math.Abs(want)
}

func TestLogChoose(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 2, 10}, {10, 0, 1}, {10, 10, 1}, {72, 5, 13991544},
	}
	for _, c := range cases {
		got := math.Exp(LogChoose(c.n, c.k))
		if !within(got, c.want, 1e-9) {
			t.Errorf("C(%d,%d)=%.6g, want %g", c.n, c.k, got, c.want)
		}
	}
	if !math.IsInf(LogChoose(5, 6), -1) || !math.IsInf(LogChoose(5, -1), -1) {
		t.Error("out-of-range LogChoose should be -Inf")
	}
}

func TestBinomPMFSumsToOne(t *testing.T) {
	for _, p := range []float64{0.001, 0.3, 0.9} {
		sum := 0.0
		for k := 0; k <= 40; k++ {
			sum += BinomPMF(40, k, p)
		}
		if !within(sum, 1, 1e-12) {
			t.Errorf("p=%g: PMF sums to %.15f", p, sum)
		}
	}
}

func TestBinomPMFEdges(t *testing.T) {
	if BinomPMF(10, 0, 0) != 1 || BinomPMF(10, 3, 0) != 0 {
		t.Error("p=0 edge wrong")
	}
	if BinomPMF(10, 10, 1) != 1 || BinomPMF(10, 9, 1) != 0 {
		t.Error("p=1 edge wrong")
	}
	if BinomPMF(10, 11, 0.5) != 0 || BinomPMF(10, -1, 0.5) != 0 {
		t.Error("k out of range should be 0")
	}
}

func TestBinomTailMonotonicQuick(t *testing.T) {
	prop := func(kRaw uint8, pRaw uint16) bool {
		n := 100
		k := int(kRaw) % n
		p := float64(pRaw%1000) / 1000.0
		return BinomTail(n, k, p) >= BinomTail(n, k+1, p)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBinomTailEdges(t *testing.T) {
	if BinomTail(10, 0, 0.5) != 1 {
		t.Error("P[X>=0] != 1")
	}
	if BinomTail(10, 11, 0.5) != 0 {
		t.Error("P[X>=n+1] != 0")
	}
}

// --- Paper Sec IV-A: fraction of accesses containing bit errors ---

func TestFracAccessesWithErrors(t *testing.T) {
	// "Under 7e-5 RBER, 4% of accesses still contain bit error(s)".
	got := FracAccessesWithErrors(72*8, 7e-5)
	if !within(got, 0.04, 0.05) {
		t.Errorf("7e-5: %.4f, want ~0.04", got)
	}
	// "the RBER of 3-bit PCM increases to 2e-4, which causes 10.3% of
	// memory accesses to contain bit errors".
	got = FracAccessesWithErrors(72*8, 2e-4)
	if !within(got, 0.109, 0.08) {
		t.Errorf("2e-4: %.4f, want ~0.103-0.11", got)
	}
}

// --- Paper Sec III-A: BCH sizing ---

func TestMinBCHTPaperPoints(t *testing.T) {
	// 64B block at RBER 1e-3 needs 14-bit-EC BCH (28% storage cost).
	tEC, err := MinBCHT(512, 1e-3, TargetUE, 100)
	if err != nil {
		t.Fatal(err)
	}
	if tEC != 14 {
		t.Errorf("64B @ 1e-3: t=%d, want 14", tEC)
	}
	if cost := BCHStorageCost(512, 14); !within(cost, 0.2734, 1e-3) {
		t.Errorf("14-EC cost=%.4f, want 0.2734 (28%%)", cost)
	}
	// 256B VLEW at RBER 1e-3 needs 22-bit-EC BCH (33B of code bits).
	tEC, err = MinBCHT(2048, 1e-3, TargetUE, 100)
	if err != nil {
		t.Fatal(err)
	}
	if tEC != 22 {
		t.Errorf("256B @ 1e-3: t=%d, want 22", tEC)
	}
	if bits := tEC * 12; bits != 264 || (bits+7)/8 != 33 {
		t.Errorf("VLEW code bits = %d, want 264 (33B)", bits)
	}
}

func TestMinBCHTInfeasible(t *testing.T) {
	if _, err := MinBCHT(512, 0.4, 1e-15, 5); err == nil {
		t.Error("expected infeasible result")
	}
}

// --- Paper appendix: SDC (miscorrection) rates ---

func TestAppendixSDCRates(t *testing.T) {
	// t=4: Term A = 1.3e-7, Term B = 2.4e-4, SDC = 3.2e-11.
	m4 := RSMiscorrection{K: 64, R: 8, T: 4, RBER: 2e-4}
	if m4.NTh() != 5 {
		t.Errorf("t=4: nth=%d, want 5", m4.NTh())
	}
	if a := m4.TermA(); !within(a, 1.3e-7, 0.15) {
		t.Errorf("t=4 TermA=%.3g, want ~1.3e-7", a)
	}
	if b := m4.TermB(); !within(b, 2.4e-4, 0.1) {
		t.Errorf("t=4 TermB=%.3g, want ~2.4e-4", b)
	}
	if s := m4.SDCRate(); !within(s, 3.2e-11, 0.2) {
		t.Errorf("t=4 SDC=%.3g, want ~3.2e-11", s)
	}

	// t=2: Term A = 3.6e-11, Term B = 9.1e-12, SDC = 3.3e-22.
	m2 := RSMiscorrection{K: 64, R: 8, T: 2, RBER: 2e-4}
	if m2.NTh() != 7 {
		t.Errorf("t=2: nth=%d, want 7", m2.NTh())
	}
	if a := m2.TermA(); !within(a, 3.6e-11, 0.15) {
		t.Errorf("t=2 TermA=%.3g, want ~3.6e-11", a)
	}
	if b := m2.TermB(); !within(b, 9.1e-12, 0.1) {
		t.Errorf("t=2 TermB=%.3g, want ~9.1e-12", b)
	}
	if s := m2.SDCRate(); !within(s, 3.3e-22, 0.2) {
		t.Errorf("t=2 SDC=%.3g, want ~3.3e-22", s)
	}
}

func TestSDCAgainstTargets(t *testing.T) {
	// Sec V-C: t=4 SDC is ~3,000,000x above the 1e-17 target; t=2 is
	// several orders of magnitude below it.
	s4 := RSMiscorrection{K: 64, R: 8, T: 4, RBER: 2e-4}.SDCRate()
	if ratio := s4 / TargetSDC; ratio < 1e6 || ratio > 1e7 {
		t.Errorf("t=4 SDC/target = %.3g, want ~3e6", ratio)
	}
	s2 := RSMiscorrection{K: 64, R: 8, T: 2, RBER: 2e-4}.SDCRate()
	if s2 > TargetSDC*1e-3 {
		t.Errorf("t=2 SDC %.3g not far below target", s2)
	}
	// At 7e-5, t=4 is still ~18,000x above target.
	s4lo := RSMiscorrection{K: 64, R: 8, T: 4, RBER: 7e-5}.SDCRate()
	if ratio := s4lo / TargetSDC; ratio < 3e3 || ratio > 1e5 {
		t.Errorf("t=4 @7e-5 SDC/target = %.3g, want ~1.8e4", ratio)
	}
}

// --- Paper Sec V-A / Fig 4: storage costs ---

func TestProposalStorageCost(t *testing.T) {
	if c := ProposalStorageCost(); !within(c, 0.2699, 1e-3) {
		t.Errorf("proposal cost=%.4f, want 0.270 (27%%)", c)
	}
}

func TestVLEWSchemeCostPaperPoint(t *testing.T) {
	sc := VLEWSchemeCost(256, 1e-3)
	if !sc.Feasible || sc.T != 22 {
		t.Fatalf("VLEW(256B)@1e-3: %+v", sc)
	}
	if !within(sc.Cost, 0.27, 0.02) {
		t.Errorf("cost=%.4f, want ~0.27", sc.Cost)
	}
}

func TestFig4CostDecreasesWithWordLength(t *testing.T) {
	sweep := Fig4Sweep(1e-3, []int{64, 128, 256, 512, 1024, 2048, 4096})
	for i := 1; i < len(sweep); i++ {
		if !sweep[i].Feasible {
			t.Fatalf("infeasible point: %+v", sweep[i])
		}
		if sweep[i].Cost > sweep[i-1].Cost+1e-9 {
			t.Errorf("cost not monotonically decreasing: %dB %.3f -> %dB %.3f",
				sweep[i-1].WordBytes, sweep[i-1].Cost, sweep[i].WordBytes, sweep[i].Cost)
		}
	}
	// 64B words cost much more than 256B words (the reason VLEWs win).
	if sweep[0].Cost < 1.4*sweep[2].Cost {
		t.Errorf("64B (%.3f) should cost well above 256B (%.3f)", sweep[0].Cost, sweep[2].Cost)
	}
}

func TestChipkillViaStrongerBCHIsProhibitive(t *testing.T) {
	sc := ChipkillViaStrongerBCHCost(64, 64, 1e-3)
	if !sc.Feasible || sc.T != 78 {
		t.Fatalf("%+v", sc)
	}
	if !within(sc.Cost, 1.52, 0.01) {
		t.Errorf("78-EC cost=%.3f, want 1.52 (152%%)", sc.Cost)
	}
}

func TestFig2AllSchemesCostAbove50Percent(t *testing.T) {
	// Fig 2's message: every extended DRAM chipkill scheme costs >= ~69%
	// at RBER 1e-3, far above the proposal's 27%. Our reconstructions of
	// the baselines must all land well above the proposal.
	for _, sc := range Fig2Schemes(1e-3) {
		if !sc.Feasible {
			t.Errorf("%s infeasible at 1e-3", sc.Scheme)
			continue
		}
		if sc.Cost < 0.5 {
			t.Errorf("%s: cost %.3f unexpectedly below 50%%", sc.Scheme, sc.Cost)
		}
		t.Logf("%s: %s", sc.Scheme, sc.Detail)
	}
}

func TestFig2CostsGrowWithRBER(t *testing.T) {
	for _, build := range []func(float64) SchemeCost{
		func(r float64) SchemeCost { return XEDStyleCost(8, r) },
		func(r float64) SchemeCost { return XEDStyleCost(16, r) },
		func(r float64) SchemeCost { return DUOStyleCost(64, r) },
	} {
		prev := -1.0
		for _, rber := range []float64{1e-5, 1e-4, 1e-3} {
			sc := build(rber)
			if !sc.Feasible {
				t.Fatalf("%s infeasible at %g", sc.Scheme, rber)
			}
			if sc.Cost < prev {
				t.Errorf("%s: cost decreased with RBER", sc.Scheme)
			}
			prev = sc.Cost
		}
	}
}

func TestBitOnlyBCHPaperPoint(t *testing.T) {
	sc := BitOnlyBCHCost(64, 1e-3)
	if !sc.Feasible || sc.T != 14 {
		t.Fatalf("%+v", sc)
	}
	if !within(sc.Cost, 0.2734, 0.01) {
		t.Errorf("cost=%.4f, want ~0.2734", sc.Cost)
	}
}

// --- Fig 5 / Sec V-C bandwidth overheads ---

func TestVLEWGeometryPaperNumbers(t *testing.T) {
	g := PaperVLEW
	if g.BlocksSpanned() != 32 {
		t.Errorf("BlocksSpanned=%d, want 32", g.BlocksSpanned())
	}
	if g.CodeBlocks() != 5 {
		// 33B / 8B rounds up to 5 transfers; the paper approximates ~4.
		t.Errorf("CodeBlocks=%d, want 5 (paper approximates 4)", g.CodeBlocks())
	}
	if e := g.ExtraBlocksPerCorrection(); e != 36 {
		t.Errorf("ExtraBlocksPerCorrection=%d, want 36", e)
	}
}

func TestNaiveVLEWReadOverhead(t *testing.T) {
	// ~140% at 7e-5 and ~360% at 2e-4 (paper uses 35 extra blocks; our
	// geometry rounds the code bits to 5 transfers giving slightly more).
	got := NaiveVLEWReadOverhead(PaperVLEW, 7e-5, 72*8)
	if got < 1.2 || got > 1.6 {
		t.Errorf("7e-5: overhead=%.3f, want ~1.4", got)
	}
	got = NaiveVLEWReadOverhead(PaperVLEW, 2e-4, 72*8)
	if got < 3.2 || got > 4.2 {
		t.Errorf("2e-4: overhead=%.3f, want ~3.6", got)
	}
}

func TestNaiveVLEWWriteOverhead(t *testing.T) {
	if o := NaiveVLEWWriteOverhead(PaperVLEW, false); o < 4 || o > 5 {
		t.Errorf("processor-side encode: %.1f, want ~4 (400%%)", o)
	}
	if o := NaiveVLEWWriteOverhead(PaperVLEW, true); o != 2 {
		t.Errorf("in-chip encode: %.1f, want 2 (200%%)", o)
	}
}

func TestProposalFallbackRate(t *testing.T) {
	// Sec V-C: 0.018% of reads fall back to VLEW correction at 2e-4.
	got := ProposalFallbackRate(64, 8, 2, 2e-4)
	if !within(got, 1.8e-4, 0.25) {
		t.Errorf("fallback rate=%.3g, want ~1.8e-4", got)
	}
	// Read overhead 0.018% * 36 = ~0.6%.
	ov := ProposalReadOverhead(PaperVLEW, 64, 8, 2, 2e-4)
	if ov < 0.004 || ov > 0.01 {
		t.Errorf("read overhead=%.4f, want ~0.006", ov)
	}
}

func TestMultiErrorRSRate(t *testing.T) {
	// Sec V-E: ~1/200 of reads need multi-error RS correction at 2e-4.
	got := MultiErrorRSRate(64, 8, 2e-4)
	if !within(got, 1.0/200, 0.35) {
		t.Errorf("multi-error rate=%.4g, want ~0.005", got)
	}
}

func TestThresholdDistributionFig7(t *testing.T) {
	// Fig 7 basis: ">99.98% of accesses have two or fewer errors" at 2e-4,
	// over the 64B of data in a memory request.
	pByte := ByteErrorRate(2e-4, 8)
	atMost2 := 1 - BinomTail(64, 3, pByte)
	if atMost2 < 0.9998 {
		t.Errorf("P[<=2 errors]=%.6f, want > 0.9998", atMost2)
	}
	// And ~1.5e-7 of accesses contain five or more errors (the paper
	// quotes 1.5e-7; the 64..72-byte modelling choice moves it slightly).
	five := BinomTail(72, 5, pByte)
	if !within(five, 1.5e-7, 0.2) {
		t.Errorf("P[>=5]=%.3g, want ~1.5e-7", five)
	}
}

func TestScrubTime(t *testing.T) {
	// Sec V-B: scrubbing 1 TB per channel at a 3 GHz bus takes < 1.5 min.
	// 3 GHz DDR bus, 8B wide, double data rate: 48 GB/s.
	secs := ScrubTime(1e12, 48e9, 0.27)
	if secs <= 0 || secs >= 90 {
		t.Errorf("scrub time=%.1fs, want < 90s", secs)
	}
	if !math.IsInf(ScrubTime(1, 0, 0), 1) {
		t.Error("zero bandwidth should be +Inf")
	}
}

func TestFlashECCRequiredT(t *testing.T) {
	// Fig 3: commercial Flash uses 12..41-bit EC on 512B words. Our model
	// must land in that band for MLC-class BERs.
	lo, err := FlashECCRequiredT(1e-4)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := FlashECCRequiredT(3e-3)
	if err != nil {
		t.Fatal(err)
	}
	if lo < 8 || lo > 20 {
		t.Errorf("t@1e-4 = %d, want 12-ish", lo)
	}
	if hi < 30 || hi > 55 {
		t.Errorf("t@3e-3 = %d, want ~41", hi)
	}
	if hi <= lo {
		t.Error("required t must grow with BER")
	}
}
