package inject

import (
	"fmt"
	"strings"
)

// Band is an inclusive [Lo, Hi] acceptance interval on a measured rate.
type Band struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// Contains reports whether v falls inside the band.
func (b Band) Contains(v float64) bool { return v >= b.Lo && v <= b.Hi }

// Expect declares a campaign's pass criteria. The zero value demands the
// strictest outcome: zero SDC, zero DUE, every verification byte-exact.
type Expect struct {
	// AllowSDC inverts the SDC criterion: the campaign demonstrates a
	// documented escape (e.g. OMV corruption below the LLC's ECC) and
	// passes only if the oracle actually catches silent corruption.
	AllowSDC bool `json:"allow_sdc,omitempty"`
	// MaxDUE bounds detected-but-uncorrectable reads (0 = none allowed).
	MaxDUE int64 `json:"max_due"`
	// FallbackRate, when non-nil, bounds the measured VLEW-fallback rate
	// (fallback reads / classified reads) — the paper's ~0.018% at the
	// runtime RBER of 2e-4.
	FallbackRate *Band `json:"fallback_rate,omitempty"`
	// MinFallback requires at least this many fallback reads, so that a
	// campaign claiming to measure the fallback path cannot vacuously
	// pass with zero engagements.
	MinFallback int64 `json:"min_fallback,omitempty"`
}

// Failure records one oracle-visible failure with enough context to
// reproduce it.
type Failure struct {
	Op     int64  `json:"op"`
	Block  int64  `json:"block"`
	Kind   string `json:"kind"` // "sdc", "due", "scrub", "write", "event"
	Detail string `json:"detail"`
	Repro  string `json:"repro"`
}

// maxRecordedFailures caps the failure list per campaign; the total count
// is always exact.
const maxRecordedFailures = 20

// CampaignReport summarises one campaign run.
type CampaignReport struct {
	Name     string `json:"name"`
	Suite    string `json:"suite,omitempty"`
	Seed     int64  `json:"seed"`
	Geometry string `json:"geometry"`
	Blocks   int64  `json:"blocks"`
	// EngineShards is nonzero when demand ops ran through the sharded
	// engine rather than a bare controller.
	EngineShards int `json:"engine_shards,omitempty"`
	// EngineBatchWrites is nonzero when demand writes were buffered and
	// issued through the engine's batched write path.
	EngineBatchWrites int `json:"engine_batch_writes,omitempty"`

	Ops    int64 `json:"ops"`
	Reads  int64 `json:"reads"` // classified reads (workload + sweeps)
	Writes int64 `json:"writes"`

	Clean       int64 `json:"clean"`
	CorrectedRS int64 `json:"corrected_rs"`
	Fallback    int64 `json:"fallback"` // reads that took the VLEW-fallback path
	DUE         int64 `json:"due"`
	SDC         int64 `json:"sdc"`

	FallbackRate float64 `json:"fallback_rate"`

	BitsInjected   int64 `json:"bits_injected"`
	FlipsInjected  int64 `json:"flips_injected"`
	ChipKills      int   `json:"chip_kills"`
	Crashes        int   `json:"crashes"`
	Scrubs         int   `json:"scrubs"`
	ScrubBitsFixed int64 `json:"scrub_bits_fixed"`
	DeltaCorrupts  int   `json:"delta_corrupts"`
	OMVCorrupts    int   `json:"omv_corrupts"`

	// Guard summarises the supervisor run for guard campaigns.
	Guard *GuardReport `json:"guard,omitempty"`

	// Fleet summarises the multi-rank run for fleet campaigns.
	Fleet *FleetReport `json:"fleet,omitempty"`

	Expect        Expect    `json:"expect"`
	Failures      []Failure `json:"failures,omitempty"`
	FailuresTotal int       `json:"failures_total"`
	Pass          bool      `json:"pass"`
	Reason        string    `json:"reason,omitempty"`
	Repro         string    `json:"repro"`
	ElapsedMS     int64     `json:"elapsed_ms"`
}

// finish computes derived rates and evaluates the expectations.
func (r *CampaignReport) finish() {
	if r.Reads > 0 {
		r.FallbackRate = float64(r.Fallback) / float64(r.Reads)
	}
	var reasons []string
	if r.Expect.AllowSDC {
		if r.SDC == 0 {
			reasons = append(reasons, "expected the oracle to catch SDC, saw none")
		}
	} else if r.SDC > 0 {
		reasons = append(reasons, fmt.Sprintf("%d silent data corruptions", r.SDC))
	}
	if r.DUE > r.Expect.MaxDUE {
		reasons = append(reasons, fmt.Sprintf("%d DUEs exceed budget %d", r.DUE, r.Expect.MaxDUE))
	}
	if b := r.Expect.FallbackRate; b != nil && !b.Contains(r.FallbackRate) {
		reasons = append(reasons, fmt.Sprintf("fallback rate %.4g%% outside [%.4g%%, %.4g%%]",
			r.FallbackRate*100, b.Lo*100, b.Hi*100))
	}
	if r.Fallback < r.Expect.MinFallback {
		reasons = append(reasons, fmt.Sprintf("only %d fallback reads, want >= %d", r.Fallback, r.Expect.MinFallback))
	}
	// Failures other than the SDC/DUE counters (scrub, write, event
	// errors) always fail the campaign.
	extra := 0
	for _, f := range r.Failures {
		if f.Kind != "sdc" && f.Kind != "due" {
			extra++
		}
	}
	if extra > 0 {
		reasons = append(reasons, fmt.Sprintf("%d campaign-level failures", extra))
	}
	r.Pass = len(reasons) == 0
	r.Reason = strings.Join(reasons, "; ")
}

// GuardReport summarises a health-supervisor scenario: what the
// supervisor concluded and how much traffic overlapped its repair.
type GuardReport struct {
	Scenario           string `json:"scenario"`
	State              string `json:"state"` // final supervisor state
	SuspicionsRaised   int64  `json:"suspicions_raised"`
	SuspicionsCleared  int64  `json:"suspicions_cleared"`
	Verdicts           int64  `json:"verdicts"`
	BandsMigrated      int64  `json:"bands_migrated"`
	OpsDuringMigration int64  `json:"ops_during_migration"`
	WorkerOps          int64  `json:"worker_ops,omitempty"`
	MigrationResumed   bool   `json:"migration_resumed,omitempty"`
}

// FleetReport summarises a multi-rank fleet scenario: the replication
// tier's outcome counters, the containment split after rank-scale
// faults, and the measured per-block cost of both chip-repair paths.
type FleetReport struct {
	Scenario   string `json:"scenario"`
	Ranks      int    `json:"ranks"`
	RanksAlive int    `json:"ranks_alive"`

	ActiveReplicas  int   `json:"active_replicas"`
	BandsReplicated int64 `json:"bands_replicated"`
	FailoverReads   int64 `json:"failover_reads"`
	FailoverWrites  int64 `json:"failover_writes"`
	ReadRepairs     int64 `json:"read_repairs"`
	DivergenceFixes int64 `json:"divergence_fixes"`
	ContainedDUEs   int64 `json:"contained_dues"`
	RejectedWrites  int64 `json:"rejected_writes"`
	RankKills       int64 `json:"rank_kills"`
	ChipRepairs     int64 `json:"chip_repairs"`

	// Verdicts and ExternalRepairs are summed over the ranks' guards.
	Verdicts        int64 `json:"verdicts"`
	ExternalRepairs int64 `json:"external_repairs"`

	// SweptContained counts final-sweep reads of unservable blocks that
	// correctly returned the typed contained failure (never counted as
	// campaign DUEs: the fleet reported them by construction).
	SweptContained int64 `json:"swept_contained"`

	// Scenario-specific counters.
	AckedAfterKill    int64 `json:"acked_after_kill,omitempty"`
	ReplicasCorrupted int64 `json:"replicas_corrupted,omitempty"`
	WorkerOps         int64 `json:"worker_ops,omitempty"`
	OpsAfterKill      int64 `json:"ops_after_kill,omitempty"`

	// Measured chip-repair cost per block, by path; the speedup is
	// erasure/replica (>1 means the replica byte copy won).
	RepairReplicaNSPerBlock float64 `json:"repair_replica_ns_per_block,omitempty"`
	RepairErasureNSPerBlock float64 `json:"repair_erasure_ns_per_block,omitempty"`
	RepairSpeedup           float64 `json:"repair_speedup,omitempty"`
}

// Summary renders the one-line human summary used by the CLI and tests.
func (r *CampaignReport) Summary() string {
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	guard := ""
	if g := r.Guard; g != nil {
		guard = fmt.Sprintf(" guard[%s: %s bands=%d overlap=%d]",
			g.Scenario, g.State, g.BandsMigrated, g.OpsDuringMigration)
	}
	if f := r.Fleet; f != nil {
		guard = fmt.Sprintf(" fleet[%s: ranks=%d/%d replicas=%d failover=%d/%d contained=%d",
			f.Scenario, f.RanksAlive, f.Ranks, f.ActiveReplicas,
			f.FailoverReads, f.FailoverWrites, f.ContainedDUEs)
		if f.RepairSpeedup > 0 {
			guard += fmt.Sprintf(" repair=%.0f/%.0fns/blk (%.2gx)",
				f.RepairReplicaNSPerBlock, f.RepairErasureNSPerBlock, f.RepairSpeedup)
		}
		guard += "]"
	}
	return fmt.Sprintf("%-22s reads=%-7d writes=%-6d corrected=%-5d fallback=%d (%.4f%%) due=%d sdc=%d%s %s",
		r.Name, r.Reads, r.Writes, r.CorrectedRS, r.Fallback, r.FallbackRate*100, r.DUE, r.SDC, guard, verdict)
}

// Report aggregates a suite run.
type Report struct {
	Suite     string            `json:"suite"`
	Seed      int64             `json:"seed"`
	Campaigns []*CampaignReport `json:"campaigns"`
	TotalSDC  int64             `json:"total_sdc"`
	TotalDUE  int64             `json:"total_due"`
	Pass      bool              `json:"pass"`
}

// RunSuite runs every campaign of a named suite with the given base seed.
func RunSuite(suite string, seed int64) (*Report, error) {
	campaigns, err := Suite(suite, seed)
	if err != nil {
		return nil, err
	}
	return RunCampaigns(suite, seed, campaigns), nil
}

// RunCampaigns runs a campaign list under a suite label.
func RunCampaigns(suite string, seed int64, campaigns []Campaign) *Report {
	rep := &Report{Suite: suite, Seed: seed, Pass: true}
	for _, c := range campaigns {
		cr := RunCampaign(suite, c)
		rep.Campaigns = append(rep.Campaigns, cr)
		rep.TotalSDC += cr.SDC
		rep.TotalDUE += cr.DUE
		if !cr.Pass {
			rep.Pass = false
		}
	}
	return rep
}
