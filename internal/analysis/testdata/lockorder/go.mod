module lockstub

go 1.22
