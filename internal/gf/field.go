// Package gf implements arithmetic over binary Galois fields GF(2^m) and
// polynomials over GF(2) and GF(2^m).
//
// It is the substrate for the BCH and Reed-Solomon codecs used throughout
// this repository: GF(2^8) backs the per-block Reed-Solomon code that
// provides chip-failure protection, and GF(2^10)..GF(2^13) back the very
// long BCH ECC words (VLEWs) that provide boot-time bit-error protection.
//
// All field elements are represented as uint16 in polynomial basis; the
// zero value is the additive identity. Fields are immutable after creation
// and safe for concurrent use.
package gf

import "fmt"

// Elem is an element of a binary Galois field in polynomial-basis
// representation. Only the low m bits are meaningful for GF(2^m).
type Elem = uint16

// defaultPrimitive maps m to a primitive polynomial of degree m over GF(2),
// encoded with bit i set when x^i has coefficient 1 (bit m is always set).
// These are the conventional minimum-weight primitive polynomials.
var defaultPrimitive = map[uint]uint32{
	2:  0x7,     // x^2+x+1
	3:  0xB,     // x^3+x+1
	4:  0x13,    // x^4+x+1
	5:  0x25,    // x^5+x^2+1
	6:  0x43,    // x^6+x+1
	7:  0x89,    // x^7+x^3+1
	8:  0x11D,   // x^8+x^4+x^3+x^2+1
	9:  0x211,   // x^9+x^4+1
	10: 0x409,   // x^10+x^3+1
	11: 0x805,   // x^11+x^2+1
	12: 0x1053,  // x^12+x^6+x^4+x+1
	13: 0x201B,  // x^13+x^4+x^3+x+1
	14: 0x4443,  // x^14+x^10+x^6+x+1
	15: 0x8003,  // x^15+x+1
	16: 0x1100B, // x^16+x^12+x^3+x+1
}

// Field is GF(2^m) constructed from a primitive polynomial. It precomputes
// exponential and logarithm tables so that multiplication, division and
// exponentiation are table lookups.
type Field struct {
	m    uint
	size int    // 2^m
	n    int    // 2^m - 1, the multiplicative order of alpha
	poly uint32 // primitive polynomial
	exp  []Elem // exp[i] = alpha^i for i in [0, 2n); doubled to skip a mod
	log  []int  // log[a] = i with alpha^i = a; log[0] is unused
}

// NewField returns GF(2^m) built from the package's default primitive
// polynomial for m. Supported m are 2 through 16.
func NewField(m uint) (*Field, error) {
	poly, ok := defaultPrimitive[m]
	if !ok {
		return nil, fmt.Errorf("gf: no default primitive polynomial for m=%d (want 2..16)", m)
	}
	return NewFieldPoly(m, poly)
}

// MustField is NewField but panics on error; intended for package-level
// initialisation with known-good m.
func MustField(m uint) *Field {
	f, err := NewField(m)
	if err != nil {
		panic(err)
	}
	return f
}

// NewFieldPoly returns GF(2^m) built from the given degree-m polynomial.
// The polynomial must be primitive; this is verified during table
// construction (alpha must have multiplicative order 2^m-1).
func NewFieldPoly(m uint, poly uint32) (*Field, error) {
	if m < 2 || m > 16 {
		return nil, fmt.Errorf("gf: field degree m=%d out of range [2,16]", m)
	}
	if poly>>m != 1 {
		return nil, fmt.Errorf("gf: polynomial %#x does not have degree %d", poly, m)
	}
	f := &Field{
		m:    m,
		size: 1 << m,
		n:    1<<m - 1,
		poly: poly,
	}
	f.exp = make([]Elem, 2*f.n)
	f.log = make([]int, f.size)
	x := uint32(1)
	for i := 0; i < f.n; i++ {
		if x == 1 && i != 0 {
			return nil, fmt.Errorf("gf: polynomial %#x is not primitive for m=%d (alpha has order %d)", poly, m, i)
		}
		f.exp[i] = Elem(x)
		f.exp[i+f.n] = Elem(x)
		f.log[x] = i
		x <<= 1
		if x&(1<<m) != 0 {
			x ^= poly
		}
	}
	if f.exp[f.n-1] == 1 && f.n > 1 {
		return nil, fmt.Errorf("gf: polynomial %#x is not primitive for m=%d", poly, m)
	}
	return f, nil
}

// M returns the field degree m of GF(2^m).
func (f *Field) M() uint { return f.m }

// Size returns 2^m, the number of field elements.
func (f *Field) Size() int { return f.size }

// N returns 2^m - 1, the multiplicative group order (and the natural code
// length of codes built over this field).
func (f *Field) N() int { return f.n }

// Primitive returns the primitive polynomial used to construct the field.
func (f *Field) Primitive() uint32 { return f.poly }

// Add returns a + b. In characteristic 2 addition and subtraction are the
// same operation: bitwise XOR.
func (f *Field) Add(a, b Elem) Elem { return a ^ b }

// Mul returns a * b.
func (f *Field) Mul(a, b Elem) Elem {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[f.log[a]+f.log[b]]
}

// Div returns a / b. It panics if b is zero.
func (f *Field) Div(a, b Elem) Elem {
	if b == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	return f.exp[f.log[a]-f.log[b]+f.n]
}

// Inv returns the multiplicative inverse of a. It panics if a is zero.
func (f *Field) Inv(a Elem) Elem {
	if a == 0 {
		panic("gf: zero has no inverse")
	}
	return f.exp[f.n-f.log[a]]
}

// Exp returns alpha^i for any integer i (negative allowed).
func (f *Field) Exp(i int) Elem {
	i %= f.n
	if i < 0 {
		i += f.n
	}
	return f.exp[i]
}

// Log returns the discrete logarithm of a to base alpha. It panics if a is
// zero, which has no logarithm.
func (f *Field) Log(a Elem) int {
	if a == 0 {
		panic("gf: zero has no logarithm")
	}
	return f.log[a]
}

// Pow returns a^k for k >= 0, with 0^0 defined as 1.
func (f *Field) Pow(a Elem, k int) Elem {
	if k == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	e := (f.log[a] * k) % f.n
	if e < 0 {
		e += f.n
	}
	return f.exp[e]
}

// String implements fmt.Stringer.
func (f *Field) String() string {
	return fmt.Sprintf("GF(2^%d) [poly=%#x]", f.m, f.poly)
}
