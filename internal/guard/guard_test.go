package guard

import (
	"bytes"
	"math/rand"
	"testing"

	"chipkillpm/internal/core"
	"chipkillpm/internal/engine"
	"chipkillpm/internal/rank"
)

func newTestEngine(t *testing.T, seed int64) *engine.Engine {
	t.Helper()
	r, err := rank.New(rank.PaperConfig(4, 8, 1024, seed))
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(r, engine.Config{Core: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func fillBlock(buf []byte, block int64, version int) {
	for i := range buf {
		buf[i] = byte(block>>uint(8*(i&7))) ^ byte(version*131) ^ byte(i)
	}
}

func populate(t *testing.T, e *engine.Engine) {
	t.Helper()
	buf := make([]byte, e.BlockBytes())
	for b := int64(0); b < e.Blocks(); b++ {
		fillBlock(buf, b, 0)
		if err := e.WriteBlockInitial(b, buf); err != nil {
			t.Fatal(err)
		}
	}
}

// demandLoad drives n mixed reads/writes against the engine, verifying
// reads against the shadow version map.
func demandLoad(t *testing.T, e *engine.Engine, rng *rand.Rand, shadow map[int64]int, n int) {
	t.Helper()
	buf := make([]byte, e.BlockBytes())
	want := make([]byte, e.BlockBytes())
	for i := 0; i < n; i++ {
		b := rng.Int63n(e.Blocks())
		if rng.Intn(3) == 0 {
			shadow[b]++
			fillBlock(buf, b, shadow[b])
			if err := e.WriteBlock(b, buf); err != nil {
				t.Fatalf("write %d: %v", b, err)
			}
		} else {
			if err := e.ReadBlockInto(b, buf); err != nil {
				t.Fatalf("read %d: %v", b, err)
			}
			fillBlock(want, b, shadow[b])
			if !bytes.Equal(buf, want) {
				t.Fatalf("block %d: wrong data", b)
			}
		}
	}
}

func verifyAll(t *testing.T, e *engine.Engine, shadow map[int64]int) {
	t.Helper()
	buf := make([]byte, e.BlockBytes())
	want := make([]byte, e.BlockBytes())
	for b := int64(0); b < e.Blocks(); b++ {
		if err := e.ReadBlockInto(b, buf); err != nil {
			t.Fatalf("final read %d: %v", b, err)
		}
		fillBlock(want, b, shadow[b])
		if !bytes.Equal(buf, want) {
			t.Fatalf("final block %d: wrong data", b)
		}
	}
}

// TestSupervisorChipKillToDegraded is the tentpole end-to-end: a data
// chip dies under live traffic; the supervisor notices via telemetry,
// discriminates with probes, convicts, migrates online (demand traffic
// continues throughout — no stop-the-world), and lands in degraded mode
// with every block intact.
func TestSupervisorChipKillToDegraded(t *testing.T) {
	e := newTestEngine(t, 11)
	populate(t, e)
	region := NewRegion(RegionSizeFor(e))
	sup, err := New(e, region, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	shadow := map[int64]int{}

	// A few healthy ticks: nothing to find.
	demandLoad(t, e, rng, shadow, 32)
	if err := sup.Run(3); err != nil {
		t.Fatal(err)
	}
	if sup.State() != StateHealthy || sup.Report().SuspicionsRaised != 0 {
		t.Fatalf("healthy engine raised suspicion: %+v", sup.Report())
	}

	const failed = 2
	e.Quiesce(func() { e.Rank().FailChip(failed) })

	sawSuspected, sawMigrating := false, false
	opsDuringMigration := 0
	for i := 0; i < 400 && sup.State() != StateDegraded; i++ {
		demandLoad(t, e, rng, shadow, 8)
		if sup.State() == StateMigrating {
			opsDuringMigration += 8
		}
		switch sup.State() {
		case StateSuspected:
			sawSuspected = true
		case StateMigrating:
			sawMigrating = true
		}
		if err := sup.Tick(); err != nil {
			t.Fatalf("tick %d (state %v): %v", i, sup.State(), err)
		}
	}
	if sup.State() != StateDegraded {
		t.Fatalf("supervisor stuck in %v: %+v", sup.State(), sup.Report())
	}
	if !sawSuspected || !sawMigrating {
		t.Fatalf("skipped states: suspected=%v migrating=%v", sawSuspected, sawMigrating)
	}
	if opsDuringMigration == 0 {
		t.Fatal("no demand traffic overlapped the migration")
	}
	rep := sup.Report()
	if rep.Verdicts != 1 || rep.SuspicionsRaised != 1 {
		t.Fatalf("report %+v, want 1 suspicion and 1 verdict", rep)
	}
	if d, chip := e.Degraded(); !d || chip != failed {
		t.Fatalf("engine Degraded() = %v, %d", d, chip)
	}
	verifyAll(t, e, shadow)
	if st := e.Stats(); st.Uncorrectable != 0 {
		t.Fatalf("uncorrectable errors during self-heal: %+v", st)
	}
	// Degraded patrol keeps running after migration.
	before := e.Stats().ScrubbedVLEWs
	if err := sup.Run(4); err != nil {
		t.Fatal(err)
	}
	if e.Stats().ScrubbedVLEWs == before {
		t.Fatal("degraded patrol not scrubbing")
	}
}

// TestSupervisorTransientStormCleared plants a dead VLEW (24 bit flips —
// beyond both the RS threshold and the 22-bit BCH budget, so every read
// takes the erasure-repair path and reports a VLEW failure) on an
// otherwise healthy chip. The probe rounds must see a healthy chip and
// acquit: zero verdicts, zero migrations, zero DUEs.
func TestSupervisorTransientStormCleared(t *testing.T) {
	e := newTestEngine(t, 12)
	populate(t, e)
	region := NewRegion(RegionSizeFor(e))
	sup, err := New(e, region, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}

	const bombChip, bombBlock = 3, 77
	loc := e.Rank().Locate(bombBlock)
	e.Quiesce(func() {
		chip := e.Rank().Chip(bombChip)
		for k := 0; k < 8; k++ {
			for _, bit := range []uint{0, 3, 6} {
				chip.FlipDataBit(loc.Bank, loc.Row, loc.Col+k, bit)
			}
		}
	})

	// The storm: a burst of reads of the broken word.
	buf := make([]byte, e.BlockBytes())
	want := make([]byte, e.BlockBytes())
	for i := 0; i < 3; i++ {
		if err := e.ReadBlockInto(bombBlock, buf); err != nil {
			t.Fatalf("read of bombed block: %v", err)
		}
	}
	fillBlock(want, bombBlock, 0)
	if !bytes.Equal(buf, want) {
		t.Fatal("bombed block read wrong data")
	}

	cleared := false
	for i := 0; i < 50; i++ {
		if err := sup.Tick(); err != nil {
			t.Fatal(err)
		}
		if sup.Report().SuspicionsCleared > 0 {
			cleared = true
			break
		}
	}
	rep := sup.Report()
	if !cleared || rep.State != StateHealthy {
		t.Fatalf("storm not cleared: %+v", rep)
	}
	if rep.SuspicionsRaised == 0 {
		t.Fatal("storm never raised suspicion — test lost its signal")
	}
	if rep.Verdicts != 0 {
		t.Fatalf("spurious chip-kill verdict on a transient storm: %+v", rep)
	}
	if e.Migrating() != nil {
		t.Fatal("spurious migration started")
	}
	if d, _ := e.Degraded(); d {
		t.Fatal("spurious degraded mode")
	}
	if tel := e.Telemetry(); tel.DUEs != 0 {
		t.Fatalf("DUEs during transient storm: %d", tel.DUEs)
	}
}

// TestSupervisorParityKillWounded convicts the parity chip, which the
// Sec V-E remap cannot migrate around: the supervisor parks in
// StateWounded and data stays readable.
func TestSupervisorParityKillWounded(t *testing.T) {
	e := newTestEngine(t, 13)
	populate(t, e)
	region := NewRegion(RegionSizeFor(e))
	sup, err := New(e, region, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	parity := e.Rank().ParityChipIndex()
	e.Quiesce(func() { e.Rank().FailChip(parity) })
	rng := rand.New(rand.NewSource(7))
	shadow := map[int64]int{}
	for i := 0; i < 100 && sup.State() != StateWounded; i++ {
		demandLoad(t, e, rng, shadow, 8)
		if err := sup.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	rep := sup.Report()
	if rep.State != StateWounded || rep.Verdicts != 1 {
		t.Fatalf("parity kill: %+v, want wounded with 1 verdict", rep)
	}
	if d, _ := e.Degraded(); d || e.Migrating() != nil {
		t.Fatal("parity kill must not trigger a migration")
	}
	verifyAll(t, e, shadow)
}

// TestSupervisorCrashMidMigrationRecovers kills a chip, lets the
// supervisor migrate partway, then tears a journal write mid-store (power
// loss). After "reboot" — a fresh engine over the same rank and a fresh
// supervisor over the surviving journal bytes — recovery must resume the
// migration where the journal left it, redo the possibly-torn last band
// from its write-ahead image, and finish with every block intact.
func TestSupervisorCrashMidMigrationRecovers(t *testing.T) {
	r, err := rank.New(rank.PaperConfig(4, 8, 1024, 21))
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(r, engine.Config{Core: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	populate(t, e)
	region := NewRegion(RegionSizeFor(e))
	sup, err := New(e, region, Config{Seed: 4, BandsPerTick: 1})
	if err != nil {
		t.Fatal(err)
	}
	const failed = 1
	e.Quiesce(func() { r.FailChip(failed) })
	rng := rand.New(rand.NewSource(17))
	shadow := map[int64]int{}

	// Let detection and some of the migration run.
	for i := 0; i < 100 && e.Stats().BandsMigrated < 10; i++ {
		demandLoad(t, e, rng, shadow, 6)
		if err := sup.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if sup.State() != StateMigrating {
		t.Fatalf("setup failed: state %v after warmup", sup.State())
	}
	preCrash := e.Stats().BandsMigrated

	// Power loss tears the next band's write-ahead record mid-store. The
	// torn append must abort that band's rewrite: the rank never runs
	// ahead of the journal.
	region.TearNextWrite(20)
	if err := sup.Tick(); err == nil {
		t.Fatal("tick across a torn journal write reported success")
	}
	if !region.Crashed() {
		t.Fatal("tear did not fire")
	}
	if got := e.Stats().BandsMigrated; got != preCrash {
		t.Fatalf("rank ran ahead of the journal: %d bands vs %d before the crash", got, preCrash)
	}

	// The last journaled band's rewrite may itself have torn: scribble on
	// the parity chip's remapped slices for that band; recovery's redo
	// must rewrite them from the journaled image.
	lastBand := preCrash - 1
	bb := e.BandBlocks()
	pchip := r.Chip(r.ParityChipIndex())
	garbage := bytes.Repeat([]byte{0xEE}, r.Config().ChipAccessBytes)
	for blk := lastBand * bb; blk < lastBand*bb+4; blk++ {
		l := r.Locate(blk)
		pchip.WriteDataRaw(l.Bank, l.Row, l.Col, garbage)
	}

	// Reboot: volatile chip state is gone, the region keeps only what
	// persisted, and a fresh engine + supervisor come up. Recovery runs
	// before any demand traffic or boot scrub.
	r.CloseAllRows()
	region.Reboot()
	e2, err := engine.New(r, engine.Config{Core: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	sup2, err := New(e2, region, Config{Seed: 5, BandsPerTick: 1})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	rep := sup2.Report()
	if !rep.MigrationResumed || rep.State != StateMigrating {
		t.Fatalf("recovery did not resume the migration: %+v", rep)
	}

	for i := 0; i < 400 && sup2.State() != StateDegraded; i++ {
		demandLoad(t, e2, rng, shadow, 4)
		if err := sup2.Tick(); err != nil {
			t.Fatalf("post-recovery tick: %v", err)
		}
	}
	if sup2.State() != StateDegraded {
		t.Fatalf("resumed migration never finished: %+v", sup2.Report())
	}
	if d, chip := e2.Degraded(); !d || chip != failed {
		t.Fatalf("post-recovery Degraded() = %v, %d", d, chip)
	}
	verifyAll(t, e2, shadow)
	if st := e2.Stats(); st.Uncorrectable != 0 {
		t.Fatalf("uncorrectable errors after crash recovery: %+v", st)
	}
}

// TestSupervisorRecoversCompletedMigration crashes after the journal's
// done record: boot must adopt the striped layout without re-migrating.
func TestSupervisorRecoversCompletedMigration(t *testing.T) {
	r, err := rank.New(rank.PaperConfig(4, 8, 1024, 22))
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(r, engine.Config{Core: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	populate(t, e)
	region := NewRegion(RegionSizeFor(e))
	sup, err := New(e, region, Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	const failed = 5
	e.Quiesce(func() { r.FailChip(failed) })
	rng := rand.New(rand.NewSource(23))
	shadow := map[int64]int{}
	for i := 0; i < 400 && sup.State() != StateDegraded; i++ {
		demandLoad(t, e, rng, shadow, 4)
		if err := sup.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if sup.State() != StateDegraded {
		t.Fatalf("migration never finished: %+v", sup.Report())
	}

	r.CloseAllRows()
	e2, err := engine.New(r, engine.Config{Core: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	sup2, err := New(e2, region, Config{Seed: 7})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	rep := sup2.Report()
	if rep.State != StateDegraded || !rep.MigrationResumed {
		t.Fatalf("completed migration not adopted at boot: %+v", rep)
	}
	if d, chip := e2.Degraded(); !d || chip != failed {
		t.Fatalf("post-boot Degraded() = %v, %d", d, chip)
	}
	verifyAll(t, e2, shadow)
}
