// Package nvram models high-density NVRAM memory chips: banked row-
// organised storage, retention-driven stochastic raw bit errors, the
// paper's per-row VLEW code-bit regions, an embedded linear BCH encoder,
// and the ECC Update Registerfile (EUR) that coalesces code-bit updates
// until row close (paper Sec V-D, Figs 6 and 11).
//
// The package is purely functional: it stores real bytes and injects real
// bit errors. Timing is modelled separately in internal/memctrl.
package nvram

import (
	"fmt"
	"math"
)

// Tech describes an NVRAM technology: its access latencies (used by the
// timing model) and its retention behaviour, i.e. how the raw bit error
// rate (RBER) grows with time since the last write or refresh.
//
// The RBER curves are log-log interpolations through anchor points taken
// from the studies the paper cites (Fig 1): ReRAM reaches 1e-3 one year
// after refresh and ~7e-5 at runtime refresh intervals; 3-bit PCM reaches
// 1e-3 one week after refresh, 2e-4 at one hour, 7e-5 at one second.
type Tech struct {
	Name         string
	ReadLatency  float64 // ns, maps to tRCD in the timing model
	WriteLatency float64 // ns, maps to tWR in the timing model
	anchors      []rberAnchor
}

type rberAnchor struct {
	seconds float64
	rber    float64
}

// Paper-modelled technologies. Latencies follow Sec VI: ReRAM 120 ns read
// / 300 ns write, PCM 250 ns read / 600 ns write.
var (
	// ReRAM: runtime RBER ~7e-5 [63], 1e-3 one year since refresh [63].
	ReRAM = Tech{
		Name: "ReRAM", ReadLatency: 120, WriteLatency: 300,
		anchors: []rberAnchor{{1, 7e-5}, {3600, 1.3e-4}, {604800, 4e-4}, {31536000, 1e-3}},
	}
	// 3-bit PCM: 7e-5 at 1 s, 2e-4 at 1 h, 1e-3 at 1 week [60].
	PCM3 = Tech{
		Name: "3-bit PCM", ReadLatency: 250, WriteLatency: 600,
		anchors: []rberAnchor{{1, 7e-5}, {3600, 2e-4}, {604800, 1e-3}},
	}
	// 2-bit PCM: roughly an order of magnitude below 3-bit PCM [60], [61].
	PCM2 = Tech{
		Name: "2-bit PCM", ReadLatency: 250, WriteLatency: 600,
		anchors: []rberAnchor{{1, 5e-6}, {3600, 2e-5}, {604800, 1e-4}, {31536000, 3e-4}},
	}
	// MLC Flash for comparison (Fig 1): ~1e-4 a day after write, 100x
	// higher three months later (Cai et al. [66]).
	FlashMLC = Tech{
		Name: "MLC Flash", ReadLatency: 25000, WriteLatency: 200000,
		anchors: []rberAnchor{{86400, 1e-4}, {7776000, 1e-2}},
	}
	// DRAM's *cell fault rate* band for comparison (Fig 1): errors are
	// dominated by permanent faults, not retention, so the curve is flat.
	DRAM = Tech{
		Name: "DRAM (cell fault rate)", ReadLatency: 14, WriteLatency: 15,
		anchors: []rberAnchor{{1, 1e-5}, {31536000, 1e-5}},
	}
)

// RBER returns the technology's raw bit error rate after the given time
// since last write or refresh, interpolated log-log between anchors and
// clamped at the ends.
func (t Tech) RBER(secondsSinceRefresh float64) float64 {
	a := t.anchors
	if len(a) == 0 {
		return 0
	}
	s := secondsSinceRefresh
	if s <= a[0].seconds {
		return a[0].rber
	}
	last := a[len(a)-1]
	if s >= last.seconds {
		return last.rber
	}
	for i := 1; i < len(a); i++ {
		if s <= a[i].seconds {
			x0, x1 := math.Log(a[i-1].seconds), math.Log(a[i].seconds)
			y0, y1 := math.Log(a[i-1].rber), math.Log(a[i].rber)
			f := (math.Log(s) - x0) / (x1 - x0)
			return math.Exp(y0 + f*(y1-y0))
		}
	}
	return last.rber
}

// String implements fmt.Stringer.
func (t Tech) String() string { return t.Name }

// Fig1Technologies returns the technologies plotted in Figure 1.
func Fig1Technologies() []Tech {
	return []Tech{PCM2, PCM3, ReRAM, FlashMLC, DRAM}
}

// RBERTable renders RBER at the given times for every Fig 1 technology;
// used by the experiment harness to regenerate Figure 1.
func RBERTable(times []float64) map[string][]float64 {
	out := make(map[string][]float64)
	for _, tech := range Fig1Technologies() {
		row := make([]float64, len(times))
		for i, s := range times {
			row[i] = tech.RBER(s)
		}
		out[tech.Name] = row
	}
	return out
}

// Common refresh/outage intervals, in seconds.
const (
	Second = 1.0
	Hour   = 3600.0
	Day    = 86400.0
	Week   = 604800.0
	Month  = 2592000.0
	Year   = 31536000.0
)

func formatDuration(s float64) string {
	switch {
	case s < 60:
		return fmt.Sprintf("%.0fs", s)
	case s < 3600:
		return fmt.Sprintf("%.0fm", s/60)
	case s < 86400:
		return fmt.Sprintf("%.0fh", s/3600)
	case s < 604800:
		return fmt.Sprintf("%.0fd", s/86400)
	case s < 31536000:
		return fmt.Sprintf("%.1fw", s/604800)
	default:
		return fmt.Sprintf("%.1fy", s/31536000)
	}
}

// FormatInterval renders a seconds value using the largest natural unit;
// exported for use by the experiment harness's tables.
func FormatInterval(s float64) string { return formatDuration(s) }
