package rs

import (
	"math/rand"
	"testing"
)

// Kernel microbenchmarks at the paper shape: RS(72, 64), one 64 B data
// block plus 8 check bytes. The *PolyDiv/*Horner benchmarks measure the
// retained reference paths for the before/after comparison.

func benchCode() *Code { return Must(64, 8) }

func benchBlock() ([]byte, *Code) {
	c := benchCode()
	data := make([]byte, c.K())
	rand.New(rand.NewSource(1)).Read(data)
	return data, c
}

func BenchmarkKernelEncode(b *testing.B) {
	data, c := benchBlock()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Encode(data)
	}
}

func BenchmarkKernelEncodePolyDiv(b *testing.B) {
	data, c := benchBlock()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.EncodePolyDiv(data)
	}
}

func BenchmarkKernelCheckClean(b *testing.B) {
	data, c := benchBlock()
	check := c.Encode(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.Check(data, check) {
			b.Fatal("clean block reported dirty")
		}
	}
}

func BenchmarkKernelSyndromesHorner(b *testing.B) {
	data, c := benchBlock()
	check := c.Encode(data)
	data[3] ^= 0xA5
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SyndromesHorner(data, check)
	}
}

func BenchmarkKernelDecodeClean(b *testing.B) {
	data, c := benchBlock()
	check := c.Encode(data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(data, check, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelDecodeErrors(b *testing.B) {
	data, c := benchBlock()
	check := c.Encode(data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data[5] ^= 0x3C
		data[40] ^= 0x81
		if corr, err := c.Decode(data, check, nil); err != nil || len(corr) != 2 {
			b.Fatalf("corr=%d err=%v", len(corr), err)
		}
	}
}

func BenchmarkKernelDecodeSingleError(b *testing.B) {
	data, c := benchBlock()
	check := c.Encode(data)
	buf := make([]Correction, 0, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data[37] ^= 0x40
		corr, err := c.DecodeAppend(buf, data, check, nil)
		if err != nil || len(corr) != 1 {
			b.Fatalf("corr=%d err=%v", len(corr), err)
		}
	}
}

func BenchmarkKernelDecodeErasures(b *testing.B) {
	data, c := benchBlock()
	check := c.Encode(data)
	erasures := []int{8, 9, 10, 11, 12, 13, 14, 15} // one failed chip
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range erasures {
			data[p] = 0
		}
		if _, err := c.Decode(data, check, erasures); err != nil {
			b.Fatal(err)
		}
	}
}
