package analysis_test

import (
	"strings"
	"testing"

	"chipkillpm/internal/analysis"
	"chipkillpm/internal/analysis/analysistest"
)

func TestSentinel(t *testing.T) {
	diags := analysistest.Run(t, "testdata/sentinel", analysis.Sentinel)

	// Sentinel is the one analyzer that must reach into _test.go files.
	var inTest bool
	for _, d := range diags {
		if strings.HasSuffix(d.Pos.Filename, "_test.go") {
			inTest = true
		}
	}
	if !inTest {
		t.Error("expected at least one sentinel diagnostic inside a _test.go file")
	}
}
