// Package config holds the simulated system's parameters, mirroring the
// paper's Table I and Section VI methodology.
package config

import "fmt"

// CPU describes the simulated processor (Table I).
type CPU struct {
	Cores          int     // 4
	FreqGHz        float64 // 3 GHz
	IssueWidth     int     // 4-issue OOO
	ROBEntries     int     // 168
	CachelineBytes int     // 64
}

// Cache describes one cache level (Table I).
type Cache struct {
	Ways         int
	SizeBytes    int
	LatencyCycle int
	LineBytes    int
}

// MemController describes the controller (Table I).
type MemController struct {
	ReadQueue      int     // 128 entries
	WriteQueue     int     // 128 entries per channel
	ClosePageNS    float64 // row closes after 50 ns inactivity (Sec VI)
	FRFCFS         bool
	WriteDrainHigh int // start draining writes above this queue depth
	WriteDrainLow  int // stop draining below this depth
}

// DDRTiming describes channel timings. The NVRAM rank overrides TRCD and
// TWR with the technology's read/write latencies (Sec VI).
type DDRTiming struct {
	BusMTps  float64 // mega-transfers per second (2400)
	BusBytes int     // bus width in bytes (8)
	TRCDNS   float64 // activate-to-read
	TCASNS   float64 // column access
	TRPNS    float64 // precharge
	TWRNS    float64 // write recovery / write service
	TBurstNS float64 // 64B burst duration
}

// System is the full configuration.
type System struct {
	CPU          CPU
	L1           Cache
	LLC          Cache
	Controller   MemController
	DRAM         DDRTiming
	PM           DDRTiming // NVRAM rank; TRCD/TWR overridden per technology
	BanksPerRank int
	RowBytes     int // per-chip row data bytes (1 KB page on x8 chips); the rank row is 8x this
}

// TableI returns the paper's configuration: 4 cores at 3 GHz, 4-issue OOO
// with a 168-entry ROB; 2-way 64 KB L1s at 1 cycle; 32-way 4 MB shared LLC
// at 14 cycles; 128-entry read/write queues, closed-page FR-FCFS; one
// 2400 MT/s channel with one DRAM rank and one persistent-memory rank,
// 16 banks per rank.
func TableI() System {
	burst := 64.0 / (2400.0 * 1e6 * 8.0) * 1e9 // 64B over an 8B 2400MT/s bus, ns
	ddr := DDRTiming{
		BusMTps: 2400, BusBytes: 8,
		TRCDNS: 14.16, TCASNS: 14.16, TRPNS: 14.16, TWRNS: 15,
		TBurstNS: burst,
	}
	return System{
		CPU: CPU{Cores: 4, FreqGHz: 3, IssueWidth: 4, ROBEntries: 168, CachelineBytes: 64},
		L1:  Cache{Ways: 2, SizeBytes: 64 << 10, LatencyCycle: 1, LineBytes: 64},
		LLC: Cache{Ways: 32, SizeBytes: 4 << 20, LatencyCycle: 14, LineBytes: 64},
		Controller: MemController{
			ReadQueue: 128, WriteQueue: 128, ClosePageNS: 50, FRFCFS: true,
			WriteDrainHigh: 96, WriteDrainLow: 32,
		},
		DRAM:         ddr,
		PM:           ddr, // TRCD/TWR set from the NVRAM technology
		BanksPerRank: 16,
		RowBytes:     1024,
	}
}

// WithPMLatencies returns a copy with the persistent-memory rank's
// activate (read) and write-recovery latencies set from an NVRAM
// technology: tRCD = read latency, tWR = write latency (Sec VI).
func (s System) WithPMLatencies(readNS, writeNS float64) System {
	s.PM.TRCDNS = readNS
	s.PM.TWRNS = writeNS
	return s
}

// CyclesPerNS returns CPU cycles per nanosecond.
func (s System) CyclesPerNS() float64 { return s.CPU.FreqGHz }

// Validate sanity-checks the configuration.
func (s System) Validate() error {
	if s.CPU.Cores < 1 || s.CPU.FreqGHz <= 0 || s.CPU.IssueWidth < 1 || s.CPU.ROBEntries < 1 {
		return fmt.Errorf("config: bad CPU: %+v", s.CPU)
	}
	for _, c := range []Cache{s.L1, s.LLC} {
		if c.Ways < 1 || c.SizeBytes < c.Ways*c.LineBytes || c.LineBytes < 1 {
			return fmt.Errorf("config: bad cache: %+v", c)
		}
		if (c.SizeBytes/(c.Ways*c.LineBytes))&(c.SizeBytes/(c.Ways*c.LineBytes)-1) != 0 {
			return fmt.Errorf("config: cache sets not a power of two: %+v", c)
		}
	}
	if s.BanksPerRank < 1 || s.RowBytes < 64 {
		return fmt.Errorf("config: bad rank organisation")
	}
	return nil
}
