package core

import (
	"fmt"
	"sync/atomic"
)

// Online degraded-mode migration.
//
// EnterDegradedMode rewrites the whole rank under quiescence — acceptable
// in a reliability model, fatal for a service. The online variant walks
// the rank band by band under the engine's ordinary shard locks, so
// demand traffic keeps flowing to every bank except the one band being
// rewritten at that instant.
//
// A *band* is one old-layout VLEW span: VLEWDataBytes/ChipAccessBytes
// consecutive, aligned blocks (32 in the paper's geometry), all in one
// row of one bank. The logical unit of the degraded layout is the
// 4-block striped VLEW group, but physical atomicity has to round up to
// the band, for two reasons:
//
//  1. The parity chip's old VLEW covers the band's full 256B column of
//     check bytes. Remapping any one group overwrites part of that
//     column with failed-chip data, which would break old-layout VLEW
//     fallback for every *other* block of the band. The band must
//     change layout as a unit.
//  2. Band v's eight striped groups land on the eight survivors at
//     code slot v — exactly the slots holding the band's own old VLEW
//     code. Rewriting the band consumes precisely the code space its
//     old layout frees, so no slot is ever shared between layouts.
//
// Cursor protocol: MigrationState holds an atomic cursor (the first
// unmigrated block), shared by every controller over the rank (all
// engine shards). Readers and writers consult it via blockStriped after
// taking the block's bank/shard lock; bands migrate only under their own
// bank's lock, so a block's layout cannot change mid-operation.
//
// EUR protocol: before a band is rewritten, the bank's open rows are
// closed, draining any ECC Update Registerfile entries targeting the
// band's old code slots. Post-migration writes to the band take the
// degraded path (controller-maintained code, no EUR), so no drain can
// ever land on a repurposed slot afterwards.

// MigrationState is the rank-wide state of one online migration: the
// retiring chip and the atomic progress cursor. One instance is shared by
// every controller (engine shard) over the rank.
type MigrationState struct {
	failedChip int
	//chipkill:atomic
	cursor atomic.Int64
}

// NewMigrationState builds migration state for the given failed data chip
// with the cursor at `cursor` (0 for a fresh migration; a band boundary
// when resuming from a recovery journal).
func NewMigrationState(failedChip int, cursor int64) *MigrationState {
	m := &MigrationState{failedChip: failedChip}
	m.cursor.Store(cursor)
	return m
}

// Cursor returns the first unmigrated block: blocks below it are in the
// striped layout, blocks at or above it in the original one.
//
//chipkill:seqread
func (m *MigrationState) Cursor() int64 { return m.cursor.Load() }

// FailedChip returns the data chip being retired.
func (m *MigrationState) FailedChip() int { return m.failedChip }

// BandBlocks returns the migration band size in blocks: one old-layout
// VLEW span (32 in the paper's geometry).
func (c *Controller) BandBlocks() int64 {
	rcfg := c.rank.Config()
	return int64(rcfg.Geometry.VLEWDataBytes / rcfg.ChipAccessBytes)
}

// Migrating returns the active migration state, or nil.
func (c *Controller) Migrating() *MigrationState { return c.mig }

// BeginMigration starts an online migration of failedChip into the
// degraded layout, with the cursor at the given band-aligned block (0
// for a fresh start; a later boundary when resuming from a journal).
// The returned state must be shared with every other controller over the
// same rank via JoinMigration before any band migrates.
func (c *Controller) BeginMigration(failedChip int, cursor int64) (*MigrationState, error) {
	if c.degraded {
		return nil, fmt.Errorf("core: already degraded (chip %d): %w", c.failedChip, ErrChipFailed)
	}
	if c.mig != nil {
		return nil, fmt.Errorf("core: %w", ErrMigrationInProgress)
	}
	if failedChip < 0 || failedChip >= c.rank.Config().DataChips {
		return nil, fmt.Errorf("core: chip %d is not a data chip", failedChip)
	}
	if !c.rank.Chip(c.rank.ParityChipIndex()).Healthy() {
		return nil, fmt.Errorf("core: parity chip unavailable for remapping: %w", ErrChipFailed)
	}
	if cursor < 0 || cursor > c.rank.Blocks() || cursor%c.BandBlocks() != 0 {
		return nil, fmt.Errorf("core: migration cursor %d not a band boundary in [0,%d]", cursor, c.rank.Blocks())
	}
	m := NewMigrationState(failedChip, cursor)
	c.mig = m
	c.failedChip = failedChip // striped addressing keys off this
	return m, nil
}

// JoinMigration attaches this controller to a migration started on
// another controller over the same rank (the engine's non-leader shards).
func (c *Controller) JoinMigration(m *MigrationState) error {
	if c.degraded {
		return fmt.Errorf("core: already degraded (chip %d): %w", c.failedChip, ErrChipFailed)
	}
	if c.mig != nil {
		return fmt.Errorf("core: %w", ErrMigrationInProgress)
	}
	c.mig = m
	c.failedChip = m.failedChip
	return nil
}

// MigrateBand migrates the band starting at `first` (which must equal the
// cursor) into the striped layout, then advances the cursor. The caller
// must hold the band's bank/shard lock. Before any physical rewrite, the
// failed chip's 8-byte slices for the band — the only bytes that move —
// are passed to wal (may be nil), giving the recovery journal a
// write-ahead image that makes a crashed rewrite redoable.
func (c *Controller) MigrateBand(first int64, wal func(failedSlices []byte) error) error {
	m := c.mig
	if m == nil {
		return fmt.Errorf("core: MigrateBand: no migration in progress")
	}
	if cur := m.Cursor(); first != cur {
		return fmt.Errorf("core: MigrateBand: band %d is not at the cursor (%d)", first, cur)
	}
	if first >= c.rank.Blocks() {
		return fmt.Errorf("core: MigrateBand: migration already complete")
	}
	// Read the band in the old layout with full correction. A dead failed
	// chip routes each block through VLEW fallback + RS erasure, so the
	// slices below are the *reconstructed* data, not chip garbage.
	n := c.rank.Config().ChipAccessBytes
	bb := c.BandBlocks()
	slices := make([]byte, int(bb)*n)
	for i := int64(0); i < bb; i++ {
		if err := c.readCorrectedInto(c.internalBuf, first+i); err != nil {
			return fmt.Errorf("core: migrating band at block %d: %w", first+i, err)
		}
		copy(slices[int(i)*n:], c.internalBuf[m.failedChip*n:(m.failedChip+1)*n])
	}
	if wal != nil {
		if err := wal(slices); err != nil {
			return fmt.Errorf("core: journaling band at block %d: %w", first, err)
		}
	}
	return c.redoBand(first, slices, m)
}

// RedoBand replays the rewrite of the band at `first` from its journaled
// failed-chip slices — boot-time crash recovery, where the band's
// physical state may be torn between layouts. The rewrite is idempotent:
// raw data stores plus XOR-to-fresh code updates converge to the striped
// layout from any intermediate state.
func (c *Controller) RedoBand(first int64, failedSlices []byte) error {
	m := c.mig
	if m == nil {
		return fmt.Errorf("core: RedoBand: no migration in progress")
	}
	if cur := m.Cursor(); first != cur {
		return fmt.Errorf("core: RedoBand: band %d is not at the cursor (%d)", first, cur)
	}
	n := c.rank.Config().ChipAccessBytes
	if want := int(c.BandBlocks()) * n; len(failedSlices) != want {
		return fmt.Errorf("core: RedoBand: got %d slice bytes, want %d", len(failedSlices), want)
	}
	return c.redoBand(first, failedSlices, m)
}

// redoBand performs the physical band rewrite: drain the bank's EURs,
// remap the failed chip's slices into the parity chip's data region, and
// re-encode the band's striped VLEW groups, then advance the cursor.
func (c *Controller) redoBand(first int64, slices []byte, m *MigrationState) error {
	r := c.rank
	rcfg := r.Config()
	n := rcfg.ChipAccessBytes
	bb := c.BandBlocks()
	code := rcfg.VLEWCode

	// Drain pending EUR code updates for this bank before the band's old
	// code slots are repurposed (see the EUR protocol note above).
	r.CloseBankRows(r.Locate(first).Bank)

	parity := r.Chip(r.ParityChipIndex())
	for i := int64(0); i < bb; i++ {
		loc := r.Locate(first + i)
		parity.WriteDataRaw(loc.Bank, loc.Row, loc.Col, slices[int(i)*n:(int(i)+1)*n])
	}
	for g := first; g < first+bb; g += stripedBlocksPerVLEW {
		bank, row, chip, slot, _ := c.stripedLoc(g)
		fresh := make([]byte, rcfg.Geometry.VLEWCodeBytes)
		copy(fresh, code.Encode(c.stripedData(g)))
		holder := r.Chip(chip)
		old := holder.ReadCode(bank, row, slot)
		for i := range old {
			old[i] ^= fresh[i] // XOR to the fresh value regardless of old content
		}
		holder.XORCode(bank, row, slot, old)
	}
	c.stats.BandsMigrated++
	m.cursor.Store(first + bb)
	return nil
}

// FinishMigration completes an online migration whose cursor has reached
// the end of the rank: the controller drops the migration state and
// becomes plainly degraded. Safe to call per-shard without quiescence —
// with the cursor at the end, blockStriped answers true either way.
func (c *Controller) FinishMigration() error {
	if c.mig == nil {
		return fmt.Errorf("core: FinishMigration: no migration in progress")
	}
	if cur := c.mig.Cursor(); cur != c.rank.Blocks() {
		return fmt.Errorf("core: FinishMigration: cursor %d short of %d", cur, c.rank.Blocks())
	}
	c.mig = nil
	c.degraded = true
	return nil
}
