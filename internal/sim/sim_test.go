package sim

import (
	"testing"

	"chipkillpm/internal/cache"
	"chipkillpm/internal/memctrl"
	"chipkillpm/internal/nvram"
	"chipkillpm/internal/trace"
)

func fastOpts(tech nvram.Tech) Options {
	opt := DefaultOptions(tech, 11)
	opt.Instructions = 600_000
	opt.Warmup = 150_000
	return opt
}

func TestRunProducesSaneResult(t *testing.T) {
	p, _ := trace.FindWorkload("echo")
	res, err := Run(p, fastOpts(nvram.PCM3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions < 600_000 {
		t.Errorf("measured %d instructions", res.Instructions)
	}
	if res.IPC <= 0 || res.IPC > 16 {
		t.Errorf("IPC=%.2f out of range", res.IPC)
	}
	if res.ElapsedNS <= 0 {
		t.Error("no elapsed time")
	}
	fr := res.PMReadFrac + res.PMWriteFrac + res.DRAMReadFrac + res.DRAMWriteFrac
	if fr < 0.99 || fr > 1.01 {
		t.Errorf("breakdown fractions sum to %.3f", fr)
	}
	if res.PMReadFrac == 0 {
		t.Error("workload did not exercise persistent memory")
	}
}

func TestRunRejectsBadBudget(t *testing.T) {
	p, _ := trace.FindWorkload("echo")
	opt := fastOpts(nvram.PCM3)
	opt.Instructions = 0
	if _, err := Run(p, opt); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	p, _ := trace.FindWorkload("btree")
	a, err := Run(p, fastOpts(nvram.PCM3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, fastOpts(nvram.PCM3))
	if err != nil {
		t.Fatal(err)
	}
	if a.IPC != b.IPC || a.ElapsedNS != b.ElapsedNS {
		t.Error("same seed produced different results")
	}
}

func TestProposalOverheadShape(t *testing.T) {
	// The reproduction's headline: the proposal costs a few percent for
	// ordinary workloads and the most for hashmap (paper: 2% average,
	// 14% worst-case hashmap under PCM).
	if testing.Short() {
		t.Skip("calibration check skipped in -short")
	}
	for _, tc := range []struct {
		name     string
		min, max float64
	}{
		{"echo", 0.93, 1.02},
		{"btree", 0.90, 1.01},
		{"hashmap", 0.65, 0.92},
		{"barnes", 0.93, 1.02},
	} {
		p, _ := trace.FindWorkload(tc.name)
		cmp, err := Compare(p, fastOpts(nvram.PCM3))
		if err != nil {
			t.Fatal(err)
		}
		if cmp.Normalized < tc.min || cmp.Normalized > tc.max {
			t.Errorf("%s: normalized %.3f outside [%.2f,%.2f]", tc.name, cmp.Normalized, tc.min, tc.max)
		}
	}
}

func TestHashmapIsWorstCase(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration check skipped in -short")
	}
	hp, _ := trace.FindWorkload("hashmap")
	ep, _ := trace.FindWorkload("echo")
	h, err := Compare(hp, fastOpts(nvram.PCM3))
	if err != nil {
		t.Fatal(err)
	}
	e, err := Compare(ep, fastOpts(nvram.PCM3))
	if err != nil {
		t.Fatal(err)
	}
	if h.Normalized >= e.Normalized {
		t.Errorf("hashmap (%.3f) should be worse than echo (%.3f)", h.Normalized, e.Normalized)
	}
}

func TestReRAMOverheadBelowPCM(t *testing.T) {
	// Sec VII: overheads are lower under ReRAM latencies (1.4%) than PCM
	// (2.3%) because the baseline write latency is shorter.
	if testing.Short() {
		t.Skip("calibration check skipped in -short")
	}
	p, _ := trace.FindWorkload("hashmap")
	pcm, err := Compare(p, fastOpts(nvram.PCM3))
	if err != nil {
		t.Fatal(err)
	}
	rer, err := Compare(p, fastOpts(nvram.ReRAM))
	if err != nil {
		t.Fatal(err)
	}
	if rer.Normalized <= pcm.Normalized {
		t.Errorf("ReRAM overhead (%.3f) should be smaller than PCM (%.3f)",
			rer.Normalized, pcm.Normalized)
	}
}

func TestCPassMeasuresCFactor(t *testing.T) {
	p, _ := trace.FindWorkload("hashmap")
	cmp, err := Compare(p, fastOpts(nvram.PCM3))
	if err != nil {
		t.Fatal(err)
	}
	if cmp.CPass.CFactor <= 0 || cmp.CPass.CFactor > 1.2 {
		t.Errorf("C factor %.3f out of range", cmp.CPass.CFactor)
	}
	// Proposal pass must reflect the inflated tWR derived from C.
	if cmp.Proposal.IPC > cmp.CPass.IPC {
		t.Log("note: proposal faster than C-pass (noise) — acceptable but unusual")
	}
	if cmp.Baseline.CFactor != 0 {
		t.Error("baseline measured a C factor")
	}
}

func TestOMVHitRateHigh(t *testing.T) {
	// Fig 18: on average 98.6% of PM writes find their OMV in the LLC.
	// hashmap's small write-behind window produces cleans quickly enough
	// for a short run.
	p, _ := trace.FindWorkload("hashmap")
	opt := fastOpts(nvram.PCM3)
	opt.Mode = memctrl.ProposalMode(0)
	opt.OMV = cache.OMVPreserve
	res, err := Run(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.OMVHitRate < 0.9 {
		t.Errorf("OMV hit rate %.3f, want > 0.9", res.OMVHitRate)
	}
}

func TestSplashSharesFootprint(t *testing.T) {
	p, _ := trace.FindWorkload("fft")
	if p.Class != trace.Splash {
		t.Fatal("fft should be SPLASH")
	}
	res, err := Run(p, fastOpts(nvram.PCM3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != trace.Splash {
		t.Error("class not propagated")
	}
}

func TestDirtyPMOccupancySampled(t *testing.T) {
	p, _ := trace.FindWorkload("hashmap")
	opt := fastOpts(nvram.PCM3)
	opt.Mode = memctrl.ProposalMode(0)
	opt.OMV = cache.OMVPreserve
	res, err := Run(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.DirtyPMFrac <= 0 {
		t.Error("dirty-PM occupancy never sampled above zero")
	}
	if res.DirtyPMFrac > 0.5 {
		t.Errorf("dirty-PM occupancy %.3f implausibly high", res.DirtyPMFrac)
	}
}
