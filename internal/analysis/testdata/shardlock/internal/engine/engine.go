// Package engine is a stub of the real internal/engine: the shardlock
// analyzer matches receiver types by package-path suffix, so this
// module exercises it without importing the repo.
package engine

type Engine struct{}

// Quiesce runs f with every shard lock held (stubbed).
func (e *Engine) Quiesce(f func()) { f() }

func (e *Engine) BootScrub() int                 { return 0 }
func (e *Engine) EnterDegradedMode(chip int) error { return nil }
func (e *Engine) PatrolScrub(start, n int) (int, error) { return start, nil }

// ReadBlockInto is demand-path: not policed.
func (e *Engine) ReadBlockInto(block int64, buf []byte) error { return nil }
