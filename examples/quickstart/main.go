// Quickstart: the proposal's two error-correction paths on one block.
//
// This walkthrough builds a paper-shaped persistent-memory rank (8 data
// chips + 1 parity chip, 256B VLEWs with 22-bit-EC BCH, per-block
// RS(72,64)), writes a block, then demonstrates:
//
//  1. the runtime read path (Fig 9): opportunistic RS correction accepted
//     up to the 2-correction threshold,
//  2. the VLEW fallback when a block carries too many errors,
//  3. chip failure: erasure correction through the parity chip.
//
// Run with: go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"chipkillpm/internal/core"
	"chipkillpm/internal/rank"
)

// main is a serial demo: fault injection runs with no concurrent
// readers.
//
//chipkill:rankwide
func main() {
	log.SetFlags(0)

	// A small rank: 2 banks x 8 rows x 1KB rows = 2048 blocks (128 KB).
	r, err := rank.New(rank.PaperConfig(2, 8, 1024, 42))
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := core.NewController(r, core.DefaultConfig(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rank: %d blocks, storage overhead %.1f%% (paper: 27%%)\n\n",
		r.Blocks(), 100*r.StorageOverhead())

	// Write a block of real data.
	const blk = int64(123)
	data := []byte("persistent memory needs chipkill-correct too!............64bytes")[:64]
	if err := ctrl.WriteBlockInitial(blk, data); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote block %d: %q\n\n", blk, data[:46])

	rng := rand.New(rand.NewSource(1))
	loc := r.Locate(blk)

	// --- 1. Runtime path: two random bit errors in two chips. ---
	for i := 0; i < 2; i++ {
		r.Chip(i).FlipDataBit(loc.Bank, loc.Row, loc.Col+rng.Intn(8), uint(rng.Intn(8)))
	}
	got, err := ctrl.ReadBlock(blk)
	check(err, got, data)
	st := ctrl.Stats()
	fmt.Println("2 bit errors: corrected opportunistically by the per-block RS")
	fmt.Printf("  RS-corrected reads: %d, VLEW fallbacks: %d\n\n",
		st.ReadsRSCorrected, st.ReadsVLEWFallback)

	// --- 2. Dense errors: threshold exceeded, VLEW fallback. ---
	for i := 0; i < 4; i++ { // 4 bad bytes in 4 chips > threshold 2
		r.Chip(i).FlipDataBit(loc.Bank, loc.Row, loc.Col+i, uint(i))
	}
	got, err = ctrl.ReadBlock(blk)
	check(err, got, data)
	st = ctrl.Stats()
	fmt.Println("4 byte errors: RS correction rejected (threshold 2), VLEWs fetched")
	fmt.Printf("  VLEW fallbacks: %d, bits corrected via VLEW: %d\n\n",
		st.ReadsVLEWFallback, st.BitsCorrectedVLEW)

	// --- 3. Chipkill: a whole chip dies. ---
	r.FailChip(3)
	got, err = ctrl.ReadBlock(blk)
	check(err, got, data)
	st = ctrl.Stats()
	fmt.Println("chip 3 failed: VLEW decode flags the dead chip, RS erasure-corrects")
	fmt.Printf("  chip failures corrected: %d\n\n", st.ChipFailuresCorrected)

	fmt.Println("all three paths returned bit-exact data")
}

func check(err error, got, want []byte) {
	if err != nil {
		log.Fatalf("read failed: %v", err)
	}
	if !bytes.Equal(got, want) {
		log.Fatalf("data corrupted: got %q", got)
	}
}
