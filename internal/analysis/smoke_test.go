package analysis_test

import (
	"testing"

	"chipkillpm/internal/analysis"
)

// TestRepoClean runs the full chipkillvet suite over the repository
// itself — the same invocation as `go run ./cmd/chipkillvet ./...` — and
// requires a clean bill. Every intentional exception in the tree must
// carry a //chipkill:allow with a reason; anything else is a contract
// violation that has to be fixed, not suppressed here.
func TestRepoClean(t *testing.T) {
	suite := analysis.NewSuite(analysis.DefaultAnalyzers()...)
	diags, err := suite.Run("../..", "./...")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("chipkillvet found %d finding(s) in the repository", len(diags))
	}
}
