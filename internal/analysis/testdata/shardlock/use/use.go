// Package use exercises the shardlock analyzer: rank-wide maintenance
// operations are only legal from //chipkill:rankwide functions or
// function literals passed to (*engine.Engine).Quiesce.
package use

import (
	"shardstub/internal/core"
	"shardstub/internal/engine"
)

// demand is ordinary demand-path code: every rank-wide call here races
// the other shards' view of the layout.
func demand(e *engine.Engine, c *core.Controller) error {
	c.BootScrub()          // want `rank-wide operation shardstub/internal/core.Controller.BootScrub called outside`
	e.BootScrub()          // want `rank-wide operation shardstub/internal/engine.Engine.BootScrub called outside`
	return c.MigrateBand(0) // want `rank-wide operation shardstub/internal/core.Controller.MigrateBand called outside`
}

// reads is demand-path too, but only calls unpoliced operations.
func reads(e *engine.Engine, c *core.Controller, buf []byte) {
	_ = e.ReadBlockInto(0, buf)
	_ = c.ReadBlockInto(0, buf)
}

// boot runs before the engine accepts demand traffic.
//
//chipkill:rankwide
func boot(e *engine.Engine, c *core.Controller) {
	c.BootScrub()
	e.BootScrub()
}

// quiesced shows the Quiesce-closure rule: inside the literal every
// shard lock is held; the same call outside is flagged.
func quiesced(e *engine.Engine, c *core.Controller) {
	e.Quiesce(func() {
		c.BootScrub()
	})
	c.BootScrub() // want `rank-wide operation shardstub/internal/core.Controller.BootScrub called outside`
}

// allowed uses the line-level escape hatch.
func allowed(c *core.Controller) {
	//chipkill:allow shardlock serial test harness, no engine running
	c.BootScrub()
}
