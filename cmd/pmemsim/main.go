// Command pmemsim runs one workload through the full-system performance
// simulator and prints the baseline/proposal comparison.
//
//	pmemsim -workload hashmap -tech pcm
//	pmemsim -workload echo -tech reram -instructions 4000000
//	pmemsim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"chipkillpm/internal/nvram"
	"chipkillpm/internal/sim"
	"chipkillpm/internal/trace"
)

func main() {
	workload := flag.String("workload", "echo", "workload name (see -list)")
	tech := flag.String("tech", "pcm", "NVRAM technology: pcm | reram")
	instructions := flag.Int64("instructions", 2_000_000, "measured instructions")
	warmup := flag.Int64("warmup", 600_000, "warmup instructions")
	seed := flag.Int64("seed", 7, "simulation seed")
	list := flag.Bool("list", false, "list workloads")
	flag.Parse()

	if *list {
		for _, p := range trace.Workloads() {
			fmt.Printf("  %-10s %-8s compute/query=%-5d PM r/w per query=%.0f/%.0f\n",
				p.Name, p.Class, p.ComputePerQuery, p.PMReads, p.PMWrites)
		}
		return
	}

	p, ok := trace.FindWorkload(*workload)
	if !ok {
		fmt.Fprintf(os.Stderr, "pmemsim: unknown workload %q (try -list)\n", *workload)
		os.Exit(1)
	}
	var t nvram.Tech
	switch *tech {
	case "pcm":
		t = nvram.PCM3
	case "reram":
		t = nvram.ReRAM
	default:
		fmt.Fprintf(os.Stderr, "pmemsim: unknown technology %q\n", *tech)
		os.Exit(1)
	}

	opt := sim.DefaultOptions(t, *seed)
	opt.Instructions = *instructions
	opt.Warmup = *warmup
	cmp, err := sim.Compare(p, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmemsim:", err)
		os.Exit(1)
	}

	fmt.Printf("workload      %s (%s), %s latencies (read %.0f ns / write %.0f ns)\n",
		p.Name, p.Class, t.Name, t.ReadLatency, t.WriteLatency)
	fmt.Printf("baseline      IPC %.3f   avg read latency %.0f ns\n",
		cmp.Baseline.IPC, cmp.Baseline.Mem.AvgReadLatencyNS())
	fmt.Printf("C factor      %.3f  (tWR inflation %.2fx + 20 ns)\n",
		cmp.CPass.CFactor, 1+(33.0/8.0)*cmp.CPass.CFactor)
	fmt.Printf("proposal      IPC %.3f   avg read latency %.0f ns\n",
		cmp.Proposal.IPC, cmp.Proposal.Mem.AvgReadLatencyNS())
	fmt.Printf("normalized    %.3f (%.1f%% overhead)\n",
		cmp.Normalized, 100*(1-cmp.Normalized))
	fmt.Printf("OMV hit rate  %.1f%%   dirty-PM occupancy %.2f%%\n",
		100*cmp.Proposal.OMVHitRate, 100*cmp.Proposal.DirtyPMFrac)
	fmt.Printf("VLEW fallback %d reads   OMV fetches %d\n",
		cmp.Proposal.Mem.VLEWFallbacks, cmp.Proposal.Mem.OMVFetches)
	fmt.Printf("access mix    PM %.0f%%r/%.0f%%w  DRAM %.0f%%r/%.0f%%w\n",
		100*cmp.Baseline.PMReadFrac, 100*cmp.Baseline.PMWriteFrac,
		100*cmp.Baseline.DRAMReadFrac, 100*cmp.Baseline.DRAMWriteFrac)
}
