package reliability

import "math"

// RSMiscorrection models the appendix's silent-data-corruption (SDC)
// calculation for a Reed-Solomon code over GF(2^8) with K data bytes and
// R check bytes, decoded with a cap of T corrections, under raw bit error
// rate RBER.
//
// SDC probability = Term A * Term B, where Term A is the probability that
// a received word contains at least nth = (R+1) - T byte errors (the
// minimum needed for the word to land within distance T of a *different*
// codeword), and Term B is the probability that such a noncodeword decodes
// into a codeword: C(K+R, T) * 256^T * 256^K / 256^(K+R)
// = C(K+R, T) * 256^(T-R).
type RSMiscorrection struct {
	K    int     // data bytes per codeword (64 in the paper)
	R    int     // check bytes per codeword (8 in the paper)
	T    int     // maximum corrections the decoder is allowed to accept
	RBER float64 // raw bit error rate
}

// NTh returns the minimum number of byte errors that can cause a
// miscorrection: minimum distance (R+1) minus the correction cap T.
func (m RSMiscorrection) NTh() int { return m.R + 1 - m.T }

// TermA returns the probability a word holds at least NTh() byte errors.
func (m RSMiscorrection) TermA() float64 {
	pByte := ByteErrorRate(m.RBER, 8)
	return BinomTail(m.K+m.R, m.NTh(), pByte)
}

// TermB returns the probability that a random noncodeword lies within
// Hamming distance T (in bytes) of some codeword.
func (m RSMiscorrection) TermB() float64 {
	// C(n, T) * 256^T * 256^K / 256^n with n = K+R, computed in log space.
	logB := LogChoose(m.K+m.R, m.T) + float64(m.T-m.R)*ln256
	return math.Exp(logB)
}

// SDCRate returns TermA() * TermB(): the probability that reading a block
// silently returns corrupted data.
func (m RSMiscorrection) SDCRate() float64 { return m.TermA() * m.TermB() }

const ln256 = 5.545177444479562 // math.Log(256)
