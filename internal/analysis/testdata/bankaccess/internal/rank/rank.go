// Package rank is a stub of the real internal/rank. As an owning
// package of the quiescence contract, its internal fan-out calls are
// the mechanism itself and must not be flagged.
package rank

import "bankstub/internal/nvram"

type Rank struct {
	chips []*nvram.Chip
}

func (r *Rank) FailChip(i int) {
	r.chips[i].Fail()
}

func (r *Rank) CloseAllRows() {
	for _, c := range r.chips {
		c.CloseAllRows()
	}
}

func (r *Rank) InjectRetentionErrors(n int) {
	for _, c := range r.chips {
		c.InjectRetentionErrors(n)
	}
}
