//go:build soak

package inject

import "testing"

// TestSoakSuite runs the deep campaigns kept out of the default test
// run: large-rank drift rounds, repeated crash cycles with a parallel
// scrub pool, and the full chip-kill matrix including the parity chip.
// Build with `-tags soak` (see `make soak`).
func TestSoakSuite(t *testing.T) {
	rep := requireSuitePass(t, "soak", 1)
	if rep.TotalSDC != 0 {
		t.Fatalf("soak suite saw %d SDCs", rep.TotalSDC)
	}
	if rep.TotalDUE != 0 {
		t.Fatalf("soak suite saw %d DUEs", rep.TotalDUE)
	}
}
