package analysis

// The lockorder analyzer enforces the fleet's declared lock partial
// order (DESIGN.md §15): every //chipkill:lock carries a level, and any
// acquisition — a mutex Lock on an annotated field, a locks-annotated
// helper, or a call to a scoped-lock function like Engine.Quiesce — must
// target a strictly higher level than every lock already held. The same
// name held twice is a self-deadlock, or, for scoped locks, a nested
// quiesce; the check runs lexically, transitively through static calls
// (using the lock graph's may-acquire fixpoint), and through registered
// hook edges (guard's Repair, the fleet's RepairBandHook). Ranked locks
// (the per-shard mutexes) may be multi-instance-held only by loops that
// iterate in ascending index order. As the annotation-removal backstop,
// every sync.Mutex/RWMutex struct field in the concurrency-contract
// packages must carry a //chipkill:lock annotation.

import (
	"fmt"
	"go/ast"
	"go/types"
)

// LockOrder enforces the declared lock partial order, the
// no-nested-quiesce rule, and ascending ranked acquisition.
var LockOrder = &Analyzer{
	Name:          "lockorder",
	Doc:           "lock acquisitions must follow the declared //chipkill:lock level order; quiesces never nest",
	SkipTestFiles: true,
	Run:           runLockOrder,
}

// lockContractPkgs are the packages whose mutexes and atomics must be
// annotated (the coverage rules that make annotation removal loud).
var lockContractPkgs = []string{
	"internal/fleet", "internal/engine", "internal/guard",
	"internal/core", "internal/nvram", "internal/rank",
}

func inLockContractPkg(path string) bool {
	for _, suffix := range lockContractPkgs {
		if pathHasSuffix(path, suffix) {
			return true
		}
	}
	return false
}

func runLockOrder(pass *Pass) {
	g := pass.Suite.locks
	if g == nil {
		return
	}
	if inLockContractPkg(pass.Pkg.PkgPath) {
		reportBareMutexes(pass, g)
	}
	for _, sc := range g.scans[pass.Pkg] {
		checkScanOrder(pass, g, sc)
	}
}

// reportBareMutexes flags mutex struct fields with no //chipkill:lock
// annotation, so deleting a mark fails vet instead of silently shrinking
// the checked order.
func reportBareMutexes(pass *Pass, g *lockGraph) {
	forEachStructField(pass.Pkg, func(owner string, fld *ast.Field) {
		tv, ok := pass.Pkg.Info.Types[fld.Type]
		if !ok || !isSyncMutexType(tv.Type) {
			return
		}
		if len(fld.Names) == 0 {
			pass.Reportf(fld.Pos(), "embedded %s in %s must be a named field with a //chipkill:lock annotation", tv.Type, owner)
			return
		}
		for _, id := range fld.Names {
			if g.fieldLock[fieldKey(pass.Pkg.PkgPath, owner, id.Name)] == "" {
				pass.Reportf(id.Pos(), "mutex field %s.%s has no //chipkill:lock annotation; declare its place in the lock order", owner, id.Name)
			}
		}
	})
}

func isSyncMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

func checkScanOrder(pass *Pass, g *lockGraph, sc *lockScan) {
	for _, a := range sc.acquires {
		held := sc.heldAt(a.pos)
		for _, h := range held {
			if v := orderViolation(g, a.lock, h); v != "" {
				pass.Reportf(a.pos, "acquires %s", v)
			}
		}
		if a.loop != nil && a.opened && a.intervalEnd > a.loop.end {
			d := g.decls[a.lock]
			switch {
			case d == nil:
			case !d.ranked:
				pass.Reportf(a.pos, "lock %q is held across loop iterations (multi-instance acquisition) but is not declared ranked", a.lock)
			case a.loop.descending:
				pass.Reportf(a.pos, "ranked lock %q acquired in a descending loop; multi-instance acquisition must be in ascending index order", a.lock)
			}
		}
	}
	for _, c := range sc.calls {
		held := sc.heldAt(c.pos)
		for _, need := range g.holdsFn[c.key] {
			if !containsStr(held, need) {
				pass.Reportf(c.pos, "call to %s requires lock %q held (//chipkill:holds), but it is not held here", c.name, need)
			}
		}
		for lk := range g.acq[c.key] {
			if lk == c.skip {
				continue
			}
			for _, h := range held {
				if v := orderViolation(g, lk, h); v != "" {
					pass.Reportf(c.pos, "call to %s may acquire %s", c.name, v)
				}
			}
		}
	}
	for _, hc := range sc.hooks {
		targets := g.hookTargets[hc.fieldKey]
		if len(targets) == 0 {
			continue
		}
		held := sc.heldAt(hc.pos)
		reported := map[string]bool{}
		for tk := range targets {
			for lk := range g.acq[tk] {
				if reported[lk] {
					continue
				}
				for _, h := range held {
					if v := orderViolation(g, lk, h); v != "" {
						pass.Reportf(hc.pos, "call through hook %s may acquire %s", hc.name, v)
						reported[lk] = true
						break
					}
				}
			}
		}
	}
}

// orderViolation describes why acquiring lk while holding h breaks the
// declared order ("" when it does not).
func orderViolation(g *lockGraph, lk, h string) string {
	dl, dh := g.decls[lk], g.decls[h]
	if dl == nil || dh == nil {
		return ""
	}
	switch {
	case lk == h && dl.virtual:
		return fmt.Sprintf("nested %q: a scoped (quiesce) section for it is already active", lk)
	case lk == h:
		return fmt.Sprintf("%q while it is already held (self-deadlock)", lk)
	case dl.level <= dh.level:
		return fmt.Sprintf("%q (level %d) while holding %q (level %d); lock levels must strictly increase", lk, dl.level, h, dh.level)
	}
	return ""
}
