package gf

import "encoding/binary"

// This file holds the slice- and table-oriented kernels behind the
// repository's hot ECC paths. The element-at-a-time Field primitives
// (Mul, Div, Exp) are convenient for reference code but cost a branch and
// two table indirections per operation; the codecs in internal/bch and
// internal/rs instead precompute byte-indexed multiplication tables for
// their fixed multipliers (code roots, generator coefficients, Chien step
// constants) and stream whole slices through them.

// MulTable is a lookup table for multiplication by one fixed field
// element: t[a] == c*a for every field element a. Build one with
// Field.MulTable for multipliers that are reused across many products
// (syndrome roots, generator coefficients); applying it is a single
// indexed load with no zero-checks or log/exp indirection.
//
// A MulTable is immutable after construction and safe for concurrent use.
type MulTable []Elem

// MulTable returns the multiplication table of c: a size-2^m slice with
// t[a] = c*a.
func (f *Field) MulTable(c Elem) MulTable {
	t := make(MulTable, f.size)
	if c == 0 {
		return t
	}
	lc := f.log[c]
	for a := 1; a < f.size; a++ {
		t[a] = f.exp[lc+f.log[a]]
	}
	return t
}

// Mul returns c*a via one table lookup.
func (t MulTable) Mul(a Elem) Elem { return t[a] }

// MulBytes sets dst[i] = c*src[i] for fields with m <= 8, where elements
// fit in a byte. dst and src must have equal length and may alias.
func (t MulTable) MulBytes(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf: MulBytes length mismatch")
	}
	for i, s := range src {
		dst[i] = byte(t[s])
	}
}

// MulAddBytes XORs c*src[i] into dst[i] for fields with m <= 8; the
// multiply-accumulate step of erasure rebuild and syndrome evaluation.
func (t MulTable) MulAddBytes(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf: MulAddBytes length mismatch")
	}
	for i, s := range src {
		dst[i] ^= byte(t[s])
	}
}

// Sqr returns a*a. Squaring is linear over GF(2) and shows up on its own
// in BCH decoding (even-index syndromes are squares of lower ones), so it
// gets a dedicated two-lookup path.
func (f *Field) Sqr(a Elem) Elem {
	if a == 0 {
		return 0
	}
	return f.exp[2*f.log[a]]
}

// AddSlice XORs src into dst elementwise (addition in characteristic 2).
// Slices must have equal length.
func AddSlice(dst, src []Elem) {
	if len(dst) != len(src) {
		panic("gf: AddSlice length mismatch")
	}
	for i, s := range src {
		dst[i] ^= s
	}
}

// MulSlice sets dst[i] = a[i]*b[i] elementwise. All slices must have equal
// length; dst may alias a or b.
func (f *Field) MulSlice(dst, a, b []Elem) {
	if len(dst) != len(a) || len(dst) != len(b) {
		panic("gf: MulSlice length mismatch")
	}
	for i := range dst {
		x, y := a[i], b[i]
		if x == 0 || y == 0 {
			dst[i] = 0
			continue
		}
		dst[i] = f.exp[f.log[x]+f.log[y]]
	}
}

// XORBytes XORs src into dst byte-wise, eight bytes per step where
// possible. It processes min(len(dst), len(src)) bytes and returns that
// count. This is the GF(2) vector addition underneath every delta write,
// parity accumulate and EUR drain in the memory model.
func XORBytes(dst, src []byte) int {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	i := 0
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
	return n
}
