package bch

import (
	"math/rand"
	"testing"
)

// Kernel microbenchmarks at the paper-relevant shape: the 256 B VLEW code
// BCH(m=12, k=2048, t=22). The *BitSerial benchmarks measure the retained
// reference implementations so one `go test -bench=Kernel` run shows the
// before/after story; cmd/benchkernels turns the same pairs into
// BENCH_kernels.json.

func paperCode() *Code { return Must(12, 2048, 22) }

func benchData(c *Code) []byte {
	data := make([]byte, c.DataBytes())
	rand.New(rand.NewSource(1)).Read(data)
	return data
}

func BenchmarkKernelEncode(b *testing.B) {
	c := paperCode()
	data := benchData(c)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Encode(data)
	}
}

func BenchmarkKernelEncodeBitSerial(b *testing.B) {
	c := paperCode()
	data := benchData(c)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.EncodeBitSerial(data)
	}
}

func BenchmarkKernelEncodeDelta(b *testing.B) {
	c := paperCode()
	delta := make([]byte, 8) // one chip-access worth of changed bytes
	rand.New(rand.NewSource(2)).Read(delta)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.EncodeDelta(delta, 1024)
	}
}

func BenchmarkKernelEncodeDeltaInto(b *testing.B) {
	c := paperCode()
	delta := make([]byte, 8)
	rand.New(rand.NewSource(2)).Read(delta)
	out := make([]byte, c.ParityBytes())
	c.EncodeDeltaInto(out, delta, 0) // build tables outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.EncodeDeltaInto(out, delta, 1024)
	}
}

func BenchmarkKernelEncodeDeltaBitSerial(b *testing.B) {
	c := paperCode()
	delta := make([]byte, 8)
	rand.New(rand.NewSource(2)).Read(delta)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.EncodeDeltaBitSerial(delta, 1024)
	}
}

func BenchmarkKernelSyndromes(b *testing.B) {
	c := paperCode()
	data := benchData(c)
	parity := c.Encode(data)
	data[5] ^= 0x10
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Syndromes(data, parity)
	}
}

func BenchmarkKernelSyndromesBitSerial(b *testing.B) {
	c := paperCode()
	data := benchData(c)
	parity := c.Encode(data)
	data[5] ^= 0x10
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SyndromesBitSerial(data, parity)
	}
}

func BenchmarkKernelCheckCleanClean(b *testing.B) {
	c := paperCode()
	data := benchData(c)
	parity := c.Encode(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.CheckClean(data, parity) {
			b.Fatal("clean word reported dirty")
		}
	}
}

// benchmarkDecode measures a full decode correcting e errors.
func benchmarkDecode(b *testing.B, e int) {
	c := paperCode()
	data := benchData(c)
	parity := c.Encode(data)
	rng := rand.New(rand.NewSource(int64(e)))
	positions := rng.Perm(c.N())[:e]
	flip := func() {
		for _, p := range positions {
			if p < c.ParityBits() {
				parity[p/8] ^= 1 << uint(p%8)
			} else {
				d := p - c.ParityBits()
				data[d/8] ^= 1 << uint(d%8)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flip()
		fixed, err := c.Decode(data, parity)
		if err != nil || fixed != e {
			b.Fatalf("decode: fixed=%d err=%v", fixed, err)
		}
	}
}

func BenchmarkKernelDecodeE1(b *testing.B)  { benchmarkDecode(b, 1) }
func BenchmarkKernelDecodeE2(b *testing.B)  { benchmarkDecode(b, 2) }
func BenchmarkKernelDecodeE3(b *testing.B)  { benchmarkDecode(b, 3) }
func BenchmarkKernelDecodeE4(b *testing.B)  { benchmarkDecode(b, 4) }
func BenchmarkKernelDecodeE22(b *testing.B) { benchmarkDecode(b, 22) }
