// Package fleet stubs the persistence-critical surface of the real
// internal/fleet for the sentinel analyzer's dropped-error checks.
package fleet

type Fleet struct{}

func (f *Fleet) Tick() error                    { return nil }
func (f *Fleet) RepairChip(rk, chip int) error  { return nil }
func (f *Fleet) ReplicateBand(band int64) error { return nil }

// Stats is not persistence-critical; dropping it is fine.
func (f *Fleet) Stats() int { return 0 }
