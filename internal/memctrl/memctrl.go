// Package memctrl is the transaction-level DDR timing model: one channel
// with a DRAM rank and a persistent-memory rank (Table I), per-bank row
// state with the closed-page policy of Sec VI, read-priority scheduling
// with FR-FCFS-style row-hit-first write draining, write-queue
// backpressure, and the proposal's timing overheads:
//
//   - PM write-recovery (tWR) inflated by (1 + 33/8 * C) to buy back
//     endurance lost to VLEW code-bit writes, plus 20 ns for the in-chip
//     encoder and internal read-modify-write (Sec VI). Following DDR
//     semantics, tWR is paid when a dirtied row closes, so row locality
//     amortises it across same-row writes;
//   - a configurable fraction of PM reads force-fetching 37 blocks to
//     model VLEW-fallback correction (0.018% at RBER 2e-4);
//   - an extra PM read before any persistent-memory write whose old
//     memory value missed in the LLC.
//
// It also measures the C factor (Fig 15) the way the hardware would:
// distinct VLEWs written per row activation, counted at row close.
package memctrl

import (
	"fmt"
	"math/rand"

	"chipkillpm/internal/config"
)

// Mode selects baseline or proposal timing behaviour.
type Mode struct {
	// Proposal enables the scheme's overheads; false models the
	// bit-error-only baseline (plain per-block ECC, no OMV machinery).
	Proposal bool
	// TWRInflation multiplies the PM rank's write-recovery latency (from
	// the measured C factor: 1 + 33/8*C); 1.0 leaves it unchanged.
	TWRInflation float64
	// ExtraTWRNS is added to the PM write recovery (20 ns in Sec VI).
	ExtraTWRNS float64
	// VLEWFallbackProb is the probability a PM read needs VLEW fallback
	// (1.8e-4 at 2e-4 RBER); the read then fetches VLEWFetchBlocks more.
	VLEWFallbackProb float64
	// VLEWFetchBlocks is the size of the fallback fetch (37 blocks).
	VLEWFetchBlocks int
	// RSDecodeLatencyNS is charged on multi-error RS corrections, which
	// hit MultiErrorProb of PM reads (1/200 at 2e-4).
	RSDecodeLatencyNS float64
	MultiErrorProb    float64
	// BCHDecodeLatencyNS is charged on VLEW fallbacks (200 ns).
	BCHDecodeLatencyNS float64
}

// BaselineMode returns the bit-error-only baseline timing.
func BaselineMode() Mode { return Mode{TWRInflation: 1} }

// ProposalMode returns the paper's proposal with the given measured C
// factor and the Sec V-C/V-E rates.
func ProposalMode(cFactor float64) Mode {
	return Mode{
		Proposal:           true,
		TWRInflation:       1 + (33.0/8.0)*cFactor,
		ExtraTWRNS:         20,
		VLEWFallbackProb:   1.8e-4,
		VLEWFetchBlocks:    37,
		RSDecodeLatencyNS:  45,
		MultiErrorProb:     1.0 / 200,
		BCHDecodeLatencyNS: 200,
	}
}

type pendingWrite struct {
	addr  uint64
	row   int64
	vlew  int64
	ready float64
}

type bank struct {
	freeAt       float64
	openRow      int64 // -1 when closed
	rowDirty     bool
	lastEnd      float64
	lastWriteEnd float64 // end of the last write burst; tWR counts from here
	pending      []pendingWrite
	dirtyVLEWs   map[int64]bool // VLEWs written during the current activation (PM only)
}

// Stats counts controller activity.
type Stats struct {
	PMReads, PMWrites     int64
	DRAMReads, DRAMWrites int64
	RowHits, RowMisses    int64
	VLEWFallbacks         int64
	OMVFetches            int64
	VLEWCodeWrites        int64 // distinct VLEWs flushed at PM row closes
	WriteStalls           int64 // writes delayed by queue backpressure
	TotalReadLatencyNS    float64
	BusBusyNS             float64

	// Latency decomposition (debug/diagnostics): time accesses spent
	// waiting on bank availability, dirty-row write recovery, and bus.
	BankWaitNS     float64
	RecoveryWaitNS float64
	BusWaitNS      float64
	FlushEvents    int64
	WriteRowHits   int64
	WriteRowMisses int64
}

// CFactor returns VLEW code writes per PM write (Fig 15).
func (s Stats) CFactor() float64 {
	if s.PMWrites == 0 {
		return 0
	}
	return float64(s.VLEWCodeWrites) / float64(s.PMWrites)
}

// AvgReadLatencyNS returns the mean read latency.
func (s Stats) AvgReadLatencyNS() float64 {
	n := s.PMReads + s.DRAMReads
	if n == 0 {
		return 0
	}
	return s.TotalReadLatencyNS / float64(n)
}

// Controller is the channel's memory controller. Not safe for concurrent
// use; the simulator drives it from a single goroutine.
type Controller struct {
	cfg    config.System
	mode   Mode
	pmBase uint64
	pmSize uint64

	dramBanks []bank
	pmBanks   []bank

	pendingTotal int
	rng          *rand.Rand
	stats        Stats
}

// New builds a controller. Addresses in [pmBase, pmBase+pmSize) belong to
// the persistent-memory rank; everything else is DRAM.
func New(cfg config.System, mode Mode, pmBase, pmSize uint64, seed int64) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if mode.TWRInflation <= 0 {
		return nil, fmt.Errorf("memctrl: TWRInflation must be positive")
	}
	c := &Controller{
		cfg: cfg, mode: mode, pmBase: pmBase, pmSize: pmSize,
		dramBanks: make([]bank, cfg.BanksPerRank),
		pmBanks:   make([]bank, cfg.BanksPerRank),
		rng:       rand.New(rand.NewSource(seed)),
	}
	for i := range c.dramBanks {
		c.dramBanks[i].openRow = -1
		c.pmBanks[i].openRow = -1
		c.pmBanks[i].dirtyVLEWs = make(map[int64]bool)
	}
	return c, nil
}

// Stats returns a snapshot of the counters.
func (c *Controller) Stats() Stats { return c.stats }

// ResetStats zeroes the counters (after warmup).
func (c *Controller) ResetStats() { c.stats = Stats{} }

// IsPM implements cache.Memory.
func (c *Controller) IsPM(addr uint64) bool {
	return addr >= c.pmBase && addr < c.pmBase+c.pmSize
}

// blocksPerRow: each chip contributes RowBytes of row data; 8 data chips
// give RowBytes*8 bytes per rank row, i.e. RowBytes/8 blocks of 64B.
func (c *Controller) blocksPerRow() int64 { return int64(c.cfg.RowBytes) / 8 }

// blocksPerVLEW: one VLEW covers 256B of per-chip data = 32 blocks.
func (c *Controller) blocksPerVLEW() int64 { return 256 / 8 }

func (c *Controller) decode(addr uint64) (pm bool, b *bank, row int64, vlew int64, t *config.DDRTiming) {
	pm = c.IsPM(addr)
	var block uint64
	if pm {
		block = (addr - c.pmBase) >> 6
		t = &c.cfg.PM
	} else {
		block = addr >> 6
		t = &c.cfg.DRAM
	}
	rowID := int64(block) / c.blocksPerRow()
	bankIdx := rowID % int64(c.cfg.BanksPerRank)
	row = rowID / int64(c.cfg.BanksPerRank)
	if pm {
		b = &c.pmBanks[bankIdx]
	} else {
		b = &c.dramBanks[bankIdx]
	}
	vlew = int64(block) / c.blocksPerVLEW()
	return pm, b, row, vlew, t
}

// effectiveTWR returns the write-recovery time for a rank, inflated for
// the proposal on the PM rank.
func (c *Controller) effectiveTWR(t *config.DDRTiming, pm bool) float64 {
	if pm && c.mode.Proposal {
		return t.TWRNS*c.mode.TWRInflation + c.mode.ExtraTWRNS
	}
	return t.TWRNS
}

// flushVLEWs counts the EUR drain at a PM row close.
func (c *Controller) flushVLEWs(b *bank) {
	if len(b.dirtyVLEWs) > 0 {
		c.stats.VLEWCodeWrites += int64(len(b.dirtyVLEWs))
		c.stats.FlushEvents++
		clear(b.dirtyVLEWs)
	}
}

// access performs one column access, handling the closed-page policy, row
// transitions and the write-recovery penalty of dirty rows. It returns the
// time the data burst completes.
func (c *Controller) access(b *bank, row, vlew int64, arrival float64, t *config.DDRTiming, pm, isWrite bool) float64 {
	start := max(arrival, b.freeAt)
	if start > arrival {
		c.stats.BankWaitNS += start - arrival
	}
	twr := c.effectiveTWR(t, pm)

	// Closed-page policy: the row auto-closes after ClosePageNS of
	// inactivity. Write recovery (tWR, counted from the last burst) and
	// the precharge proceed in the background and overlap with the idle
	// time; the bank is unavailable only until the close completes.
	if b.openRow >= 0 && start-b.lastEnd > c.cfg.Controller.ClosePageNS {
		preIssue := b.lastEnd + c.cfg.Controller.ClosePageNS
		if b.rowDirty {
			preIssue = max(preIssue, b.lastWriteEnd+twr)
			if pm {
				c.flushVLEWs(b)
			}
		}
		b.openRow = -1
		b.rowDirty = false
		if preIssue+t.TRPNS > start {
			c.stats.RecoveryWaitNS += preIssue + t.TRPNS - start
			start = preIssue + t.TRPNS
		}
	}

	var dataAt float64
	switch {
	case b.openRow == row:
		c.stats.RowHits++
		if isWrite {
			c.stats.WriteRowHits++
		}
		dataAt = start + t.TCASNS
	case b.openRow < 0:
		c.stats.RowMisses++
		if isWrite {
			c.stats.WriteRowMisses++
		}
		dataAt = start + t.TRCDNS + t.TCASNS
	default:
		// Row conflict: wait out the dirty row's write recovery (counted
		// from its last burst), then precharge and activate.
		c.stats.RowMisses++
		if isWrite {
			c.stats.WriteRowMisses++
		}
		preIssue := start
		if b.rowDirty {
			preIssue = max(start, b.lastWriteEnd+twr)
			c.stats.RecoveryWaitNS += preIssue - start
			if pm {
				c.flushVLEWs(b)
			}
		}
		b.rowDirty = false
		dataAt = preIssue + t.TRPNS + t.TRCDNS + t.TCASNS
	}
	b.openRow = row
	if isWrite {
		b.rowDirty = true
		if pm && c.mode.Proposal {
			b.dirtyVLEWs[vlew] = true
		}
	}
	// The data burst. Channel utilisation in the evaluated configurations
	// is a few percent, so the bus is modelled as a tracked-but-
	// uncontended resource; serialising it in request-processing order
	// would create false head-of-line blocking across banks.
	done := dataAt + t.TBurstNS
	c.stats.BusBusyNS += t.TBurstNS
	b.freeAt = done
	b.lastEnd = done
	if isWrite {
		b.lastWriteEnd = done
	}
	return done
}

// nextWriteIdx returns the FR-FCFS choice among pending writes: one
// hitting the open row first, otherwise the oldest.
func (b *bank) nextWriteIdx() int {
	if b.openRow >= 0 {
		for i, w := range b.pending {
			if w.row == b.openRow {
				return i
			}
		}
	}
	return 0
}

// popWrite removes and returns the pending write at idx.
func (b *bank) popWrite(idx int) pendingWrite {
	w := b.pending[idx]
	b.pending = append(b.pending[:idx], b.pending[idx+1:]...)
	return w
}

// serviceOnePending services the FR-FCFS choice from one bank's queue.
// Writes may be serviced "in the past" (start = max(bank free, enqueue
// time)), which models the idle-gap draining a real controller performs
// between reads; reads always jump ahead of queued writes.
func (c *Controller) serviceOnePending(b *bank) {
	w := b.popWrite(b.nextWriteIdx())
	pm := c.IsPM(w.addr)
	t := &c.cfg.DRAM
	if pm {
		t = &c.cfg.PM
	}
	start := max(b.freeAt, w.ready)
	c.access(b, w.row, w.vlew, start, t, pm, true)
	if pm {
		c.stats.PMWrites++
	} else {
		c.stats.DRAMWrites++
	}
	c.pendingTotal--
}

// gapDrain services pending writes that the bank could have completed —
// including their write recovery — before `now`, modelling the idle-gap
// write draining a real controller performs between reads. Because the
// recovery window has fully elapsed, the triggering read never waits on
// it; and because drained writes often continue the bank's open dirty
// row, split write bursts re-merge into one activation (keeping the C
// factor honest).
func (c *Controller) gapDrain(b *bank, now float64, t *config.DDRTiming, pm bool) {
	// Controllers switch into write-drain mode in batches, not per write;
	// requiring a minimum batch lets same-row writes accumulate so the
	// EUR can coalesce their VLEW code updates into one row activation.
	// Wait for a write run to accumulate (so one activation covers it)
	// unless the oldest pending write has aged out.
	const (
		minDrainBatch = 8
		maxWriteAgeNS = 5000
	)
	if len(b.pending) == 0 {
		return
	}
	if len(b.pending) < minDrainBatch && now-b.pending[0].ready < maxWriteAgeNS {
		return
	}
	serviceUB := t.TRPNS + t.TRCDNS + t.TCASNS + t.TBurstNS
	margin := serviceUB + c.effectiveTWR(t, pm)
	for len(b.pending) > 0 {
		idx := b.nextWriteIdx()
		w := b.pending[idx]
		start := max(b.freeAt, w.ready)
		if start+margin > now {
			return
		}
		b.popWrite(idx)
		c.access(b, w.row, w.vlew, start, t, pm, true)
		if pm {
			c.stats.PMWrites++
		} else {
			c.stats.DRAMWrites++
		}
		c.pendingTotal--
	}
}

// Read implements cache.Memory: returns the time the block's data is
// available.
func (c *Controller) Read(addr uint64, now float64) float64 {
	pm, b, row, vlew, t := c.decode(addr)
	c.gapDrain(b, now, t, pm)
	done := c.access(b, row, vlew, now, t, pm, false)

	if pm {
		c.stats.PMReads++
		if c.mode.Proposal {
			if c.rng.Float64() < c.mode.VLEWFallbackProb {
				// VLEW fallback: stream VLEWFetchBlocks more blocks from
				// the (open) row and decode the 22-EC BCH.
				c.stats.VLEWFallbacks++
				extra := float64(c.mode.VLEWFetchBlocks) * t.TBurstNS
				done += extra + c.mode.BCHDecodeLatencyNS
				c.stats.BusBusyNS += extra
				b.freeAt = done
				b.lastEnd = done
			} else if c.rng.Float64() < c.mode.MultiErrorProb {
				done += c.mode.RSDecodeLatencyNS
			}
		}
	} else {
		c.stats.DRAMReads++
	}
	c.stats.TotalReadLatencyNS += done - now
	return done
}

// Write implements cache.Memory: posts a block write, fetching the old
// memory value first when the LLC could not supply it. Returns the time
// the CPU side may proceed (later than now only under backpressure).
func (c *Controller) Write(addr uint64, now float64, needOMV bool) float64 {
	pm, b, row, vlew, _ := c.decode(addr)
	ready := now
	if pm && c.mode.Proposal && needOMV {
		// Fetch the OMV from memory; the write's data (the bitwise sum)
		// can only be formed after the old value arrives.
		c.stats.OMVFetches++
		ready = c.Read(addr, now)
	}
	b.pending = append(b.pending, pendingWrite{addr: addr, row: row, vlew: vlew, ready: ready})
	c.pendingTotal++
	if c.pendingTotal <= c.cfg.Controller.WriteDrainHigh {
		return ready
	}
	// High watermark reached: drain in bulk down to the low watermark
	// (FR-FCFS row batching amortises write recovery across a burst).
	c.stats.WriteStalls++
	for c.pendingTotal > c.cfg.Controller.WriteDrainLow {
		ob := c.oldestPendingBank()
		if ob == nil {
			break
		}
		c.serviceOnePending(ob)
	}
	// The requester proceeds once queue space exists; the drained writes
	// complete on their own schedule.
	return max(ready, b.freeAt)
}

// oldestPendingBank returns the bank holding the oldest pending write.
func (c *Controller) oldestPendingBank() *bank {
	var best *bank
	bestReady := 0.0
	scan := func(banks []bank) {
		for i := range banks {
			b := &banks[i]
			if len(b.pending) == 0 {
				continue
			}
			if best == nil || b.pending[0].ready < bestReady {
				best = b
				bestReady = b.pending[0].ready
			}
		}
	}
	scan(c.dramBanks)
	scan(c.pmBanks)
	return best
}

// Drain services every pending write (end of simulation) and closes all
// rows, flushing EUR counts so the C factor is complete.
func (c *Controller) Drain() {
	for c.pendingTotal > 0 {
		b := c.oldestPendingBank()
		if b == nil {
			break
		}
		c.serviceOnePending(b)
	}
	for i := range c.pmBanks {
		c.flushVLEWs(&c.pmBanks[i])
		c.pmBanks[i].openRow = -1
		c.pmBanks[i].rowDirty = false
	}
	for i := range c.dramBanks {
		c.dramBanks[i].openRow = -1
		c.dramBanks[i].rowDirty = false
	}
}
