package experiments

import "testing"

func TestValidateTermBMatchesPrediction(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo skipped in -short")
	}
	v, err := ValidateTermB(4, 120_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Predicted 2.4e-4 -> ~29 events in 120k trials; accept 2x slack.
	if v.Miscorrected == 0 {
		t.Fatal("no miscorrections observed; Term B validation impossible")
	}
	ratio := v.Rate() / v.Predicted
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("measured Term B %.2e vs predicted %.2e (ratio %.2f)", v.Rate(), v.Predicted, ratio)
	}
	t.Logf("t=4: %d/%d miscorrections (%.2e vs predicted %.2e)", v.Miscorrected, v.Trials, v.Rate(), v.Predicted)
}
