// Package errs declares sentinel errors following the repo's ErrX
// convention.
package errs

import "errors"

var (
	ErrUncorrectable = errors.New("uncorrectable block")
	ErrChipFailed    = errors.New("chip failed")
)

// NotASentinel is error-typed but does not follow the Err prefix
// convention; comparisons against it are not policed.
var NotASentinel = errors.New("not a sentinel")
