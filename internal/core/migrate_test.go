package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// migrateAll drives an online migration to completion, returning the WAL
// images handed to the journal callback (one per band).
func migrateAll(t *testing.T, c *Controller, chip int) [][]byte {
	t.Helper()
	m, err := c.BeginMigration(chip, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wals [][]byte
	for m.Cursor() < c.Rank().Blocks() {
		err := c.MigrateBand(m.Cursor(), func(slices []byte) error {
			wals = append(wals, append([]byte(nil), slices...))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FinishMigration(); err != nil {
		t.Fatal(err)
	}
	return wals
}

// TestOnlineMigrationMatchesStopTheWorld migrates band by band — with the
// failed chip dead, so every band is reconstructed via RS erasure — and
// checks every block against the reference, interleaving demand traffic
// on both sides of the cursor while the migration is in flight.
func TestOnlineMigrationMatchesStopTheWorld(t *testing.T) {
	c := newTestController(t, 42, nil)
	ref := fillRandom(t, c, 43)
	const failed = 3
	c.Rank().FailChip(failed)

	m, err := c.BeginMigration(failed, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	blocks := c.Rank().Blocks()
	walBands := 0
	for m.Cursor() < blocks {
		if err := c.MigrateBand(m.Cursor(), func([]byte) error { walBands++; return nil }); err != nil {
			t.Fatal(err)
		}
		// Demand traffic against both layouts mid-migration.
		for i := 0; i < 4; i++ {
			b := rng.Int63n(blocks)
			if rng.Intn(2) == 0 {
				got, err := c.ReadBlock(b)
				if err != nil {
					t.Fatalf("mid-migration read %d (cursor %d): %v", b, m.Cursor(), err)
				}
				if !bytes.Equal(got, ref[b]) {
					t.Fatalf("mid-migration read %d: wrong data (cursor %d)", b, m.Cursor())
				}
			} else {
				data := make([]byte, 64)
				rng.Read(data)
				if err := c.WriteBlock(b, data); err != nil {
					t.Fatalf("mid-migration write %d (cursor %d): %v", b, m.Cursor(), err)
				}
				ref[b] = data
			}
		}
	}
	if err := c.FinishMigration(); err != nil {
		t.Fatal(err)
	}
	if deg, chip := c.Degraded(); !deg || chip != failed {
		t.Fatalf("after migration: degraded=%v chip=%d", deg, chip)
	}
	if want := blocks / c.BandBlocks(); int64(walBands) != want {
		t.Fatalf("WAL callback ran %d times, want %d", walBands, want)
	}
	for b := int64(0); b < blocks; b++ {
		got, err := c.ReadBlock(b)
		if err != nil {
			t.Fatalf("post-migration read %d: %v", b, err)
		}
		if !bytes.Equal(got, ref[b]) {
			t.Fatalf("post-migration read %d: wrong data", b)
		}
	}
	if got := c.Stats().BandsMigrated; got != blocks/c.BandBlocks() {
		t.Fatalf("BandsMigrated = %d, want %d", got, blocks/c.BandBlocks())
	}
}

// TestRedoBandFromTornState crashes a band rewrite at its most torn
// point — parity slices half-written, no striped code yet — and checks
// that RedoBand from the WAL image converges to the striped layout.
func TestRedoBandFromTornState(t *testing.T) {
	c := newTestController(t, 50, nil)
	ref := fillRandom(t, c, 51)
	const failed = 5
	c.Rank().FailChip(failed)

	m, err := c.BeginMigration(failed, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Migrate two bands normally, capturing the third band's WAL image.
	for i := 0; i < 2; i++ {
		if err := c.MigrateBand(m.Cursor(), nil); err != nil {
			t.Fatal(err)
		}
	}
	first := m.Cursor()
	var wal []byte
	captureErr := errors.New("stop before rewrite")
	err = c.MigrateBand(first, func(slices []byte) error {
		wal = append([]byte(nil), slices...)
		return captureErr // abort after journaling, before any rewrite
	})
	if !errors.Is(err, captureErr) {
		t.Fatalf("MigrateBand: %v", err)
	}
	// Tear: write the remapped slice for only half the band's blocks.
	n := c.Rank().Config().ChipAccessBytes
	parity := c.Rank().Chip(c.Rank().ParityChipIndex())
	for i := int64(0); i < c.BandBlocks()/2; i++ {
		loc := c.Rank().Locate(first + i)
		parity.WriteDataRaw(loc.Bank, loc.Row, loc.Col, wal[int(i)*n:(int(i)+1)*n])
	}
	// Redo from the journal image, then finish the migration.
	if err := c.RedoBand(first, wal); err != nil {
		t.Fatal(err)
	}
	for m.Cursor() < c.Rank().Blocks() {
		if err := c.MigrateBand(m.Cursor(), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FinishMigration(); err != nil {
		t.Fatal(err)
	}
	for b := int64(0); b < c.Rank().Blocks(); b++ {
		got, err := c.ReadBlock(b)
		if err != nil {
			t.Fatalf("read %d: %v", b, err)
		}
		if !bytes.Equal(got, ref[b]) {
			t.Fatalf("read %d: wrong data", b)
		}
	}
}

// TestMigrationWithHealthyChip covers proactive retirement: the suspect
// chip still answers, so bands are read via the fast path, not erasure.
func TestMigrationWithHealthyChip(t *testing.T) {
	c := newTestController(t, 60, nil)
	ref := fillRandom(t, c, 61)
	migrateAll(t, c, 0)
	for b := int64(0); b < c.Rank().Blocks(); b++ {
		got, err := c.ReadBlock(b)
		if err != nil {
			t.Fatalf("read %d: %v", b, err)
		}
		if !bytes.Equal(got, ref[b]) {
			t.Fatalf("read %d: wrong data", b)
		}
	}
}

// TestPatrolScrubPausedDuringMigration pins the patrol no-op contract
// mid-migration and the striped patrol walk after it.
func TestPatrolScrubPausedDuringMigration(t *testing.T) {
	c := newTestController(t, 70, nil)
	fillRandom(t, c, 71)
	m, err := c.BeginMigration(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if next, fixed := c.PatrolScrub(5, 10); next != 5 || fixed != 0 {
		t.Fatalf("patrol mid-migration: next=%d fixed=%d, want 5, 0", next, fixed)
	}
	for m.Cursor() < c.Rank().Blocks() {
		if err := c.MigrateBand(m.Cursor(), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FinishMigration(); err != nil {
		t.Fatal(err)
	}
	// Degraded patrol: walk every striped group; a healthy rank scrubs
	// them all without an uncorrectable.
	total := c.TotalPatrolUnits()
	if want := c.Rank().Blocks() / 4; total != want {
		t.Fatalf("degraded TotalPatrolUnits = %d, want %d", total, want)
	}
	before := c.Stats()
	pos := int64(0)
	var fixed int64
	for scanned := int64(0); scanned < total; scanned += 16 {
		var f int64
		pos, f = c.PatrolScrub(pos, 16)
		fixed += f
	}
	after := c.Stats()
	if after.ScrubUncorrectable != before.ScrubUncorrectable {
		t.Fatalf("degraded patrol hit %d uncorrectable groups", after.ScrubUncorrectable-before.ScrubUncorrectable)
	}
	if after.ScrubbedVLEWs-before.ScrubbedVLEWs < total {
		t.Fatalf("degraded patrol scrubbed %d units, want >= %d", after.ScrubbedVLEWs-before.ScrubbedVLEWs, total)
	}
}

// TestErrorSentinels asserts every exported failure path is
// errors.Is-matchable against the package sentinels.
func TestErrorSentinels(t *testing.T) {
	c := newTestController(t, 80, nil)
	fillRandom(t, c, 81)

	c.DisableBlock(9)
	if _, err := c.ReadBlock(9); !errors.Is(err, ErrBlockDisabled) {
		t.Errorf("disabled read: %v not ErrBlockDisabled", err)
	}
	if err := c.WriteBlock(9, make([]byte, 64)); !errors.Is(err, ErrBlockDisabled) {
		t.Errorf("disabled write: %v not ErrBlockDisabled", err)
	}

	// Two dead chips exceed the scheme: reads are DUEs.
	c2 := newTestController(t, 82, nil)
	fillRandom(t, c2, 83)
	c2.Rank().FailChip(1)
	c2.Rank().FailChip(4)
	if _, err := c2.ReadBlock(0); !errors.Is(err, ErrUncorrectable) {
		t.Errorf("double-kill read: %v not ErrUncorrectable", err)
	}
	if tel := c2.Telemetry(); tel.DUEs == 0 {
		t.Error("double-kill read did not count a DUE in telemetry")
	}

	// Migration conflicts.
	c3 := newTestController(t, 84, nil)
	fillRandom(t, c3, 85)
	if _, err := c3.BeginMigration(2, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c3.BeginMigration(2, 0); !errors.Is(err, ErrMigrationInProgress) {
		t.Errorf("double BeginMigration: %v not ErrMigrationInProgress", err)
	}
	if err := c3.EnterDegradedMode(2); !errors.Is(err, ErrMigrationInProgress) {
		t.Errorf("EnterDegradedMode mid-migration: %v not ErrMigrationInProgress", err)
	}
	if err := c3.AdoptDegradedMode(2); !errors.Is(err, ErrMigrationInProgress) {
		t.Errorf("AdoptDegradedMode mid-migration: %v not ErrMigrationInProgress", err)
	}
	if err := c3.JoinMigration(NewMigrationState(2, 0)); !errors.Is(err, ErrMigrationInProgress) {
		t.Errorf("JoinMigration mid-migration: %v not ErrMigrationInProgress", err)
	}

	// Chip-level dead ends.
	c4 := newTestController(t, 86, nil)
	fillRandom(t, c4, 87)
	c4.Rank().FailChip(c4.Rank().ParityChipIndex())
	if _, err := c4.BeginMigration(2, 0); !errors.Is(err, ErrChipFailed) {
		t.Errorf("BeginMigration with dead parity: %v not ErrChipFailed", err)
	}
	if err := c4.EnterDegradedMode(2); !errors.Is(err, ErrChipFailed) {
		t.Errorf("EnterDegradedMode with dead parity: %v not ErrChipFailed", err)
	}

	c5 := newTestController(t, 88, nil)
	fillRandom(t, c5, 89)
	if err := c5.EnterDegradedMode(3); err != nil {
		t.Fatal(err)
	}
	if err := c5.AdoptDegradedMode(3); !errors.Is(err, ErrChipFailed) {
		t.Errorf("AdoptDegradedMode when degraded: %v not ErrChipFailed", err)
	}
	if _, err := c5.BeginMigration(3, 0); !errors.Is(err, ErrChipFailed) {
		t.Errorf("BeginMigration when degraded: %v not ErrChipFailed", err)
	}
}

// TestTelemetryAttribution checks the per-chip attribution paths: RS
// corrections, VLEW failures, and erasure repairs all land on the right
// chip, and snapshots may be diffed.
func TestTelemetryAttribution(t *testing.T) {
	c := newTestController(t, 90, nil)
	fillRandom(t, c, 91)
	base := c.Telemetry()

	// A couple of bit flips on chip 2 within one block: RS-corrected.
	loc := c.Rank().Locate(100)
	c.Rank().Chip(2).FlipDataBit(loc.Bank, loc.Row, loc.Col, 3)
	if _, err := c.ReadBlock(100); err != nil {
		t.Fatal(err)
	}
	d := c.Telemetry().Delta(base)
	if d.Chips[2].RSCorrections == 0 {
		t.Error("RS correction not attributed to chip 2")
	}

	// Kill chip 6: fallback reads record a VLEW failure and an erasure
	// repair for it.
	base = c.Telemetry()
	c.Rank().FailChip(6)
	if _, err := c.ReadBlock(200); err != nil {
		t.Fatal(err)
	}
	d = c.Telemetry().Delta(base)
	if d.Chips[6].VLEWFailures == 0 {
		t.Error("VLEW failure not attributed to chip 6")
	}
	if d.Chips[6].ErasureRepairs == 0 {
		t.Error("erasure repair not attributed to chip 6")
	}
	if d.Chips[6].FailedAccesses == 0 {
		t.Error("failed accesses not surfaced for chip 6")
	}
	for ci := range d.Chips {
		if ci != 6 && d.Chips[ci].VLEWFailures != 0 {
			t.Errorf("spurious VLEW failure attributed to chip %d", ci)
		}
	}
}

// TestProbeVLEW pins the probe discriminator: probes pass on a healthy
// chip, fail on a dead one, and a single broken word fails only its own
// probe.
func TestProbeVLEW(t *testing.T) {
	c := newTestController(t, 95, nil)
	fillRandom(t, c, 96)
	if !c.ProbeVLEW(1, 0, 0, 0) {
		t.Error("probe of healthy chip failed")
	}
	c.Rank().FailChip(1)
	fails := 0
	for v := 0; v < 4; v++ {
		if !c.ProbeVLEW(1, 0, 0, v) {
			fails++
		}
	}
	if fails < 3 {
		t.Errorf("dead chip passed %d/4 probes", 4-fails)
	}
}
