// Package core is a stub of the real internal/core for the shardlock
// analyzer's path-suffix matching.
package core

type Controller struct{}

func (c *Controller) BootScrub() int           { return 0 }
func (c *Controller) MigrateBand(band int) error { return nil }

// ReadBlockInto is demand-path: not policed.
func (c *Controller) ReadBlockInto(block int64, buf []byte) error { return nil }
