// Command benchruntime is the end-to-end demand-path throughput harness.
// Where benchkernels times isolated ECC kernels, this command drives the
// sharded engine with a fixed population of client goroutines and measures
// whole-stack reads/sec and writes/sec — chip model, rank, RS check,
// controller, shard dispatch — at several GOMAXPROCS settings, clean and
// under drift, with OMV hits and misses. Results are written as JSON, by
// convention committed as BENCH_runtime.json at the repo root.
//
// Every scenario also ran once against the growth seed's single-shard
// controller (pre-optimization tree: byte-serial RS remainder, allocating
// read path) on the same scenario code; those numbers are frozen below as
// seed_ops_per_sec. speedup_vs_seed is only meaningful on comparable
// hardware. -check enforces the PR gates:
//
//   - aggregate clean-read throughput at GOMAXPROCS=8 must be >= 8x the
//     frozen seed baseline and the clean-read path must report zero
//     allocations per operation;
//   - WriteOMVHit and WriteOMVMiss at p8 must be >= 3x their frozen seed
//     baselines with zero allocations per operation (the zero-alloc
//     chip-parallel write pipeline);
//   - DriftRead at p8 must be >= 4.75x seed (the pooled correction
//     path: single-symbol drift corrections decode in closed form;
//     measured 5.3-6.9x, the floor leaves room for host jitter) with
//     zero allocations per operation;
//   - ContendedRead and WriteRowLocal are gated rows: allocs/op must be
//     zero, and p8 throughput must hold >= 0.5x the baselines frozen in
//     baselineOps (measured on this repo's single-CPU reference host —
//     the wide margin absorbs hardware variance);
//   - on hosts with at least two CPUs, batch clean reads at p8 must be
//     >= 2x the p1 figure. On single-CPU hosts this scaling gate is
//     skipped with a notice: the sweep cannot scale.
//
// Usage:
//
//	go run ./cmd/benchruntime [-out BENCH_runtime.json] [-benchtime 1s] [-check]
//	go run ./cmd/benchruntime -scenario Write -cpuprofile cpu.pprof -memprofile mem.pprof -out -
//	go run ./cmd/benchruntime -validate BENCH_runtime.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"testing"

	"chipkillpm/internal/core"
	"chipkillpm/internal/engine"
	"chipkillpm/internal/rank"
)

// Benchmark geometry: an 8-bank rank (16384 blocks, 1 MiB of data) served
// by one shard per bank to a fixed population of 8 client goroutines.
const (
	benchBanks       = 8
	benchRowsPerBank = 16
	benchRowBytes    = 1024
	benchClients     = 8
	batchSize        = 64
	driftRBER        = 2e-4
)

// procsList is the GOMAXPROCS sweep; every value must divide benchClients
// so the client population stays fixed across the sweep.
var procsList = []int{1, 4, 8}

// seedOps freezes ops/sec measured at the growth seed (single controller,
// no sharding, byte-serial RS remainder, allocating read path) on an Intel
// Xeon @ 2.10 GHz, go1.22, same scenario code and geometry. The batch
// scenario compares against the single-op seed number: the seed tree had
// no batch API, and the gate is aggregate clean-read throughput.
// ContendedRead and WriteRowLocal have no entries: those mixes did not
// exist at the seed, so speedup_vs_seed is omitted for them.
var seedOps = map[string]float64{
	"engine/CleanRead/p1":      1615088,
	"engine/CleanRead/p4":      1113479,
	"engine/CleanRead/p8":      958323,
	"engine/CleanReadBatch/p1": 1615088,
	"engine/CleanReadBatch/p4": 1113479,
	"engine/CleanReadBatch/p8": 958323,
	"engine/DriftRead/p1":      1137453,
	"engine/DriftRead/p4":      801377,
	"engine/DriftRead/p8":      814919,
	"engine/WriteOMVHit/p1":    60273,
	"engine/WriteOMVHit/p4":    41080,
	"engine/WriteOMVHit/p8":    40996,
	"engine/WriteOMVMiss/p1":   56872,
	"engine/WriteOMVMiss/p4":   36598,
	"engine/WriteOMVMiss/p8":   39431,
}

// baselineOps freezes p8 ops/sec for the scenarios that did not exist at
// the growth seed, measured on this repo's single-CPU reference host when
// each scenario was promoted to a gated row. The -check floor is 0.5x —
// a regression guard with a wide margin for hardware variance, not a
// performance target.
var baselineOps = map[string]float64{
	"engine/ContendedRead/p8": 6225580,
	"engine/WriteRowLocal/p8": 1138783,
}

type result struct {
	Name  string `json:"name"`
	Procs int    `json:"procs"`
	// Gomaxprocs is the runtime.GOMAXPROCS value observed inside the
	// run; on hosts with fewer CPUs than Procs it still equals Procs
	// (GOMAXPROCS is a cap, not a core count — see host_num_cpu).
	Gomaxprocs    int     `json:"gomaxprocs"`
	NsPerOp       float64 `json:"ns_per_op"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	SeedOpsPerSec float64 `json:"seed_ops_per_sec,omitempty"`
	SpeedupVsSeed float64 `json:"speedup_vs_seed,omitempty"`
	// Baseline fields mirror the seed fields for scenarios frozen after
	// the seed (see baselineOps).
	BaselineOpsPerSec float64 `json:"baseline_ops_per_sec,omitempty"`
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

type headline struct {
	// CleanReadSpeedupP8 is aggregate clean-read throughput (the batch
	// path) at GOMAXPROCS=8 over the frozen seed baseline; the -check
	// floor is 3x.
	CleanReadSpeedupP8 float64 `json:"clean_read_speedup_p8"`
	// CleanReadAllocsPerOp is the worst allocs/op over every clean-read
	// scenario; the -check ceiling is 0.
	CleanReadAllocsPerOp int64 `json:"clean_read_allocs_per_op"`
	// CleanReadScalingP8VsP1 is batch clean-read ops/sec at p8 over p1.
	// -check requires >= 2x, but only on hosts with >= 2 CPUs: with one
	// core the sweep measures scheduling overhead, not scaling.
	CleanReadScalingP8VsP1 float64 `json:"clean_read_scaling_p8_vs_p1,omitempty"`
	// Write-pipeline headlines: OMV-hit/miss throughput at p8 over the
	// frozen seed (-check floor 3x) and the worst allocs/op across every
	// write scenario (-check ceiling 0).
	WriteOMVHitSpeedupP8  float64 `json:"write_omv_hit_speedup_p8"`
	WriteOMVMissSpeedupP8 float64 `json:"write_omv_miss_speedup_p8"`
	WriteAllocsPerOp      int64   `json:"write_allocs_per_op"`
	// DriftReadSpeedupP8 is drift-read throughput at p8 over the frozen
	// seed; the -check floor is 4.75x (the pooled correction path,
	// measured 5.3-6.9x on the reference host), with a 0 allocs/op
	// ceiling folded into DriftReadAllocsPerOp.
	DriftReadSpeedupP8   float64 `json:"drift_read_speedup_p8"`
	DriftReadAllocsPerOp int64   `json:"drift_read_allocs_per_op"`
	// Baseline ratios for the post-seed gated rows (-check floor 0.5x,
	// plus 0 allocs/op).
	ContendedReadP8VsBaseline float64 `json:"contended_read_p8_vs_baseline"`
	WriteRowLocalP8VsBaseline float64 `json:"write_row_local_p8_vs_baseline"`
}

type report struct {
	GoVersion string `json:"go_version"`
	GoArch    string `json:"go_arch"`
	// HostNumCPU is runtime.NumCPU(): the physical parallelism available.
	// HostMaxProcs is the GOMAXPROCS the process started with, which an
	// environment override can set above or below the CPU count — the two
	// were conflated before, hiding single-core runs in the report.
	HostNumCPU   int      `json:"host_num_cpu"`
	HostMaxProcs int      `json:"host_max_procs"`
	Geometry     string   `json:"geometry"`
	Blocks       int64    `json:"blocks"`
	Shards       int      `json:"shards"`
	Clients      int      `json:"clients"`
	SeedNote     string   `json:"seed_note"`
	Results      []result `json:"results"`
	Headline     headline `json:"headline"`
}

// zeroOMV is an always-hit OMV provider handing out a shared all-zero old
// value. A zero old value keeps codewords consistent (the XOR delta shifts
// data and check identically), so the OMV-hit write path can be driven
// without tracking real old contents. Read-only and safe for concurrent
// shards.
type zeroOMV struct{ buf []byte }

func (z zeroOMV) OMV(int64) ([]byte, bool) { return z.buf, true }

// newEngine builds a populated rank + engine pair. Every block is filled
// with a dense pseudo-random pattern so write deltas are realistic (a
// sparse pattern would make the per-chip VLEW delta encodes nearly free).
func newEngine(omv core.OMVProvider, fanout int) (*engine.Engine, error) {
	r, err := rank.New(rank.PaperConfig(benchBanks, benchRowsPerBank, benchRowBytes, 1))
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(r, engine.Config{Shards: benchBanks, Core: core.DefaultConfig(), OMV: omv, BatchFanOut: fanout})
	if err != nil {
		return nil, err
	}
	buf := make([]byte, eng.BlockBytes())
	rng := rand.New(rand.NewSource(2))
	for blk := int64(0); blk < eng.Blocks(); blk++ {
		rng.Read(buf)
		if err := eng.WriteBlockInitial(blk, buf); err != nil {
			return nil, err
		}
	}
	return eng, nil
}

// measure runs one scenario at one GOMAXPROCS setting with the client
// population fixed at benchClients goroutines. opsPerIter scales ns/op
// into per-operation terms for batch scenarios.
func measure(name string, procs, opsPerIter int, setup func() (*engine.Engine, error),
	client func(eng *engine.Engine, rng *rand.Rand, buf []byte) func() error) (result, error) {
	eng, err := setup()
	if err != nil {
		return result{}, fmt.Errorf("%s: setup: %w", name, err)
	}
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	observed := runtime.GOMAXPROCS(0)

	var clientSeq atomic.Int64
	var failed atomic.Pointer[error]
	r := testing.Benchmark(func(b *testing.B) {
		clientSeq.Store(0)
		b.SetParallelism(benchClients / procs)
		b.RunParallel(func(pb *testing.PB) {
			id := clientSeq.Add(1)
			rng := rand.New(rand.NewSource(100 + id))
			buf := make([]byte, eng.BlockBytes())
			op := client(eng, rng, buf)
			for pb.Next() {
				if err := op(); err != nil {
					e := err
					failed.Store(&e)
					return
				}
			}
		})
	})
	if ep := failed.Load(); ep != nil {
		return result{}, fmt.Errorf("%s: %w", name, *ep)
	}
	nsIter := float64(r.T.Nanoseconds()) / float64(r.N)
	nsOp := nsIter / float64(opsPerIter)
	return result{
		Name:        name,
		Procs:       procs,
		Gomaxprocs:  observed,
		NsPerOp:     nsOp,
		OpsPerSec:   1e9 / nsOp,
		AllocsPerOp: r.AllocsPerOp() / int64(opsPerIter),
		BytesPerOp:  r.AllocedBytesPerOp() / int64(opsPerIter),
	}, nil
}

// idRingLen is the length of each client's pregenerated random block-id
// ring. Drawing ids from a ring keeps the PRNG out of the measured loop
// (rand.Int63n was ~15% of the clean-read budget once the read itself
// dropped under 100ns) while still spreading traffic across every shard.
const idRingLen = 4096

func newIDRing(rng *rand.Rand, blocks int64) []int64 {
	ring := make([]int64, idRingLen)
	for i := range ring {
		ring[i] = rng.Int63n(blocks)
	}
	return ring
}

// readClient issues single-block corrected reads over random blocks.
func readClient(eng *engine.Engine, rng *rand.Rand, buf []byte) func() error {
	ring := newIDRing(rng, eng.Blocks())
	pos := 0
	return func() error {
		err := eng.ReadBlockInto(ring[pos], buf)
		pos = (pos + 1) % idRingLen
		return err
	}
}

// batchReadClient issues batchSize-block ReadBlocks calls with inline
// (fanout 1) dispatch: one lock acquisition per shard group per batch.
func batchReadClient(eng *engine.Engine, rng *rand.Rand, _ []byte) func() error {
	ring := newIDRing(rng, eng.Blocks())
	pos := 0
	bb := eng.BlockBytes()
	slab := make([]byte, batchSize*bb)
	ids := make([]int64, batchSize)
	bufs := make([][]byte, batchSize)
	errs := make([]error, batchSize)
	for i := range bufs {
		bufs[i] = slab[i*bb : (i+1)*bb]
	}
	return func() error {
		for i := range ids {
			ids[i] = ring[pos]
			pos = (pos + 1) % idRingLen
		}
		if fails := eng.ReadBlocks(ids, bufs, errs); fails != 0 {
			for _, err := range errs {
				if err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// writeClient issues OMV-XOR writes of dense random data.
func writeClient(eng *engine.Engine, rng *rand.Rand, buf []byte) func() error {
	ring := newIDRing(rng, eng.Blocks())
	pos := 0
	return func() error {
		rng.Read(buf)
		err := eng.WriteBlock(ring[pos], buf)
		pos = (pos + 1) % idRingLen
		return err
	}
}

// contendedReadClient is readClient with one write interleaved every
// contendedWritePeriod reads, so lock-free readers keep colliding with
// writer sequence windows: the scenario exercises seqlock retries and
// mutex fallbacks rather than the pure even-sequence fast path.
const contendedWritePeriod = 64

func contendedReadClient(eng *engine.Engine, rng *rand.Rand, buf []byte) func() error {
	ring := newIDRing(rng, eng.Blocks())
	pos, n := 0, 0
	wbuf := make([]byte, eng.BlockBytes())
	rng.Read(wbuf)
	return func() error {
		blk := ring[pos]
		pos = (pos + 1) % idRingLen
		n++
		if n%contendedWritePeriod == 0 {
			return eng.WriteBlock(blk, wbuf)
		}
		return eng.ReadBlockInto(blk, buf)
	}
}

// rowLocalWriteClient writes blocks in sequential order, so consecutive
// writes land in the same open row and the per-chip EUR accumulates raw
// deltas that drain as a single VLEW encode at row close — the access
// pattern the write-batching optimization is for. Clients start in
// different rows to keep every shard busy.
func rowLocalWriteClient(eng *engine.Engine, rng *rand.Rand, buf []byte) func() error {
	blocks := eng.Blocks()
	blk := rng.Int63n(blocks)
	rng.Read(buf)
	return func() error {
		err := eng.WriteBlock(blk, buf)
		blk++
		if blk == blocks {
			blk = 0
		}
		return err
	}
}

type scenario struct {
	name       string
	opsPerIter int
	setup      func() (*engine.Engine, error)
	client     func(*engine.Engine, *rand.Rand, []byte) func() error
}

func scenarios() []scenario {
	return []scenario{
		{"engine/CleanRead", 1,
			func() (*engine.Engine, error) { return newEngine(nil, 1) },
			readClient},
		{"engine/CleanReadBatch", batchSize,
			func() (*engine.Engine, error) { return newEngine(nil, 1) },
			batchReadClient},
		{"engine/DriftRead", 1,
			func() (*engine.Engine, error) {
				eng, err := newEngine(nil, 1)
				if err != nil {
					return nil, err
				}
				eng.Quiesce(func() { eng.Rank().InjectRetentionErrors(driftRBER) })
				return eng, nil
			},
			readClient},
		{"engine/WriteOMVHit", 1,
			func() (*engine.Engine, error) {
				return newEngine(zeroOMV{buf: make([]byte, 64)}, 1)
			},
			writeClient},
		{"engine/WriteOMVMiss", 1,
			func() (*engine.Engine, error) { return newEngine(core.NoOMV{}, 1) },
			writeClient},
		{"engine/ContendedRead", 1,
			func() (*engine.Engine, error) {
				return newEngine(zeroOMV{buf: make([]byte, 64)}, 1)
			},
			contendedReadClient},
		{"engine/WriteRowLocal", 1,
			func() (*engine.Engine, error) {
				return newEngine(zeroOMV{buf: make([]byte, 64)}, 1)
			},
			rowLocalWriteClient},
	}
}

// validate schema-checks an existing report file (the CI smoke gate).
func validate(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if rep.GoVersion == "" || rep.Geometry == "" || rep.Clients == 0 || rep.Shards == 0 {
		return fmt.Errorf("%s: missing run metadata", path)
	}
	if len(rep.Results) == 0 {
		return fmt.Errorf("%s: no results", path)
	}
	want := len(scenarios()) * len(procsList)
	if len(rep.Results) != want {
		return fmt.Errorf("%s: %d results, want %d (scenarios x procs)", path, len(rep.Results), want)
	}
	for _, r := range rep.Results {
		if r.Name == "" || r.Procs == 0 || r.NsPerOp <= 0 || r.OpsPerSec <= 0 {
			return fmt.Errorf("%s: malformed result %+v", path, r)
		}
	}
	if rep.Headline.CleanReadSpeedupP8 <= 0 {
		return fmt.Errorf("%s: missing clean_read_speedup_p8 headline", path)
	}
	if rep.Headline.WriteOMVHitSpeedupP8 <= 0 || rep.Headline.WriteOMVMissSpeedupP8 <= 0 {
		return fmt.Errorf("%s: missing write speedup headlines", path)
	}
	if rep.Headline.DriftReadSpeedupP8 <= 0 {
		return fmt.Errorf("%s: missing drift_read_speedup_p8 headline", path)
	}
	if rep.Headline.ContendedReadP8VsBaseline <= 0 || rep.Headline.WriteRowLocalP8VsBaseline <= 0 {
		return fmt.Errorf("%s: missing baseline-ratio headlines", path)
	}
	return nil
}

func run() error {
	out := flag.String("out", "BENCH_runtime.json", "output file (- for stdout)")
	benchtime := flag.Duration("benchtime", 0, "per-benchmark time (0: testing default)")
	check := flag.Bool("check", false, "exit non-zero when a PR gate fails (clean reads >= 8x seed, writes >= 3x seed, drift reads >= 4.75x seed, 0 allocs/op, baseline floors; see package doc)")
	scenarioFilter := flag.String("scenario", "", "only run scenarios whose name contains this substring (profiling aid; incompatible with -check)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile covering every measured scenario")
	memprofile := flag.String("memprofile", "", "write an allocation profile taken after the last scenario")
	validatePath := flag.String("validate", "", "schema-check an existing report file instead of benchmarking")
	flag.Parse()
	if *validatePath != "" {
		if err := validate(*validatePath); err != nil {
			return err
		}
		fmt.Printf("%s: valid\n", *validatePath)
		return nil
	}
	if *scenarioFilter != "" && *check {
		return fmt.Errorf("-scenario filters out gated rows; run -check on the full sweep")
	}
	if *benchtime > 0 {
		flag.Set("test.benchtime", benchtime.String())
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	geoCfg := rank.PaperConfig(benchBanks, benchRowsPerBank, benchRowBytes, 1)
	rep := report{
		GoVersion:    runtime.Version(),
		GoArch:       runtime.GOARCH,
		HostNumCPU:   runtime.NumCPU(),
		HostMaxProcs: runtime.GOMAXPROCS(0),
		Geometry:     fmt.Sprintf("%dx%dx%dB", benchBanks, benchRowsPerBank, benchRowBytes),
		Blocks:       int64(benchBanks) * int64(benchRowsPerBank) * int64(geoCfg.BlocksPerRow()),
		Shards:       benchBanks,
		Clients:      benchClients,
		SeedNote: "seed_ops_per_sec frozen from the pre-optimization growth seed " +
			"(single controller, no sharding) on an Intel Xeon @ 2.10 GHz " +
			"(go1.22, same scenario code); speedup_vs_seed is only meaningful " +
			"on comparable hardware",
	}

	for _, sc := range scenarios() {
		if *scenarioFilter != "" && !strings.Contains(sc.name, *scenarioFilter) {
			continue
		}
		for _, procs := range procsList {
			r, err := measure(sc.name, procs, sc.opsPerIter, sc.setup, sc.client)
			if err != nil {
				return err
			}
			key := fmt.Sprintf("%s/p%d", r.Name, r.Procs)
			if seed, ok := seedOps[key]; ok {
				r.SeedOpsPerSec = seed
				r.SpeedupVsSeed = r.OpsPerSec / seed
			}
			if base, ok := baselineOps[key]; ok {
				r.BaselineOpsPerSec = base
				r.SpeedupVsBaseline = r.OpsPerSec / base
			}
			rep.Results = append(rep.Results, r)
			fmt.Printf("%-26s p%-2d %10.1f ns/op %12.0f ops/s  %3d allocs/op", r.Name, r.Procs, r.NsPerOp, r.OpsPerSec, r.AllocsPerOp)
			if r.SpeedupVsSeed > 0 {
				fmt.Printf("  %5.2fx vs seed", r.SpeedupVsSeed)
			}
			if r.SpeedupVsBaseline > 0 {
				fmt.Printf("  %5.2fx vs baseline", r.SpeedupVsBaseline)
			}
			fmt.Println()
		}
	}
	if *memprofile != "" {
		runtime.GC()
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			f.Close()
			return err
		}
		f.Close()
	}
	var batchP1, batchP8 float64
	for _, r := range rep.Results {
		switch r.Name {
		case "engine/CleanReadBatch":
			if r.Procs == 8 {
				rep.Headline.CleanReadSpeedupP8 = r.SpeedupVsSeed
				batchP8 = r.OpsPerSec
			}
			if r.Procs == 1 {
				batchP1 = r.OpsPerSec
			}
			fallthrough
		case "engine/CleanRead":
			if r.AllocsPerOp > rep.Headline.CleanReadAllocsPerOp {
				rep.Headline.CleanReadAllocsPerOp = r.AllocsPerOp
			}
		case "engine/DriftRead":
			if r.Procs == 8 {
				rep.Headline.DriftReadSpeedupP8 = r.SpeedupVsSeed
			}
			if r.AllocsPerOp > rep.Headline.DriftReadAllocsPerOp {
				rep.Headline.DriftReadAllocsPerOp = r.AllocsPerOp
			}
		case "engine/WriteOMVHit":
			if r.Procs == 8 {
				rep.Headline.WriteOMVHitSpeedupP8 = r.SpeedupVsSeed
			}
			if r.AllocsPerOp > rep.Headline.WriteAllocsPerOp {
				rep.Headline.WriteAllocsPerOp = r.AllocsPerOp
			}
		case "engine/WriteOMVMiss", "engine/WriteRowLocal":
			if r.Procs == 8 {
				if r.Name == "engine/WriteOMVMiss" {
					rep.Headline.WriteOMVMissSpeedupP8 = r.SpeedupVsSeed
				} else {
					rep.Headline.WriteRowLocalP8VsBaseline = r.SpeedupVsBaseline
				}
			}
			if r.AllocsPerOp > rep.Headline.WriteAllocsPerOp {
				rep.Headline.WriteAllocsPerOp = r.AllocsPerOp
			}
		case "engine/ContendedRead":
			if r.Procs == 8 {
				rep.Headline.ContendedReadP8VsBaseline = r.SpeedupVsBaseline
			}
		}
	}
	if batchP1 > 0 {
		rep.Headline.CleanReadScalingP8VsP1 = batchP8 / batchP1
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}

	fmt.Printf("headline: clean-read x%.2f vs seed at p8, %d allocs/op, p8/p1 x%.2f\n",
		rep.Headline.CleanReadSpeedupP8, rep.Headline.CleanReadAllocsPerOp,
		rep.Headline.CleanReadScalingP8VsP1)
	fmt.Printf("headline: writes x%.2f (OMV hit) / x%.2f (OMV miss) vs seed at p8, %d allocs/op; drift reads x%.2f, %d allocs/op\n",
		rep.Headline.WriteOMVHitSpeedupP8, rep.Headline.WriteOMVMissSpeedupP8,
		rep.Headline.WriteAllocsPerOp, rep.Headline.DriftReadSpeedupP8,
		rep.Headline.DriftReadAllocsPerOp)
	if *check {
		if rep.Headline.CleanReadSpeedupP8 < 8 {
			return fmt.Errorf("REGRESSION: clean-read throughput at p8 is only %.2fx the seed baseline (floor 8x)",
				rep.Headline.CleanReadSpeedupP8)
		}
		if rep.Headline.CleanReadAllocsPerOp != 0 {
			return fmt.Errorf("REGRESSION: clean-read path allocates (%d allocs/op, want 0)",
				rep.Headline.CleanReadAllocsPerOp)
		}
		if rep.Headline.WriteOMVHitSpeedupP8 < 3 {
			return fmt.Errorf("REGRESSION: OMV-hit writes at p8 are only %.2fx the seed baseline (floor 3x)",
				rep.Headline.WriteOMVHitSpeedupP8)
		}
		if rep.Headline.WriteOMVMissSpeedupP8 < 3 {
			return fmt.Errorf("REGRESSION: OMV-miss writes at p8 are only %.2fx the seed baseline (floor 3x)",
				rep.Headline.WriteOMVMissSpeedupP8)
		}
		if rep.Headline.WriteAllocsPerOp != 0 {
			return fmt.Errorf("REGRESSION: write path allocates (%d allocs/op, want 0)",
				rep.Headline.WriteAllocsPerOp)
		}
		if rep.Headline.DriftReadSpeedupP8 < 4.75 {
			return fmt.Errorf("REGRESSION: drift reads at p8 are only %.2fx the seed baseline (floor 4.75x)",
				rep.Headline.DriftReadSpeedupP8)
		}
		if rep.Headline.DriftReadAllocsPerOp != 0 {
			return fmt.Errorf("REGRESSION: drift-read path allocates (%d allocs/op, want 0)",
				rep.Headline.DriftReadAllocsPerOp)
		}
		if rep.Headline.ContendedReadP8VsBaseline < 0.5 {
			return fmt.Errorf("REGRESSION: contended reads at p8 are only %.2fx the frozen baseline (floor 0.5x)",
				rep.Headline.ContendedReadP8VsBaseline)
		}
		if rep.Headline.WriteRowLocalP8VsBaseline < 0.5 {
			return fmt.Errorf("REGRESSION: row-local writes at p8 are only %.2fx the frozen baseline (floor 0.5x)",
				rep.Headline.WriteRowLocalP8VsBaseline)
		}
		for _, r := range rep.Results {
			if (r.Name == "engine/ContendedRead" || r.Name == "engine/WriteRowLocal") && r.AllocsPerOp != 0 {
				return fmt.Errorf("REGRESSION: %s allocates (%d allocs/op, want 0)", r.Name, r.AllocsPerOp)
			}
		}
		if runtime.NumCPU() >= 2 {
			if rep.Headline.CleanReadScalingP8VsP1 < 2 {
				return fmt.Errorf("REGRESSION: batch clean reads at p8 are only %.2fx the p1 figure (floor 2x)",
					rep.Headline.CleanReadScalingP8VsP1)
			}
		} else {
			fmt.Println("note: p8 >= 2x p1 scaling gate skipped (single-CPU host; the sweep cannot scale)")
			fmt.Println("note: baseline floors for ContendedRead/WriteRowLocal were frozen on a single-CPU reference host")
		}
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
