package guard

import (
	"fmt"
	"math/rand"

	"chipkillpm/internal/core"
	"chipkillpm/internal/engine"
)

// State is the supervisor's position in the detect → contain → repair
// loop: healthy → suspected → migrating → degraded (DESIGN.md §10).
type State int

const (
	// StateHealthy: telemetry watched, patrol scrub running, no suspect.
	StateHealthy State = iota
	// StateSuspected: a chip's error rate crossed the threshold; bounded
	// retry-with-backoff probing is discriminating transient from
	// permanent before any irreversible action.
	StateSuspected
	// StateMigrating: chip-kill verdict delivered; the online migration
	// cursor is walking the rank under demand traffic.
	StateMigrating
	// StateDegraded: migration complete; the rank serves from the striped
	// layout and patrol walks striped groups.
	StateDegraded
	// StateWounded: a convicted chip the scheme cannot migrate around
	// (the parity chip, or a second failure): keep serving, flag for
	// repair at next boot scrub.
	StateWounded
)

// String renders the state.
func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateSuspected:
		return "suspected"
	case StateMigrating:
		return "migrating"
	case StateDegraded:
		return "degraded"
	case StateWounded:
		return "wounded"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Config tunes the supervisor. Zero values take the documented defaults.
type Config struct {
	// SuspectThreshold is the decayed per-chip VLEW-failure rate that
	// raises suspicion. Default 1: a single failed VLEW decode is worth
	// probing — probes are cheap and reversible.
	SuspectThreshold float64
	// Decay is the per-tick multiplier of the per-chip rate windows
	// (exponential decay, so old noise fades). Default 0.5.
	Decay float64
	// ProbeVLEWs is how many randomly placed VLEWs of the suspect chip
	// one probe round decodes. Default 8.
	ProbeVLEWs int
	// ProbeRounds is how many consecutive failing rounds convict the
	// chip. Default 3.
	ProbeRounds int
	// BackoffTicks is the wait before the first retry round; it doubles
	// after every failing round (bounded retry-with-backoff, so a
	// transient storm gets time to pass before the verdict). Default 1.
	BackoffTicks int
	// SuspectClearRounds is how many consecutive passing rounds return
	// the chip to good standing. Default 2.
	SuspectClearRounds int
	// PatrolUnits is the patrol-scrub increment driven per tick between
	// demand batches. Default 64; negative disables patrol.
	PatrolUnits int
	// BandsPerTick bounds how many bands one migrating tick rewrites, so
	// migration shares the rank with demand traffic instead of hogging
	// it. Default 4.
	BandsPerTick int
	// Seed feeds probe placement.
	Seed int64
	// Repair, when non-nil, is consulted on a chip-kill verdict before
	// any local containment: a fleet-level supervisor can repair the
	// convicted chip in place (e.g. a byte copy from a replica rank).
	// Returning nil means the chip is healthy again and the supervisor
	// goes back to watching; any error falls through to the local
	// degraded-mode migration path. The hook runs on the supervisor's
	// tick goroutine and may quiesce the engine.
	Repair func(chip int) error
}

func (c Config) withDefaults() Config {
	if c.SuspectThreshold == 0 {
		c.SuspectThreshold = 1
	}
	if c.Decay == 0 {
		c.Decay = 0.5
	}
	if c.ProbeVLEWs == 0 {
		c.ProbeVLEWs = 8
	}
	if c.ProbeRounds == 0 {
		c.ProbeRounds = 3
	}
	if c.BackoffTicks == 0 {
		c.BackoffTicks = 1
	}
	if c.SuspectClearRounds == 0 {
		c.SuspectClearRounds = 2
	}
	if c.PatrolUnits == 0 {
		c.PatrolUnits = 64
	}
	if c.BandsPerTick == 0 {
		c.BandsPerTick = 4
	}
	return c
}

// Report is a snapshot of the supervisor's findings for harnesses and
// campaign gates.
type Report struct {
	State             State
	SuspectChip       int // -1 when none
	SuspicionsRaised  int64
	SuspicionsCleared int64
	Verdicts          int64
	// ExternalRepairs counts verdicts satisfied by the Config.Repair hook
	// (the chip was rebuilt in place, no migration needed).
	ExternalRepairs  int64
	MigrationResumed bool // this supervisor resumed a journaled migration at boot
	PatrolPos        int64
}

// Supervisor drives the health loop over one engine. It is single-owner:
// exactly one goroutine calls Tick (the engine underneath stays fully
// concurrent for demand traffic).
type Supervisor struct {
	eng *engine.Engine
	jrn *Journal
	cfg Config
	rng *rand.Rand

	state   State
	suspect int
	rates   []float64 // per-chip decayed VLEW-failure rates
	prevTel core.Telemetry

	failRounds, passRounds int
	backoff, wait          int

	mig       *core.MigrationState
	patrolPos int64

	resumed                            bool
	raised, cleared, verdicts, extRep int64
}

// New builds a supervisor over the engine with its journal in region,
// performing crash recovery first: a journal that records a completed
// migration flips the engine to the striped layout; one that records an
// in-flight migration resumes it (redoing the possibly-torn last band
// from its write-ahead image) before any demand traffic should start.
//
//chipkill:rankwide
func New(eng *engine.Engine, region *Region, cfg Config) (*Supervisor, error) {
	jrn, rec, err := Open(region)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &Supervisor{
		eng:       eng,
		jrn:       jrn,
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed ^ 0x5eed6a2d)),
		state:     StateHealthy,
		suspect:   -1,
		rates:     make([]float64, eng.Rank().NumChips()),
		patrolPos: rec.PatrolPos,
	}
	switch {
	case rec.Done:
		if err := eng.AdoptDegradedMode(rec.Chip); err != nil {
			return nil, fmt.Errorf("guard: adopting journaled degraded layout: %w", err)
		}
		s.state = StateDegraded
		s.resumed = true
	case rec.Active:
		cursor := int64(0)
		if rec.LastBand >= 0 {
			cursor = rec.LastBand * eng.BandBlocks()
		}
		m, err := eng.BeginMigration(rec.Chip, cursor)
		if err != nil {
			return nil, fmt.Errorf("guard: resuming journaled migration: %w", err)
		}
		if rec.LastBand >= 0 {
			// The journaled band's rewrite may have torn mid-crash; redo
			// it from the write-ahead image (idempotent).
			if err := eng.RedoBand(m, rec.BandWAL); err != nil {
				return nil, fmt.Errorf("guard: redoing journaled band %d: %w", rec.LastBand, err)
			}
		}
		s.mig = m
		s.state = StateMigrating
		s.resumed = true
	}
	s.prevTel = eng.Telemetry()
	return s, nil
}

// RegionSizeFor returns a journal-region size sufficient for one full
// migration of the engine's rank plus patrol slots and slack.
func RegionSizeFor(eng *engine.Engine) int {
	bands := eng.Blocks() / eng.BandBlocks()
	wal := eng.BandBlocks() * int64(eng.Rank().Config().ChipAccessBytes)
	perBand := int64(recHeaderSize+4+recTrailerSize) + wal
	return int(int64(logStart) +
		int64(recHeaderSize+1+recTrailerSize) + // start
		bands*perBand +
		int64(recHeaderSize+recTrailerSize) + // done
		256)
}

// State returns the supervisor's current state.
func (s *Supervisor) State() State { return s.state }

// Report snapshots the supervisor's findings.
func (s *Supervisor) Report() Report {
	return Report{
		State:             s.state,
		SuspectChip:       s.suspect,
		SuspicionsRaised:  s.raised,
		SuspicionsCleared: s.cleared,
		Verdicts:          s.verdicts,
		ExternalRepairs:   s.extRep,
		MigrationResumed:  s.resumed,
		PatrolPos:         s.patrolPos,
	}
}

// Tick runs one supervisor step: patrol, observe, probe, or migrate,
// depending on state. Called between demand batches by whoever owns the
// scheduling loop (cmd/guardsim, the fault campaigns, a service's
// background goroutine).
func (s *Supervisor) Tick() error {
	switch s.state {
	case StateHealthy, StateSuspected:
		s.patrol()
		s.observe()
		if s.state == StateHealthy {
			if ci := s.worstChip(); ci >= 0 {
				s.suspect = ci
				s.state = StateSuspected
				s.raised++
				s.failRounds, s.passRounds = 0, 0
				s.backoff = s.cfg.BackoffTicks
				s.wait = 0
			}
		}
		if s.state == StateSuspected {
			return s.probeTick()
		}
	case StateMigrating:
		return s.migrateTick()
	case StateDegraded, StateWounded:
		s.patrol()
	}
	return nil
}

// Run ticks the supervisor n times, stopping early on error.
func (s *Supervisor) Run(n int) error {
	for i := 0; i < n; i++ {
		if err := s.Tick(); err != nil {
			return err
		}
	}
	return nil
}

// patrol drives the next patrol-scrub increment and journals the
// position. The supervisor is the single maintenance writer, so the
// patrol cursor advances under its loop alone.
//
//chipkill:rankwide
func (s *Supervisor) patrol() {
	if s.cfg.PatrolUnits <= 0 {
		return
	}
	s.patrolPos, _ = s.eng.PatrolScrub(s.patrolPos, s.cfg.PatrolUnits)
	s.jrn.SavePatrol(s.patrolPos)
}

// observe folds the telemetry delta since the last tick into the decayed
// per-chip rate windows.
func (s *Supervisor) observe() {
	tel := s.eng.Telemetry()
	d := tel.Delta(s.prevTel)
	s.prevTel = tel
	for i := range s.rates {
		s.rates[i] = s.rates[i]*s.cfg.Decay + float64(d.Chips[i].VLEWFailures)
	}
}

// worstChip returns the chip whose rate window tops the suspicion
// threshold, or -1.
func (s *Supervisor) worstChip() int {
	best, bestRate := -1, s.cfg.SuspectThreshold
	for i, r := range s.rates {
		if r >= bestRate {
			best, bestRate = i, r
		}
	}
	return best
}

// probeTick runs one step of the bounded retry-with-backoff
// discriminator: decode ProbeVLEWs randomly placed VLEWs of the suspect
// chip; a round fails when more than half fail (a dead chip fails
// essentially all probes; a transient storm's isolated broken words fail
// at most a few). Consecutive failing rounds — each preceded by a
// doubling backoff so transients get time to pass or be scrubbed —
// convict; consecutive passing rounds acquit.
func (s *Supervisor) probeTick() error {
	if s.wait > 0 {
		s.wait--
		return nil
	}
	g := s.eng.Rank().Config().Geometry
	fails := 0
	for i := 0; i < s.cfg.ProbeVLEWs; i++ {
		bank := s.rng.Intn(g.Banks)
		row := s.rng.Intn(g.RowsPerBank)
		v := s.rng.Intn(g.VLEWsPerRow())
		if !s.eng.ProbeVLEW(s.suspect, bank, row, v) {
			fails++
		}
	}
	if fails*2 > s.cfg.ProbeVLEWs {
		s.failRounds++
		s.passRounds = 0
		if s.failRounds >= s.cfg.ProbeRounds {
			return s.convict()
		}
		s.wait = s.backoff
		s.backoff *= 2
		return nil
	}
	s.passRounds++
	s.failRounds = 0
	s.wait = s.cfg.BackoffTicks
	if s.passRounds >= s.cfg.SuspectClearRounds {
		s.rates[s.suspect] = 0
		s.suspect = -1
		s.state = StateHealthy
		s.cleared++
	}
	return nil
}

// convict delivers the chip-kill verdict: consult the external Repair
// hook first (a fleet can rebuild the chip from a replica rank without
// touching the layout), then fall back to journaling the migration start
// and beginning the online walk. A chip the scheme cannot migrate around
// (the parity chip) parks the supervisor in StateWounded instead.
//
//chipkill:rankwide
func (s *Supervisor) convict() error {
	s.verdicts++
	ci := s.suspect
	if s.cfg.Repair != nil {
		if err := s.cfg.Repair(ci); err == nil {
			// Repaired in place: discard the chip's suspicion window (its
			// failure telemetry described the dead device, not the rebuilt
			// one) and resume watching. The pre-repair telemetry was
			// already folded into rates, so resetting here is enough.
			s.extRep++
			s.rates[ci] = 0
			s.suspect = -1
			s.state = StateHealthy
			s.failRounds, s.passRounds = 0, 0
			return nil
		}
		// External repair unavailable (no replica, rank down): contain
		// locally below, exactly as a single-rank supervisor would.
	}
	if ci == s.eng.Rank().ParityChipIndex() {
		s.state = StateWounded
		return nil
	}
	if err := s.jrn.AppendStart(ci); err != nil {
		return fmt.Errorf("guard: journaling migration start: %w", err)
	}
	m, err := s.eng.BeginMigration(ci, 0)
	if err != nil {
		s.state = StateWounded
		return fmt.Errorf("guard: starting migration of chip %d: %w", ci, err)
	}
	s.mig = m
	s.state = StateMigrating
	return nil
}

// migrateTick rewrites up to BandsPerTick bands, journaling each band's
// write-ahead image before touching the rank, and completes the
// migration when the cursor reaches the end.
//
//chipkill:rankwide
func (s *Supervisor) migrateTick() error {
	bb := s.eng.BandBlocks()
	for i := 0; i < s.cfg.BandsPerTick && s.mig.Cursor() < s.eng.Blocks(); i++ {
		band := s.mig.Cursor() / bb
		err := s.eng.MigrateBand(s.mig, func(slices []byte) error {
			return s.jrn.AppendBand(band, slices)
		})
		if err != nil {
			return fmt.Errorf("guard: migrating band %d: %w", band, err)
		}
	}
	if s.mig.Cursor() >= s.eng.Blocks() {
		if err := s.eng.FinishMigration(); err != nil {
			return fmt.Errorf("guard: finishing migration: %w", err)
		}
		if err := s.jrn.AppendDone(); err != nil {
			return fmt.Errorf("guard: journaling migration done: %w", err)
		}
		s.mig = nil
		s.state = StateDegraded
		s.patrolPos = 0 // patrol space changed to striped groups
	}
	return nil
}
