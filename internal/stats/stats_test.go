package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 || m.N() != 0 {
		t.Error("empty mean not zero")
	}
	m.Add(2)
	m.Add(4)
	if m.Value() != 3 || m.N() != 2 {
		t.Errorf("mean=%v n=%v", m.Value(), m.N())
	}
	m.AddN(10, 2)
	if m.Value() != 6.5 {
		t.Errorf("weighted mean=%v, want 6.5", m.Value())
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Errorf("GeoMean=%v, want 2", g)
	}
	if g := GeoMean([]float64{2, 0, 8, -1}); math.Abs(g-4) > 1e-12 {
		t.Errorf("non-positive entries not ignored: %v", g)
	}
	if GeoMean(nil) != 0 {
		t.Error("empty GeoMean not 0")
	}
}

func TestGeoMeanBetweenMinMaxQuick(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			vs[i] = float64(r) + 1
			lo = math.Min(lo, vs[i])
			hi = math.Max(hi, vs[i])
		}
		g := GeoMean(vs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(5)
	for _, v := range []int{0, 1, 1, 2, 9, -3} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Errorf("total=%d", h.Total())
	}
	if h.Count(1) != 2 {
		t.Errorf("count(1)=%d", h.Count(1))
	}
	if h.Count(4) != 1 { // overflow bucket absorbed 9
		t.Errorf("overflow=%d", h.Count(4))
	}
	if h.Count(0) != 2 { // -3 clamped to 0
		t.Errorf("count(0)=%d", h.Count(0))
	}
	if h.Count(99) != 0 {
		t.Error("out-of-range count nonzero")
	}
	if f := h.Frac(1); math.Abs(f-2.0/6) > 1e-12 {
		t.Errorf("frac=%v", f)
	}
	if f := h.FracAtLeast(2); math.Abs(f-2.0/6) > 1e-12 {
		t.Errorf("fracAtLeast=%v", f)
	}
	var empty Histogram
	if empty.Frac(0) != 0 || empty.FracAtLeast(0) != 0 {
		t.Error("empty histogram fractions nonzero")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Header: []string{"name", "value"}}
	tab.AddRow("alpha", "1")
	tab.AddRow("b", "12345")
	out := tab.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "12345") {
		t.Errorf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4", len(lines))
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Errorf("keys=%v", keys)
	}
}
