package analysis

import (
	"go/ast"
	"go/types"
)

// BankAccess polices the nvram.Chip quiescence contract: the
// fault-injection and maintenance methods that mutate per-bank chip
// state without taking the per-bank ownership into account (Fail,
// Repair, CloseAllRows, InjectRetentionErrors, WearOutBit, FlipDataBit,
// FlipCodeBit — and the rank-level sweeps that fan out to them) require
// full quiescence: no concurrent access of any kind (see the Chip
// doc comment). Outside the owning packages (internal/nvram and
// internal/rank, which hold the contract), a call to one of these is
// only legal from
//
//   - a function literal passed to (*engine.Engine).Quiesce (all shard
//     locks held), or
//   - a function annotated //chipkill:rankwide (serial harness, boot
//     path, or supervisor-owned recovery), or
//   - a line carrying //chipkill:allow bankaccess <reason>.
//
// Bank-scoped methods (CloseBankRows, the demand read/write methods)
// are deliberately not policed: the per-bank disjointness contract
// makes them shardable, which is the whole point of the engine.
var BankAccess = &Analyzer{
	Name:          "bankaccess",
	Doc:           "quiescence-class nvram.Chip mutations only from quiescent contexts",
	SkipTestFiles: true,
	Run:           runBankAccess,
}

var quiescenceMethods = []struct {
	pkgSuffix, typeName string
	methods             map[string]bool
}{
	{"internal/nvram", "Chip", map[string]bool{
		"Fail": true, "Repair": true, "CloseAllRows": true,
		"InjectRetentionErrors": true, "WearOutBit": true,
		"FlipDataBit": true, "FlipCodeBit": true,
	}},
	{"internal/rank", "Rank", map[string]bool{
		"FailChip": true, "InjectRetentionErrors": true, "CloseAllRows": true,
	}},
}

func isQuiescenceOp(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	for _, set := range quiescenceMethods {
		if set.methods[fn.Name()] && methodOn(fn, set.pkgSuffix, set.typeName, fn.Name()) {
			return true
		}
	}
	return false
}

func runBankAccess(pass *Pass) {
	// The owning packages implement the contract; their internal calls
	// (e.g. Rank.CloseAllRows fanning out to each chip) are the
	// mechanism itself.
	if pathHasSuffix(pass.Pkg.PkgPath, "internal/nvram") ||
		pathHasSuffix(pass.Pkg.PkgPath, "internal/rank") {
		return
	}
	for _, file := range pass.Pkg.Files {
		spans := quiesceSpans(pass.Pkg, file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(pass.Pkg.Info, call)
			if !isQuiescenceOp(fn) {
				return true
			}
			if inSpans(spans, call.Pos()) {
				return true
			}
			if pass.Pkg.dirs.marked("rankwide", call.Pos()) {
				return true
			}
			pass.Reportf(call.Pos(),
				"quiescence-class chip mutation %s called outside a Quiesce section or //chipkill:rankwide function",
				symbolKey(fn))
			return true
		})
	}
}
