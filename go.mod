module chipkillpm

go 1.22
