// Package rs implements Reed-Solomon codes over GF(2^8) with
// errors-and-erasures decoding.
//
// The paper's per-block chip-failure code is RS(72, 64): 64 data bytes from
// eight data chips plus 8 check bytes held in a ninth (parity) chip. Its
// minimum distance is 9, so it can correct any 4 random byte errors, or up
// to 8 byte erasures (a whole failed chip whose position is known), or
// mixes with 2*errors + erasures <= 8.
//
// The scheme additionally uses DecodeLimited: an errors-only decode that
// accepts the result only when it makes at most `threshold` corrections.
// A miscorrection is far more likely to surface as many corrections than
// as few, so capping accepted corrections at 2 drops the silent-data-
// corruption rate from 3.2e-11 to 3.3e-22 (paper appendix) at the cost of
// occasionally falling back to VLEW correction.
package rs

import (
	"errors"
	"fmt"
	"sync"

	"chipkillpm/internal/gf"
)

// ErrUncorrectable reports an error pattern beyond the code's capability.
var ErrUncorrectable = errors.New("rs: uncorrectable error pattern")

// ErrThreshold reports that an errors-only decode succeeded but needed more
// corrections than the caller's acceptance threshold; the input was left
// unmodified and the caller should fall back to a stronger code (VLEWs).
var ErrThreshold = errors.New("rs: corrections exceed acceptance threshold")

// Code is an (n, k) Reed-Solomon code over GF(2^8) with r = n-k check
// symbols and first consecutive root alpha^1. Its tables are immutable
// after New and all methods are safe for concurrent use; per-call decode
// state lives in a scratch pool so concurrent decoders share nothing.
type Code struct {
	f   *gf.Field
	k   int // data symbols (bytes)
	r   int // check symbols (bytes)
	n   int // total symbols
	gen gf.Poly

	enc     *encTables // packed-uint64 LFSR tables; nil when r > 8
	dec     *decTables // per-root multiplication tables
	scratch sync.Pool  // *decodeScratch
}

// New constructs an RS code with k data bytes and r check bytes.
func New(k, r int) (*Code, error) {
	f := gf.MustField(8)
	if k < 1 || r < 1 {
		return nil, fmt.Errorf("rs: k=%d, r=%d must be >= 1", k, r)
	}
	if k+r > f.N() {
		return nil, fmt.Errorf("rs: n=%d exceeds field bound %d", k+r, f.N())
	}
	// g(x) = prod_{j=1..r} (x - alpha^j).
	gen := gf.Poly{1}
	for j := 1; j <= r; j++ {
		gen = f.PolyMul(gen, gf.Poly{f.Exp(j), 1})
	}
	c := &Code{f: f, k: k, r: r, n: k + r, gen: gen}
	c.enc = c.buildEncTables()
	c.dec = c.buildDecTables()
	return c, nil
}

// Must is New but panics on error.
func Must(k, r int) *Code {
	c, err := New(k, r)
	if err != nil {
		panic(err)
	}
	return c
}

// K returns the number of data bytes per codeword.
func (c *Code) K() int { return c.k }

// R returns the number of check bytes per codeword.
func (c *Code) R() int { return c.r }

// N returns the codeword length in bytes.
func (c *Code) N() int { return c.n }

// Distance returns the minimum Hamming distance, r+1.
func (c *Code) Distance() int { return c.r + 1 }

// MaxErrors returns the maximum number of random byte errors correctable
// with no erasures: floor(r/2).
func (c *Code) MaxErrors() int { return c.r / 2 }

// MaxErasures returns the maximum number of byte erasures correctable with
// no random errors: r.
func (c *Code) MaxErasures() int { return c.r }

// codeword coefficient layout: check symbol i sits at polynomial degree i
// (i in [0,r)), data byte j at degree r+j. Position p in the public API
// means data byte p for p < k and check byte p-k for p >= k.

func (c *Code) posToDegree(p int) int {
	if p < c.k {
		return c.r + p
	}
	return p - c.k
}

func (c *Code) degreeToPos(d int) int {
	if d < c.r {
		return c.k + d
	}
	return d - c.r
}

// Encode computes the r check bytes for the k data bytes. It streams one
// byte per LFSR step through the precomputed feedback table; EncodePolyDiv
// is the retained polynomial-division reference.
func (c *Code) Encode(data []byte) []byte {
	if len(data) != c.k {
		panic(fmt.Sprintf("rs: Encode: got %d data bytes, want %d", len(data), c.k))
	}
	if c.enc == nil {
		return c.EncodePolyDiv(data)
	}
	state := c.enc.remainder(data)
	check := make([]byte, c.r)
	for i := range check {
		check[i] = byte(state >> (8 * uint(i)))
	}
	return check
}

// EncodeInto computes the r check bytes for the k data bytes into the
// caller-owned check buffer, allocation-free on the table-driven path. It
// is Encode for hot paths (the controller's write path reuses one buffer).
//
//chipkill:noalloc
func (c *Code) EncodeInto(check, data []byte) {
	if len(data) != c.k || len(check) != c.r {
		panic(fmt.Sprintf("rs: EncodeInto: got %d data and %d check bytes, want %d and %d",
			len(data), len(check), c.k, c.r))
	}
	if c.enc == nil {
		copy(check, c.EncodePolyDiv(data)) //chipkill:allow noalloc table-less codes (r > 8) are never on the demand path
		return
	}
	state := c.enc.remainder(data)
	for i := range check {
		check[i] = byte(state >> (8 * uint(i)))
	}
}

// EncodePolyDiv is the reference implementation of Encode via generic
// polynomial division: check(x) = (d(x) * x^r) mod g(x). It is kept as the
// differential-test oracle for the table-driven path and as the fallback
// for codes with more than 8 check symbols.
func (c *Code) EncodePolyDiv(data []byte) []byte {
	if len(data) != c.k {
		panic(fmt.Sprintf("rs: Encode: got %d data bytes, want %d", len(data), c.k))
	}
	p := make(gf.Poly, c.n)
	for j, b := range data {
		p[c.r+j] = gf.Elem(b)
	}
	_, rem := c.f.PolyDivMod(p, c.gen)
	check := make([]byte, c.r)
	for i := 0; i < c.r && i < len(rem); i++ {
		check[i] = byte(rem[i])
	}
	return check
}

// EncodeDelta returns the check-byte update for a sparse data change:
// XORing the result into the old check bytes yields the check bytes of the
// new data, where delta = old XOR new starting at data byte byteOffset.
// RS over GF(2^8) is linear over GF(2), so incremental update works exactly
// as for BCH. The fast path runs the LFSR over the delta bytes and then
// multiplies by x^byteOffset with zero-feed steps, short-circuiting when
// the delta itself is all zero.
func (c *Code) EncodeDelta(delta []byte, byteOffset int) []byte {
	if byteOffset < 0 || byteOffset+len(delta) > c.k {
		panic(fmt.Sprintf("rs: EncodeDelta: %d bytes at offset %d overflow k=%d", len(delta), byteOffset, c.k))
	}
	if c.enc == nil {
		return c.EncodeDeltaPolyDiv(delta, byteOffset)
	}
	state := c.enc.remainder(delta)
	if state != 0 {
		for i := 0; i < byteOffset; i++ {
			state = c.enc.step(state, 0)
		}
	}
	check := make([]byte, c.r)
	for i := range check {
		check[i] = byte(state >> (8 * uint(i)))
	}
	return check
}

// EncodeDeltaPolyDiv is the polynomial-division reference for EncodeDelta,
// kept as the differential-test oracle.
func (c *Code) EncodeDeltaPolyDiv(delta []byte, byteOffset int) []byte {
	if byteOffset < 0 || byteOffset+len(delta) > c.k {
		panic(fmt.Sprintf("rs: EncodeDelta: %d bytes at offset %d overflow k=%d", len(delta), byteOffset, c.k))
	}
	p := make(gf.Poly, c.r+byteOffset+len(delta))
	for j, b := range delta {
		p[c.r+byteOffset+j] = gf.Elem(b)
	}
	_, rem := c.f.PolyDivMod(p, c.gen)
	check := make([]byte, c.r)
	for i := 0; i < c.r && i < len(rem); i++ {
		check[i] = byte(rem[i])
	}
	return check
}

// SyndromesHorner returns S_1..S_r and whether all are zero, evaluating the
// received word at each root by Horner's rule over all n symbols. It is the
// reference implementation behind the remainder-based fast path and the
// differential-test oracle for it.
func (c *Code) SyndromesHorner(data, check []byte) (gf.Poly, bool) {
	syn := make(gf.Poly, c.r)
	clean := true
	for j := 1; j <= c.r; j++ {
		var s gf.Elem
		a := c.f.Exp(j)
		// Horner over the full codeword, highest degree first: data[k-1]
		// has the highest degree r+k-1.
		for i := c.k - 1; i >= 0; i-- {
			s = c.f.Mul(s, a) ^ gf.Elem(data[i])
		}
		for i := c.r - 1; i >= 0; i-- {
			s = c.f.Mul(s, a) ^ gf.Elem(check[i])
		}
		syn[j-1] = s
		if s != 0 {
			clean = false
		}
	}
	return syn, clean
}

// Check reports whether data||check is a clean codeword: one LFSR pass and
// an 8-byte compare on the fast path.
//
//chipkill:noalloc
func (c *Code) Check(data, check []byte) bool {
	c.validate(data, check)
	if c.enc == nil {
		//chipkill:allow noalloc table-less codes (r > 8) are never on the demand path
		_, clean := c.SyndromesHorner(data, check)
		return clean
	}
	rem := c.enc.remainder(data)
	for i := 0; i < c.r; i++ {
		rem ^= uint64(check[i]) << (8 * uint(i))
	}
	return rem == 0
}

// CheckWord reports whether data forms a clean codeword with its check
// bytes packed little-endian into w — Check for callers that hold the
// stored check region as one 64-bit word. Only codes with exactly eight
// check symbols and encoder tables support it (the demand path's
// RS(72,64) qualifies); anything else panics. The panics use plain
// strings because the engine's seqlock-validated reader calls this
// between sequence checks and must stay free of impure calls.
//
//chipkill:noalloc
//chipkill:seqread
func (c *Code) CheckWord(data []byte, w uint64) bool {
	if c.enc == nil || c.r != 8 {
		panic("rs: CheckWord requires an 8-check-symbol code with encoder tables")
	}
	if len(data) != c.k {
		panic("rs: CheckWord data length mismatch")
	}
	return c.enc.remainder(data) == w
}

func (c *Code) validate(data, check []byte) {
	if len(data) != c.k || len(check) != c.r {
		panic(fmt.Sprintf("rs: got %d data and %d check bytes, want %d and %d",
			len(data), len(check), c.k, c.r))
	}
}

// Correction describes one applied symbol correction.
type Correction struct {
	Pos     int  // public position: data byte for Pos < K, check byte K+i otherwise
	Old     byte // symbol value before correction
	New     byte // symbol value after correction
	Erasure bool // true when the position was declared an erasure
}

// Decode corrects errors and erasures in place. erasures lists known-bad
// positions (data byte index for < k, k+i for check byte i); duplicate or
// out-of-range positions are rejected. It returns the corrections applied.
// On ErrUncorrectable, data and check are unchanged.
func (c *Code) Decode(data, check []byte, erasures []int) ([]Correction, error) {
	return c.DecodeAppend(nil, data, check, erasures)
}

// DecodeAppend is Decode writing its corrections into buf[:0]'s backing
// array (growing it only when capacity runs out), so steady-state callers —
// the controller's corrected-read path runs one decode per dirty block —
// allocate nothing. The returned slice aliases buf; it is valid until the
// caller's next DecodeAppend with the same buffer.
func (c *Code) DecodeAppend(buf []Correction, data, check []byte, erasures []int) ([]Correction, error) {
	c.validate(data, check)
	if len(erasures) > c.r {
		return nil, fmt.Errorf("rs: %d erasures exceed capability %d: %w", len(erasures), c.r, ErrUncorrectable)
	}
	sc := c.getScratch()
	defer c.putScratch(sc)
	seen := sc.seen
	defer func() {
		for _, p := range erasures {
			if p >= 0 && p < c.n {
				seen[p] = false
			}
		}
	}()
	for _, p := range erasures {
		if p < 0 || p >= c.n {
			return nil, fmt.Errorf("rs: erasure position %d out of range [0,%d)", p, c.n)
		}
		if seen[p] {
			return nil, fmt.Errorf("rs: duplicate erasure position %d", p)
		}
		seen[p] = true
	}
	f := c.f

	syn := sc.syn
	if c.syndromesInto(syn, data, check) {
		// Nothing to do; erased positions already hold correct values.
		return nil, nil
	}

	// Closed-form single-error path: at realistic drift rates the vast
	// majority of dirty words carry exactly one bad symbol, whose syndromes
	// form a geometric sequence S_{j+1} = X*S_j. Recognising that shape
	// costs r multiplies and skips Berlekamp-Massey, the n-position Chien
	// scan, Forney evaluation and the post-correction syndrome re-check
	// (the r consistency equations already pin the unique weight-1 errata
	// pattern, so the corrected word is a codeword by construction).
	if len(erasures) == 0 && syn[0] != 0 && c.r >= 2 {
		f := c.f
		x := f.Div(syn[1], syn[0])
		if x != 0 {
			consistent := true
			for j := 0; j+1 < c.r; j++ {
				if syn[j+1] != f.Mul(x, syn[j]) {
					consistent = false
					break
				}
			}
			if consistent {
				if d := f.Log(x); d < c.n {
					mag := byte(f.Div(syn[0], x)) // fcr=1: S_1 = m*X
					pos := c.degreeToPos(d)
					var oldV byte
					if pos < c.k {
						oldV = data[pos]
						data[pos] ^= mag
					} else {
						oldV = check[pos-c.k]
						check[pos-c.k] ^= mag
					}
					return append(buf[:0], Correction{Pos: pos, Old: oldV, New: oldV ^ mag}), nil
				}
				// The geometric ratio points outside the shortened code:
				// an uncorrectable pattern, but let the general path make
				// that call so both paths agree on classification.
			}
		}
	}

	// Erasure locator Gamma(x) = prod (1 - X_i x), X_i = alpha^degree,
	// built in place by multiplying one linear factor at a time.
	gamma := sc.gamma[:1]
	gamma[0] = 1
	for _, p := range erasures {
		x := f.Exp(c.posToDegree(p))
		gamma = gamma[:len(gamma)+1]
		gamma[len(gamma)-1] = 0
		for i := len(gamma) - 1; i >= 1; i-- {
			gamma[i] ^= f.Mul(x, gamma[i-1])
		}
	}

	// Modified (Forney) syndromes: T(x) = S(x)*Gamma(x) mod x^r, then drop
	// the first rho coefficients; BM on the remainder finds the error
	// locator sigma for the non-erased errors.
	t := sc.tpoly[:c.r]
	for i := range t {
		t[i] = 0
	}
	for a, s := range syn {
		if s == 0 {
			continue
		}
		for b, g := range gamma {
			if a+b >= c.r {
				break
			}
			if g != 0 {
				t[a+b] ^= f.Mul(s, g)
			}
		}
	}
	rho := len(erasures)
	sigma := c.berlekampMasseyFast(t[rho:], sc)
	nu := gf.PolyDeg(sigma)
	if nu < 0 {
		nu = 0
	}
	if 2*nu+rho > c.r {
		return nil, ErrUncorrectable
	}

	// Errata locator lambda = sigma*gamma and evaluator
	// omega = syn*lambda mod x^r.
	lambda := sc.lambda[:nu+len(gamma)]
	for i := range lambda {
		lambda[i] = 0
	}
	if len(sigma) == 0 {
		copy(lambda, gamma)
	} else {
		for a, s := range sigma[:nu+1] {
			if s == 0 {
				continue
			}
			for b, g := range gamma {
				if g != 0 {
					lambda[a+b] ^= f.Mul(s, g)
				}
			}
		}
	}
	degLambda := gf.PolyDeg(gf.Poly(lambda))
	omega := sc.omega[:c.r]
	for i := range omega {
		omega[i] = 0
	}
	for a, s := range syn {
		if s == 0 {
			continue
		}
		for b, l := range lambda {
			if a+b >= c.r {
				break
			}
			if l != 0 {
				omega[a+b] ^= f.Mul(s, l)
			}
		}
	}
	omega = omega[:gf.PolyDeg(gf.Poly(omega))+1]
	// Formal derivative in characteristic 2: only odd-degree terms survive.
	deriv := sc.deriv[:0]
	if degLambda > 0 {
		deriv = sc.deriv[:degLambda]
		for i := range deriv {
			if i%2 == 0 {
				deriv[i] = lambda[i+1]
			} else {
				deriv[i] = 0
			}
		}
	}

	// Chien search across all n coefficient degrees with incremental term
	// registers: terms[j] tracks lambda[j] * alpha^(-d*j) and advancing d
	// multiplies term j by alpha^-j via its precomputed table.
	corrections := buf[:0]
	found := 0
	terms := sc.terms[:degLambda+1]
	copy(terms, lambda[:degLambda+1])
	for d := 0; d < c.n && found < degLambda; d++ {
		v := terms[0]
		for j := 1; j <= degLambda; j++ {
			v ^= terms[j]
		}
		if v == 0 {
			found++
			xInv := f.Exp(-d)
			denom := f.PolyEval(gf.Poly(deriv), xInv)
			if denom == 0 {
				return nil, ErrUncorrectable
			}
			// Forney, fcr=1: magnitude = Omega(Xinv) / Lambda'(Xinv).
			mag := f.Div(f.PolyEval(gf.Poly(omega), xInv), denom)
			if mag != 0 { // a zero magnitude is an erased position that was correct
				pos := c.degreeToPos(d)
				var oldV byte
				if pos < c.k {
					oldV = data[pos]
				} else {
					oldV = check[pos-c.k]
				}
				corrections = append(corrections, Correction{
					Pos: pos, Old: oldV, New: oldV ^ byte(mag), Erasure: seen[pos],
				})
			}
		}
		for j := 1; j <= degLambda; j++ {
			terms[j] = c.dec.step[j-1][terms[j]]
		}
	}
	if found != degLambda {
		return nil, ErrUncorrectable
	}
	for _, corr := range corrections {
		if corr.Pos < c.k {
			data[corr.Pos] = corr.New
		} else {
			check[corr.Pos-c.k] = corr.New
		}
	}
	if !c.syndromesInto(syn, data, check) {
		for _, corr := range corrections { // roll back
			if corr.Pos < c.k {
				data[corr.Pos] = corr.Old
			} else {
				check[corr.Pos-c.k] = corr.Old
			}
		}
		return nil, ErrUncorrectable
	}
	return corrections, nil
}

// DecodeLimited performs an errors-only decode but accepts the result only
// when it applies at most threshold corrections. When the decode would
// require more, it returns ErrThreshold and leaves the inputs unchanged,
// signalling the caller to fall back to VLEW correction (paper Fig. 8/9).
func (c *Code) DecodeLimited(data, check []byte, threshold int) ([]Correction, error) {
	return c.DecodeLimitedAppend(nil, data, check, threshold)
}

// DecodeLimitedAppend is DecodeLimited with a caller-owned corrections
// buffer, mirroring DecodeAppend.
func (c *Code) DecodeLimitedAppend(buf []Correction, data, check []byte, threshold int) ([]Correction, error) {
	corrections, err := c.DecodeAppend(buf, data, check, nil)
	if err != nil {
		return nil, err
	}
	if len(corrections) > threshold {
		for _, corr := range corrections { // roll back: reject the correction
			if corr.Pos < c.k {
				data[corr.Pos] = corr.Old
			} else {
				check[corr.Pos-c.k] = corr.Old
			}
		}
		return nil, ErrThreshold
	}
	return corrections, nil
}

// String implements fmt.Stringer.
func (c *Code) String() string {
	return fmt.Sprintf("RS(n=%d,k=%d,d=%d) over GF(2^8)", c.n, c.k, c.Distance())
}
