package rs

import (
	"bytes"
	"math/rand"
	"testing"
)

// Differential tests: the table-driven Encode/EncodeDelta/syndrome paths
// must match the retained polynomial-division and Horner oracles exactly,
// across the paper shape and other (k, r) geometries including one wide
// enough (r > 8) to exercise the oracle fallback inside the fast entry
// points.

var diffCodes = []struct{ k, r int }{
	{64, 8}, // the paper's RS(72, 64)
	{32, 4},
	{16, 2},
	{100, 8},
	{64, 12}, // r > 8: packed LFSR unavailable, fallback path
	{1, 1},
}

func TestEncodeMatchesPolyDiv(t *testing.T) {
	for _, p := range diffCodes {
		code := Must(p.k, p.r)
		rng := rand.New(rand.NewSource(int64(p.k)*17 + int64(p.r)))
		data := make([]byte, code.K())
		for trial := 0; trial < 100; trial++ {
			rng.Read(data)
			if trial%8 == 0 {
				// Leading zeros exercise the LFSR skip path.
				for i := code.K() / 2; i < code.K(); i++ {
					data[i] = 0
				}
			}
			fast := code.Encode(data)
			slow := code.EncodePolyDiv(data)
			if !bytes.Equal(fast, slow) {
				t.Fatalf("%v trial %d: Encode mismatch\nfast %x\nslow %x", code, trial, fast, slow)
			}
		}
	}
}

func TestEncodeDeltaMatchesPolyDiv(t *testing.T) {
	for _, p := range diffCodes {
		code := Must(p.k, p.r)
		rng := rand.New(rand.NewSource(int64(p.k)*23 + int64(p.r)))
		for trial := 0; trial < 100; trial++ {
			n := 1 + rng.Intn(code.K())
			delta := make([]byte, n)
			rng.Read(delta)
			if trial%5 == 0 {
				for i := range delta {
					delta[i] = 0 // all-zero delta short-circuit
				}
			}
			off := rng.Intn(code.K() - n + 1)
			fast := code.EncodeDelta(delta, off)
			slow := code.EncodeDeltaPolyDiv(delta, off)
			if !bytes.Equal(fast, slow) {
				t.Fatalf("%v trial %d off %d: EncodeDelta mismatch\nfast %x\nslow %x",
					code, trial, off, fast, slow)
			}
		}
	}
}

// TestRemainderSlicedMatchesByteLoop pins the slicing-by-8 remainder
// evaluation against the serial byte-at-a-time LFSR it replaces, across
// lengths that hit the sliced path (multiples of 8) and patterns that
// exercise the all-zero-chunk short circuit.
func TestRemainderSlicedMatchesByteLoop(t *testing.T) {
	code := Must(64, 8)
	e := code.enc
	if e == nil || !e.sliced {
		t.Fatal("RS(72,64) should build sliced encoder tables")
	}
	byteLoop := func(data []byte) uint64 {
		var state uint64
		for i := len(data) - 1; i >= 0; i-- {
			state = e.step(state, data[i])
		}
		return state
	}
	rng := rand.New(rand.NewSource(97))
	for _, n := range []int{8, 16, 24, 64, 128} {
		data := make([]byte, n)
		for trial := 0; trial < 200; trial++ {
			rng.Read(data)
			switch trial % 4 {
			case 1: // zero tail: sliced must agree with the leading-zero skip
				for i := n / 2; i < n; i++ {
					data[i] = 0
				}
			case 2: // zero head: interior all-zero chunks
				for i := 0; i < n/2; i++ {
					data[i] = 0
				}
			case 3: // single nonzero byte
				for i := range data {
					data[i] = 0
				}
				data[rng.Intn(n)] = byte(1 + rng.Intn(255))
			}
			if got, want := e.remainderSliced(data), byteLoop(data); got != want {
				t.Fatalf("n=%d trial %d: sliced remainder %#x, byte loop %#x\ndata %x",
					n, trial, got, want, data)
			}
		}
	}
	// All-zero input must yield a zero register on both paths.
	if got := e.remainderSliced(make([]byte, 64)); got != 0 {
		t.Fatalf("sliced remainder of zero data = %#x, want 0", got)
	}
}

func TestEncodeIntoMatchesEncode(t *testing.T) {
	for _, p := range diffCodes {
		code := Must(p.k, p.r)
		rng := rand.New(rand.NewSource(int64(p.k)*29 + int64(p.r)))
		data := make([]byte, code.K())
		check := make([]byte, code.R())
		for trial := 0; trial < 50; trial++ {
			rng.Read(data)
			code.EncodeInto(check, data)
			if want := code.Encode(data); !bytes.Equal(check, want) {
				t.Fatalf("%v trial %d: EncodeInto %x, Encode %x", code, trial, check, want)
			}
		}
	}
}

func TestSyndromesMatchHorner(t *testing.T) {
	for _, p := range diffCodes {
		code := Must(p.k, p.r)
		rng := rand.New(rand.NewSource(int64(p.k)*29 + int64(p.r)))
		data := make([]byte, code.K())
		for trial := 0; trial < 100; trial++ {
			rng.Read(data)
			check := code.Encode(data)
			if trial%2 == 1 {
				for e := 1 + rng.Intn(code.R()+2); e > 0; e-- {
					if rng.Intn(code.N()) < code.K() {
						data[rng.Intn(code.K())] ^= byte(1 + rng.Intn(255))
					} else {
						check[rng.Intn(code.R())] ^= byte(1 + rng.Intn(255))
					}
				}
			}
			fast := make([]byte, code.R())
			sc := code.getScratch()
			fastClean := code.syndromesInto(sc.syn, data, check)
			for i, s := range sc.syn {
				fast[i] = byte(s)
			}
			code.putScratch(sc)
			slowSyn, slowClean := code.SyndromesHorner(data, check)
			if fastClean != slowClean {
				t.Fatalf("%v trial %d: clean mismatch fast=%v slow=%v", code, trial, fastClean, slowClean)
			}
			for i := range slowSyn {
				if fast[i] != byte(slowSyn[i]) {
					t.Fatalf("%v trial %d: S_%d mismatch fast %#x slow %#x",
						code, trial, i+1, fast[i], slowSyn[i])
				}
			}
			if code.Check(data, check) != slowClean {
				t.Fatalf("%v trial %d: Check disagrees with Horner syndromes", code, trial)
			}
		}
	}
}

// TestDecodeRandomizedRoundTrip hammers the scratch-pooled decoder against
// ground truth across error/erasure mixes: 2*errors + erasures <= r must
// restore the codeword exactly; overload must either error out or land on
// some other codeword, never report success on a dirty word.
func TestDecodeRandomizedRoundTrip(t *testing.T) {
	for _, p := range diffCodes {
		code := Must(p.k, p.r)
		rng := rand.New(rand.NewSource(int64(p.k)*31 + int64(p.r)))
		data := make([]byte, code.K())
		for trial := 0; trial < 300; trial++ {
			rng.Read(data)
			check := code.Encode(data)
			wantData := append([]byte(nil), data...)
			wantCheck := append([]byte(nil), check...)

			rho := rng.Intn(code.R() + 1)
			maxErr := (code.R() - rho) / 2
			e := rng.Intn(maxErr + 2) // occasionally one beyond capacity
			positions := rng.Perm(code.N())
			erasures := positions[:rho]
			errPos := positions[rho : rho+e]
			corrupt := func(pos int) {
				v := byte(1 + rng.Intn(255))
				if pos < code.K() {
					data[pos] ^= v
				} else {
					check[pos-code.K()] ^= v
				}
			}
			// Half the erasures actually hold wrong values; the rest were
			// declared bad but happen to be correct.
			for i, pos := range erasures {
				if i%2 == 0 {
					corrupt(pos)
				}
			}
			for _, pos := range errPos {
				corrupt(pos)
			}

			corr, err := code.Decode(data, check, erasures)
			if e <= maxErr {
				if err != nil {
					t.Fatalf("%v trial %d: rho=%d e=%d should decode: %v", code, trial, rho, e, err)
				}
				if !bytes.Equal(data, wantData) || !bytes.Equal(check, wantCheck) {
					t.Fatalf("%v trial %d: decode did not restore the codeword", code, trial)
				}
				for _, cr := range corr {
					if cr.Old == cr.New {
						t.Fatalf("%v trial %d: no-op correction reported at %d", code, trial, cr.Pos)
					}
				}
			} else if err == nil {
				if !code.Check(data, check) {
					t.Fatalf("%v trial %d: decode claimed success on a non-codeword", code, trial)
				}
			} else {
				// Failed decodes must leave the inputs untouched only for
				// ErrUncorrectable paths that promise rollback; sanity-check
				// the word still decodes after manual restore.
				copy(data, wantData)
				copy(check, wantCheck)
			}
		}
	}
}

// TestDecodeLeavesInputUnchangedOnError verifies the rollback contract on
// an uncorrectable pattern.
func TestDecodeLeavesInputUnchangedOnError(t *testing.T) {
	code := Must(64, 8)
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 64)
	rng.Read(data)
	check := code.Encode(data)
	dirtyData := append([]byte(nil), data...)
	for i := 0; i < 6; i++ { // 6 errors > MaxErrors()=4
		dirtyData[i*7] ^= byte(1 + rng.Intn(255))
	}
	dirtyCheck := append([]byte(nil), check...)
	gotData := append([]byte(nil), dirtyData...)
	gotCheck := append([]byte(nil), dirtyCheck...)
	if _, err := code.Decode(gotData, gotCheck, nil); err == nil {
		return // miscorrected onto another codeword: allowed for e > t
	}
	if !bytes.Equal(gotData, dirtyData) || !bytes.Equal(gotCheck, dirtyCheck) {
		t.Fatal("failed decode modified its inputs")
	}
}
