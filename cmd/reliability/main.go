// Command reliability is an analytical ECC explorer: it sizes codes,
// prints miscorrection rates and storage costs for arbitrary parameters,
// complementing cmd/experiments' fixed paper figures.
//
//	reliability -rber 1e-3 -word 256        # size a VLEW
//	reliability -sdc -threshold 2           # appendix SDC at a threshold
//	reliability -schemes -rber 1e-3         # compare all schemes
package main

import (
	"flag"
	"fmt"
	"os"

	"chipkillpm/internal/bch"
	"chipkillpm/internal/reliability"
)

func main() {
	rber := flag.Float64("rber", 1e-3, "raw bit error rate")
	word := flag.Int("word", 256, "ECC word data size in bytes")
	sdc := flag.Bool("sdc", false, "print the RS miscorrection (SDC) analysis")
	threshold := flag.Int("threshold", 2, "RS correction acceptance threshold for -sdc")
	schemes := flag.Bool("schemes", false, "compare protection schemes at -rber")
	flag.Parse()

	switch {
	case *sdc:
		m := reliability.RSMiscorrection{K: 64, R: 8, T: *threshold, RBER: *rber}
		fmt.Printf("RS(72,64) @ RBER %.2g, accept <= %d corrections:\n", *rber, *threshold)
		fmt.Printf("  nth (errors needed to miscorrect)  %d\n", m.NTh())
		fmt.Printf("  Term A (P[>= nth byte errors])     %.3e\n", m.TermA())
		fmt.Printf("  Term B (P[decodes to a codeword])  %.3e\n", m.TermB())
		fmt.Printf("  SDC rate                           %.3e\n", m.SDCRate())
		fmt.Printf("  vs 1e-17 target                    %.2ex\n", m.SDCRate()/reliability.TargetSDC)
	case *schemes:
		fmt.Printf("Protection schemes at RBER %.2g (UE target %.0e per word):\n\n", *rber, reliability.TargetUE)
		costs := append(reliability.Fig2Schemes(*rber),
			reliability.BitOnlyBCHCost(64, *rber),
			reliability.VLEWSchemeCost(256, *rber))
		for _, sc := range costs {
			if !sc.Feasible {
				fmt.Printf("  %-45s infeasible\n", sc.Scheme)
				continue
			}
			fmt.Printf("  %-45s %s\n", sc.Scheme, sc.Detail)
		}
	default:
		k := *word * 8
		t, err := reliability.MinBCHT(k, *rber, reliability.TargetUE, 400)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reliability:", err)
			os.Exit(1)
		}
		bits := bch.ParityBitsEstimate(k, t)
		fmt.Printf("BCH sizing for %dB data words at RBER %.2g (UE <= %.0e):\n", *word, *rber, reliability.TargetUE)
		fmt.Printf("  required correction strength  %d bits\n", t)
		fmt.Printf("  code bits                     %d (%.1fB)\n", bits, float64(bits)/8)
		fmt.Printf("  storage overhead              %.1f%%\n", 100*float64(bits)/float64(k))
		sc := reliability.VLEWSchemeCost(*word, *rber)
		if sc.Feasible {
			fmt.Printf("  with parity chip (chipkill)   %.1f%%\n", 100*sc.Cost)
		}
	}
}
