package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ScrubReport summarises a boot-time scrub (Sec V-B).
type ScrubReport struct {
	VLEWsScrubbed   int64
	BitsCorrected   int64
	ChipsFailed     []int // chips whose VLEWs were uncorrectable
	ChipsRebuilt    []int // failed chips reconstructed via RS erasure / re-encode
	BlocksRebuilt   int64
	Unrecoverable   bool  // more failures than the scheme tolerates
	BusBlockFetches int64 // block transfers the scrub cost
}

// scrubUnit is one shard of the boot scrub: all VLEWs of one bank on one
// chip. Shards are disjoint, so workers never contend on a VLEW.
type scrubUnit struct {
	chip, bank int
}

// scrubPartial is one shard's contribution to the report, merged serially
// after the pool drains so the final report is deterministic regardless of
// worker count or scheduling.
type scrubPartial struct {
	vlews, fetches, bits, uncorrectable int64
}

// BootScrub fetches and decodes every VLEW on every chip, writing
// corrected contents back. A data chip with uncorrectable VLEWs is treated
// as failed and rebuilt block-by-block through Reed-Solomon erasure
// correction using the parity chip; an uncorrectable parity chip is
// rebuilt by re-encoding the (corrected) data chips. Two or more failed
// chips exceed the scheme's capability.
//
// The scan is sharded across a worker pool keyed by (chip, bank) —
// Config.ScrubWorkers sets the pool size — modelling a controller that
// scrubs banks in parallel under the bank-level parallelism of the rank.
// Decoding VLEWs dominates the cost and runs without locks; only the
// per-chip ReadVLEW/WriteVLEW accesses synchronise. The rebuild phase is
// serial: it runs at most once per scrub and walks the whole rank.
//
//chipkill:rankwide
func (c *Controller) BootScrub() ScrubReport {
	var rep ScrubReport
	var d Stats // batched counter delta, published under the stats lock
	defer func() { c.addStats(d) }()
	r := c.rank
	rcfg := r.Config()
	g := rcfg.Geometry
	code := rcfg.VLEWCode
	r.CloseAllRows()

	fetchesPerVLEW := int64(g.VLEWDataBytes/rcfg.ChipAccessBytes) / int64(rcfg.DataChips)
	uncorrectablePerChip := make([]int64, r.NumChips())
	units := make([]scrubUnit, 0, r.NumChips()*g.Banks)
	for ci := 0; ci < r.NumChips(); ci++ {
		if !r.Chip(ci).Healthy() {
			uncorrectablePerChip[ci] = 1 // known-dead chip
			continue
		}
		for bank := 0; bank < g.Banks; bank++ {
			units = append(units, scrubUnit{chip: ci, bank: bank})
		}
	}

	workers := c.cfg.ScrubWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(units) {
		workers = len(units)
	}
	partials := make([]scrubPartial, len(units))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker working set: one data/code buffer pair per VLEW of
			// a row, reused for every row the worker scans (ReadVLEWInto
			// fills them in place), plus the row's write-back batch. A
			// worker allocates once, not twice per VLEW.
			vpr := g.VLEWsPerRow()
			rowData := make([][]byte, vpr)
			rowCode := make([][]byte, vpr)
			for v := range rowData {
				rowData[v] = make([]byte, g.VLEWDataBytes)
				rowCode[v] = make([]byte, g.VLEWCodeBytes)
			}
			dirtyVs := make([]int, 0, vpr)
			dirtyData := make([][]byte, 0, vpr)
			dirtyCode := make([][]byte, 0, vpr)
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(units) {
					return
				}
				u, p := units[i], &partials[i]
				chip := r.Chip(u.chip)
				for row := 0; row < g.RowsPerBank; row++ {
					dirtyVs = dirtyVs[:0]
					dirtyData = dirtyData[:0]
					dirtyCode = dirtyCode[:0]
					for v := 0; v < vpr; v++ {
						p.vlews++
						p.fetches += fetchesPerVLEW
						data, vcode := rowData[v], rowCode[v]
						chip.ReadVLEWInto(data, vcode, u.bank, row, v)
						fixed, err := code.Decode(data, vcode[:code.ParityBytes()])
						if err != nil {
							p.uncorrectable++
							continue
						}
						if fixed > 0 {
							p.bits += int64(fixed)
							dirtyVs = append(dirtyVs, v)
							dirtyData = append(dirtyData, data)
							dirtyCode = append(dirtyCode, vcode)
						}
					}
					// One locked write-back per row covers every corrected
					// VLEW in it, instead of one lock round-trip per VLEW.
					if len(dirtyVs) > 0 {
						chip.WriteVLEWRow(u.bank, row, dirtyVs, dirtyData, dirtyCode)
					}
				}
			}
		}()
	}
	wg.Wait()
	for i := range partials {
		p := &partials[i]
		rep.VLEWsScrubbed += p.vlews
		rep.BusBlockFetches += p.fetches
		rep.BitsCorrected += p.bits
		uncorrectablePerChip[units[i].chip] += p.uncorrectable
	}
	d.ScrubCorrections += rep.BitsCorrected

	for ci, n := range uncorrectablePerChip {
		if n > 0 {
			rep.ChipsFailed = append(rep.ChipsFailed, ci)
		}
	}
	d.ScrubbedVLEWs += rep.VLEWsScrubbed

	switch len(rep.ChipsFailed) {
	case 0:
		return rep
	case 1:
		ci := rep.ChipsFailed[0]
		if ci == r.ParityChipIndex() {
			c.rebuildParityChip(&rep)
		} else {
			c.rebuildDataChip(ci, &rep, &d)
		}
		d.ChipFailuresCorrected++
		rep.ChipsRebuilt = append(rep.ChipsRebuilt, ci)
		return rep
	default:
		rep.Unrecoverable = true
		d.Uncorrectable++
		return rep
	}
}

// rebuildDataChip reconstructs every block's slice on a failed data chip
// via RS erasure correction over the (already scrubbed) healthy chips and
// parity chip, then writes the reconstructed contents into the repaired
// device and re-encodes its VLEW code bits. Runs only from BootScrub's
// serial rebuild phase.
//
//chipkill:rankwide
func (c *Controller) rebuildDataChip(ci int, rep *ScrubReport, d *Stats) {
	r := c.rank
	rcfg := r.Config()
	n := rcfg.ChipAccessBytes
	chip := r.Chip(ci)
	r.RepairChip(ci)

	erasures := make([]int, n)
	for i := 0; i < n; i++ {
		erasures[i] = ci*n + i
	}
	for b := int64(0); b < r.Blocks(); b++ {
		data, check := r.ReadBlockRaw(b)
		rep.BusBlockFetches++
		// Zero the failed chip's garbage before erasure correction; the
		// freshly repaired chip reads as zeros already, but be explicit.
		for i := ci * n; i < (ci+1)*n; i++ {
			data[i] = 0
		}
		if _, err := c.rsCode.Decode(data, check, erasures); err != nil {
			// Residual errors beyond the erasure budget (should not
			// happen after a successful scrub of the healthy chips).
			rep.Unrecoverable = true
			d.Uncorrectable++
			continue
		}
		loc := r.Locate(b)
		chip.WriteData(loc.Bank, loc.Row, loc.Col, data[ci*n:(ci+1)*n])
		rep.BlocksRebuilt++
	}
}

// rebuildParityChip recomputes every block's RS check bytes from the
// scrubbed data chips (Sec V-B: "the memory controller recalculates the
// parity values in the parity chip"). Runs only from BootScrub's serial
// rebuild phase.
//
//chipkill:rankwide
func (c *Controller) rebuildParityChip(rep *ScrubReport) {
	r := c.rank
	chip := r.Chip(r.ParityChipIndex())
	r.RepairChip(r.ParityChipIndex())
	for b := int64(0); b < r.Blocks(); b++ {
		data, _ := r.ReadBlockRaw(b)
		rep.BusBlockFetches++
		loc := r.Locate(b)
		chip.WriteData(loc.Bank, loc.Row, loc.Col, c.rsCode.Encode(data))
		rep.BlocksRebuilt++
	}
}

// String renders the report.
func (r ScrubReport) String() string {
	return fmt.Sprintf("scrub: %d VLEWs, %d bits corrected, failed chips %v, rebuilt %v (%d blocks), unrecoverable=%v",
		r.VLEWsScrubbed, r.BitsCorrected, r.ChipsFailed, r.ChipsRebuilt, r.BlocksRebuilt, r.Unrecoverable)
}

// PatrolScrub incrementally scrubs `count` VLEW groups starting at the
// given scan position, returning the next position. Runtime patrol
// scrubbing (refresh) bounds how long cells sit unrefreshed and therefore
// the runtime RBER (Sec IV: refreshing once per hour holds 3-bit PCM at
// 2e-4); a background task calling PatrolScrub in a loop implements the
// refresh policy without the bus-saturating full-memory sweeps the paper
// warns about.
//
// The position encodes (chip, bank, row, vlew) linearly in the original
// layout — or a striped-group index in degraded mode — and callers treat
// it as opaque, wrapping at TotalPatrolUnits. During an online migration
// the patrol is a no-op (pos is returned unchanged): a mid-migration rank
// holds both layouts at once and only the supervisor knows where the
// boundary is, so the guard pauses patrol until migration completes.
func (c *Controller) PatrolScrub(pos int64, count int) (next int64, corrected int64) {
	if c.mig != nil {
		return pos, 0
	}
	if c.degraded {
		return c.patrolDegraded(pos, count)
	}
	r := c.rank
	g := r.Config().Geometry
	code := r.Config().VLEWCode
	total := c.TotalPatrolUnits()
	var d Stats // published under the stats lock after the walk
	td := Telemetry{Chips: make([]ChipTelemetry, r.NumChips())}
	// One buffer pair serves the whole walk; ReadVLEWInto overwrites it
	// per unit, so the patrol no longer allocates two slices per VLEW.
	data := make([]byte, g.VLEWDataBytes)
	vcode := make([]byte, g.VLEWCodeBytes)
	for i := 0; i < count; i++ {
		p := (pos + int64(i)) % total
		vpr := int64(g.VLEWsPerRow())
		ci := int(p / (int64(g.Banks) * int64(g.RowsPerBank) * vpr))
		chip := r.Chip(ci)
		rem := p % (int64(g.Banks) * int64(g.RowsPerBank) * vpr)
		bank := int(rem / (int64(g.RowsPerBank) * vpr))
		rem %= int64(g.RowsPerBank) * vpr
		row := int(rem / vpr)
		v := int(rem % vpr)
		if !chip.Healthy() {
			continue
		}
		chip.ReadVLEWInto(data, vcode, bank, row, v)
		fixed, err := code.Decode(data, vcode[:code.ParityBytes()])
		if err != nil {
			d.ScrubUncorrectable++
			td.Chips[ci].VLEWFailures++
			continue
		}
		if fixed > 0 {
			chip.WriteVLEW(bank, row, v, data, vcode)
			corrected += int64(fixed)
		}
		d.ScrubbedVLEWs++
	}
	d.ScrubCorrections = corrected
	c.addStats(d)
	c.addTelemetry(td)
	return (pos + int64(count)) % total, corrected
}

// patrolDegraded is the degraded-mode patrol walk: each unit is one
// striped VLEW group (the only error detection left once the per-block RS
// bits are sacrificed), decoded and written back on correction.
func (c *Controller) patrolDegraded(pos int64, count int) (next int64, corrected int64) {
	code := c.rank.Config().VLEWCode
	total := c.TotalPatrolUnits()
	var d Stats
	for i := 0; i < count; i++ {
		first := ((pos + int64(i)) % total) * stripedBlocksPerVLEW
		bank, row, chip, slot, _ := c.stripedLoc(first)
		data := c.stripedData(first)
		vcode := c.rank.Chip(chip).ReadCode(bank, row, slot)
		fixed, err := code.Decode(data, vcode[:code.ParityBytes()])
		if err != nil {
			d.ScrubUncorrectable++
			continue
		}
		if fixed > 0 {
			c.writeBackStripedRaw(first, data, vcode, bank, row, chip, slot)
			corrected += int64(fixed)
			d.BlockWrites += stripedBlocksPerVLEW
		}
		d.ScrubbedVLEWs++
	}
	d.ScrubCorrections = corrected
	c.addStats(d)
	return (pos + int64(count)) % total, corrected
}

// TotalPatrolUnits returns the number of patrol positions: VLEWs across
// all chips in the original layout, striped groups in degraded mode.
func (c *Controller) TotalPatrolUnits() int64 {
	if c.degraded {
		return c.rank.Blocks() / stripedBlocksPerVLEW
	}
	g := c.rank.Config().Geometry
	return int64(c.rank.NumChips()) * int64(g.Banks) * int64(g.RowsPerBank) * int64(g.VLEWsPerRow())
}

// ProbeVLEW decodes one VLEW of one chip in the original layout, without
// write-back, and reports whether it decoded. This is the health
// supervisor's transient-vs-permanent discriminator: a dead chip returns
// fresh garbage on every read, so essentially every probe fails, while a
// transient storm leaves isolated broken words that fail at most a few of
// a spread of probes. The caller must hold the VLEW's bank lock (or own
// the controller outright) — ReadVLEW drains the word's pending EUR
// update first.
func (c *Controller) ProbeVLEW(chip, bank, row, v int) bool {
	code := c.rank.Config().VLEWCode
	data, vcode := c.rank.Chip(chip).ReadVLEW(bank, row, v)
	_, err := code.Decode(data, vcode[:code.ParityBytes()])
	return err == nil
}
