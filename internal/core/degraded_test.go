package core

import (
	"bytes"
	"math/rand"
	"testing"
)

// enterDegraded builds a filled controller, kills a chip, scrubs, and
// remaps, returning the reference contents.
func enterDegraded(t *testing.T, seed int64, chip int) (*Controller, map[int64][]byte) {
	t.Helper()
	c := newTestController(t, seed, nil)
	ref := fillRandom(t, c, seed+1)
	c.Rank().FailChip(chip)
	if err := c.EnterDegradedMode(chip); err != nil {
		t.Fatal(err)
	}
	return c, ref
}

func TestEnterDegradedModeValidation(t *testing.T) {
	c := newTestController(t, 50, nil)
	fillRandom(t, c, 51)
	if err := c.EnterDegradedMode(8); err == nil {
		t.Error("parity chip accepted as failed data chip")
	}
	if err := c.EnterDegradedMode(-1); err == nil {
		t.Error("negative chip accepted")
	}
	if err := c.EnterDegradedMode(2); err != nil {
		t.Fatal(err)
	}
	if err := c.EnterDegradedMode(3); err == nil {
		t.Error("second remap accepted")
	}
	if ok, chip := c.Degraded(); !ok || chip != 2 {
		t.Errorf("Degraded() = %v,%d", ok, chip)
	}
}

func TestDegradedReadsRecoverAllData(t *testing.T) {
	c, ref := enterDegraded(t, 52, 4)
	for b, want := range ref {
		got, err := c.ReadBlock(b)
		if err != nil {
			t.Fatalf("block %d: %v", b, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d: wrong data after remap", b)
		}
	}
}

func TestDegradedWritesAndReadBack(t *testing.T) {
	c, ref := enterDegraded(t, 54, 0)
	rng := rand.New(rand.NewSource(55))
	for i := 0; i < 100; i++ {
		b := rng.Int63n(c.Rank().Blocks())
		data := make([]byte, 64)
		rng.Read(data)
		if err := c.WriteBlock(b, data); err != nil {
			t.Fatalf("write %d: %v", b, err)
		}
		ref[b] = data
	}
	for b, want := range ref {
		got, err := c.ReadBlock(b)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("block %d: err=%v", b, err)
		}
	}
}

func TestDegradedCorrectsBitErrors(t *testing.T) {
	// The striped VLEWs must keep correcting random bit errors even
	// without per-block RS bits.
	c, ref := enterDegraded(t, 56, 7)
	c.ResetStats()
	c.Rank().InjectRetentionErrors(5e-4)
	for b, want := range ref {
		got, err := c.ReadBlock(b)
		if err != nil {
			t.Fatalf("block %d: %v", b, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d: wrong data under degraded bit errors", b)
		}
	}
	if c.Stats().BitsCorrectedVLEW == 0 {
		t.Error("no corrections recorded despite injected errors")
	}
}

func TestDegradedCorrectionWritesBack(t *testing.T) {
	// Corrected VLEWs are scrubbed in place: a second read of the same
	// block must be clean.
	c, ref := enterDegraded(t, 58, 3)
	c.Rank().InjectRetentionErrors(5e-4)
	for b := int64(0); b < c.Rank().Blocks(); b++ {
		if _, err := c.ReadBlock(b); err != nil {
			t.Fatalf("block %d: %v", b, err)
		}
	}
	c.ResetStats()
	for b, want := range ref {
		got, err := c.ReadBlock(b)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("block %d: err=%v", b, err)
		}
	}
	if got := c.Stats().ReadsVLEWFallback; got != 0 {
		t.Errorf("%d corrections on the second pass, want 0 (write-back failed)", got)
	}
}

func TestDegradedReadAmplification(t *testing.T) {
	c, _ := enterDegraded(t, 60, 1)
	c.ResetStats()
	if _, err := c.ReadBlock(10); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	// Each degraded read fetches its 4-block striped VLEW plus code.
	if st.BlockFetches < 4 || st.BlockFetches > 6 {
		t.Errorf("BlockFetches=%d, want ~5", st.BlockFetches)
	}
}

func TestDegradedSlotMappingBijective(t *testing.T) {
	// Every striped VLEW of a row must own a distinct (chip, slot), and
	// the failed chip must hold none.
	c, _ := enterDegraded(t, 62, 5)
	type key struct{ bank, row, chip, slot int }
	seen := map[key]int64{}
	for first := int64(0); first < c.Rank().Blocks(); first += stripedBlocksPerVLEW {
		bank, row, chip, slot, _ := c.stripedLoc(first)
		if chip == 5 {
			t.Fatalf("striped VLEW %d assigned to the failed chip", first)
		}
		k := key{bank, row, chip, slot}
		if prev, dup := seen[k]; dup {
			t.Fatalf("slot collision: VLEWs %d and %d both at %+v", prev, first, k)
		}
		seen[k] = first
	}
}

func TestDegradedModeFromHealthyChip(t *testing.T) {
	// Proactive retirement: remap a chip that has not failed yet (e.g.
	// predictive failure analysis); its own data is used directly.
	c := newTestController(t, 64, nil)
	ref := fillRandom(t, c, 65)
	if err := c.EnterDegradedMode(6); err != nil {
		t.Fatal(err)
	}
	c.Rank().FailChip(6) // now it dies for real
	for b, want := range ref {
		got, err := c.ReadBlock(b)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("block %d: err=%v", b, err)
		}
	}
}
