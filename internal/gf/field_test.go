package gf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewFieldSupportedDegrees(t *testing.T) {
	for m := uint(2); m <= 16; m++ {
		f, err := NewField(m)
		if err != nil {
			t.Fatalf("NewField(%d): %v", m, err)
		}
		if f.Size() != 1<<m {
			t.Errorf("m=%d: Size()=%d, want %d", m, f.Size(), 1<<m)
		}
		if f.N() != 1<<m-1 {
			t.Errorf("m=%d: N()=%d, want %d", m, f.N(), 1<<m-1)
		}
	}
}

func TestNewFieldRejectsBadDegrees(t *testing.T) {
	for _, m := range []uint{0, 1, 17, 32} {
		if _, err := NewField(m); err == nil {
			t.Errorf("NewField(%d): expected error", m)
		}
	}
}

func TestNewFieldPolyRejectsNonPrimitive(t *testing.T) {
	// x^4 + x^3 + x^2 + x + 1 is irreducible but NOT primitive over GF(2):
	// alpha has order 5, not 15.
	if _, err := NewFieldPoly(4, 0x1F); err == nil {
		t.Error("expected error for non-primitive polynomial x^4+x^3+x^2+x+1")
	}
	// x^4 + x^2 + 1 = (x^2+x+1)^2 is reducible.
	if _, err := NewFieldPoly(4, 0x15); err == nil {
		t.Error("expected error for reducible polynomial x^4+x^2+1")
	}
	// Wrong degree encoding.
	if _, err := NewFieldPoly(4, 0x7); err == nil {
		t.Error("expected error for degree mismatch")
	}
}

func TestGF16KnownTable(t *testing.T) {
	// GF(2^4) with x^4+x+1: classic table, alpha^4 = alpha + 1 = 0b0011.
	f := MustField(4)
	want := []Elem{1, 2, 4, 8, 3, 6, 12, 11, 5, 10, 7, 14, 15, 13, 9}
	for i, w := range want {
		if got := f.Exp(i); got != w {
			t.Errorf("alpha^%d = %d, want %d", i, got, w)
		}
	}
}

func TestMulDivInverse(t *testing.T) {
	f := MustField(8)
	for a := 1; a < f.Size(); a++ {
		inv := f.Inv(Elem(a))
		if got := f.Mul(Elem(a), inv); got != 1 {
			t.Fatalf("a=%d: a*Inv(a)=%d, want 1", a, got)
		}
		if got := f.Div(1, Elem(a)); got != inv {
			t.Fatalf("a=%d: Div(1,a)=%d, want Inv(a)=%d", a, got, inv)
		}
	}
}

func TestMulByZero(t *testing.T) {
	f := MustField(8)
	for a := 0; a < f.Size(); a++ {
		if f.Mul(Elem(a), 0) != 0 || f.Mul(0, Elem(a)) != 0 {
			t.Fatalf("a=%d: multiplication by zero is nonzero", a)
		}
	}
}

func TestDivByZeroPanics(t *testing.T) {
	f := MustField(8)
	defer func() {
		if recover() == nil {
			t.Error("Div by zero did not panic")
		}
	}()
	f.Div(5, 0)
}

func TestInvZeroPanics(t *testing.T) {
	f := MustField(8)
	defer func() {
		if recover() == nil {
			t.Error("Inv(0) did not panic")
		}
	}()
	f.Inv(0)
}

func TestLogZeroPanics(t *testing.T) {
	f := MustField(8)
	defer func() {
		if recover() == nil {
			t.Error("Log(0) did not panic")
		}
	}()
	f.Log(0)
}

func TestExpNegativeAndWrap(t *testing.T) {
	f := MustField(8)
	if f.Exp(-1) != f.Exp(f.N()-1) {
		t.Error("Exp(-1) != Exp(n-1)")
	}
	if f.Exp(f.N()) != 1 {
		t.Error("Exp(n) != 1")
	}
	if f.Exp(3*f.N()+7) != f.Exp(7) {
		t.Error("Exp does not wrap modulo n")
	}
}

func TestPowMatchesRepeatedMul(t *testing.T) {
	f := MustField(8)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		a := Elem(rng.Intn(f.Size()))
		k := rng.Intn(600)
		want := Elem(1)
		for i := 0; i < k; i++ {
			want = f.Mul(want, a)
		}
		if got := f.Pow(a, k); got != want {
			t.Fatalf("Pow(%d,%d)=%d, want %d", a, k, got, want)
		}
	}
}

// Property: multiplication is associative and commutative, and distributes
// over addition, for all fields we rely on.
func TestFieldAxiomsQuick(t *testing.T) {
	for _, m := range []uint{4, 8, 10, 12} {
		f := MustField(m)
		mask := Elem(f.Size() - 1)
		assoc := func(a, b, c Elem) bool {
			a, b, c = a&mask, b&mask, c&mask
			return f.Mul(f.Mul(a, b), c) == f.Mul(a, f.Mul(b, c))
		}
		comm := func(a, b Elem) bool {
			a, b = a&mask, b&mask
			return f.Mul(a, b) == f.Mul(b, a)
		}
		dist := func(a, b, c Elem) bool {
			a, b, c = a&mask, b&mask, c&mask
			return f.Mul(a, f.Add(b, c)) == f.Add(f.Mul(a, b), f.Mul(a, c))
		}
		for name, prop := range map[string]any{"assoc": assoc, "comm": comm, "dist": dist} {
			if err := quick.Check(prop, nil); err != nil {
				t.Errorf("m=%d %s: %v", m, name, err)
			}
		}
	}
}

// Property: the Frobenius map a -> a^2 is additive in characteristic 2.
func TestFrobeniusAdditiveQuick(t *testing.T) {
	f := MustField(8)
	prop := func(a, b Elem) bool {
		a &= 0xFF
		b &= 0xFF
		lhs := f.Pow(f.Add(a, b), 2)
		rhs := f.Add(f.Pow(a, 2), f.Pow(b, 2))
		return lhs == rhs
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestStringer(t *testing.T) {
	f := MustField(8)
	if f.String() != "GF(2^8) [poly=0x11d]" {
		t.Errorf("unexpected String(): %q", f.String())
	}
}

func BenchmarkMulGF256(b *testing.B) {
	f := MustField(8)
	b.ReportAllocs()
	var acc Elem = 1
	for i := 0; i < b.N; i++ {
		acc = f.Mul(acc, Elem(i%255)+1)
	}
	_ = acc
}
