#!/bin/sh
# check.sh — the gate a change must pass before it lands:
#   vet + build + full tests, race detector on the concurrent packages,
#   then the kernel regression harness (refreshes BENCH_kernels.json and
#   fails on a fast-path/reference speedup regression).
#
# Usage: scripts/check.sh [-quick]
#   -quick skips the race pass and the benchmark harness.
set -eu
cd "$(dirname "$0")/.."

quick=false
[ "${1:-}" = "-quick" ] && quick=true

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./... -count=1

if ! $quick; then
	echo "== go test -race (core, rank)"
	go test -race -count=1 ./internal/core/... ./internal/rank/...

	echo "== kernel benchmarks -> BENCH_kernels.json"
	go run ./cmd/benchkernels -check
fi

echo "OK"
