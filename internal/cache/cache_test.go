package cache

import (
	"testing"

	"chipkillpm/internal/config"
)

// fakeMem is a scripted cache.Memory with fixed latencies.
type fakeMem struct {
	pmBase    uint64
	readLat   float64
	reads     []uint64
	writes    []uint64
	needOMVs  []bool
	writeFree float64
}

func (m *fakeMem) Read(addr uint64, now float64) float64 {
	m.reads = append(m.reads, addr)
	return now + m.readLat
}

func (m *fakeMem) Write(addr uint64, now float64, needOMV bool) float64 {
	m.writes = append(m.writes, addr)
	m.needOMVs = append(m.needOMVs, needOMV)
	if m.writeFree > now {
		return m.writeFree
	}
	return now
}

func (m *fakeMem) IsPM(addr uint64) bool { return addr >= m.pmBase }

func smallSystem() config.System {
	sys := config.TableI()
	// Tiny caches make eviction behaviour testable: 4 sets x 2 ways L1,
	// 4 sets x 4 ways LLC.
	sys.L1 = config.Cache{Ways: 2, SizeBytes: 8 * 64, LatencyCycle: 1, LineBytes: 64}
	sys.LLC = config.Cache{Ways: 4, SizeBytes: 16 * 64, LatencyCycle: 14, LineBytes: 64}
	sys.CPU.Cores = 2
	return sys
}

func newHierarchy(t *testing.T, policy OMVPolicy) (*Hierarchy, *fakeMem) {
	t.Helper()
	mem := &fakeMem{pmBase: 1 << 40, readLat: 250}
	h, err := New(smallSystem(), mem, policy)
	if err != nil {
		t.Fatal(err)
	}
	return h, mem
}

const pmA = uint64(1) << 40

func TestLoadMissFillsAndHits(t *testing.T) {
	h, mem := newHierarchy(t, OMVOff)
	d1 := h.Load(0, pmA, 0)
	if d1 < 250 {
		t.Errorf("miss latency %.1f, want >= 250", d1)
	}
	if len(mem.reads) != 1 {
		t.Fatalf("reads=%d, want 1", len(mem.reads))
	}
	// Second access: L1 hit, no new memory read.
	d2 := h.Load(0, pmA, 1000)
	if d2-1000 > 1 {
		t.Errorf("hit latency %.2f, want ~0.33 (1 cycle)", d2-1000)
	}
	if len(mem.reads) != 1 {
		t.Error("hit went to memory")
	}
	st := h.Stats()
	if st.L1Hits != 1 || st.L1Misses != 1 || st.LLCMisses != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestLLCHitAfterL1Eviction(t *testing.T) {
	h, mem := newHierarchy(t, OMVOff)
	h.Load(0, pmA, 0)
	// Evict pmA from the 2-way L1 set by loading two same-set lines
	// (set index repeats every 4 blocks -> stride 4*64).
	h.Load(0, pmA+4*64, 100)
	h.Load(0, pmA+8*64, 200)
	reads := len(mem.reads)
	h.Load(0, pmA, 300) // should hit LLC
	if len(mem.reads) != reads {
		t.Error("LLC hit went to memory")
	}
	if h.Stats().LLCHits == 0 {
		t.Error("no LLC hit recorded")
	}
}

func TestStoreWriteAllocateAndWriteback(t *testing.T) {
	h, mem := newHierarchy(t, OMVOff)
	h.Store(0, pmA, 0)
	if len(mem.reads) != 1 {
		t.Fatalf("write-allocate read missing: %d", len(mem.reads))
	}
	// Force the dirty line out of L1 and then out of the LLC.
	for i := uint64(1); i <= 16; i++ {
		h.Store(0, pmA+i*4*64, float64(i)*1000)
	}
	if len(mem.writes) == 0 {
		t.Error("dirty eviction never wrote back")
	}
	if h.Stats().PMWrites == 0 {
		t.Error("PM write not counted")
	}
}

func TestClwbCleansDirtyLine(t *testing.T) {
	h, mem := newHierarchy(t, OMVOff)
	h.Store(0, pmA, 0)
	d := h.Clwb(0, pmA, 1000)
	if len(mem.writes) != 1 {
		t.Fatalf("clwb wrote %d times, want 1", len(mem.writes))
	}
	if mem.writes[0] != pmA {
		t.Errorf("clwb wrote %#x", mem.writes[0])
	}
	if d < 1000 {
		t.Error("clwb completion before issue")
	}
	// A second clwb with no new dirtying is a no-op.
	h.Clwb(0, pmA, 2000)
	if len(mem.writes) != 1 {
		t.Error("clean clwb wrote to memory")
	}
	if h.Stats().Cleans != 1 {
		t.Errorf("Cleans=%d, want 1", h.Stats().Cleans)
	}
}

func TestOMVHitOnEagerClean(t *testing.T) {
	// Store (write-allocate fill sets SAM on the LLC copy), then clwb:
	// the old value is in the LLC -> OMV hit, needOMV=false.
	h, mem := newHierarchy(t, OMVPreserve)
	h.Store(0, pmA, 0)
	h.Clwb(0, pmA, 1000)
	st := h.Stats()
	if st.OMVHits != 1 || st.OMVMisses != 0 {
		t.Errorf("OMV stats: %+v", st)
	}
	if mem.needOMVs[0] {
		t.Error("needOMV set despite LLC-resident old value")
	}
	if st.OMVHitRate() != 1 {
		t.Errorf("hit rate %.2f", st.OMVHitRate())
	}
}

func TestOMVMissWhenLLCCopyEvicted(t *testing.T) {
	// Store, thrash the LLC set so the SAM copy is evicted, then clwb:
	// the old value is gone -> OMV miss, needOMV=true.
	h, mem := newHierarchy(t, OMVPreserve)
	h.Store(0, pmA, 0)
	// Thrash the same LLC set (4 ways; set stride 4 blocks) with loads
	// from a different core so core 0's dirty L1 line stays put.
	for i := uint64(1); i <= 6; i++ {
		h.Load(1, pmA+i*4*64, float64(i)*1000)
	}
	h.Clwb(0, pmA, 50000)
	st := h.Stats()
	if st.OMVMisses != 1 {
		t.Errorf("OMV stats: %+v", st)
	}
	last := len(mem.needOMVs) - 1
	if !mem.needOMVs[last] {
		t.Error("needOMV not signalled to the controller")
	}
}

func TestOMVLinePreservedOnDirtyWriteback(t *testing.T) {
	// Fill a line from memory (SAM set), dirty it in L1, force the L1
	// eviction: the LLC must keep the old copy as an OMV line and accept
	// the dirty data in another way (Sec V-D).
	h, _ := newHierarchy(t, OMVPreserve)
	h.Store(0, pmA, 0)
	// Evict from L1 (2-way, stride 4 blocks) with clean loads.
	h.Load(0, pmA+4*64, 1000)
	h.Load(0, pmA+8*64, 2000)
	if h.Stats().OMVLinesCreated != 1 {
		t.Errorf("OMVLinesCreated=%d, want 1", h.Stats().OMVLinesCreated)
	}
	_, omvFrac := h.Occupancy()
	if omvFrac <= 0 {
		t.Error("no OMV lines visible in occupancy")
	}
	// Writing the block back (LLC dirty eviction or clean) must consume
	// the OMV line: clean via clwb of the LLC-resident dirty line.
	h.Clwb(0, pmA, 50000)
	st := h.Stats()
	if st.OMVHits != 1 {
		t.Errorf("OMV hit from preserved line missing: %+v", st)
	}
}

func TestNoOMVMachineryInBaselineMode(t *testing.T) {
	h, mem := newHierarchy(t, OMVOff)
	h.Store(0, pmA, 0)
	h.Load(0, pmA+4*64, 1000)
	h.Load(0, pmA+8*64, 2000)
	h.Clwb(0, pmA, 50000)
	st := h.Stats()
	if st.OMVLinesCreated != 0 || st.OMVHits != 0 || st.OMVMisses != 0 {
		t.Errorf("baseline tracked OMV state: %+v", st)
	}
	for _, n := range mem.needOMVs {
		if n {
			t.Error("baseline requested OMV fetch")
		}
	}
}

func TestDRAMWritesBypassOMV(t *testing.T) {
	h, mem := newHierarchy(t, OMVPreserve)
	dram := uint64(0x10000)
	h.Store(0, dram, 0)
	// Evict through both levels.
	for i := uint64(1); i <= 8; i++ {
		h.Store(0, dram+i*4*64, float64(i)*1000)
	}
	st := h.Stats()
	if st.OMVHits+st.OMVMisses != 0 {
		t.Errorf("DRAM writes counted in OMV stats: %+v", st)
	}
	for _, n := range mem.needOMVs {
		if n {
			t.Error("DRAM write requested OMV")
		}
	}
}

func TestCoherenceInvalidateOnRemoteStore(t *testing.T) {
	h, _ := newHierarchy(t, OMVOff)
	h.Load(0, pmA, 0)
	h.Store(1, pmA, 1000) // must invalidate core 0's copy
	h.Load(0, pmA, 2000)
	st := h.Stats()
	// Core 0's second load must miss L1 (invalidated), hit LLC.
	if st.L1Misses < 2 {
		t.Errorf("expected an invalidation miss: %+v", st)
	}
}

func TestOccupancyCountsDirtyPM(t *testing.T) {
	h, _ := newHierarchy(t, OMVPreserve)
	if d, _ := h.Occupancy(); d != 0 {
		t.Errorf("initial occupancy %.3f", d)
	}
	h.Store(0, pmA, 0)
	d, _ := h.Occupancy()
	if d <= 0 {
		t.Error("dirty PM line not counted")
	}
	h.Clwb(0, pmA, 1000)
	d, _ = h.Occupancy()
	if d != 0 {
		t.Errorf("occupancy after clean %.4f, want 0", d)
	}
}

func TestNewValidatesConfig(t *testing.T) {
	bad := smallSystem()
	bad.LLC.Ways = 0
	if _, err := New(bad, &fakeMem{}, OMVOff); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestDescribe(t *testing.T) {
	h, _ := newHierarchy(t, OMVPreserve)
	if h.Describe() == "" {
		t.Error("empty description")
	}
}
