// Package a exercises the noalloc analyzer: annotated functions with
// clean bodies, direct allocating constructs, transitive allocation
// through unannotated helpers, the panic exemption, and the line-level
// allow escape hatch.
package a

import (
	"fmt"
	"sync/atomic"
)

var counter int64

// sum is the clean case: loops, arithmetic, atomics, copies, and basic
// conversions never allocate.
//
//chipkill:noalloc
func sum(dst, src []byte) int {
	atomic.AddInt64(&counter, 1)
	n := copy(dst, src)
	for i := range dst {
		n += int(dst[i])
	}
	return n
}

// okCallsAnnotated trusts its annotated callee; sum is checked at its
// own declaration.
//
//chipkill:noalloc
func okCallsAnnotated(dst, src []byte) int {
	return sum(dst, src)
}

//chipkill:noalloc
func badMake(n int) []byte {
	buf := make([]byte, n) // want `make allocates`
	return buf
}

//chipkill:noalloc
func badAppend(dst []byte, b byte) []byte {
	return append(dst, b) // want `append may grow`
}

//chipkill:noalloc
func badClosure(n int) func() int {
	return func() int { return n } // want `closure may allocate`
}

//chipkill:noalloc
func badConcat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//chipkill:noalloc
func badBox(x int) any {
	return x // want `interface boxing of non-pointer int`
}

//chipkill:noalloc
func badDynamic(f func() int) int {
	return f() // want `dynamic call`
}

//chipkill:noalloc
func badFmt(n int) string {
	return fmt.Sprintf("%d", n) // want `calls fmt.Sprintf, which allocates` `interface boxing of non-pointer int`
}

// helper allocates and carries no annotation. This is the
// annotation-removal scenario: stripping //chipkill:noalloc from a
// helper while adding an allocation to it does not escape the checker —
// every still-annotated caller reports the call transitively.
func helper(n int) []byte {
	return make([]byte, n)
}

//chipkill:noalloc
func badTransitive(n int) []byte {
	return helper(n) // want `calls noallocstub/a.helper, which allocates`
}

// mid is clean itself; the allocation is two hops down.
func mid(n int) []byte {
	return helper(n)
}

//chipkill:noalloc
func badTwoHops(n int) []byte {
	return mid(n) // want `calls noallocstub/a.mid, which allocates`
}

// okPanic shows the panic exemption: a panicking process has no
// allocation budget to protect, so arguments to panic may allocate.
//
//chipkill:noalloc
func okPanic(i, n int) {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("index %d out of range [0,%d)", i, n))
	}
}

// okAllow uses the line-level escape hatch for a measured cold path.
//
//chipkill:noalloc
func okAllow(n int) []byte {
	//chipkill:allow noalloc cold path, covered by AllocsPerRun pin
	return make([]byte, n)
}

// The write-chain shape: a chip-like type whose annotated write path
// (writeXOR -> openRow -> closeRow -> drainSlot) stays allocation-free by
// drawing every buffer from per-bank scratch owned by the struct. This is
// the contract the real nvram.Chip write pipeline is held to.

type bankScratch struct {
	parity []byte
	delta  []byte
}

type fakeChip struct {
	bank    []bankScratch
	open    []int
	code    []byte
}

//chipkill:noalloc
func (c *fakeChip) drainSlot(bank int) {
	p := c.bank[bank].parity
	for i := range p {
		p[i] ^= c.bank[bank].delta[i]
	}
	copy(c.code, p)
}

//chipkill:noalloc
func (c *fakeChip) closeRow(bank int) {
	c.drainSlot(bank)
	c.open[bank] = -1
}

//chipkill:noalloc
func (c *fakeChip) openRow(bank, row int) {
	if c.open[bank] >= 0 {
		c.closeRow(bank)
	}
	c.open[bank] = row
}

//chipkill:noalloc
func (c *fakeChip) writeXOR(bank, row int, delta []byte) {
	c.openRow(bank, row)
	d := c.bank[bank].delta
	for i, v := range delta {
		d[i] ^= v
	}
}

// badDrainSlot is the regression the annotation guards against: a drain
// that builds its parity buffer fresh instead of using bank scratch.
//
//chipkill:noalloc
func (c *fakeChip) badDrainSlot(bank int) {
	p := make([]byte, len(c.code)) // want `make allocates`
	for i := range p {
		p[i] ^= c.bank[bank].delta[i]
	}
	copy(c.code, p)
}

// badCloseRow shows the annotation-removal scenario on the chain itself:
// if drainSlot lost its annotation and grew an allocation, every
// still-annotated caller would report it transitively — modelled here by
// an unannotated allocating drain.
func (c *fakeChip) unannotatedDrain(bank int) {
	c.bank[bank].parity = make([]byte, len(c.code))
}

//chipkill:noalloc
func (c *fakeChip) badCloseRow(bank int) {
	c.unannotatedDrain(bank) // want `calls noallocstub/a.fakeChip.unannotatedDrain, which allocates`
	c.open[bank] = -1
}
