package nvram

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestEURDeferredDrainMatchesImmediate is the differential pin for the
// raw-delta EUR: accumulating many XOR deltas and paying one EncodeDelta
// at row close must leave byte-identical cells and code bits to draining
// after every single write. BCH encoding is linear, so
// Encode(d1 ^ d2) == Encode(d1) ^ Encode(d2) — this test is what keeps
// that assumption honest if the encoder ever grows a nonlinear step.
func TestEURDeferredDrainMatchesImmediate(t *testing.T) {
	deferred := newTestChip(t)
	immediate := newTestChip(t)
	rng := rand.New(rand.NewSource(77))

	// Random-width deltas at random offsets, revisiting rows and VLEWs so
	// the accumulated registers see overlapping and disjoint ranges (the
	// lo/hi touched-range bookkeeping has to merge both).
	type w struct {
		bank, row, off int
		delta          []byte
	}
	var writes []w
	for i := 0; i < 200; i++ {
		n := 1 + rng.Intn(64)
		wr := w{
			bank:  rng.Intn(testGeom.Banks),
			row:   rng.Intn(4), // few rows: force revisits and implicit closes
			off:   rng.Intn(testGeom.RowDataBytes - 64),
			delta: make([]byte, n),
		}
		rng.Read(wr.delta)
		writes = append(writes, wr)
	}
	for _, wr := range writes {
		deferred.WriteXOR(wr.bank, wr.row, wr.off, wr.delta)

		immediate.WriteXOR(wr.bank, wr.row, wr.off, wr.delta)
		immediate.CloseRow(wr.bank) // drain after every write
	}
	deferred.CloseAllRows()
	immediate.CloseAllRows()

	if !bytes.Equal(deferred.CellArray(), immediate.CellArray()) {
		t.Fatal("deferred and immediate EUR drains left different data cells")
	}
	for bank := 0; bank < testGeom.Banks; bank++ {
		for row := 0; row < 4; row++ {
			for v := 0; v < testGeom.VLEWsPerRow(); v++ {
				dc := deferred.ReadCode(bank, row, v)
				ic := immediate.ReadCode(bank, row, v)
				if !bytes.Equal(dc, ic) {
					t.Fatalf("bank %d row %d vlew %d: deferred code differs from immediate", bank, row, v)
				}
			}
		}
	}
	// The whole point of deferring: strictly fewer code writes for the
	// same final state.
	if d, i := deferred.Stats().VLEWCodeWrites, immediate.Stats().VLEWCodeWrites; d >= i {
		t.Fatalf("deferred drain did not coalesce: %d code writes vs %d immediate", d, i)
	}
}
