package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Seqlock enforces the engine's lock-free clean-read contract
// (DESIGN.md §12) from both sides of the sequence counter:
//
// Writer side (odd-window store discipline): inside internal/engine,
// every call to a controller operation that mutates seqlock-covered
// state — chip data cells or the layout they are interpreted under —
// must run inside a shard writer section. The analyzer accepts a call
// that is lexically preceded by (*shard).lockWrite in the same function,
// sits inside a function literal passed to (*engine.Engine).Quiesce
// (which opens a writer section on every shard), or carries a
// //chipkill:allow seqlock escape with a reason. This catches the exact
// regression the seqlock made possible: a new engine method that takes
// s.mu directly, mutates cells, and silently lets concurrent lock-free
// readers consume half-applied state with an even sequence.
//
// Reader side (seqread purity): a function whose doc comment carries
// //chipkill:seqread runs between sequence checks with no exclusion, so
// it must not store anywhere except its own locals and parameters, and
// may only call sync/atomic and encoding/binary, builtins and
// conversions, or other //chipkill:seqread functions. Anything else —
// a selector store, a locking call, fmt — would make the "reader" a
// writer (or block it) where tearing is legal and retries are invisible.
var Seqlock = &Analyzer{
	Name:          "seqlock",
	Doc:           "seqlock-covered mutations inside writer sections; //chipkill:seqread functions stay pure",
	SkipTestFiles: true,
	Run:           runSeqlock,
}

// seqlockMutators lists the controller operations that mutate state the
// lock-free reader gathers (data cells, or the layout routing that
// decides what those cells mean), matched by package-path suffix like
// rankWideMethods. BeginMigration/JoinMigration are deliberately absent:
// they only set controller routing state, which lock-free readers never
// consult — readers learn about migrations through the engine's atomic
// publication, before any band moves.
var seqlockMutators = []struct {
	pkgSuffix, typeName string
	methods             map[string]bool
}{
	{"internal/core", "Controller", map[string]bool{
		"WriteBlock": true, "WriteBlockInitial": true, "DisableBlock": true,
		"BootScrub": true, "EnterDegradedMode": true, "AdoptDegradedMode": true,
		"MigrateBand": true, "RedoBand": true, "FinishMigration": true,
		"PatrolScrub": true,
	}},
}

func isSeqlockMutator(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	for _, set := range seqlockMutators {
		if set.methods[fn.Name()] && methodOn(fn, set.pkgSuffix, set.typeName, fn.Name()) {
			return true
		}
	}
	return false
}

func runSeqlock(pass *Pass) {
	runSeqlockWriters(pass)
	runSeqlockReaders(pass)
}

// ---- writer side ----

// runSeqlockWriters checks the odd-window store discipline. It only
// applies inside internal/engine: the shard seqlock is an engine
// construct, and a standalone core.Controller (the serial harnesses) has
// no lock-free readers to protect.
func runSeqlockWriters(pass *Pass) {
	if !pathHasSuffix(pass.Pkg.PkgPath, "internal/engine") {
		return
	}
	for _, file := range pass.Pkg.Files {
		spans := quiesceSpans(pass.Pkg, file)
		locks := lockWriteCalls(pass.Pkg, file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(pass.Pkg.Info, call)
			if !isSeqlockMutator(fn) {
				return true
			}
			if inSpans(spans, call.Pos()) {
				return true
			}
			if precededByLockWrite(pass.Pkg.dirs, locks, call.Pos()) {
				return true
			}
			pass.Reportf(call.Pos(),
				"seqlock-covered mutation %s called outside a shard writer section (no preceding lockWrite, not in a Quiesce section)",
				symbolKey(fn))
			return true
		})
	}
}

// lockWriteCalls returns the positions of (*shard).lockWrite calls in
// file, in source order.
func lockWriteCalls(pkg *Package, file *ast.File) []token.Pos {
	var locks []token.Pos
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if methodOn(calleeOf(pkg.Info, call), "internal/engine", "shard", "lockWrite") {
			locks = append(locks, call.Pos())
		}
		return true
	})
	return locks
}

// precededByLockWrite reports whether some lockWrite call sits between
// the start of pos's enclosing function and pos itself. Lexical order is
// the right approximation here: every writer section in the engine is a
// straight lockWrite ... unlockWrite bracket within one function, and a
// mutator above its lockWrite is exactly the bug being policed.
func precededByLockWrite(dirs *directives, locks []token.Pos, pos token.Pos) bool {
	fd := dirs.enclosingFunc(pos)
	if fd == nil {
		return false
	}
	for _, l := range locks {
		if fd.Pos() <= l && l < pos {
			return true
		}
	}
	return false
}

// ---- reader side ----

// runSeqlockReaders checks //chipkill:seqread purity in every target
// package.
func runSeqlockReaders(pass *Pass) {
	marks := seqreadMarks(pass.Suite)
	for fd, verbs := range pass.Pkg.dirs.funcMarks {
		if !verbs["seqread"] || fd.Body == nil {
			continue
		}
		checkSeqreadBody(pass, fd, marks)
	}
}

// seqreadMarks collects the symbol keys of every //chipkill:seqread
// function across the suite, so cross-package reader chains (engine →
// rs → gf tables) resolve without package-local bookkeeping.
func seqreadMarks(s *Suite) map[string]bool {
	marks := map[string]bool{}
	for _, pkg := range s.pkgs {
		if pkg.dirs == nil {
			continue
		}
		for fd, verbs := range pkg.dirs.funcMarks {
			if !verbs["seqread"] {
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				marks[symbolKey(fn)] = true
			}
		}
	}
	return marks
}

func checkSeqreadBody(pass *Pass, fd *ast.FuncDecl, marks map[string]bool) {
	info := pass.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkSeqreadStore(pass, fd, lhs)
			}
		case *ast.IncDecStmt:
			checkSeqreadStore(pass, fd, n.X)
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "seqread function %s starts a goroutine", fd.Name.Name)
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "seqread function %s defers (hidden control flow on the validated path)", fd.Name.Name)
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "seqread function %s sends on a channel", fd.Name.Name)
		case *ast.CallExpr:
			checkSeqreadCall(pass, fd, marks, info, n)
		}
		return true
	})
}

// checkSeqreadStore flags stores whose target is not rooted at a local
// variable or parameter of the function, or that reach their root
// through a field or pointer dereference (which would mutate shared
// state even when the root is a local pointer).
func checkSeqreadStore(pass *Pass, fd *ast.FuncDecl, lhs ast.Expr) {
	expr := lhs
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.Ident:
			if e.Name == "_" {
				return
			}
			if v, ok := pass.Pkg.Info.ObjectOf(e).(*types.Var); ok &&
				fd.Pos() <= v.Pos() && v.Pos() <= fd.End() {
				return // local, parameter, or receiver of this function
			}
			pass.Reportf(lhs.Pos(),
				"seqread function %s stores outside its locals and parameters", fd.Name.Name)
			return
		default:
			// SelectorExpr, StarExpr, slice of a field, ...
			pass.Reportf(lhs.Pos(),
				"seqread function %s stores through a field or dereference", fd.Name.Name)
			return
		}
	}
}

// checkSeqreadCall enforces the callee whitelist: sync/atomic and
// encoding/binary (pure or validated-by-design), builtins and type
// conversions, and other //chipkill:seqread functions.
func checkSeqreadCall(pass *Pass, fd *ast.FuncDecl, marks map[string]bool, info *types.Info, call *ast.CallExpr) {
	fn := calleeOf(info, call)
	if fn == nil {
		// Conversion, builtin, or a dynamic call we cannot resolve.
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return // conversion
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, ok := info.Uses[id].(*types.Builtin); ok {
				return
			}
		}
		pass.Reportf(call.Pos(),
			"seqread function %s makes a dynamic call (cannot verify purity)", fd.Name.Name)
		return
	}
	if pkg := fn.Pkg(); pkg != nil {
		switch pkg.Path() {
		case "sync/atomic", "encoding/binary":
			return
		}
	}
	if marks[symbolKey(fn)] {
		return
	}
	pass.Reportf(call.Pos(),
		"seqread function %s calls %s, which is not marked //chipkill:seqread",
		fd.Name.Name, symbolKey(fn))
}
