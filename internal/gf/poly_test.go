package gf

import (
	"math/rand"
	"testing"
)

func randPoly(rng *rand.Rand, f *Field, maxDeg int) Poly {
	n := rng.Intn(maxDeg + 2)
	p := make(Poly, n)
	for i := range p {
		p[i] = Elem(rng.Intn(f.Size()))
	}
	return PolyTrim(p)
}

func TestPolyDeg(t *testing.T) {
	if d := PolyDeg(nil); d != -1 {
		t.Errorf("PolyDeg(nil)=%d", d)
	}
	if d := PolyDeg(Poly{0, 0, 0}); d != -1 {
		t.Errorf("PolyDeg(zeros)=%d", d)
	}
	if d := PolyDeg(Poly{1, 0, 5, 0}); d != 2 {
		t.Errorf("PolyDeg=%d, want 2", d)
	}
}

func TestPolyAddCancels(t *testing.T) {
	f := MustField(8)
	p := Poly{1, 2, 3}
	if got := f.PolyAdd(p, p); PolyDeg(got) != -1 {
		t.Errorf("p+p=%v, want zero", got)
	}
}

func TestPolyMulKnown(t *testing.T) {
	f := MustField(8)
	// (x + 1)(x + 2) = x^2 + 3x + 2 over GF(256): 1^2=1*2... careful:
	// coefficients multiply in the field; (x+a)(x+b) = x^2 + (a+b)x + ab.
	a, b := Elem(7), Elem(9)
	got := f.PolyMul(Poly{a, 1}, Poly{b, 1})
	want := Poly{f.Mul(a, b), f.Add(a, b), 1}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestPolyDivModRoundTrip(t *testing.T) {
	f := MustField(8)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		p := randPoly(rng, f, 30)
		d := randPoly(rng, f, 8)
		if PolyDeg(d) < 0 {
			continue
		}
		quo, rem := f.PolyDivMod(p, d)
		if PolyDeg(rem) >= PolyDeg(d) {
			t.Fatalf("rem degree %d >= divisor degree %d", PolyDeg(rem), PolyDeg(d))
		}
		back := f.PolyAdd(f.PolyMul(quo, d), rem)
		if PolyDeg(back) != PolyDeg(p) {
			t.Fatalf("round trip degree mismatch")
		}
		for i := range back {
			if back[i] != p[i] {
				t.Fatalf("round trip coefficient mismatch at %d", i)
			}
		}
	}
}

func TestPolyEvalHorner(t *testing.T) {
	f := MustField(8)
	// p(x) = 3x^2 + x + 5 at x=2: 3*4 + 2 + 5 in GF(256) arithmetic.
	p := Poly{5, 1, 3}
	x := Elem(2)
	want := f.Add(f.Add(f.Mul(3, f.Mul(x, x)), x), 5)
	if got := f.PolyEval(p, x); got != want {
		t.Errorf("eval=%d, want %d", got, want)
	}
	if got := f.PolyEval(nil, 17); got != 0 {
		t.Errorf("eval of zero poly = %d", got)
	}
}

func TestPolyEvalRootsOfProduct(t *testing.T) {
	f := MustField(8)
	// Build (x - r1)(x - r2)(x - r3); each ri must be a root.
	roots := []Elem{3, 77, 200}
	p := Poly{1}
	for _, r := range roots {
		p = f.PolyMul(p, Poly{r, 1}) // x + r == x - r in char 2
	}
	for _, r := range roots {
		if v := f.PolyEval(p, r); v != 0 {
			t.Errorf("p(%d)=%d, want 0", r, v)
		}
	}
	if v := f.PolyEval(p, 5); v == 0 {
		t.Error("non-root evaluated to 0")
	}
}

func TestPolyDeriv(t *testing.T) {
	f := MustField(8)
	// d/dx (c3 x^3 + c2 x^2 + c1 x + c0) = c3 x^2 + c1 (char 2).
	p := Poly{10, 20, 30, 40}
	d := f.PolyDeriv(p)
	want := Poly{20, 0, 40}
	if PolyDeg(d) != 2 || d[0] != want[0] || d[1] != want[1] || d[2] != want[2] {
		t.Errorf("deriv=%v, want %v", d, want)
	}
	if f.PolyDeriv(Poly{5}) != nil {
		t.Error("derivative of constant should be zero poly")
	}
}

func TestPolyMulXk(t *testing.T) {
	f := MustField(8)
	p := Poly{1, 2}
	got := f.PolyMulXk(p, 3)
	if PolyDeg(got) != 4 || got[3] != 1 || got[4] != 2 {
		t.Errorf("PolyMulXk=%v", got)
	}
}

func TestPolyString(t *testing.T) {
	if s := PolyString(Poly{5, 0, 2}); s != "2·x^2 + 5" {
		t.Errorf("PolyString=%q", s)
	}
	if s := PolyString(nil); s != "0" {
		t.Errorf("PolyString(nil)=%q", s)
	}
}
