package gf

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestMulTableMatchesMul(t *testing.T) {
	for _, m := range []uint{4, 8, 12} {
		f := MustField(m)
		rng := rand.New(rand.NewSource(int64(m)))
		for trial := 0; trial < 20; trial++ {
			c := Elem(rng.Intn(f.Size()))
			tab := f.MulTable(c)
			if len(tab) != f.Size() {
				t.Fatalf("m=%d: table size %d, want %d", m, len(tab), f.Size())
			}
			for a := 0; a < f.Size(); a++ {
				if got, want := tab.Mul(Elem(a)), f.Mul(c, Elem(a)); got != want {
					t.Fatalf("m=%d c=%#x a=%#x: table %#x, Mul %#x", m, c, a, got, want)
				}
			}
		}
	}
}

func TestMulBytesAndMulAddBytes(t *testing.T) {
	f := MustField(8)
	rng := rand.New(rand.NewSource(2))
	c := Elem(0xB7)
	tab := f.MulTable(c)
	src := make([]byte, 64)
	rng.Read(src)

	dst := make([]byte, 64)
	tab.MulBytes(dst, src)
	for i := range src {
		if want := byte(f.Mul(c, Elem(src[i]))); dst[i] != want {
			t.Fatalf("MulBytes[%d] = %#x, want %#x", i, dst[i], want)
		}
	}

	acc := make([]byte, 64)
	rng.Read(acc)
	want := append([]byte(nil), acc...)
	tab.MulAddBytes(acc, src)
	for i := range src {
		want[i] ^= byte(f.Mul(c, Elem(src[i])))
	}
	if !bytes.Equal(acc, want) {
		t.Fatal("MulAddBytes mismatch")
	}

	// In-place aliasing must work.
	alias := append([]byte(nil), src...)
	tab.MulBytes(alias, alias)
	ref := make([]byte, 64)
	tab.MulBytes(ref, src)
	if !bytes.Equal(alias, ref) {
		t.Fatal("aliased MulBytes mismatch")
	}
}

func TestSqr(t *testing.T) {
	for _, m := range []uint{8, 12} {
		f := MustField(m)
		for a := 0; a < f.Size(); a++ {
			if got, want := f.Sqr(Elem(a)), f.Mul(Elem(a), Elem(a)); got != want {
				t.Fatalf("m=%d Sqr(%#x) = %#x, want %#x", m, a, got, want)
			}
		}
	}
}

func TestAddAndMulSlice(t *testing.T) {
	f := MustField(8)
	rng := rand.New(rand.NewSource(3))
	n := 37
	a := make([]Elem, n)
	b := make([]Elem, n)
	for i := range a {
		a[i] = Elem(rng.Intn(256))
		b[i] = Elem(rng.Intn(256))
	}

	sum := append([]Elem(nil), a...)
	AddSlice(sum, b)
	for i := range sum {
		if sum[i] != a[i]^b[i] {
			t.Fatalf("AddSlice[%d] mismatch", i)
		}
	}

	prod := make([]Elem, n)
	f.MulSlice(prod, a, b)
	for i := range prod {
		if want := f.Mul(a[i], b[i]); prod[i] != want {
			t.Fatalf("MulSlice[%d] = %#x, want %#x", i, prod[i], want)
		}
	}
	// dst aliasing a.
	aCopy := append([]Elem(nil), a...)
	f.MulSlice(aCopy, aCopy, b)
	for i := range aCopy {
		if aCopy[i] != prod[i] {
			t.Fatalf("aliased MulSlice[%d] mismatch", i)
		}
	}
}

func TestXORBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 256} {
		dst := make([]byte, n)
		src := make([]byte, n)
		rng.Read(dst)
		rng.Read(src)
		want := make([]byte, n)
		for i := range want {
			want[i] = dst[i] ^ src[i]
		}
		if got := XORBytes(dst, src); got != n {
			t.Fatalf("n=%d: returned %d", n, got)
		}
		if !bytes.Equal(dst, want) {
			t.Fatalf("n=%d: XORBytes mismatch", n)
		}
	}
	// Mismatched lengths process the shorter prefix.
	dst := []byte{1, 2, 3, 4}
	src := []byte{0xFF, 0xFF}
	if got := XORBytes(dst, src); got != 2 {
		t.Fatalf("short src: returned %d", got)
	}
	if dst[0] != 0xFE || dst[1] != 0xFD || dst[2] != 3 || dst[3] != 4 {
		t.Fatalf("short src: dst = %v", dst)
	}
}
