package engine

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"chipkillpm/internal/core"
	"chipkillpm/internal/rank"
)

// checkVersioned verifies buf is a self-consistent fillBlock image of
// block at *some* version — the whole point of the seqlock protocol is
// that a reader may observe any committed version, but never a torn mix
// of two. fillBlock xors version*131 into every byte, so the version
// byte recovered from buf[0] must explain the rest of the block.
func checkVersioned(buf []byte, block int64) error {
	v := buf[0] ^ byte(block)
	for i := range buf {
		if buf[i] != byte(block>>uint(8*(i&7)))^v^byte(i) {
			return fmt.Errorf("block %d: torn read (byte %d inconsistent with version byte %#x)", block, i, v)
		}
	}
	return nil
}

// TestSeqlockTorture hammers the lock-free read path from readers that
// deliberately cross into blocks other goroutines are writing: unlike
// TestConcurrentShadow (which verifies exact per-owner versions), the
// invariant here is atomicity — every read returns some committed
// version in full, never a tear. Under -race the same workload runs
// through the locked path and the detector audits the fallback story.
func TestSeqlockTorture(t *testing.T) {
	e := testEngine(t, 0, 0)
	populate(t, e)
	const (
		writers = 4
		readers = 4
		ops     = 500
	)
	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers)
	stop := make(chan struct{})

	version := make([]int, e.Blocks()) // owned slot per block, writers disjoint
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*277 + 1))
			buf := make([]byte, e.BlockBytes())
			for op := 0; op < ops; op++ {
				b := int64(rng.Intn(int(e.Blocks())))
				for b%writers != int64(w) { // disjoint ownership
					b = int64(rng.Intn(int(e.Blocks())))
				}
				version[b]++
				fillBlock(buf, b, version[b])
				if err := e.WriteBlock(b, buf); err != nil {
					errCh <- fmt.Errorf("writer %d block %d: %w", w, b, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)*991 + 7))
			buf := make([]byte, e.BlockBytes())
			for {
				select {
				case <-stop:
					return
				default:
				}
				b := int64(rng.Intn(int(e.Blocks())))
				if err := e.ReadBlockInto(b, buf); err != nil {
					errCh <- fmt.Errorf("reader %d block %d: %w", r, b, err)
					return
				}
				if err := checkVersioned(buf, b); err != nil {
					errCh <- err
					return
				}
			}
		}(r)
	}
	// Writers finish on their own; readers run until told to stop.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	<-done
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	st := e.Stats()
	if st.Uncorrectable != 0 {
		t.Fatalf("clean torture produced uncorrectables: %+v", st)
	}
	if st.ReadsClean != st.Reads+st.OMVMisses {
		t.Fatalf("stats identity broken after torture: %+v", st)
	}
	if e.SeqlockEnabled() {
		ss := e.SeqStats()
		if ss.FastReads == 0 {
			t.Fatalf("seqlock enabled but no read took the fast path: %+v", ss)
		}
		t.Logf("seqlock outcomes: %+v", ss)
	}
}

// TestSeqlockTortureDuringMigration reruns the atomicity check across a
// chip kill and a live band-by-band migration: FailChip's quiesce and
// the migration cursor are both standing-down gates, so the fast path
// must bow out rather than gather a failed chip's stale cells or a
// band's half-moved layout.
func TestSeqlockTortureDuringMigration(t *testing.T) {
	e := testEngine(t, 0, 0)
	populate(t, e)
	const failed = 1
	e.Quiesce(func() { e.rank.FailChip(failed) })
	m, err := e.BeginMigration(failed, 0)
	if err != nil {
		t.Fatal(err)
	}

	const readers = 4
	stop := make(chan struct{})
	errCh := make(chan error, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)*443 + 11))
			buf := make([]byte, e.BlockBytes())
			for {
				select {
				case <-stop:
					return
				default:
				}
				b := int64(rng.Intn(int(e.Blocks())))
				if err := e.ReadBlockInto(b, buf); err != nil {
					errCh <- fmt.Errorf("reader %d block %d: %w", r, b, err)
					return
				}
				if err := checkVersioned(buf, b); err != nil {
					errCh <- fmt.Errorf("mid-migration %w", err)
					return
				}
			}
		}(r)
	}
	for m.Cursor() < e.Blocks() {
		if err := e.MigrateBand(m, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.FinishMigration(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	// The degraded latch is one-way: no read after FinishMigration may
	// take the fast path, whose addressing assumes the pristine layout.
	before := e.SeqStats().FastReads
	buf := make([]byte, e.BlockBytes())
	for b := int64(0); b < e.Blocks(); b += 7 {
		if err := e.ReadBlockInto(b, buf); err != nil {
			t.Fatalf("post-migration read %d: %v", b, err)
		}
		if err := checkVersioned(buf, b); err != nil {
			t.Fatal(err)
		}
	}
	if after := e.SeqStats().FastReads; after != before {
		t.Fatalf("fast path served %d reads after migration flipped the layout", after-before)
	}
}

// TestSeqlockDegradedEntryUnderReads flips EnterDegradedMode while
// readers run: the sticky degraded latch is published before any layout
// change, so no reader may return pre-flip bytes under the post-flip
// layout (or vice versa — any committed version, whole, is the bar).
func TestSeqlockDegradedEntryUnderReads(t *testing.T) {
	e := testEngine(t, 0, 0)
	populate(t, e)
	const readers = 4
	stop := make(chan struct{})
	errCh := make(chan error, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)*97 + 3))
			buf := make([]byte, e.BlockBytes())
			for {
				select {
				case <-stop:
					return
				default:
				}
				b := int64(rng.Intn(int(e.Blocks())))
				if err := e.ReadBlockInto(b, buf); err != nil {
					errCh <- fmt.Errorf("reader %d block %d: %w", r, b, err)
					return
				}
				if err := checkVersioned(buf, b); err != nil {
					errCh <- err
					return
				}
			}
		}(r)
	}
	e.Quiesce(func() { e.rank.FailChip(2) })
	if err := e.EnterDegradedMode(2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if deg, chip := e.Degraded(); !deg || chip != 2 {
		t.Fatalf("engine not degraded after EnterDegradedMode: %v %d", deg, chip)
	}
}

// TestSeqlockReaderFallbackBound pins the starvation bound: a reader
// arriving while a writer holds the shard never spins on the odd
// sequence — it counts a fallback and parks on the mutex, completing as
// soon as the writer leaves.
func TestSeqlockReaderFallbackBound(t *testing.T) {
	e := testEngine(t, 0, 0)
	populate(t, e)
	if !e.SeqlockEnabled() {
		t.Skip("seqlock path disabled in this build (race detector)")
	}
	const block = 3
	s := e.shards[e.shardOf(block)]
	base := e.SeqStats().LockFallbacks

	s.lockWrite()
	done := make(chan error, 1)
	buf := make([]byte, e.BlockBytes())
	go func() {
		done <- e.ReadBlockInto(block, buf)
	}()
	// The reader must observe the odd sequence, record the fallback, and
	// block on the mutex — all without completing.
	deadline := time.After(5 * time.Second)
	for e.SeqStats().LockFallbacks == base {
		select {
		case err := <-done:
			t.Fatalf("read completed (%v) while the writer section was held", err)
		case <-deadline:
			t.Fatal("reader never recorded a lock fallback")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	select {
	case err := <-done:
		t.Fatalf("read completed (%v) while the writer section was held", err)
	case <-time.After(10 * time.Millisecond):
	}
	s.unlockWrite()
	if err := <-done; err != nil {
		t.Fatalf("parked read failed after writer left: %v", err)
	}
	if err := checkVersioned(buf, block); err != nil {
		t.Fatal(err)
	}
}

// TestDisableSeqlock pins the escape hatch: Config.DisableSeqlock routes
// every read through the mutex (SeqStats stays zero) with identical
// results — the knob the equivalence campaigns and any future bisect of
// a suspected seqlock bug depend on.
func TestDisableSeqlock(t *testing.T) {
	r, err := rank.New(rank.PaperConfig(4, 8, 1024, 7))
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(r, Config{Core: core.DefaultConfig(), DisableSeqlock: true})
	if err != nil {
		t.Fatal(err)
	}
	if e.SeqlockEnabled() {
		t.Fatal("DisableSeqlock engine reports the fast path enabled")
	}
	populate(t, e)
	buf := make([]byte, e.BlockBytes())
	want := make([]byte, e.BlockBytes())
	for b := int64(0); b < e.Blocks(); b += 5 {
		if err := e.ReadBlockInto(b, buf); err != nil {
			t.Fatal(err)
		}
		fillBlock(want, b, 0)
		if !bytes.Equal(buf, want) {
			t.Fatalf("block %d: wrong data with seqlock disabled", b)
		}
	}
	if ss := e.SeqStats(); ss != (SeqStats{}) {
		t.Fatalf("disabled seqlock path recorded outcomes: %+v", ss)
	}
}

// TestSeqlockServesCleanReads pins that on a quiet engine the fast path
// serves every clean read — the perf claim depends on the gates standing
// down only when they must.
func TestSeqlockServesCleanReads(t *testing.T) {
	e := testEngine(t, 0, 0)
	populate(t, e)
	if !e.SeqlockEnabled() {
		t.Skip("seqlock path disabled in this build (race detector)")
	}
	e.ResetStats()
	const n = 200
	buf := make([]byte, e.BlockBytes())
	for i := 0; i < n; i++ {
		if err := e.ReadBlockInto(int64(i)%e.Blocks(), buf); err != nil {
			t.Fatal(err)
		}
	}
	ss := e.SeqStats()
	if ss.FastReads != n {
		t.Fatalf("fast path served %d of %d quiet clean reads (%+v)", ss.FastReads, n, ss)
	}
	st := e.Stats()
	if st.Reads != n || st.ReadsClean != n || st.BlockFetches != n {
		t.Fatalf("fast reads folded into stats wrong: %+v", st)
	}
}
