package bch

import (
	"math/bits"
	"sort"

	"chipkillpm/internal/gf"
)

// This file implements the table-driven fast paths for encoding and
// decoding. The reference bit-serial implementations remain in bch.go
// (EncodeBitSerial, SyndromesBitSerial, ...) both as differential-test
// oracles and as fallbacks for degenerate codes with fewer than 8 parity
// bits, where byte-at-a-time processing does not apply.
//
// Three precomputed structures carry the speedup:
//
//   - An LFSR remainder table: 256 entries of u(x)*x^r mod g(x), one per
//     input byte value. Encode and the decoder's codeword check stream
//     data through it one byte per step instead of one bit per step.
//   - Per-byte-position syndrome tables over the r-bit remainder
//     D(x) = data(x)*x^r + parity(x) mod g(x). Because g | x^n - 1 has
//     alpha^1..alpha^2t as roots, S_e(received) = D(alpha^e), so
//     syndromes are evaluated over ParityBytes() bytes instead of the
//     whole codeword. Only odd-index syndromes are tabulated; even ones
//     follow from S_2e = S_e^2 in characteristic 2.
//   - Chien-search step tables (multiplication tables for alpha^-i) plus
//     closed-form root extraction for degree-1 and degree-2 locators,
//     which dominate scrub workloads at realistic bit error rates.

// encTables drive the byte-at-a-time LFSR for Encode/EncodeDelta and the
// decoder's remainder computation.
type encTables struct {
	w      int      // uint64 words per r-bit LFSR state
	tab    []uint64 // 256 rows of w words: tab[u] = u(x)*x^r mod g
	loWord int      // word holding bit r-8 (start of the outgoing byte)
	loOff  uint     // offset of bit r-8 within loWord
	split  bool     // outgoing byte straddles loWord and loWord+1
}

// quadNone marks "no solution" entries of the quadratic-root table; the
// same sentinel marks non-cubes in the cube-root table.
const quadNone gf.Elem = 0xFFFF

// decTables hold everything the fast decode path needs.
type decTables struct {
	pb       int           // parity bytes, the remainder width
	lastMask byte          // valid-bit mask for the top parity byte
	synTab   []gf.Elem     // [pb][256][t] odd-syndrome contributions, flattened
	step     []gf.MulTable // step[i]: multiply by alpha^-(i+1), for Chien scan
	quad     []gf.Elem     // quad[c] = y solving y^2+y=c, or quadNone
	cbrt     []gf.Elem     // cbrt[c] = one y with y^3=c, or quadNone
}

// decodeScratch is the per-call working set, pooled on the Code so that
// concurrent decoders (the parallel boot scrub) share no state yet steady-
// state decoding allocates nothing.
type decodeScratch struct {
	state     []uint64  // LFSR state, enc.w words
	rem       []byte    // remainder bytes, pb
	syn       []gf.Elem // 2t syndromes
	bmSigma   []gf.Elem // Berlekamp-Massey buffers, 4t+2 each
	bmPrev    []gf.Elem
	bmNext    []gf.Elem
	sigmaWork []gf.Elem // root finding: deflated locator, t+1
	terms     []gf.Elem // root finding: Chien term registers, t+1
	positions []int     // found error positions, cap 2t
}

// buildEncTables constructs the byte-wise LFSR table, or returns nil for
// codes with r < 8 where the byte-serial recurrence does not hold.
func (c *Code) buildEncTables() *encTables {
	if c.r < 8 {
		return nil
	}
	w := (c.r + 63) / 64
	e := &encTables{
		w:      w,
		tab:    make([]uint64, 256*w),
		loWord: (c.r - 8) / 64,
		loOff:  uint((c.r - 8) % 64),
	}
	e.split = (c.r-1)/64 != e.loWord

	// bitRem[b] = x^(r+b) mod g for b = 0..7, each w words.
	var bitRem [8][]uint64
	cur := make([]uint64, w)
	// x^r mod g = g(x) - x^r: the generator with its leading bit cleared.
	// When r%64 == 0 the leading bit lives in word w and is dropped by the
	// truncating copy below.
	for i := range cur {
		if i < len(c.gen) {
			cur[i] = c.gen[i]
		}
	}
	if c.r%64 != 0 {
		cur[c.r/64] &^= 1 << uint(c.r%64)
	}
	for b := 0; b < 8; b++ {
		bitRem[b] = append([]uint64(nil), cur...)
		// cur = cur * x mod g.
		top := cur[(c.r-1)/64]>>uint((c.r-1)%64)&1 != 0
		for i := w - 1; i > 0; i-- {
			cur[i] = cur[i]<<1 | cur[i-1]>>63
		}
		cur[0] <<= 1
		if top {
			if c.r%64 != 0 {
				cur[c.r/64] &^= 1 << uint(c.r%64)
			}
			for i, g := range bitRem[0] {
				cur[i] ^= g
			}
		}
	}
	// tab[u] = XOR of bitRem[b] over set bits b of u.
	for u := 1; u < 256; u++ {
		b := bits.TrailingZeros8(uint8(u))
		rest := u & (u - 1)
		dst := e.tab[u*w : u*w+w]
		copy(dst, e.tab[rest*w:rest*w+w])
		for i, x := range bitRem[b] {
			dst[i] ^= x
		}
	}
	return e
}

// step advances the LFSR by one input byte: state = (state<<8 + v*x^r) mod g.
func (e *encTables) step(state []uint64, v byte) {
	u := byte(state[e.loWord] >> e.loOff)
	if e.split {
		u |= byte(state[e.loWord+1] << (64 - e.loOff))
	}
	u ^= v
	state[e.loWord] &^= 0xFF << e.loOff
	if e.split {
		state[e.loWord+1] &^= 0xFF >> (64 - e.loOff)
	}
	for i := len(state) - 1; i > 0; i-- {
		state[i] = state[i]<<8 | state[i-1]>>56
	}
	state[0] <<= 8
	row := e.tab[int(u)*e.w : int(u)*e.w+e.w]
	for i, t := range row {
		state[i] ^= t
	}
}

// remainder runs the LFSR over data (highest byte first, matching data bit
// i at degree r+i) and leaves data(x)*x^r mod g in state.
func (e *encTables) remainder(state []uint64, data []byte) {
	if e.w == 5 && e.loOff == 0 && !e.split {
		e.remainder264(state, data)
		return
	}
	for i := range state {
		state[i] = 0
	}
	live := false
	for i := len(data) - 1; i >= 0; i-- {
		v := data[i]
		if !live {
			if v == 0 {
				continue // leading zeros leave a zero remainder
			}
			live = true
		}
		e.step(state, v)
	}
}

// remainder264 is the register-resident specialisation of remainder for the
// 5-word byte-aligned layout (r = 264, the paper's BCH code): the outgoing
// byte is exactly the low byte of word 4, so the whole per-byte step unrolls
// into shift/xor chains on five locals with one table row load.
func (e *encTables) remainder264(state []uint64, data []byte) {
	tab := e.tab
	i := len(data) - 1
	for ; i >= 0 && data[i] == 0; i-- {
	}
	var s0, s1, s2, s3, s4 uint64
	for ; i >= 0; i-- {
		base := (int(byte(s4)) ^ int(data[i])) * 5
		row := tab[base : base+5 : base+5]
		s4 = (s3 >> 56) ^ row[4]
		s3 = (s3<<8 | s2>>56) ^ row[3]
		s2 = (s2<<8 | s1>>56) ^ row[2]
		s1 = (s1<<8 | s0>>56) ^ row[1]
		s0 = (s0 << 8) ^ row[0]
	}
	state[0], state[1], state[2], state[3], state[4] = s0, s1, s2, s3, s4
}

// stateBytes serialises the LFSR state little-endian into out.
func stateBytes(state []uint64, out []byte) {
	for i := range out {
		out[i] = byte(state[i/8] >> (8 * uint(i%8)))
	}
}

// deltaTables hold per-byte-position remainder rows for EncodeDeltaInto:
// tab[(p*256+v)*w : ...+w] = v(x)*x^(8p+r) mod g(x). Position 0 is exactly
// the LFSR feed table; each later position is the previous one advanced by
// one zero-feed step (multiply by x^8 mod g).
type deltaTables struct {
	w   int
	tab []uint64
}

// deltaTables returns the per-position delta rows, building them on first
// use. Racing builders each construct a candidate; CompareAndSwap keeps
// exactly one, so callers always share a single table. Requires c.enc != nil.
func (c *Code) deltaTables() *deltaTables {
	if d := c.deltaTabs.Load(); d != nil {
		return d
	}
	e := c.enc
	w := e.w
	db := c.DataBytes()
	d := &deltaTables{w: w, tab: make([]uint64, db*256*w)}
	copy(d.tab[:256*w], e.tab)
	for p := 1; p < db; p++ {
		prev := d.tab[(p-1)*256*w : p*256*w]
		cur := d.tab[p*256*w : (p+1)*256*w]
		for v := 1; v < 256; v++ {
			row := cur[v*w : v*w+w]
			copy(row, prev[v*w:v*w+w])
			e.step(row, 0)
		}
	}
	if !c.deltaTabs.CompareAndSwap(nil, d) {
		d = c.deltaTabs.Load()
	}
	return d
}

// decTables builds (once) and returns the decode tables, or nil for codes
// where the fast path is unavailable.
func (c *Code) decTables() *decTables {
	if c.enc == nil {
		return nil
	}
	c.decOnce.Do(func() {
		f := c.field
		pb := c.ParityBytes()
		d := &decTables{pb: pb}
		if rem := uint(c.r % 8); rem == 0 {
			d.lastMask = 0xFF
		} else {
			d.lastMask = byte(1<<rem - 1)
		}

		// Odd-syndrome tables over remainder bytes: entry (i, u) holds the
		// contributions of byte value u at byte position i to S_1, S_3,
		// ..., S_(2t-1).
		t := c.t
		d.synTab = make([]gf.Elem, pb*256*t)
		bitRow := make([]gf.Elem, 8*t)
		for i := 0; i < pb; i++ {
			for bit := 0; bit < 8; bit++ {
				deg := 8*i + bit
				for j := 0; j < t; j++ {
					if deg < c.r {
						bitRow[bit*t+j] = f.Exp(deg * (2*j + 1))
					} else {
						bitRow[bit*t+j] = 0 // masked bits never contribute
					}
				}
			}
			base := i * 256 * t
			for u := 1; u < 256; u++ {
				b := bits.TrailingZeros8(uint8(u))
				rest := u & (u - 1)
				dst := d.synTab[base+u*t : base+u*t+t]
				copy(dst, d.synTab[base+rest*t:base+rest*t+t])
				gf.AddSlice(dst, bitRow[b*t:b*t+t])
			}
		}

		// Chien step tables: multiply-by-alpha^-i for i = 1..t.
		d.step = make([]gf.MulTable, t)
		for i := range d.step {
			d.step[i] = f.MulTable(f.Exp(-(i + 1)))
		}

		// Quadratic solver: quad[y^2+y] = y. Both y and y+1 solve the same
		// right-hand side; either representative works since callers derive
		// the second root as y+1.
		d.quad = make([]gf.Elem, f.Size())
		for i := range d.quad {
			d.quad[i] = quadNone
		}
		for y := f.Size() - 1; y >= 0; y-- {
			d.quad[f.Sqr(gf.Elem(y))^gf.Elem(y)] = gf.Elem(y)
		}

		// Cube-root table for the closed-form cubic: any one root works,
		// the other two come out of the deflated quadratic.
		d.cbrt = make([]gf.Elem, f.Size())
		for i := range d.cbrt {
			d.cbrt[i] = quadNone
		}
		for y := f.Size() - 1; y >= 0; y-- {
			d.cbrt[f.Mul(f.Sqr(gf.Elem(y)), gf.Elem(y))] = gf.Elem(y)
		}
		c.dec = d
	})
	return c.dec
}

func (c *Code) getScratch() *decodeScratch {
	if sc, ok := c.scratch.Get().(*decodeScratch); ok {
		return sc
	}
	w := 0
	if c.enc != nil {
		w = c.enc.w
	}
	return &decodeScratch{
		state:     make([]uint64, w),
		rem:       make([]byte, c.ParityBytes()),
		syn:       make([]gf.Elem, 2*c.t),
		bmSigma:   make([]gf.Elem, 4*c.t+2),
		bmPrev:    make([]gf.Elem, 4*c.t+2),
		bmNext:    make([]gf.Elem, 4*c.t+2),
		sigmaWork: make([]gf.Elem, c.t+1),
		terms:     make([]gf.Elem, c.t+1),
		positions: make([]int, 0, 2*c.t),
	}
}

func (c *Code) putScratch(sc *decodeScratch) { c.scratch.Put(sc) }

// syndromesInto computes the 2t syndromes into syn and reports whether the
// received word is a codeword. It uses the remainder-based fast path when
// tables are available and falls back to the bit-serial oracle otherwise.
func (c *Code) syndromesInto(syn []gf.Elem, data, parity []byte, sc *decodeScratch) bool {
	d := c.decTables()
	if d == nil {
		ref, clean := c.SyndromesBitSerial(data, parity)
		copy(syn, ref)
		return clean
	}
	// Remainder of the received word: data(x)*x^r mod g, plus parity
	// (degree < r, so congruent to itself), with undefined high bits of
	// the last parity byte masked off exactly as the bit-serial path
	// ignores degrees >= r.
	c.enc.remainder(sc.state, data)
	stateBytes(sc.state, sc.rem)
	clean := true
	for i, p := range parity {
		if i == len(parity)-1 {
			p &= d.lastMask
		}
		sc.rem[i] ^= p
		if sc.rem[i] != 0 {
			clean = false
		}
	}
	for i := range syn {
		syn[i] = 0
	}
	if clean {
		return true
	}
	// Odd syndromes from the sparse remainder.
	t := c.t
	for i, b := range sc.rem {
		if b == 0 {
			continue
		}
		row := d.synTab[(i*256+int(b))*t : (i*256+int(b))*t+t]
		for j, v := range row {
			syn[2*j] ^= v
		}
	}
	// Even syndromes by squaring: S_2e = S_e^2.
	f := c.field
	for e := 2; e <= 2*t; e += 2 {
		syn[e-1] = f.Sqr(syn[e/2-1])
	}
	return false
}

// isCodeword is the cheap membership test behind CheckClean: the received
// word is a codeword iff its remainder mod g is zero.
func (c *Code) isCodeword(data, parity []byte) bool {
	d := c.decTables()
	if d == nil {
		_, clean := c.SyndromesBitSerial(data, parity)
		return clean
	}
	sc := c.getScratch()
	defer c.putScratch(sc)
	c.enc.remainder(sc.state, data)
	stateBytes(sc.state, sc.rem)
	for i, b := range sc.rem {
		p := parity[i]
		if i == len(sc.rem)-1 {
			p &= d.lastMask
		}
		if b != p {
			return false
		}
	}
	return true
}

// berlekampMasseyFast is the allocation-free Berlekamp-Massey, writing into
// the scratch buffers and returning the error locator (aliasing sc.bmSigma
// or sc.bmNext, valid until the scratch is reused).
func (c *Code) berlekampMasseyFast(syn []gf.Elem, sc *decodeScratch) gf.Poly {
	f := c.field
	sigma, prev, next := sc.bmSigma, sc.bmPrev, sc.bmNext
	for i := range sigma {
		sigma[i], prev[i], next[i] = 0, 0, 0
	}
	sigma[0], prev[0] = 1, 1
	l := 0
	shift := 1
	b := gf.Elem(1)
	for i := 0; i < len(syn); i++ {
		d := syn[i]
		for j := 1; j <= l; j++ {
			if sigma[j] != 0 && syn[i-j] != 0 {
				d ^= f.Mul(sigma[j], syn[i-j])
			}
		}
		if d == 0 {
			shift++
			continue
		}
		scale := f.Div(d, b)
		if 2*l <= i {
			copy(next, sigma)
			for j, p := range prev {
				if p != 0 {
					next[j+shift] ^= f.Mul(scale, p)
				}
			}
			sigma, prev, next = next, sigma, prev
			b = d
			l = i + 1 - l
			shift = 1
		} else {
			for j, p := range prev {
				if p != 0 {
					sigma[j+shift] ^= f.Mul(scale, p)
				}
			}
			shift++
		}
	}
	deg := -1
	for i := len(sigma) - 1; i >= 0; i-- {
		if sigma[i] != 0 {
			deg = i
			break
		}
	}
	return gf.Poly(sigma[:deg+1])
}

// elemPosition maps a locator root x = alpha^-p back to its bit position p,
// returning ok=false when the position falls outside the shortened code.
func (c *Code) elemPosition(x gf.Elem) (int, bool) {
	if x == 0 {
		return 0, false
	}
	f := c.field
	p := (f.N() - f.Log(x)) % f.N()
	return p, p < c.n
}

// linearRoot appends the root position of a degree-1 locator s0 + s1*x.
func (c *Code) linearRoot(s0, s1 gf.Elem, positions []int) ([]int, bool) {
	if s0 == 0 || s1 == 0 {
		return positions, false
	}
	p, ok := c.elemPosition(c.field.Div(s0, s1))
	if !ok {
		return positions, false
	}
	return append(positions, p), true
}

// quadraticRoots appends both root positions of s0 + s1*x + s2*x^2 using
// the precomputed y^2+y=k solver. A zero s1 means a repeated root, which a
// separable error locator never has; it is rejected just as the Chien scan
// would come up one root short.
func (c *Code) quadraticRoots(d *decTables, s0, s1, s2 gf.Elem, positions []int) ([]int, bool) {
	f := c.field
	if s0 == 0 || s1 == 0 || s2 == 0 {
		return positions, false
	}
	// Substitute x = (s1/s2) y: y^2 + y = s0*s2 / s1^2.
	k := f.Div(f.Mul(s0, s2), f.Sqr(s1))
	y := d.quad[k]
	if y == quadNone {
		return positions, false
	}
	scale := f.Div(s1, s2)
	p1, ok1 := c.elemPosition(f.Mul(scale, y))
	p2, ok2 := c.elemPosition(f.Mul(scale, y^1))
	if !ok1 || !ok2 {
		return positions, false
	}
	return append(positions, p1, p2), true
}

// cubicRoots appends all three root positions of the cubic locator
// s0 + s1*x + s2*x^2 + s3*x^3 without scanning. Substituting x = y + a
// (a = s2/s3) depresses the cubic to y^3 + p*y + q; with t a cube root of
// a solution z of the resolvent quadratic z^2 + q*z + p^3, the element
// y = t + p/t is a root (in characteristic 2). The remaining two roots
// come out of the deflated quadratic. Returns ok=false — with positions
// untouched — when any step has no solution in the field, which mirrors a
// Chien scan coming up short.
func (c *Code) cubicRoots(d *decTables, s0, s1, s2, s3 gf.Elem, positions []int) ([]int, bool) {
	f := c.field
	if s0 == 0 || s3 == 0 {
		return positions, false // x=0 root or not a cubic: invalid locator
	}
	base := len(positions)
	a := f.Div(s2, s3)
	b := f.Div(s1, s3)
	cc := f.Div(s0, s3)
	p := f.Sqr(a) ^ b
	q := f.Mul(a, b) ^ cc

	var x0 gf.Elem
	switch {
	case p == 0:
		if q == 0 {
			return positions, false // y^3 = 0: triple root, not separable
		}
		y := d.cbrt[q]
		if y == quadNone {
			return positions, false
		}
		x0 = y ^ a
	case q == 0:
		// y * (y^2 + p): take the y=0 root; the deflated quadratic has a
		// repeated root and is rejected below, as separability demands.
		x0 = a
	default:
		k := f.Div(f.Mul(p, f.Sqr(p)), f.Sqr(q))
		w := d.quad[k]
		if w == quadNone {
			return positions, false
		}
		t := d.cbrt[f.Mul(q, w)]
		if t == quadNone {
			return positions, false
		}
		x0 = t ^ f.Div(p, t) ^ a
	}
	// Guard the field-theory edge cases by evaluating the original cubic.
	if x0 == 0 || f.Mul(f.Mul(f.Mul(s3, x0)^s2, x0)^s1, x0)^s0 != 0 {
		return positions, false
	}
	p0, ok := c.elemPosition(x0)
	if !ok {
		return positions, false
	}
	// Deflate by (x + x0) and solve the remaining quadratic in closed form.
	q2 := s3
	q1 := s2 ^ f.Mul(q2, x0)
	q0 := s1 ^ f.Mul(q1, x0)
	positions, ok = c.quadraticRoots(d, q0, q1, q2, append(positions, p0))
	if !ok {
		return positions[:base], false
	}
	return positions, true
}

// findRoots locates all roots of sigma inside the shortened code,
// combining an early-exit Chien scan with locator deflation and
// closed-form extraction once the residual degree drops to two. Semantics
// match the reference chien(): it returns ok=false unless exactly
// deg(sigma) positions are found.
func (c *Code) findRoots(sigma gf.Poly, sc *decodeScratch) ([]int, bool) {
	deg := gf.PolyDeg(sigma)
	if deg <= 0 {
		return nil, deg == 0
	}
	d := c.decTables()
	if d == nil || deg > c.t {
		return c.chien(sigma)
	}
	f := c.field
	positions := sc.positions[:0]
	work := sc.sigmaWork[:deg+1]
	copy(work, sigma[:deg+1])

	var ok bool
	p := 0
	for deg > 2 {
		if deg == 3 {
			// Closed-form cubic: no scan at all for three residual roots.
			// On failure fall through to the scan, which either finds a
			// root the closed form missed or proves there are too few.
			if positions, ok = c.cubicRoots(d, work[0], work[1], work[2], work[3], positions); ok {
				sort.Ints(positions)
				sc.positions = positions[:0]
				return positions, true
			}
		}
		// Chien scan with incremental term registers: terms[j] tracks
		// work[j] * alpha^(-p*j); advancing p multiplies term j by
		// alpha^-j via its precomputed table.
		terms := sc.terms[:deg+1]
		for j := 0; j <= deg; j++ {
			terms[j] = f.Mul(work[j], f.Exp(-p*j))
		}
		found := -1
		for ; p < c.n; p++ {
			v := terms[0]
			for j := 1; j <= deg; j++ {
				v ^= terms[j]
			}
			if v == 0 {
				found = p
				break
			}
			for j := 1; j <= deg; j++ {
				terms[j] = d.step[j-1][terms[j]]
			}
		}
		if found < 0 {
			return nil, false // fewer in-range roots than deg(sigma)
		}
		positions = append(positions, found)
		// Deflate: work /= (x + root), synthetic division from the top.
		root := f.Exp(-found)
		for j := deg - 1; j >= 0; j-- {
			work[j] ^= f.Mul(work[j+1], root)
		}
		copy(work, work[1:deg+1]) // remainder work[0] is zero by construction
		deg--
		work = work[:deg+1]
		p = found + 1
	}
	switch deg {
	case 1:
		positions, ok = c.linearRoot(work[0], work[1], positions)
	case 2:
		positions, ok = c.quadraticRoots(d, work[0], work[1], work[2], positions)
	}
	if !ok {
		return nil, false
	}
	sort.Ints(positions)
	sc.positions = positions[:0]
	return positions, true
}
