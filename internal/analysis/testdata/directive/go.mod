module directivestub

go 1.22
