package engine

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestOnlineMigrationUnderLoad is the engine-level acceptance test for
// online degraded-mode migration: a chip dies, concurrent workers keep
// reading and writing their disjoint block stripes (verifying against
// per-worker shadows) while one migrator goroutine walks the rank band by
// band — no global quiesce between chip kill and completion.
func TestOnlineMigrationUnderLoad(t *testing.T) {
	e := testEngine(t, 0, 0)
	populate(t, e)
	const failed = 2
	e.Quiesce(func() { e.rank.FailChip(failed) })

	m, err := e.BeginMigration(failed, 0)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 6
	stop := make(chan struct{})
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*1013 + 5))
			owned := make([]int64, 0, e.Blocks()/workers+1)
			for b := int64(w); b < e.Blocks(); b += workers {
				owned = append(owned, b)
			}
			shadow := make(map[int64]int, len(owned))
			buf := make([]byte, e.BlockBytes())
			want := make([]byte, e.BlockBytes())
			for {
				select {
				case <-stop:
					return
				default:
				}
				b := owned[rng.Intn(len(owned))]
				if rng.Intn(2) == 0 {
					if err := e.ReadBlockInto(b, buf); err != nil {
						errCh <- fmt.Errorf("worker %d read %d: %w", w, b, err)
						return
					}
					fillBlock(want, b, shadow[b])
					if !bytes.Equal(buf, want) {
						errCh <- fmt.Errorf("worker %d block %d: stale data mid-migration", w, b)
						return
					}
				} else {
					shadow[b]++
					fillBlock(buf, b, shadow[b])
					if err := e.WriteBlock(b, buf); err != nil {
						errCh <- fmt.Errorf("worker %d write %d: %w", w, b, err)
						return
					}
				}
			}
		}(w)
	}

	for m.Cursor() < e.Blocks() {
		if err := e.MigrateBand(m, nil); err != nil {
			close(stop)
			t.Fatal(err)
		}
	}
	if err := e.FinishMigration(); err != nil {
		close(stop)
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if d, chip := e.Degraded(); !d || chip != failed {
		t.Fatalf("Degraded() = %v, %d after migration", d, chip)
	}
	if st := e.Stats(); st.BandsMigrated != e.Blocks()/e.BandBlocks() {
		t.Fatalf("BandsMigrated = %d, want %d", st.BandsMigrated, e.Blocks()/e.BandBlocks())
	}
	if st := e.Stats(); st.Uncorrectable != 0 {
		t.Fatalf("uncorrectable reads during online migration: %+v", st)
	}
}

// TestOnlineMigrationMatchesStopTheWorld runs the same workload-free
// migration online and stop-the-world on identically seeded ranks and
// compares every block byte for byte.
func TestOnlineMigrationMatchesStopTheWorld(t *testing.T) {
	const failed = 4
	online, stw := testEngine(t, 0, 0), testEngine(t, 0, 0)
	populate(t, online)
	populate(t, stw)
	online.Quiesce(func() { online.rank.FailChip(failed) })
	stw.Quiesce(func() { stw.rank.FailChip(failed) })

	m, err := online.BeginMigration(failed, 0)
	if err != nil {
		t.Fatal(err)
	}
	for m.Cursor() < online.Blocks() {
		if err := online.MigrateBand(m, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := online.FinishMigration(); err != nil {
		t.Fatal(err)
	}
	if err := stw.EnterDegradedMode(failed); err != nil {
		t.Fatal(err)
	}

	a := make([]byte, online.BlockBytes())
	b := make([]byte, online.BlockBytes())
	for blk := int64(0); blk < online.Blocks(); blk++ {
		if err := online.ReadBlockInto(blk, a); err != nil {
			t.Fatalf("online read %d: %v", blk, err)
		}
		if err := stw.ReadBlockInto(blk, b); err != nil {
			t.Fatalf("stop-the-world read %d: %v", blk, err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("block %d differs between online and stop-the-world migration", blk)
		}
	}
}

// TestPatrolScrubConcurrentWithDemand exercises patrol scrub interleaved
// with live demand traffic under -race: drifted bits must get scrubbed
// while workers keep verifying their shadows, and the patrol's batched
// counters must stay visible to a concurrent Stats poller.
func TestPatrolScrubConcurrentWithDemand(t *testing.T) {
	e := testEngine(t, 0, 0)
	populate(t, e)
	e.Quiesce(func() { e.rank.InjectRetentionErrors(5e-6) })

	const workers = 4
	stop := make(chan struct{})
	errCh := make(chan error, workers+1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*733 + 1))
			owned := make([]int64, 0, e.Blocks()/workers+1)
			for b := int64(w); b < e.Blocks(); b += workers {
				owned = append(owned, b)
			}
			shadow := make(map[int64]int, len(owned))
			buf := make([]byte, e.BlockBytes())
			want := make([]byte, e.BlockBytes())
			for op := 0; op < 600; op++ {
				b := owned[rng.Intn(len(owned))]
				if rng.Intn(3) != 0 {
					if err := e.ReadBlockInto(b, buf); err != nil {
						errCh <- fmt.Errorf("worker %d read %d: %w", w, b, err)
						return
					}
					fillBlock(want, b, shadow[b])
					if !bytes.Equal(buf, want) {
						errCh <- fmt.Errorf("worker %d block %d: wrong data", w, b)
						return
					}
				} else {
					shadow[b]++
					fillBlock(buf, b, shadow[b])
					if err := e.WriteBlock(b, buf); err != nil {
						errCh <- fmt.Errorf("worker %d write %d: %w", w, b, err)
						return
					}
				}
			}
		}(w)
	}

	// Patrol goroutine: sweep the whole position space at least once,
	// interleaved with the workers, then keep going until they finish.
	var patrolWG sync.WaitGroup
	patrolWG.Add(1)
	var scrubbed int64
	go func() {
		defer patrolWG.Done()
		pos := int64(0)
		total := e.TotalPatrolUnits()
		for swept := int64(0); ; swept += 64 {
			select {
			case <-stop:
				return
			default:
			}
			var f int64
			pos, f = e.PatrolScrub(pos, 64)
			scrubbed += f
			if swept >= total && scrubbed > 0 {
				// Full sweep done; idle-poll telemetry until workers stop.
				if tel := e.Telemetry(); len(tel.Chips) != e.rank.NumChips() {
					errCh <- fmt.Errorf("telemetry has %d chips", len(tel.Chips))
					return
				}
			}
		}
	}()

	wg.Wait()
	close(stop)
	patrolWG.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	st := e.Stats()
	if st.ScrubbedVLEWs == 0 {
		t.Fatal("patrol scrubbed nothing")
	}
	if st.Uncorrectable != 0 {
		t.Fatalf("uncorrectable reads at patrol-scale RBER: %+v", st)
	}
}

// TestEnginePatrolDegraded checks the degraded patrol walk routes striped
// groups through the engine and covers the whole (smaller) position
// space.
func TestEnginePatrolDegraded(t *testing.T) {
	e := testEngine(t, 0, 0)
	populate(t, e)
	const failed = 1
	e.Quiesce(func() { e.rank.FailChip(failed) })
	m, err := e.BeginMigration(failed, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Patrol is paused mid-migration.
	if next, fixed := e.PatrolScrub(3, 8); next != 3 || fixed != 0 {
		t.Fatalf("patrol mid-migration: next=%d fixed=%d", next, fixed)
	}
	for m.Cursor() < e.Blocks() {
		if err := e.MigrateBand(m, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.FinishMigration(); err != nil {
		t.Fatal(err)
	}
	total := e.TotalPatrolUnits()
	if want := e.Blocks() / 4; total != want {
		t.Fatalf("degraded TotalPatrolUnits = %d, want %d", total, want)
	}
	e.ResetStats()
	pos := int64(0)
	for swept := int64(0); swept < total; swept += 32 {
		pos, _ = e.PatrolScrub(pos, 32)
	}
	if st := e.Stats(); st.ScrubbedVLEWs < total {
		t.Fatalf("degraded patrol scrubbed %d units, want >= %d", st.ScrubbedVLEWs, total)
	}
}

// TestEngineTelemetryAttribution checks that chip-kill fallbacks feed the
// aggregated telemetry the supervisor watches.
func TestEngineTelemetryAttribution(t *testing.T) {
	e := testEngine(t, 0, 0)
	populate(t, e)
	base := e.Telemetry()
	const failed = 5
	e.Quiesce(func() { e.rank.FailChip(failed) })
	buf := make([]byte, e.BlockBytes())
	for b := int64(0); b < 64; b++ {
		if err := e.ReadBlockInto(b*e.bpr%e.Blocks(), buf); err != nil {
			t.Fatal(err)
		}
	}
	d := e.Telemetry().Delta(base)
	if d.Chips[failed].VLEWFailures == 0 || d.Chips[failed].ErasureRepairs == 0 {
		t.Fatalf("chip %d telemetry not attributed: %+v", failed, d.Chips[failed])
	}
	if d.Chips[failed].FailedAccesses == 0 {
		t.Fatal("failed accesses not surfaced in engine telemetry")
	}
	for ci := range d.Chips {
		if ci != failed && d.Chips[ci].VLEWFailures != 0 {
			t.Fatalf("spurious VLEW failures on chip %d", ci)
		}
	}
	// Probes through the engine: dead chip fails, healthy chip passes.
	if e.ProbeVLEW(failed, 0, 0, 0) {
		t.Error("probe of dead chip passed")
	}
	if !e.ProbeVLEW(0, 0, 0, 0) {
		t.Error("probe of healthy chip failed")
	}
}
